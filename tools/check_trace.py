#!/usr/bin/env python3
"""Offline validator for chaos-harness trace files (src/chaos DSL).

Re-validates a `.chaos` schedule/trace from nothing but the text:

  * every line parses — known schedule keys, well-formed `event` lines
    with known kinds, decimal-only numbers (mirrors ParseSchedule in
    src/chaos/chaos_schedule.cpp, including its strictness about unknown
    keys and malformed tokens);
  * semantic sanity — nonzero workload shape, percentage fields <= 100,
    event triggers within the run's total transaction count (an event
    with `at` beyond the last acked commit would never fire, so a
    recorded `events-fired` could not match);
  * the recorded `# result` footer, when present: the schedule digest is
    recomputed here (canonical re-serialization + FNV-1a, independent of
    the C++ code) and must equal the recorded one byte for byte.

With `--driver PATH` the validator additionally replays each trace
through `chaos_driver --replay`, which re-runs the schedule and compares
the recorded shadow digest and committed count against the live run —
the full end-to-end determinism check.

Exit 0 if every file passes, 1 with a report otherwise.
"""

import argparse
import subprocess
import sys

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1

EVENT_KINDS = [
    "corrupt",
    "read-error",
    "fail-range",
    "wearout",
    "stale-capture",
    "stale-revert",
    "full-restore",
    "back-to-back-restore",
    "crash",
    "crash-during-restore",
    "relocate",
    "checkpoint",
    "backup",
    "quiesce",
]

# (key, default) in canonical serialization order — mirrors
# SerializeSchedule / the ChaosSchedule field defaults.
SCHEDULE_KEYS = [
    ("seed", 0),
    ("writers", 3),
    ("txns-per-writer", 60),
    ("ops-per-txn", 4),
    ("keys-per-writer", 96),
    ("value-len", 24),
    ("seed-records", 1200),
    ("contended-keys", 4),
    ("batch-pct", 25),
    ("delete-pct", 15),
    ("contended-pct", 10),
    ("scan-every", 8),
    ("scrubber", 1),
    ("archiver", 1),
    ("restore-segment-pages", 32),
    ("drain-timeout-ms", 2000),
]

PCT_KEYS = {"batch-pct", "delete-pct", "contended-pct"}

RESULT_KEYS = {"schedule-digest", "shadow-digest", "committed-txns",
               "events-fired"}


def fnv1a(data: bytes, h: int = FNV_OFFSET) -> int:
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def parse_u64(tok):
    """Decimal-only, like ParseU64 in chaos_schedule.cpp."""
    if not tok or not tok.isascii() or not tok.isdigit():
        return None
    return int(tok)


class Trace:
    def __init__(self):
        self.fields = {k: d for k, d in SCHEDULE_KEYS}
        self.events = []  # dicts: at, kind, key, count, writes
        self.result = None  # dict or None
        self.errors = []
        self.warnings = []


def parse_trace(path):
    t = Trace()
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        t.errors.append(f"cannot read: {e}")
        return t
    for ln, raw in enumerate(lines, 1):
        line = raw.rstrip("\r ")
        if not line:
            continue
        if line.startswith("# result"):
            res = {}
            for tok in line.split()[2:]:
                k, _, v = tok.partition("=")
                val = parse_u64(v)
                if "=" not in tok or val is None:
                    t.errors.append(f"line {ln}: malformed result token {tok!r}")
                elif k not in RESULT_KEYS:
                    t.errors.append(f"line {ln}: unknown result field {k!r}")
                else:
                    res[k] = val
            t.result = res
            continue
        if line.startswith("#"):
            continue
        if line.startswith("event "):
            ev = {"at": 0, "kind": None, "key": 0, "count": 1, "writes": 0}
            for tok in line.split()[1:]:
                k, _, v = tok.partition("=")
                if "=" not in tok:
                    t.errors.append(f"line {ln}: malformed event token {tok!r}")
                    continue
                if k == "kind":
                    if v not in EVENT_KINDS:
                        t.errors.append(f"line {ln}: unknown event kind {v!r}")
                    ev["kind"] = v
                    continue
                val = parse_u64(v)
                if val is None:
                    t.errors.append(f"line {ln}: bad event number {tok!r}")
                elif k in ("at", "key", "count", "writes"):
                    ev[k] = val
                else:
                    t.errors.append(f"line {ln}: unknown event field {k!r}")
            if ev["kind"] is None:
                t.errors.append(f"line {ln}: event without kind")
            else:
                t.events.append(ev)
            continue
        parts = line.split()
        if len(parts) < 2 or parse_u64(parts[1]) is None:
            t.errors.append(f"line {ln}: malformed schedule line {line!r}")
            continue
        key, val = parts[0], parse_u64(parts[1])
        if key not in t.fields:
            t.errors.append(f"line {ln}: unknown schedule key {key!r}")
            continue
        t.fields[key] = val
        if key in PCT_KEYS and val > 100:
            t.errors.append(f"line {ln}: {key} {val} exceeds 100")
    return t


def check_semantics(t):
    f = t.fields
    for key in ("writers", "txns-per-writer", "ops-per-txn",
                "keys-per-writer"):
        if f[key] == 0:
            t.errors.append(f"schedule needs nonzero {key}")
    total = f["writers"] * f["txns-per-writer"]
    for ev in t.events:
        if ev["at"] > total:
            t.errors.append(
                f"event at={ev['at']} can never fire: run acks only "
                f"{total} transactions")
        if ev["count"] != 1 and ev["kind"] != "fail-range":
            t.warnings.append(
                f"event kind={ev['kind']}: count= is only meaningful for "
                "fail-range (ignored)")
        if ev["writes"] != 0 and ev["kind"] != "wearout":
            t.warnings.append(
                f"event kind={ev['kind']}: writes= is only meaningful for "
                "wearout (ignored)")
    captures = sum(1 for e in t.events if e["kind"] == "stale-capture")
    reverts = sum(1 for e in t.events if e["kind"] == "stale-revert")
    if captures != reverts:
        t.warnings.append(
            f"unbalanced stale pair: {captures} capture(s), "
            f"{reverts} revert(s)")


def canonical_serialization(t):
    """Byte-for-byte mirror of SerializeSchedule over the parsed form."""
    out = ["# spf chaos trace v1"]
    for key, _ in SCHEDULE_KEYS:
        out.append(f"{key} {t.fields[key]}")
    for ev in sorted(t.events, key=lambda e: e["at"]):  # stable, like parse
        line = f"event at={ev['at']} kind={ev['kind']} key={ev['key']}"
        if ev["kind"] == "fail-range":
            line += f" count={ev['count']}"
        if ev["kind"] == "wearout":
            line += f" writes={ev['writes']}"
        out.append(line)
    return ("\n".join(out) + "\n").encode()


def check_footer(t):
    if t.result is None:
        t.warnings.append("no # result footer (schedule only, not a trace)")
        return
    missing = RESULT_KEYS - set(t.result)
    if missing:
        t.errors.append(f"result footer missing {sorted(missing)}")
        return
    want = fnv1a(canonical_serialization(t))
    got = t.result["schedule-digest"]
    if got != want:
        t.errors.append(
            f"schedule digest mismatch: footer says {got}, canonical "
            f"serialization hashes to {want}")
    if t.result["events-fired"] > len(t.events) + 1:  # +1: implicit quiesce
        t.errors.append(
            f"events-fired={t.result['events-fired']} exceeds the "
            f"{len(t.events)} scheduled events")


def replay(path, driver):
    proc = subprocess.run(
        [driver, "--replay", path, "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=1800)
    return proc.returncode, proc.stdout.strip()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("traces", nargs="+", help=".chaos trace files")
    ap.add_argument("--driver", metavar="PATH",
                    help="chaos_driver binary: also replay each trace and "
                         "verify the recorded digests end to end")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="only report failures")
    args = ap.parse_args()

    failed = 0
    for path in args.traces:
        t = parse_trace(path)
        if not t.errors:
            check_semantics(t)
            check_footer(t)
        if not t.errors and args.driver and t.result is not None:
            code, out = replay(path, args.driver)
            if code != 0:
                t.errors.append(f"replay failed (exit {code}): {out}")
        for w in t.warnings:
            print(f"{path}: warning: {w}", file=sys.stderr)
        if t.errors:
            failed += 1
            for e in t.errors:
                print(f"{path}: error: {e}", file=sys.stderr)
        elif not args.quiet:
            n = len(t.events)
            footer = "trace" if t.result is not None else "schedule"
            print(f"{path}: OK ({footer}, {n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
