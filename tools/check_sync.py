#!/usr/bin/env python3
"""Sync-discipline firewall: keep raw mutexes out of the engine.

src/common/sync.h is the ONE place the engine declares lock primitives:
OrderedMutex / OrderedSharedMutex carry a LockRank from the engine-wide
lattice (checked at runtime under SPF_RANK_CHECK), the guard types carry
clang -Wthread-safety annotations, and CondVar waits keep the per-thread
held-rank stack exact. A raw std::mutex has none of that — it would be a
hole in the lock-order proof the TSan detect_deadlocks=1 CI jobs rely on.

This check greps src/ (everything except src/common/sync.h itself) for:

  * declarations of the raw standard primitives (std::mutex,
    std::shared_mutex, std::recursive_mutex, std::timed_mutex,
    std::condition_variable[_any], std::lock_guard, std::unique_lock,
    std::shared_lock, std::scoped_lock) and includes of their headers;
  * naked lowercase lock verbs (.lock(), ->try_lock_shared(), ...): the
    ranked wrappers spell them capitalized (Lock/TryLockShared), so a
    lowercase verb means someone is driving a primitive underneath the
    discipline layer.

Tests, benches, and examples may use std::mutex for their OWN harness
bookkeeping (merge maps, ack logs) — they are clients, not the engine —
so only src/ is scanned.

Exits non-zero listing every violation. Run from the repo root:

    python3 tools/check_sync.py
"""
import re
import sys
from pathlib import Path

# Raw standard primitives: forbidden anywhere in src/ outside sync.h.
RAW_PRIMITIVES = re.compile(
    r'std\s*::\s*('
    r'mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|'
    r'shared_timed_mutex|condition_variable(?:_any)?|'
    r'lock_guard|unique_lock|shared_lock|scoped_lock'
    r')\b')

# Their headers: an include is the same hole one step earlier.
RAW_INCLUDES = re.compile(r'#\s*include\s*<(mutex|shared_mutex|'
                          r'condition_variable)>')

# Naked lowercase lock verbs on some object. The ranked wrappers expose
# ONLY capitalized verbs to engine code; the lowercase spellings exist
# solely inside sync.h (UniqueLock's Lockable surface for CondVar).
NAKED_VERBS = re.compile(
    r'(?:\.|->)\s*(?:try_)?(?:lock|unlock)(?:_shared)?\s*\(')


def scan(path: Path, root: Path) -> list:
    violations = []
    in_block_comment = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        code = line
        if in_block_comment:
            end = code.find('*/')
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        # Strip line comments and (single-line) block comments.
        code = re.sub(r'/\*.*?\*/', '', code)
        start = code.find('/*')
        if start >= 0:
            code = code[:start]
            in_block_comment = True
        code = code.split('//')[0]
        for pattern in (RAW_PRIMITIVES, RAW_INCLUDES, NAKED_VERBS):
            if pattern.search(code):
                violations.append(
                    (path.relative_to(root), lineno, line.strip()))
                break
    return violations


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    src = root / 'src'
    exempt = src / 'common' / 'sync.h'
    violations = []
    count = 0
    for path in sorted(src.rglob('*.h')) + sorted(src.rglob('*.cpp')):
        if path == exempt:
            continue
        count += 1
        violations.extend(scan(path, root))
    if violations:
        print('raw synchronization primitives found outside '
              'src/common/sync.h (use OrderedMutex/OrderedSharedMutex, '
              'the guard types, and the capitalized lock verbs):')
        for rel, lineno, line in violations:
            print(f'  {rel}:{lineno}: {line}')
        return 1
    print(f'sync-discipline firewall: clean ({count} files)')
    return 0


if __name__ == '__main__':
    sys.exit(main())
