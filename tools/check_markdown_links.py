#!/usr/bin/env python3
"""Offline markdown link checker for this repository's docs.

Validates, for every markdown file passed on the command line:

  * relative file links ``[text](path)`` resolve to an existing file or
    directory (relative to the linking file);
  * intra-document and cross-document anchors ``[text](path#anchor)``
    match a heading in the target file (GitHub-style slugs);
  * reference-style definitions ``[label]: path`` get the same checks.

External links (http/https/mailto) are only syntax-checked — CI must
stay deterministic and offline. Exits non-zero with one line per broken
link.

Usage:  python3 tools/check_markdown_links.py README.md docs/*.md
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = re.compile(r"^(https?|mailto|ftp):", re.IGNORECASE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to '-'."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs = {}
    out = set()
    for m in HEADING.finditer(text):
        slug = github_slug(m.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def check_file(md: Path) -> list:
    errors = []
    text = md.read_text(encoding="utf-8")
    stripped = CODE_FENCE.sub("", text)
    targets = (
        [m.group(1) for m in INLINE_LINK.finditer(stripped)]
        + [m.group(1) for m in IMAGE_LINK.finditer(stripped)]
        + [m.group(1) for m in REF_DEF.finditer(stripped)]
    )
    for target in targets:
        if EXTERNAL.match(target):
            continue  # offline checker: syntax only
        path_part, _, anchor = target.partition("#")
        if path_part:
            dest = (md.parent / path_part).resolve()
            if not dest.exists():
                errors.append(f"{md}: broken link -> {target}")
                continue
        else:
            dest = md.resolve()
        if anchor:
            if dest.is_dir() or dest.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into non-markdown files: skip
            if anchor.lower() not in anchors_of(dest):
                errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]")
        return 2
    all_errors = []
    checked = 0
    for arg in argv[1:]:
        md = Path(arg)
        if not md.exists():
            all_errors.append(f"{md}: file not found")
            continue
        checked += 1
        all_errors.extend(check_file(md))
    for e in all_errors:
        print(e)
    print(f"checked {checked} file(s): "
          f"{'OK' if not all_errors else f'{len(all_errors)} problem(s)'}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
