#!/usr/bin/env python3
"""Offline fsck for a dumped sorted-log-archive volume.

Reads a raw image of the archive device (every page verbatim, as written
by `bench_e15_log_archive --dump-archive PATH`) and re-validates the
on-disk format of src/log/log_archive.cpp from nothing but the bytes:

  * the double-buffered directory (pages 0/1): magic, CRC, epoch choice;
  * every published run: header CRC, extent bounds, the data-stream CRC,
    entry framing, each record's own masked CRC, strict (page id, LSN)
    ordering, header fences landing exactly on entry boundaries, and the
    header's record-count / page-id / LSN bounds matching the stream;
  * run extents not overlapping each other or the directory;
  * the tiling invariant: the runs' [log_start, log_end) intervals cover
    [first-lsn, archived_upto) contiguously, no gaps, no overlaps.

Exits 0 if the archive is well formed, 1 with a report otherwise. The
checker is deliberately independent of the C++ code so a format
regression cannot hide behind its own reader.
"""

import argparse
import struct
import sys

# ---------------------------------------------------------------------------
# CRC32C (Castagnoli, reflected 0x82f63b78) — matches src/common/crc32c.cpp.

_TABLE = []
for _i in range(256):
    _crc = _i
    for _ in range(8):
        _crc = (_crc >> 1) ^ 0x82F63B78 if _crc & 1 else _crc >> 1
    _TABLE.append(_crc)


def crc32c(data: bytes, init: int = 0) -> int:
    crc = init ^ 0xFFFFFFFF
    for b in data:
        crc = _TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def mask_crc(crc: int) -> int:
    """RocksDB/LevelDB idiom used for the per-record CRC field."""
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Format constants (log_archive.cpp / log_record.h).

DIRECTORY_MAGIC = b"SPFARCHV"
RUN_MAGIC = b"SPFARUN1"
DIRECTORY_PAGES = 2
DIRECTORY_FIXED = 8 + 8 + 8 + 8 + 4          # magic, epoch, upto, seq, count
DIRECTORY_RUN = 8 + 4                        # start_page u64, data_pages u32
RUN_FIXED = 8 + 8 + 4 + 4 + 8 * 8 + 4 + 4    # magic..log_end, data_crc, fences
FENCE = 8 + 8 + 8                            # page_id, lsn, offset
ENTRY_FRAME = 8 + 4                          # lsn u64, payload len u32
RECORD_HEADER = 56                           # kLogRecordHeaderSize
PAGE_ID_OFFSET = 28                          # within the serialized record
INVALID_PAGE_ID = 0xFFFFFFFFFFFFFFFF


class Fsck:
    def __init__(self):
        self.errors = []
        self.checks = 0

    def expect(self, ok, what):
        self.checks += 1
        if not ok:
            self.errors.append(what)
        return ok


def parse_directory(image, page_size, fsck):
    """Returns (archived_upto, [(start_page, data_pages)...]) of the best
    epoch, exactly like LogArchiver::Recover."""
    best = None
    best_epoch = -1
    saw_magic = False
    for p in range(DIRECTORY_PAGES):
        page = image[p * page_size:(p + 1) * page_size]
        if page[:8] != DIRECTORY_MAGIC:
            continue
        saw_magic = True
        epoch, upto, next_seq, count = struct.unpack_from("<QQQI", page, 8)
        end = DIRECTORY_FIXED + count * DIRECTORY_RUN
        if end + 4 > page_size:
            fsck.errors.append(f"directory page {p}: run list overflows page")
            continue
        (stored,) = struct.unpack_from("<I", page, end)
        if stored != crc32c(page[:end]):
            fsck.errors.append(f"directory page {p}: checksum mismatch")
            continue
        if epoch > best_epoch:
            best_epoch = epoch
            runs = [struct.unpack_from("<QI", page, DIRECTORY_FIXED + i * DIRECTORY_RUN)
                    for i in range(count)]
            best = (upto, next_seq, runs)
    fsck.expect(saw_magic, "no directory page carries the archive magic")
    fsck.expect(best is not None, "no directory epoch is valid")
    return best


def check_run(image, page_size, start_page, dir_data_pages, fsck):
    """Validates one run extent; returns its header fields or None."""
    tag = f"run@{start_page}"
    hdr = image[start_page * page_size:(start_page + 1) * page_size]
    if not fsck.expect(hdr[:8] == RUN_MAGIC, f"{tag}: bad run magic"):
        return None
    (seq, level, data_pages, data_bytes, record_count, min_page, max_page,
     min_lsn, max_lsn, log_start, log_end, data_crc, fence_count) = \
        struct.unpack_from("<QIIQQQQQQQQII", hdr, 8)
    fsck.expect(data_pages == dir_data_pages,
                f"{tag}: directory extent size {dir_data_pages} != header "
                f"{data_pages}")
    fence_end = RUN_FIXED + fence_count * FENCE
    if not fsck.expect(fence_end + 4 <= page_size,
                       f"{tag}: fence list overflows the header page"):
        return None
    (stored,) = struct.unpack_from("<I", hdr, fence_end)
    fsck.expect(stored == crc32c(hdr[:fence_end]),
                f"{tag}: header checksum mismatch")
    fences = [struct.unpack_from("<QQQ", hdr, RUN_FIXED + i * FENCE)
              for i in range(fence_count)]

    data_start = (start_page + 1) * page_size
    stream = image[data_start:data_start + data_pages * page_size][:data_bytes]
    if not fsck.expect(len(stream) == data_bytes,
                       f"{tag}: data extent shorter than data_bytes"):
        return None
    fsck.expect(data_crc == crc32c(stream), f"{tag}: data stream CRC mismatch")

    # Walk the entry frames: framing, per-record CRC, strict ordering.
    off = 0
    count = 0
    prev = None
    seen_min_page = seen_max_page = None
    seen_min_lsn = seen_max_lsn = None
    fence_iter = iter(fences)
    next_fence = next(fence_iter, None)
    while off < data_bytes:
        if not fsck.expect(off + ENTRY_FRAME <= data_bytes,
                           f"{tag}: entry frame at {off} truncated"):
            return None
        lsn, length = struct.unpack_from("<QI", stream, off)
        payload = stream[off + ENTRY_FRAME:off + ENTRY_FRAME + length]
        if not fsck.expect(length >= RECORD_HEADER and len(payload) == length,
                           f"{tag}: entry at {off} overruns the run"):
            return None
        (rec_len, rec_crc) = struct.unpack_from("<II", payload, 0)
        fsck.expect(rec_len == length,
                    f"{tag}: entry at {off}: length field {rec_len} != "
                    f"frame {length}")
        fsck.expect(rec_crc == mask_crc(crc32c(payload[8:])),
                    f"{tag}: entry at {off}: record CRC mismatch")
        (page_id,) = struct.unpack_from("<Q", payload, PAGE_ID_OFFSET)
        if prev is not None:
            fsck.expect(prev < (page_id, lsn),
                        f"{tag}: entries out of (page, LSN) order at {off}")
        prev = (page_id, lsn)
        fsck.expect(log_start <= lsn < log_end,
                    f"{tag}: entry LSN {lsn} outside "
                    f"[{log_start}, {log_end})")
        if next_fence is not None and next_fence[2] == off:
            fsck.expect(next_fence[0] == page_id and next_fence[1] == lsn,
                        f"{tag}: fence at offset {off} names "
                        f"({next_fence[0]}, {next_fence[1]}), entry is "
                        f"({page_id}, {lsn})")
            next_fence = next(fence_iter, None)
        seen_min_page = page_id if seen_min_page is None else min(seen_min_page, page_id)
        seen_max_page = page_id if seen_max_page is None else max(seen_max_page, page_id)
        seen_min_lsn = lsn if seen_min_lsn is None else min(seen_min_lsn, lsn)
        seen_max_lsn = lsn if seen_max_lsn is None else max(seen_max_lsn, lsn)
        count += 1
        off += ENTRY_FRAME + length
    fsck.expect(next_fence is None,
                f"{tag}: fence offset {next_fence and next_fence[2]} lands "
                f"between entries")
    fsck.expect(count == record_count,
                f"{tag}: walked {count} entries, header says {record_count}")
    if record_count > 0:
        fsck.expect((seen_min_page, seen_max_page) == (min_page, max_page),
                    f"{tag}: page-id fences [{min_page}, {max_page}] != "
                    f"observed [{seen_min_page}, {seen_max_page}]")
        fsck.expect((seen_min_lsn, seen_max_lsn) == (min_lsn, max_lsn),
                    f"{tag}: LSN bounds [{min_lsn}, {max_lsn}] != observed "
                    f"[{seen_min_lsn}, {seen_max_lsn}]")
    else:
        fsck.expect(min_page == INVALID_PAGE_ID and max_page == INVALID_PAGE_ID,
                    f"{tag}: empty run carries page-id fences")
    return {"start": start_page, "pages": 1 + data_pages, "seq": seq,
            "level": level, "records": record_count,
            "log_start": log_start, "log_end": log_end}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("image", help="raw archive volume dump")
    ap.add_argument("--page-size", type=int, default=8192)
    ap.add_argument("--log-first-lsn", type=int, default=8,
                    help="LSN of the first log record (the log file header "
                    "size); the run tiling must start here")
    args = ap.parse_args()

    with open(args.image, "rb") as f:
        image = f.read()
    fsck = Fsck()
    if len(image) % args.page_size != 0:
        print(f"FAIL: image size {len(image)} is not a multiple of the page "
              f"size {args.page_size}")
        return 1
    num_pages = len(image) // args.page_size

    directory = parse_directory(image, args.page_size, fsck)
    runs = []
    if directory is not None:
        archived_upto, next_seq, extents = directory
        for start_page, data_pages in extents:
            fsck.expect(start_page >= DIRECTORY_PAGES and
                        start_page + 1 + data_pages <= num_pages,
                        f"run@{start_page}: extent outside the volume")
            run = check_run(image, args.page_size, start_page, data_pages,
                            fsck)
            if run is not None:
                runs.append(run)

        # Extents are disjoint.
        by_start = sorted(runs, key=lambda r: r["start"])
        for a, b in zip(by_start, by_start[1:]):
            fsck.expect(a["start"] + a["pages"] <= b["start"],
                        f"run@{a['start']} overlaps run@{b['start']}")
        for r in runs:
            fsck.expect(r["seq"] < next_seq,
                        f"run@{r['start']}: seq {r['seq']} >= directory "
                        f"next_seq {next_seq}")

        # The tiling invariant over the log dimension.
        by_log = sorted(runs, key=lambda r: r["log_start"])
        if by_log:
            fsck.expect(by_log[0]["log_start"] == args.log_first_lsn,
                        f"first run starts at LSN {by_log[0]['log_start']}, "
                        f"expected {args.log_first_lsn}")
            for a, b in zip(by_log, by_log[1:]):
                fsck.expect(a["log_end"] == b["log_start"],
                            f"log-range gap/overlap between run@{a['start']} "
                            f"(ends {a['log_end']}) and run@{b['start']} "
                            f"(starts {b['log_start']})")
            fsck.expect(by_log[-1]["log_end"] == archived_upto,
                        f"last run ends at LSN {by_log[-1]['log_end']}, "
                        f"directory archived_upto is {archived_upto}")
        else:
            fsck.expect(archived_upto == 0,
                        "directory claims archived history but lists no runs")

    if fsck.errors:
        print(f"FAIL: {len(fsck.errors)} problem(s) in {args.image}:")
        for e in fsck.errors:
            print(f"  - {e}")
        return 1
    total = sum(r["records"] for r in runs)
    levels = sorted({r["level"] for r in runs})
    print(f"OK: {args.image}: {len(runs)} run(s), {total} record(s), "
          f"levels {levels or '[]'}, {fsck.checks} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
