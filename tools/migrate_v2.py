#!/usr/bin/env python3
"""One-shot mechanical migration of facade call sites to the v2 Txn API.

Not installed anywhere; kept for the PR record and deleted call sites'
archaeology. Handles the regular patterns; semantic call sites
(restore-gate dooming, crash losers) are fixed by hand.
"""
import re
import sys

RULES = [
    # Transaction* t = db->Begin();  ->  Txn t = db->BeginTxn();
    (re.compile(r'Transaction\*\s+(\w+)\s*=\s*(\bdb\w*(?:->|\.))Begin\(\)'),
     r'Txn \1 = \2BeginTxn()'),
    # db->Get(nullptr, k)  ->  db->Get(k)
    (re.compile(r'(\bdb\w*(?:->|\.))Get\(\s*nullptr\s*,\s*'), r'\1Get('),
    # db->Insert(t, ...) etc  ->  t.Insert(...)
    (re.compile(r'\bdb\w*(?:->|\.)(Insert|Update|Put|Delete|Get)\(\s*(\w+)\s*,\s*'),
     lambda m: f'{m.group(2)}.{m.group(1)}('),
    # db->Commit(t) / db->Abort(t)  ->  t.Commit() / t.Abort()
    (re.compile(r'\bdb\w*(?:->|\.)(Commit|Abort)\(\s*(\w+)\s*\)'),
     lambda m: f'{m.group(2)}.{m.group(1)}()'),
]


def migrate(path: str) -> bool:
    with open(path) as f:
        text = f.read()
    orig = text
    for pattern, repl in RULES:
        text = pattern.sub(repl, text)
    if text != orig:
        with open(path, 'w') as f:
            f.write(text)
        return True
    return False


if __name__ == '__main__':
    for p in sys.argv[1:]:
        print(('migrated ' if migrate(p) else 'unchanged ') + p)
