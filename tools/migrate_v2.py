#!/usr/bin/env python3
"""Historical: one-shot migration of v1 facade call sites to the v2 Txn API.

The v1 raw-pointer facade (Database::Begin() -> Transaction*, Commit(txn),
Insert(txn, ...)) has been DELETED — the one-release deprecation window is
over, so there is nothing left to migrate and the rewrite rules are gone
with the shims. The script is kept only so old PR discussions that
reference it still resolve; running it is now a no-op that says so.

If you are holding out-of-tree v1 call sites, migrate by hand:

    Transaction* t = db->Begin();     ->  Txn t = db->BeginTxn();
    db->Insert(t, k, v) / Commit(t)   ->  t.Insert(k, v) / t.Commit()
    db->Get(nullptr, k)               ->  db->Get(k)

and see db/session.h for the Txn handle's full surface (WriteBatch,
TxnError taxonomy, auto-abort on drop).
"""
import sys

if __name__ == '__main__':
    print('migrate_v2: the v1 facade was removed; nothing to migrate.')
    print('See the docstring for the hand-migration table '
          '(Begin() -> BeginTxn(), facade ops -> Txn members).')
    sys.exit(0)
