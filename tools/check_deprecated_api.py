#!/usr/bin/env python3
"""Deprecation firewall: keep the deleted v1 facade from coming back.

Greps tests/, examples/, and bench/ for the removed raw-pointer entry
points of the pre-v2 client API (Database::Begin() -> Transaction*,
facade ops taking a Transaction*, unlocked reads spelled Get(nullptr, ...))
so they cannot creep back in. The engine-internal TxnManager surface
(txns->Begin(), BeginSystem) is allowed — tests below the facade use it
legitimately; examples and benches are pure facade clients and may not
mention Transaction* at all.

Since the shims were deleted, src/db is scanned too: any PUBLIC
raw-pointer entry point on the Database facade (a `Transaction* Begin`
declaration, or a facade verb taking `Transaction*` first) fails the
check, so the v1 surface cannot be reintroduced. The private *Op
internals (CommitTxn, InsertOp, ...) the Txn handle drives are exempt by
name.

Exits non-zero listing every violation. Run from the repo root:

    python3 tools/check_deprecated_api.py
"""
import re
import sys
from pathlib import Path

# Patterns that always mark legacy-facade usage, in any scanned tree.
FACADE_VIOLATIONS = [
    # db->Begin() / db.Begin() — the legacy entry point. The TxnManager's
    # own Begin (txns->Begin / txns()->Begin / txns_.Begin) is engine
    # surface, not the deprecated facade.
    re.compile(r'(?<!txns)(?<!txns\(\))(?:->|\.)\s*Begin\s*\(\s*\)'),
    re.compile(r'\bDatabase::Begin\b'),
    # Legacy facade ops taking the transaction first: db->Insert(t, ...).
    re.compile(r'\bdb\w*(?:->|\.)(?:Insert|Update|Put|Delete|Get|Commit|Abort)'
               r'\(\s*(?!")[A-Za-z_]\w*\s*,'),
    # Unlocked reads spelled the v1 way (the BTree's own
    # tree->Get(nullptr, ...) is below-facade surface and stays).
    re.compile(r'\bdb\w*(?:->|\.)Get\(\s*nullptr\s*,'),
]

# Raw Transaction* handles: forbidden in the pure facade clients.
RAW_HANDLE = re.compile(r'\bTransaction\s*\*')

# Engine-internal lines the TxnManager rule must not flag.
ALLOWED = re.compile(r'txns(?:\(\)|_)?\s*(?:->|\.)\s*Begin|BeginSystem')

# src/db: declarations that would resurrect the v1 facade surface. The
# *Op/*Txn internals (InsertOp, CommitTxn, ...) do not match — only the
# bare facade verbs taking a leading Transaction* do.
REINTRODUCED_ENTRY_POINTS = [
    # Transaction* Begin(  — the raw-handle factory.
    re.compile(r'\bTransaction\s*\*\s*(?:Database\s*::\s*)?Begin\s*\('),
    # Status Commit(Transaction* ...), Get(Transaction* ...), etc.
    re.compile(r'\b(?:Commit|Abort|Insert|Update|Put|Delete|Get)\s*'
               r'\(\s*Transaction\s*\*'),
]


def scan_facade_source(path: Path) -> list:
    violations = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith('//') or stripped.startswith('///'):
            continue
        for pattern in REINTRODUCED_ENTRY_POINTS:
            if pattern.search(line):
                violations.append((path, lineno, stripped))
                break
    return violations


def scan(path: Path, forbid_raw_handle: bool) -> list:
    violations = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith('//'):
            continue
        checkable = ALLOWED.sub('', line)
        for pattern in FACADE_VIOLATIONS:
            if pattern.search(checkable):
                violations.append((path, lineno, stripped))
                break
        else:
            if forbid_raw_handle and RAW_HANDLE.search(checkable):
                violations.append((path, lineno, stripped))
    return violations


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    trees = [
        (root / 'tests', False),     # below-facade tests may borrow Transaction*
        (root / 'examples', True),   # pure facade clients: no raw handles at all
        (root / 'bench', True),
    ]
    violations = []
    for tree, forbid_raw in trees:
        for path in sorted(tree.rglob('*.h')) + sorted(tree.rglob('*.cpp')):
            violations.extend(scan(path, forbid_raw))
    facade_src = root / 'src' / 'db'
    for path in sorted(facade_src.rglob('*.h')) + sorted(facade_src.rglob('*.cpp')):
        violations.extend(scan_facade_source(path))
    if violations:
        print('deprecated v1 facade usage found '
              '(use Txn/WriteBatch — see db/session.h):')
        for path, lineno, line in violations:
            print(f'  {path.relative_to(root)}:{lineno}: {line}')
        return 1
    print('deprecation firewall: clean '
          f'({sum(1 for t, _ in trees for _ in t.rglob("*.[hc]*"))} files)')
    return 0


if __name__ == '__main__':
    sys.exit(main())
