// Unit tests for the recovery module: checkpoint body codec, checkpoint
// behavior (section 5.2.6), and the rollback executor (section 5.1.1),
// including partial-rollback resume via CLR undo_next chains.

#include <gtest/gtest.h>

#include "db/database.h"
#include "recovery/checkpoint.h"
#include "recovery/rollback.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

TEST(CheckpointBodyTest, EncodeDecodeRoundTrip) {
  CheckpointEndBody body;
  body.dpt = {{7, 100}, {9, 220}};
  body.txn_table = {{3, 500, false}, {4, 600, true}};
  body.allocator_image = "alloc-bytes";
  body.bad_blocks_image = "bbl-bytes";
  body.next_txn_id = 42;

  auto decoded = CheckpointEndBody::Decode(body.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->dpt.size(), 2u);
  EXPECT_EQ(decoded->dpt[0].page_id, 7u);
  EXPECT_EQ(decoded->dpt[1].rec_lsn, 220u);
  ASSERT_EQ(decoded->txn_table.size(), 2u);
  EXPECT_EQ(decoded->txn_table[0].txn_id, 3u);
  EXPECT_FALSE(decoded->txn_table[0].is_system);
  EXPECT_TRUE(decoded->txn_table[1].is_system);
  EXPECT_EQ(decoded->allocator_image, "alloc-bytes");
  EXPECT_EQ(decoded->bad_blocks_image, "bbl-bytes");
  EXPECT_EQ(decoded->next_txn_id, 42u);
}

TEST(CheckpointBodyTest, DecodeRejectsTruncation) {
  CheckpointEndBody body;
  body.dpt = {{1, 2}};
  std::string wire = body.Encode();
  for (size_t cut : {0ul, 3ul, wire.size() / 2}) {
    EXPECT_TRUE(CheckpointEndBody::Decode(wire.substr(0, cut))
                    .status()
                    .IsCorruption())
        << cut;
  }
}

TEST(CheckpointTest, FlushesDirtyPagesAndWritesEndRecord) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* t = db->Begin();
  for (int i = 0; i < 500; ++i) SPF_CHECK_OK(db->Insert(t, Key(i), "v"));
  SPF_CHECK_OK(db->Commit(t));
  ASSERT_GT(db->pool()->DirtyPages().size(), 0u);

  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->pages_flushed, 0u);
  EXPECT_NE(stats->begin_lsn, kInvalidLsn);
  EXPECT_GT(stats->end_lsn, stats->begin_lsn);
  // Master record points at the begin record, durable.
  EXPECT_EQ(db->log()->GetMasterRecord(), stats->begin_lsn);
  EXPECT_GE(db->log()->durable_lsn(), stats->end_lsn);
  // The pages dirty at start are clean now.
  EXPECT_TRUE(db->pool()->DirtyPages().empty());
}

TEST(CheckpointTest, ActiveTxnAppearsInEndRecord) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* active = db->Begin();
  SPF_CHECK_OK(db->Insert(active, "live", "x"));
  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());

  auto end_rec = db->log()->Read(stats->end_lsn);
  ASSERT_TRUE(end_rec.ok());
  auto body = CheckpointEndBody::Decode(end_rec->body);
  ASSERT_TRUE(body.ok());
  bool found = false;
  for (const auto& e : body->txn_table) {
    if (e.txn_id == active->id()) found = true;
  }
  EXPECT_TRUE(found);
  SPF_CHECK_OK(db->Commit(active));
}

TEST(CheckpointTest, PriTailDoesNotCascadeWithinOneCheckpoint) {
  // Section 5.2.6: writing PRI pages dirties OTHER PRI windows; those are
  // deliberately left for the next checkpoint rather than chased.
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* t = db->Begin();
  for (int i = 0; i < 500; ++i) SPF_CHECK_OK(db->Insert(t, Key(i), "v"));
  SPF_CHECK_OK(db->Commit(t));
  ASSERT_TRUE(db->Checkpoint().ok());
  // The cascade leaves some window dirty — and the next checkpoint picks
  // it up without needing data-page work.
  auto second = db->Checkpoint();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pages_flushed, 0u);  // no data pages were dirty
}

TEST(RollbackTest, FullRollbackCompensatesEverything) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* setup = db->Begin();
  SPF_CHECK_OK(db->Insert(setup, "a", "1"));
  SPF_CHECK_OK(db->Insert(setup, "b", "2"));
  SPF_CHECK_OK(db->Commit(setup));

  Transaction* t = db->Begin();
  SPF_CHECK_OK(db->Insert(t, "c", "3"));
  SPF_CHECK_OK(db->Update(t, "a", "1b"));
  SPF_CHECK_OK(db->Delete(t, "b"));

  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 3u);

  EXPECT_TRUE(db->Get(nullptr, "c").status().IsNotFound());
  EXPECT_EQ(*db->Get(nullptr, "a"), "1");
  EXPECT_EQ(*db->Get(nullptr, "b"), "2");
}

TEST(RollbackTest, ClrChainSkipsAlreadyCompensatedWork) {
  // Simulate a rollback interrupted midway: undo the last record by hand
  // (logging a CLR), then run the executor — it must skip the already-
  // compensated record via undo_next and not compensate twice.
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* setup = db->Begin();
  SPF_CHECK_OK(db->Insert(setup, "x", "orig"));
  SPF_CHECK_OK(db->Commit(setup));

  Transaction* t = db->Begin();
  SPF_CHECK_OK(db->Update(t, "x", "v1"));
  SPF_CHECK_OK(db->Update(t, "x", "v2"));

  // Manual partial undo of the SECOND update.
  auto rec2 = db->log()->Read(t->last_lsn());
  ASSERT_TRUE(rec2.ok());
  ASSERT_TRUE(db->tree()->UndoRecord(t, *rec2).ok());
  EXPECT_EQ(*db->Get(nullptr, "x"), "v1");

  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 1u);  // only the FIRST update remained
  EXPECT_GE(stats->clr_skips, 1u);
  EXPECT_EQ(*db->Get(nullptr, "x"), "orig");
}

TEST(RollbackTest, RollbackAfterSplitFindsMovedKeys) {
  // Logical undo must re-locate keys that splits moved to other pages.
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* t = db->Begin();
  SPF_CHECK_OK(db->Insert(t, Key(0), std::string(400, 'a')));
  // Big inserts force splits while t is still active; t's first insert
  // may migrate to a different leaf.
  for (int i = 1; i < 200; ++i) {
    SPF_CHECK_OK(db->Insert(t, Key(i), std::string(400, 'b')));
  }
  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 200u);
  for (int i = 0; i < 200; i += 20) {
    EXPECT_TRUE(db->Get(nullptr, Key(i)).status().IsNotFound()) << i;
  }
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(RollbackTest, ReadOnlyTransactionRollbackIsTrivial) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Transaction* t = db->Begin();
  EXPECT_TRUE(db->Get(t, "nothing").status().IsNotFound());
  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 0u);
  EXPECT_EQ(db->txns()->active_count(), 0u);
}

}  // namespace
}  // namespace spf
