// Unit tests for the recovery module: checkpoint body codec, checkpoint
// behavior (section 5.2.6), and the rollback executor (section 5.1.1),
// including partial-rollback resume via CLR undo_next chains.

#include <gtest/gtest.h>

#include "db/database.h"
#include "recovery/checkpoint.h"
#include "recovery/rollback.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

TEST(CheckpointBodyTest, EncodeDecodeRoundTrip) {
  CheckpointEndBody body;
  body.dpt = {{7, 100}, {9, 220}};
  body.txn_table = {{3, 500, false}, {4, 600, true}};
  body.allocator_image = "alloc-bytes";
  body.bad_blocks_image = "bbl-bytes";
  body.next_txn_id = 42;

  auto decoded = CheckpointEndBody::Decode(body.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->dpt.size(), 2u);
  EXPECT_EQ(decoded->dpt[0].page_id, 7u);
  EXPECT_EQ(decoded->dpt[1].rec_lsn, 220u);
  ASSERT_EQ(decoded->txn_table.size(), 2u);
  EXPECT_EQ(decoded->txn_table[0].txn_id, 3u);
  EXPECT_FALSE(decoded->txn_table[0].is_system);
  EXPECT_TRUE(decoded->txn_table[1].is_system);
  EXPECT_EQ(decoded->allocator_image, "alloc-bytes");
  EXPECT_EQ(decoded->bad_blocks_image, "bbl-bytes");
  EXPECT_EQ(decoded->next_txn_id, 42u);
}

TEST(CheckpointBodyTest, DecodeRejectsTruncation) {
  CheckpointEndBody body;
  body.dpt = {{1, 2}};
  std::string wire = body.Encode();
  for (size_t cut : {0ul, 3ul, wire.size() / 2}) {
    EXPECT_TRUE(CheckpointEndBody::Decode(wire.substr(0, cut))
                    .status()
                    .IsCorruption())
        << cut;
  }
}

TEST(CheckpointTest, FlushesDirtyPagesAndWritesEndRecord) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 500; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  ASSERT_GT(db->pool()->DirtyPages().size(), 0u);

  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->pages_flushed, 0u);
  EXPECT_NE(stats->begin_lsn, kInvalidLsn);
  EXPECT_GT(stats->end_lsn, stats->begin_lsn);
  // Master record points at the begin record, durable.
  EXPECT_EQ(db->log()->GetMasterRecord(), stats->begin_lsn);
  EXPECT_GE(db->log()->durable_lsn(), stats->end_lsn);
  // The pages dirty at start are clean now.
  EXPECT_TRUE(db->pool()->DirtyPages().empty());
}

TEST(CheckpointTest, ActiveTxnAppearsInEndRecord) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn active = db->BeginTxn();
  SPF_CHECK_OK(active.Insert("live", "x"));
  auto stats = db->Checkpoint();
  ASSERT_TRUE(stats.ok());

  auto end_rec = db->log()->Read(stats->end_lsn);
  ASSERT_TRUE(end_rec.ok());
  auto body = CheckpointEndBody::Decode(end_rec->body);
  ASSERT_TRUE(body.ok());
  bool found = false;
  for (const auto& e : body->txn_table) {
    if (e.txn_id == active.id()) found = true;
  }
  EXPECT_TRUE(found);
  SPF_CHECK_OK(active.Commit());
}

TEST(CheckpointTest, RestartDoesNotResurrectCommittedTxnFromCheckpointTable) {
  // Regression: a checkpoint snapshots its txn table before appending the
  // end record, so a transaction that commits in that window can appear
  // in the table even though its commit record PRECEDES the checkpoint
  // record in the log. The writer side now closes the window with the
  // commit gate, and restart analysis independently refuses to re-seed a
  // transaction whose finish record the scan already passed. This test
  // forges the hazardous log shape directly (commit record, then a
  // checkpoint-end record still listing the txn as active) and checks
  // that restart leaves the committed write in place.
  auto db = std::move(Database::Create(FastOptions())).value();
  {
    Txn seed = db->BeginTxn();
    SPF_CHECK_OK(seed.Insert(Key(1), "v1"));
    SPF_CHECK_OK(seed.Commit());
  }
  auto ckpt = db->Checkpoint();
  ASSERT_TRUE(ckpt.ok());
  auto real_end = db->log()->Read(ckpt->end_lsn);
  ASSERT_TRUE(real_end.ok());
  auto real_body = CheckpointEndBody::Decode(real_end->body);
  ASSERT_TRUE(real_body.ok());

  // The victim: updates an existing key (no page allocation, so the real
  // checkpoint's allocator image stays accurate) and commits durably.
  Txn victim = db->BeginTxn();
  SPF_CHECK_OK(victim.Put(Key(1), "v2"));
  TxnId victim_id = victim.id();
  SPF_CHECK_OK(victim.Commit());

  // Forge the race: a checkpoint-end record appended AFTER the commit
  // record whose table claims the victim is still active.
  CheckpointEndBody forged = *real_body;
  forged.txn_table.push_back({victim_id, db->log()->tail_lsn(), false});
  LogRecord end;
  end.type = LogRecordType::kCheckpointEnd;
  end.body = forged.Encode();
  db->log()->Append(&end);
  db->log()->ForceAll();

  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  auto got = db->Get(Key(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v2");  // the committed write survived restart undo
}

TEST(CheckpointTest, PriTailDoesNotCascadeWithinOneCheckpoint) {
  // Section 5.2.6: writing PRI pages dirties OTHER PRI windows; those are
  // deliberately left for the next checkpoint rather than chased.
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 500; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  ASSERT_TRUE(db->Checkpoint().ok());
  // The cascade leaves some window dirty — and the next checkpoint picks
  // it up without needing data-page work.
  auto second = db->Checkpoint();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pages_flushed, 0u);  // no data pages were dirty
}

TEST(RollbackTest, FullRollbackCompensatesEverything) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn setup = db->BeginTxn();
  SPF_CHECK_OK(setup.Insert("a", "1"));
  SPF_CHECK_OK(setup.Insert("b", "2"));
  SPF_CHECK_OK(setup.Commit());

  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Insert("c", "3"));
  SPF_CHECK_OK(t.Update("a", "1b"));
  SPF_CHECK_OK(t.Delete("b"));

  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t.handle());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 3u);

  EXPECT_TRUE(db->Get("c").status().IsNotFound());
  EXPECT_EQ(*db->Get("a"), "1");
  EXPECT_EQ(*db->Get("b"), "2");
}

TEST(RollbackTest, ClrChainSkipsAlreadyCompensatedWork) {
  // Simulate a rollback interrupted midway: undo the last record by hand
  // (logging a CLR), then run the executor — it must skip the already-
  // compensated record via undo_next and not compensate twice.
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn setup = db->BeginTxn();
  SPF_CHECK_OK(setup.Insert("x", "orig"));
  SPF_CHECK_OK(setup.Commit());

  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Update("x", "v1"));
  SPF_CHECK_OK(t.Update("x", "v2"));

  // Manual partial undo of the SECOND update.
  auto rec2 = db->log()->Read(t.handle()->last_lsn());
  ASSERT_TRUE(rec2.ok());
  ASSERT_TRUE(db->tree()->UndoRecord(t.handle(), *rec2).ok());
  EXPECT_EQ(*db->Get("x"), "v1");

  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t.handle());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 1u);  // only the FIRST update remained
  EXPECT_GE(stats->clr_skips, 1u);
  EXPECT_EQ(*db->Get("x"), "orig");
}

TEST(RollbackTest, RollbackAfterSplitFindsMovedKeys) {
  // Logical undo must re-locate keys that splits moved to other pages.
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Insert(Key(0), std::string(400, 'a')));
  // Big inserts force splits while t is still active; t's first insert
  // may migrate to a different leaf.
  for (int i = 1; i < 200; ++i) {
    SPF_CHECK_OK(t.Insert(Key(i), std::string(400, 'b')));
  }
  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t.handle());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 200u);
  for (int i = 0; i < 200; i += 20) {
    EXPECT_TRUE(db->Get(Key(i)).status().IsNotFound()) << i;
  }
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A repair whose backup source is an individual per-page copy must
// reproduce the live frame's update-count cadence exactly. The pool asks
// the listener BackupImminent() before the device write and restarts the
// counter BEFORE checksumming, so the device image, the per-page copy,
// and the live frame all record the cadence restart at the same write —
// and copy + k replayed chain records lands on exactly count k. The
// repaired image is byte-identical to the never-failed one.
TEST(UpdateCountCadenceTest, PerPageCopyReplayMatchesLiveCadence) {
  DatabaseOptions options = FastOptions();
  options.backup_policy.updates_threshold = 3;
  auto db = std::move(Database::Create(options)).value();

  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Insert("k", "v0"));
  SPF_CHECK_OK(t.Commit());
  auto leaf = db->LeafPageOf("k");
  ASSERT_TRUE(leaf.ok());
  PageId p = *leaf;

  // Write-back 1: image carries count 2 (format + insert, < threshold) —
  // no copy.
  ASSERT_TRUE(db->FlushAll().ok());
  // Write-back 2: counter crossed the threshold (3) — the cadence
  // restarts BEFORE the write, so the image AND the per-page copy carry
  // count 0.
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update("k", "v1"));
  SPF_CHECK_OK(t.Commit());
  ASSERT_TRUE(db->FlushAll().ok());
  // Write-back 3: one update since the copy — image carries count 1.
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update("k", "v2"));
  SPF_CHECK_OK(t.Commit());
  ASSERT_TRUE(db->FlushAll().ok());

  auto entry = db->pri()->Lookup(p);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ(entry->backup.kind, BackupKind::kBackupPage);

  PageBuffer before(db->options().page_size);
  db->data_device()->RawRead(p, before.data());
  ASSERT_EQ(before.view().update_count(), 1u);  // live cadence since copy
  Lsn lsn_before = before.view().page_lsn();

  ASSERT_TRUE(db->pool()->DiscardPage(p));
  db->data_device()->InjectSilentCorruption(p);
  auto repaired = db->RepairPages({p});
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ASSERT_EQ(repaired->repaired, 1u);

  PageBuffer after(db->options().page_size);
  db->data_device()->RawRead(p, after.data());
  // The copy stored count 0 (cadence restarted at the copy-taking write),
  // plus the 1-record chain replay = 1 — exactly the live cadence. The
  // whole image round-trips byte-for-byte.
  EXPECT_EQ(after.view().page_lsn(), lsn_before);
  EXPECT_TRUE(after.view().Verify(p).ok());
  EXPECT_EQ(after.view().update_count(), 1u);
  EXPECT_EQ(after.view().update_count(), before.view().update_count());
  EXPECT_EQ(std::memcmp(before.data(), after.data(), db->options().page_size),
            0);
  EXPECT_EQ(*db->Get("k"), "v2");
}

TEST(RollbackTest, ReadOnlyTransactionRollbackIsTrivial) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Txn t = db->BeginTxn();
  EXPECT_TRUE(t.Get("nothing").status().IsNotFound());
  RollbackExecutor exec(db->log(), db->tree(), db->txns());
  auto stats = exec.Rollback(t.handle());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records_undone, 0u);
  EXPECT_EQ(db->txns()->active_count(), 0u);
}

}  // namespace
}  // namespace spf
