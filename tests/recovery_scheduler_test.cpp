// Tests for the batched RecoveryScheduler and the background Scrubber:
// batched multi-page repair must be byte-identical to serial repair, must
// read shared log segments instead of one random read per chain record,
// and a background sweep must heal cold-page faults no foreground read
// would ever touch.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/database.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 0;  // full backup is the only source
  return o;
}

constexpr int kRecords = 3000;
constexpr int kVictimStride = 150;
constexpr int kUpdateRounds = 4;

/// Interleaved per-page log chains + all victim leaves, via the shared
/// burst construction the E8b/E9 benches use.
std::unique_ptr<Database> MakeChainedDb(DatabaseOptions options,
                                        std::vector<PageId>* victims) {
  return bench::MakeChainedBurstDb(std::move(options), kRecords,
                                   /*burst=*/SIZE_MAX, victims, kUpdateRounds,
                                   kVictimStride);
}

void CorruptAll(Database* db, const std::vector<PageId>& victims) {
  db->pool()->DiscardAll();
  for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);
}

std::vector<std::string> SnapshotPages(Database* db,
                                       const std::vector<PageId>& victims) {
  std::vector<std::string> images;
  const uint32_t page_size = db->options().page_size;
  for (PageId v : victims) {
    std::string img(page_size, '\0');
    db->data_device()->RawRead(v, img.data());
    images.push_back(std::move(img));
  }
  return images;
}

TEST(RecoverySchedulerTest, BatchedRepairMatchesSerialByteForByte) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  ASSERT_GE(victims.size(), 8u);

  // Serial baseline.
  CorruptAll(db.get(), victims);
  db->recovery_scheduler()->set_batch_repair(false);
  auto serial = db->RepairPages(victims);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->repaired, victims.size());
  EXPECT_EQ(serial->failed, 0u);
  std::vector<std::string> serial_images = SnapshotPages(db.get(), victims);

  // Batched repair of the identical damage.
  CorruptAll(db.get(), victims);
  db->recovery_scheduler()->set_batch_repair(true);
  auto batched = db->RepairPages(victims);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  EXPECT_EQ(batched->repaired, victims.size());
  EXPECT_EQ(batched->failed, 0u);
  std::vector<std::string> batched_images = SnapshotPages(db.get(), victims);

  for (size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(serial_images[i], batched_images[i])
        << "page " << victims[i] << " differs between serial and batched";
  }

  // Both result in a healthy, fully readable database.
  uint64_t checked = 0;
  ASSERT_TRUE(db->CheckOffline(&checked).ok());
  EXPECT_GT(checked, 0u);
}

TEST(RecoverySchedulerTest, BatchReadsSharedSegmentsNotPerRecord) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  ASSERT_GE(victims.size(), 8u);
  SinglePageRecovery* spr = db->single_page_recovery();

  // Serial baseline: one random log read per chain record.
  CorruptAll(db.get(), victims);
  db->recovery_scheduler()->set_batch_repair(false);
  spr->ResetStats();
  ASSERT_TRUE(db->RepairPages(victims).ok());
  SinglePageRecoveryStats serial = spr->stats();
  ASSERT_EQ(serial.repairs_succeeded, victims.size());
  // Every page was updated after its backup, so chains are non-trivial
  // and the serial walk paid at least pages × chain_length log reads.
  ASSERT_GE(serial.log_records_applied, victims.size() * kUpdateRounds);
  ASSERT_GE(serial.log_reads, serial.log_records_applied);

  // Batched: the same records must be applied, but the log is read in
  // shared segments — strictly fewer fetches than pages × chain_length.
  CorruptAll(db.get(), victims);
  db->recovery_scheduler()->set_batch_repair(true);
  spr->ResetStats();
  db->recovery_scheduler()->ResetStats();
  ASSERT_TRUE(db->RepairPages(victims).ok());
  SinglePageRecoveryStats batched = spr->stats();
  EXPECT_EQ(batched.repairs_succeeded, victims.size());
  EXPECT_EQ(batched.log_records_applied, serial.log_records_applied);
  EXPECT_LT(batched.log_reads, serial.log_reads);
  EXPECT_LT(batched.log_reads, victims.size() * kUpdateRounds);

  RecoverySchedulerStats sched = db->recovery_scheduler()->stats();
  EXPECT_EQ(sched.batches, 1u);
  EXPECT_EQ(sched.pages_repaired, victims.size());
  EXPECT_GT(sched.segment_fetches, 0u);
  EXPECT_GE(sched.chain_clusters, 1u);
}

TEST(RecoverySchedulerTest, EmptyAndDuplicateBatches) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);

  auto empty = db->RepairPages({});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->repaired, 0u);

  CorruptAll(db.get(), {victims[0]});
  auto dup = db->RepairPages({victims[0], victims[0], victims[0]});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->repaired, 1u);
}

TEST(RecoverySchedulerTest, ForegroundReadsStillFunnelThroughScheduler) {
  // With auto-escalation OFF the pre-funnel wiring applies: a foreground
  // read of the corrupted page repairs inline (Figure 8) and is accounted
  // as a single-page request on the scheduler.
  DatabaseOptions options = FastOptions();
  options.auto_escalate = false;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  CorruptAll(db.get(), {victims[0]});

  auto v = db->Get(Key(0));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_GT(db->recovery_scheduler()->stats().single_repairs, 0u);
  EXPECT_GT(db->single_page_recovery()->stats().repairs_succeeded, 0u);
}

TEST(RecoverySchedulerTest, ForegroundReadsRouteThroughTheFunnelByDefault) {
  // Default wiring: the read path reports into the failure funnel and
  // waits; the repair still runs through the scheduler's batch machinery
  // (RecoverPages' single-page rung), not the inline single_repairs hook.
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  CorruptAll(db.get(), {victims[0]});

  auto v = db->Get(Key(0));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  StatsSnapshot stats = db->Stats();
  EXPECT_EQ(stats.scheduler.single_repairs, 0u);
  EXPECT_GE(stats.funnel.from_foreground, 1u);
  EXPECT_GE(stats.funnel.repaired_spr, 1u);
  EXPECT_GT(stats.spr.repairs_succeeded, 0u);
}

TEST(ScrubberTest, IncrementalTicksCoverTheWholeDevice) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  CorruptAll(db.get(), victims);

  // Tick with a small budget until one full sweep completed; every
  // injected fault must be found and reported into the failure funnel,
  // which heals it without any foreground read.
  uint64_t reported = 0;
  for (int i = 0; i < 1000; ++i) {
    auto tick = db->scrubber()->Tick();
    ASSERT_TRUE(tick.ok()) << tick.status().ToString();
    reported += tick->failures_reported;
    if (db->scrubber()->totals().sweeps_completed >= 1) break;
  }
  EXPECT_EQ(db->scrubber()->totals().sweeps_completed, 1u);
  EXPECT_GE(reported, victims.size());
  db->funnel()->WaitIdle();
  FunnelTotals funnel = db->funnel()->totals();
  EXPECT_GE(funnel.repaired_spr + funnel.repaired_partial, victims.size());
  EXPECT_EQ(funnel.failed, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(ScrubberTest, BackgroundScrubHealsColdPageWithoutForegroundRead) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);

  // A cold page develops a latent fault. No foreground read ever touches
  // it; only the background sweep can notice.
  PageId cold = victims[victims.size() / 2];
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(cold);

  db->scrubber()->Start();
  ASSERT_TRUE(db->scrubber()->running());
  // Wall-clock bound; simulated time advances through the sweep's own
  // device reads. Wait for the funnel to have HEALED the report, not
  // just for the sweep to pass over it.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (db->funnel()->totals().repaired_spr < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  db->scrubber()->Stop();
  ASSERT_FALSE(db->scrubber()->running());
  db->funnel()->WaitIdle();

  ScrubberTotals totals = db->scrubber()->totals();
  EXPECT_GE(totals.failures_detected, 1u);
  EXPECT_GE(totals.failures_reported, 1u);
  EXPECT_EQ(totals.escalations, 0u);
  FunnelTotals funnel = db->funnel()->totals();
  EXPECT_GE(funnel.from_scrubber, 1u);
  EXPECT_GE(funnel.repaired_spr, 1u);
  EXPECT_EQ(funnel.failed, 0u);

  // The device copy is healed in place — verified WITHOUT any database
  // read path.
  PageBuffer buf(db->options().page_size);
  db->data_device()->RawRead(cold, buf.data());
  EXPECT_TRUE(buf.view().Verify(cold).ok());
}

TEST(ScrubberTest, ScrubIsThinWrapperOverScrubberSweep) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  CorruptAll(db.get(), victims);

  auto scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_GE(scrub->failures_detected, victims.size());
  EXPECT_GE(scrub->pages_repaired, victims.size());
  EXPECT_EQ(db->scrubber()->totals().sweeps_completed, 1u);

  // Second sweep is clean.
  auto again = db->Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->failures_detected, 0u);
}

}  // namespace
}  // namespace spf
