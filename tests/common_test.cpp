// Unit tests for src/common: Status, StatusOr, CRC32C, coding, Random,
// ZipfGenerator, SimClock.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/units.h"

namespace spf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("checksum mismatch on page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "checksum mismatch on page 7");
  EXPECT_EQ(s.ToString(), "Corruption: checksum mismatch on page 7");
}

TEST(StatusTest, CopyIsCheap) {
  Status a = Status::IOError("x");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "x");
}

TEST(StatusTest, SinglePageFailureCandidates) {
  EXPECT_TRUE(Status::Corruption("").IsSinglePageFailureCandidate());
  EXPECT_TRUE(Status::ReadFailure("").IsSinglePageFailureCandidate());
  EXPECT_FALSE(Status::IOError("").IsSinglePageFailureCandidate());
  EXPECT_FALSE(Status::MediaFailure("").IsSinglePageFailureCandidate());
  EXPECT_FALSE(Status::OK().IsSinglePageFailureCandidate());
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= 12; ++c) {
    EXPECT_NE(Status::CodeName(static_cast<Status::Code>(c)), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  SPF_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssignOrReturn(3, &out).IsInvalidArgument());
}

TEST(Crc32cTest, KnownProperties) {
  // Deterministic and sensitive to every byte.
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t c1 = crc32c::Value(data.data(), data.size());
  EXPECT_EQ(c1, crc32c::Value(data.data(), data.size()));
  data[10] ^= 1;
  EXPECT_NE(c1, crc32c::Value(data.data(), data.size()));
}

TEST(Crc32cTest, StandardVector) {
  // CRC32C of 32 bytes of zeros (iSCSI test vector): 0x8a9136aa.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8a9136aau);
  // CRC32C of "123456789" is 0xe3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string data = "hello world, this is a checksum test";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t part = crc32c::Extend(crc32c::Value(data.data(), 10),
                                 data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(v)), v);
    EXPECT_NE(crc32c::Mask(v), v);  // mask changes the value
  }
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xbeef);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  size_t off = 0;
  uint16_t a;
  uint32_t b;
  uint64_t c;
  ASSERT_TRUE(GetFixed16(buf, &off, &a));
  ASSERT_TRUE(GetFixed32(buf, &off, &b));
  ASSERT_TRUE(GetFixed64(buf, &off, &c));
  EXPECT_EQ(a, 0xbeef);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefull);
  EXPECT_EQ(off, buf.size());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "alpha");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  size_t off = 0;
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &a));
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &b));
  ASSERT_TRUE(GetLengthPrefixed(buf, &off, &c));
  EXPECT_EQ(a, "alpha");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodingTest, TruncationDetected) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  size_t off = 0;
  std::string_view out;
  std::string_view truncated(buf.data(), buf.size() - 2);
  EXPECT_FALSE(GetLengthPrefixed(truncated, &off, &out));
  off = buf.size();  // nothing left
  EXPECT_FALSE(GetLengthPrefixed(buf, &off, &out));
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LT(v, 20u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, NextStringHasRequestedLength) {
  Random rng(9);
  EXPECT_EQ(rng.NextString(0).size(), 0u);
  EXPECT_EQ(rng.NextString(17).size(), 17u);
  // Two draws differ with overwhelming probability.
  EXPECT_NE(rng.NextString(16), rng.NextString(16));
}

TEST(ZipfTest, StaysInRangeAndSkews) {
  const uint64_t n = 1000;
  ZipfGenerator zipf(n, 0.99, 1);
  std::vector<uint64_t> counts(n, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // The most popular item must dominate the median item by a wide margin.
  EXPECT_GT(counts[0], 50u * std::max<uint64_t>(counts[500], 1));
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  const uint64_t n = 10;
  ZipfGenerator zipf(n, 0.0, 3);
  std::vector<uint64_t> counts(n, 0);
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next()]++;
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], kDraws / n / 2) << "bucket " << i;
    EXPECT_LT(counts[i], kDraws * 2 / n) << "bucket " << i;
  }
}

TEST(SimClockTest, AdvancesAndConverts) {
  SimClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.AdvanceNanos(500);
  clock.AdvanceMicros(2);
  clock.AdvanceMillis(1);
  EXPECT_EQ(clock.NowNanos(), 500u + 2000u + 1000000u);
  EXPECT_NEAR(clock.NowSeconds(), 1.0025e-3, 1e-9);
  clock.Reset();
  EXPECT_EQ(clock.NowNanos(), 0u);
}

TEST(SimClockTest, ThreadSafeAccumulation) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 10000; ++i) clock.AdvanceNanos(3);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(clock.NowNanos(), 8u * 10000u * 3u);
}

TEST(SimTimerTest, MeasuresScope) {
  SimClock clock;
  clock.AdvanceNanos(100);
  SimTimer timer(&clock);
  clock.AdvanceNanos(250);
  EXPECT_EQ(timer.ElapsedNanos(), 250u);
}

TEST(UnitsTest, Arithmetic) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGB / kMB, 1000u);
  EXPECT_EQ(kSecond, 1000u * 1000u * 1000u);
}

}  // namespace
}  // namespace spf
