// Unit tests for transactions: user vs system commit protocols (paper
// section 5.1.5 / Figure 5), per-transaction chains, the active-txn table,
// and loser adoption for restart.

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace spf {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest()
      : wal_("wal", DeviceProfile::Instant(), &clock_),
        log_(&wal_),
        txns_(&log_, &locks_) {}

  LogRecord ContentRecord(std::string body) {
    LogRecord rec;
    rec.type = LogRecordType::kBTreeInsert;
    rec.body = std::move(body);
    return rec;
  }

  SimClock clock_;
  SimLogDevice wal_;
  LogManager log_;
  LockManager locks_;
  TxnManager txns_;
};

TEST_F(TxnTest, IdsAreUniqueAndMonotonic) {
  Transaction* a = txns_.Begin().get();
  Transaction* b = txns_.Begin().get();
  EXPECT_LT(a->id(), b->id());
  EXPECT_NE(a->id(), kInvalidTxnId);
  EXPECT_EQ(txns_.active_count(), 2u);
  txns_.Commit(a);
  txns_.Commit(b);
  EXPECT_EQ(txns_.active_count(), 0u);
}

TEST_F(TxnTest, UserCommitForcesLog) {
  Transaction* t = txns_.Begin().get();
  LogRecord rec = ContentRecord("x");
  t->Log(&log_, &rec);
  EXPECT_LT(log_.durable_lsn(), log_.tail_lsn());
  ASSERT_TRUE(txns_.Commit(t).ok());
  // Commit record appended AND forced.
  EXPECT_EQ(log_.durable_lsn(), log_.tail_lsn());
}

TEST_F(TxnTest, SystemCommitDoesNotForce) {
  // Figure 5: system transactions log a commit record but do not force it.
  Transaction* sys = txns_.BeginSystem();
  LogRecord rec = ContentRecord("structural");
  sys->Log(&log_, &rec);
  Lsn durable_before = log_.durable_lsn();
  ASSERT_TRUE(txns_.Commit(sys).ok());
  EXPECT_EQ(log_.durable_lsn(), durable_before);
  EXPECT_LT(log_.durable_lsn(), log_.tail_lsn());
  // The commit record exists in the buffer and carries the system flag.
  auto it = log_.Scan(log_.first_lsn());
  bool saw_sys_commit = false;
  for (; it.Valid(); it.Next()) {
    if (it.record().type == LogRecordType::kCommitTxn &&
        it.record().is_system_txn()) {
      saw_sys_commit = true;
    }
  }
  EXPECT_TRUE(saw_sys_commit);
}

TEST_F(TxnTest, ReadOnlyCommitLogsNothing) {
  Lsn before = log_.tail_lsn();
  Transaction* t = txns_.Begin().get();
  ASSERT_TRUE(txns_.Commit(t).ok());
  EXPECT_EQ(log_.tail_lsn(), before);
}

TEST_F(TxnTest, PerTxnChainLinksRecords) {
  Transaction* t = txns_.Begin().get();
  LogRecord r1 = ContentRecord("a");
  LogRecord r2 = ContentRecord("b");
  LogRecord r3 = ContentRecord("c");
  Lsn l1 = t->Log(&log_, &r1);
  Lsn l2 = t->Log(&log_, &r2);
  t->Log(&log_, &r3);
  EXPECT_EQ(r1.prev_lsn, kInvalidLsn);
  EXPECT_EQ(r2.prev_lsn, l1);
  EXPECT_EQ(r3.prev_lsn, l2);
  EXPECT_EQ(t->first_lsn(), l1);
  EXPECT_EQ(t->last_lsn(), r3.lsn);
  txns_.Commit(t);
}

TEST_F(TxnTest, CommitReleasesLocks) {
  Transaction* t = txns_.Begin().get();
  ASSERT_TRUE(locks_.Lock(t->id(), "key", LockMode::kExclusive).ok());
  txns_.Commit(t);
  EXPECT_FALSE(locks_.IsLocked("key"));
}

TEST_F(TxnTest, AbortPathLogsAbortAndEnd) {
  Transaction* t = txns_.Begin().get();
  LogRecord rec = ContentRecord("x");
  t->Log(&log_, &rec);
  ASSERT_TRUE(txns_.BeginAbort(t).ok());
  txns_.FinishAbort(t);
  EXPECT_EQ(txns_.active_count(), 0u);

  std::vector<LogRecordType> types;
  for (auto it = log_.Scan(log_.first_lsn()); it.Valid(); it.Next()) {
    types.push_back(it.record().type);
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[1], LogRecordType::kAbortTxn);
  EXPECT_EQ(types[2], LogRecordType::kEndTxn);
}

TEST_F(TxnTest, ActiveTxnTableSnapshot) {
  Transaction* a = txns_.Begin().get();
  Transaction* sys = txns_.BeginSystem();
  LogRecord rec = ContentRecord("x");
  a->Log(&log_, &rec);
  auto table = txns_.ActiveTxns();
  ASSERT_EQ(table.size(), 2u);
  bool found_user = false, found_sys = false;
  for (const auto& e : table) {
    if (e.txn_id == a->id()) {
      found_user = true;
      EXPECT_EQ(e.last_lsn, a->last_lsn());
      EXPECT_FALSE(e.is_system);
    }
    if (e.txn_id == sys->id()) {
      found_sys = true;
      EXPECT_TRUE(e.is_system);
    }
  }
  EXPECT_TRUE(found_user);
  EXPECT_TRUE(found_sys);
  txns_.Commit(a);
  txns_.Commit(sys);
}

TEST_F(TxnTest, AdoptLoserRestoresChain) {
  Transaction* loser = txns_.AdoptLoser(77, /*last_lsn=*/1234, /*undo_next=*/1234);
  EXPECT_EQ(loser->id(), 77u);
  EXPECT_EQ(loser->last_lsn(), 1234u);
  EXPECT_EQ(loser->undo_next_lsn(), 1234u);
  EXPECT_EQ(loser->state(), TxnState::kActive);
  // Ids continue beyond the adopted one.
  Transaction* next = txns_.Begin().get();
  EXPECT_GT(next->id(), 77u);
  txns_.Commit(next);
  txns_.BeginAbort(loser);
  txns_.FinishAbort(loser);
}

TEST_F(TxnTest, StatsTrackOutcomes) {
  Transaction* a = txns_.Begin().get();
  LogRecord rec = ContentRecord("x");
  a->Log(&log_, &rec);
  txns_.Commit(a);
  Transaction* b = txns_.Begin().get();
  txns_.BeginAbort(b);
  txns_.FinishAbort(b);
  Transaction* s = txns_.BeginSystem();
  txns_.Commit(s);
  TxnStats st = txns_.stats();
  EXPECT_EQ(st.user_begun, 2u);
  EXPECT_EQ(st.user_committed, 1u);
  EXPECT_EQ(st.user_aborted, 1u);
  EXPECT_EQ(st.system_begun, 1u);
  EXPECT_EQ(st.system_committed, 1u);
}

TEST_F(TxnTest, LoggingOnFinishedTxnAborts) {
  Transaction* t = txns_.Begin().get();
  txns_.Commit(t);
  // t is retired; using it again is a programming error (death test).
  // (Covered by the CHECK in Transaction::Stamp; not exercised here to
  // keep the suite death-test free.)
  SUCCEED();
}

}  // namespace
}  // namespace spf
