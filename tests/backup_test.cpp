// Unit tests for the backup subsystem: full backups, per-page copies with
// allocate-before-free semantics, and in-log page images (section 5.2.1).

#include <gtest/gtest.h>

#include <cstring>

#include "backup/backup_manager.h"
#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "storage/page.h"
#include "storage/sim_device.h"

namespace spf {
namespace {

constexpr uint32_t kPS = 4096;
constexpr uint64_t kDataPages = 64;

class BackupTest : public ::testing::Test {
 protected:
  BackupTest()
      : data_("data", kPS, kDataPages, DeviceProfile::Instant(), &clock_),
        backup_dev_("backup", kPS, kDataPages + 32, DeviceProfile::Instant(),
                    &clock_),
        wal_("wal", DeviceProfile::Instant(), &clock_),
        log_(&wal_),
        mgr_(&data_, &backup_dev_, &log_) {}

  std::string MakePage(PageId id, char fill, Lsn lsn = 0) {
    std::string buf(kPS, '\0');
    PageView page(buf.data(), kPS);
    page.Format(id, PageType::kRaw);
    std::memset(buf.data() + kPageHeaderSize, fill, 100);
    page.set_page_lsn(lsn);
    page.UpdateChecksum();
    return buf;
  }

  SimClock clock_;
  SimDevice data_;
  SimDevice backup_dev_;
  SimLogDevice wal_;
  LogManager log_;
  BackupManager mgr_;
};

TEST_F(BackupTest, NoBackupInitially) {
  EXPECT_FALSE(mgr_.latest_full_backup().has_value());
  char buf[kPS];
  EXPECT_TRUE(mgr_.ReadFromFullBackup(1, 0, buf).IsNotFound());
}

TEST_F(BackupTest, FullBackupRoundTrip) {
  for (PageId p = 0; p < kDataPages; ++p) {
    std::string img = MakePage(p, static_cast<char>('a' + p % 26));
    ASSERT_TRUE(data_.WritePage(p, img.data()).ok());
  }
  auto info = mgr_.TakeFullBackup();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_pages, kDataPages);
  EXPECT_GT(info->backup_lsn, 0u);

  // Overwrite the data device, then read the original back from backup.
  std::string changed = MakePage(5, 'Z');
  data_.WritePage(5, changed.data());
  std::string out(kPS, '\0');
  ASSERT_TRUE(mgr_.ReadFromFullBackup(info->id, 5, out.data()).ok());
  PageView page(out.data(), kPS);
  EXPECT_TRUE(page.Verify(5).ok());
  EXPECT_EQ(out[kPageHeaderSize], 'f');  // 'a' + 5
}

TEST_F(BackupTest, RestoreFullBackupRewritesDevice) {
  for (PageId p = 0; p < kDataPages; ++p) {
    std::string img = MakePage(p, 'x');
    data_.WritePage(p, img.data());
  }
  auto info = mgr_.TakeFullBackup();
  ASSERT_TRUE(info.ok());
  // Trash the device.
  for (PageId p = 0; p < kDataPages; ++p) {
    std::string junk(kPS, 'J');
    data_.WritePage(p, junk.data());
  }
  auto restored = mgr_.RestoreFullBackup(info->id, &data_);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, kDataPages);
  std::string out(kPS, '\0');
  data_.ReadPage(9, out.data());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(9).ok());
}

TEST_F(BackupTest, PageBackupAllocateThenFree) {
  std::string v1 = MakePage(3, 'a', 100);
  auto slot1 = mgr_.TakePageBackup(3, v1.data());
  ASSERT_TRUE(slot1.ok());
  EXPECT_GE(*slot1, kDataPages);  // page-copy pool is beyond the full backup

  std::string v2 = MakePage(3, 'b', 200);
  auto slot2 = mgr_.TakePageBackup(3, v2.data());
  ASSERT_TRUE(slot2.ok());
  EXPECT_NE(*slot1, *slot2) << "old backup must not be overwritten in place";

  // The old slot is recycled for the NEXT backup.
  std::string other = MakePage(7, 'c', 10);
  auto slot3 = mgr_.TakePageBackup(7, other.data());
  ASSERT_TRUE(slot3.ok());
  EXPECT_EQ(*slot3, *slot1);

  std::string out(kPS, '\0');
  ASSERT_TRUE(mgr_.ReadPageBackup(*slot2, out.data()).ok());
  EXPECT_EQ(PageView(out.data(), kPS).page_lsn(), 200u);

  BackupStats s = mgr_.stats();
  EXPECT_EQ(s.page_backups_taken, 3u);
  EXPECT_EQ(s.page_backups_freed, 1u);
}

TEST_F(BackupTest, InLogImageRoundTrip) {
  std::string img = MakePage(12, 'q', 777);
  auto lsn = mgr_.LogPageImage(12, img.data());
  ASSERT_TRUE(lsn.ok());

  std::string out(kPS, '\0');
  ASSERT_TRUE(mgr_.ReadLogImage(*lsn, 12, out.data()).ok());
  EXPECT_EQ(out, img);
  EXPECT_EQ(PageView(out.data(), kPS).page_lsn(), 777u);

  // Wrong page id is rejected.
  EXPECT_TRUE(mgr_.ReadLogImage(*lsn, 13, out.data()).IsCorruption());
}

TEST_F(BackupTest, ReadLogImageRejectsNonImageRecord) {
  LogRecord rec;
  rec.type = LogRecordType::kBeginTxn;
  rec.txn_id = 1;
  Lsn lsn = log_.Append(&rec);
  std::string out(kPS, '\0');
  EXPECT_TRUE(mgr_.ReadLogImage(lsn, 0, out.data()).IsCorruption());
}

TEST_F(BackupTest, ImageNotOnPerPageChain) {
  // Taking an image must not perturb the per-page chain: the record's
  // page_prev_lsn is informational and PageLSN does not advance.
  std::string img = MakePage(2, 'm', 55);
  auto lsn = mgr_.LogPageImage(2, img.data());
  ASSERT_TRUE(lsn.ok());
  auto rec = log_.Read(*lsn);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->page_id, 2u);
  EXPECT_EQ(rec->page_prev_lsn, kInvalidLsn);
}

TEST_F(BackupTest, BackupLsnCoversSubsequentLog) {
  LogRecord rec;
  rec.type = LogRecordType::kBeginTxn;
  rec.txn_id = 1;
  log_.Append(&rec);
  auto info = mgr_.TakeFullBackup();
  ASSERT_TRUE(info.ok());
  // Everything appended before the backup is durable and before backup_lsn.
  EXPECT_GE(info->backup_lsn, rec.lsn + rec.length);
}

TEST_F(BackupTest, ExplicitBackupLsnIsRecorded) {
  // A caller with a write-back cache above the data device captures the
  // backup LSN BEFORE flushing the cache and passes it in (a commit landing
  // between the flush and a later capture would sit below the backup LSN
  // yet inside neither the image nor the replay range — a lost update).
  // The manager must record the passed LSN verbatim, not the durable LSN
  // at copy time.
  for (PageId p = 0; p < kDataPages; ++p) {
    std::string img = MakePage(p, 'x', 5);
    ASSERT_TRUE(data_.WritePage(p, img.data()).ok());
  }
  LogRecord rec;
  rec.type = LogRecordType::kBeginTxn;
  rec.txn_id = 1;
  Lsn before = log_.Append(&rec);
  rec.txn_id = 2;
  log_.Append(&rec);  // durable LSN moves past `before`

  auto info = mgr_.TakeFullBackup(/*backup_lsn=*/before);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->backup_lsn, before);

  // Without an explicit LSN the manager captures the durable LSN itself.
  auto info2 = mgr_.TakeFullBackup();
  ASSERT_TRUE(info2.ok());
  EXPECT_GT(info2->backup_lsn, before);
}

TEST_F(BackupTest, VerificationHooksHealBeforeCopyOrAbort) {
  // Regression (chaos harness, seed 5): with verification hooks installed,
  // a page that fails in-page verification is routed through repair and
  // re-read — never copied as garbage over the only backup of that page —
  // and a page that stays bad aborts the backup without publishing it.
  for (PageId p = 0; p < kDataPages; ++p) {
    std::string img = MakePage(p, static_cast<char>('a' + p % 26), 9);
    ASSERT_TRUE(data_.WritePage(p, img.data()).ok());
  }
  data_.InjectSilentCorruption(9);

  int repairs = 0;
  mgr_.SetFullBackupVerification(
      [](PageId) { return true; },
      [&](PageId p) {
        repairs++;
        std::string good = MakePage(p, 'g', 9);
        return data_.WritePage(p, good.data());
      });
  auto info = mgr_.TakeFullBackup();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(repairs, 1);
  std::string out(kPS, '\0');
  ASSERT_TRUE(mgr_.ReadFromFullBackup(info->id, 9, out.data()).ok());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(9).ok());

  // A "repair" that fixes nothing: the backup must abort and the catalog
  // must keep pointing at the last good backup.
  data_.InjectSilentCorruption(20);
  mgr_.SetFullBackupVerification([](PageId) { return true; },
                                 [](PageId) { return Status::OK(); });
  EXPECT_FALSE(mgr_.TakeFullBackup().ok());
  auto latest = mgr_.latest_full_backup();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->id, info->id);
}

}  // namespace
}  // namespace spf
