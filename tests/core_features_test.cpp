// Tests for the core module's auxiliary features: page versioning via
// single-page rollback (section 5.1.4), the mirroring baseline (section
// 2), single-page recovery edge cases and escalation paths, and the PRI
// manager's write-tracking modes.

#include <gtest/gtest.h>

#include <cstring>

#include "core/mirror_baseline.h"
#include "core/page_versioning.h"
#include "db/database.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 0;
  return o;
}

std::unique_ptr<Database> MakeDb() {
  return std::move(Database::Create(FastOptions())).value();
}

// --- page versioning (section 5.1.4) --------------------------------------------

class PageVersioningTest : public ::testing::Test {
 protected:
  PageVersioningTest() : db_(MakeDb()) {
    Txn t = db_->BeginTxn();
    SPF_CHECK_OK(t.Insert("versioned", "v0"));
    SPF_CHECK_OK(t.Commit());
    victim_ = *db_->LeafPageOf("versioned");
  }

  // Updates the key and returns the page's LSN after the update.
  Lsn UpdateTo(const std::string& value) {
    Txn t = db_->BeginTxn();
    SPF_CHECK_OK(t.Update("versioned", value));
    SPF_CHECK_OK(t.Commit());
    auto g = db_->pool()->FixPage(victim_, LatchMode::kShared);
    SPF_CHECK(g.ok());
    return g->view().page_lsn();
  }

  PageBuffer CopyCurrentPage() {
    PageBuffer copy(kDefaultPageSize);
    auto g = db_->pool()->FixPage(victim_, LatchMode::kShared);
    SPF_CHECK(g.ok());
    std::memcpy(copy.data(), g->view().data(), kDefaultPageSize);
    return copy;
  }

  std::string ValueIn(PageView page) {
    BTreeNode node(page);
    auto fr = node.Find("versioned");
    SPF_CHECK(fr.found);
    return std::string(node.ValueAt(fr.slot));
  }

  std::unique_ptr<Database> db_;
  PageId victim_;
};

TEST_F(PageVersioningTest, RollsBackThroughUpdates) {
  Lsn lsn1 = UpdateTo("v1");
  Lsn lsn2 = UpdateTo("v2");
  UpdateTo("v3");

  PageBuffer copy = CopyCurrentPage();
  PageVersioning versioning(db_->log());
  ASSERT_TRUE(versioning.RollBackTo(copy.view(), lsn2).ok());
  EXPECT_EQ(ValueIn(copy.view()), "v2");
  EXPECT_EQ(copy.view().page_lsn(), lsn2);

  // Continue rolling the same copy further back.
  ASSERT_TRUE(versioning.RollBackTo(copy.view(), lsn1).ok());
  EXPECT_EQ(ValueIn(copy.view()), "v1");
}

TEST_F(PageVersioningTest, RollsBackInsertAndDelete) {
  // Insert a second key, roll back: it must vanish from the version.
  Txn t = db_->BeginTxn();
  Lsn before;
  {
    auto g = db_->pool()->FixPage(victim_, LatchMode::kShared);
    before = g->view().page_lsn();
  }
  SPF_CHECK_OK(t.Insert("versioned2", "x"));
  SPF_CHECK_OK(t.Delete("versioned"));
  SPF_CHECK_OK(t.Commit());

  PageBuffer copy = CopyCurrentPage();
  PageVersioning versioning(db_->log());
  ASSERT_TRUE(versioning.RollBackTo(copy.view(), before).ok());
  BTreeNode node(copy.view());
  auto fr1 = node.Find("versioned");
  ASSERT_TRUE(fr1.found);
  EXPECT_FALSE(node.IsGhost(fr1.slot)) << "delete must be rolled back";
  auto fr2 = node.Find("versioned2");
  EXPECT_FALSE(fr2.found) << "insert must be rolled back";
}

TEST_F(PageVersioningTest, NoopWhenAlreadyAtTarget) {
  Lsn now;
  {
    auto g = db_->pool()->FixPage(victim_, LatchMode::kShared);
    now = g->view().page_lsn();
  }
  PageBuffer copy = CopyCurrentPage();
  PageVersioning versioning(db_->log());
  ASSERT_TRUE(versioning.RollBackTo(copy.view(), now).ok());
  EXPECT_EQ(versioning.stats().records_rolled_back, 0u);
}

TEST_F(PageVersioningTest, StructuralRecordEndsTheWindow) {
  // Force a split on the victim's chain; rollback across it must report
  // NotSupported (the documented version boundary).
  Lsn before;
  {
    auto g = db_->pool()->FixPage(victim_, LatchMode::kShared);
    before = g->view().page_lsn();
  }
  Txn t = db_->BeginTxn();
  for (int i = 0; i < 300; ++i) {
    SPF_CHECK_OK(t.Insert(Key(i), std::string(200, 'z')));
  }
  SPF_CHECK_OK(t.Commit());

  // The victim leaf must have split by now; find its current page and
  // roll back across the split record.
  PageId current = *db_->LeafPageOf("versioned");
  PageBuffer copy(kDefaultPageSize);
  {
    auto g = db_->pool()->FixPage(current, LatchMode::kShared);
    std::memcpy(copy.data(), g->view().data(), kDefaultPageSize);
  }
  PageVersioning versioning(db_->log());
  Status s = versioning.RollBackTo(copy.view(), before);
  // Either we hit a structural record (NotSupported) or — if this page's
  // chain happens to contain only content records back to `before` — it
  // succeeds. Both are legal; a wrong result is not.
  if (!s.ok()) {
    EXPECT_TRUE(s.IsNotSupported()) << s.ToString();
  }
}

// --- mirroring baseline (section 2) ------------------------------------------------

TEST(MirrorBaselineTest, CatchUpTracksPrincipal) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 300; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v1"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());

  SimDevice mirror_dev("mirror", kDefaultPageSize, 2048,
                       DeviceProfile::Instant(), db->clock());
  MirrorBaseline mirror(db->log(), &mirror_dev, db->clock());
  ASSERT_TRUE(mirror.SeedFromPrincipal(db->data_device()).ok());

  // Updates after the seed: the mirror catches up by applying the stream.
  t = db->BeginTxn();
  for (int i = 0; i < 300; ++i) SPF_CHECK_OK(t.Update(Key(i), "v2"));
  SPF_CHECK_OK(t.Commit());
  db->log()->ForceAll();
  ASSERT_TRUE(mirror.CatchUp().ok());
  EXPECT_GT(mirror.stats().records_applied, 0u);

  // The mirror's copy of a leaf equals the principal's flushed state.
  SPF_CHECK_OK(db->FlushAll());
  PageId leaf = *db->LeafPageOf(Key(100));
  PageBuffer from_mirror(kDefaultPageSize);
  ASSERT_TRUE(mirror.RepairFrom(leaf, from_mirror.data()).ok());
  BTreeNode node(from_mirror.view());
  auto fr = node.Find(Key(100));
  ASSERT_TRUE(fr.found);
  EXPECT_EQ(node.ValueAt(fr.slot), "v2");
}

TEST(MirrorBaselineTest, RepairWithoutSeedFails) {
  auto db = MakeDb();
  SimDevice mirror_dev("mirror", kDefaultPageSize, 2048,
                       DeviceProfile::Instant(), db->clock());
  MirrorBaseline mirror(db->log(), &mirror_dev, db->clock());
  PageBuffer buf(kDefaultPageSize);
  EXPECT_TRUE(mirror.RepairFrom(5, buf.data()).IsFailedPrecondition());
}

TEST(MirrorBaselineTest, MirrorAppliesWholeStreamForOnePage) {
  // The paper's criticism, as a testable property: repairing ONE page
  // forces the mirror to process the ENTIRE pending stream.
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 200; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());

  SimDevice mirror_dev("mirror", kDefaultPageSize, 2048,
                       DeviceProfile::Instant(), db->clock());
  MirrorBaseline mirror(db->log(), &mirror_dev, db->clock());
  ASSERT_TRUE(mirror.SeedFromPrincipal(db->data_device()).ok());

  t = db->BeginTxn();
  for (int i = 0; i < 200; ++i) SPF_CHECK_OK(t.Update(Key(i), "w"));
  SPF_CHECK_OK(t.Commit());
  db->log()->ForceAll();

  PageId leaf = *db->LeafPageOf(Key(0));
  PageBuffer buf(kDefaultPageSize);
  ASSERT_TRUE(mirror.RepairFrom(leaf, buf.data()).ok());
  // >= 200 records scanned to serve one page.
  EXPECT_GE(mirror.stats().records_scanned, 200u);
}

// --- single-page recovery edge cases -------------------------------------------------

TEST(SinglePageRecoveryEdgeTest, UnknownPageEscalates) {
  auto db = MakeDb();
  PageBuffer frame(kDefaultPageSize);
  // A page the PRI has never heard of: escalation, not a crash.
  Status s = db->single_page_recovery()->RepairPage(1500, frame.data());
  EXPECT_TRUE(s.IsMediaFailure()) << s.ToString();
  EXPECT_EQ(db->single_page_recovery()->stats().escalations, 1u);
}

TEST(SinglePageRecoveryEdgeTest, CleanPageSinceBackupNeedsNoChain) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 100; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());  // clean relative to backup

  PageId leaf = *db->LeafPageOf(Key(50));
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(leaf);
  db->single_page_recovery()->ResetStats();
  EXPECT_EQ(*db->Get(Key(50)), "v");
  auto stats = db->single_page_recovery()->stats();
  EXPECT_EQ(stats.last_chain_length, 0u);  // backup image alone sufficed
  EXPECT_EQ(stats.repairs_succeeded, 1u);
}

TEST(SinglePageRecoveryEdgeTest, CorruptBackupEscalates) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 100; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());

  PageId leaf = *db->LeafPageOf(Key(50));
  db->pool()->DiscardAll();
  // Corrupt BOTH the data page and its backup image.
  db->data_device()->InjectSilentCorruption(leaf);
  db->backup_device()->InjectSilentCorruption(leaf);  // full-backup region

  auto v = db->Get(Key(50));
  EXPECT_TRUE(v.status().IsMediaFailure()) << v.status().ToString();
  EXPECT_GE(db->single_page_recovery()->stats().escalations, 1u);

  // ... and media recovery is NOT possible with a damaged backup page —
  // but single-page failures of the backup device are out of scope here;
  // clear it and recover.
  db->backup_device()->ClearFault(leaf);
}

TEST(SinglePageRecoveryEdgeTest, TornWriteDetectedAndRepaired) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 100; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());

  PageId leaf = *db->LeafPageOf(Key(50));
  // The NEXT write of this page is torn.
  db->data_device()->InjectTornWrite(leaf, kDefaultPageSize / 3);
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update(Key(50), "post-torn"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());  // this write is torn on the device
  db->pool()->DiscardAll();

  EXPECT_EQ(*db->Get(Key(50)), "post-torn");
  EXPECT_GE(db->single_page_recovery()->stats().repairs_succeeded, 1u);
}

TEST(SinglePageRecoveryEdgeTest, WearOutHealedUntilRelocated) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 100; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());

  PageId leaf = *db->LeafPageOf(Key(50));
  db->data_device()->SetWearOutLimit(leaf, 0);  // worn out NOW
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update(Key(50), "on-worn-page"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());  // write lands scrambled
  db->pool()->DiscardAll();

  // Repair succeeds (the healing write is scrambled again on the device,
  // but the BUFFERED copy is correct and served to the application).
  EXPECT_EQ(*db->Get(Key(50)), "on-worn-page");
  // The location remains sick: a later re-read repairs again — this is
  // the case for relocation + the bad block list (section 5.2.3).
  db->pool()->DiscardAll();
  EXPECT_EQ(*db->Get(Key(50)), "on-worn-page");
  EXPECT_GE(db->single_page_recovery()->stats().repairs_succeeded, 2u);
  db->bad_blocks()->Add(leaf);
  EXPECT_TRUE(db->bad_blocks()->Contains(leaf));
}

// --- write-tracking modes -----------------------------------------------------------

TEST(WriteTrackingModeTest, NoneModeStillRecoversFromCrash) {
  DatabaseOptions o = FastOptions();
  o.tracking = WriteTrackingMode::kNone;
  auto db = std::move(Database::Create(o)).value();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 300; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  EXPECT_EQ(*db->Get(Key(299)), "v");
}

TEST(WriteTrackingModeTest, CompletedWritesModeLogsThem) {
  DatabaseOptions o = FastOptions();
  o.tracking = WriteTrackingMode::kCompletedWrites;
  auto db = std::move(Database::Create(o)).value();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 300; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->FlushAll());
  auto stats = db->log()->stats();
  EXPECT_GT(stats.per_type[LogRecordType::kPageWriteCompleted], 0u);
  EXPECT_EQ(stats.per_type.count(LogRecordType::kPriUpdate), 0u);
}

// --- page relocation (sections 5.1.3, 5.2.3) ----------------------------------------

TEST(RelocationTest, MovesLeafAndBansOldLocation) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 1000; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());

  PageId old_pid = *db->LeafPageOf(Key(500));
  auto new_pid = db->RelocatePage(old_pid);
  ASSERT_TRUE(new_pid.ok()) << new_pid.status().ToString();
  EXPECT_NE(*new_pid, old_pid);

  // Data intact, old location banned, new leaf serves the key.
  EXPECT_EQ(*db->Get(Key(500)), "v");
  EXPECT_TRUE(db->bad_blocks()->Contains(old_pid));
  EXPECT_EQ(*db->LeafPageOf(Key(500)), *new_pid);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(RelocationTest, RelocatedPageRepairableFromFormatRecord) {
  // The migration's format record doubles as the new page's backup
  // (section 5.2.1): corrupt the new location and repair from it.
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 500; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());

  PageId old_pid = *db->LeafPageOf(Key(100));
  PageId new_pid = *db->RelocatePage(old_pid);
  SPF_CHECK_OK(db->FlushAll());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(new_pid);
  db->single_page_recovery()->ResetStats();

  EXPECT_EQ(*db->Get(Key(100)), "v");
  auto spr = db->single_page_recovery()->stats();
  EXPECT_EQ(spr.repairs_succeeded, 1u);
  EXPECT_EQ(spr.last_backup_kind, BackupKind::kFormatRecord);
}

TEST(RelocationTest, SurvivesCrashAndRestart) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  for (int i = 0; i < 1000; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->Checkpoint().status());

  PageId old_pid = *db->LeafPageOf(Key(500));
  PageId new_pid = *db->RelocatePage(old_pid);
  // Post-relocation committed update (goes to the NEW page's chain).
  t = db->BeginTxn();
  SPF_CHECK_OK(t.Update(Key(500), "post-move"));
  SPF_CHECK_OK(t.Commit());

  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  EXPECT_EQ(*db->Get(Key(500)), "post-move");
  EXPECT_EQ(*db->LeafPageOf(Key(500)), new_pid);
  EXPECT_TRUE(db->bad_blocks()->Contains(old_pid));
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(RelocationTest, WornOutLocationWorkflow) {
  // The full section 5.2.3 workflow: a location wears out, reads keep
  // triggering repairs, so the page is moved and the location banned.
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  // Enough records that the tree has real leaves below the root.
  for (int i = 0; i < 2000; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
  SPF_CHECK_OK(t.Commit());
  SPF_CHECK_OK(db->TakeFullBackup().status());

  PageId sick = *db->LeafPageOf(Key(100));
  db->data_device()->SetWearOutLimit(sick, 0);
  SPF_CHECK_OK(db->FlushAll());  // lands scrambled
  db->pool()->DiscardAll();
  EXPECT_EQ(*db->Get(Key(100)), "v");  // repair #1

  // Operator (or a policy) relocates the sick page.
  auto new_pid = db->RelocatePage(sick);
  ASSERT_TRUE(new_pid.ok()) << new_pid.status().ToString();
  SPF_CHECK_OK(db->FlushAll());
  db->pool()->DiscardAll();
  db->single_page_recovery()->ResetStats();

  // Reads now hit the healthy location: no more repairs.
  EXPECT_EQ(*db->Get(Key(100)), "v");
  EXPECT_EQ(db->single_page_recovery()->stats().repairs_attempted, 0u);
  EXPECT_TRUE(db->bad_blocks()->Contains(sick));
}

TEST(RelocationTest, RootAndNonTreePagesRejected) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  SPF_CHECK_OK(t.Insert("k", "v"));
  SPF_CHECK_OK(t.Commit());
  PageId root = *db->tree()->root_pid();
  EXPECT_TRUE(db->RelocatePage(root).status().IsNotSupported());
  EXPECT_TRUE(db->RelocatePage(0).status().IsNotSupported());  // meta page
}

}  // namespace
}  // namespace spf