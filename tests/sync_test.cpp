// Tests for the sync-discipline layer (src/common/sync.h): the rank
// lattice checker, the try_lock escape hatch, guard unwinding, and the
// CondVar rank bookkeeping. The abort paths are covered as death tests,
// which is exactly the acceptance bar: a seeded out-of-order acquisition
// must demonstrably fire.

#include "common/sync.h"

#include <stdexcept>
#include <thread>

#include "gtest/gtest.h"

namespace spf {
namespace {

using sync_internal::HeldCount;

TEST(SyncTest, InOrderAcquisitionPasses) {
  OrderedMutex outer(LockRank::kTxnTable);
  OrderedMutex mid(LockRank::kLogState);
  OrderedMutex inner(LockRank::kStats);
  outer.Lock();
  mid.Lock();
  inner.Lock();
  EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 3 : 0);
  inner.Unlock();
  mid.Unlock();
  outer.Unlock();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, NonLifoReleaseIsFine) {
  OrderedMutex outer(LockRank::kTxnTable);
  OrderedMutex inner(LockRank::kLogState);
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // release outer first: legal, only acquisition is ranked
  inner.Unlock();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, GuardsReleaseOnScopeExit) {
  OrderedMutex mu(LockRank::kStats);
  {
    MutexLock g(mu);
    EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 1 : 0);
  }
  EXPECT_EQ(HeldCount(), 0);
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncTest, HeldStackUnwindsOnException) {
  OrderedMutex outer(LockRank::kTxnTable);
  OrderedMutex inner(LockRank::kLogState);
  try {
    MutexLock g1(outer);
    MutexLock g2(inner);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(HeldCount(), 0);
  // Both must be free and re-acquirable in any order now.
  outer.Lock();
  outer.Unlock();
  inner.Lock();
  inner.Unlock();
}

TEST(SyncTest, SharedAndExclusiveFollowTheSameLattice) {
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  OrderedMutex log(LockRank::kLogState);
  latch.LockShared();
  log.Lock();  // 40 shared -> 105 exclusive: ascending, fine
  log.Unlock();
  latch.UnlockShared();

  ReaderLock r(latch);
  EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 1 : 0);
}

TEST(SyncTest, FrameLatchCouplingAllowsEqualRank) {
  // Top-down latch coupling: parent held while the child is acquired.
  OrderedSharedMutex parent(LockRank::kFrameLatch);
  OrderedSharedMutex child(LockRank::kFrameLatch);
  parent.LockShared();
  child.Lock();  // equal rank, blocking: sanctioned for kFrameLatch only
  child.Unlock();
  parent.UnlockShared();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, SameLatchSharedTwiceIsAllowedAtCouplingRank) {
  // The buffer pool supports fixing the same page twice in one thread
  // with shared latches (BufferPoolTest.SharedLatchAllowsConcurrentReaders
  // pins it); recursive read locks are safe on the reader-preferring
  // rwlock this engine runs on, so the checker permits shared-on-shared
  // at the coupling rank only.
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  latch.LockShared();
  latch.LockShared();
  EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 2 : 0);
  latch.UnlockShared();
  latch.UnlockShared();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, TryLockEscapeHatch) {
  // The buffer pool holds victim_mu_ (70) + a shard (75) and then
  // try-locks a frame latch (40): descending rank, legal only because the
  // acquisition cannot block.
  OrderedMutex victim(LockRank::kBufferVictim);
  OrderedMutex shard(LockRank::kBufferShard);
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  victim.Lock();
  shard.Lock();
  ASSERT_TRUE(latch.TryLock());
  EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 3 : 0);
  latch.Unlock();
  shard.Unlock();
  victim.Unlock();
}

TEST(SyncTest, FailedTryLockRecordsNothing) {
  OrderedMutex mu(LockRank::kStats);
  mu.Lock();
  std::thread t([&] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_EQ(HeldCount(), 0);
  });
  t.join();
  mu.Unlock();
}

TEST(SyncTest, CondVarWaitKeepsRankBookkeepingExact) {
  OrderedMutex mu(LockRank::kLogState);
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock g(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock g(mu);
    while (!ready) cv.wait(g);
    // The wait's internal unlock/relock went through OrderedMutex: the
    // lock must be recorded as held exactly once after wake-up.
    EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 1 : 0);
  }
  notifier.join();
  EXPECT_EQ(HeldCount(), 0);
}

TEST(SyncTest, ManualUnlockWindowOnUniqueLock) {
  OrderedMutex mu(LockRank::kLogState);
  UniqueLock g(mu);
  g.Unlock();
  EXPECT_EQ(HeldCount(), 0);
  g.Lock();
  EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 1 : 0);
}

TEST(SyncTest, WriterLockIsMovable) {
  OrderedSharedMutex gate(LockRank::kCommitGate);
  auto make = [&]() -> WriterLock { return WriterLock(gate); };
  {
    WriterLock held = make();
    EXPECT_EQ(HeldCount(), SPF_RANK_CHECK_ENABLED ? 1 : 0);
  }
  EXPECT_EQ(HeldCount(), 0);
  EXPECT_TRUE(gate.TryLock());
  gate.Unlock();
}

TEST(SyncTest, ResetIdentityForRecycleYieldsAWorkingLatch) {
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  latch.Lock();
  latch.Unlock();
  latch.ResetIdentityForRecycle();
  latch.LockShared();
  latch.UnlockShared();
  latch.Lock();
  latch.Unlock();
  EXPECT_EQ(HeldCount(), 0);
}

#ifdef SPF_RANK_CHECK

TEST(SyncDeathTest, OutOfOrderBlockingAcquisitionAborts) {
  OrderedMutex log(LockRank::kLogState);
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  log.Lock();
  // Latching a page while holding the log manager's state mutex is the
  // canonical inversion (log flush vs. WAL-forcing page write-back).
  EXPECT_DEATH(latch.Lock(), "LOCK RANK VIOLATION.*out-of-order");
  log.Unlock();
}

TEST(SyncDeathTest, EqualRankAbortsOutsideCoupling) {
  OrderedMutex a(LockRank::kTxnTable);
  OrderedMutex b(LockRank::kTxnTable);
  a.Lock();
  EXPECT_DEATH(b.Lock(), "LOCK RANK VIOLATION.*out-of-order");
  a.Unlock();
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  latch.LockShared();
  // Re-acquiring the same lock is never legal, even at a coupling rank:
  // shared->exclusive upgrade on one latch is a self-deadlock.
  EXPECT_DEATH(latch.Lock(), "LOCK RANK VIOLATION.*recursive");
  latch.UnlockShared();
}

TEST(SyncDeathTest, SharedAcquisitionIsRankCheckedToo) {
  OrderedMutex log(LockRank::kLogState);
  OrderedSharedMutex latch(LockRank::kFrameLatch);
  log.Lock();
  EXPECT_DEATH(latch.LockShared(), "LOCK RANK VIOLATION.*out-of-order");
  log.Unlock();
}

#endif  // SPF_RANK_CHECK

}  // namespace
}  // namespace spf
