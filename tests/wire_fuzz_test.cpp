// Fuzz and adversarial tests of the wire protocol (src/server/wire.h):
// encode∘decode identity on seeded-random valid frames, and tens of
// thousands of truncated / bit-flipped / garbage / trailing-byte payloads
// that must decode to a clean WireError — never a crash, hang, or
// out-of-bounds read (the ASan/UBSan CI jobs hold the codec to that).
// The live-server half feeds malformed frames to a real NetworkServer
// over TCP and requires every one to be answered with a protocol error
// while the connection stays usable (or, for an unframeable stream, is
// closed cleanly).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "db/database.h"
#include "server/client.h"
#include "server/network_server.h"
#include "server/wire.h"
#include "test_env.h"

namespace spf {
namespace {

using wire::FrameType;
using wire::WireError;
using wire::WireOp;

// --- seeded-random frame generators -----------------------------------------

wire::TxnRequest RandomTxnRequest(Random& rng) {
  wire::TxnRequest req;
  uint16_t key_count = static_cast<uint16_t>(1 + rng.Uniform(8));
  for (uint16_t k = 0; k < key_count; ++k) {
    req.keys.push_back(rng.NextString(rng.Uniform(24)));
  }
  uint16_t op_count = static_cast<uint16_t>(rng.Uniform(9));
  for (uint16_t i = 0; i < op_count; ++i) {
    wire::TxnOp op;
    op.kind = static_cast<WireOp>(1 + rng.Uniform(6));
    op.key = static_cast<uint16_t>(rng.Uniform(key_count));
    if (op.kind == WireOp::kScan) {
      op.end_key = rng.Bernoulli(0.5)
                       ? wire::kNoKey
                       : static_cast<uint16_t>(rng.Uniform(key_count));
      op.limit = static_cast<uint32_t>(rng.Uniform(5000));
    }
    if (op.kind == WireOp::kPut || op.kind == WireOp::kInsert ||
        op.kind == WireOp::kUpdate) {
      op.value = rng.NextString(rng.Uniform(64));
    }
    req.ops.push_back(std::move(op));
  }
  return req;
}

wire::TxnReply RandomTxnReply(Random& rng) {
  wire::TxnReply reply;
  reply.kind = static_cast<TxnError::Kind>(rng.Uniform(6));
  reply.code = static_cast<Status::Code>(rng.Uniform(13));
  reply.failed_op = rng.Bernoulli(0.3)
                        ? static_cast<uint16_t>(rng.Uniform(16))
                        : wire::kNoFailedOp;
  reply.message = rng.NextString(rng.Uniform(48));
  uint16_t results = static_cast<uint16_t>(rng.Uniform(6));
  for (uint16_t i = 0; i < results; ++i) {
    wire::OpResult r;
    r.kind = static_cast<WireOp>(1 + rng.Uniform(6));
    if (r.kind == WireOp::kGet) r.value = rng.NextString(rng.Uniform(64));
    if (r.kind == WireOp::kScan) {
      uint32_t pairs = static_cast<uint32_t>(rng.Uniform(5));
      for (uint32_t j = 0; j < pairs; ++j) {
        r.pairs.emplace_back(rng.NextString(1 + rng.Uniform(16)),
                             rng.NextString(rng.Uniform(32)));
      }
    }
    reply.results.push_back(std::move(r));
  }
  return reply;
}

std::string StripFraming(const std::string& frame) {
  return frame.substr(wire::kFramingBytes);
}

void ExpectEqual(const wire::TxnRequest& a, const wire::TxnRequest& b) {
  ASSERT_EQ(a.keys, b.keys);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].key, b.ops[i].key);
    EXPECT_EQ(a.ops[i].value, b.ops[i].value);
    if (a.ops[i].kind == WireOp::kScan) {
      EXPECT_EQ(a.ops[i].end_key, b.ops[i].end_key);
      EXPECT_EQ(a.ops[i].limit, b.ops[i].limit);
    }
  }
}

void ExpectEqual(const wire::TxnReply& a, const wire::TxnReply& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.failed_op, b.failed_op);
  EXPECT_EQ(a.message, b.message);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].kind, b.results[i].kind);
    EXPECT_EQ(a.results[i].value, b.results[i].value);
    EXPECT_EQ(a.results[i].pairs, b.results[i].pairs);
  }
}

// --- round-trip identity -----------------------------------------------------

TEST(WireRoundTrip, TxnRequestIdentity) {
  Random rng(20260808);
  for (int iter = 0; iter < 1000; ++iter) {
    wire::TxnRequest req = RandomTxnRequest(rng);
    std::string payload = StripFraming(wire::EncodeTxnRequest(req));
    wire::Request out;
    std::string detail;
    ASSERT_EQ(wire::DecodeRequest(payload, &out, &detail), WireError::kNone)
        << detail;
    ASSERT_EQ(out.type, FrameType::kTxnRequest);
    ExpectEqual(req, out.txn);
  }
}

TEST(WireRoundTrip, TxnReplyIdentity) {
  Random rng(987654321);
  for (int iter = 0; iter < 1000; ++iter) {
    wire::TxnReply reply = RandomTxnReply(rng);
    std::string payload = StripFraming(wire::EncodeTxnReply(reply));
    wire::Reply out;
    std::string detail;
    ASSERT_EQ(wire::DecodeReply(payload, &out, &detail), WireError::kNone)
        << detail;
    ASSERT_EQ(out.type, FrameType::kTxnReply);
    ExpectEqual(reply, out.txn);
  }
}

TEST(WireRoundTrip, InfoAndErrorReplies) {
  // INFO round-trips the real FlattenStats output, version stamp and all.
  StatsSnapshot snap;
  snap.server.frames_decoded = 42;
  snap.server.txns_committed = 41;
  wire::InfoReply info;
  info.stats_version = StatsSnapshot::kVersion;
  info.counters = wire::FlattenStats(snap);
  std::string payload = StripFraming(wire::EncodeInfoReply(info));
  wire::Reply out;
  ASSERT_EQ(wire::DecodeReply(payload, &out, nullptr), WireError::kNone);
  ASSERT_EQ(out.type, FrameType::kInfoReply);
  EXPECT_EQ(out.info.stats_version, StatsSnapshot::kVersion);
  EXPECT_EQ(out.info.counters, info.counters);
  EXPECT_EQ(out.info.Counter("server.frames_decoded"), 42u);
  EXPECT_EQ(out.info.Counter("no.such.counter", 7), 7u);

  // INFO request and error replies round-trip too.
  wire::Request rq;
  ASSERT_EQ(wire::DecodeRequest(StripFraming(wire::EncodeInfoRequest()), &rq,
                                nullptr),
            WireError::kNone);
  EXPECT_EQ(rq.type, FrameType::kInfoRequest);

  payload = StripFraming(
      wire::EncodeErrorReply(WireError::kBadVersion, "speak v1"));
  ASSERT_EQ(wire::DecodeReply(payload, &out, nullptr), WireError::kNone);
  ASSERT_EQ(out.type, FrameType::kErrorReply);
  EXPECT_EQ(out.error, WireError::kBadVersion);
  EXPECT_EQ(out.error_detail, "speak v1");
}

// --- structured malformation ------------------------------------------------

TEST(WireFuzz, SpecificMalformations) {
  wire::TxnRequest req;
  req.Put("k", "v");
  std::string valid = StripFraming(wire::EncodeTxnRequest(req));
  wire::Request out;
  std::string detail;

  // Empty and short payloads.
  EXPECT_EQ(wire::DecodeRequest("", &out, &detail), WireError::kMalformed);
  EXPECT_EQ(wire::DecodeRequest(valid.substr(0, 5), &out, &detail),
            WireError::kMalformed);

  // Bad magic / version / reserved / type.
  std::string p = valid;
  p[0] ^= 0xFF;
  EXPECT_EQ(wire::DecodeRequest(p, &out, &detail), WireError::kBadMagic);
  p = valid;
  p[4] = 99;
  EXPECT_EQ(wire::DecodeRequest(p, &out, &detail), WireError::kBadVersion);
  p = valid;
  p[6] = 1;  // reserved must be zero
  EXPECT_EQ(wire::DecodeRequest(p, &out, &detail), WireError::kMalformed);
  p = valid;
  p[5] = 120;  // not a frame type
  EXPECT_EQ(wire::DecodeRequest(p, &out, &detail), WireError::kBadType);
  p = valid;
  p[5] = static_cast<char>(FrameType::kTxnReply);  // reply sent as request
  EXPECT_EQ(wire::DecodeRequest(p, &out, &detail), WireError::kBadType);

  // Truncation at every single byte boundary of a valid frame.
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    EXPECT_NE(wire::DecodeRequest(valid.substr(0, cut), &out, &detail),
              WireError::kNone)
        << "cut=" << cut;
  }

  // Trailing bytes after a well-formed op list.
  EXPECT_EQ(wire::DecodeRequest(valid + "x", &out, &detail),
            WireError::kMalformed);

  // Key index out of range: op references key 1 of a 1-key table.
  wire::TxnRequest bad;
  bad.AddKey("only");
  bad.ops.push_back({WireOp::kGet, 1, wire::kNoKey, 0, ""});
  EXPECT_EQ(wire::DecodeRequest(StripFraming(wire::EncodeTxnRequest(bad)),
                                &out, &detail),
            WireError::kMalformed);

  // Scan end bound out of range survives encode, dies in decode.
  wire::TxnRequest bad_scan;
  bad_scan.AddKey("start");
  bad_scan.ops.push_back({WireOp::kScan, 0, 5, 10, ""});
  EXPECT_EQ(wire::DecodeRequest(StripFraming(wire::EncodeTxnRequest(bad_scan)),
                                &out, &detail),
            WireError::kMalformed);

  // A key table that lies about its length (count says 2, one key present).
  std::string lying;
  {
    wire::TxnRequest one;
    one.AddKey("k");
    lying = StripFraming(wire::EncodeTxnRequest(one));
    lying[8] = 2;  // key_count lives right after the 8-byte header
  }
  EXPECT_EQ(wire::DecodeRequest(lying, &out, &detail), WireError::kMalformed);
}

TEST(WireFuzz, RandomMutationsNeverCrash) {
  Random rng(424242);
  int processed = 0;
  int rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::string payload;
    switch (iter % 4) {
      case 0: {  // truncation of a valid frame
        payload = StripFraming(wire::EncodeTxnRequest(RandomTxnRequest(rng)));
        payload.resize(rng.Uniform(payload.size() + 1));
        break;
      }
      case 1: {  // bit flips in a valid frame
        payload = StripFraming(wire::EncodeTxnRequest(RandomTxnRequest(rng)));
        int flips = 1 + static_cast<int>(rng.Uniform(8));
        for (int f = 0; f < flips && !payload.empty(); ++f) {
          payload[rng.Uniform(payload.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
        }
        break;
      }
      case 2: {  // pure garbage
        payload.resize(rng.Uniform(256));
        for (char& ch : payload) ch = static_cast<char>(rng.Uniform(256));
        break;
      }
      default: {  // oversized counts / trailing junk on a valid frame
        payload = StripFraming(wire::EncodeTxnRequest(RandomTxnRequest(rng)));
        payload += rng.NextString(1 + rng.Uniform(32));
        break;
      }
    }
    // Both decode directions must be memory-safe on arbitrary bytes.
    wire::Request req_out;
    wire::Reply reply_out;
    std::string detail;
    WireError a = wire::DecodeRequest(payload, &req_out, &detail);
    WireError b = wire::DecodeReply(payload, &reply_out, &detail);
    processed++;
    if (a != WireError::kNone) rejected++;
    (void)b;
  }
  EXPECT_EQ(processed, 20000);
  // Truncations, garbage, and trailing junk are (near-)certain rejections;
  // only rare bit flips land inside value bytes and stay valid.
  EXPECT_GE(rejected, 12000);
}

// --- the same adversity against a live server --------------------------------

class WireFuzzServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.num_pages = 1024;
    options.buffer_frames = 256;
    auto db_or = Database::Create(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    db_ = std::move(db_or).value();

    testenv::LoopbackListener listener;
    ASSERT_TRUE(listener.ok());
    port_ = listener.port();
    ServerOptions sopts;
    sopts.listen_fd = listener.release();
    sopts.workers = 2;
    server_ = std::make_unique<NetworkServer>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->port(), port_);  // adopted socket, adopted port
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<NetworkServer> server_;
  uint16_t port_ = 0;
};

TEST_F(WireFuzzServerTest, MalformedFramesGetErrorRepliesConnectionSurvives) {
  Random rng(1337);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  int malformed_sent = 0;
  for (int i = 0; i < 3000; ++i) {
    // Build an always-invalid payload (framing stays aligned, so the
    // server can answer and keep the connection).
    std::string payload;
    switch (i % 4) {
      case 0:  // garbage bytes (fails the magic check)
        payload.resize(1 + rng.Uniform(128));
        for (char& ch : payload) ch = static_cast<char>(rng.Uniform(256));
        if (payload.size() >= 4) payload[0] = 'X';
        break;
      case 1: {  // valid header, truncated body
        wire::TxnRequest req = RandomTxnRequest(rng);
        payload = StripFraming(wire::EncodeTxnRequest(req));
        payload.resize(8 + rng.Uniform(2));
        break;
      }
      case 2: {  // future wire version
        wire::TxnRequest req;
        req.Put("k", "v");
        payload = StripFraming(wire::EncodeTxnRequest(req));
        payload[4] = 9;
        break;
      }
      default: {  // trailing junk
        wire::TxnRequest req;
        req.Get("k");
        payload = StripFraming(wire::EncodeTxnRequest(req)) + "zzz";
        break;
      }
    }
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
    frame += payload;
    ASSERT_TRUE(client.SendRaw(frame).ok()) << "i=" << i;
    wire::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply).ok()) << "i=" << i;
    ASSERT_EQ(reply.type, FrameType::kErrorReply) << "i=" << i;
    ASSERT_NE(reply.error, WireError::kNone);
    malformed_sent++;

    // Every so often, prove the connection still does real work.
    if (i % 100 == 0) {
      wire::TxnRequest put;
      put.Put("fuzz-key", "fuzz-value-" + std::to_string(i));
      wire::TxnReply txn_reply;
      ASSERT_TRUE(client.ExecuteWithRetry(put, &txn_reply).ok());
      ASSERT_TRUE(txn_reply.ok());
    }
  }
  EXPECT_EQ(malformed_sent, 3000);
  ServerStats stats = server_->server_stats();
  EXPECT_GE(stats.frames_rejected, 3000u);
  // The engine never saw the malformed frames as transactions.
  EXPECT_EQ(stats.frames_decoded,
            stats.txns_committed + stats.txns_failed + stats.info_requests);
  client.Close();
}

TEST_F(WireFuzzServerTest, OversizedFrameAnsweredThenClosed) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  // A length prefix beyond the ceiling: the stream cannot be resynced.
  std::string frame;
  PutFixed32(&frame, wire::kMaxFrameBytes + 1);
  frame += "doesn't matter";
  ASSERT_TRUE(client.SendRaw(frame).ok());
  wire::Reply reply;
  ASSERT_TRUE(client.ReadReply(&reply).ok());
  EXPECT_EQ(reply.type, FrameType::kErrorReply);
  EXPECT_EQ(reply.error, WireError::kOversized);
  // The server closed the connection after answering.
  EXPECT_FALSE(client.ReadReply(&reply).ok());
  client.Close();
}

TEST_F(WireFuzzServerTest, PipelinedFramesAnswerInOrder) {
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  // Ship 32 valid frames back to back in one burst; replies must come
  // back complete and in order (one frame in flight per connection).
  std::string burst;
  for (int i = 0; i < 32; ++i) {
    wire::TxnRequest req;
    req.Put("pipeline-" + std::to_string(i), "v" + std::to_string(i));
    burst += wire::EncodeTxnRequest(req);
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (int i = 0; i < 32; ++i) {
    wire::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply).ok()) << "i=" << i;
    ASSERT_EQ(reply.type, FrameType::kTxnReply);
    EXPECT_TRUE(reply.txn.ok()) << "i=" << i;
  }
  // And the data landed.
  auto v = client.Get("pipeline-31");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v31");
  client.Close();
}

}  // namespace
}  // namespace spf
