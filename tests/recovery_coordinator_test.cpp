// Tests for the RecoveryCoordinator (failure funnel): end-to-end
// self-healing with ZERO caller involvement — damage detected by the
// running background scrubber or by a foreground read is repaired to
// byte-identity without any explicit RecoverPages/Scrub call — plus the
// funnel mechanics themselves: dedup of concurrent reporters,
// backpressure at the queue limit, routing to partial restore above
// spr_batch_limit, and the scheduler's escalation sink.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/database.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 0;  // full backup is the only source
  return o;
}

constexpr int kRecords = 3000;

std::unique_ptr<Database> MakeChainedDb(DatabaseOptions options,
                                        std::vector<PageId>* victims) {
  return bench::MakeChainedBurstDb(std::move(options), kRecords,
                                   /*burst=*/SIZE_MAX, victims,
                                   /*rounds=*/4, /*stride=*/150);
}

std::vector<std::string> SnapshotPages(Database* db,
                                       const std::vector<PageId>& pages) {
  std::vector<std::string> images;
  const uint32_t page_size = db->options().page_size;
  for (PageId p : pages) {
    std::string img(page_size, '\0');
    db->data_device()->RawRead(p, img.data());
    images.push_back(std::move(img));
  }
  return images;
}

/// Spin until `pred` holds or `sec` wall seconds elapse.
template <typename Pred>
bool WaitFor(Pred pred, int sec = 30) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(sec);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// The headline scenario: pages silently corrupt under a RUNNING
// background scrubber and come back byte-identical — the test never
// calls RecoverPages, Scrub, or RepairPages.
TEST(RecoveryCoordinatorTest, ScrubberDetectedDamageSelfHeals) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  ASSERT_GE(victims.size(), 4u);
  ASSERT_NE(db->funnel(), nullptr);
  victims.resize(4);

  std::vector<std::string> before = SnapshotPages(db.get(), victims);
  for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);

  db->scrubber()->Start();
  ASSERT_TRUE(WaitFor([&] {
    FunnelTotals t = db->funnel()->totals();
    return t.repaired_spr + t.repaired_partial + t.repaired_full >=
           victims.size();
  })) << "funnel never drained the scrubber's reports";
  db->scrubber()->Stop();
  db->funnel()->WaitIdle();

  std::vector<std::string> after = SnapshotPages(db.get(), victims);
  for (size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(before[i], after[i])
        << "page " << victims[i] << " not byte-identical after self-heal";
  }

  FunnelTotals totals = db->funnel()->totals();
  EXPECT_GE(totals.from_scrubber, victims.size());
  EXPECT_GE(totals.enqueued, victims.size());
  EXPECT_EQ(totals.failed, 0u);
  ScrubberTotals scrub = db->scrubber()->totals();
  EXPECT_GE(scrub.failures_reported, victims.size());
  EXPECT_EQ(scrub.escalations, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A foreground read of a damaged page routes through the funnel (the
// read path's PageRepairer) and succeeds with nothing explicit.
TEST(RecoveryCoordinatorTest, ForegroundReadSelfHeals) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  ASSERT_NE(db->funnel(), nullptr);

  PageId victim = victims.front();
  std::string key;
  for (int i = 0; i < kRecords; i += 150) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    if (*leaf == victim) {
      key = Key(i);
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  db->pool()->DiscardAll();

  std::string before = SnapshotPages(db.get(), {victim}).front();
  db->data_device()->InjectSilentCorruption(victim);

  auto v = db->Get(key);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "r3");  // MakeChainedBurstDb's last round

  db->funnel()->WaitIdle();
  std::string after = SnapshotPages(db.get(), {victim}).front();
  EXPECT_EQ(before, after) << "device copy not byte-identical after heal";

  StatsSnapshot stats = db->Stats();
  EXPECT_GE(stats.funnel.from_foreground, 1u);
  EXPECT_GE(stats.funnel.repaired_spr, 1u);
  EXPECT_EQ(stats.funnel.failed, 0u);
  EXPECT_GE(stats.pool.repairs_succeeded, 1u);
}

// N concurrent readers of ONE damaged page must trigger exactly one
// repair: the buffer pool serializes them onto one frame load, and the
// funnel dedups the single report.
TEST(RecoveryCoordinatorTest, ConcurrentReadersShareOneRepair) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  ASSERT_NE(db->funnel(), nullptr);

  PageId victim = victims.front();
  std::string key;
  for (int i = 0; i < kRecords; i += 150) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    if (*leaf == victim) {
      key = Key(i);
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(victim);

  constexpr int kReaders = 8;
  std::atomic<int> ok_reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto v = db->Get(key);
      if (v.ok() && *v == "r3") ok_reads.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();
  db->funnel()->WaitIdle();

  EXPECT_EQ(ok_reads.load(), kReaders);
  StatsSnapshot stats = db->Stats();
  EXPECT_EQ(stats.spr.repairs_attempted, 1u);
  EXPECT_EQ(stats.spr.repairs_succeeded, 1u);
  EXPECT_EQ(stats.funnel.enqueued, 1u);
  EXPECT_EQ(stats.pool.repairs_attempted, 1u);
}

// Reports for a page already pending/in-flight coalesce onto one repair:
// a scrubber-style report plus a blocked foreground reader plus another
// report all resolve from one ladder trip.
TEST(RecoveryCoordinatorTest, DedupAcrossReporters) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);

  PageId victim = victims.front();
  db->data_device()->InjectSilentCorruption(victim);

  funnel->Pause();
  EXPECT_EQ(funnel->Report(victim, FailureOrigin::kScrubber),
            ReportResult::kAccepted);
  EXPECT_EQ(funnel->Report(victim, FailureOrigin::kScrubber),
            ReportResult::kCoalesced);

  Status waited;
  std::thread waiter([&] {
    waited = funnel->ReportAndWait(victim, FailureOrigin::kExplicit);
  });
  // The waiter coalesces onto the pending entry; give it a moment to park.
  ASSERT_TRUE(WaitFor([&] { return funnel->totals().coalesced >= 2; }));

  funnel->Resume();
  waiter.join();
  funnel->WaitIdle();

  EXPECT_TRUE(waited.ok()) << waited.ToString();
  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.enqueued, 1u);
  EXPECT_EQ(totals.coalesced, 2u);
  EXPECT_EQ(totals.batches, 1u);
  EXPECT_EQ(totals.repaired_spr, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// The pending queue is bounded: reports beyond funnel_queue_limit are
// rejected, and the rejected pages heal on a later report.
TEST(RecoveryCoordinatorTest, BackpressureAtQueueLimit) {
  DatabaseOptions options = FastOptions();
  options.funnel_queue_limit = 4;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);
  ASSERT_GE(victims.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    db->data_device()->InjectSilentCorruption(victims[i]);
  }

  funnel->Pause();
  int accepted = 0, rejected = 0;
  for (size_t i = 0; i < 6; ++i) {
    ReportResult r = funnel->Report(victims[i], FailureOrigin::kScrubber);
    (r == ReportResult::kRejected ? rejected : accepted)++;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 2);
  // A rejected page re-reports fine once the queue drains.
  funnel->Resume();
  funnel->WaitIdle();
  EXPECT_EQ(funnel->Report(victims[4], FailureOrigin::kScrubber),
            ReportResult::kAccepted);
  EXPECT_EQ(funnel->Report(victims[5], FailureOrigin::kScrubber),
            ReportResult::kAccepted);
  funnel->WaitIdle();

  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.rejected, 2u);
  EXPECT_EQ(totals.enqueued, 6u);
  EXPECT_EQ(totals.repaired_spr, 6u);
  EXPECT_EQ(totals.failed, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A coalesced batch above spr_batch_limit routes to partial media
// restore (the sequential-read rung), not per-page repair.
TEST(RecoveryCoordinatorTest, LargeBatchRoutesToPartialRestore) {
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 4;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);
  ASSERT_GT(victims.size(), 4u);

  for (PageId v : victims) db->data_device()->FailPageRange(v, 1);
  funnel->Pause();
  for (PageId v : victims) {
    EXPECT_EQ(funnel->Report(v, FailureOrigin::kScrubber),
              ReportResult::kAccepted);
  }
  funnel->Resume();
  funnel->WaitIdle();

  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.batches, 1u);
  EXPECT_EQ(totals.repaired_spr, 0u);
  EXPECT_EQ(totals.repaired_partial, victims.size());
  EXPECT_EQ(totals.failed, 0u);
  RecoverySchedulerStats sched = db->recovery_scheduler()->stats();
  EXPECT_EQ(sched.partial_restores, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// Unbounded damage (the device failed as a whole) drains through the
// ladder's bottom rung automatically and is accounted as repaired_full.
TEST(RecoveryCoordinatorTest, WholeDeviceFailureEscalatesToFullRestore) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);

  db->log()->ForceAll();
  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  Status healed =
      funnel->ReportAndWait(victims.front(), FailureOrigin::kExplicit);
  ASSERT_TRUE(healed.ok()) << healed.ToString();

  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.escalated_full, 1u);
  EXPECT_EQ(totals.repaired_full, 1u);
  EXPECT_EQ(totals.failed, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A page a direct RepairBatch cannot heal (lost PRI backup reference)
// flows through the scheduler's escalation sink into the funnel and is
// healed by partial restore — no caller escalation.
TEST(RecoveryCoordinatorTest, SchedulerEscalationsFlowIntoFunnel) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);

  PageId orphan = victims.front();
  auto entry = db->pri()->Lookup(orphan);
  ASSERT_TRUE(entry.ok());
  db->pri()->Apply(orphan, PriEntry{BackupRef{BackupKind::kNone, 0},
                                    entry->last_lsn});
  db->data_device()->InjectSilentCorruption(orphan);

  // Direct batch repair fails the page — and the failure funnels.
  auto batch = db->RepairPages({orphan});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->failed, 1u);

  ASSERT_TRUE(WaitFor([&] { return funnel->totals().batches >= 1; }));
  funnel->WaitIdle();
  FunnelTotals totals = funnel->totals();
  EXPECT_GE(totals.from_escalation, 1u);
  EXPECT_EQ(totals.repaired_partial, 1u);
  EXPECT_EQ(totals.failed, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// auto_escalate=false restores the pre-funnel behavior: no funnel, the
// read path repairs inline through the scheduler.
TEST(RecoveryCoordinatorTest, AutoEscalateOffMeansNoFunnel) {
  DatabaseOptions options = FastOptions();
  options.auto_escalate = false;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  EXPECT_EQ(db->funnel(), nullptr);

  db->data_device()->InjectSilentCorruption(victims.front());
  auto scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_EQ(scrub->pages_repaired, 1u);
  EXPECT_EQ(db->Stats().scheduler.single_repairs, 0u);
}

// The wall-clock cadence option: under Instant profiles (simulated time
// frozen) a wall interval must pace the background loop instead of the
// continuous-ticking fallback.
TEST(RecoveryCoordinatorTest, ScrubberWallClockCadence) {
  DatabaseOptions options = FastOptions();
  options.scrub_wall_interval = std::chrono::milliseconds(5);
  options.scrub_pages_per_tick = 64;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);

  db->scrubber()->Start();
  ASSERT_TRUE(WaitFor([&] { return db->scrubber()->totals().ticks >= 3; }));
  auto start = std::chrono::steady_clock::now();
  uint64_t ticks_at_start = db->scrubber()->totals().ticks;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  db->scrubber()->Stop();
  double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  uint64_t ticks = db->scrubber()->totals().ticks - ticks_at_start;
  // 5 ms cadence over >=300 ms: a continuous-ticking fallback would run
  // tens of thousands of Instant-profile ticks; the wall pace bounds it
  // near sec/0.005 (generous slack for scheduling noise).
  EXPECT_GE(ticks, 2u);
  EXPECT_LE(ticks, static_cast<uint64_t>(sec / 0.005 * 2) + 10);

  // And damage still heals under the wall-paced daemon.
  db->data_device()->InjectSilentCorruption(victims.front());
  db->scrubber()->Start();
  ASSERT_TRUE(WaitFor([&] {
    return db->funnel()->totals().repaired_spr +
               db->funnel()->totals().repaired_partial >= 1;
  }));
  db->scrubber()->Stop();
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// Stopping the funnel with work still pending fails the waiters instead
// of hanging them, and a stopped funnel rejects new reports.
TEST(RecoveryCoordinatorTest, StopFailsPendingAndRejectsNewReports) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);

  funnel->Pause();
  ASSERT_EQ(funnel->Report(victims.front(), FailureOrigin::kExplicit),
            ReportResult::kAccepted);
  funnel->Stop();
  EXPECT_FALSE(funnel->running());
  EXPECT_EQ(funnel->Report(victims.back(), FailureOrigin::kExplicit),
            ReportResult::kRejected);
  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.failed, 1u);

  // Restart and verify the funnel still heals — Start() clears the old
  // Pause, so no Resume() incantation is needed.
  funnel->Start();
  db->data_device()->InjectSilentCorruption(victims.front());
  EXPECT_TRUE(funnel->ReportAndWait(victims.front(), FailureOrigin::kExplicit)
                  .ok());
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

}  // namespace
}  // namespace spf
