// Unit tests for the page recovery index: lookups, range compression,
// splits and merges, the three backup-ref alternatives (Figure 7), window
// serialization, and the two-partition layout (invariant P2).

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pri.h"
#include "core/pri_manager.h"

namespace spf {
namespace {

TEST(PriTest, EmptyIndexKnowsNothing) {
  PageRecoveryIndex pri(1000);
  EXPECT_TRUE(pri.Lookup(5).status().IsNotFound());
  EXPECT_TRUE(pri.Lookup(5000).status().IsInvalidArgument());
  EXPECT_EQ(pri.entry_count(), 0u);
}

TEST(PriTest, RecordWriteThenLookup) {
  PageRecoveryIndex pri(1000);
  // A write alone gives a last_lsn but no backup -> still NotFound
  // (BackupKind::kNone forces escalation).
  pri.RecordWrite(7, 123);
  EXPECT_TRUE(pri.Lookup(7).status().IsNotFound());

  pri.RecordBackup(7, {BackupKind::kFormatRecord, 50});
  pri.RecordWrite(7, 123);
  auto e = pri.Lookup(7);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->backup.kind, BackupKind::kFormatRecord);
  EXPECT_EQ(e->backup.value, 50u);
  EXPECT_EQ(e->last_lsn, 123u);
}

TEST(PriTest, BackupResetsLastLsn) {
  // Figure 7: last_lsn is "valid only if ... updated since the last
  // backup".
  PageRecoveryIndex pri(1000);
  pri.RecordBackup(3, {BackupKind::kFormatRecord, 10});
  pri.RecordWrite(3, 100);
  EXPECT_EQ(pri.Lookup(3)->last_lsn, 100u);
  BackupRef old = pri.RecordBackup(3, {BackupKind::kBackupPage, 77});
  EXPECT_EQ(old.kind, BackupKind::kFormatRecord);  // for freeing the old copy
  EXPECT_EQ(pri.Lookup(3)->last_lsn, kInvalidLsn);
  EXPECT_EQ(pri.Lookup(3)->backup.kind, BackupKind::kBackupPage);
}

TEST(PriTest, FullBackupCollapsesToRanges) {
  PageRecoveryIndex pri(10000);
  // Scatter state first.
  for (PageId p = 0; p < 10000; p += 7) {
    pri.RecordBackup(p, {BackupKind::kFormatRecord, p + 1});
    pri.RecordWrite(p, p + 100);
  }
  uint64_t scattered = pri.entry_count();
  EXPECT_GT(scattered, 1000u);

  pri.RecordFullBackup(42);
  // One range entry per window.
  EXPECT_EQ(pri.entry_count(), pri.num_windows());
  auto e = pri.Lookup(9999);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->backup.kind, BackupKind::kFullBackup);
  EXPECT_EQ(e->backup.value, 42u);
  EXPECT_EQ(e->last_lsn, kInvalidLsn);
}

TEST(PriTest, PointUpdateSplitsRange) {
  PageRecoveryIndex pri(1000);
  pri.RecordFullBackup(1);
  uint64_t before = pri.entry_count();
  pri.RecordWrite(100, 555);  // splits one window's range into 3
  EXPECT_EQ(pri.entry_count(), before + 2);
  EXPECT_EQ(pri.Lookup(100)->last_lsn, 555u);
  EXPECT_EQ(pri.Lookup(99)->last_lsn, kInvalidLsn);
  EXPECT_EQ(pri.Lookup(101)->last_lsn, kInvalidLsn);
  EXPECT_EQ(pri.Lookup(101)->backup.kind, BackupKind::kFullBackup);
}

TEST(PriTest, AdjacentIdenticalEntriesMerge) {
  PageRecoveryIndex pri(1000);
  PriEntry e;
  e.backup = {BackupKind::kFullBackup, 9};
  e.last_lsn = kInvalidLsn;
  pri.Apply(10, e);
  pri.Apply(12, e);
  EXPECT_EQ(pri.entry_count(), 2u);
  pri.Apply(11, e);  // bridges the gap -> single range [10,13)
  EXPECT_EQ(pri.entry_count(), 1u);
  EXPECT_TRUE(pri.Lookup(10).ok());
  EXPECT_TRUE(pri.Lookup(12).ok());
  EXPECT_FALSE(pri.Lookup(13).ok());
}

TEST(PriTest, EdgeOfRangeSplits) {
  PageRecoveryIndex pri(1000);
  pri.RecordFullBackup(1);
  // First and last page of a window.
  pri.RecordWrite(0, 11);
  pri.RecordWrite(kPriEntriesPerWindow - 1, 22);
  EXPECT_EQ(pri.Lookup(0)->last_lsn, 11u);
  EXPECT_EQ(pri.Lookup(kPriEntriesPerWindow - 1)->last_lsn, 22u);
  EXPECT_EQ(pri.Lookup(1)->last_lsn, kInvalidLsn);
}

TEST(PriTest, SizeStaysNearPaperBound) {
  // Section 5.2.2: worst case ~16 bytes per page, about 1 permille of the
  // database. Our wire entries are 33 B but one per page only in the
  // worst case; verify the bound holds within 3x of the paper's figure.
  const uint64_t kPages = 50000;
  PageRecoveryIndex pri(kPages);
  for (PageId p = 0; p < kPages; ++p) {
    pri.RecordBackup(p, {BackupKind::kFormatRecord, p});
    pri.RecordWrite(p, p * 3 + 7);  // every page distinct: worst case
  }
  double bytes_per_page =
      static_cast<double>(pri.approx_bytes()) / static_cast<double>(kPages);
  EXPECT_LE(bytes_per_page, 48.0);
  double permille = static_cast<double>(pri.approx_bytes()) /
                    (static_cast<double>(kPages) * kDefaultPageSize) * 1000.0;
  EXPECT_LT(permille, 5.0);
}

TEST(PriTest, WindowSerializationRoundTrip) {
  PageRecoveryIndex pri(1000);
  pri.RecordBackup(5, {BackupKind::kBackupPage, 900});
  pri.RecordWrite(5, 77);
  pri.RecordBackup(6, {BackupKind::kLogImage, 888});
  std::string image = pri.SerializeWindow(0);

  PageRecoveryIndex restored(1000);
  ASSERT_TRUE(restored.DeserializeWindow(0, image).ok());
  EXPECT_EQ(*restored.Lookup(5), *pri.Lookup(5));
  EXPECT_EQ(*restored.Lookup(6), *pri.Lookup(6));
  EXPECT_FALSE(restored.Lookup(7).ok());
}

TEST(PriTest, DeserializeRejectsGarbageAndForeignRanges) {
  PageRecoveryIndex pri(1000);
  EXPECT_TRUE(pri.DeserializeWindow(0, "xx").IsCorruption());
  // A window-1 image pushed into window 0 must be rejected.
  PageRecoveryIndex other(1000);
  other.RecordBackup(kPriEntriesPerWindow + 3, {BackupKind::kFormatRecord, 1});
  std::string image = other.SerializeWindow(1);
  EXPECT_TRUE(pri.DeserializeWindow(0, image).IsCorruption());
}

TEST(PriTest, DirtyWindowTracking) {
  PageRecoveryIndex pri(1000);
  EXPECT_TRUE(pri.DirtyWindows().empty());
  pri.RecordWrite(0, 5);                          // window 0
  pri.RecordWrite(kPriEntriesPerWindow * 2, 6);   // window 2
  auto dirty = pri.DirtyWindows();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0u);
  EXPECT_EQ(dirty[1], 2u);
  pri.ClearDirtyWindow(0);
  EXPECT_EQ(pri.DirtyWindows().size(), 1u);
}

TEST(PriTest, RandomizedAgainstReferenceMap) {
  const uint64_t kPages = 2000;
  PageRecoveryIndex pri(kPages);
  std::vector<PriEntry> ref(kPages);
  Random rng(31337);
  for (int i = 0; i < 20000; ++i) {
    PageId p = rng.Uniform(kPages);
    if (rng.Bernoulli(0.3)) {
      BackupRef b{static_cast<BackupKind>(1 + rng.Uniform(4)), rng.Next() % 1000};
      pri.RecordBackup(p, b);
      ref[p] = PriEntry{b, kInvalidLsn};
    } else {
      Lsn lsn = 1 + rng.Uniform(100000);
      pri.RecordWrite(p, lsn);
      ref[p].last_lsn = lsn;
    }
  }
  for (PageId p = 0; p < kPages; ++p) {
    auto e = pri.Lookup(p);
    if (ref[p].backup.kind == BackupKind::kNone) {
      EXPECT_FALSE(e.ok()) << p;
    } else {
      ASSERT_TRUE(e.ok()) << p;
      EXPECT_EQ(*e, ref[p]) << p;
    }
  }
}

TEST(PriUpdateBodyTest, EncodeDecodeRoundTrip) {
  PriUpdateBody body;
  body.data_page_id = 123;
  body.page_lsn = 456;
  body.has_backup = true;
  body.backup = {BackupKind::kLogImage, 789};
  auto decoded = DecodePriUpdate(EncodePriUpdate(body));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->data_page_id, 123u);
  EXPECT_EQ(decoded->page_lsn, 456u);
  EXPECT_TRUE(decoded->has_backup);
  EXPECT_EQ(decoded->backup.kind, BackupKind::kLogImage);
  EXPECT_EQ(decoded->backup.value, 789u);
  EXPECT_TRUE(DecodePriUpdate("bad").status().IsCorruption());
}

// --- two-partition layout (invariant P2) ----------------------------------------

TEST(PriLayoutTest, PartitionsCoverEverythingOnce) {
  for (uint64_t n : {4 * kPriEntriesPerWindow, 16384ul, 100000ul}) {
    PriLayout l = PriLayout::Compute(n);
    EXPECT_EQ(l.pri_a_pages + l.pri_b_pages, l.num_windows);
    // Every window maps to exactly one PRI page and back.
    std::set<PageId> seen;
    for (uint64_t w = 0; w < l.num_windows; ++w) {
      PageId pid = l.PriPageOfWindow(w);
      EXPECT_TRUE(seen.insert(pid).second) << "duplicate PRI page";
      EXPECT_TRUE(l.IsPriPage(pid));
      EXPECT_EQ(l.WindowOfPriPage(pid), w);
    }
  }
}

TEST(PriLayoutTest, NoPriPageCoversItself) {
  // Invariant P2: a PRI page's covering entry lives in the OTHER
  // partition, so the window covering a PRI page is never stored on a
  // page of the same partition (in particular never on itself).
  PriLayout l = PriLayout::Compute(16384);
  for (uint64_t w = 0; w < l.num_windows; ++w) {
    PageId pid = l.PriPageOfWindow(w);
    uint64_t covering_window = PageRecoveryIndex::WindowOf(pid);
    PageId covering_page = l.PriPageOfWindow(covering_window);
    EXPECT_NE(covering_page, pid) << "PRI page covers itself";
    // Different partitions: one is in the A extent, the other in B.
    bool pid_in_a = pid >= l.pri_a_start && pid < l.pri_a_start + l.pri_a_pages;
    bool cov_in_a = covering_page >= l.pri_a_start &&
                    covering_page < l.pri_a_start + l.pri_a_pages;
    EXPECT_NE(pid_in_a, cov_in_a) << "covering entry in the same partition";
  }
}

TEST(PriLayoutTest, ReservedPrefixExcludesDataPages) {
  PriLayout l = PriLayout::Compute(16384);
  EXPECT_GE(l.reserved_prefix(), 1u + l.pri_a_pages);
  EXPECT_FALSE(l.IsPriPage(0));                       // meta page
  EXPECT_FALSE(l.IsPriPage(l.reserved_prefix()));     // first data page
}

}  // namespace
}  // namespace spf
