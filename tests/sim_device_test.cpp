// Unit tests for the simulated devices: latency accounting and the full
// fault-injection catalog (the paper's failure phenomenology, section 3.2).

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/sim_clock.h"
#include "storage/device_profile.h"
#include "storage/page.h"
#include "storage/sim_device.h"

namespace spf {
namespace {

constexpr uint32_t kPS = 4096;

std::string MakePage(PageId id, char fill) {
  std::string data(kPS, fill);
  PageView page(data.data(), kPS);
  page.Format(id, PageType::kRaw);
  std::memset(data.data() + kPageHeaderSize, fill, kPS - kPageHeaderSize);
  page.UpdateChecksum();
  return data;
}

class SimDeviceTest : public ::testing::Test {
 protected:
  SimClock clock_;
  SimDevice dev_{"test", kPS, 128, DeviceProfile::Instant(), &clock_};
};

TEST_F(SimDeviceTest, WriteReadRoundTrip) {
  std::string in = MakePage(5, 'a');
  ASSERT_TRUE(dev_.WritePage(5, in.data()).ok());
  std::string out(kPS, '\0');
  ASSERT_TRUE(dev_.ReadPage(5, out.data()).ok());
  EXPECT_EQ(in, out);
}

TEST_F(SimDeviceTest, OutOfRangeRejected) {
  std::string buf(kPS, '\0');
  EXPECT_TRUE(dev_.ReadPage(128, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(dev_.WritePage(500, buf.data()).IsInvalidArgument());
}

TEST_F(SimDeviceTest, StatsCountOps) {
  std::string buf = MakePage(0, 'x');
  dev_.WritePage(0, buf.data());
  dev_.WritePage(1, buf.data());
  dev_.ReadPage(0, buf.data());
  DeviceStats s = dev_.stats();
  EXPECT_EQ(s.page_writes, 2u);
  EXPECT_EQ(s.page_reads, 1u);
  EXPECT_EQ(s.bytes_written, 2u * kPS);
  dev_.ResetStats();
  EXPECT_EQ(dev_.stats().page_writes, 0u);
}

TEST_F(SimDeviceTest, SilentCorruptionCaughtByChecksum) {
  std::string in = MakePage(7, 'b');
  dev_.WritePage(7, in.data());
  dev_.InjectSilentCorruption(7);
  std::string out(kPS, '\0');
  // The device reports success — the failure is silent.
  ASSERT_TRUE(dev_.ReadPage(7, out.data()).ok());
  PageView page(out.data(), kPS);
  EXPECT_TRUE(page.Verify(7).IsCorruption());
}

TEST_F(SimDeviceTest, TransientReadError) {
  std::string in = MakePage(9, 'c');
  dev_.WritePage(9, in.data());
  dev_.InjectReadError(9, /*permanent=*/false);
  std::string out(kPS, '\0');
  EXPECT_TRUE(dev_.ReadPage(9, out.data()).IsReadFailure());
  EXPECT_TRUE(dev_.ReadPage(9, out.data()).ok());  // recovers
}

TEST_F(SimDeviceTest, PermanentReadError) {
  std::string in = MakePage(9, 'c');
  dev_.WritePage(9, in.data());
  dev_.InjectReadError(9, /*permanent=*/true);
  std::string out(kPS, '\0');
  EXPECT_TRUE(dev_.ReadPage(9, out.data()).IsReadFailure());
  EXPECT_TRUE(dev_.ReadPage(9, out.data()).IsReadFailure());
  dev_.ClearFault(9);
  EXPECT_TRUE(dev_.ReadPage(9, out.data()).ok());
}

TEST_F(SimDeviceTest, StaleVersionPassesInPageChecks) {
  // The "plausible but wrong contents" case: an old image with a valid
  // checksum. Only the PageLSN-vs-PRI cross-check can catch this.
  std::string v1 = MakePage(4, 'd');
  dev_.WritePage(4, v1.data());
  dev_.CapturePageVersion(4);

  std::string v2 = MakePage(4, 'e');
  PageView(v2.data(), kPS).set_page_lsn(1234);
  PageView(v2.data(), kPS).UpdateChecksum();
  dev_.WritePage(4, v2.data());

  ASSERT_TRUE(dev_.InjectStaleVersion(4));
  std::string out(kPS, '\0');
  ASSERT_TRUE(dev_.ReadPage(4, out.data()).ok());
  PageView page(out.data(), kPS);
  EXPECT_TRUE(page.Verify(4).ok()) << "stale image must pass in-page checks";
  EXPECT_EQ(page.page_lsn(), kInvalidLsn);  // it is the OLD image
}

TEST_F(SimDeviceTest, StaleVersionWithoutCaptureFails) {
  EXPECT_FALSE(dev_.InjectStaleVersion(99));
}

TEST_F(SimDeviceTest, TornWriteCaughtByChecksum) {
  std::string v1 = MakePage(11, 'f');
  dev_.WritePage(11, v1.data());
  dev_.InjectTornWrite(11, kPS / 2);
  std::string v2 = MakePage(11, 'g');
  dev_.WritePage(11, v2.data());  // torn: only first half applied
  std::string out(kPS, '\0');
  ASSERT_TRUE(dev_.ReadPage(11, out.data()).ok());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(11).IsCorruption());
  // The torn fault is one-shot: a rewrite repairs the stored image.
  dev_.WritePage(11, v2.data());
  ASSERT_TRUE(dev_.ReadPage(11, out.data()).ok());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(11).ok());
}

TEST_F(SimDeviceTest, WearOutScramblesAfterBudget) {
  std::string page = MakePage(20, 'h');
  dev_.SetWearOutLimit(20, 2);
  EXPECT_TRUE(dev_.WritePage(20, page.data()).ok());  // 1st ok
  EXPECT_TRUE(dev_.WritePage(20, page.data()).ok());  // 2nd ok
  std::string out(kPS, '\0');
  dev_.ReadPage(20, out.data());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(20).ok());

  EXPECT_TRUE(dev_.WritePage(20, page.data()).ok());  // worn out, silent
  dev_.ReadPage(20, out.data());
  EXPECT_TRUE(PageView(out.data(), kPS).Verify(20).IsCorruption());
}

TEST_F(SimDeviceTest, WholeDeviceFailure) {
  std::string buf(kPS, '\0');
  dev_.FailDevice();
  EXPECT_TRUE(dev_.ReadPage(0, buf.data()).IsMediaFailure());
  EXPECT_TRUE(dev_.WritePage(0, buf.data()).IsMediaFailure());
  dev_.ReviveDevice();
  EXPECT_TRUE(dev_.ReadPage(0, buf.data()).ok());
}

TEST_F(SimDeviceTest, RawAccessBypassesFaults) {
  std::string in = MakePage(2, 'z');
  dev_.WritePage(2, in.data());
  dev_.InjectReadError(2, true);
  std::string out(kPS, '\0');
  dev_.RawRead(2, out.data());  // no fault, no status
  EXPECT_EQ(in, out);
}

TEST(SimDeviceTimingTest, SequentialVsRandomCharges) {
  SimClock clock;
  // 10 ms positioning + 100 MB/s transfer.
  SimDevice dev("hdd", kPS, 1024, DeviceProfile::Hdd100(), &clock);
  std::string buf(kPS, '\0');

  // First access: random (10 ms + transfer).
  dev.ReadPage(100, buf.data());
  uint64_t t1 = clock.NowNanos();
  EXPECT_GT(t1, 10u * kMillisecond);

  // Sequential continuation: transfer only (~41 us at 100 MB/s for 4 KiB).
  dev.ReadPage(101, buf.data());
  uint64_t t2 = clock.NowNanos() - t1;
  EXPECT_LT(t2, 1u * kMillisecond);
  EXPECT_GT(t2, 0u);

  DeviceStats s = dev.stats();
  EXPECT_EQ(s.random_accesses, 1u);
  EXPECT_EQ(s.sequential_accesses, 1u);
}

TEST(SimDeviceTimingTest, MediaRestoreArithmetic) {
  // The paper's section 6 example: sequentially transferring D bytes at
  // R bytes/s takes D/R seconds. Validate the cost model on 64 MiB.
  SimClock clock;
  const uint64_t kPages = 16384;  // 64 MiB of 4 KiB pages
  SimDevice dev("hdd", kPS, kPages, DeviceProfile::Hdd100(), &clock);
  std::string buf(kPS, '\0');
  for (PageId p = 0; p < kPages; ++p) dev.ReadPage(p, buf.data());
  double expected = static_cast<double>(kPages) * kPS / (100e6);
  EXPECT_NEAR(clock.NowSeconds(), expected, expected * 0.05 + 0.011);
}

TEST(SimLogDeviceTest, AppendSyncRead) {
  SimClock clock;
  SimLogDevice log("wal", DeviceProfile::Instant(), &clock);
  uint64_t off1 = log.Append("hello");
  uint64_t off2 = log.Append("world");
  EXPECT_EQ(off1, 0u);
  EXPECT_EQ(off2, 5u);
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.synced_size(), 0u);
  log.Sync();
  EXPECT_EQ(log.synced_size(), 10u);

  char buf[5];
  ASSERT_TRUE(log.ReadAt(5, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "world");
  EXPECT_TRUE(log.ReadAt(8, 5, buf).IsIOError());  // 8 + 5 > 10
}

TEST(SimLogDeviceTest, ReadPastEndFails) {
  SimClock clock;
  SimLogDevice log("wal", DeviceProfile::Instant(), &clock);
  log.Append("abc");
  char buf[8];
  EXPECT_TRUE(log.ReadAt(0, 4, buf).IsIOError());
}

TEST(SimLogDeviceTest, CrashDropsUnsyncedTail) {
  // The stable-log assumption (section 5): synced bytes survive, the
  // unforced tail does not.
  SimClock clock;
  SimLogDevice log("wal", DeviceProfile::Instant(), &clock);
  log.Append("durable");
  log.Sync();
  log.Append("volatile");
  EXPECT_EQ(log.size(), 15u);
  log.DropUnsynced();
  EXPECT_EQ(log.size(), 7u);
  char buf[7];
  ASSERT_TRUE(log.ReadAt(0, 7, buf).ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST(SimLogDeviceTest, SequentialReadDetection) {
  SimClock clock;
  SimLogDevice log("wal", DeviceProfile::Hdd100(), &clock);
  log.Append(std::string(1000, 'a'));
  char buf[100];
  log.ReadAt(0, 100, buf);    // random
  log.ReadAt(100, 100, buf);  // sequential continuation
  log.ReadAt(500, 100, buf);  // random again
  DeviceStats s = log.stats();
  EXPECT_EQ(s.random_accesses, 2u);
  EXPECT_EQ(s.sequential_accesses, 1u);
}

}  // namespace
}  // namespace spf
