// Multi-threaded stress tests for the sharded hot path: N writer threads
// pushing transactions through the sharded lock table and group-commit
// log, with two invariants checked at every turn:
//
//  - COMMIT DURABILITY: every transaction whose Commit() returned OK must
//    survive SimulateCrash() + Restart() — group commit may batch, stage,
//    and defer device syncs however it likes, but an acknowledged commit
//    is durable, full stop.
//  - LOCK-LEAK FREEDOM: once every writer has retired, the sharded lock
//    table tracks zero keys (no holder or waiter left behind by any
//    commit, abort, timeout, or doomed-straggler path).
//
// The last test drives both through the worst of it: a silent page
// corruption healing mid-stream, then a whole-device failure and a rung-5
// full restore (restore-gate protocol) while the writers keep going — all
// with the background log archiver draining the durable log into sorted
// runs concurrently (it must pause for the restore and never trip over
// the group-commit publisher; TSan watches).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/database.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 4096;
  o.buffer_frames = 512;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

/// One writer's durable ground truth: key -> last value whose Commit()
/// was acknowledged. Only OK commits are recorded; everything else may
/// legitimately vanish.
using AckedMap = std::map<std::string, std::string>;

/// Runs `txns` transactions over the writer's private key range,
/// recording acknowledged commits. Failed operations abandon the
/// transaction (auto-abort on drop) and move on — under contention,
/// device failure, or a restore's drain deadline that is expected.
AckedMap WriterLoop(Database* db, int writer, int txns, int keys_per_txn) {
  AckedMap acked;
  for (int t = 0; t < txns; ++t) {
    Txn txn = db->BeginTxn();
    bool ok = true;
    std::vector<std::pair<std::string, std::string>> staged;
    for (int k = 0; k < keys_per_txn; ++k) {
      std::string key = Key(writer * 1000000 + (t * keys_per_txn + k) % 97);
      std::string value =
          "w" + std::to_string(writer) + "-t" + std::to_string(t);
      if (!txn.Put(key, value).ok()) {
        ok = false;
        break;
      }
      staged.emplace_back(std::move(key), std::move(value));
    }
    if (ok && txn.Commit().ok()) {
      for (auto& [k, v] : staged) acked[k] = std::move(v);
    }
  }
  return acked;
}

void MergeAcked(std::mutex* mu, AckedMap* into, AckedMap&& from) {
  std::lock_guard<std::mutex> g(*mu);
  for (auto& [k, v] : from) (*into)[k] = std::move(v);
}

void VerifyAcked(Database* db, const AckedMap& acked) {
  for (const auto& [key, value] : acked) {
    auto got = db->Get(key);
    ASSERT_TRUE(got.ok()) << "acked key lost: " << key << ": "
                          << got.status().ToString();
    // A later acked transaction on the same key wins; the map already
    // holds only the newest acknowledged value per key per writer, and
    // writers own disjoint ranges, so equality is exact.
    EXPECT_EQ(*got, value) << "acked key " << key << " has stale value";
  }
}

TEST(ConcurrencyStressTest, AckedCommitsSurviveCrashAndLocksDrain) {
  auto db = Database::Create(FastOptions()).value();

  constexpr int kWriters = 4;
  constexpr int kTxns = 60;
  std::mutex mu;
  AckedMap acked;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      MergeAcked(&mu, &acked, WriterLoop(db.get(), w, kTxns, 3));
    });
  }
  for (auto& th : writers) th.join();

  // Disjoint ranges: every transaction must have committed.
  EXPECT_EQ(acked.size(), kWriters * 97u);

  // Lock-leak freedom: all writers retired, no key tracked.
  StatsSnapshot stats = db->Stats();
  EXPECT_EQ(stats.locks.keys_tracked, 0u);
  EXPECT_GE(stats.locks.acquisitions, uint64_t(kWriters) * kTxns * 3);
  // Group commit ran: every user commit forced the log.
  EXPECT_GE(stats.log.group_commit_batches, 1u);
  EXPECT_GE(stats.log.group_commit_commits, stats.log.group_commit_batches);

  // Commit durability across a crash that loses staged records, the
  // unsynced device tail, and the whole buffer pool.
  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  VerifyAcked(db.get(), acked);
}

TEST(ConcurrencyStressTest, ContendedWritersTimeOutCleanly) {
  DatabaseOptions options = FastOptions();
  options.lock_timeout = std::chrono::milliseconds(20);
  auto db = Database::Create(options).value();

  // All writers fight over the same 5 keys: timeouts (resolved as
  // Deadlock) are expected; leaked lock states are not.
  constexpr int kWriters = 4;
  constexpr int kTxns = 40;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int t = 0; t < kTxns; ++t) {
        Txn txn = db->BeginTxn();
        bool ok = true;
        for (int k = 0; k < 3; ++k) {
          if (!txn.Put(Key((w + t + k) % 5), "x").ok()) {
            ok = false;
            break;
          }
        }
        if (ok && txn.Commit().ok()) committed++;
      }
    });
  }
  for (auto& th : writers) th.join();

  StatsSnapshot stats = db->Stats();
  EXPECT_GT(committed.load(), 0u);
  EXPECT_EQ(stats.locks.keys_tracked, 0u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_FALSE(db->txns()->lock_manager()->IsLocked(Key(k)))
        << "leaked " << k;
  }
}

TEST(ConcurrencyStressTest, WritersRideOutPageFailureAndFullRestore) {
  DatabaseOptions options = FastOptions();
  options.restore_segment_pages = 8;
  options.restore_drain_timeout = std::chrono::milliseconds(2000);
  options.backup_policy.updates_threshold = 0;  // full backup is the source
  auto db = Database::Create(options).value();

  // Seed enough data that the tree spans many pages, then take the full
  // backup the rung-5 restore will replay from.
  for (int i = 0; i < 2000; ++i) {
    Txn t = db->BeginTxn();
    ASSERT_TRUE(t.Put(Key(i), "seed").ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->TakeFullBackup().ok());

  // Background archiver alongside the writers: sorted runs are cut from
  // the durable log while commits stream in, and ticks pause while the
  // restore below owns the device.
  db->archiver()->Start();

  constexpr int kWriters = 4;
  constexpr int kTxns = 80;
  std::mutex mu;
  AckedMap acked;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      MergeAcked(&mu, &acked, WriterLoop(db.get(), w, kTxns, 2));
    });
  }

  // Mid-stream, a single page fails silently; the read path detects it
  // and the funnel heals it under the writers' feet.
  auto leaf = db->LeafPageOf(Key(1000));
  ASSERT_TRUE(leaf.ok());
  if (!db->pool()->IsDirty(*leaf) && db->pool()->DiscardPage(*leaf)) {
    db->data_device()->InjectSilentCorruption(*leaf);
  }
  (void)db->Get(Key(1000));  // detect + repair (or read the dirty copy)

  // Then the whole device dies: rung-5 full restore under live traffic.
  // Writer transactions in flight drain to commit (or get doomed at the
  // deadline and retry as fresh transactions); parked writers readmit
  // while the sweep is still running.
  db->data_device()->FailDevice();
  StatusOr<MediaRecoveryStats> restore = Status::Internal("not run");
  std::thread restorer([&] { restore = db->RecoverMedia(); });

  restorer.join();
  for (auto& th : writers) th.join();
  ASSERT_TRUE(restore.ok()) << restore.status().ToString();

  db->archiver()->Stop();

  // Lock-leak freedom after commits, timeouts, dooming, and a restore.
  StatsSnapshot stats = db->Stats();
  EXPECT_EQ(stats.locks.keys_tracked, 0u);
  EXPECT_GT(acked.size(), 0u);
  EXPECT_GT(stats.archive.ticks, 0u);  // the archiver really ran

  // Crash + restart: every acknowledged commit — before, during, or after
  // the restore — must still be there.
  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  VerifyAcked(db.get(), acked);
  for (int i = 0; i < 2000; ++i) {
    if (acked.count(Key(i))) continue;
    auto got = db->Get(Key(i));
    ASSERT_TRUE(got.ok()) << "seed key lost: " << i;
    EXPECT_EQ(*got, "seed");
  }
}

}  // namespace
}  // namespace spf
