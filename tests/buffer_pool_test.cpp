// Unit tests for the buffer pool: fix/unfix, hit/miss accounting, dirty
// tracking and recLSN, clock eviction, write-back ordering (WAL rule +
// completion listener, Figure 11), and the read-path hooks (Figure 8).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"

namespace spf {
namespace {

constexpr uint32_t kPS = 4096;

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest()
      : device_("data", kPS, 256, DeviceProfile::Instant(), &clock_),
        wal_("wal", DeviceProfile::Instant(), &clock_),
        log_(&wal_) {
    BufferPoolOptions o;
    o.page_size = kPS;
    o.num_frames = 8;
    pool_ = std::make_unique<BufferPool>(o, &device_, &log_);
    // Pre-format a handful of pages on the device.
    PageBuffer buf(kPS);
    for (PageId p = 0; p < 64; ++p) {
      PageView page = buf.view();
      page.Format(p, PageType::kRaw);
      page.UpdateChecksum();
      SPF_CHECK_OK(device_.WritePage(p, buf.data()));
    }
  }

  SimClock clock_;
  SimDevice device_;
  SimLogDevice wal_;
  LogManager log_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  {
    auto g = pool_->FixPage(3, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->view().page_id(), 3u);
  }
  auto g2 = pool_->FixPage(3, LatchMode::kShared);
  ASSERT_TRUE(g2.ok());
  BufferPoolStats s = pool_->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_TRUE(pool_->IsCached(3));
}

TEST_F(BufferPoolTest, DirtyTrackingWithRecLsn) {
  LogRecord rec;
  rec.type = LogRecordType::kBTreeInsert;
  rec.page_id = 5;
  Lsn tail_before = log_.tail_lsn();
  {
    auto g = pool_->FixPage(5, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
    log_.AppendPageRecord(&rec, g->view());
  }
  EXPECT_TRUE(pool_->IsDirty(5));
  auto dpt = pool_->DirtyPages();
  ASSERT_EQ(dpt.size(), 1u);
  EXPECT_EQ(dpt[0].page_id, 5u);
  EXPECT_EQ(dpt[0].rec_lsn, tail_before);  // recLSN = tail at MarkDirty
}

TEST_F(BufferPoolTest, FlushEnforcesWalRule) {
  // The page's record must be durable BEFORE the page write (Figure 11 /
  // WAL): flushing forces the log up to the PageLSN.
  LogRecord rec;
  rec.type = LogRecordType::kBTreeInsert;
  rec.page_id = 7;
  {
    auto g = pool_->FixPage(7, LatchMode::kExclusive);
    g->MarkDirty();
    log_.AppendPageRecord(&rec, g->view());
    g->view().bump_update_count();
  }
  EXPECT_LT(log_.durable_lsn(), rec.lsn + rec.length);
  ASSERT_TRUE(pool_->FlushPage(7).ok());
  EXPECT_GE(log_.durable_lsn(), rec.lsn + rec.length);
  EXPECT_FALSE(pool_->IsDirty(7));
  // The device copy carries a fresh checksum.
  PageBuffer buf(kPS);
  device_.RawRead(7, buf.data());
  EXPECT_TRUE(buf.view().Verify(7).ok());
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyVictims) {
  // 8 frames; touch 20 pages, dirtying each: evictions must write back.
  for (PageId p = 0; p < 20; ++p) {
    auto g = pool_->FixPage(p, LatchMode::kExclusive);
    ASSERT_TRUE(g.ok());
    g->MarkDirty();
    LogRecord rec;
    rec.type = LogRecordType::kBTreeInsert;
    rec.page_id = p;
    log_.AppendPageRecord(&rec, g->view());
  }
  BufferPoolStats s = pool_->stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.write_backs, 0u);
  // Everything still readable and correct.
  for (PageId p = 0; p < 20; ++p) {
    auto g = pool_->FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(g.ok()) << p;
    EXPECT_EQ(g->view().page_id(), p);
  }
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  std::vector<PageGuard> pins;
  for (PageId p = 0; p < 7; ++p) {
    auto g = pool_->FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(*g));
  }
  // One frame left: more fixes recycle it, never the pinned seven.
  for (PageId p = 10; p < 14; ++p) {
    auto g = pool_->FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
  }
  for (PageId p = 0; p < 7; ++p) EXPECT_TRUE(pool_->IsCached(p));
}

TEST_F(BufferPoolTest, AllFramesPinnedReturnsBusy) {
  std::vector<PageGuard> pins;
  for (PageId p = 0; p < 8; ++p) {
    auto g = pool_->FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    pins.push_back(std::move(*g));
  }
  auto g = pool_->FixPage(20, LatchMode::kShared);
  EXPECT_TRUE(g.status().IsBusy());
}

TEST_F(BufferPoolTest, DiscardAllDropsEverything) {
  {
    auto g = pool_->FixPage(2, LatchMode::kExclusive);
    g->MarkDirty();
  }
  pool_->DiscardAll();
  EXPECT_FALSE(pool_->IsCached(2));
  EXPECT_TRUE(pool_->DirtyPages().empty());
}

TEST_F(BufferPoolTest, DiscardPageSkipsPinned) {
  auto g = pool_->FixPage(2, LatchMode::kShared);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(pool_->DiscardPage(2));  // pinned
  g->Release();
  EXPECT_TRUE(pool_->DiscardPage(2));
  EXPECT_FALSE(pool_->IsCached(2));
}

TEST_F(BufferPoolTest, VerifyOnReadCatchesCorruption) {
  pool_->DiscardAll();
  device_.InjectSilentCorruption(9);
  auto g = pool_->FixPage(9, LatchMode::kShared);
  ASSERT_FALSE(g.ok());
  // No repairer installed: escalation to media failure (Figure 8).
  EXPECT_TRUE(g.status().IsMediaFailure());
  EXPECT_EQ(pool_->stats().verify_failures, 1u);
  EXPECT_FALSE(pool_->IsCached(9));  // failed frame not left behind
}

class CountingListener : public WriteCompletionListener {
 public:
  bool OnPageWritten(PageId id, Lsn page_lsn, uint32_t update_count,
                     const char* data) override {
    calls++;
    last_id = id;
    last_lsn = page_lsn;
    last_count = update_count;
    last_data_ok = data != nullptr;
    return reset_counter;
  }
  int calls = 0;
  PageId last_id = kInvalidPageId;
  Lsn last_lsn = kInvalidLsn;
  uint32_t last_count = 0;
  bool last_data_ok = false;
  bool reset_counter = false;
};

TEST_F(BufferPoolTest, ListenerRunsAfterEveryWriteBack) {
  CountingListener listener;
  pool_->SetWriteCompletionListener(&listener);
  LogRecord rec;
  rec.type = LogRecordType::kBTreeInsert;
  rec.page_id = 11;
  {
    auto g = pool_->FixPage(11, LatchMode::kExclusive);
    g->MarkDirty();
    log_.AppendPageRecord(&rec, g->view());
  }
  ASSERT_TRUE(pool_->FlushPage(11).ok());
  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.last_id, 11u);
  EXPECT_EQ(listener.last_lsn, rec.lsn);
  EXPECT_EQ(listener.last_count, 1u);
  EXPECT_TRUE(listener.last_data_ok);
  // Flushing a clean page does not re-notify.
  ASSERT_TRUE(pool_->FlushPage(11).ok());
  EXPECT_EQ(listener.calls, 1);
}

TEST_F(BufferPoolTest, BackupResetClearsUpdateCounter) {
  CountingListener listener;
  listener.reset_counter = true;  // "a backup was taken"
  pool_->SetWriteCompletionListener(&listener);
  {
    auto g = pool_->FixPage(12, LatchMode::kExclusive);
    g->MarkDirty();
    LogRecord rec;
    rec.type = LogRecordType::kBTreeInsert;
    rec.page_id = 12;
    log_.AppendPageRecord(&rec, g->view());
    EXPECT_EQ(g->view().update_count(), 1u);
  }
  ASSERT_TRUE(pool_->FlushPage(12).ok());
  auto g = pool_->FixPage(12, LatchMode::kShared);
  EXPECT_EQ(g->view().update_count(), 0u);  // reset after "backup"
}

TEST_F(BufferPoolTest, FixNewPageSkipsDeviceRead) {
  DeviceStats before = device_.stats();
  {
    auto g = pool_->FixNewPage(100);
    ASSERT_TRUE(g.ok());
    // Frame is zeroed, ready for formatting.
    EXPECT_EQ(g->view().header()->magic, 0u);
  }
  EXPECT_EQ(device_.stats().page_reads, before.page_reads);
}

TEST_F(BufferPoolTest, SharedLatchAllowsConcurrentReaders) {
  auto a = pool_->FixPage(1, LatchMode::kShared);
  auto b = pool_->FixPage(1, LatchMode::kShared);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());  // would deadlock if shared latches were exclusive
}

}  // namespace
}  // namespace spf
