// Failure-under-load tests of the network serving layer: a real TCP
// server over a real Database, 8 concurrent wire clients retrying
// retryable() replies, while single-page failures and a whole-device
// failure with a mid-stream rung-5 restore happen underneath the
// sockets. Invariants:
//
//  - COMMIT DURABILITY OVER THE WIRE: every frame acked as committed must
//    survive SimulateCrash() + Restart(), no matter what failures the
//    engine was riding out when the ack was sent.
//  - LOCK-LEAK FREEDOM AFTER DISCONNECTS: abrupt client death — mid-frame,
//    mid-reply, or mid-transaction — leaves zero keys tracked in the lock
//    table once the server has torn the connection down.
//  - COUNTER CONSERVATION: every well-formed frame is accounted for,
//    frames_decoded == txns_committed + txns_failed + info_requests, and
//    accepted connections are eventually closed.
//
// The TSan CI job runs this binary standalone (like the stress test): the
// IO thread, worker pool, client threads, restore thread, and archiver
// all race here on purpose.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "server/client.h"
#include "server/network_server.h"
#include "test_env.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 4096;
  o.buffer_frames = 512;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// key -> last value whose frame was acked as committed.
using AckedMap = std::map<std::string, std::string>;

void MergeAcked(std::mutex* mu, AckedMap* into, AckedMap&& from) {
  std::lock_guard<std::mutex> g(*mu);
  for (auto& [k, v] : from) (*into)[k] = std::move(v);
}

void VerifyAcked(Database* db, const AckedMap& acked) {
  for (const auto& [key, value] : acked) {
    auto got = db->Get(key);
    ASSERT_TRUE(got.ok()) << "acked key lost: " << key << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, value) << "acked key " << key << " has stale value";
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(DatabaseOptions options, uint32_t workers = 4) {
    auto db_or = Database::Create(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    db_ = std::move(db_or).value();
    testenv::LoopbackListener listener;
    ASSERT_TRUE(listener.ok());
    port_ = listener.port();
    ServerOptions sopts;
    sopts.listen_fd = listener.release();
    sopts.workers = workers;
    server_ = std::make_unique<NetworkServer>(db_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_EQ(server_->port(), port_);
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<NetworkServer> server_;
  uint16_t port_ = 0;
};

TEST_F(ServerTest, FrameSemanticsMatchTheClientApi) {
  StartServer(FastOptions());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());

  // A multi-op frame commits atomically and returns per-op results.
  wire::TxnRequest req;
  req.Insert("a", "1");
  req.Insert("b", "2");
  req.Get("a");
  req.Scan("a", "", 10);
  wire::TxnReply reply;
  ASSERT_TRUE(client.Execute(req, &reply).ok());
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.results.size(), 4u);
  EXPECT_EQ(reply.results[2].value, "1");
  ASSERT_EQ(reply.results[3].pairs.size(), 2u);
  EXPECT_EQ(reply.results[3].pairs[0].first, "a");
  EXPECT_EQ(reply.results[3].pairs[1].first, "b");

  // A failing op aborts the WHOLE frame: the earlier write must not land.
  wire::TxnRequest atomic_req;
  atomic_req.Put("c", "should-not-survive");
  atomic_req.Insert("a", "duplicate");  // insert-only on an existing key
  ASSERT_TRUE(client.Execute(atomic_req, &reply).ok());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.kind, TxnError::Kind::kUser);
  EXPECT_EQ(reply.failed_op, 1);
  EXPECT_FALSE(reply.retryable());
  EXPECT_FALSE(client.Get("c").ok());  // the put rolled back

  // Point-read taxonomy: a missing key is a kUser / NotFound outcome.
  wire::TxnRequest missing;
  missing.Get("no-such-key");
  ASSERT_TRUE(client.Execute(missing, &reply).ok());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.kind, TxnError::Kind::kUser);
  EXPECT_EQ(reply.code, Status::Code::kNotFound);
  EXPECT_EQ(reply.failed_op, 0);

  // Update/Delete round out the verb set.
  wire::TxnRequest mut;
  mut.Update("a", "1.1");
  mut.Delete("b");
  ASSERT_TRUE(client.Execute(mut, &reply).ok());
  ASSERT_TRUE(reply.ok());
  auto a = client.Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "1.1");
  EXPECT_FALSE(client.Get("b").ok());

  client.Close();
}

TEST_F(ServerTest, InfoCountersAreConservedAndVersioned) {
  StartServer(FastOptions());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());

  int committed = 0, failed = 0;
  for (int i = 0; i < 40; ++i) {
    wire::TxnRequest req;
    if (i % 5 == 4) {
      req.Get("missing-" + std::to_string(i));  // fails as kUser
    } else {
      req.Put(Key(i), "v");
    }
    wire::TxnReply reply;
    ASSERT_TRUE(client.Execute(req, &reply).ok());
    reply.ok() ? committed++ : failed++;
  }

  wire::InfoReply info;
  ASSERT_TRUE(client.Info(&info).ok());
  EXPECT_EQ(info.stats_version, StatsSnapshot::kVersion);
  // Conservation: every decoded frame is exactly one of committed,
  // failed, or an INFO request (this one included).
  EXPECT_EQ(info.Counter("server.frames_decoded"),
            info.Counter("server.txns_committed") +
                info.Counter("server.txns_failed") +
                info.Counter("server.info_requests"));
  EXPECT_EQ(info.Counter("server.txns_committed"),
            static_cast<uint64_t>(committed));
  EXPECT_EQ(info.Counter("server.txns_failed"), static_cast<uint64_t>(failed));
  EXPECT_EQ(info.Counter("server.info_requests"), 1u);
  EXPECT_EQ(info.Counter("server.frames_rejected"), 0u);
  EXPECT_GE(info.Counter("server.ops_served"), 40u);
  // The engine's counters ride along in the same snapshot.
  EXPECT_GT(info.Counter("log.records_appended"), 0u);
  EXPECT_GT(info.Counter("locks.acquisitions"), 0u);

  client.Close();
  // The close is observed asynchronously by the IO thread.
  EXPECT_TRUE(WaitFor([&] {
    ServerStats s = server_->server_stats();
    return s.connections_closed == s.connections_accepted;
  }));
}

TEST_F(ServerTest, AbruptDisconnectsLeakNoLocks) {
  StartServer(FastOptions());

  {  // Client killed mid-frame: length prefix promises bytes that never come.
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", port_).ok());
    wire::TxnRequest req;
    req.Put("half", "frame");
    std::string frame = wire::EncodeTxnRequest(req);
    ASSERT_TRUE(c.SendRaw(frame.substr(0, frame.size() - 3)).ok());
    c.Close();
  }

  {  // Client killed mid-reply: full frame sent, socket gone before the ack.
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", port_).ok());
    wire::TxnRequest req;
    req.Put("fire-and-die", "v");
    ASSERT_TRUE(c.SendRaw(wire::EncodeTxnRequest(req)).ok());
    c.Close();  // do not read the reply
  }

  {  // And one polite client, to prove the server shrugged it all off.
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", port_).ok());
    ASSERT_TRUE(c.Put("polite", "v").ok());
    c.Close();
  }

  ASSERT_TRUE(WaitFor([&] {
    ServerStats s = server_->server_stats();
    return s.connections_accepted == 3 && s.connections_closed == 3;
  }));
  // Whatever the dead clients' transactions did, the lock table is clean.
  EXPECT_EQ(db_->Stats().locks.keys_tracked, 0u);
  // The fire-and-die frame still executed server-side (the ack was sent
  // into a dead socket, which is the client's loss, not a leak).
  auto v = db_->Get("fire-and-die");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
}

TEST_F(ServerTest, StopDrainsInFlightFramesAndStartAgainWorks) {
  StartServer(FastOptions());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
  ASSERT_TRUE(client.Put("before-stop", "v").ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The connection is gone with the server.
  wire::TxnReply reply;
  wire::TxnRequest req;
  req.Put("after-stop", "v");
  EXPECT_FALSE(client.Execute(req, &reply).ok());
  client.Close();

  // The same server object can serve again (fresh ephemeral port).
  ASSERT_TRUE(server_->Start().ok());
  Client again;
  ASSERT_TRUE(again.Connect("127.0.0.1", server_->port()).ok());
  auto v = again.Get("before-stop");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
  again.Close();
}

// The headline soak: 8 clients hammering single-shot frames with the
// wire retry contract while a page fails, then the device fails and a
// rung-5 gated restore runs mid-stream.
TEST_F(ServerTest, ClientsRideOutPageFailureAndFullRestore) {
  DatabaseOptions options = FastOptions();
  options.restore_segment_pages = 8;
  options.restore_drain_timeout = std::chrono::milliseconds(2000);
  options.backup_policy.updates_threshold = 0;  // full backup is the source
  StartServer(options);

  // Seed a multi-page tree and the backup the restore replays from.
  for (int i = 0; i < 2000; ++i) {
    Txn t = db_->BeginTxn();
    ASSERT_TRUE(t.Put(Key(i), "seed").ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(db_->FlushAll().ok());
  ASSERT_TRUE(db_->TakeFullBackup().ok());
  db_->archiver()->Start();

  constexpr int kClients = 8;
  constexpr int kFrames = 60;
  std::mutex mu;
  AckedMap acked;
  std::atomic<uint64_t> acks{0};
  std::atomic<uint64_t> hard_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port_).ok());
      AckedMap mine;
      for (int f = 0; f < kFrames; ++f) {
        wire::TxnRequest req;
        std::vector<std::pair<std::string, std::string>> staged;
        for (int k = 0; k < 2; ++k) {
          std::string key = Key(c * 1000000 + (f * 2 + k) % 97);
          std::string value =
              "c" + std::to_string(c) + "-f" + std::to_string(f);
          req.Put(key, value);
          staged.emplace_back(std::move(key), std::move(value));
        }
        wire::TxnReply reply;
        Status s = client.ExecuteWithRetry(req, &reply);
        ASSERT_TRUE(s.ok()) << s.ToString();  // transport must never break
        if (reply.ok()) {
          for (auto& [k, v] : staged) mine[k] = std::move(v);
          acks++;
        } else {
          hard_failures++;  // storage-class outcome mid-failure: legitimate
        }
      }
      client.Close();
      MergeAcked(&mu, &acked, std::move(mine));
    });
  }

  // Wait until commits are flowing, then pull the rug. Single-page
  // failure first: the funnel heals it under live wire traffic.
  ASSERT_TRUE(WaitFor([&] { return acks.load() >= kClients; }));
  auto leaf = db_->LeafPageOf(Key(1000));
  ASSERT_TRUE(leaf.ok());
  if (!db_->pool()->IsDirty(*leaf) && db_->pool()->DiscardPage(*leaf)) {
    db_->data_device()->InjectSilentCorruption(*leaf);
  }
  (void)db_->Get(Key(1000));  // detect + repair (or read the dirty copy)

  // Then the whole device dies mid-stream: rung-5 gated restore while the
  // clients keep sending. Doomed transactions come back as retryable()
  // replies and the resent frames are admitted as fresh transactions.
  db_->data_device()->FailDevice();
  StatusOr<MediaRecoveryStats> restore = Status::Internal("not run");
  std::thread restorer([&] { restore = db_->RecoverMedia(); });

  restorer.join();
  for (auto& th : clients) th.join();
  ASSERT_TRUE(restore.ok()) << restore.status().ToString();
  db_->archiver()->Stop();

  // Counter conservation straight from the server, with the whole
  // failure story included.
  ServerStats ss = server_->server_stats();
  EXPECT_EQ(ss.frames_decoded,
            ss.txns_committed + ss.txns_failed + ss.info_requests);
  EXPECT_EQ(ss.txns_committed, acks.load());
  EXPECT_GE(ss.txns_failed, hard_failures.load());  // + absorbed retries
  EXPECT_EQ(ss.frames_rejected, 0u);
  EXPECT_GT(acks.load(), 0u);

  // Lock-leak freedom after disconnects, dooming, and the restore.
  ASSERT_TRUE(WaitFor([&] {
    ServerStats s = server_->server_stats();
    return s.connections_closed == s.connections_accepted;
  }));
  EXPECT_EQ(db_->Stats().locks.keys_tracked, 0u);
  EXPECT_GE(db_->Stats().funnel.gated_restores, 1u);

  // The wire's durability contract: stop the server, crash the engine,
  // restart — every acked frame's writes are there.
  server_->Stop();
  db_->SimulateCrash();
  ASSERT_TRUE(db_->Restart().ok());
  VerifyAcked(db_.get(), acked);
  for (int i = 0; i < 2000; ++i) {
    if (acked.count(Key(i))) continue;
    auto got = db_->Get(Key(i));
    ASSERT_TRUE(got.ok()) << "seed key lost: " << i;
    EXPECT_EQ(*got, "seed");
  }
}

}  // namespace
}  // namespace spf
