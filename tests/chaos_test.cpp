// Bounded chaos-harness runs for ctest (tools/chaos): DSL round-trips,
// replay determinism, three pinned scenario mixes with every online
// invariant check enabled, and the tests/chaos_seeds/ regression corpus.
// The open-ended torture loop lives in the chaos_driver binary (nightly
// CI); everything here is sized to finish in seconds.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos_driver.h"
#include "chaos/chaos_schedule.h"
#include "chaos/invariants.h"

namespace spf {
namespace chaos {
namespace {

// A small, fast workload shape shared by the scenario-mix tests.
ChaosSchedule SmallSchedule(uint64_t seed) {
  ChaosSchedule s;
  s.seed = seed;
  s.writers = 2;
  s.txns_per_writer = 24;
  s.ops_per_txn = 3;
  s.keys_per_writer = 48;
  s.value_len = 18;
  s.seed_records = 400;
  s.contended_keys = 3;
  s.batch_pct = 30;
  s.delete_pct = 15;
  s.contended_pct = 10;
  s.scan_every = 6;
  s.restore_segment_pages = 32;
  s.drain_timeout_ms = 1000;
  return s;
}

void ExpectClean(const ChaosReport& report) {
  for (const std::string& v : report.violations) {
    ADD_FAILURE() << "invariant violation: " << v;
  }
  EXPECT_TRUE(report.ok());
}

TEST(ChaosScheduleTest, GenerateIsDeterministic) {
  ChaosSchedule a = GenerateSchedule(1234);
  ChaosSchedule b = GenerateSchedule(1234);
  EXPECT_EQ(SerializeSchedule(a), SerializeSchedule(b));
  ChaosSchedule c = GenerateSchedule(1235);
  EXPECT_NE(SerializeSchedule(a), SerializeSchedule(c));
}

TEST(ChaosScheduleTest, DslRoundTrip) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 0xdeadbeefull}) {
    ChaosSchedule s = GenerateSchedule(seed);
    std::string text = SerializeSchedule(s);
    auto parsed = ParseSchedule(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(text, SerializeSchedule(*parsed)) << "seed " << seed;
  }
}

TEST(ChaosScheduleTest, TraceFooterRoundTrip) {
  ChaosSchedule s = GenerateSchedule(7);
  TraceResult r;
  r.present = true;
  r.schedule_digest = 111;
  r.shadow_digest = 222;
  r.committed_txns = 333;
  r.events_fired = 4;
  std::string trace = SerializeTrace(s, r);
  TraceResult back;
  auto parsed = ParseSchedule(trace, &back);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(back.present);
  EXPECT_EQ(back.schedule_digest, 111u);
  EXPECT_EQ(back.shadow_digest, 222u);
  EXPECT_EQ(back.committed_txns, 333u);
  EXPECT_EQ(back.events_fired, 4u);
  EXPECT_EQ(SerializeSchedule(s), SerializeSchedule(*parsed));
}

TEST(ChaosScheduleTest, ParseRejectsTypos) {
  // A typo in a pinned scenario must not silently change the scenario.
  EXPECT_FALSE(ParseSchedule("writerz 3\n").ok());
  EXPECT_FALSE(ParseSchedule("event at=1 kind=corupt key=2\n").ok());
  EXPECT_FALSE(ParseSchedule("event at=1 kind=crash key=2 bogus=3\n").ok());
  EXPECT_FALSE(ParseSchedule("writers three\n").ok());
}

// The core replay contract: the same schedule produces the same committed
// state (shadow digest) and the same committed-transaction count, every
// time, regardless of thread scheduling.
TEST(ChaosDriverTest, ReplayIsDeterministic) {
  ChaosSchedule s = SmallSchedule(99);
  s.events.push_back({10, EventKind::kCorrupt, 17, 1, 0});
  s.events.push_back({20, EventKind::kCrash, 0, 1, 0});
  s.events.push_back({30, EventKind::kQuiesce, 0, 1, 0});

  ChaosReport first = ChaosDriver(s).Run();
  ExpectClean(first);
  ChaosReport second = ChaosDriver(s).Run();
  ExpectClean(second);
  EXPECT_EQ(first.schedule_digest, second.schedule_digest);
  EXPECT_EQ(first.shadow_digest, second.shadow_digest);
  EXPECT_EQ(first.committed_txns, second.committed_txns);
  EXPECT_EQ(first.committed_txns, s.total_txns());
}

// Scenario mix 1: single-page failure classes under live traffic — silent
// corruption, a transient read error, a worn-out location that re-fails
// after repair, a multi-page range failure — with a mid-run quiesce.
TEST(ChaosDriverTest, ScenarioSinglePageClasses) {
  ChaosSchedule s = SmallSchedule(301);
  s.events.push_back({6, EventKind::kCorrupt, 31, 1, 0});
  s.events.push_back({12, EventKind::kReadError, 97, 1, 0});
  s.events.push_back({18, EventKind::kWearOut, 55, 1, 2});
  s.events.push_back({24, EventKind::kFailRange, 120, 4, 0});
  s.events.push_back({32, EventKind::kQuiesce, 0, 1, 0});
  s.events.push_back({40, EventKind::kBackup, 0, 1, 0});
  ExpectClean(ChaosDriver(s).Run());
}

// Scenario mix 2: media events — a live-traffic full restore, back-to-back
// restores, a checkpoint, and a crash — stale-version pair included.
TEST(ChaosDriverTest, ScenarioMediaAndCrash) {
  ChaosSchedule s = SmallSchedule(302);
  s.events.push_back({5, EventKind::kStaleCapture, 1, 1, 0});
  s.events.push_back({10, EventKind::kFullRestore, 0, 1, 0});
  s.events.push_back({16, EventKind::kStaleRevert, 1, 1, 0});
  s.events.push_back({22, EventKind::kCheckpoint, 0, 1, 0});
  s.events.push_back({28, EventKind::kBackToBackRestore, 0, 1, 0});
  s.events.push_back({36, EventKind::kCrash, 0, 1, 0});
  ExpectClean(ChaosDriver(s).Run());
}

// Scenario mix 3: the hard one — a restore that fails mid-sweep (real
// data loss in segment 0, poisoned backup segment mid-device), a crash on
// top of the half-restored device, the finishing restore, then a second
// crash and a final quiesce.
TEST(ChaosDriverTest, ScenarioCrashDuringRestore) {
  ChaosSchedule s = SmallSchedule(303);
  s.restore_segment_pages = 64;
  s.events.push_back({8, EventKind::kCorrupt, 9, 1, 0});
  s.events.push_back({16, EventKind::kCrashDuringRestore, 0, 1, 0});
  s.events.push_back({28, EventKind::kCrash, 0, 1, 0});
  s.events.push_back({38, EventKind::kQuiesce, 0, 1, 0});
  ExpectClean(ChaosDriver(s).Run());
}

// Regression corpus: every .chaos file in tests/chaos_seeds/ replays
// clean, and files carrying a `# result` footer must reproduce it.
TEST(ChaosDriverTest, SeedCorpusReplaysClean) {
#ifndef SPF_CHAOS_SEED_DIR
  GTEST_SKIP() << "SPF_CHAOS_SEED_DIR not configured";
#else
  std::filesystem::path dir(SPF_CHAOS_SEED_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".chaos") files.push_back(entry.path());
  }
  ASSERT_FALSE(files.empty()) << "no .chaos seeds in " << dir;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    TraceResult recorded;
    auto parsed = ParseSchedule(buf.str(), &recorded);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ChaosReport report = ChaosDriver(*parsed).Run();
    ExpectClean(report);
    if (recorded.present) {
      EXPECT_EQ(report.schedule_digest, recorded.schedule_digest);
      EXPECT_EQ(report.shadow_digest, recorded.shadow_digest);
      EXPECT_EQ(report.committed_txns, recorded.committed_txns);
    }
  }
#endif
}

// StatsSnapshot v3 added the network-server block; the invariant layer
// must cover it: version stamp pinned, server counters monotone within
// an epoch, and the frame-outcome conservation law.
TEST(ChaosInvariantsTest, SnapshotV3ServerBlockIsCovered) {
  SnapshotMonotonicity mono;
  StatsSnapshot a;
  ASSERT_EQ(StatsSnapshot::kVersion, 3u);  // this test covers the v3 bump
  a.server.frames_decoded = 10;
  a.server.txns_committed = 8;
  a.server.ops_served = 20;
  EXPECT_TRUE(mono.Check(a).empty());

  // A server counter regressing inside one epoch is a violation.
  StatsSnapshot b = a;
  b.server.frames_decoded = 4;
  std::vector<std::string> v = mono.Check(b);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("server.frames_decoded"), std::string::npos);

  // A snapshot stamped with an outdated version is caught every call.
  StatsSnapshot stale = b;
  stale.version = 2;
  v = mono.Check(stale);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("snapshot version"), std::string::npos);

  // NoteReset forgives the post-crash restart of the volatile counters.
  mono.NoteReset();
  StatsSnapshot fresh;
  EXPECT_TRUE(mono.Check(fresh).empty());
}

TEST(ChaosInvariantsTest, ServerConservationLaw) {
  ServerStats s;
  s.connections_accepted = 5;
  s.connections_closed = 5;
  s.frames_decoded = 10;
  s.txns_committed = 6;
  s.txns_failed = 3;
  s.info_requests = 1;
  s.gate_parked_commits = 2;
  EXPECT_TRUE(CheckServerConservation(s).empty());

  ServerStats leak = s;
  leak.txns_failed = 2;  // one decoded frame vanished without an outcome
  std::vector<std::string> v = CheckServerConservation(leak);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("frames_decoded"), std::string::npos);

  ServerStats overclosed = s;
  overclosed.connections_closed = 6;
  EXPECT_EQ(CheckServerConservation(overclosed).size(), 1u);

  ServerStats overparked = s;
  overparked.gate_parked_commits = 100;
  EXPECT_EQ(CheckServerConservation(overparked).size(), 1u);
}

}  // namespace
}  // namespace chaos
}  // namespace spf
