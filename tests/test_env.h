// Shared test fixture plumbing: assembles the full storage stack (clock,
// devices, log, buffer pool, locks, transactions, allocator, meta page,
// B-tree) the way the db facade does, but with every component exposed for
// poking and fault injection.

#pragma once

#include <memory>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "storage/allocation.h"
#include "storage/db_meta.h"
#include "storage/device_profile.h"
#include "storage/sim_device.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace spf {
namespace testenv {

struct EnvOptions {
  uint32_t page_size = kDefaultPageSize;
  uint64_t num_pages = 4096;
  size_t buffer_frames = 512;
  uint64_t reserved_pages = 1;  // meta page only (tests below the PRI layer)
  DeviceProfile data_profile = DeviceProfile::Instant();
  DeviceProfile log_profile = DeviceProfile::Instant();
  bool verify_on_read = true;
  bool verify_traversals = true;
};

/// The full stack below the db facade.
class TestEnv {
 public:
  explicit TestEnv(EnvOptions opts = EnvOptions()) : opts_(opts) {
    data = std::make_unique<SimDevice>("data", opts.page_size, opts.num_pages,
                                       opts.data_profile, &clock);
    wal = std::make_unique<SimLogDevice>("wal", opts.log_profile, &clock);
    log = std::make_unique<LogManager>(wal.get());
    BufferPoolOptions bp_opts;
    bp_opts.page_size = opts.page_size;
    bp_opts.num_frames = opts.buffer_frames;
    bp_opts.verify_on_read = opts.verify_on_read;
    pool = std::make_unique<BufferPool>(bp_opts, data.get(), log.get());
    locks = std::make_unique<LockManager>();
    txns = std::make_unique<TxnManager>(log.get(), locks.get());
    alloc = std::make_unique<PageAllocator>(opts.num_pages, opts.reserved_pages);

    FormatMetaPage();

    BTreeOptions bt_opts;
    bt_opts.verify_traversals = opts.verify_traversals;
    tree = std::make_unique<BTree>(bt_opts, pool.get(), log.get(), txns.get(),
                                   alloc.get(), /*meta_pid=*/0);
    SPF_CHECK_OK(tree->Create());
  }

  /// Formats page 0 as the meta page, directly on the device (the db
  /// facade logs this; tests don't need to).
  void FormatMetaPage() {
    PageBuffer buf(opts_.page_size);
    PageView page = buf.view();
    page.Format(0, PageType::kMeta);
    MetaView meta(page);
    DbMetaData* m = meta.mutable_meta();
    m->magic = kDbMetaMagic;
    m->root_pid = kInvalidPageId;
    m->num_pages = opts_.num_pages;
    m->reserved_pages = opts_.reserved_pages;
    page.UpdateChecksum();
    SPF_CHECK_OK(data->WritePage(0, buf.data()));
  }

  /// Convenience: run `fn(txn)` in a committed user transaction.
  template <typename Fn>
  Status WithTxn(Fn&& fn) {
    std::shared_ptr<Transaction> txn = txns->Begin();
    Status s = fn(txn.get());
    if (!s.ok()) {
      txns->BeginAbort(txn.get());
      txns->FinishAbort(txn.get());  // NOTE: without undo; use only in tests
      return s;
    }
    return txns->Commit(txn.get());
  }

  EnvOptions opts_;
  SimClock clock;
  std::unique_ptr<SimDevice> data;
  std::unique_ptr<SimLogDevice> wal;
  std::unique_ptr<LogManager> log;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<LockManager> locks;
  std::unique_ptr<TxnManager> txns;
  std::unique_ptr<PageAllocator> alloc;
  std::unique_ptr<BTree> tree;
};

}  // namespace testenv
}  // namespace spf
