// Shared test fixture plumbing: assembles the full storage stack (clock,
// devices, log, buffer pool, locks, transactions, allocator, meta page,
// B-tree) the way the db facade does, but with every component exposed for
// poking and fault injection.

#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "storage/allocation.h"
#include "storage/db_meta.h"
#include "storage/device_profile.h"
#include "storage/sim_device.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace spf {
namespace testenv {

struct EnvOptions {
  uint32_t page_size = kDefaultPageSize;
  uint64_t num_pages = 4096;
  size_t buffer_frames = 512;
  uint64_t reserved_pages = 1;  // meta page only (tests below the PRI layer)
  DeviceProfile data_profile = DeviceProfile::Instant();
  DeviceProfile log_profile = DeviceProfile::Instant();
  bool verify_on_read = true;
  bool verify_traversals = true;
};

/// The full stack below the db facade.
class TestEnv {
 public:
  explicit TestEnv(EnvOptions opts = EnvOptions()) : opts_(opts) {
    data = std::make_unique<SimDevice>("data", opts.page_size, opts.num_pages,
                                       opts.data_profile, &clock);
    wal = std::make_unique<SimLogDevice>("wal", opts.log_profile, &clock);
    log = std::make_unique<LogManager>(wal.get());
    BufferPoolOptions bp_opts;
    bp_opts.page_size = opts.page_size;
    bp_opts.num_frames = opts.buffer_frames;
    bp_opts.verify_on_read = opts.verify_on_read;
    pool = std::make_unique<BufferPool>(bp_opts, data.get(), log.get());
    locks = std::make_unique<LockManager>();
    txns = std::make_unique<TxnManager>(log.get(), locks.get());
    alloc = std::make_unique<PageAllocator>(opts.num_pages, opts.reserved_pages);

    FormatMetaPage();

    BTreeOptions bt_opts;
    bt_opts.verify_traversals = opts.verify_traversals;
    tree = std::make_unique<BTree>(bt_opts, pool.get(), log.get(), txns.get(),
                                   alloc.get(), /*meta_pid=*/0);
    SPF_CHECK_OK(tree->Create());
  }

  /// Formats page 0 as the meta page, directly on the device (the db
  /// facade logs this; tests don't need to).
  void FormatMetaPage() {
    PageBuffer buf(opts_.page_size);
    PageView page = buf.view();
    page.Format(0, PageType::kMeta);
    MetaView meta(page);
    DbMetaData* m = meta.mutable_meta();
    m->magic = kDbMetaMagic;
    m->root_pid = kInvalidPageId;
    m->num_pages = opts_.num_pages;
    m->reserved_pages = opts_.reserved_pages;
    page.UpdateChecksum();
    SPF_CHECK_OK(data->WritePage(0, buf.data()));
  }

  /// Convenience: run `fn(txn)` in a committed user transaction.
  template <typename Fn>
  Status WithTxn(Fn&& fn) {
    std::shared_ptr<Transaction> txn = txns->Begin();
    Status s = fn(txn.get());
    if (!s.ok()) {
      txns->BeginAbort(txn.get());
      txns->FinishAbort(txn.get());  // NOTE: without undo; use only in tests
      return s;
    }
    return txns->Commit(txn.get());
  }

  EnvOptions opts_;
  SimClock clock;
  std::unique_ptr<SimDevice> data;
  std::unique_ptr<SimLogDevice> wal;
  std::unique_ptr<LogManager> log;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<LockManager> locks;
  std::unique_ptr<TxnManager> txns;
  std::unique_ptr<PageAllocator> alloc;
  std::unique_ptr<BTree> tree;
};

/// Reserves a loopback TCP port race-free: binds 127.0.0.1:0, listens,
/// and recovers the kernel's port choice. Hand the listening socket to a
/// server via ServerOptions::listen_fd (release()) so the port can never
/// be lost to another process between "pick a port" and "bind it" — the
/// classic ephemeral-port race in network tests.
class LoopbackListener {
 public:
  LoopbackListener() {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return;
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // the kernel picks a free ephemeral port
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(fd_, 64) != 0) {
      close(fd_);
      fd_ = -1;
      return;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port_ = ntohs(addr.sin_port);
    }
  }
  ~LoopbackListener() {
    if (fd_ >= 0) close(fd_);
  }

  LoopbackListener(const LoopbackListener&) = delete;
  LoopbackListener& operator=(const LoopbackListener&) = delete;

  /// True when the socket bound and listens.
  bool ok() const { return fd_ >= 0 && port_ != 0; }
  /// The reserved port (valid while the socket is held or adopted).
  uint16_t port() const { return port_; }
  /// Transfers socket ownership to the caller (ServerOptions::listen_fd).
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace testenv
}  // namespace spf
