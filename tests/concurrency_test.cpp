// Concurrency smoke tests: multiple threads running transactions through
// the full stack (latches, locks, log, buffer pool) with fault injection
// in the background. These verify thread-safety of the assembled system,
// not throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "db/database.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 4096;
  o.buffer_frames = 512;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

TEST(ConcurrencyTest, ParallelDisjointWriters) {
  auto db = std::move(Database::Create(FastOptions())).value();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 800;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Txn txn = db->BeginTxn();
        Status s = txn.Insert(Key(t * 1000000 + i),
                              "thread-" + std::to_string(t));
        if (s.ok()) {
          s = txn.Commit();
        } else {
          txn.Abort();
        }
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  uint64_t count = 0;
  ASSERT_TRUE(db->Scan("", "", [&count](std::string_view, std::string_view) {
    count++;
    return true;
  }).ok());
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads * kPerThread));
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(ConcurrencyTest, ContendedKeysSerializeOrTimeout) {
  auto db = std::move(Database::Create(FastOptions())).value();
  {
    Txn t = db->BeginTxn();
    for (int i = 0; i < 50; ++i) {
      SPF_CHECK_OK(t.Insert(Key(i), "0"));
    }
    SPF_CHECK_OK(t.Commit());
  }
  constexpr int kThreads = 4;
  std::atomic<int> committed{0}, deadlocks{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &committed, &deadlocks, t] {
      Random rng(t + 1);
      for (int i = 0; i < 150; ++i) {
        Txn txn = db->BeginTxn();
        Status s = txn.Update(Key(static_cast<int>(rng.Uniform(50))),
                              "t" + std::to_string(t));
        if (s.ok()) {
          SPF_CHECK_OK(txn.Commit());
          committed.fetch_add(1);
        } else {
          SPF_CHECK(s.IsDeadlock()) << s.ToString();
          deadlocks.fetch_add(1);
          SPF_CHECK_OK(txn.Abort());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every attempt either committed or was cleanly timed out; nothing hung
  // or corrupted.
  EXPECT_EQ(committed.load() + deadlocks.load(), kThreads * 150);
  EXPECT_GT(committed.load(), 0);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(ConcurrencyTest, ReadersWritersAndRepairsInterleave) {
  auto db = std::move(Database::Create(FastOptions())).value();
  {
    Txn t = db->BeginTxn();
    for (int i = 0; i < 3000; ++i) SPF_CHECK_OK(t.Insert(Key(i), "v"));
    SPF_CHECK_OK(t.Commit());
  }
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  std::thread corruptor([&db, &stop] {
    Random rng(99);
    while (!stop.load()) {
      int key = static_cast<int>(rng.Uniform(3000));
      auto leaf = db->LeafPageOf(Key(key));
      if (leaf.ok()) {
        // Corrupt only pages whose current image is clean on the device
        // and not currently pinned by a reader.
        if (!db->pool()->IsDirty(*leaf) && db->pool()->DiscardPage(*leaf)) {
          db->data_device()->InjectSilentCorruption(*leaf, rng.Next());
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&db, &read_errors, t] {
      Random rng(t + 7);
      for (int i = 0; i < 2000; ++i) {
        auto v = db->Get(Key(static_cast<int>(rng.Uniform(3000))));
        if (!v.ok()) read_errors.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  corruptor.join();

  // Every read succeeded despite continuous corruption underneath.
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_GT(db->single_page_recovery()->stats().repairs_succeeded, 0u);
  // Heal everything remaining and verify.
  db->pool()->DiscardAll();
  ASSERT_TRUE(db->Scrub().ok());
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

}  // namespace
}  // namespace spf
