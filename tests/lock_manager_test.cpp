// Unit tests for the lock manager: modes, re-entrancy, upgrades, waits,
// timeouts (transaction-failure path), release semantics.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "txn/lock_manager.h"

namespace spf {
namespace {

using namespace std::chrono_literals;

TEST(LockManagerTest, ExclusiveBlocksExclusive) {
  LockManager lm(50ms);
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive).IsDeadlock());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, SharedCompatibleWithShared) {
  LockManager lm(50ms);
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(3, "k", LockMode::kExclusive).IsDeadlock());
}

TEST(LockManagerTest, ReentrantAcquisition) {
  LockManager lm(50ms);
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared).ok());  // weaker: no-op
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm(50ms);
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared).IsDeadlock());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm(50ms);
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).IsDeadlock());
  EXPECT_EQ(lm.timeouts(), 1u);
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm(2000ms);
  ASSERT_TRUE(lm.Lock(1, "k", LockMode::kExclusive).ok());
  std::thread waiter([&lm] {
    EXPECT_TRUE(lm.Lock(2, "k", LockMode::kExclusive).ok());
  });
  std::this_thread::sleep_for(30ms);
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, UnlockSingleKey) {
  LockManager lm(50ms);
  lm.Lock(1, "a", LockMode::kExclusive);
  lm.Lock(1, "b", LockMode::kExclusive);
  lm.Unlock(1, "a");
  EXPECT_FALSE(lm.Holds(1, "a", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(1, "b", LockMode::kExclusive));
  EXPECT_TRUE(lm.Lock(2, "a", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, IsLockedReflectsHolders) {
  LockManager lm(50ms);
  EXPECT_FALSE(lm.IsLocked("k"));
  lm.Lock(1, "k", LockMode::kShared);
  EXPECT_TRUE(lm.IsLocked("k"));
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.IsLocked("k"));
}

TEST(LockManagerTest, HoldsModeSemantics) {
  LockManager lm(50ms);
  lm.Lock(1, "k", LockMode::kShared);
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_FALSE(lm.Holds(1, "k", LockMode::kExclusive));
  EXPECT_FALSE(lm.Holds(2, "k", LockMode::kShared));
}

}  // namespace
}  // namespace spf
