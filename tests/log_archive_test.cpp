// Tests for the sorted log archive (log/log_archive.h): crash-mid-run
// durability (the archive is always a prefix-valid set of runs and
// re-archiving is idempotent), the merge ladder's run-count bound and
// log-tiling invariant, repair equivalence (an archive-merge repair is
// byte-identical to the tail-only chain-walk repair), and the
// archive-truncation watermark handed to the LogManager.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "db/database.h"
#include "log/log_archive.h"
#include "log/log_source.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  // Small runs + small fan-in so a unit-test-sized workload exercises
  // multiple level-0 cuts and the merge ladder.
  o.archive_run_bytes = 4 * 1024;
  o.archive_merge_fanin = 3;
  return o;
}

void Load(Database* db, int lo, int hi, const char* tag = "v") {
  for (int i = lo; i < hi; ++i) {
    Txn t = db->BeginTxn();
    ASSERT_TRUE(t.Put(Key(i), std::string(200, 'a') + tag).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
}

// Every run list published by the archiver tiles the archived log
// interval [first_lsn, archived_upto) contiguously — even across merges.
void ExpectTiling(const std::vector<ArchiveRunInfo>& runs, Lsn first_lsn,
                  Lsn archived_upto) {
  ASSERT_FALSE(runs.empty());
  EXPECT_EQ(runs.front().log_start, first_lsn);
  for (size_t i = 0; i + 1 < runs.size(); ++i) {
    EXPECT_EQ(runs[i].log_end, runs[i + 1].log_start) << "gap after run " << i;
  }
  EXPECT_EQ(runs.back().log_end, archived_upto);
}

TEST(LogArchiveTest, CrashMidRunWriteLeavesPrefixValidArchive) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Load(db.get(), 0, 150);

  LogArchiver* ar = db->archiver();
  // Archive part of the history.
  ASSERT_TRUE(ar->ArchiveTick().ok());
  ASSERT_TRUE(ar->ArchiveTick().ok());
  const Lsn published = ar->archived_upto();
  const size_t runs_published = ar->runs().size();
  ASSERT_GT(published, 0u);
  ASSERT_GT(runs_published, 0u);

  // Crash mid-run-write: the data and header pages of the next run reach
  // the device but the directory publish never happens.
  Load(db.get(), 150, 250);
  ar->FailNextPublishForTest();
  auto crashed = ar->ArchiveTick();
  EXPECT_FALSE(crashed.ok());
  EXPECT_TRUE(crashed.status().IsIOError()) << crashed.status().ToString();
  EXPECT_EQ(ar->archived_upto(), published);
  EXPECT_EQ(ar->runs().size(), runs_published);

  // Recovery from the volume alone: the previous directory is intact, so
  // the orphaned extent is invisible and the archive is exactly the
  // published prefix.
  ArchiverOptions opts;
  opts.run_bytes = FastOptions().archive_run_bytes;
  opts.merge_fanin = FastOptions().archive_merge_fanin;
  LogArchiver recovered(db->archive_device(), db->log(), opts);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.archived_upto(), published);
  EXPECT_EQ(recovered.runs().size(), runs_published);

  // Idempotent re-archive: the next drain restarts from the published
  // watermark, re-covers the interval the crashed run spanned, and the
  // final run list tiles the whole durable log.
  ASSERT_TRUE(recovered.ArchiveAll().ok());
  EXPECT_EQ(recovered.archived_upto(), db->log()->durable_lsn());
  ExpectTiling(recovered.runs(), db->log()->first_lsn(),
               recovered.archived_upto());
}

TEST(LogArchiveTest, ArchiveRepairByteIdenticalToTailOnlyRepair) {
  DatabaseOptions o = FastOptions();
  // No per-page copies: the chain anchors at the full backup, giving a
  // long archived history to replay.
  o.backup_policy.updates_threshold = 0;
  auto db = std::move(Database::Create(o)).value();

  Load(db.get(), 0, 100);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  for (int round = 0; round < 20; ++round) {
    Txn t = db->BeginTxn();
    ASSERT_TRUE(t.Put(Key(7), "round" + std::to_string(round)).ok());
    ASSERT_TRUE(t.Commit().ok());
    if (round % 5 == 4) {
      ASSERT_TRUE(db->FlushAll().ok());
    }
  }
  ASSERT_TRUE(db->FlushAll().ok());

  auto leaf = db->LeafPageOf(Key(7));
  ASSERT_TRUE(leaf.ok());
  const PageId p = *leaf;
  const uint32_t page_size = db->options().page_size;
  std::vector<char> ref(page_size);
  db->data_device()->RawRead(p, ref.data());

  SinglePageRecovery* spr = db->single_page_recovery();

  // Baseline: tail-only chain walk (one random log read per record).
  spr->SetLogSource(nullptr);
  ASSERT_TRUE(db->pool()->DiscardPage(p));
  db->data_device()->InjectSilentCorruption(p);
  std::vector<char> tail_repaired(page_size);
  ASSERT_TRUE(spr->RepairPage(p, tail_repaired.data()).ok());
  EXPECT_EQ(std::memcmp(tail_repaired.data(), ref.data(), page_size), 0);

  // Archive everything, then repair the same page through the sorted
  // runs: positioned sequential archive reads replace the chain walk and
  // the result must be byte-identical.
  ASSERT_TRUE(db->archiver()->ArchiveAll().ok());
  ASSERT_GT(db->archiver()->archived_upto(), 0u);
  ArchiveLogSource archive_source(db->archiver(), db->log());
  spr->SetLogSource(&archive_source);
  const uint64_t archive_reads_before = spr->stats().archive_reads;

  ASSERT_TRUE(db->pool()->DiscardPage(p));
  db->data_device()->InjectSilentCorruption(p);
  std::vector<char> archive_repaired(page_size);
  ASSERT_TRUE(spr->RepairPage(p, archive_repaired.data()).ok());

  EXPECT_GT(spr->stats().archive_reads, archive_reads_before)
      << "repair did not touch the archive";
  EXPECT_EQ(std::memcmp(archive_repaired.data(), ref.data(), page_size), 0);
  EXPECT_EQ(std::memcmp(archive_repaired.data(), tail_repaired.data(),
                        page_size),
            0);
  spr->SetLogSource(nullptr);  // archive_source dies with this scope
}

TEST(LogArchiveTest, MergeLadderBoundsRunCountAndKeepsTiling) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Load(db.get(), 0, 400);
  LogArchiver* ar = db->archiver();
  ASSERT_TRUE(ar->ArchiveAll().ok());

  ArchiveStats stats = ar->stats();
  EXPECT_GT(stats.runs_written, FastOptions().archive_merge_fanin)
      << "workload too small to exercise the ladder";
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GE(stats.runs_merged, 2 * stats.merges);

  // Post-quiescence no level holds a full fan-in of runs, so the run
  // count stays logarithmic in the number of level-0 cuts.
  std::map<uint32_t, size_t> per_level;
  for (const ArchiveRunInfo& r : ar->runs()) per_level[r.level]++;
  for (const auto& [level, count] : per_level) {
    EXPECT_LT(count, FastOptions().archive_merge_fanin) << "level " << level;
  }
  ExpectTiling(ar->runs(), db->log()->first_lsn(), ar->archived_upto());

  // Every archived record streams out per-page ascending, and the totals
  // match the run headers.
  uint64_t streamed = 0;
  std::map<PageId, Lsn> last_seen;
  auto fetched = ar->FetchRange(0, kInvalidPageId - 1, 0,
                                [&](LogRecord&& rec) {
                                  auto it = last_seen.find(rec.page_id);
                                  if (it != last_seen.end()) {
                                    EXPECT_GT(rec.lsn, it->second);
                                  }
                                  last_seen[rec.page_id] = rec.lsn;
                                  streamed++;
                                });
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(streamed, stats.records_archived);
}

TEST(LogArchiveTest, TruncationWatermarkNeedsArchiveAndCheckpoint) {
  auto db = std::move(Database::Create(FastOptions())).value();
  Load(db.get(), 0, 100);

  // Archived but the master record still points at the bootstrap
  // checkpoint: the watermark is capped by the checkpoint.
  ASSERT_TRUE(db->archiver()->ArchiveAll().ok());
  const Lsn w1 = db->log()->truncation_watermark();
  EXPECT_EQ(w1, std::min(db->archiver()->archived_upto(),
                         db->log()->GetMasterRecord()));

  // Checkpoint, more traffic, re-archive: the watermark advances but
  // never beyond either bound.
  ASSERT_TRUE(db->Checkpoint().ok());
  Load(db.get(), 100, 150);
  ASSERT_TRUE(db->archiver()->ArchiveAll().ok());
  const Lsn w2 = db->log()->truncation_watermark();
  EXPECT_GT(w2, w1);
  EXPECT_LE(w2, db->archiver()->archived_upto());
  EXPECT_LE(w2, db->log()->GetMasterRecord());

  // Counters surface through the versioned snapshot.
  StatsSnapshot snap = db->Stats();
  EXPECT_EQ(snap.version, StatsSnapshot::kVersion);
  EXPECT_GT(snap.archive.runs_written, 0u);
  EXPECT_GT(snap.archive.archived_bytes, 0u);
  EXPECT_GT(snap.archive.truncated_log_bytes, 0u);
  EXPECT_EQ(snap.archive.archived_upto, db->archiver()->archived_upto());
}

}  // namespace
}  // namespace spf
