// Tests for the v2 client API: the move-only RAII Txn handle (auto-abort
// on destruction, shared control blocks instead of zombie retention),
// atomic WriteBatch application (one facade bracket, savepoint rollback
// on mid-batch failure, transparent single-page repair), transactional
// Scan with the same lock story as point reads, and the retry-aware
// TxnError taxonomy.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "db/database.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.lock_timeout = std::chrono::milliseconds(30);
  return o;
}

std::unique_ptr<Database> MakeDb(DatabaseOptions options = FastOptions()) {
  auto db = Database::Create(std::move(options));
  SPF_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// --- RAII lifetime ---------------------------------------------------------------

TEST(TxnHandleTest, DroppingUncommittedHandleAbortsAndReleasesLocks) {
  auto db = MakeDb();
  {
    Txn t = db->BeginTxn();
    ASSERT_TRUE(t.Insert("k", "uncommitted").ok());
    EXPECT_TRUE(t.active());
    // No Commit: the handle goes out of scope here.
  }
  // The insert was rolled back...
  EXPECT_TRUE(db->Get("k").status().IsNotFound());
  EXPECT_EQ(db->txns()->stats().user_aborted, 1u);
  EXPECT_EQ(db->txns()->active_count(), 0u);
  // ...and the exclusive lock released: a new transaction takes the key
  // immediately (a leaked lock would time out as Deadlock).
  Txn t2 = db->BeginTxn();
  EXPECT_TRUE(t2.Insert("k", "committed").ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_EQ(*db->Get("k"), "committed");
}

TEST(TxnHandleTest, MoveTransfersOwnership) {
  auto db = MakeDb();
  Txn a = db->BeginTxn();
  ASSERT_TRUE(a.Insert("k", "v").ok());
  TxnId id = a.id();

  Txn b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested on purpose
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.id(), id);
  EXPECT_TRUE(b.Commit().ok());
  EXPECT_EQ(*db->Get("k"), "v");

  // Move-assign over an ACTIVE handle auto-aborts the overwritten one.
  Txn c = db->BeginTxn();
  ASSERT_TRUE(c.Insert("gone", "x").ok());
  c = db->BeginTxn();
  EXPECT_TRUE(db->Get("gone").status().IsNotFound());
  EXPECT_TRUE(c.Commit().ok());
}

TEST(TxnHandleTest, FinishedHandleRejectsFurtherOperations) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Put("k", "v").ok());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_FALSE(t.active());
  EXPECT_TRUE(t.valid());

  TxnError err = t.Put("k2", "v2");
  EXPECT_EQ(err.kind(), TxnError::Kind::kUser);
  EXPECT_FALSE(err.retryable());
  EXPECT_TRUE(err.status().IsFailedPrecondition());
  EXPECT_EQ(t.Commit().kind(), TxnError::Kind::kUser);
  EXPECT_TRUE(db->Get("k2").status().IsNotFound());

  // An empty handle behaves the same way.
  Txn empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.Put("x", "y").kind(), TxnError::Kind::kUser);
}

TEST(TxnHandleTest, ExplicitAbortRollsBackAndFinishes) {
  auto db = MakeDb();
  {
    Txn setup = db->BeginTxn();
    ASSERT_TRUE(setup.Insert("k", "orig").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update("k", "changed").ok());
  EXPECT_TRUE(t.Abort().ok());
  EXPECT_FALSE(t.active());
  EXPECT_EQ(*db->Get("k"), "orig");
  // The destructor must not double-abort (user_aborted stays 1).
  EXPECT_EQ(db->txns()->stats().user_aborted, 1u);
}

// --- error taxonomy --------------------------------------------------------------

TEST(TxnErrorTest, UserErrorsAreNotRetryable) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  TxnError nf = TxnError::Classify(t.Get("missing").status(), false, true);
  EXPECT_EQ(nf.kind(), TxnError::Kind::kUser);
  EXPECT_FALSE(nf.retryable());
  EXPECT_EQ(t.last_error().kind(), TxnError::Kind::kUser);

  ASSERT_TRUE(t.Insert("k", "v").ok());
  EXPECT_TRUE(t.last_error().ok());
  TxnError dup = t.Insert("k", "again");
  EXPECT_EQ(dup.kind(), TxnError::Kind::kUser);
  EXPECT_TRUE(dup.status().IsFailedPrecondition());
  EXPECT_TRUE(t.Commit().ok());
}

TEST(TxnErrorTest, LockConflictIsTransientAndRetryable) {
  auto db = MakeDb();
  {
    Txn setup = db->BeginTxn();
    ASSERT_TRUE(setup.Insert("contested", "v").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn holder = db->BeginTxn();
  ASSERT_TRUE(holder.Update("contested", "held").ok());

  Txn waiter = db->BeginTxn();
  TxnError err = waiter.Update("contested", "mine");
  EXPECT_EQ(err.kind(), TxnError::Kind::kTransient);
  EXPECT_TRUE(err.retryable());
  EXPECT_TRUE(err.status().IsDeadlock());

  // The taxonomy's promise: after the conflict clears, the retry wins.
  ASSERT_TRUE(holder.Commit().ok());
  EXPECT_TRUE(waiter.Update("contested", "mine").ok());
  EXPECT_TRUE(waiter.Commit().ok());
  EXPECT_EQ(*db->Get("contested"), "mine");
}

TEST(TxnErrorTest, ClassifyDistinguishesStorageAndFatal) {
  // Pure classification logic, no database needed.
  EXPECT_EQ(TxnError::Classify(Status::OK(), false, true).kind(),
            TxnError::Kind::kNone);
  // A single-page-failure candidate is transient when repair is wired
  // (the funnel heals it), terminal when it is not.
  EXPECT_TRUE(TxnError::Classify(Status::Corruption("x"), false, true)
                  .retryable());
  EXPECT_EQ(TxnError::Classify(Status::Corruption("x"), false, false).kind(),
            TxnError::Kind::kStorage);
  EXPECT_EQ(TxnError::Classify(Status::ReadFailure("x"), false, false).kind(),
            TxnError::Kind::kStorage);
  EXPECT_EQ(TxnError::Classify(Status::MediaFailure("x"), false, true).kind(),
            TxnError::Kind::kFatal);
  // kAborted means kDoomed only with the doomed-handle context bit.
  EXPECT_EQ(TxnError::Classify(Status::Aborted("x"), true, true).kind(),
            TxnError::Kind::kDoomed);
  EXPECT_EQ(TxnError::Classify(Status::Aborted("x"), false, true).kind(),
            TxnError::Kind::kUser);
}

// --- crash semantics -------------------------------------------------------------

TEST(TxnHandleTest, CrashDoomsOutstandingHandles) {
  auto db = MakeDb();
  Txn loser = db->BeginTxn();
  ASSERT_TRUE(loser.Insert("loser-key", "x").ok());
  db->log()->ForceAll();

  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());

  // Restart undo rolled the loser back; the stale handle reports kDoomed
  // from live memory instead of dangling.
  EXPECT_TRUE(db->Get("loser-key").status().IsNotFound());
  EXPECT_TRUE(loser.doomed());
  TxnError err = loser.Put("more", "data");
  EXPECT_EQ(err.kind(), TxnError::Kind::kDoomed);
  EXPECT_FALSE(err.retryable());
  // A fresh transaction works; destroying the stale handle is safe (the
  // crash pre-claimed its rollback, so the destructor must not undo
  // anything against the restarted tree).
  Txn fresh = db->BeginTxn();
  EXPECT_TRUE(fresh.Put("post-crash", "ok").ok());
  EXPECT_TRUE(fresh.Commit().ok());
}

// --- WriteBatch ------------------------------------------------------------------

TEST(WriteBatchTest, AppliesAtomicallyAndCommits) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  WriteBatch batch;
  for (int i = 0; i < 100; ++i) batch.Put(Key(i), "b-" + std::to_string(i));
  EXPECT_EQ(batch.size(), 100u);
  ASSERT_TRUE(t.Apply(std::move(batch)).ok());
  ASSERT_TRUE(t.Commit().ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*db->Get(Key(i)), "b-" + std::to_string(i));
  }
}

TEST(WriteBatchTest, MidBatchFailureRollsBackTheBatchOnly) {
  auto db = MakeDb();
  {
    Txn setup = db->BeginTxn();
    ASSERT_TRUE(setup.Insert("existing", "old").ok());
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn t = db->BeginTxn();
  // A point operation BEFORE the batch must survive the batch's failure.
  ASSERT_TRUE(t.Put("point-op", "kept").ok());

  WriteBatch bad;
  bad.Put("batch-a", "1");
  bad.Update("existing", "new");
  bad.Insert("existing", "dup");  // fails: FailedPrecondition
  bad.Put("batch-b", "2");        // never reached
  TxnError err = t.Apply(std::move(bad));
  EXPECT_EQ(err.kind(), TxnError::Kind::kUser);
  EXPECT_TRUE(err.status().IsFailedPrecondition());

  // All-or-nothing: nothing of the batch survived, the transaction is
  // still active, and the pre-batch operation is intact.
  EXPECT_TRUE(t.active());
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_TRUE(db->Get("batch-a").status().IsNotFound());
  EXPECT_TRUE(db->Get("batch-b").status().IsNotFound());
  EXPECT_EQ(*db->Get("existing"), "old");
  EXPECT_EQ(*db->Get("point-op"), "kept");
}

TEST(WriteBatchTest, EmptyBatchIsANoOp) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  EXPECT_TRUE(t.Apply(WriteBatch()).ok());
  EXPECT_TRUE(t.Commit().ok());
}

TEST(WriteBatchTest, AtomicAcrossMidBatchPageFailure) {
  // A page failure under a mid-batch operation is repaired by the
  // self-healing read path transparently: the batch succeeds, the caller
  // never sees the failure (the paper's "short delay suffices" claim,
  // through the v2 API).
  DatabaseOptions options = FastOptions();
  auto db = MakeDb(options);
  {
    Txn setup = db->BeginTxn();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(setup.Insert(Key(i), "seed-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  ASSERT_TRUE(db->TakeFullBackup().status().ok());

  // Corrupt the leaf under a key in the MIDDLE of the batch, with the
  // pool cold so the batch's update faults on the damaged device image.
  ASSERT_TRUE(db->FlushAll().ok());
  PageId victim = *db->LeafPageOf(Key(250));
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(victim);

  uint64_t repairs_before = db->single_page_recovery()->stats().repairs_succeeded;
  Txn t = db->BeginTxn();
  WriteBatch batch;
  for (int i = 200; i < 300; ++i) batch.Update(Key(i), "post-failure");
  ASSERT_TRUE(t.Apply(std::move(batch)).ok()) << t.last_error().ToString();
  ASSERT_TRUE(t.Commit().ok());

  EXPECT_GT(db->single_page_recovery()->stats().repairs_succeeded,
            repairs_before);
  for (int i = 200; i < 300; ++i) EXPECT_EQ(*db->Get(Key(i)), "post-failure");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(WriteBatchTest, RandomizedSavepointRollbackProperty) {
  // Seeded property test of the batch savepoint contract: a batch either
  // applies ALL its ops or NONE of them, and a failed batch leaves the
  // enclosing transaction fully usable. A shadow map tracks what the
  // engine must contain; poisoned batches (a deliberately invalid op at a
  // random position) must leave the shadow state untouched, and rounds
  // that corrupt a page under the batch must succeed transparently via
  // single-page repair.
  auto db = MakeDb();
  std::mt19937_64 rng(20260808);
  std::map<std::string, std::string> shadow;
  {
    Txn setup = db->BeginTxn();
    for (int i = 0; i < 150; ++i) {
      std::string v = "seed-" + std::to_string(i);
      ASSERT_TRUE(setup.Insert(Key(i), v).ok());
      shadow[Key(i)] = v;
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  ASSERT_TRUE(db->TakeFullBackup().status().ok());

  int poisoned_rounds = 0;
  const uint64_t repairs_before =
      db->single_page_recovery()->stats().repairs_succeeded;
  for (int round = 0; round < 120; ++round) {
    if (round % 17 == 5) {
      // Latent corruption under a key this round's batch may touch.
      ASSERT_TRUE(db->FlushAll().ok());
      auto leaf = db->LeafPageOf(Key(static_cast<int>(rng() % 150)));
      ASSERT_TRUE(leaf.ok());
      db->pool()->DiscardAll();
      db->data_device()->InjectSilentCorruption(*leaf);
    }

    // Build a batch that is valid against `overlay` (the shadow plus this
    // batch's earlier ops — in-batch effects are visible to later ops).
    std::map<std::string, std::string> overlay = shadow;
    const size_t n_ops = 1 + rng() % 12;
    const bool poison = rng() % 4 == 0;
    const size_t poison_at = rng() % n_ops;
    WriteBatch batch;
    for (size_t j = 0; j < n_ops; ++j) {
      std::string key = Key(static_cast<int>(rng() % 240));
      std::string val = "r" + std::to_string(round) + "-" + std::to_string(j);
      if (poison && j == poison_at) {
        // An op that must fail at this position: Insert over a present
        // key, or Delete of an absent one.
        if (overlay.count(key)) {
          batch.Insert(key, val);
        } else {
          batch.Delete(key);
        }
        continue;  // ops after the poison are never reached; any mix is fine
      }
      const bool present = overlay.count(key) != 0;
      switch (rng() % 3) {
        case 0:
          batch.Put(key, val);
          overlay[key] = val;
          break;
        case 1:
          if (present) {
            batch.Delete(key);
            overlay.erase(key);
          } else {
            batch.Insert(key, val);
            overlay[key] = val;
          }
          break;
        default:
          if (present) {
            batch.Update(key, val);
            overlay[key] = val;
          } else {
            batch.Put(key, val);
            overlay[key] = val;
          }
          break;
      }
    }

    Txn t = db->BeginTxn();
    // A point op before the batch must survive the batch's failure.
    std::string marker = "marker-" + std::to_string(round);
    ASSERT_TRUE(t.Put(marker, "kept").ok());
    TxnError err = t.Apply(std::move(batch));
    if (poison) {
      poisoned_rounds++;
      EXPECT_EQ(err.kind(), TxnError::Kind::kUser) << err.ToString();
    } else {
      ASSERT_TRUE(err.ok()) << err.ToString();
      shadow = overlay;
    }
    ASSERT_TRUE(t.Commit().ok());
    shadow[marker] = "kept";

    // Spot-check a few keys against the shadow every round.
    for (int probe = 0; probe < 3; ++probe) {
      std::string key = Key(static_cast<int>(rng() % 240));
      auto it = shadow.find(key);
      auto got = db->Get(key);
      if (it == shadow.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(*got, it->second) << key;
      }
    }
  }
  EXPECT_GT(poisoned_rounds, 10);
  EXPECT_GT(db->single_page_recovery()->stats().repairs_succeeded,
            repairs_before);

  // Full sweep: the engine holds exactly the shadow state.
  for (const auto& [key, val] : shadow) EXPECT_EQ(*db->Get(key), val);
  for (int i = 0; i < 240; ++i) {
    if (!shadow.count(Key(i))) {
      EXPECT_TRUE(db->Get(Key(i)).status().IsNotFound());
    }
  }
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// --- transactional Scan ----------------------------------------------------------

TEST(TxnScanTest, ScanLocksDeliveredKeysUntilCommit) {
  auto db = MakeDb();
  {
    Txn setup = db->BeginTxn();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(setup.Insert(Key(i), "v").ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }

  Txn scanner = db->BeginTxn();
  int seen = 0;
  ASSERT_TRUE(scanner.Scan("", "", [&](std::string_view, std::string_view) {
    seen++;
    return true;
  }).ok());
  EXPECT_EQ(seen, 10);

  // The scan's shared locks are held to commit: a writer conflicts...
  Txn writer = db->BeginTxn();
  TxnError err = writer.Update(Key(5), "stomp");
  EXPECT_EQ(err.kind(), TxnError::Kind::kTransient);
  EXPECT_TRUE(err.retryable());
  // ...and a second reader does not (shared locks are compatible).
  Txn reader = db->BeginTxn();
  EXPECT_TRUE(reader.Get(Key(5)).ok());
  EXPECT_TRUE(reader.Commit().ok());

  ASSERT_TRUE(scanner.Commit().ok());
  EXPECT_TRUE(writer.Update(Key(5), "stomp").ok());
  EXPECT_TRUE(writer.Commit().ok());
  EXPECT_EQ(*db->Get(Key(5)), "stomp");
}

TEST(TxnScanTest, ScanRespectsRangeAndEarlyStop) {
  auto db = MakeDb();
  {
    Txn setup = db->BeginTxn();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(setup.Insert(Key(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  Txn t = db->BeginTxn();
  std::vector<std::string> keys;
  ASSERT_TRUE(t.Scan(Key(5), Key(15), [&](std::string_view k, std::string_view) {
    keys.push_back(std::string(k));
    return keys.size() < 5;
  }).ok());
  ASSERT_EQ(keys.size(), 5u);
  EXPECT_EQ(keys.front(), Key(5));
  EXPECT_EQ(keys.back(), Key(9));
  EXPECT_TRUE(t.Commit().ok());

  // The unlocked variant still exists for analytics-style reads.
  int unlocked = 0;
  ASSERT_TRUE(db->Scan("", "", [&](std::string_view, std::string_view) {
    unlocked++;
    return true;
  }).ok());
  EXPECT_EQ(unlocked, 20);
}

// --- doomed handles under a restore (v2 surface) ---------------------------------

TEST(TxnHandleTest, DroppedDoomedHandleRunsDeferredRollback) {
  // A straggler whose in-flight operation outlives the restore's bounded
  // rollback wait gets its compensation deferred to the owner. If the
  // owner never issues another call and simply DROPS the handle, the
  // destructor is the owner's last act — it must run the deferred
  // rollback.
  DatabaseOptions options = FastOptions();
  options.restore_drain_timeout = std::chrono::milliseconds(50);
  options.backup_policy.updates_threshold = 0;
  auto db = MakeDb(options);
  {
    Txn setup = db->BeginTxn();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(setup.Insert(Key(i), "seed").ok());
    }
    ASSERT_TRUE(setup.Commit().ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  ASSERT_TRUE(db->TakeFullBackup().status().ok());

  {
    Txn straggler = db->BeginTxn();
    ASSERT_TRUE(straggler.Insert("in-flight", "x").ok());
    db->log()->ForceAll();
    straggler.handle()->BeginOp();  // op that outlives the drain deadline

    db->data_device()->FailDevice();
    auto stats = db->RecoverMedia();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->phases.doomed, 1u);
    EXPECT_EQ(stats->phases.deferred_rollbacks, 1u);
    // The replayed update is still there, pending owner-side rollback.
    EXPECT_EQ(*db->Get("in-flight"), "x");

    straggler.handle()->EndOp();
    // No further facade call: the handle just goes out of scope.
  }
  EXPECT_TRUE(db->Get("in-flight").status().IsNotFound());
  EXPECT_EQ(db->txns()->active_count(), 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

}  // namespace
}  // namespace spf
