// Integration tests for the Foster B-tree over the full storage stack:
// CRUD, splits and foster chains, adoption, root growth, scans, locking,
// continuous verification, and a randomized property test against a
// reference map.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "test_env.h"

namespace spf {
namespace {

using testenv::EnvOptions;
using testenv::TestEnv;

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

class BTreeTest : public ::testing::Test {
 protected:
  TestEnv env_;
};

TEST_F(BTreeTest, EmptyTreeGetReturnsNotFound) {
  EXPECT_TRUE(env_.tree->Get(nullptr, "missing").status().IsNotFound());
  auto count = env_.tree->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST_F(BTreeTest, InsertAndGet) {
  ASSERT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Insert(t, "hello", "world");
  }).ok());
  auto v = env_.tree->Get(nullptr, "hello");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "world");
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v1"); });
  Status s = env_.WithTxn(
      [&](Transaction* t) { return env_.tree->Insert(t, "k", "v2"); });
  EXPECT_TRUE(s.IsFailedPrecondition());
  EXPECT_EQ(*env_.tree->Get(nullptr, "k"), "v1");
}

TEST_F(BTreeTest, UpdateExisting) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v1"); });
  ASSERT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Update(t, "k", "v2");
  }).ok());
  EXPECT_EQ(*env_.tree->Get(nullptr, "k"), "v2");
}

TEST_F(BTreeTest, UpdateMissingFails) {
  Status s = env_.WithTxn(
      [&](Transaction* t) { return env_.tree->Update(t, "nope", "v"); });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(BTreeTest, DeleteMakesGhost) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v"); });
  ASSERT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Delete(t, "k");
  }).ok());
  EXPECT_TRUE(env_.tree->Get(nullptr, "k").status().IsNotFound());
  // Deleting again fails.
  Status s = env_.WithTxn(
      [&](Transaction* t) { return env_.tree->Delete(t, "k"); });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(BTreeTest, InsertRevivesGhost) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v1"); });
  env_.WithTxn([&](Transaction* t) { return env_.tree->Delete(t, "k"); });
  ASSERT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Insert(t, "k", "v2");
  }).ok());
  EXPECT_EQ(*env_.tree->Get(nullptr, "k"), "v2");
}

TEST_F(BTreeTest, EmptyKeyRejected) {
  Status s = env_.WithTxn(
      [&](Transaction* t) { return env_.tree->Insert(t, "", "v"); });
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(BTreeTest, OversizedKeyValueRejected) {
  std::string big_key(kMaxKeyLen + 1, 'k');
  std::string big_val(kMaxValueLen + 1, 'v');
  EXPECT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Insert(t, big_key, "v");
  }).IsInvalidArgument());
  EXPECT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Insert(t, "k", big_val);
  }).IsInvalidArgument());
}

TEST_F(BTreeTest, ManyInsertsForceSplitsAndGrowth) {
  const int kN = 5000;
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), "value-" + std::to_string(i)).ok())
        << i;
  }
  ASSERT_TRUE(env_.txns->Commit(t).ok());

  BTreeStats stats = env_.tree->stats();
  EXPECT_GT(stats.splits, 10u);
  EXPECT_GT(stats.root_growths, 0u);
  EXPECT_GT(stats.adoptions, 0u);

  auto height = env_.tree->Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2u);

  for (int i = 0; i < kN; i += 97) {
    auto v = env_.tree->Get(nullptr, Key(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
  auto count = env_.tree->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(kN));

  uint64_t checked = 0;
  ASSERT_TRUE(env_.tree->VerifyAll(&checked).ok());
  EXPECT_GT(checked, 20u);  // ~200 records per 8 KiB leaf
}

TEST_F(BTreeTest, ReverseOrderInsertsWork) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 2000; i > 0; --i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), "v").ok()) << i;
  }
  ASSERT_TRUE(env_.txns->Commit(t).ok());
  ASSERT_TRUE(env_.tree->VerifyAll(nullptr).ok());
  EXPECT_EQ(*env_.tree->Count(), 2000u);
}

TEST_F(BTreeTest, RandomOrderInsertsWork) {
  Random rng(7);
  std::set<int> keys;
  Transaction* t = env_.txns->Begin().get();
  while (keys.size() < 3000) {
    int i = static_cast<int>(rng.Uniform(1000000));
    if (!keys.insert(i).second) continue;
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(env_.txns->Commit(t).ok());
  ASSERT_TRUE(env_.tree->VerifyAll(nullptr).ok());
  EXPECT_EQ(*env_.tree->Count(), 3000u);
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), std::to_string(i)).ok());
  }
  env_.txns->Commit(t);

  std::vector<std::string> seen;
  ASSERT_TRUE(env_.tree->Scan(Key(100), Key(200),
                              [&](std::string_view k, std::string_view v) {
                                seen.emplace_back(k);
                                EXPECT_EQ(v, seen.size() == 1
                                                 ? "100"
                                                 : std::to_string(
                                                       100 + seen.size() - 1));
                                return true;
                              }).ok());
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen.front(), Key(100));
  EXPECT_EQ(seen.back(), Key(199));
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_F(BTreeTest, ScanSkipsGhosts) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), "v").ok());
  }
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(env_.tree->Delete(t, Key(i)).ok());
  }
  env_.txns->Commit(t);
  uint64_t n = 0;
  env_.tree->Scan("", "", [&](std::string_view k, std::string_view) {
    EXPECT_EQ((std::stoi(std::string(k.substr(3))) % 2), 1);
    n++;
    return true;
  });
  EXPECT_EQ(n, 10u);
}

TEST_F(BTreeTest, ScanEarlyTermination) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 50; ++i) env_.tree->Insert(t, Key(i), "v");
  env_.txns->Commit(t);
  int n = 0;
  env_.tree->Scan("", "", [&](std::string_view, std::string_view) {
    return ++n < 5;
  });
  EXPECT_EQ(n, 5);
}

TEST_F(BTreeTest, LocksConflictAcrossTransactions) {
  Transaction* t1 = env_.txns->Begin().get();
  ASSERT_TRUE(env_.tree->Insert(t1, "contended", "v1").ok());
  // t2 cannot write the same key while t1 holds the X lock.
  Transaction* t2 = env_.txns->Begin().get();
  Status s = env_.tree->Update(t2, "contended", "v2");
  EXPECT_TRUE(s.IsDeadlock()) << s.ToString();
  env_.txns->BeginAbort(t2);
  env_.txns->FinishAbort(t2);
  ASSERT_TRUE(env_.txns->Commit(t1).ok());
  // After commit the lock is free.
  ASSERT_TRUE(env_.WithTxn([&](Transaction* t) {
    return env_.tree->Update(t, "contended", "v2");
  }).ok());
}

TEST_F(BTreeTest, SharedLocksCompatible) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v"); });
  Transaction* t1 = env_.txns->Begin().get();
  Transaction* t2 = env_.txns->Begin().get();
  EXPECT_TRUE(env_.tree->Get(t1, "k").ok());
  EXPECT_TRUE(env_.tree->Get(t2, "k").ok());
  env_.txns->Commit(t1);
  env_.txns->Commit(t2);
}

TEST_F(BTreeTest, GhostsLockedByActiveTxnNotReclaimed) {
  // Fill a leaf, delete a key but keep the txn active, then force splits:
  // reclamation must skip the locked ghost.
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), std::string(100, 'v')).ok());
  }
  env_.txns->Commit(t);

  Transaction* deleter = env_.txns->Begin().get();
  ASSERT_TRUE(env_.tree->Delete(deleter, Key(10)).ok());

  Transaction* filler = env_.txns->Begin().get();
  for (int i = 1000; i < 1100; ++i) {
    ASSERT_TRUE(env_.tree->Insert(filler, Key(i), std::string(100, 'v')).ok());
  }
  env_.txns->Commit(filler);
  // The ghost for Key(10) must still exist somewhere (not reclaimed):
  // reviving it through the deleter's insert still works.
  ASSERT_TRUE(env_.tree->Insert(deleter, Key(10), "revived").ok());
  env_.txns->Commit(deleter);
  EXPECT_EQ(*env_.tree->Get(nullptr, Key(10)), "revived");
}

TEST_F(BTreeTest, TraversalVerificationCountsWork) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 2000; ++i) env_.tree->Insert(t, Key(i), "v");
  env_.txns->Commit(t);
  BTreeStats before = env_.tree->stats();
  EXPECT_GT(before.traversal_verifications, 0u);
  env_.tree->Get(nullptr, Key(42));
  BTreeStats after = env_.tree->stats();
  EXPECT_GT(after.traversal_verifications, before.traversal_verifications);
  EXPECT_EQ(after.verification_failures, 0u);
}

TEST_F(BTreeTest, TraversalDetectsDoctoredChildFence) {
  // Section 4.2: corrupting a fence is caught on the very next traversal.
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 2000; ++i) env_.tree->Insert(t, Key(i), "v");
  env_.txns->Commit(t);
  SPF_CHECK_OK(env_.pool->FlushAll());

  // Find a leaf and doctor its low fence ON THE DEVICE, bypassing checks;
  // recompute the checksum so only the cross-page check can catch it.
  PageId victim = kInvalidPageId;
  {
    auto g = env_.pool->FixPage(*env_.tree->root_pid(), LatchMode::kShared);
    BTreeNode root(g->view());
    SPF_CHECK(!root.is_leaf());
    victim = root.ChildAt(1);
  }
  env_.pool->DiscardPage(victim);
  PageBuffer buf(kDefaultPageSize);
  env_.data->RawRead(victim, buf.data());
  PageView page = buf.view();
  // Scribble inside the fence area (after the node header).
  buf.data()[kFenceAreaOffset + 2] ^= 0xff;
  page.UpdateChecksum();
  env_.data->RawWrite(victim, buf.data());

  // A lookup that routes through the victim must detect the inconsistency.
  bool saw_corruption = false;
  for (int i = 0; i < 2000; i += 50) {
    auto v = env_.tree->Get(nullptr, Key(i));
    if (!v.ok() && (v.status().IsCorruption() || v.status().IsMediaFailure())) {
      saw_corruption = true;
      break;
    }
  }
  EXPECT_TRUE(saw_corruption);
  EXPECT_GT(env_.tree->stats().verification_failures, 0u);
}

TEST_F(BTreeTest, VerifyAllDetectsDoctoredPointer) {
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 3000; ++i) env_.tree->Insert(t, Key(i), "v");
  env_.txns->Commit(t);
  ASSERT_TRUE(env_.tree->VerifyAll(nullptr).ok());

  // Swap two children in the root: every fence still looks locally sane,
  // but edges disagree.
  {
    auto g = env_.pool->FixPage(*env_.tree->root_pid(), LatchMode::kExclusive);
    BTreeNode root(g->view());
    SPF_CHECK(!root.is_leaf());
    SPF_CHECK_GE(root.slot_count(), 2u);
    PageId c0 = root.ChildAt(0), c1 = root.ChildAt(1);
    root.ReplaceChild(0, c1);
    root.ReplaceChild(1, c0);
    g->MarkDirty();  // keep the pool consistent; no logging (test doctoring)
  }
  EXPECT_TRUE(env_.tree->VerifyAll(nullptr).IsCorruption());
}

TEST_F(BTreeTest, UndoRecordCompensatesInsert) {
  Transaction* t = env_.txns->Begin().get();
  ASSERT_TRUE(env_.tree->Insert(t, "k", "v").ok());
  // Roll back manually: read the insert record via the txn chain.
  auto rec = env_.log->Read(t->last_lsn());
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->type, LogRecordType::kBTreeInsert);
  ASSERT_TRUE(env_.tree->UndoRecord(t, *rec).ok());
  env_.txns->BeginAbort(t);
  env_.txns->FinishAbort(t);
  EXPECT_TRUE(env_.tree->Get(nullptr, "k").status().IsNotFound());
}

TEST_F(BTreeTest, UndoRecordCompensatesDeleteAndUpdate) {
  env_.WithTxn([&](Transaction* t) { return env_.tree->Insert(t, "k", "v1"); });

  Transaction* t = env_.txns->Begin().get();
  ASSERT_TRUE(env_.tree->Update(t, "k", "v2").ok());
  auto upd = env_.log->Read(t->last_lsn());
  ASSERT_TRUE(env_.tree->Delete(t, "k").ok());
  auto del = env_.log->Read(t->last_lsn());

  // Undo in reverse order.
  ASSERT_TRUE(env_.tree->UndoRecord(t, *del).ok());
  EXPECT_EQ(*env_.tree->Get(nullptr, "k"), "v2");
  ASSERT_TRUE(env_.tree->UndoRecord(t, *upd).ok());
  EXPECT_EQ(*env_.tree->Get(nullptr, "k"), "v1");
  env_.txns->BeginAbort(t);
  env_.txns->FinishAbort(t);
}

TEST_F(BTreeTest, PerPageChainReachesEveryUpdate) {
  // Figure 6: the per-page chain anchored at the PageLSN enumerates all
  // updates of that page, newest first.
  Transaction* t = env_.txns->Begin().get();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(env_.tree->Insert(t, Key(i), "v").ok());
  }
  env_.txns->Commit(t);

  PageId leaf;
  Lsn page_lsn;
  {
    auto g = env_.pool->FixPage(*env_.tree->root_pid(), LatchMode::kShared);
    BTreeNode root(g->view());
    if (root.is_leaf()) {
      leaf = root.page_id();
      page_lsn = g->view().page_lsn();
    } else {
      leaf = root.ChildAt(0);
      auto lg = env_.pool->FixPage(leaf, LatchMode::kShared);
      page_lsn = lg->view().page_lsn();
    }
  }
  int chain_len = 0;
  Lsn cur = page_lsn;
  while (cur != kInvalidLsn) {
    auto rec = env_.log->Read(cur);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->page_id, leaf);
    cur = rec->page_prev_lsn;
    chain_len++;
    ASSERT_LT(chain_len, 100);
  }
  EXPECT_GE(chain_len, 10);  // 10 inserts + format
}

TEST_F(BTreeTest, RootGrowthKeepsDescentsCovered) {
  // Regression for a broken meta->root latch-coupling hop: DescendToLeaf
  // used to read root_pid() (releasing the meta latch) and only then fix
  // the root. GrowRoot could run in that window — it cuts the old root's
  // foster edge under its exclusive latch — so the descent landed on a
  // node that no longer covered its key and reported phantom
  // "descent reached node not covering key" corruption. Concurrent
  // writers hammering the tree through its root growths reproduce the
  // window reliably under TSan's scheduling; any Corruption status here
  // is the bug.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1500;
  std::vector<std::thread> threads;
  std::atomic<int> corruptions{0};
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([this, w, &corruptions] {
      for (int i = 0; i < kPerThread; ++i) {
        Transaction* t = env_.txns->Begin().get();
        Status s = env_.tree->Insert(t, Key(w * 1000000 + i), "v");
        if (s.IsCorruption()) {
          ADD_FAILURE() << "descent corruption: " << s.ToString();
          corruptions.fetch_add(1);
        }
        env_.txns->Commit(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corruptions.load(), 0);
  EXPECT_GT(env_.tree->stats().root_growths, 0u);
  ASSERT_TRUE(env_.tree->VerifyAll(nullptr).ok());
}

TEST(BTreePropertyTest, RandomWorkloadMatchesReference) {
  EnvOptions opts;
  opts.num_pages = 8192;
  TestEnv env(opts);
  std::map<std::string, std::string> ref;
  Random rng(99);

  Transaction* t = env.txns->Begin().get();
  for (int op = 0; op < 12000; ++op) {
    std::string key = Key(static_cast<int>(rng.Uniform(2500)));
    uint64_t action = rng.Uniform(10);
    bool exists = ref.count(key) > 0;
    if (action < 5) {  // insert
      std::string value = rng.NextString(rng.Uniform(60) + 1);
      Status s = env.tree->Insert(t, key, value);
      if (exists) {
        ASSERT_TRUE(s.IsFailedPrecondition()) << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        ref[key] = value;
      }
    } else if (action < 7) {  // update
      std::string value = rng.NextString(rng.Uniform(60) + 1);
      Status s = env.tree->Update(t, key, value);
      if (exists) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        ref[key] = value;
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (action < 9) {  // delete
      Status s = env.tree->Delete(t, key);
      if (exists) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        ref.erase(key);
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {  // point read
      auto v = env.tree->Get(t, key);
      if (exists) {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, ref[key]);
      } else {
        EXPECT_TRUE(v.status().IsNotFound());
      }
    }
  }
  ASSERT_TRUE(env.txns->Commit(t).ok());

  ASSERT_TRUE(env.tree->VerifyAll(nullptr).ok());
  // Full scan equals the reference.
  auto it = ref.begin();
  uint64_t seen = 0;
  ASSERT_TRUE(env.tree->Scan("", "", [&](std::string_view k, std::string_view v) {
    EXPECT_NE(it, ref.end());
    if (it == ref.end()) return false;
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, ref.size());
  EXPECT_EQ(it, ref.end());
}

}  // namespace
}  // namespace spf
