// Unit tests for the on-page layout and in-page verification (section 4.2
// in-page plausibility tests).

#include <gtest/gtest.h>

#include "storage/page.h"

namespace spf {
namespace {

TEST(PageTest, HeaderLayoutIsStable) {
  EXPECT_EQ(sizeof(PageHeader), 40u);
  EXPECT_EQ(kPageHeaderSize, 40u);
}

TEST(PageTest, FormatInitializesHeader) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(17, PageType::kBTreeLeaf);
  EXPECT_EQ(page.page_id(), 17u);
  EXPECT_EQ(page.page_lsn(), kInvalidLsn);
  EXPECT_EQ(page.type(), PageType::kBTreeLeaf);
  EXPECT_EQ(page.update_count(), 0u);
  EXPECT_EQ(page.header()->magic, kPageMagic);
}

TEST(PageTest, ChecksumRoundTrip) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(3, PageType::kRaw);
  buf.data()[1000] = 'x';
  page.UpdateChecksum();
  EXPECT_TRUE(page.VerifyChecksum().ok());
  EXPECT_TRUE(page.Verify(3).ok());
}

TEST(PageTest, DetectsBitFlip) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(3, PageType::kRaw);
  page.UpdateChecksum();
  buf.data()[5000] ^= 0x40;  // single bit flip in the body
  Status s = page.Verify(3);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_TRUE(s.IsSinglePageFailureCandidate());
}

TEST(PageTest, DetectsHeaderCorruption) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(3, PageType::kRaw);
  page.UpdateChecksum();
  page.header()->page_lsn = 999;  // header field corrupted after checksum
  EXPECT_TRUE(page.Verify(3).IsCorruption());
}

TEST(PageTest, DetectsMisdirectedRead) {
  // A valid page read under the wrong id: checksum passes, id check fires.
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(3, PageType::kRaw);
  page.UpdateChecksum();
  Status s = page.Verify(4);
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("misdirected"), std::string_view::npos);
}

TEST(PageTest, DetectsBadMagic) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(3, PageType::kRaw);
  page.UpdateChecksum();
  page.header()->magic = 0x12345678;
  EXPECT_TRUE(page.Verify(3).IsCorruption());
}

TEST(PageTest, UpdateCountTracksSinceBackup) {
  // Section 6: "the number of updates can be counted within the page,
  // incremented whenever the PageLSN changes."
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(9, PageType::kBTreeLeaf);
  page.bump_update_count();
  page.bump_update_count();
  EXPECT_EQ(page.update_count(), 2u);
  page.reset_update_count();
  EXPECT_EQ(page.update_count(), 0u);
}

TEST(PageTest, ZeroPageFailsVerification) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  EXPECT_TRUE(page.Verify(0).IsCorruption());  // never formatted
}

TEST(PageTest, SmallAndLargePageSizes) {
  for (uint32_t size : {512u, 4096u, 65536u}) {
    PageBuffer buf(size);
    PageView page = buf.view();
    page.Format(1, PageType::kRaw);
    buf.data()[size - 1] = 'q';
    page.UpdateChecksum();
    EXPECT_TRUE(page.Verify(1).ok()) << size;
    buf.data()[size - 1] = 'r';
    EXPECT_TRUE(page.Verify(1).IsCorruption()) << size;
  }
}

}  // namespace
}  // namespace spf
