// Tests for the rung-5 restore-gate protocol: a full media restore under
// live traffic — transactions in flight at failure time run to commit
// (no aborts), new transactions park at the admission gate and resume
// while the restore sweep is still running (early admission, on-demand
// segments), stragglers past the drain deadline take the fallback-abort
// branch with handles that stay valid, and restored pages come back
// byte-identical.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/sim_clock.h"
#include "db/database.h"
#include "recovery/restore_gate.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 0;  // full backup is the only source
  return o;
}

constexpr int kRecords = 3000;

std::unique_ptr<Database> MakeChainedDb(DatabaseOptions options,
                                        std::vector<PageId>* victims) {
  return bench::MakeChainedBurstDb(std::move(options), kRecords,
                                   /*burst=*/SIZE_MAX, victims,
                                   /*rounds=*/4, /*stride=*/150);
}

std::vector<std::string> SnapshotPages(Database* db,
                                       const std::vector<PageId>& pages) {
  std::vector<std::string> images;
  const uint32_t page_size = db->options().page_size;
  for (PageId p : pages) {
    std::string img(page_size, '\0');
    db->data_device()->RawRead(p, img.data());
    images.push_back(std::move(img));
  }
  return images;
}

/// First stride key whose leaf is `target`; empty if none.
std::string KeyOnLeaf(Database* db, PageId target) {
  for (int i = 0; i < kRecords; i += 150) {
    auto leaf = db->LeafPageOf(Key(i));
    if (leaf.ok() && *leaf == target) return Key(i);
  }
  return std::string();
}

template <typename Pred>
bool WaitFor(Pred pred, int sec = 30) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(sec);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// The headline scenario: a transaction in flight when the device dies
// commits during the drain, a transaction begun mid-restore is admitted
// early and commits before the sweep finishes, a transaction after the
// restore behaves normally — and nothing was aborted.
TEST(RestoreGateTest, LiveTrafficCommitsThroughFullRestore) {
  DatabaseOptions options = FastOptions();
  // Tiny segments so the B-tree (pages ~6..25) spans several of them —
  // a mid-restore fault then genuinely waits for an unrestored segment.
  options.restore_segment_pages = 4;
  options.restore_drain_timeout = std::chrono::milliseconds(10000);
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  ASSERT_NE(db->restore_gate(), nullptr);
  ASSERT_GE(victims.size(), 2u);

  // key_a lives on the first victim leaf; key_b on the last (highest page
  // id — the segment the sequential sweep reaches last, so a fault on it
  // during the restore exercises on-demand service).
  std::string key_a = KeyOnLeaf(db.get(), victims.front());
  std::string key_b = KeyOnLeaf(db.get(), victims.back());
  ASSERT_FALSE(key_a.empty());
  ASSERT_FALSE(key_b.empty());

  std::vector<std::string> before = SnapshotPages(db.get(), victims);

  // Transaction A: in flight at failure time, working set cached.
  Txn a = db->BeginTxn();
  ASSERT_TRUE(a.Update(key_a, "live-a").ok());

  db->data_device()->FailDevice();

  // Widen the restore window so the during-restore transaction has wall
  // time to run: throttle the first segments; once B has had its chance
  // the rest of the sweep runs free. The observer also tracks the
  // published watermark, which must only ever move forward.
  std::atomic<bool> restore_running{false};
  std::atomic<bool> watermark_monotonic{true};
  std::atomic<PageId> last_watermark{0};
  db->restore_gate()->SetObserver([&](uint64_t done, uint64_t) {
    restore_running.store(true);
    PageId w = db->restore_gate()->watermark();
    if (w < last_watermark.load()) watermark_monotonic.store(false);
    last_watermark.store(w);
    if (done < 32) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });

  StatusOr<MediaRecoveryStats> result = Status::Internal("restore not run");
  std::atomic<bool> restore_done{false};
  std::thread restorer([&] {
    result = db->RecoverMedia();
    restore_done.store(true);
  });

  // A commits during the drain phase — the restore waits for it.
  ASSERT_TRUE(WaitFor([&] { return db->txns()->gate_closed(); }));
  EXPECT_TRUE(a.Commit().ok());

  // Transaction B: begun during the restore, admitted early; its reads
  // fault on pages the sweep has not reached and come back on demand.
  ASSERT_TRUE(WaitFor([&] { return restore_running.load(); }));
  Txn b = db->BeginTxn();
  auto vb = b.Get(key_b);
  ASSERT_TRUE(vb.ok()) << vb.status().ToString();
  EXPECT_EQ(*vb, "r3");  // MakeChainedBurstDb's last round
  ASSERT_TRUE(b.Update(key_b, "live-b").ok());
  EXPECT_TRUE(b.Commit().ok());
  bool committed_mid_restore = !restore_done.load();

  restorer.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Transaction C: after the restore, business as usual.
  Txn c = db->BeginTxn();
  ASSERT_TRUE(c.Update(key_a, "post-restore").ok());
  EXPECT_TRUE(c.Commit().ok());

  // Nothing was aborted: A drained, B was admitted early, C is ordinary.
  EXPECT_EQ(result->phases.doomed, 0u);
  EXPECT_GE(result->phases.drained, 1u);
  EXPECT_EQ(db->txns()->stats().user_aborted, 0u);
  EXPECT_EQ(db->txns()->stats().doomed, 0u);
  EXPECT_EQ(result->pages_restored, options.num_pages);
  EXPECT_TRUE(committed_mid_restore)
      << "B only committed after the sweep finished; widen the observer "
         "delay if this host is very slow";
  if (committed_mid_restore) {
    EXPECT_GE(result->phases.admission_waits, 1u);
    EXPECT_GE(result->on_demand_segments, 1u);
    EXPECT_GE(result->phases.first_admission_sim_s, 0.0);
  }

  // Byte identity: every page no live transaction touched matches its
  // pre-failure image (A/B/C wrote key_a's and key_b's leaves).
  std::vector<std::string> after = SnapshotPages(db.get(), victims);
  for (size_t i = 0; i < victims.size(); ++i) {
    if (victims[i] == victims.front() || victims[i] == victims.back()) continue;
    EXPECT_EQ(before[i], after[i])
        << "page " << victims[i] << " not byte-identical after the restore";
  }

  // Progress publication: the watermark only moved forward and ended at
  // the device size; every page reads as restored once the sweep is over.
  EXPECT_TRUE(watermark_monotonic.load());
  EXPECT_EQ(db->restore_gate()->watermark(), options.num_pages);
  EXPECT_TRUE(db->restore_gate()->IsRestored(victims.back()));
  // Nothing is parked in the funnel, so no frame stayed pinned.
  EXPECT_EQ(db->pool()->PinnedFrames(), 0u);

  // And the committed live traffic is durable and consistent.
  EXPECT_EQ(*db->Get(key_a), "post-restore");
  EXPECT_EQ(*db->Get(key_b), "live-b");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A straggler past the drain deadline takes the fallback-abort branch:
// its updates are compensated, its handle stays valid but only ever
// returns Aborted, and the rest of the database is intact.
TEST(RestoreGateTest, DrainDeadlineDoomsStragglers) {
  DatabaseOptions options = FastOptions();
  options.restore_drain_timeout = std::chrono::milliseconds(50);
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);

  Txn straggler = db->BeginTxn();
  ASSERT_TRUE(straggler.Insert("in-flight", "x").ok());
  db->log()->ForceAll();  // durable, but never committed

  db->data_device()->FailDevice();
  auto stats = db->RecoverMedia();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->phases.doomed, 1u);
  EXPECT_EQ(stats->phases.drained, 0u);
  EXPECT_GE(stats->phases.drain_wall_ms, 40.0);

  // The straggler's replayed update was compensated.
  EXPECT_TRUE(db->Get("in-flight").status().IsNotFound());
  // The doomed handle is safe and classified: every operation reports
  // the forced abort as kDoomed (dead handle, database healing — begin a
  // fresh transaction), never as a retryable error.
  TxnError commit_err = straggler.Commit();
  EXPECT_EQ(commit_err.kind(), TxnError::Kind::kDoomed);
  EXPECT_FALSE(commit_err.retryable());
  EXPECT_TRUE(commit_err.status().IsAborted());
  EXPECT_EQ(straggler.Update("y", "z").kind(), TxnError::Kind::kDoomed);
  EXPECT_TRUE(straggler.Get(Key(0)).status().IsAborted());
  EXPECT_EQ(straggler.last_error().kind(), TxnError::Kind::kDoomed);
  EXPECT_FALSE(straggler.active());
  EXPECT_TRUE(straggler.doomed());
  EXPECT_EQ(db->txns()->active_count(), 0u);
  EXPECT_EQ(db->txns()->stats().doomed, 1u);

  EXPECT_EQ(*db->Get(Key(0)), "r3");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());

  // Shared-state teardown replaces the old zombie-retention scheme: the
  // engine retired the transaction during the restore, so the handle
  // holds the LAST reference; dropping it frees the object immediately
  // (ASan owns the leak check), and the next restores owe it nothing.
  straggler = Txn();
  db->data_device()->FailDevice();
  ASSERT_TRUE(db->RecoverMedia().ok());
  db->data_device()->FailDevice();
  ASSERT_TRUE(db->RecoverMedia().ok());
  EXPECT_EQ(db->txns()->active_count(), 0u);
}

// restore_early_admission=false: the admission gate stays closed for the
// whole restore — a transaction begun mid-restore parks until the sweep
// completes, and nothing ever waits on the per-page admission check.
TEST(RestoreGateTest, EarlyAdmissionOffParksUntilRestoreCompletes) {
  DatabaseOptions options = FastOptions();
  options.restore_early_admission = false;
  options.restore_segment_pages = 64;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  std::string key = KeyOnLeaf(db.get(), victims.front());
  ASSERT_FALSE(key.empty());

  std::atomic<bool> restore_running{false};
  db->restore_gate()->SetObserver([&](uint64_t, uint64_t) {
    restore_running.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });

  db->data_device()->FailDevice();
  StatusOr<MediaRecoveryStats> result = Status::Internal("restore not run");
  std::atomic<bool> restore_done{false};
  std::thread restorer([&] {
    result = db->RecoverMedia();
    restore_done.store(true);
  });

  ASSERT_TRUE(WaitFor([&] { return restore_running.load(); }));
  std::atomic<bool> b_committed{false};
  std::thread parked([&] {
    Txn b = db->BeginTxn();  // parks at the closed gate
    auto v = b.Get(key);
    if (v.ok()) (void)b.Commit();
    b_committed.store(true);
  });

  // While the sweep runs, the parked transaction cannot have begun.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(restore_done.load() || !b_committed.load());

  restorer.join();
  parked.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(b_committed.load());
  EXPECT_FALSE(result->phases.early_admission);
  EXPECT_EQ(result->phases.admission_waits, 0u);
  EXPECT_GE(db->txns()->stats().gate_parked, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A straggler whose in-flight operation is still executing when the
// restore's bounded rollback wait expires is NOT rolled back
// concurrently with that operation: the compensation defers to the
// owner's thread, which runs it as soon as the operation drains out of
// the facade. The op-in-flight state is pinned with the transaction's
// own facade bracket (Transaction::BeginOp/EndOp — exactly what
// Database's TxnOpGuard uses), which keeps busy() true across the whole
// restore deterministically.
TEST(RestoreGateTest, BusyStragglerRollbackDefersToOwnerThread) {
  DatabaseOptions options = FastOptions();
  options.restore_drain_timeout = std::chrono::milliseconds(50);
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);

  Txn straggler = db->BeginTxn();
  ASSERT_TRUE(straggler.Insert("in-flight", "x").ok());
  db->log()->ForceAll();  // durable, but never committed
  straggler.handle()->BeginOp();  // an operation outliving every deadline

  db->data_device()->FailDevice();
  auto stats = db->RecoverMedia();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->phases.doomed, 1u);
  EXPECT_EQ(stats->phases.deferred_rollbacks, 1u);
  EXPECT_EQ(db->funnel()->totals().deferred_rollbacks, 1u);

  // The restore completed its protocol without racing the busy op: the
  // straggler's replayed update is still on the restored device (its
  // locks are still held), pending the owner-side compensation.
  EXPECT_EQ(*db->Get("in-flight"), "x");
  EXPECT_EQ(db->txns()->active_count(), 1u);

  // The op drains; the owner's next facade call runs the deferred
  // rollback before reporting the forced abort.
  straggler.handle()->EndOp();
  EXPECT_EQ(straggler.Commit().kind(), TxnError::Kind::kDoomed);
  EXPECT_TRUE(db->Get("in-flight").status().IsNotFound());
  EXPECT_EQ(db->txns()->active_count(), 0u);
  EXPECT_EQ(*db->Get(Key(0)), "r3");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// Admission is sealed from the replay-plan scan until a page's segment
// is restored: the check parks even though no restore sweep has begun —
// this covers both the exclusive cache hit that would otherwise log an
// update the plan never saw, and the buffer fault that would load a
// stale pre-failure image from the revived device. During the earlier
// gate/drain phases (protocol active, nothing sealed) admission is
// free. The parked fault demands its segment, which jumps the sweep
// queue.
TEST(RestoreGateTest, AdmissionSealedUntilSegmentRestored) {
  SimClock clock;
  RestoreGate gate(&clock);
  gate.BeginProtocol();
  ASSERT_TRUE(gate.active());
  // Drain window: in-flight transactions still run on their cached
  // working sets unthrottled.
  EXPECT_TRUE(gate.AwaitRestored(5).ok());

  gate.SealAdmission();
  std::atomic<bool> admitted{false};
  std::thread fault([&] {
    Status s = gate.AwaitRestored(5);
    EXPECT_TRUE(s.ok()) << s.ToString();
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(admitted.load());

  // The sweep starts: still parked — segment 1 (page 5, 4-page segments)
  // is not restored yet — but now registered as demanded.
  gate.BeginRestore(/*num_pages=*/64, /*segment_pages=*/4);
  ASSERT_TRUE(WaitFor([&] { return gate.admission_waits() >= 1; }));
  EXPECT_FALSE(admitted.load());

  uint64_t seg = 0;
  bool on_demand = false;
  ASSERT_TRUE(gate.ClaimNextSegment(&seg, &on_demand));
  EXPECT_EQ(seg, 1u);  // the demanded segment jumps the queue
  EXPECT_TRUE(on_demand);
  gate.MarkSegmentRestored(seg);
  fault.join();
  EXPECT_TRUE(admitted.load());
  // Once restored, further admissions on the segment are free.
  EXPECT_TRUE(gate.AwaitRestored(5).ok());

  while (gate.ClaimNextSegment(&seg, &on_demand)) gate.MarkSegmentRestored(seg);
  gate.EndRestore(Status::OK());
  gate.EndProtocol();
  EXPECT_FALSE(gate.active());
}

// Back-to-back restores with different segment geometries: a waiter from
// the first restore whose wake-up races the second BeginRestore must
// re-evaluate against the new geometry (epoch check) instead of indexing
// the first restore's (larger) segment state.
TEST(RestoreGateTest, WaiterSurvivesBackToBackRestores) {
  SimClock clock;
  RestoreGate gate(&clock);
  for (int round = 0; round < 50; ++round) {
    gate.BeginRestore(/*num_pages=*/1024, /*segment_pages=*/1);
    std::thread waiter([&] {
      // Parks on segment 1000 of the first restore; wakes somewhere
      // across EndRestore → BeginRestore. Either outcome is legal —
      // the old restore's "ended before the page was recovered" error
      // or admission against the new 2-segment geometry (page 1000 is
      // beyond it) — but indexing freed/shrunk state is not, which
      // ASan/TSan runs of this loop would catch.
      Status s = gate.AwaitRestored(1000);
      EXPECT_TRUE(s.ok() || s.IsMediaFailure()) << s.ToString();
    });
    while (gate.admission_waits() < 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    gate.EndRestore(Status::OK());
    gate.BeginRestore(/*num_pages=*/8, /*segment_pages=*/4);
    waiter.join();
    uint64_t seg = 0;
    bool on_demand = false;
    while (gate.ClaimNextSegment(&seg, &on_demand)) {
      gate.MarkSegmentRestored(seg);
    }
    gate.EndRestore(Status::OK());
  }
}

// A funnel-driven rung-5 climb records the protocol's per-phase totals
// on the RecoveryCoordinator.
TEST(RestoreGateTest, FunnelExposesRestorePhaseTotals) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  RecoveryCoordinator* funnel = db->funnel();
  ASSERT_NE(funnel, nullptr);

  db->log()->ForceAll();
  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  Status healed =
      funnel->ReportAndWait(victims.front(), FailureOrigin::kExplicit);
  ASSERT_TRUE(healed.ok()) << healed.ToString();

  FunnelTotals totals = funnel->totals();
  EXPECT_EQ(totals.gated_restores, 1u);
  EXPECT_EQ(totals.escalated_full, 1u);
  EXPECT_EQ(totals.txns_doomed, 0u);
  EXPECT_EQ(totals.failed, 0u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// The background scrubber pauses while a restore owns the device instead
// of flooding the funnel with reports on half-restored pages.
TEST(RestoreGateTest, ScrubberSkipsTicksDuringRestore) {
  DatabaseOptions options = FastOptions();
  options.scrub_wall_interval = std::chrono::milliseconds(1);
  options.scrub_pages_per_tick = 64;
  options.restore_segment_pages = 64;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);

  db->restore_gate()->SetObserver([&](uint64_t, uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  db->scrubber()->Start();
  ASSERT_TRUE(WaitFor([&] { return db->scrubber()->totals().ticks >= 1; }));

  db->data_device()->FailDevice();
  ASSERT_TRUE(db->RecoverMedia().ok());
  ASSERT_TRUE(
      WaitFor([&] { return db->scrubber()->totals().restore_skips >= 1; }));
  db->scrubber()->Stop();

  EXPECT_GE(db->scrubber()->totals().restore_skips, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// A synchronous SweepAll issued while a full restore is running does not
// race the half-restored device (which would flood the funnel with moot
// reports): it waits the protocol out, then sweeps the restored device
// clean — counted as a restore_wait, unlike the background ticks' skips.
TEST(RestoreGateTest, SyncSweepWaitsOutActiveRestore) {
  DatabaseOptions options = FastOptions();
  options.restore_segment_pages = 64;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);

  std::atomic<bool> restore_running{false};
  db->restore_gate()->SetObserver([&](uint64_t, uint64_t) {
    restore_running.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });

  db->data_device()->FailDevice();
  StatusOr<MediaRecoveryStats> restore_result = Status::Internal("not run");
  std::thread restorer([&] { restore_result = db->RecoverMedia(); });
  ASSERT_TRUE(WaitFor([&] { return restore_running.load(); }));

  // Issued mid-restore: must block until the protocol ends, then find a
  // fully restored, failure-free device.
  auto sweep = db->Scrub();
  restorer.join();
  ASSERT_TRUE(restore_result.ok()) << restore_result.status().ToString();
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_EQ(sweep->failures_detected, 0u);
  EXPECT_GE(db->scrubber()->totals().restore_waits, 1u);
  EXPECT_FALSE(db->restore_gate()->active());
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

}  // namespace
}  // namespace spf
