// Unit tests for the page allocator and bad block list.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "storage/allocation.h"

namespace spf {
namespace {

TEST(PageAllocatorTest, ReservedPagesPreallocated) {
  PageAllocator alloc(100, 10);
  EXPECT_EQ(alloc.allocated_count(), 10u);
  for (PageId p = 0; p < 10; ++p) EXPECT_TRUE(alloc.IsAllocated(p));
  EXPECT_FALSE(alloc.IsAllocated(10));
}

TEST(PageAllocatorTest, AllocatesLowestFreeFirst) {
  PageAllocator alloc(100, 4);
  auto p = alloc.Allocate();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 4u);
}

TEST(PageAllocatorTest, FreeMakesReusable) {
  PageAllocator alloc(8, 1);
  std::set<PageId> got;
  for (int i = 0; i < 7; ++i) {
    auto p = alloc.Allocate();
    ASSERT_TRUE(p.ok());
    got.insert(*p);
  }
  EXPECT_EQ(got.size(), 7u);
  EXPECT_TRUE(alloc.Allocate().status().IsIOError());  // full
  alloc.Free(3);
  auto again = alloc.Allocate();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 3u);
}

TEST(PageAllocatorTest, MarkIdempotent) {
  PageAllocator alloc(16, 1);
  alloc.MarkAllocated(5);
  alloc.MarkAllocated(5);
  EXPECT_EQ(alloc.allocated_count(), 2u);
  alloc.MarkFree(5);
  alloc.MarkFree(5);
  EXPECT_EQ(alloc.allocated_count(), 1u);
}

TEST(PageAllocatorTest, SerializeRoundTrip) {
  PageAllocator alloc(333, 7);
  for (int i = 0; i < 50; ++i) SPF_CHECK(alloc.Allocate().ok());
  alloc.Free(20);
  alloc.Free(31);
  std::string image = alloc.Serialize();

  PageAllocator restored(333, 0);
  ASSERT_TRUE(restored.Deserialize(image).ok());
  EXPECT_EQ(restored.allocated_count(), alloc.allocated_count());
  for (PageId p = 0; p < 333; ++p) {
    EXPECT_EQ(restored.IsAllocated(p), alloc.IsAllocated(p)) << p;
  }
}

TEST(PageAllocatorTest, DeserializeRejectsWrongSize) {
  PageAllocator a(100, 1), b(200, 1);
  EXPECT_TRUE(b.Deserialize(a.Serialize()).IsCorruption());
  EXPECT_TRUE(b.Deserialize("garbage").IsCorruption());
}

TEST(PageAllocatorTest, ConcurrentAllocationsAreUnique) {
  PageAllocator alloc(10000, 1);
  std::vector<std::vector<PageId>> per_thread(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&alloc, &per_thread, t] {
      for (int i = 0; i < 1000; ++i) {
        auto p = alloc.Allocate();
        ASSERT_TRUE(p.ok());
        per_thread[t].push_back(*p);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<PageId> all;
  for (auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 8u * 1000u);
}

TEST(BadBlockListTest, AddContainsDedup) {
  BadBlockList bbl;
  EXPECT_FALSE(bbl.Contains(5));
  bbl.Add(5);
  bbl.Add(5);
  bbl.Add(9);
  EXPECT_TRUE(bbl.Contains(5));
  EXPECT_TRUE(bbl.Contains(9));
  EXPECT_EQ(bbl.size(), 2u);
}

TEST(BadBlockListTest, SerializeRoundTrip) {
  BadBlockList bbl;
  bbl.Add(1);
  bbl.Add(1000000);
  std::string image = bbl.Serialize();
  BadBlockList restored;
  ASSERT_TRUE(restored.Deserialize(image).ok());
  EXPECT_TRUE(restored.Contains(1));
  EXPECT_TRUE(restored.Contains(1000000));
  EXPECT_EQ(restored.size(), 2u);
}

TEST(BadBlockListTest, DeserializeRejectsGarbage) {
  BadBlockList bbl;
  EXPECT_TRUE(bbl.Deserialize("xy").IsCorruption());
}

}  // namespace
}  // namespace spf
