// End-to-end tests over the Database facade: the full single-page failure
// story (detect on read, repair online, transactions survive), PRI
// maintenance (Figures 6-11), crash restart (section 5.2.5 / Figure 12),
// media recovery, scrubbing, and offline checks.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "db/database.h"

namespace spf {
namespace {

std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 4096;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 50;
  return o;
}

std::unique_ptr<Database> MakeDb(DatabaseOptions o = FastOptions()) {
  auto db = Database::Create(o);
  SPF_CHECK(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

void Load(Database* db, int from, int to, const std::string& value = "v") {
  Txn t = db->BeginTxn();
  for (int i = from; i < to; ++i) {
    SPF_CHECK_OK(t.Insert(Key(i), value + "-" + std::to_string(i)));
  }
  SPF_CHECK_OK(t.Commit());
}

TEST(DatabaseTest, CreateRejectsTinyDevice) {
  DatabaseOptions o = FastOptions();
  o.num_pages = 100;
  EXPECT_TRUE(Database::Create(o).status().IsInvalidArgument());
}

TEST(DatabaseTest, BasicCrud) {
  auto db = MakeDb();
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Insert("a", "1").ok());
  ASSERT_TRUE(t.Put("a", "2").ok());   // upsert over existing
  ASSERT_TRUE(t.Put("b", "3").ok());   // upsert as insert
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_EQ(*db->Get("a"), "2");
  EXPECT_EQ(*db->Get("b"), "3");
}

TEST(DatabaseTest, AbortRollsBackAllUpdates) {
  auto db = MakeDb();
  Load(db.get(), 0, 10);
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Insert(Key(100), "new").ok());
  ASSERT_TRUE(t.Update(Key(5), "changed").ok());
  ASSERT_TRUE(t.Delete(Key(7)).ok());
  ASSERT_TRUE(t.Abort().ok());

  EXPECT_TRUE(db->Get(Key(100)).status().IsNotFound());
  EXPECT_EQ(*db->Get(Key(5)), "v-5");
  EXPECT_EQ(*db->Get(Key(7)), "v-7");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// --- the headline scenario: single-page failure repaired online -----------------

class SinglePageFailureTest : public ::testing::TestWithParam<int> {};

TEST_P(SinglePageFailureTest, DetectAndRepairWithoutAbort) {
  // Parameterized over fault kinds: 0 = silent corruption (checksum),
  // 1 = unrecoverable read error, 2 = stale version (PageLSN cross-check).
  auto db = MakeDb();
  Load(db.get(), 0, 2000);
  ASSERT_TRUE(db->Checkpoint().ok());

  auto leaf_or = db->LeafPageOf(Key(1000));
  ASSERT_TRUE(leaf_or.ok());
  PageId victim = *leaf_or;

  if (GetParam() == 2) {
    // Stale-version: capture the current image first, add updates, flush,
    // then revert the device to the captured (valid but old) image.
    db->data_device()->CapturePageVersion(victim);
  }
  // More committed updates so the per-page chain is non-trivial.
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(1000), "after-fault-value").ok());
  ASSERT_TRUE(t.Commit().ok());
  ASSERT_TRUE(db->FlushAll().ok());
  db->pool()->DiscardAll();  // force the next access to fault from device

  switch (GetParam()) {
    case 0:
      db->data_device()->InjectSilentCorruption(victim);
      break;
    case 1:
      db->data_device()->InjectReadError(victim, /*permanent=*/false);
      break;
    case 2:
      ASSERT_TRUE(db->data_device()->InjectStaleVersion(victim));
      break;
  }

  // The transaction reading through the failure is merely delayed — no
  // abort, correct data (section 5.2.7).
  Txn reader = db->BeginTxn();
  auto v = reader.Get(Key(1000));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "after-fault-value");
  ASSERT_TRUE(reader.Commit().ok());

  auto spr = db->single_page_recovery()->stats();
  EXPECT_EQ(spr.repairs_succeeded, 1u);
  EXPECT_EQ(spr.escalations, 0u);
  if (GetParam() == 2) {
    EXPECT_GE(db->cross_check()->mismatches(), 1u);
  }

  // The device copy was healed in place.
  db->pool()->DiscardAll();
  db->data_device()->ClearFault(victim);
  EXPECT_EQ(*db->Get(Key(1000)), "after-fault-value");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFaultKinds, SinglePageFailureTest,
                         ::testing::Values(0, 1, 2));

TEST(DatabaseTest, RepairUsesFormatRecordForYoungPages) {
  // A page that was formatted and written once but never backed up is
  // recovered from its formatting log record (section 5.2.1).
  DatabaseOptions o = FastOptions();
  o.backup_policy.updates_threshold = 0;  // no per-page backups
  auto db = MakeDb(o);
  Load(db.get(), 0, 50);
  ASSERT_TRUE(db->FlushAll().ok());
  auto leaf = db->LeafPageOf(Key(10));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(*leaf);

  EXPECT_EQ(*db->Get(Key(10)), "v-10");
  auto spr = db->single_page_recovery()->stats();
  EXPECT_EQ(spr.repairs_succeeded, 1u);
  EXPECT_EQ(spr.last_backup_kind, BackupKind::kFormatRecord);
}

TEST(DatabaseTest, RepairUsesFullBackup) {
  auto db = MakeDb();
  Load(db.get(), 0, 500);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  // A couple of updates after the backup.
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(42), "post-backup").ok());
  ASSERT_TRUE(t.Commit().ok());
  ASSERT_TRUE(db->FlushAll().ok());

  auto leaf = db->LeafPageOf(Key(42));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(*leaf);

  EXPECT_EQ(*db->Get(Key(42)), "post-backup");
  auto spr = db->single_page_recovery()->stats();
  EXPECT_EQ(spr.repairs_succeeded, 1u);
  EXPECT_EQ(spr.last_backup_kind, BackupKind::kFullBackup);
  EXPECT_GT(spr.log_records_applied, 0u);
}

TEST(DatabaseTest, RepairUsesPerPageBackupAfterThreshold) {
  DatabaseOptions o = FastOptions();
  o.backup_policy.updates_threshold = 10;
  auto db = MakeDb(o);
  Load(db.get(), 0, 100);
  // Hammer one key so its leaf crosses the backup threshold on write-back.
  for (int round = 0; round < 5; ++round) {
    Txn t = db->BeginTxn();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(t.Update(Key(50), "round-" + std::to_string(round)).ok());
    }
    ASSERT_TRUE(t.Commit().ok());
    ASSERT_TRUE(db->FlushAll().ok());
  }
  EXPECT_GT(db->pri_manager()->stats().page_backups_triggered, 0u);

  auto leaf = db->LeafPageOf(Key(50));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(*leaf);
  EXPECT_EQ(*db->Get(Key(50)), "round-4");
  EXPECT_EQ(db->single_page_recovery()->stats().last_backup_kind,
            BackupKind::kBackupPage);
}

TEST(DatabaseTest, WithoutRepairSupportFailureEscalates) {
  // Figure 1: without single-page recovery, a page failure escalates to a
  // media failure.
  DatabaseOptions o = FastOptions();
  o.enable_single_page_repair = false;
  auto db = MakeDb(o);
  Load(db.get(), 0, 500);
  ASSERT_TRUE(db->FlushAll().ok());
  auto leaf = db->LeafPageOf(Key(100));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(*leaf);

  auto v = db->Get(Key(100));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsMediaFailure()) << v.status().ToString();
}

TEST(DatabaseTest, MultiPageFailureAllRepaired) {
  auto db = MakeDb();
  Load(db.get(), 0, 3000);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  ASSERT_TRUE(db->FlushAll().ok());
  db->pool()->DiscardAll();

  // Corrupt many distinct leaves.
  std::set<PageId> victims;
  for (int i = 0; i < 3000; i += 100) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    victims.insert(*leaf);
  }
  db->pool()->DiscardAll();
  for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);

  for (int i = 0; i < 3000; i += 100) {
    auto v = db->Get(Key(i));
    ASSERT_TRUE(v.ok()) << i << ": " << v.status().ToString();
  }
  EXPECT_GE(db->single_page_recovery()->stats().repairs_succeeded,
            victims.size());
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// --- PRI maintenance (Figures 6, 9, 11) -------------------------------------------

TEST(DatabaseTest, PriEntryLagsWhileBufferedAndExactAfterWriteBack) {
  auto db = MakeDb();
  Load(db.get(), 0, 10);
  auto leaf = db->LeafPageOf(Key(5));
  ASSERT_TRUE(leaf.ok());

  // Update while buffered: the PRI's information is allowed to lag
  // (Figure 6 dashed line).
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(5), "x").ok());
  ASSERT_TRUE(t.Commit().ok());
  Lsn buffered_lsn;
  {
    auto g = db->pool()->FixPage(*leaf, LatchMode::kShared);
    ASSERT_TRUE(g.ok());
    buffered_lsn = g->view().page_lsn();
  }
  auto entry_before = db->pri()->Lookup(*leaf);
  if (entry_before.ok()) {
    EXPECT_NE(entry_before->last_lsn, buffered_lsn) << "PRI must lag";
  }

  // After write-back the PRI is exact (Figure 9).
  ASSERT_TRUE(db->FlushAll().ok());
  auto entry_after = db->pri()->Lookup(*leaf);
  ASSERT_TRUE(entry_after.ok());
  EXPECT_EQ(entry_after->last_lsn, buffered_lsn);
}

TEST(DatabaseTest, PriUpdateRecordsFollowWrites) {
  auto db = MakeDb();
  uint64_t pri_before =
      db->log()->stats().per_type.count(LogRecordType::kPriUpdate)
          ? db->log()->stats().per_type.at(LogRecordType::kPriUpdate)
          : 0;
  uint64_t wb_before = db->pool()->stats().write_backs;
  Load(db.get(), 0, 200);
  ASSERT_TRUE(db->FlushAll().ok());
  uint64_t pri_after = db->log()->stats().per_type.at(LogRecordType::kPriUpdate);
  uint64_t wb_after = db->pool()->stats().write_backs;
  EXPECT_GT(pri_after, pri_before);
  // Exactly one PriUpdate per completed page write (section 5.2.4: the
  // same count as the classic "log completed writes" optimization).
  EXPECT_EQ(pri_after - pri_before, wb_after - wb_before);
}

// --- crash restart (section 5.2.5, Figure 12) ---------------------------------------

TEST(DatabaseTest, RestartRecoversCommittedLosesUncommitted) {
  auto db = MakeDb();
  Load(db.get(), 0, 500);
  ASSERT_TRUE(db->Checkpoint().ok());

  // Committed after the checkpoint: must survive.
  Txn committed = db->BeginTxn();
  ASSERT_TRUE(committed.Insert("committed-key", "yes").ok());
  ASSERT_TRUE(committed.Update(Key(10), "updated").ok());
  ASSERT_TRUE(committed.Commit().ok());

  // Uncommitted at crash: must vanish.
  Txn loser = db->BeginTxn();
  ASSERT_TRUE(loser.Insert("loser-key", "no").ok());
  ASSERT_TRUE(loser.Update(Key(20), "loser-change").ok());
  ASSERT_TRUE(loser.Delete(Key(30)).ok());
  // Concurrent activity forces the log: the loser's records are durable
  // even though it never commits — exactly the loser a restart must undo.
  db->log()->ForceAll();

  db->SimulateCrash();
  auto stats = db->Restart();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->losers, 1u);
  EXPECT_GT(stats->undo_records, 0u);

  EXPECT_EQ(*db->Get("committed-key"), "yes");
  EXPECT_EQ(*db->Get(Key(10)), "updated");
  EXPECT_TRUE(db->Get("loser-key").status().IsNotFound());
  EXPECT_EQ(*db->Get(Key(20)), "v-20");
  EXPECT_EQ(*db->Get(Key(30)), "v-30");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(DatabaseTest, RestartIsIdempotent) {
  // Crash during recovery -> rerun is safe (invariant R1).
  auto db = MakeDb();
  Load(db.get(), 0, 300);
  Txn loser = db->BeginTxn();
  ASSERT_TRUE(loser.Insert("loser", "x").ok());
  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());
  db->SimulateCrash();  // crash right after recovery
  ASSERT_TRUE(db->Restart().ok());
  EXPECT_TRUE(db->Get("loser").status().IsNotFound());
  EXPECT_EQ(*db->Get(Key(0)), "v-0");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(DatabaseTest, RestartUsesWriteCertificationsToSkipReads) {
  // Figure 4 / section 5.2.5: PriUpdate records spare redo its random
  // reads for pages whose writes completed.
  auto db = MakeDb();
  Load(db.get(), 0, 2000);
  ASSERT_TRUE(db->Checkpoint().ok());
  Load(db.get(), 2000, 2500);
  ASSERT_TRUE(db->FlushAll().ok());  // writes + PriUpdates, all durable?
  db->log()->ForceAll();

  db->SimulateCrash();
  auto stats = db->Restart();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->write_certifications_seen, 0u);
  // Every write was certified: redo has nothing to read at all — the
  // full payoff of Figure 4's optimization.
  EXPECT_EQ(stats->redo_page_reads, 0u);
  EXPECT_EQ(*db->Get(Key(2499)), "v-2499");
}

TEST(DatabaseTest, RestartRegeneratesLostPriUpdates) {
  // Figure 12, third row: page written, crash before the PriUpdate is
  // durable -> restart finds the page current and regenerates the record.
  auto db = MakeDb();
  Load(db.get(), 0, 100);
  ASSERT_TRUE(db->Checkpoint().ok());

  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(50), "post-ckpt").ok());
  ASSERT_TRUE(t.Commit().ok());
  // Flush the page: the data write completes; the PriUpdate record sits in
  // the unforced log tail and is lost by the crash.
  auto leaf = db->LeafPageOf(Key(50));
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(db->pool()->FlushPage(*leaf).ok());

  db->SimulateCrash();
  auto stats = db->Restart();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->lost_pri_updates_regenerated, 1u);
  EXPECT_EQ(*db->Get(Key(50)), "post-ckpt");
}

TEST(DatabaseTest, RestartRedoesRecordsAfterMidWorkloadFlush) {
  // Regression test: a FLUSHED page's write certification raises its
  // recLSN to a mid-record marker; updates to OTHER pages after the flush
  // must still be redone (the redo scan must start at a record boundary
  // at or before them, not at the raised marker).
  auto db = MakeDb();
  Load(db.get(), 0, 500);
  ASSERT_TRUE(db->Checkpoint().ok());

  // Update + flush one page: its certification becomes the smallest
  // raised recLSN in the DPT.
  Txn t1 = db->BeginTxn();
  ASSERT_TRUE(t1.Update(Key(10), "flushed-update").ok());
  ASSERT_TRUE(t1.Commit().ok());
  ASSERT_TRUE(db->FlushAll().ok());

  // Then plenty of unflushed committed updates elsewhere.
  Txn t2 = db->BeginTxn();
  for (int i = 1000; i < 1800; ++i) {
    ASSERT_TRUE(t2.Insert(Key(i), "must-survive").ok());
  }
  ASSERT_TRUE(t2.Commit().ok());

  db->SimulateCrash();
  auto stats = db->Restart();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->redo_applied, 100u);
  EXPECT_EQ(*db->Get(Key(10)), "flushed-update");
  EXPECT_EQ(*db->Get(Key(1799)), "must-survive");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(DatabaseTest, RepairWorksAfterRestart) {
  // PRI reloaded from its pages + analysis; single-page recovery must
  // still work on the restarted database.
  auto db = MakeDb();
  Load(db.get(), 0, 1000);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  Load(db.get(), 1000, 1200);
  ASSERT_TRUE(db->Checkpoint().ok());

  db->SimulateCrash();
  ASSERT_TRUE(db->Restart().ok());

  auto leaf = db->LeafPageOf(Key(500));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(*leaf);
  EXPECT_EQ(*db->Get(Key(500)), "v-500");
  EXPECT_EQ(db->single_page_recovery()->stats().repairs_succeeded, 1u);
}

TEST(DatabaseTest, PriPageFailureRecoveredFromOtherPartition) {
  // Invariant P2: a lost PRI page is rebuilt from the other partition's
  // covering entry plus its own chain of PriUpdate records.
  auto db = MakeDb();
  Load(db.get(), 0, 1000);
  ASSERT_TRUE(db->Checkpoint().ok());  // writes PRI pages + their backups
  Load(db.get(), 1000, 1100);
  ASSERT_TRUE(db->Checkpoint().ok());

  // Corrupt the PRI page covering the actual data pages (window 0, a
  // partition-B page at the device tail).
  const PriLayout& layout = db->pri_manager()->layout();
  PageId pri_page = layout.PriPageOfWindow(0);
  db->data_device()->InjectSilentCorruption(pri_page);

  db->SimulateCrash();
  auto stats = db->Restart();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(db->pri_manager()->stats().pri_pages_recovered, 1u);
  EXPECT_EQ(*db->Get(Key(1050)), "v-1050");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// --- media recovery (section 5.1.3) ---------------------------------------------------

TEST(DatabaseTest, MediaRecoveryRestoresEverythingCommitted) {
  auto db = MakeDb();
  Load(db.get(), 0, 800);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  Load(db.get(), 800, 1200);
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(100), "after-backup").ok());
  ASSERT_TRUE(t.Commit().ok());
  db->log()->ForceAll();

  db->data_device()->FailDevice();
  {
    // Everything fails while the device is down.
    db->pool()->DiscardAll();
    auto v = db->Get(Key(100));
    EXPECT_TRUE(v.status().IsMediaFailure());
  }

  auto stats = db->RecoverMedia();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->pages_restored, db->options().num_pages);
  EXPECT_GT(stats->redo_applied, 0u);

  EXPECT_EQ(*db->Get(Key(100)), "after-backup");
  EXPECT_EQ(*db->Get(Key(1100)), "v-1100");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(DatabaseTest, MediaRecoveryAbortsActiveTransactions) {
  auto db = MakeDb();
  Load(db.get(), 0, 300);
  ASSERT_TRUE(db->TakeFullBackup().ok());

  Txn active = db->BeginTxn();
  ASSERT_TRUE(active.Insert("in-flight", "x").ok());
  db->log()->ForceAll();  // its records are durable, but it never commits

  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  ASSERT_TRUE(db->RecoverMedia().ok());

  EXPECT_TRUE(db->Get("in-flight").status().IsNotFound());
  EXPECT_EQ(*db->Get(Key(0)), "v-0");
}

// Regression (found by the chaos harness, seed 5): a full backup must not
// copy a broken page image over the only good backup of that page. The
// page is repaired first — consulting the still-intact old backup — and
// the verified image is what lands on the backup device.
TEST(DatabaseTest, FullBackupHealsBrokenPageInsteadOfCopyingIt) {
  auto db = MakeDb();
  Load(db.get(), 0, 2000);
  ASSERT_TRUE(db->TakeFullBackup().ok());  // good backup #1
  Load(db.get(), 2000, 2200);
  ASSERT_TRUE(db->FlushAll().ok());

  auto leaf = db->LeafPageOf(Key(100));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardPage(*leaf);
  db->data_device()->InjectSilentCorruption(*leaf);

  // Backup #2 hits the corrupt image, routes it through single-page
  // repair, and copies the healed page.
  auto b2 = db->TakeFullBackup();
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();

  // Backup #2 is now the only basis for media recovery; if it had copied
  // the garbage image, the restore (or the offline check after it) fails.
  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  ASSERT_TRUE(db->RecoverMedia().ok());
  EXPECT_EQ(*db->Get(Key(100)), "v-100");
  EXPECT_EQ(*db->Get(Key(2100)), "v-2100");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// Companion regression: when the broken page cannot be healed (a worn
// location re-corrupts every repair write), the backup must ABORT rather
// than publish a catalog entry whose image set contains garbage — and the
// previous backup must remain usable.
TEST(DatabaseTest, FullBackupAbortsOnUnhealablePageKeepingOldBackup) {
  auto db = MakeDb();
  Load(db.get(), 0, 2000);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  auto first = db->backups()->latest_full_backup();
  ASSERT_TRUE(first.has_value());
  Load(db.get(), 2000, 2200);
  ASSERT_TRUE(db->FlushAll().ok());

  auto leaf = db->LeafPageOf(Key(1500));
  ASSERT_TRUE(leaf.ok());
  db->pool()->DiscardPage(*leaf);
  // Exhausted wear budget: every repair write lands scrambled, so the
  // page can never be brought to a verified state in place.
  db->data_device()->SetWearOutLimit(*leaf, 0);
  db->data_device()->InjectSilentCorruption(*leaf);

  EXPECT_FALSE(db->TakeFullBackup().ok());
  auto latest = db->backups()->latest_full_backup();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->id, first->id);  // catalog still points at backup #1

  // Retire the worn location; backup #1 plus the log heals the page.
  db->data_device()->ClearFault(*leaf);
  auto healed = db->RecoverPages({*leaf});
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(*db->Get(Key(1500)), "v-1500");
  EXPECT_EQ(*db->Get(Key(2100)), "v-2100");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

// --- scrubbing & offline checks --------------------------------------------------------

TEST(DatabaseTest, ScrubFindsAndHealsLatentErrors) {
  // Bairavasundaram-style latent sector errors surface during scrubbing
  // and are repaired in place.
  auto db = MakeDb();
  Load(db.get(), 0, 2000);
  ASSERT_TRUE(db->TakeFullBackup().ok());
  ASSERT_TRUE(db->FlushAll().ok());
  db->pool()->DiscardAll();

  std::set<PageId> victims;
  for (int i = 0; i < 2000; i += 400) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    victims.insert(*leaf);
  }
  db->pool()->DiscardAll();
  for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);

  auto scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_GE(scrub->failures_detected, victims.size());
  EXPECT_GE(scrub->pages_repaired, victims.size());

  // A second scrub is clean.
  db->pool()->DiscardAll();
  auto again = db->Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->failures_detected, 0u);
}

TEST(DatabaseTest, CheckOfflineDetectsDeviceCorruption) {
  auto db = MakeDb();
  Load(db.get(), 0, 500);
  ASSERT_TRUE(db->FlushAll().ok());
  uint64_t checked = 0;
  ASSERT_TRUE(db->CheckOffline(&checked).ok());
  EXPECT_GT(checked, 2u);

  auto leaf = db->LeafPageOf(Key(250));
  ASSERT_TRUE(leaf.ok());
  db->data_device()->InjectSilentCorruption(*leaf);
  db->pool()->DiscardPage(*leaf);
  EXPECT_FALSE(db->CheckOffline(nullptr).ok());
}

// --- randomized crash-recovery property test (invariant R2) -----------------------------

TEST(DatabaseCrashPropertyTest, RandomWorkloadRandomCrashes) {
  auto db = MakeDb();
  std::map<std::string, std::string> committed;
  Random rng(4242);

  for (int round = 0; round < 8; ++round) {
    // A few committed transactions.
    for (int txn_i = 0; txn_i < 5; ++txn_i) {
      Txn t = db->BeginTxn();
      std::map<std::string, std::string> local = committed;
      for (int op = 0; op < 30; ++op) {
        std::string key = Key(static_cast<int>(rng.Uniform(400)));
        if (rng.Bernoulli(0.7)) {
          std::string value = rng.NextString(20);
          ASSERT_TRUE(t.Put(key, value).ok());
          local[key] = value;
        } else if (local.count(key)) {
          ASSERT_TRUE(t.Delete(key).ok());
          local.erase(key);
        }
      }
      if (rng.Bernoulli(0.75)) {
        ASSERT_TRUE(t.Commit().ok());
        committed = local;
      } else {
        ASSERT_TRUE(t.Abort().ok());
      }
    }
    // One in-flight transaction that dies with the crash.
    Txn loser = db->BeginTxn();
    for (int op = 0; op < 10; ++op) {
      loser.Put(Key(static_cast<int>(rng.Uniform(400))), "loser");
    }
    // Random operational events.
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(db->Checkpoint().ok());
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(db->FlushAll().ok());
    }

    db->SimulateCrash();
    auto stats = db->Restart();
    ASSERT_TRUE(stats.ok()) << "round " << round << ": "
                            << stats.status().ToString();

    // R2: exactly the committed state, tree invariants intact.
    for (const auto& [k, v] : committed) {
      auto got = db->Get(k);
      ASSERT_TRUE(got.ok()) << "round " << round << " key " << k;
      EXPECT_EQ(*got, v);
    }
    uint64_t count = 0;
    ASSERT_TRUE(db->Scan("", "", [&](std::string_view k, std::string_view v) {
      auto it = committed.find(std::string(k));
      EXPECT_NE(it, committed.end()) << "phantom key " << k;
      if (it != committed.end()) {
        EXPECT_EQ(v, it->second);
      }
      count++;
      return true;
    }).ok());
    EXPECT_EQ(count, committed.size()) << "round " << round;
    ASSERT_TRUE(db->CheckOffline(nullptr).ok()) << "round " << round;
  }
}

}  // namespace
}  // namespace spf
