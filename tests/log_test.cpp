// Unit tests for the log module: record serialization, append/force/read,
// per-transaction and per-page chains, forward scan, crash truncation.

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "storage/page.h"
#include "storage/sim_device.h"

namespace spf {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : device_("wal", DeviceProfile::Instant(), &clock_), log_(&device_) {}

  LogRecord MakeRecord(LogRecordType type, TxnId txn, std::string body) {
    LogRecord rec;
    rec.type = type;
    rec.txn_id = txn;
    rec.body = std::move(body);
    return rec;
  }

  SimClock clock_;
  SimLogDevice device_;
  LogManager log_;
};

TEST_F(LogTest, RecordSerializationRoundTrip) {
  LogRecord rec;
  rec.type = LogRecordType::kBTreeInsert;
  rec.flags = kLogFlagSystemTxn;
  rec.txn_id = 42;
  rec.prev_lsn = 100;
  rec.page_id = 7;
  rec.page_prev_lsn = 88;
  rec.undo_next_lsn = 55;
  rec.body = "key=value";

  std::string wire = rec.Serialize();
  auto parsed = ParseLogRecord(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, LogRecordType::kBTreeInsert);
  EXPECT_TRUE(parsed->is_system_txn());
  EXPECT_EQ(parsed->txn_id, 42u);
  EXPECT_EQ(parsed->prev_lsn, 100u);
  EXPECT_EQ(parsed->page_id, 7u);
  EXPECT_EQ(parsed->page_prev_lsn, 88u);
  EXPECT_EQ(parsed->undo_next_lsn, 55u);
  EXPECT_EQ(parsed->body, "key=value");
}

TEST_F(LogTest, ParseRejectsCorruptRecord) {
  LogRecord rec = MakeRecord(LogRecordType::kCommitTxn, 1, "x");
  std::string wire = rec.Serialize();
  wire[wire.size() - 1] ^= 1;
  EXPECT_TRUE(ParseLogRecord(wire).status().IsCorruption());
  EXPECT_TRUE(ParseLogRecord("short").status().IsCorruption());
}

TEST_F(LogTest, AppendAssignsMonotonicLsns) {
  LogRecord a = MakeRecord(LogRecordType::kBeginTxn, 1, "");
  LogRecord b = MakeRecord(LogRecordType::kCommitTxn, 1, "");
  Lsn la = log_.Append(&a);
  Lsn lb = log_.Append(&b);
  EXPECT_EQ(la, LogManager::kLogFileHeaderSize);
  EXPECT_EQ(lb, la + a.length);
  EXPECT_NE(la, kInvalidLsn);
}

TEST_F(LogTest, ReadBack) {
  LogRecord a = MakeRecord(LogRecordType::kBTreeInsert, 3, "payload-a");
  Lsn la = log_.Append(&a);
  auto got = log_.Read(la);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->body, "payload-a");
  EXPECT_EQ(got->lsn, la);
  EXPECT_EQ(got->length, a.length);
}

TEST_F(LogTest, ReadBeforeStartRejected) {
  EXPECT_TRUE(log_.Read(0).status().IsInvalidArgument());
}

TEST_F(LogTest, DurabilityTracksForce) {
  LogRecord a = MakeRecord(LogRecordType::kBeginTxn, 1, "");
  Lsn la = log_.Append(&a);
  EXPECT_LT(log_.durable_lsn(), la + a.length);
  log_.Force(la);
  EXPECT_GE(log_.durable_lsn(), la + a.length);
}

TEST_F(LogTest, CrashDropsUnforcedRecords) {
  LogRecord a = MakeRecord(LogRecordType::kBeginTxn, 1, "");
  log_.Append(&a);
  log_.ForceAll();
  LogRecord b = MakeRecord(LogRecordType::kCommitTxn, 1, "");
  Lsn lb = log_.Append(&b);

  // Crash: staged records die with the manager, then the device loses its
  // unsynced tail (staged bytes are strictly MORE volatile than published
  // ones, so the order mirrors Database::SimulateCrash).
  log_.Crash();
  device_.DropUnsynced();

  EXPECT_TRUE(log_.Read(lb).status().IsIOError());
  auto still = log_.Read(a.lsn);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->type, LogRecordType::kBeginTxn);
}

TEST_F(LogTest, PerTransactionChain) {
  // Section 5.1.1: each record points to the prior one of the same txn.
  LogRecord r1 = MakeRecord(LogRecordType::kBeginTxn, 9, "");
  Lsn l1 = log_.Append(&r1);
  LogRecord r2 = MakeRecord(LogRecordType::kBTreeInsert, 9, "k1");
  r2.prev_lsn = l1;
  Lsn l2 = log_.Append(&r2);
  LogRecord r3 = MakeRecord(LogRecordType::kBTreeInsert, 9, "k2");
  r3.prev_lsn = l2;
  Lsn l3 = log_.Append(&r3);

  // Walk the chain backward.
  auto rec = log_.Read(l3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->prev_lsn, l2);
  rec = log_.Read(rec->prev_lsn);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->prev_lsn, l1);
  rec = log_.Read(rec->prev_lsn);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->prev_lsn, kInvalidLsn);
}

TEST_F(LogTest, AppendPageRecordMaintainsPerPageChain) {
  // Section 5.1.4 / Figure 6: the chain is anchored in the PageLSN and
  // embedded in the log records.
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(55, PageType::kBTreeLeaf);

  std::vector<Lsn> lsns;
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = MakeRecord(LogRecordType::kBTreeInsert, 1, "upd");
    rec.page_id = 55;
    lsns.push_back(log_.AppendPageRecord(&rec, page));
  }
  EXPECT_EQ(page.page_lsn(), lsns.back());
  EXPECT_EQ(page.update_count(), 5u);

  // Walk the per-page chain from the PageLSN anchor back to the format.
  Lsn cur = page.page_lsn();
  for (int i = 4; i >= 0; --i) {
    auto rec = log_.Read(cur);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->lsn, lsns[i]);
    EXPECT_EQ(rec->page_id, 55u);
    cur = rec->page_prev_lsn;
  }
  EXPECT_EQ(cur, kInvalidLsn);
}

TEST_F(LogTest, ForwardScan) {
  std::vector<Lsn> lsns;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec = MakeRecord(LogRecordType::kBTreeInsert, 1,
                               "body" + std::to_string(i));
    lsns.push_back(log_.Append(&rec));
  }
  int count = 0;
  for (auto it = log_.Scan(log_.first_lsn()); it.Valid(); it.Next()) {
    EXPECT_EQ(it.record().lsn, lsns[count]);
    EXPECT_EQ(it.record().body, "body" + std::to_string(count));
    count++;
  }
  EXPECT_EQ(count, 10);
}

TEST_F(LogTest, ScanFromMidpoint) {
  std::vector<Lsn> lsns;
  for (int i = 0; i < 6; ++i) {
    LogRecord rec = MakeRecord(LogRecordType::kBTreeUpdate, 1, "x");
    lsns.push_back(log_.Append(&rec));
  }
  int count = 0;
  for (auto it = log_.Scan(lsns[3]); it.Valid(); it.Next()) count++;
  EXPECT_EQ(count, 3);
}

TEST_F(LogTest, ScanStopsAtCorruptTail) {
  LogRecord a = MakeRecord(LogRecordType::kBeginTxn, 1, "");
  log_.Append(&a);
  // Publish the staged record first so the garbage below lands AFTER it
  // on the device (group commit stages appends off-device until a force
  // or batch threshold).
  log_.ForceAll();
  // Simulate a torn tail: append garbage directly to the device.
  device_.Append("\x40\x00\x00\x00garbage-that-is-not-a-record");
  int count = 0;
  for (auto it = log_.Scan(log_.first_lsn()); it.Valid(); it.Next()) count++;
  EXPECT_EQ(count, 1);
}

TEST_F(LogTest, MasterRecord) {
  EXPECT_EQ(log_.GetMasterRecord(), kInvalidLsn);
  log_.SetMasterRecord(1234);
  EXPECT_EQ(log_.GetMasterRecord(), 1234u);
}

TEST_F(LogTest, StatsPerType) {
  LogRecord a = MakeRecord(LogRecordType::kBeginTxn, 1, "");
  LogRecord b = MakeRecord(LogRecordType::kPriUpdate, 0, "pri");
  LogRecord c = MakeRecord(LogRecordType::kPriUpdate, 0, "pri");
  log_.Append(&a);
  log_.Append(&b);
  log_.Append(&c);
  LogStats s = log_.stats();
  EXPECT_EQ(s.records_appended, 3u);
  EXPECT_EQ(s.per_type[LogRecordType::kBeginTxn], 1u);
  EXPECT_EQ(s.per_type[LogRecordType::kPriUpdate], 2u);
  EXPECT_GT(s.bytes_appended, 0u);
}

TEST_F(LogTest, TypeNamesComplete) {
  EXPECT_EQ(LogRecordTypeName(LogRecordType::kPriUpdate), "PriUpdate");
  EXPECT_EQ(LogRecordTypeName(LogRecordType::kCheckpointEnd), "CheckpointEnd");
  EXPECT_EQ(LogRecordTypeName(static_cast<LogRecordType>(255)), "Unknown");
}

TEST_F(LogTest, DebugStringMentionsChains) {
  LogRecord rec = MakeRecord(LogRecordType::kBTreeInsert, 12, "b");
  rec.page_id = 3;
  rec.page_prev_lsn = 77;
  log_.Append(&rec);
  std::string s = rec.DebugString();
  EXPECT_NE(s.find("BTreeInsert"), std::string::npos);
  EXPECT_NE(s.find("pagePrev=77"), std::string::npos);
}

}  // namespace
}  // namespace spf
