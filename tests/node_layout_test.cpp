// Unit tests for the Foster B-tree node layout: fences, slots, ghosts,
// prefix truncation, splits, serialization, and invariant checking.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "btree/node_layout.h"
#include "common/random.h"
#include "storage/page.h"

namespace spf {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() : buf_(kDefaultPageSize) {
    page_ = std::make_unique<PageView>(buf_.view());
    page_->Format(42, PageType::kBTreeLeaf);
    node_ = std::make_unique<BTreeNode>(*page_);
  }

  void InitLeaf(const KeyBound& low, const KeyBound& high) {
    node_->Init(0, low, high, kInvalidPageId, KeyBound::PosInf());
  }

  PageBuffer buf_;
  std::unique_ptr<PageView> page_;
  std::unique_ptr<BTreeNode> node_;
};

TEST_F(NodeTest, InitSetsFences) {
  InitLeaf(KeyBound::Finite("apple"), KeyBound::Finite("mango"));
  EXPECT_EQ(node_->low_fence().key, "apple");
  EXPECT_EQ(node_->high_fence().key, "mango");
  EXPECT_FALSE(node_->has_foster_child());
  EXPECT_EQ(node_->slot_count(), 0u);
  EXPECT_TRUE(node_->is_leaf());
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, InfiniteFences) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  EXPECT_TRUE(node_->low_fence().infinite);
  EXPECT_TRUE(node_->high_fence().infinite);
  EXPECT_TRUE(node_->CoversKey("anything"));
  EXPECT_EQ(node_->prefix_len(), 0u);
}

TEST_F(NodeTest, CoversKeyRespectsFences) {
  InitLeaf(KeyBound::Finite("b"), KeyBound::Finite("f"));
  EXPECT_FALSE(node_->CoversKey("a"));
  EXPECT_TRUE(node_->CoversKey("b"));
  EXPECT_TRUE(node_->CoversKey("e"));
  EXPECT_TRUE(node_->CoversKey("ezzz"));
  EXPECT_FALSE(node_->CoversKey("f"));  // high fence exclusive
  EXPECT_FALSE(node_->CoversKey("g"));
}

TEST_F(NodeTest, InsertMaintainsSortOrder) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  for (const char* k : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    ASSERT_TRUE(node_->InsertLeafRecord(k, std::string("v-") + k).ok());
  }
  ASSERT_EQ(node_->slot_count(), 5u);
  const char* expected[] = {"alpha", "bravo", "charlie", "delta", "echo"};
  for (uint16_t s = 0; s < 5; ++s) {
    EXPECT_EQ(node_->FullKeyAt(s), expected[s]);
    EXPECT_EQ(node_->ValueAt(s), std::string("v-") + expected[s]);
  }
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, FindExactAndInsertionPoint) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  node_->InsertLeafRecord("b", "1");
  node_->InsertLeafRecord("d", "2");
  node_->InsertLeafRecord("f", "3");
  auto r = node_->Find("d");
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.slot, 1u);
  r = node_->Find("c");
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.slot, 1u);  // would insert before "d"
  r = node_->Find("a");
  EXPECT_EQ(r.slot, 0u);
  r = node_->Find("z");
  EXPECT_EQ(r.slot, 3u);
}

TEST_F(NodeTest, GhostBitAndAccounting) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  node_->InsertLeafRecord("k1", "v1");
  node_->InsertLeafRecord("k2", "v2");
  EXPECT_EQ(node_->ghost_count(), 0u);
  node_->SetGhost(0, true);
  EXPECT_TRUE(node_->IsGhost(0));
  EXPECT_FALSE(node_->IsGhost(1));
  EXPECT_EQ(node_->ghost_count(), 1u);
  node_->SetGhost(0, true);  // idempotent
  EXPECT_EQ(node_->ghost_count(), 1u);
  node_->SetGhost(0, false);
  EXPECT_EQ(node_->ghost_count(), 0u);
  EXPECT_TRUE(node_->VerifyInvariants().ok());
  // Value is still readable while ghosted (needed for undo).
  node_->SetGhost(1, true);
  EXPECT_EQ(node_->ValueAt(1), "v2");
}

TEST_F(NodeTest, PrefixTruncationStoresSuffixes) {
  InitLeaf(KeyBound::Finite("user12300"), KeyBound::Finite("user12399"));
  EXPECT_EQ(node_->prefix_len(), 7u);  // "user123"
  ASSERT_TRUE(node_->InsertLeafRecord("user12345", "v").ok());
  EXPECT_EQ(node_->KeySuffixAt(0), "45");
  EXPECT_EQ(node_->FullKeyAt(0), "user12345");
  auto r = node_->Find("user12345");
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, ReplaceValueShrinkGrow) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  node_->InsertLeafRecord("key", std::string(100, 'a'));
  ASSERT_TRUE(node_->ReplaceValue(0, "small").ok());
  EXPECT_EQ(node_->ValueAt(0), "small");
  ASSERT_TRUE(node_->ReplaceValue(0, std::string(500, 'b')).ok());
  EXPECT_EQ(node_->ValueAt(0).size(), 500u);
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, RemoveSlotShiftsOthers) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  for (const char* k : {"a", "b", "c", "d"}) node_->InsertLeafRecord(k, k);
  node_->RemoveSlot(1);  // remove "b"
  ASSERT_EQ(node_->slot_count(), 3u);
  EXPECT_EQ(node_->FullKeyAt(0), "a");
  EXPECT_EQ(node_->FullKeyAt(1), "c");
  EXPECT_EQ(node_->FullKeyAt(2), "d");
  node_->RemoveSlot(0);
  EXPECT_EQ(node_->FullKeyAt(0), "c");
  node_->RemoveSlot(1);
  EXPECT_EQ(node_->FullKeyAt(0), "c");
  EXPECT_EQ(node_->slot_count(), 1u);
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, CompactReclaimsHoles) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  node_->InsertLeafRecord("a", std::string(1000, 'x'));
  node_->InsertLeafRecord("b", std::string(1000, 'y'));
  size_t before = node_->FreeSpace();
  node_->RemoveSlot(0);  // heap hole of ~1000 bytes
  node_->Compact();
  EXPECT_GT(node_->FreeSpace(), before + 900);
  EXPECT_EQ(node_->ValueAt(0), std::string(1000, 'y'));
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, FillUntilFullThenReject) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  int inserted = 0;
  for (int i = 0; i < 10000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    Status s = node_->InsertLeafRecord(key, std::string(64, 'v'));
    if (!s.ok()) {
      EXPECT_TRUE(s.IsIOError());
      break;
    }
    inserted++;
  }
  EXPECT_GT(inserted, 50);
  EXPECT_LT(inserted, 200);  // 8 KiB / ~80 B per record
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, ReclaimGhosts) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  for (const char* k : {"a", "b", "c", "d"}) node_->InsertLeafRecord(k, k);
  node_->SetGhost(1, true);
  node_->SetGhost(3, true);
  size_t n = node_->ReclaimGhosts({"b", "d", "zz"});
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(node_->slot_count(), 2u);
  EXPECT_EQ(node_->ghost_count(), 0u);
  EXPECT_EQ(node_->FullKeyAt(0), "a");
  EXPECT_EQ(node_->FullKeyAt(1), "c");
  // Non-ghost records are never reclaimed.
  EXPECT_EQ(node_->ReclaimGhosts({"a"}), 0u);
  EXPECT_EQ(node_->slot_count(), 2u);
}

TEST_F(NodeTest, ChooseSeparatorSuffixTruncation) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  node_->InsertLeafRecord("aaaa0001", "v");
  node_->InsertLeafRecord("aaaa0002", "v");
  node_->InsertLeafRecord("bbbb7777", "v");
  node_->InsertLeafRecord("bbbb9999", "v");
  // Mid slot = 2 ("bbbb7777"); left neighbor "aaaa0002". Shortest
  // separator: "b".
  std::string sep = node_->ChooseSeparator();
  EXPECT_EQ(sep, "b");
  EXPECT_GT(sep, node_->FullKeyAt(1));
  EXPECT_LE(sep, node_->FullKeyAt(2));
}

TEST_F(NodeTest, ApplySplitTruncatesAndSetsFoster) {
  InitLeaf(KeyBound::Finite("a"), KeyBound::Finite("z"));
  for (const char* k : {"b", "d", "f", "h"}) node_->InsertLeafRecord(k, k);
  node_->ApplySplit("e", /*new_child=*/99);
  EXPECT_EQ(node_->slot_count(), 2u);
  EXPECT_EQ(node_->FullKeyAt(0), "b");
  EXPECT_EQ(node_->FullKeyAt(1), "d");
  EXPECT_EQ(node_->high_fence().key, "e");
  ASSERT_TRUE(node_->has_foster_child());
  EXPECT_EQ(node_->foster_child(), 99u);
  EXPECT_EQ(node_->foster_fence().key, "z");  // chain high preserved
  EXPECT_EQ(node_->chain_high().key, "z");
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, ApplySplitPreservesChainHighAcrossTwoSplits) {
  InitLeaf(KeyBound::NegInf(), KeyBound::PosInf());
  for (const char* k : {"b", "d", "f", "h"}) node_->InsertLeafRecord(k, k);
  node_->ApplySplit("e", 99);
  EXPECT_TRUE(node_->chain_high().infinite);
  node_->ApplySplit("c", 100);
  EXPECT_EQ(node_->foster_child(), 100u);
  EXPECT_EQ(node_->high_fence().key, "c");
  EXPECT_TRUE(node_->foster_fence().infinite);  // still the chain high
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, ClearFosterKeepsRecordsValid) {
  InitLeaf(KeyBound::Finite("a"), KeyBound::Finite("z"));
  for (const char* k : {"b", "d", "f", "h"}) node_->InsertLeafRecord(k, k);
  node_->ApplySplit("e", 99);
  node_->ClearFoster();
  EXPECT_FALSE(node_->has_foster_child());
  EXPECT_EQ(node_->FullKeyAt(0), "b");
  EXPECT_EQ(node_->FullKeyAt(1), "d");
  EXPECT_EQ(node_->chain_high().key, "e");  // now the node's own high
  EXPECT_TRUE(node_->VerifyInvariants().ok());
}

TEST_F(NodeTest, SerializeContentRoundTrip) {
  InitLeaf(KeyBound::Finite("a"), KeyBound::Finite("z"));
  node_->InsertLeafRecord("bb", "v1");
  node_->InsertLeafRecord("cc", "v2");
  node_->SetGhost(0, true);
  std::string content = node_->SerializeContent();

  PageBuffer buf2(kDefaultPageSize);
  PageView page2 = buf2.view();
  page2.Format(42, PageType::kBTreeLeaf);
  ASSERT_TRUE(BTreeNode::InitFromContent(page2, content).ok());
  BTreeNode node2(page2);
  EXPECT_EQ(node2.slot_count(), 2u);
  EXPECT_EQ(node2.FullKeyAt(0), "bb");
  EXPECT_TRUE(node2.IsGhost(0));
  EXPECT_EQ(node2.ValueAt(1), "v2");
  EXPECT_EQ(node2.low_fence().key, "a");
  EXPECT_EQ(node2.high_fence().key, "z");
  EXPECT_TRUE(node2.VerifyInvariants().ok());
  EXPECT_EQ(node2.SerializeContent(), content);
}

TEST_F(NodeTest, InitFromContentRejectsGarbage) {
  PageBuffer buf2(kDefaultPageSize);
  PageView page2 = buf2.view();
  page2.Format(42, PageType::kBTreeLeaf);
  EXPECT_TRUE(BTreeNode::InitFromContent(page2, "garbage").IsCorruption());
}

// --- branch nodes -------------------------------------------------------------

class BranchNodeTest : public ::testing::Test {
 protected:
  BranchNodeTest() : buf_(kDefaultPageSize) {
    page_ = std::make_unique<PageView>(buf_.view());
    page_->Format(7, PageType::kBTreeBranch);
    node_ = std::make_unique<BTreeNode>(*page_);
    node_->Init(1, KeyBound::NegInf(), KeyBound::PosInf(), kInvalidPageId,
                KeyBound::PosInf());
    // Children: ["", "g") -> 10, ["g", "p") -> 11, ["p", inf) -> 12.
    SPF_CHECK_OK(node_->InsertBranchRecord("", 10));
    SPF_CHECK_OK(node_->InsertBranchRecord("g", 11));
    SPF_CHECK_OK(node_->InsertBranchRecord("p", 12));
  }

  PageBuffer buf_;
  std::unique_ptr<PageView> page_;
  std::unique_ptr<BTreeNode> node_;
};

TEST_F(BranchNodeTest, FindChildSlotRoutesCorrectly) {
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("alpha")), 10u);
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("f")), 10u);
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("g")), 11u);
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("omega")), 11u);
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("p")), 12u);
  EXPECT_EQ(node_->ChildAt(node_->FindChildSlot("zzz")), 12u);
}

TEST_F(BranchNodeTest, BranchInvariantsHold) {
  EXPECT_TRUE(node_->VerifyInvariants().ok());
  EXPECT_FALSE(node_->is_leaf());
}

TEST_F(BranchNodeTest, GhostInBranchIsCorruption) {
  node_->SetGhost(1, true);
  EXPECT_TRUE(node_->VerifyInvariants().IsCorruption());
}

TEST_F(BranchNodeTest, ReplaceChildPointer) {
  node_->ReplaceChild(1, 99);
  EXPECT_EQ(node_->ChildAt(1), 99u);
}

// --- parent/child verification (paper section 4.2) -----------------------------

class EdgeVerifyTest : public ::testing::Test {
 protected:
  EdgeVerifyTest()
      : parent_buf_(kDefaultPageSize), child_buf_(kDefaultPageSize) {
    parent_page_ = std::make_unique<PageView>(parent_buf_.view());
    parent_page_->Format(1, PageType::kBTreeBranch);
    parent_ = std::make_unique<BTreeNode>(*parent_page_);
    parent_->Init(1, KeyBound::NegInf(), KeyBound::PosInf(), kInvalidPageId,
                  KeyBound::PosInf());
    SPF_CHECK_OK(parent_->InsertBranchRecord("", 10));
    SPF_CHECK_OK(parent_->InsertBranchRecord("m", 11));

    child_page_ = std::make_unique<PageView>(child_buf_.view());
    child_page_->Format(11, PageType::kBTreeLeaf);
    child_ = std::make_unique<BTreeNode>(*child_page_);
  }

  PageBuffer parent_buf_, child_buf_;
  std::unique_ptr<PageView> parent_page_, child_page_;
  std::unique_ptr<BTreeNode> parent_, child_;
};

TEST_F(EdgeVerifyTest, MatchingFencesPass) {
  child_->Init(0, KeyBound::Finite("m"), KeyBound::PosInf(), kInvalidPageId,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 1).ok());
}

TEST_F(EdgeVerifyTest, WrongLowFenceDetected) {
  child_->Init(0, KeyBound::Finite("n"), KeyBound::PosInf(), kInvalidPageId,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 1).IsCorruption());
}

TEST_F(EdgeVerifyTest, WrongChainHighDetected) {
  child_->Init(0, KeyBound::Finite("m"), KeyBound::Finite("q"), kInvalidPageId,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 1).IsCorruption());
}

TEST_F(EdgeVerifyTest, LeftmostChildNeedsInfiniteLow) {
  child_->Init(0, KeyBound::NegInf(), KeyBound::Finite("m"), kInvalidPageId,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 0).ok());
  child_->Init(0, KeyBound::Finite("a"), KeyBound::Finite("m"), kInvalidPageId,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 0).IsCorruption());
}

TEST_F(EdgeVerifyTest, FosterChainBoundsChecked) {
  // Child [m, q) with foster child covering [q, inf): chain high = inf
  // matches the parent separator pair (m, inf).
  child_->Init(0, KeyBound::Finite("m"), KeyBound::Finite("q"), /*foster=*/77,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 1).ok());
}

TEST_F(EdgeVerifyTest, VestigialFosterEdgeTolerated) {
  // Foster child already adopted by the parent: the node's own high fence
  // matches the parent separator while the chain high does not.
  child_->Init(0, KeyBound::Finite("m"), KeyBound::PosInf(), /*foster=*/77,
               KeyBound::PosInf());
  EXPECT_TRUE(child_->VerifyAsChildOf(*parent_, 1).ok());
}

TEST_F(EdgeVerifyTest, FosterChildVerification) {
  // Foster parent [a, g) + foster fence z; foster child must be [g, z).
  child_->Init(0, KeyBound::Finite("a"), KeyBound::Finite("g"), /*foster=*/50,
               KeyBound::Finite("z"));
  PageBuffer fc_buf(kDefaultPageSize);
  PageView fc_page = fc_buf.view();
  fc_page.Format(50, PageType::kBTreeLeaf);
  BTreeNode fc(fc_page);
  fc.Init(0, KeyBound::Finite("g"), KeyBound::Finite("z"), kInvalidPageId,
          KeyBound::PosInf());
  EXPECT_TRUE(fc.VerifyAsFosterChildOf(*child_).ok());

  fc.Init(0, KeyBound::Finite("h"), KeyBound::Finite("z"), kInvalidPageId,
          KeyBound::PosInf());
  EXPECT_TRUE(fc.VerifyAsFosterChildOf(*child_).IsCorruption());

  fc.Init(0, KeyBound::Finite("g"), KeyBound::Finite("y"), kInvalidPageId,
          KeyBound::PosInf());
  EXPECT_TRUE(fc.VerifyAsFosterChildOf(*child_).IsCorruption());
}

// --- randomized property test ---------------------------------------------------

TEST(NodePropertyTest, RandomOpsMatchReferenceMap) {
  PageBuffer buf(kDefaultPageSize);
  PageView page = buf.view();
  page.Format(5, PageType::kBTreeLeaf);
  BTreeNode node(page);
  node.Init(0, KeyBound::NegInf(), KeyBound::PosInf(), kInvalidPageId,
            KeyBound::PosInf());
  std::map<std::string, std::pair<std::string, bool>> ref;  // key -> (val, ghost)
  Random rng(2024);

  for (int op = 0; op < 3000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(60));
    uint64_t action = rng.Uniform(4);
    auto fr = node.Find(key);
    if (action == 0 && !fr.found) {  // insert
      std::string value = rng.NextString(rng.Uniform(40) + 1);
      if (node.InsertLeafRecord(key, value).ok()) {
        ref[key] = {value, false};
      }
    } else if (action == 1 && fr.found) {  // toggle ghost
      bool g = !node.IsGhost(fr.slot);
      node.SetGhost(fr.slot, g);
      ref[key].second = g;
    } else if (action == 2 && fr.found) {  // replace value
      std::string value = rng.NextString(rng.Uniform(40) + 1);
      if (node.ReplaceValue(fr.slot, value).ok()) {
        ref[key].first = value;
      }
    } else if (action == 3 && fr.found && node.IsGhost(fr.slot)) {  // reclaim
      node.ReclaimGhosts({key});
      ref.erase(key);
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(node.VerifyInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(node.VerifyInvariants().ok());
  ASSERT_EQ(node.slot_count(), ref.size());
  uint16_t s = 0;
  for (const auto& [key, vg] : ref) {
    EXPECT_EQ(node.FullKeyAt(s), key);
    EXPECT_EQ(node.ValueAt(s), vg.first);
    EXPECT_EQ(node.IsGhost(s), vg.second);
    s++;
  }
}

}  // namespace
}  // namespace spf
