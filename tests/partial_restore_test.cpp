// Tests for partial media restore (the "instant restore" bridge) and the
// RecoverPages escalation ladder: partial restore must be byte-identical
// to full restore-and-replay for the damaged set, the policy must route
// small batches to single-page repair / bounded damage to partial restore
// / unbounded damage to full restore, and the scrubber's tick accounting
// and write-back TOCTOU re-check must hold.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "recovery/media_recovery.h"

namespace spf {
namespace {

using bench::Key;

DatabaseOptions FastOptions() {
  DatabaseOptions o;
  o.num_pages = 2048;
  o.buffer_frames = 256;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  o.backup_policy.updates_threshold = 0;  // full backup is the only source
  return o;
}

constexpr int kRecords = 3000;

std::unique_ptr<Database> MakeChainedDb(DatabaseOptions options,
                                        std::vector<PageId>* victims) {
  return bench::MakeChainedBurstDb(std::move(options), kRecords,
                                   /*burst=*/SIZE_MAX, victims,
                                   /*rounds=*/4, /*stride=*/150);
}

std::vector<std::string> SnapshotPages(Database* db,
                                       const std::vector<PageId>& pages) {
  std::vector<std::string> images;
  const uint32_t page_size = db->options().page_size;
  for (PageId p : pages) {
    std::string img(page_size, '\0');
    db->data_device()->RawRead(p, img.data());
    images.push_back(std::move(img));
  }
  return images;
}

TEST(PartialRestoreTest, ByteIdenticalToFullMediaRecovery) {
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 0;  // route every batch straight to partial
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  ASSERT_GE(victims.size(), 8u);
  db->log()->ForceAll();

  // Bounded damage: every victim location fails reads until rewritten.
  for (PageId v : victims) db->data_device()->FailPageRange(v, 1);

  auto rec = db->RecoverPages(victims);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kPartialRestore);
  EXPECT_EQ(rec->escalated_to_partial, victims.size());
  EXPECT_EQ(rec->media.pages_restored, victims.size());
  EXPECT_GT(rec->media.redo_applied, 0u);
  std::vector<std::string> partial_images = SnapshotPages(db.get(), victims);

  // The healed pages serve reads again with no repair machinery involved.
  uint64_t checked = 0;
  ASSERT_TRUE(db->CheckOffline(&checked).ok());
  EXPECT_GT(checked, 0u);

  // Now lose the WHOLE device and run traditional restore-and-replay;
  // the damaged set must come back byte-identical to the partial path.
  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  auto full = db->RecoverMedia();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  std::vector<std::string> full_images = SnapshotPages(db.get(), victims);

  for (size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(partial_images[i], full_images[i])
        << "page " << victims[i]
        << " differs between partial and full restore";
  }
}

TEST(PartialRestoreTest, PartialReadsBackupSequentiallyAndLogInSegments) {
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 0;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  ASSERT_GE(victims.size(), 8u);

  for (PageId v : victims) db->data_device()->FailPageRange(v, 1);
  db->recovery_scheduler()->ResetStats();
  auto rec = db->RecoverPages(victims);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->path, RecoveryPath::kPartialRestore);

  RecoverySchedulerStats sched = db->recovery_scheduler()->stats();
  EXPECT_EQ(sched.partial_restores, 1u);
  EXPECT_EQ(sched.pages_repaired, victims.size());
  // Chains were replayed through shared segments, not per-record reads.
  EXPECT_GT(sched.segment_fetches, 0u);
  EXPECT_LT(sched.segment_fetches, rec->media.redo_applied);
}

TEST(PartialRestoreTest, EscalationPolicyRouting) {
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 4;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  ASSERT_GE(victims.size(), 8u);

  // Small batch (<= limit): coordinated single-page repair suffices.
  std::vector<PageId> small(victims.begin(), victims.begin() + 3);
  for (PageId v : small) db->data_device()->InjectSilentCorruption(v);
  auto rec = db->RecoverPages(small);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kSinglePage);
  EXPECT_EQ(rec->repaired_single_page, small.size());
  EXPECT_EQ(rec->escalated_to_partial, 0u);

  // Bounded damage above the limit: straight to partial restore.
  for (PageId v : victims) db->data_device()->FailPageRange(v, 1);
  rec = db->RecoverPages(victims);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kPartialRestore);
  EXPECT_EQ(rec->repaired_single_page, 0u);
  EXPECT_EQ(rec->media.pages_restored, victims.size());

  // Unbounded damage: the whole device is gone — full restore-and-replay.
  db->data_device()->FailDevice();
  db->pool()->DiscardAll();
  rec = db->RecoverPages({victims.front()});
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kFullRestore);
  EXPECT_EQ(rec->media.pages_restored, db->options().num_pages);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(PartialRestoreTest, SprWithoutBackupEscalatesToPartialRestore) {
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 64;
  std::vector<PageId> victims;
  auto db = MakeChainedDb(options, &victims);
  ASSERT_GE(victims.size(), 3u);

  // One page loses its PRI backup reference (the section 5.2.5 lost-update
  // shape): single-page repair has no image source for it, but partial
  // restore does not care — the page is still in the full backup.
  std::vector<PageId> small(victims.begin(), victims.begin() + 3);
  PageId orphan = small[1];
  auto entry = db->pri()->Lookup(orphan);
  ASSERT_TRUE(entry.ok());
  db->pri()->Apply(orphan, PriEntry{BackupRef{BackupKind::kNone, 0},
                                    entry->last_lsn});
  for (PageId v : small) db->data_device()->InjectSilentCorruption(v);

  auto rec = db->RecoverPages(small);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kPartialRestore);
  EXPECT_EQ(rec->repaired_single_page, small.size() - 1);
  EXPECT_EQ(rec->escalated_to_partial, 1u);
  EXPECT_EQ(rec->media.pages_restored, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(PartialRestoreTest, PageBornAfterBackupLoadsFromItsPerPageSource) {
  // A page allocated AFTER the full backup is not in it — its slot holds
  // pre-birth bytes. Once its PRI reference upgrades from the format
  // record to a per-page copy, partial restore must still route it to
  // that per-page source rather than misreading the full backup (which
  // would abort the partial path and force a full-device restore).
  DatabaseOptions options = FastOptions();
  options.spr_batch_limit = 0;            // every batch → partial restore
  options.backup_policy.updates_threshold = 3;
  auto db = bench::MakeLoadedDb(options, 1500);
  ASSERT_TRUE(db->TakeFullBackup().ok());

  // Allocation frontier at backup time: fresh ids are handed out
  // monotonically and nothing is freed here, so any later page id above
  // it was born after the backup.
  PriLayout layout = PriLayout::Compute(db->options().num_pages);
  PageId frontier = 0;
  for (PageId p = 0; p < layout.pri_b_start; ++p) {
    if (db->allocator()->IsAllocated(p)) frontier = p;
  }

  // Grow the tree: splits allocate pages the backup has never seen. The
  // tiny per-page backup threshold upgrades their PRI references from
  // the format record to an individual copy on first write-back.
  for (int base = 1500; base < 3000; base += 500) {
    Txn t = db->BeginTxn();
    for (int i = base; i < base + 500; ++i) {
      ASSERT_TRUE(t.Insert(Key(i), "post-backup").ok());
    }
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(db->FlushAll().ok());
  int young_key = -1;
  PageId young = kInvalidPageId;
  for (int i = 1500; i < 3000; i += 50) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    if (*leaf > frontier) {
      young_key = i;
      young = *leaf;
      break;
    }
  }
  ASSERT_NE(young_key, -1) << "no page born after the backup found";

  bench::UpdateKeyNTimes(db.get(), young_key, 4);
  ASSERT_TRUE(db->FlushAll().ok());
  auto entry = db->pri()->Lookup(young);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ(entry->backup.kind, BackupKind::kBackupPage);

  db->pool()->DiscardAll();
  db->data_device()->FailPageRange(young, 1);
  auto rec = db->RecoverPages({young});
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kPartialRestore);
  EXPECT_EQ(rec->media.pages_restored, 1u);
  auto v = db->Get(Key(young_key));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, "u3");
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

TEST(PartialRestoreTest, DirtyBufferedPagesAreSkippedNotRestored) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);

  // Dirty a leaf in the pool; its device image is legitimately stale and
  // must NOT be "recovered" backward under the in-memory copy.
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(Key(0), "dirty-in-pool").ok());
  ASSERT_TRUE(t.Commit().ok());
  auto leaf = db->LeafPageOf(Key(0));
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(db->pool()->IsDirty(*leaf));

  auto rec = db->RecoverPages({*leaf});
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->path, RecoveryPath::kNone);
  EXPECT_EQ(rec->skipped_dirty, 1u);
  auto v = db->Get(Key(0));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "dirty-in-pool");
}

TEST(BackupRangeReadTest, SequentialRunsMatchPointReads) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  auto backup = db->backups()->latest_full_backup();
  ASSERT_TRUE(backup.has_value());

  std::vector<PageId> pages{10, 11, 12, 50, 100, 101};
  const uint32_t page_size = db->options().page_size;
  std::vector<std::string> range_images(pages.size(),
                                        std::string(page_size, '\0'));
  std::vector<char*> frames;
  for (auto& img : range_images) frames.push_back(img.data());

  auto runs = db->backups()->ReadPagesFromFullBackup(backup->id, pages,
                                                     frames.data());
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  EXPECT_EQ(*runs, 3u);  // {10,11,12}, {50}, {100,101}

  for (size_t i = 0; i < pages.size(); ++i) {
    std::string point(page_size, '\0');
    ASSERT_TRUE(db->backups()
                    ->ReadFromFullBackup(backup->id, pages[i], point.data())
                    .ok());
    EXPECT_EQ(range_images[i], point) << "page " << pages[i];
  }

  // Descending / duplicate ids are rejected rather than silently reread.
  std::string scratch(page_size, '\0');
  char* one_frame[] = {scratch.data(), scratch.data()};
  std::vector<PageId> unsorted{12, 10};
  EXPECT_FALSE(db->backups()
                   ->ReadPagesFromFullBackup(backup->id, unsorted, one_frame)
                   .ok());
}

TEST(ScrubberAccountingTest, TickNeverExceedsOnePass) {
  auto db = bench::MakeLoadedDb(FastOptions(), 6000);
  ASSERT_TRUE(db->FlushAll().ok());

  // The page space's last id belongs to PRI partition B, so the
  // wrap-around page is SKIPPED by the scan — exactly the case where the
  // old wrap check (placed after the skip `continue`s) let a tick run on
  // into a second pass.
  PriLayout layout = PriLayout::Compute(db->options().num_pages);
  ASSERT_TRUE(layout.IsPriPage(db->options().num_pages - 1));

  // Measure one full pass with a throwaway scrubber.
  ScrubberOptions probe_opts;
  probe_opts.pages_per_tick = db->options().num_pages;
  Scrubber probe(db->recovery_scheduler(), db->allocator(), db->pool(),
                 db->data_device(), nullptr, db->bad_blocks(), layout,
                 db->clock(), probe_opts);
  auto sweep = probe.SweepAll();
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  const uint64_t scannable = sweep->pages_scanned;
  ASSERT_GT(scannable, 16u);

  // Budget > remaining-to-wrap: tick 1 parks the cursor mid-space, tick 2
  // crosses the wrap and must STOP there instead of filling its budget
  // from the next pass.
  ScrubberOptions opts;
  opts.pages_per_tick = scannable / 2 + scannable / 8;
  Scrubber scrubber(db->recovery_scheduler(), db->allocator(), db->pool(),
                    db->data_device(), nullptr, db->bad_blocks(), layout,
                    db->clock(), opts);
  auto tick1 = scrubber.Tick();
  ASSERT_TRUE(tick1.ok());
  EXPECT_EQ(tick1->pages_scanned, opts.pages_per_tick);
  EXPECT_EQ(scrubber.totals().sweeps_completed, 0u);

  auto tick2 = scrubber.Tick();
  ASSERT_TRUE(tick2.ok());
  EXPECT_EQ(tick2->pages_scanned, scannable - opts.pages_per_tick);
  EXPECT_EQ(scrubber.totals().sweeps_completed, 1u);
  EXPECT_EQ(scrubber.totals().pages_scanned, scannable);

  // Tick 3 starts a fresh pass from page 0.
  auto tick3 = scrubber.Tick();
  ASSERT_TRUE(tick3.ok());
  EXPECT_EQ(tick3->pages_scanned, opts.pages_per_tick);
  EXPECT_EQ(scrubber.totals().sweeps_completed, 1u);
}

TEST(ScrubberAccountingTest, PartialProgressSurvivesMidSpanMediaFailure) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);

  // A healthy tick first, then the whole device dies mid-sweep: the pages
  // scanned before the failure and the tick itself must still be counted.
  auto tick = db->scrubber()->Tick();
  ASSERT_TRUE(tick.ok());
  ScrubberTotals before = db->scrubber()->totals();
  ASSERT_GT(before.pages_scanned, 0u);

  db->data_device()->FailDevice();
  auto failed = db->scrubber()->Tick();
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsMediaFailure());

  ScrubberTotals after = db->scrubber()->totals();
  EXPECT_EQ(after.ticks, before.ticks + 1);
  // The aborted tick scanned at least one page before the read failed.
  EXPECT_GT(after.pages_scanned, before.pages_scanned);
}

TEST(ScrubberAccountingTest, WriteBackRaceIsSkippedNotRepairedBackward) {
  std::vector<PageId> victims;
  auto db = MakeChainedDb(FastOptions(), &victims);
  PageId victim = victims.front();

  // Freeze the device image at its current (older) state, apply one more
  // update, and flush — then revert the device while the pool still holds
  // the newer clean frame. The device now shows exactly what a scrub scan
  // sees when a write-back lands between its dirty-check and device read:
  // an internally consistent image older than the PRI-certified LSN.
  std::string key;
  for (int i = 0; i < kRecords; i += 150) {
    auto leaf = db->LeafPageOf(Key(i));
    ASSERT_TRUE(leaf.ok());
    if (*leaf == victim) {
      key = Key(i);
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  db->data_device()->CapturePageVersion(victim);
  Txn t = db->BeginTxn();
  ASSERT_TRUE(t.Update(key, "newer").ok());
  ASSERT_TRUE(t.Commit().ok());
  ASSERT_TRUE(db->pool()->FlushPage(victim).ok());
  ASSERT_TRUE(db->pool()->IsCached(victim));
  ASSERT_FALSE(db->pool()->IsDirty(victim));
  ASSERT_TRUE(db->data_device()->InjectStaleVersion(victim));

  auto scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_EQ(scrub->failures_detected, 0u);
  EXPECT_GE(scrub->transient_skips, 1u);

  // Once the pooled copy is gone there is nothing shadowing the stale
  // image: now it IS a failure and the scrubber repairs it forward.
  ASSERT_TRUE(db->pool()->DiscardPage(victim));
  scrub = db->Scrub();
  ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
  EXPECT_EQ(scrub->failures_detected, 1u);
  EXPECT_EQ(scrub->pages_repaired, 1u);
  ASSERT_TRUE(db->CheckOffline(nullptr).ok());
}

}  // namespace
}  // namespace spf
