// Shared helpers for the experiment harness: workload generators, table
// printing, and duration formatting. Every bench binary prints a
// paper-style table on stdout and exits 0; absolute numbers come from the
// simulated clock (see DESIGN.md section 2), so the tables reproduce the
// SHAPE of the paper's section 6 arithmetic regardless of host speed.

#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "db/database.h"

namespace spf {
namespace bench {

/// Smoke mode: CI runs every bench with tiny parameters just to keep the
/// binaries compiling and executing. Enabled by `--smoke` on the command
/// line or the SPF_BENCH_SMOKE environment variable.
inline bool& SmokeFlag() {
  static bool smoke = std::getenv("SPF_BENCH_SMOKE") != nullptr;
  return smoke;
}

inline bool SmokeMode() { return SmokeFlag(); }

/// Call first in main(): enables smoke mode if --smoke is present.
inline void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) SmokeFlag() = true;
  }
}

/// Full-size value normally, tiny value under --smoke.
template <typename T>
inline T Scaled(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

inline std::string Key(int i) {
  char buf[20];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

/// Human-readable simulated duration.
inline std::string FormatSeconds(double s) {
  char buf[64];
  if (s < 1e-6) {
    snprintf(buf, sizeof(buf), "%.1f ns", s * 1e9);
  } else if (s < 1e-3) {
    snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    snprintf(buf, sizeof(buf), "%.1f ms", s * 1e3);
  } else if (s < 120.0) {
    snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s < 7200.0) {
    snprintf(buf, sizeof(buf), "%.1f min", s / 60.0);
  } else {
    snprintf(buf, sizeof(buf), "%.1f h", s / 3600.0);
  }
  return buf;
}

inline std::string FormatBytes(double b) {
  char buf[64];
  if (b < 1024.0) {
    snprintf(buf, sizeof(buf), "%.0f B", b);
  } else if (b < 1024.0 * 1024) {
    snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024 * 1024) {
    snprintf(buf, sizeof(buf), "%.1f MiB", b / (1024.0 * 1024));
  } else {
    snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024 * 1024));
  }
  return buf;
}

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_sep = [&] {
      for (size_t c = 0; c < width.size(); ++c) {
        printf("+%s", std::string(width[c] + 2, '-').c_str());
      }
      printf("+\n");
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        printf("| %-*s ", static_cast<int>(width[c]), cell.c_str());
      }
      printf("|\n");
    };
    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
    print_sep();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Builds a database and loads `n` sequential records in batches.
inline std::unique_ptr<Database> MakeLoadedDb(DatabaseOptions options, int n,
                                              const std::string& value = "v") {
  auto db_or = Database::Create(options);
  SPF_CHECK(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(db_or).value();
  const int kBatch = 1000;
  for (int base = 0; base < n; base += kBatch) {
    Txn t = db->BeginTxn();
    for (int i = base; i < std::min(base + kBatch, n); ++i) {
      SPF_CHECK_OK(t.Insert(Key(i), value + "-" + std::to_string(i)));
    }
    SPF_CHECK_OK(t.Commit());
  }
  return db;
}

/// Builds a database with a full backup and interleaved per-page log
/// chains, then collects up to `burst` victim leaf pages: each of
/// `rounds` transactions updates one key per stride, so different pages'
/// chains alternate within the same log region — the multi-page failure
/// setup of the E8b/E9 serial-vs-batched axes. The pool is left empty.
inline std::unique_ptr<Database> MakeChainedBurstDb(
    DatabaseOptions options, int records, size_t burst,
    std::vector<PageId>* victims, int rounds = 4, int stride = 97) {
  auto db = MakeLoadedDb(options, records);
  SPF_CHECK_OK(db->TakeFullBackup().status());
  for (int round = 0; round < rounds; ++round) {
    Txn t = db->BeginTxn();
    for (int i = 0; i < records; i += stride) {
      SPF_CHECK_OK(t.Update(Key(i), "r" + std::to_string(round)));
    }
    SPF_CHECK_OK(t.Commit());
  }
  SPF_CHECK_OK(db->FlushAll());
  std::set<PageId> leaves;
  for (int i = 0; i < records && leaves.size() < burst; i += stride) {
    auto leaf = db->LeafPageOf(Key(i));
    SPF_CHECK(leaf.ok());
    leaves.insert(*leaf);
  }
  victims->assign(leaves.begin(), leaves.end());
  db->pool()->DiscardAll();
  return db;
}

/// Applies `n` committed single-key updates (each adds one record to the
/// key's per-page chain).
inline void UpdateKeyNTimes(Database* db, int key, int n) {
  for (int i = 0; i < n; ++i) {
    Txn t = db->BeginTxn();
    SPF_CHECK_OK(t.Update(Key(key), "u" + std::to_string(i)));
    SPF_CHECK_OK(t.Commit());
  }
}

/// Default bench device profiles: disk-backed data and log so the paper's
/// I/O arithmetic (10 ms random access, 100 MB/s sequential) applies.
inline DatabaseOptions DiskOptions(uint64_t num_pages) {
  DatabaseOptions o;
  o.num_pages = num_pages;
  o.buffer_frames = 2048;
  o.data_profile = DeviceProfile::Hdd100();
  o.log_profile = DeviceProfile::Hdd100();
  o.backup_profile = DeviceProfile::Hdd100();
  return o;
}

/// CPU-bound profile for detection-overhead microbenches.
inline DatabaseOptions InstantOptions(uint64_t num_pages) {
  DatabaseOptions o;
  o.num_pages = num_pages;
  o.buffer_frames = 4096;
  o.data_profile = DeviceProfile::Instant();
  o.log_profile = DeviceProfile::Instant();
  o.backup_profile = DeviceProfile::Instant();
  return o;
}

}  // namespace bench
}  // namespace spf
