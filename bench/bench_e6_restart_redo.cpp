// E6 — Restart redo with and without write tracking (paper section 5.1.2
// / Figure 4, section 5.2.5).
//
// "The 'redo' pass must read all data pages with logged updates ... These
// random reads in the database dominate the cost of the 'redo' pass. Many
// of these random reads can be avoided if the recovery log indicates which
// pages have been written successfully" — and "log records describing
// updates in the page recovery index also imply successful writes. Thus,
// these log records enable the same speed-up of the 'redo' phase."
//
// Identical crash scenario under the three tracking modes; the pages that
// were flushed before the crash need no redo read when their writes were
// certified. Expected: kCompletedWrites and kPri both slash redo page
// reads and redo time vs. kNone, and match each other.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

struct Result {
  std::string mode;
  RestartStats stats;
};

Result RunMode(WriteTrackingMode mode, const std::string& name) {
  DatabaseOptions options = DiskOptions(Scaled<uint64_t>(8192, 2048));
  options.tracking = mode;
  options.backup_policy.updates_threshold = 0;
  const int records = Scaled(15000, 3000);
  auto db = MakeLoadedDb(options, records);
  SPF_CHECK_OK(db->Checkpoint().status());

  // Post-checkpoint updates over many pages...
  Random rng(3);
  Txn t = db->BeginTxn();
  for (int i = 0; i < Scaled(3000, 600); ++i) {
    SPF_CHECK_OK(t.Update(Key(static_cast<int>(rng.Uniform(records))),
                            "post-checkpoint-update"));
  }
  SPF_CHECK_OK(t.Commit());
  // ...all flushed (their writes complete and, depending on mode, get
  // certified in the log), plus a burst of unflushed updates that redo
  // must genuinely replay.
  SPF_CHECK_OK(db->FlushAll());
  Txn t2 = db->BeginTxn();
  for (int i = 0; i < 300; ++i) {
    SPF_CHECK_OK(t2.Update(Key(i), "unflushed"));
  }
  SPF_CHECK_OK(t2.Commit());

  db->SimulateCrash();
  auto stats = db->Restart();
  SPF_CHECK(stats.ok()) << stats.status().ToString();
  return {name, *stats};
}

void Run() {
  printf("E6: restart redo cost with and without write certifications\n");
  std::vector<Result> results;
  results.push_back(RunMode(WriteTrackingMode::kNone, "none (plain ARIES)"));
  results.push_back(
      RunMode(WriteTrackingMode::kCompletedWrites, "completed writes"));
  results.push_back(RunMode(WriteTrackingMode::kPri, "page recovery index"));

  Table table({"mode", "certifications", "redo page reads", "redo applied",
               "skipped w/o read", "redo time", "restart total"});
  for (const Result& r : results) {
    double total = r.stats.analysis_sim_seconds + r.stats.redo_sim_seconds +
                   r.stats.undo_sim_seconds;
    table.AddRow({r.mode, std::to_string(r.stats.write_certifications_seen),
                  std::to_string(r.stats.redo_page_reads),
                  std::to_string(r.stats.redo_applied),
                  std::to_string(r.stats.redo_skipped_by_dpt),
                  FormatSeconds(r.stats.redo_sim_seconds),
                  FormatSeconds(total)});
  }
  table.Print();
  printf(
      "\nPaper expectation (Figure 4): without write tracking, redo reads\n"
      "every page with logged updates (page 63 AND page 47); completed-write\n"
      "records avoid the read for flushed pages (page 47 skipped); PRI\n"
      "records achieve the SAME redo savings while additionally maintaining\n"
      "the index that enables single-page recovery.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
