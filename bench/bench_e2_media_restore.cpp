// E2 — Media recovery scaling (paper section 6 paragraph 2).
//
// "Restoring a backup with 100 GB of data at 100 MB/s requires 1,000 s or
// about 17 minutes. Restoring a modern disk device of 2 TB at 200 MB/s
// requires 10,000 s or about 3 hours."
//
// Measured rows run the real restore path (sequential backup read +
// device write) on databases the host can hold; the cost model they
// validate (time = 2 * size / rate for read+write at the sequential rate,
// plus replay) is then applied to the paper's exact parameters in the
// clearly-labeled extrapolated rows. "Restore" below counts the backup-
// device read and the data-device write, each at the profile's rate.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

struct Row {
  uint64_t pages;
  DeviceProfile profile;
};

void Run() {
  printf("E2: media recovery time vs database size and transfer rate\n");
  Table table({"database", "rate", "restore", "replay", "total", "kind"});

  std::vector<Row> rows{Row{8192, DeviceProfile::Hdd100()},
                        Row{32768, DeviceProfile::Hdd100()},
                        Row{32768, DeviceProfile::Hdd200()}};
  if (SmokeMode()) rows = {Row{2048, DeviceProfile::Hdd100()}};
  for (const Row& row : rows) {
    DatabaseOptions options = DiskOptions(row.pages);
    options.data_profile = row.profile;
    options.backup_profile = row.profile;
    options.backup_policy.updates_threshold = 0;
    int records = static_cast<int>(row.pages);  // ~1/8 fill
    auto db = MakeLoadedDb(options, records);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    // Post-backup activity: the log tail media recovery must replay.
    Transaction* t = db->Begin();
    for (int i = 0; i < Scaled(2000, 200); ++i) {
      SPF_CHECK_OK(db->Update(t, Key(i * 3 % records), "post-backup"));
    }
    SPF_CHECK_OK(db->Commit(t));
    db->log()->ForceAll();

    db->data_device()->FailDevice();
    db->pool()->DiscardAll();
    auto stats = db->RecoverMedia();
    SPF_CHECK(stats.ok()) << stats.status().ToString();

    table.AddRow(
        {FormatBytes(static_cast<double>(row.pages) * kDefaultPageSize),
         row.profile.name, FormatSeconds(stats->restore_sim_seconds),
         FormatSeconds(stats->replay_sim_seconds),
         FormatSeconds(stats->total_sim_seconds), "measured"});
  }

  // Extrapolated rows: the validated model at the paper's parameters.
  // Restore = read backup + write device, both sequential at `rate`; the
  // paper quotes the one-directional transfer (backup read), so both are
  // shown.
  struct Extrapolated {
    double bytes;
    double rate;
    const char* label;
  };
  for (const Extrapolated& e :
       {Extrapolated{100e9, 100e6, "100 GB @ 100 MB/s (paper: 1,000 s)"},
        Extrapolated{2e12, 200e6, "2 TB @ 200 MB/s (paper: 10,000 s)"}}) {
    double transfer = e.bytes / e.rate;  // the paper's quoted figure
    table.AddRow({e.label, "-", FormatSeconds(transfer),
                  "+ log replay", FormatSeconds(transfer) + " +",
                  "extrapolated"});
  }

  table.Print();
  printf(
      "\nPaper expectation: restore time is device-transfer bound and scales\n"
      "linearly with capacity - 1,000 s for 100 GB at 100 MB/s, 10,000 s for\n"
      "2 TB at 200 MB/s - while a single-page recovery stays ~1 s (E1/E3).\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
