// E2 — Media recovery scaling (paper section 6 paragraph 2).
//
// "Restoring a backup with 100 GB of data at 100 MB/s requires 1,000 s or
// about 17 minutes. Restoring a modern disk device of 2 TB at 200 MB/s
// requires 10,000 s or about 3 hours."
//
// Measured rows run the real restore path (sequential backup read +
// device write) on databases the host can hold; the cost model they
// validate (time = 2 * size / rate for read+write at the sequential rate,
// plus replay) is then applied to the paper's exact parameters in the
// clearly-labeled extrapolated rows. "Restore" below counts the backup-
// device read and the data-device write, each at the profile's rate.

#include <atomic>
#include <thread>

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

struct Row {
  uint64_t pages;
  DeviceProfile profile;
};

void Run() {
  printf("E2: media recovery time vs database size and transfer rate\n");
  Table table({"database", "rate", "restore", "replay", "total", "kind"});

  std::vector<Row> rows{Row{8192, DeviceProfile::Hdd100()},
                        Row{32768, DeviceProfile::Hdd100()},
                        Row{32768, DeviceProfile::Hdd200()}};
  if (SmokeMode()) rows = {Row{2048, DeviceProfile::Hdd100()}};
  for (const Row& row : rows) {
    DatabaseOptions options = DiskOptions(row.pages);
    options.data_profile = row.profile;
    options.backup_profile = row.profile;
    options.backup_policy.updates_threshold = 0;
    int records = static_cast<int>(row.pages);  // ~1/8 fill
    auto db = MakeLoadedDb(options, records);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    // Post-backup activity: the log tail media recovery must replay.
    Txn t = db->BeginTxn();
    for (int i = 0; i < Scaled(2000, 200); ++i) {
      SPF_CHECK_OK(t.Update(Key(i * 3 % records), "post-backup"));
    }
    SPF_CHECK_OK(t.Commit());
    db->log()->ForceAll();

    db->data_device()->FailDevice();
    db->pool()->DiscardAll();
    auto stats = db->RecoverMedia();
    SPF_CHECK(stats.ok()) << stats.status().ToString();

    table.AddRow(
        {FormatBytes(static_cast<double>(row.pages) * kDefaultPageSize),
         row.profile.name, FormatSeconds(stats->restore_sim_seconds),
         FormatSeconds(stats->replay_sim_seconds),
         FormatSeconds(stats->total_sim_seconds), "measured"});
  }

  // Extrapolated rows: the validated model at the paper's parameters.
  // Restore = read backup + write device, both sequential at `rate`; the
  // paper quotes the one-directional transfer (backup read), so both are
  // shown.
  struct Extrapolated {
    double bytes;
    double rate;
    const char* label;
  };
  for (const Extrapolated& e :
       {Extrapolated{100e9, 100e6, "100 GB @ 100 MB/s (paper: 1,000 s)"},
        Extrapolated{2e12, 200e6, "2 TB @ 200 MB/s (paper: 10,000 s)"}}) {
    double transfer = e.bytes / e.rate;  // the paper's quoted figure
    table.AddRow({e.label, "-", FormatSeconds(transfer),
                  "+ log replay", FormatSeconds(transfer) + " +",
                  "extrapolated"});
  }

  table.Print();
  printf(
      "\nPaper expectation: restore time is device-transfer bound and scales\n"
      "linearly with capacity - 1,000 s for 100 GB at 100 MB/s, 10,000 s for\n"
      "2 TB at 200 MB/s - while a single-page recovery stays ~1 s (E1/E3).\n");
}

/// E2b — the partial-vs-full axis: a BOUNDED damaged set routed through
/// Database::RecoverPages' partial-restore rung (sequential backup reads
/// of just the damaged ranges + one shared-segment chain replay, device
/// online) against the same database's full restore-and-replay.
void RunPartialAxis() {
  printf("\nE2b: partial restore vs full restore-and-replay (bounded damage)\n");
  Table table({"database", "damaged", "partial", "full", "speedup"});

  std::vector<size_t> damaged_counts{1, 16, 64};
  uint64_t pages = 8192;
  int records = 15000;
  if (SmokeMode()) {
    damaged_counts = {8};
    pages = 2048;
    records = 2000;
  }
  for (size_t damaged : damaged_counts) {
    DatabaseOptions options = DiskOptions(pages);
    options.backup_policy.updates_threshold = 0;
    options.spr_batch_limit = 0;  // route every batch to partial restore
    // Interleaved post-backup chains on every victim, like E8/E9.
    std::vector<PageId> victims;
    auto db = bench::MakeChainedBurstDb(options, records,
                                        /*burst=*/damaged, &victims,
                                        /*rounds=*/4, /*stride=*/97);
    SPF_CHECK_GE(victims.size(), damaged / 2);

    // Partial: the damaged locations fail reads until rewritten.
    for (PageId v : victims) db->data_device()->FailPageRange(v, 1);
    auto partial = db->RecoverPages(victims);
    SPF_CHECK(partial.ok()) << partial.status().ToString();
    SPF_CHECK(partial->path == RecoveryPath::kPartialRestore);
    double partial_s = partial->media.total_sim_seconds;

    // Full: the same database loses the whole device.
    db->data_device()->FailDevice();
    db->pool()->DiscardAll();
    auto full = db->RecoverMedia();
    SPF_CHECK(full.ok()) << full.status().ToString();
    double full_s = full->total_sim_seconds;

    char speedup[32];
    snprintf(speedup, sizeof(speedup), "%.0fx", full_s / partial_s);
    table.AddRow(
        {FormatBytes(static_cast<double>(pages) * kDefaultPageSize),
         std::to_string(victims.size()) + " pages", FormatSeconds(partial_s),
         FormatSeconds(full_s), speedup});
  }

  table.Print();
  printf(
      "\nExpectation (instant restore, Sauer et al. 2017): restoring only\n"
      "the damaged ranges through the RecoveryScheduler beats the full\n"
      "restore-and-replay by orders of magnitude while the device stays\n"
      "online - >=5x even at 64 damaged pages.\n");
}

/// E2c — restore under live traffic: the rung-5 restore-gate protocol
/// with early admission ON vs OFF. Writer threads keep committing
/// single-update transactions while the device dies and a full restore
/// runs; the interesting numbers are the time to the FIRST post-failure
/// commit (simulated seconds from the failure) and how many commits land
/// while the restore is still in flight. With early admission a parked
/// writer resumes as soon as its pages' segments are restored (served on
/// demand ahead of the sweep); without it, every new transaction waits
/// for the whole device.
void RunRestoreUnderLoadAxis() {
  printf("\nE2c: full restore under live traffic (early admission on vs off)\n");
  // Instant data/log + Hdd100 backup: the restore cost is backup-transfer
  // bound (the paper's model) and the writers' own I/O adds no simulated
  // time, so the sim-clock columns attribute cleanly to the restore.
  // "first-commit" = simulated seconds from the device failure to the
  // first commit of a transaction BEGUN after the failure; "mid-sweep" =
  // such commits that landed while the restore sweep was still running.
  Table table({"admission", "restore", "first-admit", "first-commit",
               "mid-sweep commits", "drained", "doomed"});

  for (bool early : {true, false}) {
    DatabaseOptions options = InstantOptions(Scaled<uint64_t>(8192, 2048));
    options.backup_profile = DeviceProfile::Hdd100();
    options.backup_policy.updates_threshold = 0;
    options.restore_early_admission = early;
    options.restore_segment_pages = 64;
    options.restore_drain_timeout = std::chrono::milliseconds(500);
    const int records = Scaled(8000, 1500);
    auto db = MakeLoadedDb(options, records);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    // Post-backup log tail the restore must replay.
    Txn t = db->BeginTxn();
    for (int i = 0; i < Scaled(1000, 200); ++i) {
      SPF_CHECK_OK(t.Update(Key(i * 3 % records), "post-backup"));
    }
    SPF_CHECK_OK(t.Commit());

    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    std::atomic<uint64_t> mid_sweep_commits{0};
    std::atomic<uint64_t> first_new_commit_ns{UINT64_MAX};
    std::atomic<uint64_t> fail_ns{0};

    constexpr int kWriters = 3;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          bool began_post_failure = failed.load(std::memory_order_acquire);
          Txn txn = db->BeginTxn();  // parks while the gate is closed
          int key = static_cast<int>((w * 1000 + i++) % records);
          Status s = txn.Update(Key(key), "live");
          bool swept = db->restore_gate()->active();
          if (s.ok()) s = txn.Commit();
          if (!s.ok()) {
            (void)txn.Abort();  // single-op txn: nothing logged yet
            continue;
          }
          if (began_post_failure) {
            uint64_t now = db->clock()->NowNanos() - fail_ns.load();
            uint64_t prev = first_new_commit_ns.load();
            while (now < prev &&
                   !first_new_commit_ns.compare_exchange_weak(prev, now)) {
            }
            if (swept) mid_sweep_commits.fetch_add(1);
          }
        }
      });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // warm up
    fail_ns.store(db->clock()->NowNanos());
    db->data_device()->FailDevice();
    failed.store(true, std::memory_order_release);
    auto stats = db->RecoverMedia();
    SPF_CHECK(stats.ok()) << stats.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
    for (auto& th : writers) th.join();

    double first_commit_s =
        first_new_commit_ns.load() == UINT64_MAX
            ? -1
            : static_cast<double>(first_new_commit_ns.load()) * 1e-9;
    table.AddRow(
        {early ? "early" : "at completion",
         FormatSeconds(stats->total_sim_seconds),
         stats->phases.first_admission_sim_s < 0
             ? "-"
             : FormatSeconds(stats->phases.first_admission_sim_s),
         first_commit_s < 0 ? "-" : FormatSeconds(first_commit_s),
         std::to_string(mid_sweep_commits.load()),
         std::to_string(stats->phases.drained),
         std::to_string(stats->phases.doomed)});
  }

  table.Print();
  printf(
      "\nExpectation (instant restore under load): with early admission the\n"
      "first new transaction commits after roughly ONE on-demand segment\n"
      "of backup reads - far below the total restore time - and commits\n"
      "keep landing while the sweep runs; gating admission until completion\n"
      "pushes the first new commit past the whole restore.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  spf::bench::RunPartialAxis();
  spf::bench::RunRestoreUnderLoadAxis();
  return 0;
}
