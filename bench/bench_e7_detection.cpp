// E7 — Cost of continuous verification (paper section 4.2).
//
// The detection story requires that "comprehensive, incremental failure
// detection can be efficient and realistic in high-performance data
// management systems": fence-key checks on every pointer traversal,
// in-page checksums on every buffer fault, and the PageLSN-vs-PRI
// cross-check. This google-benchmark binary measures WALL-CLOCK cost of
// point lookups and inserts under three verification levels on
// instant-profile devices (so CPU cost is isolated).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

enum Level : int {
  kOff = 0,      // no verification at all
  kInPage = 1,   // checksums + header checks on buffer faults only
  kFull = 2,     // + fence keys on every traversal + PRI cross-check
};

DatabaseOptions LevelOptions(Level level) {
  DatabaseOptions o = InstantOptions(16384);
  // Small buffer pool so reads actually fault and exercise the read path.
  o.buffer_frames = 512;
  switch (level) {
    case kOff:
      o.verify_on_read = false;
      o.verify_traversals = false;
      break;
    case kInPage:
      o.verify_on_read = true;
      o.verify_traversals = false;
      break;
    case kFull:
      o.verify_on_read = true;
      o.verify_traversals = true;
      break;
  }
  return o;
}

const char* LevelName(Level level) {
  switch (level) {
    case kOff: return "off";
    case kInPage: return "in-page";
    case kFull: return "full(fences+PRI)";
  }
  return "?";
}

int Records() { return Scaled(50000, 5000); }

Database* SharedDb(Level level) {
  static std::unique_ptr<Database> dbs[3];
  if (!dbs[level]) {
    dbs[level] = MakeLoadedDb(LevelOptions(level), Records());
    SPF_CHECK_OK(dbs[level]->FlushAll());
  }
  return dbs[level].get();
}

void BM_PointLookup(benchmark::State& state) {
  Level level = static_cast<Level>(state.range(0));
  Database* db = SharedDb(level);
  Random rng(1);
  for (auto _ : state) {
    auto v = db->Get(Key(static_cast<int>(rng.Uniform(Records()))));
    benchmark::DoNotOptimize(v);
    SPF_CHECK(v.ok());
  }
  state.SetLabel(LevelName(level));
  state.SetItemsProcessed(state.iterations());
}

void BM_Insert(benchmark::State& state) {
  Level level = static_cast<Level>(state.range(0));
  Database* db = SharedDb(level);
  static int next_key[3] = {10000000, 20000000, 30000000};
  for (auto _ : state) {
    Txn t = db->BeginTxn();
    SPF_CHECK_OK(t.Insert(Key(next_key[level]++), "bench-value"));
    SPF_CHECK_OK(t.Commit());
  }
  state.SetLabel(LevelName(level));
  state.SetItemsProcessed(state.iterations());
}

void BM_ScanRange(benchmark::State& state) {
  Level level = static_cast<Level>(state.range(0));
  Database* db = SharedDb(level);
  Random rng(2);
  for (auto _ : state) {
    int start = static_cast<int>(rng.Uniform(Records() - 200));
    uint64_t n = 0;
    SPF_CHECK_OK(db->Scan(Key(start), Key(start + 200),
                          [&n](std::string_view, std::string_view) {
                            n++;
                            return true;
                          }));
    benchmark::DoNotOptimize(n);
  }
  state.SetLabel(LevelName(level));
  state.SetItemsProcessed(state.iterations() * 200);
}

BENCHMARK(BM_PointLookup)->Arg(kOff)->Arg(kInPage)->Arg(kFull);
BENCHMARK(BM_Insert)->Arg(kOff)->Arg(kInPage)->Arg(kFull);
BENCHMARK(BM_ScanRange)->Arg(kOff)->Arg(kInPage)->Arg(kFull);

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  printf(
      "E7: overhead of continuous verification (section 4.2) - wall-clock\n"
      "cost of operations with verification off / in-page / full.\n"
      "Paper expectation: comprehensive verification as a side effect of\n"
      "standard processing is cheap (single-digit-percent for lookups;\n"
      "checksum cost appears only on buffer faults).\n\n");
  spf::bench::Init(argc, argv);
  // Strip --smoke so Google Benchmark does not reject it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0) argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
