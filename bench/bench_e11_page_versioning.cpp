// E11 — Page versioning via single-page rollback (paper section 5.1.4).
//
// "Snapshot isolation can be implemented by taking an up-to-date copy of a
// database page and rolling it back using 'undo' information in the
// recovery log" — the same per-page log chain that powers single-page
// recovery also materializes historical page versions. This bench sweeps
// the rollback distance (number of chained updates to unwind) and reports
// the cost, which — like single-page recovery — is one random log read
// per record on disk-class log storage, and near-free once the chain is
// cached.

#include "bench_util.h"
#include "core/page_versioning.h"

namespace spf {
namespace bench {
namespace {

void Run() {
  printf("E11: materializing old page versions by per-page rollback\n");
  Table table({"rollback distance", "log reads", "rollback time",
               "verified against history"});

  std::vector<int> distances{1, 10, 50, 200};
  if (SmokeMode()) distances = {1, 10};
  for (int distance : distances) {
    DatabaseOptions options = DiskOptions(4096);
    options.backup_policy.updates_threshold = 0;
    auto db = MakeLoadedDb(options, 1000);

    // Build a known update history on one key and remember the LSN and
    // value after each step.
    auto victim_or = db->LeafPageOf(Key(500));
    SPF_CHECK(victim_or.ok());
    PageId victim = *victim_or;
    std::vector<std::pair<Lsn, std::string>> history;  // (page_lsn, value)
    for (int i = 0; i <= distance; ++i) {
      Txn t = db->BeginTxn();
      std::string value = "version-" + std::to_string(i);
      SPF_CHECK_OK(t.Update(Key(500), value));
      SPF_CHECK_OK(t.Commit());
      auto guard = db->pool()->FixPage(victim, LatchMode::kShared);
      SPF_CHECK(guard.ok());
      history.emplace_back(guard->view().page_lsn(), value);
    }

    // Copy the current page and roll it back to the FIRST recorded state.
    PageBuffer copy(kDefaultPageSize);
    {
      auto guard = db->pool()->FixPage(victim, LatchMode::kShared);
      SPF_CHECK(guard.ok());
      std::memcpy(copy.data(), guard->view().data(), kDefaultPageSize);
    }
    PageVersioning versioning(db->log());
    SimTimer timer(db->clock());
    Status s = versioning.RollBackTo(copy.view(), history.front().first);
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK_OK(s);

    // The rolled-back image must show the historical value.
    BTreeNode node(copy.view());
    auto fr = node.Find(Key(500));
    SPF_CHECK(fr.found);
    bool verified = node.ValueAt(fr.slot) == history.front().second &&
                    copy.view().page_lsn() == history.front().first;
    PageVersionStats stats = versioning.stats();
    table.AddRow({std::to_string(distance), std::to_string(stats.log_reads),
                  FormatSeconds(elapsed), verified ? "yes" : "NO"});
  }
  table.Print();
  printf(
      "\nPaper expectation: version distance N costs N chained log reads -\n"
      "the same linear-in-chain-length behavior as single-page recovery\n"
      "(E3), because both walk the identical per-page chain, one applying\n"
      "redo forward from a backup, the other undo backward from the\n"
      "current image.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
