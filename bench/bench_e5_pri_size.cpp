// E5 — Page recovery index size (paper section 5.2.2).
//
// "In the worst case, the size of the page recovery index may reach about
// 16 bytes per database page or about 1 permille of the database size.
// Thus, it seems reasonable to keep the page recovery index in memory at
// all times." And: "an ordered index (as opposed to a hash index) permits
// the best compression ... a single entry should cover a large range of
// pages if they all have the same mapping, e.g., a backup of the entire
// database."
//
// Sweep: database size x update pattern, reporting entry counts, bytes
// per covered page, and permille of the database.

#include "bench_util.h"
#include "common/random.h"
#include "core/pri.h"

namespace spf {
namespace bench {
namespace {

struct Pattern {
  const char* name;
  double update_fraction;  // pages updated since the full backup
  bool zipf;
};

void Run() {
  printf("E5: page recovery index size vs. database size and update skew\n");
  Table table({"db pages", "db size", "pattern", "entries", "PRI bytes",
               "bytes/page", "permille of db"});

  std::vector<uint64_t> sizes{16384ull, 131072ull, 1048576ull};
  if (SmokeMode()) sizes = {16384ull};
  for (uint64_t pages : sizes) {
    for (const Pattern& p :
         {Pattern{"fresh full backup", 0.0, false},
          Pattern{"1% updated, uniform", 0.01, false},
          Pattern{"25% updated, uniform", 0.25, false},
          Pattern{"25% of volume, zipf .99", 0.25, true},
          Pattern{"100% updated (worst case)", 1.0, false}}) {
      PageRecoveryIndex pri(pages);
      pri.RecordFullBackup(1);

      uint64_t updates = static_cast<uint64_t>(p.update_fraction *
                                               static_cast<double>(pages));
      if (p.zipf) {
        ZipfGenerator zipf(pages, 0.99, 5);
        for (uint64_t i = 0; i < updates; ++i) {
          pri.RecordWrite(zipf.Next(), 1000 + i);
        }
      } else if (p.update_fraction >= 1.0) {
        for (PageId i = 0; i < pages; ++i) pri.RecordWrite(i, 1000 + i);
      } else {
        Random rng(11);
        for (uint64_t i = 0; i < updates; ++i) {
          pri.RecordWrite(rng.Uniform(pages), 1000 + i);
        }
      }

      double db_bytes = static_cast<double>(pages) * kDefaultPageSize;
      double pri_bytes = static_cast<double>(pri.approx_bytes());
      char bpp[32], permille[32];
      snprintf(bpp, sizeof(bpp), "%.2f",
               pri_bytes / static_cast<double>(pages));
      snprintf(permille, sizeof(permille), "%.3f",
               pri_bytes / db_bytes * 1000.0);
      table.AddRow({std::to_string(pages), FormatBytes(db_bytes), p.name,
                    std::to_string(pri.entry_count()), FormatBytes(pri_bytes),
                    bpp, permille});
    }
  }
  table.Print();
  printf(
      "\nPaper expectation: range compression collapses a freshly backed-up\n"
      "database to near-zero (one entry per window); the worst case stays\n"
      "tens of bytes per page, i.e. a few permille of the database - small\n"
      "enough to pin in memory. Skewed (zipf) updates touch fewer distinct\n"
      "pages and compress better than uniform updates of the same volume.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
