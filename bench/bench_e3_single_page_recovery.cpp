// E3 — Single-page recovery time vs. per-page chain length (paper
// section 6 paragraph 4).
//
// "It may take dozens of I/Os in order to read the required log records in
// the recovery log plus one I/O for the backup page. Thus, pure I/O time
// should perhaps be 1 s. ... The number of log records that must be
// retrieved and applied to the backup page equals the number of updates
// since the last page backup." — with a 10 ms random-read disk, chain
// length N costs roughly N * 10 ms + one backup read, so the backup-
// every-N policy directly bounds worst-case repair time. This bench sweeps
// N and verifies both the linearity and the "about a second for dozens"
// magnitude.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

void Run() {
  printf(
      "E3: single-page recovery time vs. updates since the last page "
      "backup\n(log on %s: 10 ms per random log-record read)\n",
      DeviceProfile::Hdd100().name.c_str());

  Table table({"chain length", "log reads", "backup reads", "repair time",
               "time per record"});

  std::vector<int> chains{1, 5, 10, 25, 50, 100, 250, 500, 1000};
  if (SmokeMode()) chains = {1, 5, 10};
  for (int chain : chains) {
    DatabaseOptions options = DiskOptions(4096);
    options.backup_policy.updates_threshold = 0;  // no automatic backups
    auto db = MakeLoadedDb(options, 2000);
    SPF_CHECK_OK(db->TakeFullBackup().status());

    // Exactly `chain` updates of one key after the backup; each appends
    // one record to its leaf's per-page chain.
    UpdateKeyNTimes(db.get(), 1000, chain);
    SPF_CHECK_OK(db->FlushAll());
    auto victim = db->LeafPageOf(Key(1000));
    SPF_CHECK(victim.ok());
    db->pool()->DiscardAll();
    db->data_device()->InjectSilentCorruption(*victim);
    db->single_page_recovery()->ResetStats();

    SimTimer timer(db->clock());
    auto v = db->Get(Key(1000));
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK(v.ok()) << v.status().ToString();

    auto spr = db->single_page_recovery()->stats();
    table.AddRow({std::to_string(spr.last_chain_length),
                  std::to_string(spr.log_reads),
                  std::to_string(spr.backup_reads), FormatSeconds(elapsed),
                  FormatSeconds(spr.last_chain_length > 0
                                    ? elapsed / spr.last_chain_length
                                    : 0)});
  }
  table.Print();

  printf(
      "\nBackup-every-N policy bound (section 6: \"fast single-page recovery\n"
      "can be ensured with a page backup after a number of updates\"):\n");
  Table policy({"policy threshold N", "worst-case chain", "worst-case repair"});
  for (int n : {10, 100, 1000}) {
    double worst = n * 0.010 + 0.010;  // N random log reads + 1 backup read
    policy.AddRow({std::to_string(n), std::to_string(n), FormatSeconds(worst)});
  }
  policy.Print();
  printf(
      "\nPaper expectation: repair time is linear in the chain length at\n"
      "~one random log I/O per update since the last backup; dozens of\n"
      "records => ~1 s; the delay is absorbed inside the waiting\n"
      "transaction, which never aborts.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
