// E15 — the sorted log archive: repair and restore go sequential.
//
// The tail-only chain walk pays one random log read per update since the
// page's last backup (E3's linearity). With the archiver draining the log
// into runs sorted by (page id, LSN), the same chain comes back from a
// handful of positioned sequential archive reads, and a media restore's
// replay plan shrinks its log scan to the unarchived tail while archived
// history arrives pre-partitioned per segment. Two axes:
//
//   E15a  single-page repair: tail chain walk vs archive run merge, with
//         the repaired images required to be byte-identical;
//   E15b  full media restore: replay fed by the raw tail scan vs by the
//         sorted runs plus the residual tail.
//
// `--dump-archive PATH` additionally writes the raw archive volume (every
// page, directory + runs) to PATH so tools/check_archive.py can fsck the
// on-disk format offline — CI wires the two together.

#include <string>

#include "bench_util.h"
#include "log/log_archive.h"
#include "log/log_source.h"

namespace spf {
namespace bench {
namespace {

void RunRepairAxis() {
  printf(
      "E15a: single-page repair, tail chain walk vs sorted-run merge\n"
      "(log and archive on %s: 10 ms seek, 100 MB/s sequential)\n",
      DeviceProfile::Hdd100().name.c_str());

  Table table({"chain length", "tail repair", "tail log reads",
               "archive repair", "archive page reads", "identical"});

  std::vector<int> chains{25, 100, 400};
  if (SmokeMode()) chains = {10};
  for (int chain : chains) {
    DatabaseOptions options = DiskOptions(4096);
    options.backup_policy.updates_threshold = 0;  // chain anchors at backup
    auto db = MakeLoadedDb(options, 2000);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    UpdateKeyNTimes(db.get(), 1000, chain);
    SPF_CHECK_OK(db->FlushAll());
    auto victim = db->LeafPageOf(Key(1000));
    SPF_CHECK(victim.ok());
    const uint32_t page_size = db->options().page_size;
    std::vector<char> ref(page_size);
    db->data_device()->RawRead(*victim, ref.data());

    SinglePageRecovery* spr = db->single_page_recovery();

    // Baseline: the per-page chain walked backward through the log tail,
    // one random read per record.
    spr->SetLogSource(nullptr);
    SPF_CHECK(db->pool()->DiscardPage(*victim));
    db->data_device()->InjectSilentCorruption(*victim);
    uint64_t log_reads_before = spr->stats().log_reads;
    SimTimer tail_timer(db->clock());
    std::vector<char> tail_img(page_size);
    SPF_CHECK_OK(spr->RepairPage(*victim, tail_img.data()));
    double tail_s = tail_timer.ElapsedSeconds();
    uint64_t tail_reads = spr->stats().log_reads - log_reads_before;

    // Archived: drain the whole log into sorted runs, then repair the
    // same page through the run merge (positioned sequential reads).
    SPF_CHECK_OK(db->archiver()->ArchiveAll());
    ArchiveLogSource archive_source(db->archiver(), db->log());
    spr->SetLogSource(&archive_source);
    SPF_CHECK(db->pool()->DiscardPage(*victim));
    db->data_device()->InjectSilentCorruption(*victim);
    uint64_t merge_reads_before = db->archiver()->stats().merge_reads;
    SimTimer archive_timer(db->clock());
    std::vector<char> archive_img(page_size);
    SPF_CHECK_OK(spr->RepairPage(*victim, archive_img.data()));
    double archive_s = archive_timer.ElapsedSeconds();
    uint64_t archive_reads =
        db->archiver()->stats().merge_reads - merge_reads_before;
    spr->SetLogSource(nullptr);  // archive_source dies with this scope

    bool identical =
        std::memcmp(tail_img.data(), ref.data(), page_size) == 0 &&
        std::memcmp(archive_img.data(), ref.data(), page_size) == 0;
    SPF_CHECK(identical) << "repaired images diverged at chain " << chain;
    table.AddRow({std::to_string(chain), FormatSeconds(tail_s),
                  std::to_string(tail_reads), FormatSeconds(archive_s),
                  std::to_string(archive_reads), "yes"});
  }
  table.Print();
  printf(
      "\nExpectation: the tail walk is linear at ~one random log I/O per\n"
      "chain record; the archive repair reads a few sequential run pages\n"
      "regardless of chain length, and both produce the same bytes.\n");
}

void RunRestoreAxis() {
  printf("\nE15b: media restore replay, raw tail scan vs sorted runs + tail\n");
  Table table({"replay source", "records scanned", "redo applied",
               "replay", "total", "archive page reads"});

  for (bool archived : {false, true}) {
    DatabaseOptions options = DiskOptions(Scaled<uint64_t>(8192, 2048));
    options.backup_policy.updates_threshold = 0;
    const int records = Scaled(8000, 1500);
    auto db = MakeLoadedDb(options, records);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    // Post-backup history the restore must replay.
    for (int round = 0; round < 4; ++round) {
      Txn t = db->BeginTxn();
      for (int i = 0; i < Scaled(500, 100); ++i) {
        SPF_CHECK_OK(t.Update(Key(i * 3 % records), "r" + std::to_string(round)));
      }
      SPF_CHECK_OK(t.Commit());
    }
    db->log()->ForceAll();
    if (archived) SPF_CHECK_OK(db->archiver()->ArchiveAll());
    uint64_t merge_reads_before = db->archiver()->stats().merge_reads;

    db->data_device()->FailDevice();
    db->pool()->DiscardAll();
    auto stats = db->RecoverMedia();
    SPF_CHECK(stats.ok()) << stats.status().ToString();
    uint64_t archive_reads =
        db->archiver()->stats().merge_reads - merge_reads_before;

    // Same end state either way.
    auto check = db->Get(Key(0));
    SPF_CHECK(check.ok()) << check.status().ToString();
    SPF_CHECK(*check == "r3");

    table.AddRow({archived ? "sorted runs + tail" : "raw tail scan",
                  std::to_string(stats->records_scanned),
                  std::to_string(stats->redo_applied),
                  FormatSeconds(stats->replay_sim_seconds),
                  FormatSeconds(stats->total_sim_seconds),
                  std::to_string(archive_reads)});
  }
  table.Print();
  printf(
      "\nExpectation: with the history archived, the replay plan's log scan\n"
      "covers only the unarchived tail (records scanned drops) while the\n"
      "archived records stream from sorted runs per restore segment; the\n"
      "redo work and the restored state are identical.\n");
}

/// Writes the raw archive volume (directory pages + run extents, every
/// page verbatim) to `path` for tools/check_archive.py. Built with tiny
/// runs and a small fan-in so the dump exercises level-0 cuts, merged
/// runs, and the double-buffered directory.
void DumpArchive(const std::string& path) {
  DatabaseOptions options = InstantOptions(2048);
  options.archive_run_bytes = 4 * 1024;
  options.archive_merge_fanin = 3;
  auto db = MakeLoadedDb(options, Scaled(400, 150));
  SPF_CHECK_OK(db->archiver()->ArchiveAll());
  SPF_CHECK_GT(db->archiver()->stats().runs_written, 0u);

  SimDevice* dev = db->archive_device();
  FILE* f = fopen(path.c_str(), "wb");
  SPF_CHECK(f != nullptr) << "cannot open " << path;
  std::vector<char> page(dev->page_size());
  for (PageId p = 0; p < dev->num_pages(); ++p) {
    dev->RawRead(p, page.data());
    SPF_CHECK_EQ(fwrite(page.data(), 1, page.size(), f), page.size());
  }
  SPF_CHECK_EQ(fclose(f), 0);
  printf("\ndumped archive volume: %s (%" PRIu64 " pages x %u bytes, %zu runs)\n",
         path.c_str(), dev->num_pages(), dev->page_size(),
         db->archiver()->runs().size());
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  std::string dump_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dump-archive") == 0) dump_path = argv[i + 1];
  }
  spf::bench::RunRepairAxis();
  spf::bench::RunRestoreAxis();
  if (!dump_path.empty()) spf::bench::DumpArchive(dump_path);
  return 0;
}
