// E1 — Recovery time by failure class (paper section 6 paragraphs 1-3,
// Figure 1).
//
// Reproduces the paper's central comparison: transaction rollback takes
// well under a second; single-page recovery is "closest to that of
// transaction rollback ... a second or less" (dozens of log I/Os plus one
// backup-page I/O on disk-class storage); system restart takes seconds to
// a minute depending on checkpoint distance; media recovery is bounded by
// sequentially re-transferring the whole device plus log replay — minutes
// to hours. The decisive ordering to verify:
//
//   rollback  ~  single-page  <<  system restart  <<  media recovery
//
// All times are simulated I/O time on the hdd-100MBps profile (10 ms
// random access, 100 MB/s sequential), matching the section 6 arithmetic.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

uint64_t Pages() { return Scaled<uint64_t>(16384, 2048); }  // 128 MiB full
int Records() { return Scaled(30000, 3000); }

void Run() {
  const uint64_t kPages = Pages();
  const int kRecords = Records();
  printf("E1: recovery time by failure class (data+log on %s, %s database)\n",
         DeviceProfile::Hdd100().name.c_str(),
         FormatBytes(static_cast<double>(kPages) * kDefaultPageSize).c_str());

  DatabaseOptions options = DiskOptions(kPages);
  options.backup_policy.updates_threshold = 0;  // explicit backups only
  auto db = MakeLoadedDb(options, kRecords);
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->Checkpoint().status());

  Table table({"failure class", "scope", "txns aborted", "recovery time",
               "technique"});

  // --- transaction failure: rollback of one 40-update transaction ------------
  {
    Txn t = db->BeginTxn();
    for (int i = 0; i < 40; ++i) {
      SPF_CHECK_OK(t.Update(Key(i * 13 + 1), "doomed"));
    }
    SimTimer timer(db->clock());
    SPF_CHECK_OK(t.Abort());
    table.AddRow({"transaction", "1 transaction", "1",
                  FormatSeconds(timer.ElapsedSeconds()),
                  "per-txn chain + compensation"});
  }

  // --- single-page failure: ~40-record chain, repaired online ----------------
  {
    // Build a page whose per-page chain has ~40 records since its backup
    // ("dozens of I/Os", section 6).
    UpdateKeyNTimes(db.get(), 777, 40);
    SPF_CHECK_OK(db->FlushAll());
    auto victim = db->LeafPageOf(Key(777));
    SPF_CHECK(victim.ok());
    db->pool()->DiscardAll();
    db->data_device()->InjectSilentCorruption(*victim);

    Txn reader = db->BeginTxn();
    SimTimer timer(db->clock());
    auto v = reader.Get(Key(777));
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK(v.ok()) << v.status().ToString();
    SPF_CHECK_OK(reader.Commit());
    auto spr = db->single_page_recovery()->stats();
    table.AddRow({"single-page", "1 page", "0",
                  FormatSeconds(elapsed),
                  "PRI + per-page chain (" +
                      std::to_string(spr.last_chain_length) + " records)"});
  }

  // --- system failure: crash + ARIES restart ---------------------------------
  {
    // Post-checkpoint activity so restart has real analysis/redo/undo work.
    Txn t = db->BeginTxn();
    for (int i = 0; i < 2000; ++i) {
      SPF_CHECK_OK(t.Put(Key(kRecords + i), "post-ckpt"));
    }
    SPF_CHECK_OK(t.Commit());
    Txn loser = db->BeginTxn();
    for (int i = 0; i < 50; ++i) {
      SPF_CHECK_OK(loser.Update(Key(i * 7 + 3), "loser"));
    }
    db->log()->ForceAll();
    size_t active = db->txns()->active_count();

    db->SimulateCrash();
    SimTimer timer(db->clock());
    auto stats = db->Restart();
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK(stats.ok()) << stats.status().ToString();
    table.AddRow({"system", "whole system", std::to_string(active),
                  FormatSeconds(elapsed),
                  "ARIES analysis/redo/undo (" +
                      std::to_string(stats->redo_applied) + " redone)"});
  }

  // --- media failure: restore full backup + replay ----------------------------
  {
    Txn active1 = db->BeginTxn();
    SPF_CHECK_OK(active1.Update(Key(1), "in-flight"));
    db->log()->ForceAll();
    size_t active = db->txns()->active_count();
    db->data_device()->FailDevice();
    db->pool()->DiscardAll();

    SimTimer timer(db->clock());
    auto stats = db->RecoverMedia();
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK(stats.ok()) << stats.status().ToString();
    table.AddRow({"media", "whole device", std::to_string(active),
                  FormatSeconds(elapsed),
                  "restore " + std::to_string(stats->pages_restored) +
                      " pages + replay " +
                      std::to_string(stats->redo_applied) + " records"});
  }

  table.Print();
  printf(
      "\nPaper expectation (section 6): rollback < 1 s; single-page recovery\n"
      "\"a second or less\" and closest to rollback; system recovery about a\n"
      "minute; media recovery minutes-to-hours (scales with device size; see\n"
      "bench_e2_media_restore for the 100 GB / 2 TB data points).\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
