// E13: WriteBatch vs per-op facade throughput.
//
// The v2 facade brackets every data operation for the restore-gate
// protocol (in-flight registration with two sequentially-consistent
// atomics, doomed-handle admission check, deferred-rollback reap).
// Txn::Apply pays that bracket once per BATCH instead of once per op.
// This bench measures the amortization on a CPU-bound configuration
// (Instant device profiles — simulated I/O is free, so the facade and
// tree CPU path is the whole cost), in host wall-clock time: updates
// applied per-op vs in WriteBatch groups of increasing size.

#include <chrono>

#include "bench_util.h"

using namespace spf;
using namespace spf::bench;

namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Applies `total` single-key updates per-op; returns wall seconds.
double RunPerOp(Database* db, int total, int txn_size) {
  auto start = std::chrono::steady_clock::now();
  for (int base = 0; base < total; base += txn_size) {
    Txn t = db->BeginTxn();
    for (int i = base; i < base + txn_size && i < total; ++i) {
      SPF_CHECK_OK(t.Update(Key(i), "per-op"));
    }
    SPF_CHECK_OK(t.Commit());
  }
  return WallSeconds(start);
}

/// Applies `total` updates in WriteBatch groups of `batch_size` (same
/// transaction boundaries as RunPerOp); returns wall seconds.
double RunBatched(Database* db, int total, int txn_size, int batch_size) {
  auto start = std::chrono::steady_clock::now();
  for (int base = 0; base < total; base += txn_size) {
    Txn t = db->BeginTxn();
    for (int b = base; b < base + txn_size && b < total; b += batch_size) {
      WriteBatch batch;
      for (int i = b; i < b + batch_size && i < base + txn_size && i < total;
           ++i) {
        batch.Update(Key(i), "batched");
      }
      SPF_CHECK_OK(t.Apply(std::move(batch)));
    }
    SPF_CHECK_OK(t.Commit());
  }
  return WallSeconds(start);
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  const int records = Scaled(200000, 4000);
  const int total = Scaled(100000, 2000);
  const int txn_size = 1000;  // one commit (log force) per 1000 updates

  DatabaseOptions options = InstantOptions(/*num_pages=*/32768);
  auto db = MakeLoadedDb(options, records);

  printf("E13: per-op facade bracket vs one WriteBatch bracket per group\n");
  printf("(%d committed updates, %d per transaction, wall-clock host time;\n"
         " Instant profiles: simulated I/O free, facade+tree CPU is the cost)\n\n",
         total, txn_size);

  Table table({"mode", "wall time", "ops/s", "vs per-op"});
  // Warm the pool and the tree before timing anything.
  (void)RunPerOp(db.get(), total, txn_size);

  double per_op_s = RunPerOp(db.get(), total, txn_size);
  char buf[64];
  snprintf(buf, sizeof(buf), "%.0f", total / per_op_s);
  table.AddRow({"per-op", FormatSeconds(per_op_s), buf, "1.00x"});

  for (int batch_size : {8, 64, 256}) {
    double s = RunBatched(db.get(), total, txn_size, batch_size);
    char ops[64], speed[64], mode[64];
    snprintf(mode, sizeof(mode), "WriteBatch(%d)", batch_size);
    snprintf(ops, sizeof(ops), "%.0f", total / s);
    snprintf(speed, sizeof(speed), "%.2fx", per_op_s / s);
    table.AddRow({mode, FormatSeconds(s), ops, speed});
  }
  table.Print();

  printf("\nthe batch pays the facade bracket (2 seq-cst atomics + doomed\n"
         "check + reap) once per group instead of once per update; larger\n"
         "groups amortize further until tree work dominates\n");
  return 0;
}
