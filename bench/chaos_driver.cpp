// chaos_driver: seed-replayable randomized torture driver (tools/chaos).
//
//   chaos_driver --seed 42 --trace-out run.chaos   # generate + run + record
//   chaos_driver --replay run.chaos                # byte-exact re-run
//   chaos_driver --schedule mix.chaos              # pinned scenario mix
//
// Exit status: 0 = clean run (and, under --replay with a recorded result
// footer, digests matched); 1 = invariant violations or digest mismatch;
// 2 = usage / I/O error.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/chaos_driver.h"
#include "chaos/chaos_schedule.h"

namespace {

using spf::chaos::ChaosDriver;
using spf::chaos::ChaosReport;
using spf::chaos::ChaosSchedule;
using spf::chaos::TraceResult;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N | --schedule FILE | --replay FILE]\n"
               "          [--trace-out FILE] [--writers N] [--txns N]\n"
               "          [--smoke] [--quiet]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  bool have_seed = false;
  std::string schedule_path;
  std::string replay_path;
  std::string trace_out;
  uint64_t writers_override = 0;
  uint64_t txns_override = 0;
  bool smoke = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed = std::strtoull(v, nullptr, 0);
      have_seed = true;
    } else if (arg == "--schedule") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      schedule_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      replay_path = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      trace_out = v;
    } else if (arg == "--writers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      writers_override = std::strtoull(v, nullptr, 0);
    } else if (arg == "--txns") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      txns_override = std::strtoull(v, nullptr, 0);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if ((have_seed ? 1 : 0) + (schedule_path.empty() ? 0 : 1) +
          (replay_path.empty() ? 0 : 1) >
      1) {
    std::fprintf(stderr, "--seed, --schedule, and --replay are exclusive\n");
    return 2;
  }

  ChaosSchedule sched;
  TraceResult recorded;
  if (!schedule_path.empty() || !replay_path.empty()) {
    const std::string& path =
        replay_path.empty() ? schedule_path : replay_path;
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    auto parsed = spf::chaos::ParseSchedule(text, &recorded);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad schedule %s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    sched = std::move(parsed).value();
  } else {
    sched = spf::chaos::GenerateSchedule(seed);
  }
  if (writers_override != 0) {
    sched.writers = uint32_t(writers_override);
  }
  if (txns_override != 0) {
    sched.txns_per_writer = uint32_t(txns_override);
  }
  if (smoke) {
    // Bounded variant for per-PR CI: same schedule shape, shorter run.
    sched.txns_per_writer = std::min<uint32_t>(sched.txns_per_writer, 24);
    sched.seed_records = std::min<uint32_t>(sched.seed_records, 600);
  }

  ChaosDriver driver(sched);
  ChaosReport report = driver.Run(/*verbose=*/!quiet);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 2;
    }
    out << spf::chaos::SerializeTrace(sched, report.ToTraceResult());
  }

  std::printf("schedule-digest=%llu shadow-digest=%llu committed=%llu "
              "events=%llu violations=%zu\n",
              (unsigned long long)report.schedule_digest,
              (unsigned long long)report.shadow_digest,
              (unsigned long long)report.committed_txns,
              (unsigned long long)report.events_fired,
              report.violations.size());
  for (const std::string& v : report.violations) {
    std::printf("VIOLATION: %s\n", v.c_str());
  }

  bool ok = report.ok();
  // Replay contract: when the trace carries a recorded result and the
  // workload shape was not overridden, the re-run must land on the very
  // same digests.
  if (!replay_path.empty() && recorded.present && writers_override == 0 &&
      txns_override == 0 && !smoke) {
    if (recorded.schedule_digest != report.schedule_digest) {
      std::printf("REPLAY MISMATCH: schedule digest %llu != recorded %llu\n",
                  (unsigned long long)report.schedule_digest,
                  (unsigned long long)recorded.schedule_digest);
      ok = false;
    }
    if (recorded.shadow_digest != report.shadow_digest) {
      std::printf("REPLAY MISMATCH: shadow digest %llu != recorded %llu\n",
                  (unsigned long long)report.shadow_digest,
                  (unsigned long long)recorded.shadow_digest);
      ok = false;
    }
    if (recorded.committed_txns != report.committed_txns) {
      std::printf("REPLAY MISMATCH: committed %llu != recorded %llu\n",
                  (unsigned long long)report.committed_txns,
                  (unsigned long long)recorded.committed_txns);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
