// E4 — Logging overhead of PRI maintenance (paper sections 5.2.4, 7).
//
// The claim: "the logging effort for the page recovery index can be
// negligible as it is equal to the effort for logging completed writes,
// which some real systems already do". This bench runs an identical
// update workload under the three write-tracking modes and counts log
// records and bytes:
//   kNone            — plain ARIES, nothing logged after a page write;
//   kCompletedWrites — one kPageWriteCompleted record per write (5.1.2);
//   kPri             — one kPriUpdate record per write (5.2.4).
// Expected: identical tracking-record COUNTS for the last two modes, a
// few bytes more per record for the PRI (it carries the backup ref), and
// single-digit-percent byte overhead vs. plain ARIES.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

struct ModeResult {
  std::string name;
  uint64_t total_records = 0;
  uint64_t tracking_records = 0;
  uint64_t total_bytes = 0;
  uint64_t write_backs = 0;
};

ModeResult RunMode(WriteTrackingMode mode, const std::string& name) {
  DatabaseOptions options = InstantOptions(8192);
  options.tracking = mode;
  options.backup_policy.updates_threshold = 0;  // isolate tracking cost
  const int records = Scaled(10000, 2000);
  auto db = MakeLoadedDb(options, records);

  LogStats before = db->log()->stats();
  uint64_t wb_before = db->pool()->stats().write_backs;

  // 200 committed transactions of 20 updates, with periodic flushes so
  // write-backs (and their tracking records) actually happen.
  Random rng(7);
  for (int txn_i = 0; txn_i < Scaled(200, 20); ++txn_i) {
    Txn t = db->BeginTxn();
    for (int op = 0; op < 20; ++op) {
      SPF_CHECK_OK(t.Update(Key(static_cast<int>(rng.Uniform(records))),
                              "updated-" + std::to_string(op)));
    }
    SPF_CHECK_OK(t.Commit());
    if (txn_i % 20 == 19) SPF_CHECK_OK(db->FlushAll());
  }

  LogStats after = db->log()->stats();
  ModeResult r;
  r.name = name;
  r.total_records = after.records_appended - before.records_appended;
  r.total_bytes = after.bytes_appended - before.bytes_appended;
  r.write_backs = db->pool()->stats().write_backs - wb_before;
  auto count = [&](LogRecordType type) -> uint64_t {
    uint64_t b = before.per_type.count(type) ? before.per_type.at(type) : 0;
    uint64_t a = after.per_type.count(type) ? after.per_type.at(type) : 0;
    return a - b;
  };
  r.tracking_records = count(LogRecordType::kPageWriteCompleted) +
                       count(LogRecordType::kPriUpdate);
  return r;
}

void Run() {
  printf("E4: log volume under the three write-tracking modes\n");
  ModeResult none = RunMode(WriteTrackingMode::kNone, "none (plain ARIES)");
  ModeResult cw = RunMode(WriteTrackingMode::kCompletedWrites,
                          "completed-write records (5.1.2)");
  ModeResult pri = RunMode(WriteTrackingMode::kPri, "PRI maintenance (5.2.4)");

  Table table({"mode", "page writes", "tracking records", "total records",
               "total log bytes", "bytes vs. plain"});
  for (const ModeResult& r : {none, cw, pri}) {
    double overhead = none.total_bytes > 0
                          ? 100.0 * (static_cast<double>(r.total_bytes) -
                                     static_cast<double>(none.total_bytes)) /
                                static_cast<double>(none.total_bytes)
                          : 0.0;
    char pct[32];
    snprintf(pct, sizeof(pct), "%+.1f%%", overhead);
    table.AddRow({r.name, std::to_string(r.write_backs),
                  std::to_string(r.tracking_records),
                  std::to_string(r.total_records),
                  FormatBytes(static_cast<double>(r.total_bytes)), pct});
  }
  table.Print();

  printf(
      "\nPaper expectation: the PRI writes THE SAME NUMBER of tracking\n"
      "records as the completed-writes optimization (one per completed page\n"
      "write: here %" PRIu64 " vs %" PRIu64
      "), and the total log volume grows only a few percent\n"
      "over plain ARIES. The PRI additionally subsumes the restart speedup\n"
      "of logging completed writes (see bench_e6_restart_redo).\n",
      pri.tracking_records, cw.tracking_records);
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
