// E14: multi-threaded OLTP commit throughput through the sharded hot path
// and the group-commit log.
//
// Configuration: Instant data/backup devices and an Hdd100 log device, so
// the ONLY simulated cost in the workload is the log's commit sync — the
// axis the paper's section-6 arithmetic prices transaction durability on.
// Throughput is therefore reported in SIMULATED time: with one writer,
// every user commit pays its own device sync; with N writers, group
// commit coalesces concurrent committers into one sync per batch, and the
// simulated commits-per-second scale with the average group size. Host
// wall-clock time plays no part in the numbers (the host may have any
// number of cores); the linger window (`group_commit_interval`) only
// gives concurrent committers wall time to join a batch.
//
// Axes: writer-thread count {1, 2, 4, 8} x {uncontended, contended}.
// Uncontended writers own disjoint key ranges (different lock shards,
// different B-tree leaves); contended writers fight over 8 hot keys, so
// lock waits/timeouts throttle how many committers can overlap.

#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/sim_clock.h"

using namespace spf;
using namespace spf::bench;

namespace {

struct CellResult {
  uint64_t commits = 0;       // acknowledged commits across all threads
  uint64_t attempts = 0;      // commit attempts (contended cells lose some)
  double sim_seconds = 0;     // simulated time spent in the writer phase
  uint64_t syncs = 0;         // log device syncs (LogStats::forces)
  double avg_group = 0;       // committers released per sync
  uint64_t lock_waits = 0;    // requests that blocked
  uint64_t lock_timeouts = 0; // waits resolved as deadlock
};

CellResult RunCell(int threads, int txns_per_thread, bool contended) {
  DatabaseOptions options;
  options.num_pages = 16384;
  options.buffer_frames = 4096;
  options.data_profile = DeviceProfile::Instant();
  options.backup_profile = DeviceProfile::Instant();
  options.log_profile = DeviceProfile::Hdd100();
  // The linger window lets concurrent committers coalesce: the drainer
  // holds a batch open this much wall time after the first Force arrives.
  options.group_commit_interval = std::chrono::microseconds(500);
  auto db_or = Database::Create(options);
  SPF_CHECK(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(db_or).value();

  constexpr int kHotKeys = 8;
  constexpr int kKeysPerTxn = 2;

  // Seed the contended hot set so every writer updates existing keys.
  if (contended) {
    Txn t = db->BeginTxn();
    for (int k = 0; k < kHotKeys; ++k) SPF_CHECK_OK(t.Put(Key(k), "seed"));
    SPF_CHECK_OK(t.Commit());
  }

  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> attempts{0};
  LogStats log_before = db->log()->stats();
  LockManagerStats locks_before = db->Stats().locks;
  SimTimer timer(db->clock());

  std::vector<std::thread> writers;
  for (int w = 0; w < threads; ++w) {
    writers.emplace_back([&, w] {
      for (int t = 0; t < txns_per_thread; ++t) {
        Txn txn = db->BeginTxn();
        bool ok = true;
        for (int k = 0; k < kKeysPerTxn; ++k) {
          int key = contended ? (w + t + k) % kHotKeys
                              : w * 1000000 + (t * kKeysPerTxn + k) % 500;
          if (!txn.Put(Key(key), "e14").ok()) {
            ok = false;  // lock timeout under contention; txn auto-aborts
            break;
          }
        }
        attempts++;
        if (ok && txn.Commit().ok()) commits++;
      }
    });
  }
  for (auto& th : writers) th.join();

  CellResult r;
  r.commits = commits.load();
  r.attempts = attempts.load();
  r.sim_seconds = timer.ElapsedSeconds();
  LogStats log_after = db->log()->stats();
  LockManagerStats locks_after = db->Stats().locks;
  r.syncs = log_after.forces - log_before.forces;
  uint64_t batches = log_after.group_commit_batches - log_before.group_commit_batches;
  uint64_t grouped = log_after.group_commit_commits - log_before.group_commit_commits;
  r.avg_group = batches > 0 ? static_cast<double>(grouped) / batches : 0.0;
  r.lock_waits = locks_after.waits - locks_before.waits;
  r.lock_timeouts = locks_after.timeouts - locks_before.timeouts;
  return r;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  const int txns_per_thread = Scaled(400, 25);
  const std::vector<int> thread_axis = {1, 2, 4, 8};

  printf("E14: multi-threaded commit throughput, sharded locks + group commit\n");
  printf("(Instant data device, Hdd100 log device: simulated time = commit\n"
         " syncs only; %d transactions x %d-key writes per thread; group-\n"
         " commit linger 500 us; throughput in SIMULATED commits/second)\n\n",
         txns_per_thread, 2);

  for (bool contended : {false, true}) {
    Table table({"axis", "threads", "commits", "sim time", "commits/sim-s",
                 "speedup", "log syncs", "avg group", "lock waits",
                 "timeouts"});
    double base_tput = 0;
    for (int threads : thread_axis) {
      CellResult r = RunCell(threads, txns_per_thread, contended);
      double tput = r.sim_seconds > 0 ? r.commits / r.sim_seconds : 0;
      if (threads == 1) base_tput = tput;
      table.AddRow({contended ? "contended" : "uncontended",
                    std::to_string(threads), std::to_string(r.commits),
                    FormatSeconds(r.sim_seconds), Fmt("%.0f", tput),
                    Fmt("%.2fx", base_tput > 0 ? tput / base_tput : 0),
                    std::to_string(r.syncs), Fmt("%.2f", r.avg_group),
                    std::to_string(r.lock_waits),
                    std::to_string(r.lock_timeouts)});
    }
    table.Print();
    printf("\n");
  }

  printf("Reading: uncontended writers hit disjoint lock shards and leaves,\n"
         "so the only shared resource is the log tail — group commit turns\n"
         "N concurrent forces into one device sync and simulated throughput\n"
         "scales with the average group size. Contended writers serialize on\n"
         "8 hot keys: lock waits cap how many committers overlap, and the\n"
         "group size (and speedup) saturates accordingly.\n");
  return 0;
}
