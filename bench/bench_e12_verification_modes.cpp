// E12 — Offline verification vs. continuous side-effect verification
// (paper sections 2, 4.1 vs. 4.2).
//
// Traditional utilities (DBCC-style) "run offline ... inherently
// disruptive", read every page, and their result is "inherently and
// immediately out-of-date". Continuous verification piggybacks on the
// root-to-leaf traversals that query processing performs anyway, adding
// no I/O at all. This bench measures the offline check's I/O bill as the
// database grows, the scrub variant's bill, and the (zero) extra I/O of
// continuous verification over a query workload of equal coverage.

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

void Run() {
  printf("E12: offline / scrubbing / continuous verification cost\n");
  Table table({"db pages", "records", "mode", "pages read (device)",
               "sim time", "result staleness"});

  std::vector<uint64_t> sizes{2048ull, 8192ull, 32768ull};
  if (SmokeMode()) sizes = {2048ull};
  for (uint64_t pages : sizes) {
    DatabaseOptions options = DiskOptions(pages);
    options.backup_policy.updates_threshold = 0;
    int records = static_cast<int>(pages * 2);
    auto db = MakeLoadedDb(options, records);
    SPF_CHECK_OK(db->FlushAll());

    // --- offline check: every allocated page once, read-only ----------------
    {
      DeviceStats before = db->data_device()->stats();
      SimTimer timer(db->clock());
      uint64_t checked = 0;
      SPF_CHECK_OK(db->CheckOffline(&checked));
      DeviceStats after = db->data_device()->stats();
      table.AddRow({std::to_string(pages), std::to_string(records),
                    "offline check (4.1)",
                    std::to_string(after.page_reads - before.page_reads),
                    FormatSeconds(timer.ElapsedSeconds()),
                    "stale at completion"});
    }

    // --- scrub: every page through the verify+repair read path --------------
    {
      db->pool()->DiscardAll();
      DeviceStats before = db->data_device()->stats();
      SimTimer timer(db->clock());
      SPF_CHECK_OK(db->Scrub().status());
      DeviceStats after = db->data_device()->stats();
      table.AddRow({std::to_string(pages), std::to_string(records),
                    "scrub + auto-repair",
                    std::to_string(after.page_reads - before.page_reads),
                    FormatSeconds(timer.ElapsedSeconds()),
                    "stale at completion"});
    }

    // --- continuous: a query workload touching every page -------------------
    {
      SPF_CHECK_OK(db->FlushAll());
      DeviceStats before = db->data_device()->stats();
      uint64_t verifications_before =
          db->tree()->stats().traversal_verifications;
      // Point lookups across the key space: the traversals the application
      // performs anyway; every hop is fence-verified.
      for (int i = 0; i < records; i += 50) {
        SPF_CHECK_OK(db->Get(Key(i)).status());
      }
      DeviceStats after = db->data_device()->stats();
      uint64_t verifications =
          db->tree()->stats().traversal_verifications - verifications_before;
      table.AddRow(
          {std::to_string(pages), std::to_string(records),
           "continuous (4.2), " + std::to_string(verifications) + " checks",
           std::to_string(after.page_reads - before.page_reads) +
               " (workload's own)",
           "0 extra", "always current"});
    }
  }
  table.Print();
  printf(
      "\nPaper expectation: offline utilities pay a full device scan that\n"
      "grows linearly with the database and is outdated the moment it\n"
      "finishes; continuous fence-key verification adds ZERO I/O to the\n"
      "workload's own page accesses and is never stale. Scrubbing remains\n"
      "useful for cold pages (latent sector errors) and heals them inline.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
