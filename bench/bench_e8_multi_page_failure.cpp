// E8 — Multi-page failures: from one page to the whole device (paper
// section 5.2 paragraph 2).
//
// "It is perfectly possible that multiple pages fail and that they be
// recovered at the same time ... if all pages on a storage device require
// recovery at the same time, and if their recovery is coordinated, then
// access patterns and performance of the recovery process resemble those
// of traditional media recovery."
//
// Sweep the fraction of failed data pages; repair them all via per-page
// single-page recovery (one chain walk each, random log I/O) and compare
// against one full media recovery (sequential restore + replay). The
// interesting shape: per-page repair wins by orders of magnitude for few
// pages and loses its advantage as the failed fraction approaches 100%.

#include <set>

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

uint64_t Pages() { return Scaled<uint64_t>(8192, 2048); }  // 64 MiB full size
int Records() { return Scaled(15000, 3000); }

/// Coordinated repair of a burst of concurrently failed pages: the serial
/// per-page baseline (one independent chain walk each) against the
/// RecoveryScheduler's batched mode (grouped backup reads + shared log
/// segments). The paper's §5.2 multi-page scenario; the batching strategy
/// follows "Instant restore after a media failure" (Sauer et al., 2017).
void RunBatchedVsSerial() {
  const size_t burst = Scaled<size_t>(64, 16);

  printf("\nE8b: %zu concurrently failed pages - serial vs batched repair\n",
         burst);

  DatabaseOptions options = DiskOptions(Pages());
  options.backup_policy.updates_threshold = 0;
  std::vector<PageId> victims;
  auto db = MakeChainedBurstDb(options, Records(), burst, &victims);
  SPF_CHECK_GE(victims.size(), burst / 2);

  auto corrupt_all = [&] {
    db->pool()->DiscardAll();
    for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);
  };

  Table table({"mode", "pages", "repair time", "per page", "log reads",
               "records applied"});
  double serial_seconds = 0, batched_seconds = 0;

  corrupt_all();
  db->recovery_scheduler()->set_batch_repair(false);
  db->single_page_recovery()->ResetStats();
  {
    SimTimer timer(db->clock());
    auto result = db->RepairPages(victims);
    serial_seconds = timer.ElapsedSeconds();
    SPF_CHECK(result.ok()) << result.status().ToString();
    SPF_CHECK_EQ(result->repaired, victims.size());
  }
  SinglePageRecoveryStats serial_stats = db->single_page_recovery()->stats();
  table.AddRow({"serial per-page", std::to_string(victims.size()),
                FormatSeconds(serial_seconds),
                FormatSeconds(serial_seconds / victims.size()),
                std::to_string(serial_stats.log_reads),
                std::to_string(serial_stats.log_records_applied)});

  corrupt_all();
  db->recovery_scheduler()->set_batch_repair(true);
  db->single_page_recovery()->ResetStats();
  {
    SimTimer timer(db->clock());
    auto result = db->RepairPages(victims);
    batched_seconds = timer.ElapsedSeconds();
    SPF_CHECK(result.ok()) << result.status().ToString();
    SPF_CHECK_EQ(result->repaired, victims.size());
  }
  SinglePageRecoveryStats batched_stats = db->single_page_recovery()->stats();
  table.AddRow({"batched scheduler", std::to_string(victims.size()),
                FormatSeconds(batched_seconds),
                FormatSeconds(batched_seconds / victims.size()),
                std::to_string(batched_stats.log_reads),
                std::to_string(batched_stats.log_records_applied)});
  table.Print();

  double speedup = serial_seconds / batched_seconds;
  printf(
      "\nBatched speedup: %.1fx in simulated time (grouped backup reads +\n"
      "shared log segments: %llu segment fetches replaced %llu random\n"
      "per-record log reads for the same %llu applied records).\n",
      speedup, static_cast<unsigned long long>(batched_stats.log_reads),
      static_cast<unsigned long long>(serial_stats.log_reads),
      static_cast<unsigned long long>(batched_stats.log_records_applied));
  if (!SmokeMode()) {
    SPF_CHECK_GE(speedup, 2.0)
        << "batched repair must beat serial by >= 2x at this burst size";
  }
}

void Run() {
  const uint64_t kPages = Pages();
  const int kRecords = Records();
  printf(
      "E8: repairing N failed pages - single-page recovery vs. one media "
      "recovery\n");
  Table table({"failed pages", "fraction", "per-page repair", "per page",
               "media recovery", "winner"});

  // Reference media recovery time, measured once on an identical database.
  double media_seconds;
  {
    DatabaseOptions options = DiskOptions(kPages);
    options.backup_policy.updates_threshold = 0;
    auto db = MakeLoadedDb(options, kRecords);
    SPF_CHECK_OK(db->TakeFullBackup().status());
    Txn t = db->BeginTxn();
    for (int i = 0; i < 1000; ++i) {
      SPF_CHECK_OK(t.Update(Key(i * 7 % kRecords), "post-backup"));
    }
    SPF_CHECK_OK(t.Commit());
    db->log()->ForceAll();
    db->data_device()->FailDevice();
    db->pool()->DiscardAll();
    auto stats = db->RecoverMedia();
    SPF_CHECK(stats.ok());
    media_seconds = stats->total_sim_seconds;
  }

  // Collect the set of allocated B-tree pages once.
  DatabaseOptions options = DiskOptions(kPages);
  options.backup_policy.updates_threshold = 0;
  auto db = MakeLoadedDb(options, kRecords);
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());
  std::vector<PageId> data_pages;
  const PriLayout& layout = db->pri_manager()->layout();
  for (PageId p = layout.reserved_prefix(); p < kPages; ++p) {
    if (db->allocator()->IsAllocated(p) && !layout.IsPriPage(p)) {
      data_pages.push_back(p);
    }
  }

  double media_per_data_page = 0;
  for (double fraction : {0.0, 0.05, 0.20, 0.50, 1.0}) {
    size_t count = fraction == 0.0
                       ? 1
                       : static_cast<size_t>(fraction * data_pages.size());
    if (count == 0) count = 1;
    db->pool()->DiscardAll();
    for (size_t i = 0; i < count; ++i) {
      db->data_device()->InjectSilentCorruption(data_pages[i]);
    }
    SimTimer timer(db->clock());
    auto scrub = db->Scrub();  // detects and repairs every failed page
    double elapsed = timer.ElapsedSeconds();
    SPF_CHECK(scrub.ok()) << scrub.status().ToString();
    SPF_CHECK_GE(scrub->pages_repaired, count);

    char frac[16];
    snprintf(frac, sizeof(frac), "%.0f%%",
             100.0 * static_cast<double>(count) /
                 static_cast<double>(data_pages.size()));
    // The scrub pass reads every allocated page; subtract nothing — the
    // detection scan is part of coordinated whole-set repair.
    table.AddRow({std::to_string(count), frac, FormatSeconds(elapsed),
                  FormatSeconds(elapsed / static_cast<double>(count)),
                  FormatSeconds(media_seconds),
                  elapsed < media_seconds ? "single-page" : "media"});
    if (fraction == 1.0) {
      media_per_data_page =
          media_seconds / static_cast<double>(data_pages.size());
    }
  }
  table.Print();
  printf(
      "\nDensity note: the device holds %zu allocated data pages out of\n"
      "%llu total; media recovery restores and replays the WHOLE device\n"
      "(%s per allocated page), which is why per-page repair still wins at\n"
      "100%% here. At full density the sequential restore's per-page cost\n"
      "undercuts the ~10 ms random log read each per-page repair pays -\n"
      "the access-pattern convergence of section 5.2.\n",
      data_pages.size(), static_cast<unsigned long long>(kPages),
      FormatSeconds(media_per_data_page).c_str());
  printf(
      "\nPaper expectation: a handful of failed pages repairs orders of\n"
      "magnitude faster than media recovery; as the failed fraction grows\n"
      "toward the whole device, per-page repair's random log reads approach\n"
      "(and eventually exceed) the cost of one sequential restore + replay -\n"
      "the access-pattern convergence the paper predicts.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  spf::bench::RunBatchedVsSerial();
  return 0;
}
