// E16: the network serving layer under load — commit throughput and
// latency through the TCP server, healthy and while the engine is
// repairing failures underneath the sockets.
//
// Unlike the engine benches (simulated time), this one measures HOST
// wall-clock time: the serving fabric (epoll IO thread, worker pool,
// loopback TCP) is real, so its scaling only shows on a real clock. The
// storage devices are Instant so device arithmetic does not drown out
// the serving-layer signal.
//
// Axes:
//   1. worker-pool size {1, 2, 4, 8} on a healthy engine — commit
//      throughput should scale with workers until the engine saturates.
//   2. failure mode at a fixed pool: healthy vs injected single-page
//      failures vs a whole-device failure with a mid-run rung-5 gated
//      restore. Clients retry retryable() replies (the wire contract),
//      so commits keep flowing; the table reports the retry bill, the
//      time from failure injection to the FIRST post-failure acked
//      commit (early readmission: ~one on-demand segment, not a full
//      device restore), and the repair counters fetched over the wire
//      via INFO.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/client.h"
#include "server/network_server.h"

using namespace spf;
using namespace spf::bench;

namespace {

enum class Mode { kHealthy, kPageFailures, kDeviceRestore };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kHealthy: return "healthy";
    case Mode::kPageFailures: return "page failures";
    case Mode::kDeviceRestore: return "device restore";
  }
  return "?";
}

struct CellResult {
  uint64_t commits = 0;
  uint64_t failed = 0;        // frames that exhausted retries / hard-failed
  uint64_t retries = 0;       // extra attempts beyond one per frame
  double wall_seconds = 0;
  double mean_latency_us = 0;
  double first_ack_ms = -1;   // injection -> first post-failure acked commit
  uint64_t repairs = 0;               // spr.repairs_succeeded (via INFO)
  uint64_t on_demand_segments = 0;    // funnel.on_demand_segments (via INFO)
  uint64_t gate_parked = 0;           // server.gate_parked_commits (via INFO)
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CellResult RunCell(uint32_t workers, int clients, int frames_per_client,
                   Mode mode) {
  DatabaseOptions options = InstantOptions(8192);
  options.restore_early_admission = true;
  options.group_commit_interval = std::chrono::microseconds(200);
  auto db = MakeLoadedDb(options, 4000);
  SPF_CHECK_OK(db->FlushAll());
  SPF_CHECK_OK(db->TakeFullBackup().status());
  db->archiver()->Start();

  ServerOptions sopts;
  sopts.workers = workers;
  NetworkServer server(db.get(), sopts);
  SPF_CHECK_OK(server.Start());

  std::atomic<uint64_t> commits{0}, failed{0}, retries{0};
  std::atomic<int64_t> latency_ns_total{0};
  std::atomic<int64_t> inject_ns{-1};
  std::atomic<int64_t> first_ack_ns{-1};
  std::atomic<bool> injected{false};

  int64_t start_ns = NowNs();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      SPF_CHECK_OK(client.Connect("127.0.0.1", server.port()));
      for (int f = 0; f < frames_per_client; ++f) {
        wire::TxnRequest req;
        req.Put(Key(c * 1000000 + f % 2000), "e16-" + std::to_string(f));
        int64_t t0 = NowNs();
        wire::TxnReply reply;
        bool committed = false;
        for (int attempt = 0; attempt < 256; ++attempt) {
          if (attempt > 0) retries++;
          Status s = client.Execute(req, &reply);
          SPF_CHECK_OK(s);
          if (reply.ok()) {
            committed = true;
            break;
          }
          if (!reply.retryable()) break;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::min(attempt + 1, 5)));
        }
        latency_ns_total += NowNs() - t0;
        if (committed) {
          commits++;
          if (injected.load(std::memory_order_acquire) &&
              first_ack_ns.load() < 0) {
            int64_t expected = -1;
            first_ack_ns.compare_exchange_strong(expected, NowNs());
          }
        } else {
          failed++;
        }
      }
      client.Close();
    });
  }

  // Fault injector: fires once the workload is visibly flowing.
  std::thread injector([&] {
    if (mode == Mode::kHealthy) return;
    while (commits.load() < static_cast<uint64_t>(clients) * 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (mode == Mode::kPageFailures) {
      // Corrupt a handful of clean leaves under the live workload.
      int corrupted = 0;
      for (int k = 0; k < 2000 && corrupted < 4; k += 97) {
        auto leaf = db->LeafPageOf(Key(k));
        if (!leaf.ok() || db->pool()->IsDirty(*leaf)) continue;
        db->pool()->DiscardPage(*leaf);
        db->data_device()->InjectSilentCorruption(*leaf);
        corrupted++;
      }
      inject_ns.store(NowNs());
      injected.store(true, std::memory_order_release);
      return;
    }
    // Whole-device failure + rung-5 gated restore, mid-run.
    db->data_device()->FailDevice();
    inject_ns.store(NowNs());
    injected.store(true, std::memory_order_release);
    SPF_CHECK_OK(db->RecoverMedia().status());
  });

  for (auto& t : threads) t.join();
  injector.join();
  double wall = (NowNs() - start_ns) / 1e9;

  // Counters over the wire — the INFO command is part of the bench.
  Client info_client;
  SPF_CHECK_OK(info_client.Connect("127.0.0.1", server.port()));
  wire::InfoReply info;
  SPF_CHECK_OK(info_client.Info(&info));
  info_client.Close();
  server.Stop();

  CellResult r;
  r.commits = commits.load();
  r.failed = failed.load();
  r.retries = retries.load();
  r.wall_seconds = wall;
  uint64_t frames = static_cast<uint64_t>(clients) * frames_per_client;
  r.mean_latency_us = frames > 0 ? latency_ns_total.load() / 1e3 / frames : 0;
  if (inject_ns.load() >= 0 && first_ack_ns.load() >= 0) {
    r.first_ack_ms = (first_ack_ns.load() - inject_ns.load()) / 1e6;
  }
  r.repairs = info.Counter("spr.repairs_succeeded");
  r.on_demand_segments = info.Counter("funnel.on_demand_segments");
  r.gate_parked = info.Counter("server.gate_parked_commits");
  return r;
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  const int clients = Scaled(8, 4);
  const int frames_per_client = Scaled(400, 25);

  printf("E16: network serving layer — TCP server, %d clients, single-put\n"
         "frames with wire-contract retries (wall-clock time; Instant\n"
         "devices so the serving fabric is the measured cost)\n\n",
         clients);

  Table t1({"workers", "commits", "wall", "commits/s", "speedup",
            "mean latency"});
  double base = 0;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    CellResult r = RunCell(workers, clients, frames_per_client, Mode::kHealthy);
    double tput = r.wall_seconds > 0 ? r.commits / r.wall_seconds : 0;
    if (workers == 1) base = tput;
    t1.AddRow({std::to_string(workers), std::to_string(r.commits),
               FormatSeconds(r.wall_seconds), Fmt("%.0f", tput),
               Fmt("%.2fx", base > 0 ? tput / base : 0),
               Fmt("%.1f us", r.mean_latency_us)});
  }
  t1.Print();
  printf("\n");

  Table t2({"mode", "commits", "failed", "retries", "commits/s",
            "first ack after failure", "repairs", "on-demand segs",
            "gate parked"});
  for (Mode mode : {Mode::kHealthy, Mode::kPageFailures, Mode::kDeviceRestore}) {
    CellResult r = RunCell(4, clients, frames_per_client, mode);
    double tput = r.wall_seconds > 0 ? r.commits / r.wall_seconds : 0;
    t2.AddRow({ModeName(mode), std::to_string(r.commits),
               std::to_string(r.failed), std::to_string(r.retries),
               Fmt("%.0f", tput),
               r.first_ack_ms < 0 ? "-" : Fmt("%.1f ms", r.first_ack_ms),
               std::to_string(r.repairs), std::to_string(r.on_demand_segments),
               std::to_string(r.gate_parked)});
  }
  t2.Print();

  printf("\nReading: worker scaling tracks the engine's commit concurrency\n"
         "(group commit coalesces the log syncs). Single-page failures heal\n"
         "inline — a few repairs, no failed frames. The device failure gates\n"
         "every new transaction behind the rung-5 restore, but with early\n"
         "admission the first post-failure commit lands after roughly ONE\n"
         "on-demand segment restore, not the full device sweep; the retry\n"
         "column is the price clients paid to ride it out.\n");
  return 0;
}
