// E10 — Single-page recovery vs. SQL-Server-style mirroring repair (paper
// section 2).
//
// The only prior automatic page repair the paper identifies keeps an
// entire mirror database current by applying the full log stream; "the
// recovery log is applied to the entire mirror database, not just the
// individual page that requires repair, and the recovery process
// completely fails to exploit the per-page log chain". This bench makes
// the comparison quantitative: log records processed, pages written, and
// repair latency for one failed page, plus the mirror's standing cost.

#include "bench_util.h"
#include "core/mirror_baseline.h"

namespace spf {
namespace bench {
namespace {

uint64_t Pages() { return Scaled<uint64_t>(8192, 2048); }
int Records() { return Scaled(10000, 2000); }

void Run() {
  const uint64_t kPages = Pages();
  const int kRecords = Records();
  printf("E10: one-page repair - per-page log chain vs. full-stream mirror\n");

  DatabaseOptions options = DiskOptions(kPages);
  options.backup_policy.updates_threshold = 0;
  auto db = MakeLoadedDb(options, kRecords);
  SPF_CHECK_OK(db->TakeFullBackup().status());
  SPF_CHECK_OK(db->FlushAll());

  // Mirror on its own device, seeded like a mirroring setup's initial sync.
  SimDevice mirror_dev("mirror", kDefaultPageSize, kPages,
                       DeviceProfile::Hdd100(), db->clock());
  MirrorBaseline mirror(db->log(), &mirror_dev, db->clock());
  SPF_CHECK_OK(mirror.SeedFromPrincipal(db->data_device()));

  // Workload after the sync: this is the stream BOTH repair schemes must
  // cope with — the mirror by applying all of it, single-page recovery by
  // walking one chain.
  Random rng(17);
  for (int txn_i = 0; txn_i < Scaled(100, 20); ++txn_i) {
    Txn t = db->BeginTxn();
    for (int op = 0; op < 20; ++op) {
      SPF_CHECK_OK(t.Update(Key(static_cast<int>(rng.Uniform(kRecords))),
                              "mirror-era-update"));
    }
    SPF_CHECK_OK(t.Commit());
  }
  const int victim_key = kRecords / 2;
  UpdateKeyNTimes(db.get(), victim_key, 30);  // the victim's chain: ~30 records
  SPF_CHECK_OK(db->FlushAll());
  db->log()->ForceAll();
  auto victim_or = db->LeafPageOf(Key(victim_key));
  SPF_CHECK(victim_or.ok());
  PageId victim = *victim_or;

  // --- repair via the mirror ----------------------------------------------------
  PageBuffer from_mirror(kDefaultPageSize);
  SimTimer mirror_timer(db->clock());
  SPF_CHECK_OK(mirror.RepairFrom(victim, from_mirror.data()));
  double mirror_seconds = mirror_timer.ElapsedSeconds();
  MirrorStats ms = mirror.stats();
  SPF_CHECK_OK(from_mirror.view().Verify(victim));

  // --- repair via single-page recovery -------------------------------------------
  db->pool()->DiscardAll();
  db->data_device()->InjectSilentCorruption(victim);
  db->single_page_recovery()->ResetStats();
  SimTimer spr_timer(db->clock());
  auto v = db->Get(Key(victim_key));
  double spr_seconds = spr_timer.ElapsedSeconds();
  SPF_CHECK(v.ok()) << v.status().ToString();
  auto spr = db->single_page_recovery()->stats();

  Table table({"scheme", "log records processed", "pages written",
               "repair latency", "standing cost"});
  table.AddRow({"mirroring (section 2)", std::to_string(ms.records_scanned),
                std::to_string(ms.mirror_writes), FormatSeconds(mirror_seconds),
                "full second copy of the database, continuous apply"});
  table.AddRow({"single-page recovery",
                std::to_string(spr.log_reads),
                "1", FormatSeconds(spr_seconds),
                "PRI (~1 permille of db, see E5) + per-page backups"});
  table.Print();

  printf(
      "\nPaper expectation: the mirror processes the ENTIRE log stream\n"
      "(%" PRIu64 " records here) and keeps a full second database, while\n"
      "single-page recovery reads only the failed page's chain\n"
      "(%" PRIu64 " records) plus one backup page - the per-page log chain\n"
      "the mirroring scheme \"completely fails to exploit\".\n",
      ms.records_scanned, spr.log_reads);
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
