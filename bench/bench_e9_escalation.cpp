// E9 — Failure-scope escalation (paper Figure 1, section 3.2).
//
// "If single-page failures are not a supported class of failures, failure
// of a single page must be handled as a media failure. In machines or
// nodes with only one storage device, a media failure is equal to a
// system failure."
//
// The same physical event — one corrupted page — is handled under three
// policies, measuring downtime (simulated) and transactions aborted:
//   1. single-page recovery supported: the reading transaction waits a
//      sub-second repair; nothing aborts;
//   2. escalated to MEDIA failure: every active transaction aborts; the
//      database is down for a full restore + replay;
//   3. escalated to SYSTEM failure (single-device node): crash + restart
//      recovery ON TOP of the media recovery.

#include <atomic>
#include <set>
#include <thread>

#include "bench_util.h"

namespace spf {
namespace bench {
namespace {

uint64_t Pages() { return Scaled<uint64_t>(8192, 2048); }
int Records() { return Scaled(15000, 3000); }

struct Scenario {
  std::string policy;
  double downtime = 0;
  uint64_t txns_aborted = 0;
  std::string note;
};

std::unique_ptr<Database> Setup(bool repair_enabled, PageId* victim) {
  DatabaseOptions options = DiskOptions(Pages());
  options.enable_single_page_repair = repair_enabled;
  options.backup_policy.updates_threshold = 0;
  auto db = MakeLoadedDb(options, Records());
  SPF_CHECK_OK(db->TakeFullBackup().status());
  UpdateKeyNTimes(db.get(), 500, 20);
  SPF_CHECK_OK(db->FlushAll());
  auto v = db->LeafPageOf(Key(500));
  SPF_CHECK(v.ok());
  *victim = *v;
  db->pool()->DiscardAll();
  return db;
}

void Run() {
  printf("E9: one corrupted page, three failure-handling scopes (Figure 1)\n");
  std::vector<Scenario> rows;

  // --- scope 1: single-page failure handled as such ----------------------------
  {
    PageId victim;
    auto db = Setup(/*repair_enabled=*/true, &victim);
    // Five concurrent-ish transactions in flight.
    std::vector<Txn> active;
    for (int i = 0; i < 5; ++i) {
      Txn t = db->BeginTxn();
      // Far from the victim's leaf so the victim stays uncached.
      SPF_CHECK_OK(t.Put(Key(900000 + i), "in-flight"));
      active.push_back(std::move(t));
    }
    db->data_device()->InjectSilentCorruption(victim);
    SimTimer timer(db->clock());
    auto v = active[0].Get(Key(500));  // hits the failure, waits
    double downtime = timer.ElapsedSeconds();
    SPF_CHECK(v.ok()) << v.status().ToString();
    for (Txn& t : active) SPF_CHECK_OK(t.Commit());
    rows.push_back({"single-page recovery", downtime, 0,
                    "reader merely delayed; all 5 txns commit"});
  }

  // --- scope 2: escalated to media failure -------------------------------------
  {
    PageId victim;
    auto db = Setup(/*repair_enabled=*/false, &victim);
    std::vector<Txn> active;
    for (int i = 0; i < 5; ++i) {
      Txn t = db->BeginTxn();
      SPF_CHECK_OK(t.Put(Key(900000 + i), "in-flight"));
      active.push_back(std::move(t));
    }
    db->log()->ForceAll();
    db->data_device()->InjectSilentCorruption(victim);
    SimTimer timer(db->clock());
    auto v = active[0].Get(Key(500));
    SPF_CHECK(v.status().IsMediaFailure()) << v.status().ToString();
    uint64_t aborted = db->txns()->active_count();
    auto stats = db->RecoverMedia();  // aborts active txns internally
    SPF_CHECK(stats.ok()) << stats.status().ToString();
    double downtime = timer.ElapsedSeconds();
    rows.push_back({"escalated: media failure", downtime, aborted,
                    "full restore + replay; all active txns aborted"});
  }

  // --- scope 3: escalated to system failure (single-device node) ----------------
  {
    PageId victim;
    auto db = Setup(/*repair_enabled=*/false, &victim);
    Txn t = db->BeginTxn();
    SPF_CHECK_OK(t.Put(Key(900001), "in-flight"));
    db->log()->ForceAll();
    uint64_t aborted = db->txns()->active_count();
    db->data_device()->InjectSilentCorruption(victim);
    SimTimer timer(db->clock());
    // The node goes down entirely: crash + ARIES restart (undoes the
    // loser); the corrupted page then surfaces on first access and,
    // without single-page recovery, forces a full media recovery.
    db->SimulateCrash();
    auto restart = db->Restart();
    SPF_CHECK(restart.ok()) << restart.status().ToString();
    auto v = db->Get(Key(500));
    SPF_CHECK(v.status().IsMediaFailure()) << v.status().ToString();
    auto media = db->RecoverMedia();
    SPF_CHECK(media.ok()) << media.status().ToString();
    double downtime = timer.ElapsedSeconds();
    rows.push_back({"escalated: system failure", downtime, aborted,
                    "node restart + ARIES restart + media recovery"});
  }

  // --- scope 4: a BURST of failed pages, serial vs batched scheduler ------------
  // The multi-page variant of scope 1: a latent-fault burst is repaired
  // online either page-by-page (serial chain walks) or as one coordinated
  // batch through the RecoveryScheduler. Neither aborts anything; the
  // axis is repair downtime.
  for (bool batched : {false, true}) {
    DatabaseOptions options = DiskOptions(Pages());
    options.backup_policy.updates_threshold = 0;
    std::vector<PageId> victims;
    auto db = MakeChainedBurstDb(options, Records(), Scaled<size_t>(64, 16),
                                 &victims);
    for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);

    db->recovery_scheduler()->set_batch_repair(batched);
    SimTimer timer(db->clock());
    auto result = db->RepairPages(victims);
    double downtime = timer.ElapsedSeconds();
    SPF_CHECK(result.ok()) << result.status().ToString();
    SPF_CHECK_EQ(result->repaired, victims.size());
    std::string label = std::to_string(victims.size()) + "-page burst: " +
                        (batched ? "batched scheduler" : "serial repair");
    rows.push_back({label, downtime, 0,
                    batched ? "grouped backups + shared log segments"
                            : "independent per-page chain walks"});
  }

  // --- scope 5: a failed-page BURST hit by CONCURRENT readers ------------------
  // The self-healing axis: the same 64-page burst is discovered by 8
  // concurrent reader threads. Inline handling repairs one page per
  // reader independently; with the failure funnel the readers' reports
  // coalesce into batches that ride the scheduler's grouped-backup /
  // shared-segment machinery. Nothing aborts; the axis is total repair
  // downtime (simulated I/O) and the amount of repair work run.
  for (bool funnel : {false, true}) {
    DatabaseOptions options = DiskOptions(Pages());
    options.backup_policy.updates_threshold = 0;
    options.auto_escalate = funnel;
    options.spr_batch_limit = 128;  // keep coalesced batches on the repair rung
    std::vector<PageId> victims;
    auto db = MakeChainedBurstDb(options, Records(), Scaled<size_t>(64, 16),
                                 &victims);

    // One key per victim page, resolved BEFORE the damage (LeafPageOf
    // fixes pages, which would repair them prematurely afterwards).
    std::vector<std::string> keys;
    {
      std::set<PageId> remaining(victims.begin(), victims.end());
      for (int i = 0; i < Records() && !remaining.empty(); i += 97) {
        auto leaf = db->LeafPageOf(Key(i));
        if (leaf.ok() && remaining.erase(*leaf) > 0) keys.push_back(Key(i));
      }
      db->pool()->DiscardAll();
    }
    for (PageId v : victims) db->data_device()->InjectSilentCorruption(v);

    constexpr int kReaderThreads = 8;
    SimTimer timer(db->clock());
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kReaderThreads; ++t) {
      threads.emplace_back([&] {
        size_t i;
        while ((i = next.fetch_add(1)) < keys.size()) {
          SPF_CHECK_OK(db->Get(keys[i]).status());
        }
      });
    }
    for (auto& th : threads) th.join();
    if (funnel) db->funnel()->WaitIdle();
    double downtime = timer.ElapsedSeconds();

    StatsSnapshot stats = db->Stats();
    std::string label = std::to_string(victims.size()) +
                        "-page burst, 8 readers: " +
                        (funnel ? "funnel-coalesced" : "inline repair");
    std::string note;
    if (funnel) {
      note = std::to_string(stats.funnel.enqueued) + " reports -> " +
             std::to_string(stats.funnel.batches) + " ladder batches, " +
             std::to_string(stats.scheduler.segment_fetches) +
             " shared segment fetches";
    } else {
      note = std::to_string(stats.scheduler.single_repairs) +
             " independent inline repairs, " +
             std::to_string(stats.spr.log_reads) + " log reads";
    }
    rows.push_back({label, downtime, 0, note});
  }

  Table table({"handling scope", "downtime (sim)", "txns aborted", "notes"});
  for (const Scenario& s : rows) {
    table.AddRow({s.policy, FormatSeconds(s.downtime),
                  std::to_string(s.txns_aborted), s.note});
  }
  table.Print();
  printf(
      "\nPaper expectation: supporting the fourth failure class prevents\n"
      "the escalation entirely - sub-second delay and zero aborts, versus\n"
      "minutes-scale downtime and universal aborts when the same event is\n"
      "treated as a media or system failure.\n");
}

}  // namespace
}  // namespace bench
}  // namespace spf

int main(int argc, char** argv) {
  spf::bench::Init(argc, argv);
  spf::bench::Run();
  return 0;
}
