// On-page layout shared by every page in a database.
//
// Every page starts with a PageHeader carrying the in-page integrity data
// the paper's detection story relies on (section 4.2): a CRC32C checksum, a
// magic tag, the page's own id (catches misdirected reads/writes), the
// PageLSN anchoring the per-page log chain (Figure 6), and the count of
// updates since the last per-page backup (section 6: "the number of updates
// can be counted within the page").

#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include "common/crc32c.h"
#include "common/macros.h"
#include "common/status.h"

namespace spf {

using PageId = uint64_t;
constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Log sequence number: byte address in the recovery log. 0 = "null LSN",
/// i.e. no log record (a freshly formatted page before its first update).
using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

constexpr uint32_t kDefaultPageSize = 8 * 1024;
constexpr uint32_t kPageMagic = 0x53504647u;  // "SPFG"

/// Role of a page; part of in-page plausibility checking.
enum class PageType : uint16_t {
  kFree = 0,
  kMeta = 1,
  kBTreeLeaf = 2,
  kBTreeBranch = 3,
  kPri = 4,  // page recovery index partition page
  kRaw = 5,  // untyped test page
};

/// Fixed header at byte offset 0 of every page. 40 bytes.
struct PageHeader {
  uint32_t checksum;      ///< masked CRC32C over bytes [4, page_size)
  uint32_t magic;         ///< kPageMagic
  PageId page_id;         ///< the page's own id; catches misdirected I/O
  Lsn page_lsn;           ///< LSN of newest log record for this page
  uint16_t page_type;     ///< PageType
  uint16_t flags;
  uint32_t update_count;  ///< updates since last per-page backup (section 6)
  uint64_t reserved;
};
static_assert(sizeof(PageHeader) == 40, "PageHeader layout is on-disk format");

constexpr uint32_t kPageHeaderSize = sizeof(PageHeader);

/// Non-owning, typed view over one page-sized buffer.
///
/// PageView does not validate on construction; call Verify() after reading
/// from a device (Figure 8 read logic) and UpdateChecksum() before writing.
class PageView {
 public:
  PageView(char* data, uint32_t page_size) : data_(data), size_(page_size) {}

  char* data() { return data_; }
  const char* data() const { return data_; }
  uint32_t size() const { return size_; }

  PageHeader* header() { return reinterpret_cast<PageHeader*>(data_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(data_);
  }

  PageId page_id() const { return header()->page_id; }
  Lsn page_lsn() const { return header()->page_lsn; }
  PageType type() const { return static_cast<PageType>(header()->page_type); }
  uint32_t update_count() const { return header()->update_count; }

  void set_page_lsn(Lsn lsn) { header()->page_lsn = lsn; }
  void bump_update_count() { header()->update_count++; }
  void reset_update_count() { header()->update_count = 0; }

  /// Zeroes the page and installs a fresh header.
  void Format(PageId id, PageType type) {
    std::memset(data_, 0, size_);
    PageHeader* h = header();
    h->magic = kPageMagic;
    h->page_id = id;
    h->page_lsn = kInvalidLsn;
    h->page_type = static_cast<uint16_t>(type);
    h->flags = 0;
    h->update_count = 0;
  }

  /// Recomputes and stores the masked checksum. Must run before any write
  /// to a device.
  void UpdateChecksum() {
    header()->checksum = crc32c::Mask(ComputeChecksum());
  }

  /// In-page parity test: checksum over the page body.
  Status VerifyChecksum() const {
    if (crc32c::Unmask(header()->checksum) != ComputeChecksum()) {
      return Status::Corruption("page checksum mismatch");
    }
    return Status::OK();
  }

  /// Full in-page plausibility test (paper section 4.2): checksum, magic,
  /// and that the page's stored id matches the id it was read as.
  Status Verify(PageId expected_id) const {
    const PageHeader* h = header();
    if (h->magic != kPageMagic) {
      return Status::Corruption("bad page magic");
    }
    SPF_RETURN_IF_ERROR(VerifyChecksum());
    if (h->page_id != expected_id) {
      return Status::Corruption("page id mismatch (misdirected I/O)");
    }
    return Status::OK();
  }

 private:
  uint32_t ComputeChecksum() const {
    return crc32c::Value(data_ + 4, size_ - 4);
  }

  char* data_;
  uint32_t size_;
};

/// Owning, heap-allocated page buffer.
class PageBuffer {
 public:
  explicit PageBuffer(uint32_t page_size)
      : size_(page_size), data_(new char[page_size]) {
    std::memset(data_.get(), 0, page_size);
  }

  PageView view() { return PageView(data_.get(), size_); }
  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }
  uint32_t size() const { return size_; }

 private:
  uint32_t size_;
  std::unique_ptr<char[]> data_;
};

}  // namespace spf
