#include "storage/sim_device.h"

#include <cstring>

namespace spf {

SimDevice::SimDevice(std::string name, uint32_t page_size, uint64_t num_pages,
                     DeviceProfile profile, SimClock* clock)
    : name_(std::move(name)),
      page_size_(page_size),
      num_pages_(num_pages),
      profile_(std::move(profile)),
      clock_(clock),
      store_(page_size * num_pages, '\0') {
  SPF_CHECK_GT(page_size, kPageHeaderSize);
  SPF_CHECK_GT(num_pages, 0u);
}

uint64_t SimDevice::ChargeAccess(PageId id, bool is_write) {
  const bool sequential =
      last_accessed_ != kInvalidPageId && id == last_accessed_ + 1;
  last_accessed_ = id;
  uint64_t ns = profile_.AccessNanos(page_size_, sequential);
  clock_->AdvanceNanos(ns);
  stats_.sim_ns_charged += ns;
  if (sequential) {
    stats_.sequential_accesses++;
  } else {
    stats_.random_accesses++;
  }
  if (is_write) {
    stats_.page_writes++;
    stats_.bytes_written += page_size_;
  } else {
    stats_.page_reads++;
    stats_.bytes_read += page_size_;
  }
  return ns;
}

Status SimDevice::ReadPage(PageId id, char* out) {
  MutexLock g(mu_);
  if (device_failed_) {
    return Status::MediaFailure("device '" + name_ + "' has failed");
  }
  if (id >= num_pages_) {
    return Status::InvalidArgument("page id out of range");
  }
  ChargeAccess(id, /*is_write=*/false);

  auto it = faults_.find(id);
  if (it != faults_.end() && it->second.kind == FaultKind::kReadError) {
    stats_.injected_faults_hit++;
    if (!it->second.permanent) faults_.erase(it);
    return Status::ReadFailure("unrecoverable read error (latent sector)");
  }
  std::memcpy(out, Slot(id), page_size_);
  return Status::OK();
}

Status SimDevice::WritePage(PageId id, const char* data) {
  MutexLock g(mu_);
  if (device_failed_) {
    return Status::MediaFailure("device '" + name_ + "' has failed");
  }
  if (id >= num_pages_) {
    return Status::InvalidArgument("page id out of range");
  }
  ChargeAccess(id, /*is_write=*/true);

  // Wear-out: writes beyond the endurance budget scramble the location.
  auto wear = wear_remaining_.find(id);
  if (wear != wear_remaining_.end()) {
    if (wear->second == 0) {
      stats_.injected_faults_hit++;
      std::memcpy(Slot(id), data, page_size_);
      ScrambleLocked(id, /*seed=*/id * 2654435761u + stats_.page_writes, 128);
      return Status::OK();  // silent: the device reports success
    }
    wear->second--;
  }

  auto it = faults_.find(id);
  if (it != faults_.end() && it->second.kind == FaultKind::kTornWrite) {
    stats_.injected_faults_hit++;
    uint32_t prefix = std::min(it->second.torn_prefix, page_size_);
    std::memcpy(Slot(id), data, prefix);  // tail keeps the old image
    faults_.erase(it);
    return Status::OK();  // silent
  }
  if (it != faults_.end() && it->second.kind == FaultKind::kReadError &&
      it->second.cleared_by_write) {
    faults_.erase(it);  // rewriting the failed sector remaps it
  }

  std::memcpy(Slot(id), data, page_size_);
  return Status::OK();
}

DeviceStats SimDevice::stats() const {
  MutexLock g(mu_);
  return stats_;
}

void SimDevice::ResetStats() {
  MutexLock g(mu_);
  stats_ = DeviceStats();
}

void SimDevice::ScrambleLocked(PageId id, uint64_t seed, uint32_t nbytes) {
  Random rng(seed);
  char* slot = Slot(id);
  for (uint32_t i = 0; i < nbytes; ++i) {
    uint64_t off = rng.Uniform(page_size_);
    slot[off] = static_cast<char>(rng.Next() & 0xff);
  }
}

void SimDevice::InjectSilentCorruption(PageId id, uint64_t seed,
                                       uint32_t nbytes) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  ScrambleLocked(id, seed, nbytes);
}

void SimDevice::InjectReadError(PageId id, bool permanent) {
  MutexLock g(mu_);
  FaultState f;
  f.kind = FaultKind::kReadError;
  f.permanent = permanent;
  faults_[id] = f;
}

void SimDevice::FailPageRange(PageId first, uint64_t count) {
  MutexLock g(mu_);
  SPF_CHECK_LE(first + count, num_pages_);
  for (PageId id = first; id < first + count; ++id) {
    FaultState f;
    f.kind = FaultKind::kReadError;
    f.permanent = true;
    f.cleared_by_write = true;
    faults_[id] = f;
  }
}

void SimDevice::CapturePageVersion(PageId id) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  captured_versions_[id].assign(Slot(id), page_size_);
}

bool SimDevice::InjectStaleVersion(PageId id) {
  MutexLock g(mu_);
  auto it = captured_versions_.find(id);
  if (it == captured_versions_.end()) return false;
  std::memcpy(Slot(id), it->second.data(), page_size_);
  return true;
}

void SimDevice::InjectTornWrite(PageId id, uint32_t valid_prefix) {
  MutexLock g(mu_);
  FaultState f;
  f.kind = FaultKind::kTornWrite;
  f.torn_prefix = valid_prefix;
  faults_[id] = f;
}

void SimDevice::SetWearOutLimit(PageId id, uint32_t writes_remaining) {
  MutexLock g(mu_);
  wear_remaining_[id] = writes_remaining;
}

void SimDevice::ClearFault(PageId id) {
  MutexLock g(mu_);
  faults_.erase(id);
  wear_remaining_.erase(id);
}

void SimDevice::RawRead(PageId id, char* out) const {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  std::memcpy(out, Slot(id), page_size_);
}

void SimDevice::RawWrite(PageId id, const char* data) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  std::memcpy(const_cast<char*>(Slot(id)), data, page_size_);
}

// ---------------------------------------------------------------------------
// SimLogDevice

SimLogDevice::SimLogDevice(std::string name, DeviceProfile profile,
                           SimClock* clock)
    : name_(std::move(name)), profile_(std::move(profile)), clock_(clock) {}

uint64_t SimLogDevice::Append(std::string_view data) {
  MutexLock g(mu_);
  uint64_t offset = data_.size();
  data_.append(data.data(), data.size());
  return offset;
}

void SimLogDevice::Sync() {
  MutexLock g(mu_);
  // Every sync is one device round-trip: the unsynced tail transfers at
  // the sequential rate, but completing the force still pays the
  // profile's positioning overhead (rotational delay on disk, flush
  // latency on flash) no matter how few bytes it carries. This fixed
  // per-sync cost is exactly what group commit amortizes: N committers
  // sharing one sync split one positioning charge instead of paying N.
  if (data_.size() == synced_size_) {
    uint64_t ns = profile_.AccessNanos(0, /*sequential=*/false);
    clock_->AdvanceNanos(ns);
    stats_.sim_ns_charged += ns;
    return;
  }
  uint64_t tail = data_.size() - synced_size_;
  uint64_t ns = profile_.AccessNanos(tail, /*sequential=*/false);
  clock_->AdvanceNanos(ns);
  stats_.sim_ns_charged += ns;
  stats_.page_writes++;
  stats_.bytes_written += tail;
  stats_.random_accesses++;
  synced_size_ = data_.size();
}

Status SimLogDevice::ReadAt(uint64_t offset, uint64_t n, char* out) const {
  MutexLock g(mu_);
  if (offset + n > data_.size()) {
    return Status::IOError("log read past end");
  }
  const bool sequential = offset == last_read_end_;
  last_read_end_ = offset + n;
  uint64_t ns = profile_.AccessNanos(n, sequential);
  clock_->AdvanceNanos(ns);
  stats_.sim_ns_charged += ns;
  stats_.page_reads++;
  stats_.bytes_read += n;
  if (sequential) {
    stats_.sequential_accesses++;
  } else {
    stats_.random_accesses++;
  }
  std::memcpy(out, data_.data() + offset, n);
  return Status::OK();
}

uint64_t SimLogDevice::size() const {
  MutexLock g(mu_);
  return data_.size();
}

uint64_t SimLogDevice::synced_size() const {
  MutexLock g(mu_);
  return synced_size_;
}

void SimLogDevice::DropUnsynced() {
  MutexLock g(mu_);
  data_.resize(synced_size_);
}

DeviceStats SimLogDevice::stats() const {
  MutexLock g(mu_);
  return stats_;
}

void SimLogDevice::ResetStats() {
  MutexLock g(mu_);
  stats_ = DeviceStats();
}

}  // namespace spf
