// Simulated page-oriented block device with fault injection.
//
// SimDevice is the substrate substitute for the paper's failing hardware
// (section 1, section 3.2): it stores pages in memory, charges simulated
// time per access through a DeviceProfile, and can be instructed to produce
// exactly the failure phenomenology the paper catalogs:
//
//   * silent corruption  — bytes scrambled; in-page checksum catches it
//   * hard read error    — "latent sector error" [Bairavasundaram et al.]:
//                          the device cannot deliver the page at all
//   * stale version      — a previously valid image is returned; it passes
//                          all in-page tests and is only caught by the
//                          PageLSN-vs-PRI cross-check (section 5.2.2)
//   * torn write         — only a prefix of the next write is applied
//   * wear-out           — after a per-page write budget is exhausted,
//                          further writes silently fail (flash endurance)
//   * whole-device failure — every access fails (media failure class)

#pragma once

#include <cstdint>
#include "common/sync.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/device_profile.h"
#include "storage/page.h"

namespace spf {

/// Kinds of injectable page-level faults.
enum class FaultKind : uint8_t {
  kNone = 0,
  kSilentCorruption,  // detectable by checksum
  kReadError,         // unrecoverable read, surfaces as Status::ReadFailure
  kStaleVersion,      // plausible-but-wrong: old image with a valid checksum
  kTornWrite,         // next write is torn; later reads fail the checksum
};

/// Cumulative I/O accounting for one device.
struct DeviceStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t sequential_accesses = 0;
  uint64_t random_accesses = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t sim_ns_charged = 0;
  uint64_t injected_faults_hit = 0;
};

/// In-memory simulated block device addressed by PageId.
///
/// Thread-safe: all public methods take an internal mutex. All I/O advances
/// the shared SimClock according to the device's profile.
class SimDevice {
 public:
  /// Creates a device of `num_pages` pages of `page_size` bytes. The clock
  /// is shared with other devices of the same database and is not owned.
  SimDevice(std::string name, uint32_t page_size, uint64_t num_pages,
            DeviceProfile profile, SimClock* clock);

  SPF_DISALLOW_COPY(SimDevice);

  /// Reads page `id` into `out` (page_size bytes). Applies injected faults:
  /// may return ReadFailure, or deliver corrupted/stale bytes with an OK
  /// status (silent failure — the caller's verification must catch it).
  Status ReadPage(PageId id, char* out);

  /// Writes page `id` from `data` (page_size bytes). Subject to torn-write
  /// and wear-out faults: both complete with OK status (silent failure).
  Status WritePage(PageId id, const char* data);

  uint32_t page_size() const { return page_size_; }
  uint64_t num_pages() const { return num_pages_; }
  const std::string& name() const { return name_; }
  const DeviceProfile& profile() const { return profile_; }
  uint64_t capacity_bytes() const { return num_pages_ * page_size_; }

  /// Snapshot of cumulative stats.
  DeviceStats stats() const;
  void ResetStats();

  // --- Fault injection (testing / experiment API) -------------------------

  /// Scrambles `nbytes` bytes of the stored image at a pseudo-random offset
  /// without touching the stored checksum: the next read returns bytes that
  /// fail the in-page checksum.
  void InjectSilentCorruption(PageId id, uint64_t seed = 1, uint32_t nbytes = 64);

  /// Makes reads of `id` return Status::ReadFailure. If `permanent` is
  /// false a single subsequent read fails, after which the page reads fine
  /// again (transient fault, e.g. overloaded network storage, section 3.2).
  void InjectReadError(PageId id, bool permanent = true);

  /// Fails every page in [first, first + count): reads return ReadFailure
  /// until the page is next rewritten (a successful write maps in a
  /// replacement sector and heals the location). A bounded multi-sector
  /// media failure — the damage pattern partial restore targets, as
  /// opposed to FailDevice()'s unbounded whole-device loss.
  void FailPageRange(PageId first, uint64_t count);

  /// Reverts the stored image to the version captured by the most recent
  /// CapturePageVersion(id) call. The stale image carries a valid checksum,
  /// so only cross-page checks (PageLSN vs. page recovery index) detect it.
  /// Returns false if no captured version exists.
  bool InjectStaleVersion(PageId id);

  /// Snapshots the current stored image of `id` for later stale-version
  /// injection.
  void CapturePageVersion(PageId id);

  /// The next write to `id` is torn: only the first `valid_prefix` bytes are
  /// applied; the rest keeps the previous image.
  void InjectTornWrite(PageId id, uint32_t valid_prefix);

  /// After `writes_remaining` more successful writes, the location wears
  /// out: later writes scramble the stored bytes (flash endurance limit).
  void SetWearOutLimit(PageId id, uint32_t writes_remaining);

  /// Clears any injected fault on `id`.
  void ClearFault(PageId id);

  /// Fails the entire device: every subsequent access returns MediaFailure.
  void FailDevice() {
    MutexLock g(mu_);
    device_failed_ = true;
  }
  void ReviveDevice() {
    MutexLock g(mu_);
    device_failed_ = false;
  }
  bool device_failed() const {
    MutexLock g(mu_);
    return device_failed_;
  }

  /// Direct access to stored bytes bypassing faults and the clock; for
  /// tests that need to inspect or doctor the persistent image.
  void RawRead(PageId id, char* out) const;
  void RawWrite(PageId id, const char* data);

 private:
  struct FaultState {
    FaultKind kind = FaultKind::kNone;
    bool permanent = false;
    bool cleared_by_write = false;  // a rewrite remaps the failed sector
    uint32_t torn_prefix = 0;
    uint64_t seed = 0;
    uint32_t corrupt_bytes = 0;
  };

  uint64_t ChargeAccess(PageId id, bool is_write) SPF_REQUIRES(mu_);
  char* Slot(PageId id) SPF_REQUIRES(mu_) {
    return store_.data() + id * page_size_;
  }
  const char* Slot(PageId id) const SPF_REQUIRES(mu_) {
    return store_.data() + id * page_size_;
  }
  void ScrambleLocked(PageId id, uint64_t seed, uint32_t nbytes)
      SPF_REQUIRES(mu_);

  const std::string name_;
  const uint32_t page_size_;
  const uint64_t num_pages_;
  const DeviceProfile profile_;
  SimClock* const clock_;

  mutable OrderedMutex mu_{LockRank::kDevice};
  std::vector<char> store_ SPF_GUARDED_BY(mu_);
  std::unordered_map<PageId, FaultState> faults_ SPF_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::string> captured_versions_ SPF_GUARDED_BY(mu_);
  std::unordered_map<PageId, uint32_t> wear_remaining_ SPF_GUARDED_BY(mu_);
  PageId last_accessed_ SPF_GUARDED_BY(mu_) = kInvalidPageId;
  bool device_failed_ SPF_GUARDED_BY(mu_) = false;
  DeviceStats stats_ SPF_GUARDED_BY(mu_);
};

/// Append-only simulated byte device for the recovery log.
///
/// The recovery log is assumed to be on stable storage (section 5):
/// appended bytes are never lost once Sync() returns. Reads at arbitrary
/// offsets model the random I/O of walking a per-page log chain; appends
/// are sequential.
class SimLogDevice {
 public:
  SimLogDevice(std::string name, DeviceProfile profile, SimClock* clock);

  SPF_DISALLOW_COPY(SimLogDevice);

  /// Appends `data`; returns the byte offset at which it was written.
  /// Durable only after the next Sync().
  uint64_t Append(std::string_view data);

  /// Forces all appended bytes to stable storage (charged as one
  /// sequential write of the unsynced tail).
  void Sync();

  /// Reads `n` bytes at `offset` into `out`. Random access unless it
  /// continues the previous read. Reading unsynced bytes is allowed (the
  /// log buffer is in memory); reads past the end fail.
  Status ReadAt(uint64_t offset, uint64_t n, char* out) const;

  /// Total appended size (durable or not).
  uint64_t size() const;
  /// Size that is durable (would survive a crash).
  uint64_t synced_size() const;

  /// Simulates a crash: discards all bytes appended after the last Sync().
  void DropUnsynced();

  DeviceStats stats() const;
  void ResetStats();

 private:
  const std::string name_;
  const DeviceProfile profile_;
  SimClock* const clock_;

  mutable OrderedMutex mu_{LockRank::kDevice};
  std::string data_ SPF_GUARDED_BY(mu_);
  uint64_t synced_size_ SPF_GUARDED_BY(mu_) = 0;
  mutable uint64_t last_read_end_ SPF_GUARDED_BY(mu_) = UINT64_MAX;
  mutable DeviceStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
