// RestoreAdmission: the gate interface an incremental full restore uses to
// throttle the rest of the engine while segments stream back from backup.
//
// It lives here (below both the buffer pool and the log manager) because
// two independent layers consult it:
//
//  * the buffer pool, on every fault / fresh-page fix / exclusive cache
//    hit / MarkDirty re-check (see buffer_pool.h for the per-call-site
//    rationale), and
//  * the log manager, on every page-modifying append — the slot the record
//    reserved decides on which side of the restore's replay-plan scan it
//    falls, and AppendPageRecord parks records that landed past the scan
//    until their page's segment is final (see log_manager.h).

#pragma once

#include "common/status.h"
#include "storage/page.h"

namespace spf {

/// Admission check consulted on every buffer fault, every fresh-page fix,
/// every EXCLUSIVE cache hit, MarkDirty's last-line re-check, and every
/// page-modifying log append — before the device is touched or the cached
/// frame's update can become durable state. During an incremental full
/// restore the recovery module's RestoreGate implements this: a fault on a
/// page the restore sweep has not reached yet blocks until that page's
/// segment is back (and is registered for on-demand service so hot pages
/// jump the sweep queue), so readers resume as soon as THEIR page is
/// restored instead of when the whole device is. Outside a restore the
/// check is a single relaxed atomic load.
class RestoreAdmission {
 public:
  virtual ~RestoreAdmission() = default;
  /// Returns once page `id` may safely be read from (or written back to)
  /// the device and modifying it cannot race the restore sweep; an error
  /// means the restore failed and the fault must propagate it instead of
  /// retrying or repairing.
  virtual Status AwaitRestored(PageId id) = 0;
  /// True when `id`'s device copy is final w.r.t. any restore in
  /// progress (no restore, or `id`'s segment already restored); false
  /// from the moment a restore seals admission until the sweep restores
  /// the segment. LoadPage re-checks this AFTER a successful device read
  /// and re-reads on false: a read that raced the seal may have returned
  /// a checksum-valid but stale pre-failure image from the revived
  /// device, and the device-level synchronization guarantees the seal is
  /// visible here whenever that could have happened.
  virtual bool IsRestored(PageId id) const = 0;
};

}  // namespace spf
