// Database meta page (page 0) layout: root pointer and page-recovery-index
// partition extents. Updated via logged records like any other page.

#pragma once

#include <cstdint>

#include "storage/page.h"

namespace spf {

constexpr uint64_t kDbMetaMagic = 0x5350465f4d455441ull;  // "SPF_META"

/// Persistent fields stored right after the PageHeader on page 0.
struct DbMetaData {
  uint64_t magic;
  PageId root_pid;       ///< B-tree root (moves on root growth)
  PageId pri_a_start;    ///< PRI partition A extent (covers upper half)
  uint64_t pri_a_pages;
  PageId pri_b_start;    ///< PRI partition B extent (covers lower half)
  uint64_t pri_b_pages;
  uint64_t num_pages;    ///< data device capacity
  uint64_t reserved_pages;  ///< ids [0, reserved) never allocated to data
};

/// Typed accessor over a fixed meta page.
class MetaView {
 public:
  explicit MetaView(PageView page) : page_(page) {}

  DbMetaData* mutable_meta() {
    return reinterpret_cast<DbMetaData*>(page_.data() + kPageHeaderSize);
  }
  const DbMetaData& meta() const {
    return *reinterpret_cast<const DbMetaData*>(page_.data() + kPageHeaderSize);
  }

  bool valid() const { return meta().magic == kDbMetaMagic; }
  PageView page() { return page_; }

 private:
  PageView page_;
};

}  // namespace spf
