// Latency/bandwidth models for simulated devices.
//
// A DeviceProfile turns each I/O into simulated nanoseconds charged to the
// database's SimClock. Sequential access pays only transfer time; random
// access additionally pays a positioning overhead. The HDD profiles are
// chosen so the paper's section 6 arithmetic falls out exactly: restoring
// 100 GB at 100 MB/s costs 1,000 simulated seconds, and "dozens" of random
// log reads plus one backup-page read cost on the order of one second.

#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace spf {

/// Cost model for one device.
struct DeviceProfile {
  std::string name;
  /// Positioning overhead (seek + rotational delay) for each access that is
  /// not sequential with the previous one, in nanoseconds.
  uint64_t random_access_ns = 0;
  /// Sustained sequential transfer rate in bytes per second.
  uint64_t transfer_bytes_per_sec = 100 * kMB;

  /// Nanoseconds to transfer `bytes` once positioned.
  uint64_t TransferNanos(uint64_t bytes) const {
    if (transfer_bytes_per_sec == 0) return 0;  // Instant() profile
    // ns = bytes / (B/s) * 1e9, computed without overflow for TB-scale sizes.
    long double seconds = static_cast<long double>(bytes) /
                          static_cast<long double>(transfer_bytes_per_sec);
    return static_cast<uint64_t>(seconds * 1e9L);
  }

  /// Cost of a single access of `bytes`, sequential or random.
  uint64_t AccessNanos(uint64_t bytes, bool sequential) const {
    return TransferNanos(bytes) + (sequential ? 0 : random_access_ns);
  }

  /// Enterprise disk, 100 MB/s sequential, ~10 ms positioning. Matches the
  /// paper's "100 GB of data at 100 MB/s requires 1,000 s" example.
  static DeviceProfile Hdd100() {
    return {"hdd-100MBps", 10 * kMillisecond, 100 * kMB};
  }

  /// Modern disk, 200 MB/s sequential, ~8 ms positioning. Matches "a modern
  /// disk device of 2 TB at 200 MB/s requires 10,000 s".
  static DeviceProfile Hdd200() {
    return {"hdd-200MBps", 8 * kMillisecond, 200 * kMB};
  }

  /// SATA SSD / flash: no seeks to speak of, fast random reads.
  static DeviceProfile Ssd() {
    return {"ssd", 60 * kMicrosecond, 500 * kMB};
  }

  /// Byte-addressable non-volatile memory (section 3.2 discussion).
  static DeviceProfile Nvm() {
    return {"nvm", 1 * kMicrosecond, 2 * kGB};
  }

  /// Zero-cost profile for pure-logic unit tests.
  static DeviceProfile Instant() { return {"instant", 0, 0}; }
};

}  // namespace spf
