// Free-space management for data devices.
//
// The allocator tracks which page ids are in use. Durability model: page
// allocations and frees happen inside system transactions whose log records
// (PageFormat / PageFree) update the allocator during restart redo, and each
// checkpoint embeds a serialized snapshot of the allocator so analysis can
// start from a consistent image (DESIGN.md S3).

#pragma once

#include <cstdint>
#include "common/sync.h"
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"

namespace spf {

/// Bitmap-based page allocator. Thread-safe.
class PageAllocator {
 public:
  /// `num_pages` is the data-device capacity; ids [0, reserved) are
  /// pre-allocated for metadata (meta page, PRI partitions, ...).
  PageAllocator(uint64_t num_pages, uint64_t reserved);

  /// Allocates the lowest free page id. Fails with IOError when full.
  StatusOr<PageId> Allocate();

  /// Returns `id` to the free pool. Freeing a free page is a bug.
  void Free(PageId id);

  /// Marks `id` allocated (used by restart redo of PageFormat records and
  /// by checkpoint restore). Idempotent.
  void MarkAllocated(PageId id);

  /// Marks `id` free (restart redo of PageFree records). Idempotent.
  void MarkFree(PageId id);

  bool IsAllocated(PageId id) const;
  uint64_t allocated_count() const;
  uint64_t capacity() const { return num_pages_; }

  /// Serializes the full bitmap (checkpoint payload).
  std::string Serialize() const;

  /// Restores state from a Serialize() image.
  Status Deserialize(std::string_view data);

 private:
  const uint64_t num_pages_;
  mutable OrderedMutex mu_{LockRank::kStats};
  std::vector<bool> used_ SPF_GUARDED_BY(mu_);
  uint64_t allocated_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t next_hint_ SPF_GUARDED_BY(mu_) = 0;
};

/// Registry of storage locations that have failed and must not be reused
/// (paper section 5.2.3: "the old, failed location can be ... registered in
/// an appropriate data structure to prevent future use (bad block list)").
class BadBlockList {
 public:
  void Add(PageId id);
  bool Contains(PageId id) const;
  uint64_t size() const;
  std::vector<PageId> All() const;

  std::string Serialize() const;
  Status Deserialize(std::string_view data);

 private:
  mutable OrderedMutex mu_{LockRank::kStats};
  std::vector<PageId> blocks_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
