#include "storage/allocation.h"

#include <algorithm>

#include "common/coding.h"

namespace spf {

PageAllocator::PageAllocator(uint64_t num_pages, uint64_t reserved)
    : num_pages_(num_pages), used_(num_pages, false) {
  SPF_CHECK_LE(reserved, num_pages);
  for (uint64_t i = 0; i < reserved; ++i) used_[i] = true;
  allocated_ = reserved;
  next_hint_ = reserved;
}

StatusOr<PageId> PageAllocator::Allocate() {
  MutexLock g(mu_);
  for (uint64_t probe = 0; probe < num_pages_; ++probe) {
    uint64_t id = (next_hint_ + probe) % num_pages_;
    if (!used_[id]) {
      used_[id] = true;
      allocated_++;
      next_hint_ = id + 1;
      return PageId{id};
    }
  }
  return Status::IOError("device full: no free pages");
}

void PageAllocator::Free(PageId id) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  SPF_CHECK(used_[id]) << "double free of page " << id;
  used_[id] = false;
  allocated_--;
}

void PageAllocator::MarkAllocated(PageId id) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  if (!used_[id]) {
    used_[id] = true;
    allocated_++;
  }
}

void PageAllocator::MarkFree(PageId id) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  if (used_[id]) {
    used_[id] = false;
    allocated_--;
  }
}

bool PageAllocator::IsAllocated(PageId id) const {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  return used_[id];
}

uint64_t PageAllocator::allocated_count() const {
  MutexLock g(mu_);
  return allocated_;
}

std::string PageAllocator::Serialize() const {
  MutexLock g(mu_);
  std::string out;
  PutFixed64(&out, num_pages_);
  // Pack the bitmap 8 pages per byte.
  uint64_t nbytes = (num_pages_ + 7) / 8;
  std::string bits(nbytes, '\0');
  for (uint64_t i = 0; i < num_pages_; ++i) {
    if (used_[i]) bits[i / 8] |= static_cast<char>(1u << (i % 8));
  }
  PutLengthPrefixed(&out, bits);
  return out;
}

Status PageAllocator::Deserialize(std::string_view data) {
  MutexLock g(mu_);
  size_t off = 0;
  uint64_t n;
  std::string_view bits;
  if (!GetFixed64(data, &off, &n) || !GetLengthPrefixed(data, &off, &bits)) {
    return Status::Corruption("bad allocator image");
  }
  if (n != num_pages_ || bits.size() != (num_pages_ + 7) / 8) {
    return Status::Corruption("allocator image size mismatch");
  }
  allocated_ = 0;
  for (uint64_t i = 0; i < num_pages_; ++i) {
    bool u = (bits[i / 8] >> (i % 8)) & 1;
    used_[i] = u;
    if (u) allocated_++;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------

void BadBlockList::Add(PageId id) {
  MutexLock g(mu_);
  if (std::find(blocks_.begin(), blocks_.end(), id) == blocks_.end()) {
    blocks_.push_back(id);
  }
}

bool BadBlockList::Contains(PageId id) const {
  MutexLock g(mu_);
  return std::find(blocks_.begin(), blocks_.end(), id) != blocks_.end();
}

uint64_t BadBlockList::size() const {
  MutexLock g(mu_);
  return blocks_.size();
}

std::vector<PageId> BadBlockList::All() const {
  MutexLock g(mu_);
  return blocks_;
}

std::string BadBlockList::Serialize() const {
  MutexLock g(mu_);
  std::string out;
  PutFixed64(&out, blocks_.size());
  for (PageId id : blocks_) PutFixed64(&out, id);
  return out;
}

Status BadBlockList::Deserialize(std::string_view data) {
  MutexLock g(mu_);
  size_t off = 0;
  uint64_t n;
  if (!GetFixed64(data, &off, &n)) return Status::Corruption("bad bbl image");
  blocks_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!GetFixed64(data, &off, &id)) return Status::Corruption("bad bbl image");
    blocks_.push_back(id);
  }
  return Status::OK();
}

}  // namespace spf
