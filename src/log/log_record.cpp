#include "log/log_record.h"

#include <sstream>

#include "common/coding.h"
#include "common/crc32c.h"

namespace spf {

std::string_view LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInvalid: return "Invalid";
    case LogRecordType::kBeginTxn: return "BeginTxn";
    case LogRecordType::kCommitTxn: return "CommitTxn";
    case LogRecordType::kAbortTxn: return "AbortTxn";
    case LogRecordType::kEndTxn: return "EndTxn";
    case LogRecordType::kPageFormat: return "PageFormat";
    case LogRecordType::kPageFree: return "PageFree";
    case LogRecordType::kPageMigrate: return "PageMigrate";
    case LogRecordType::kBTreeInsert: return "BTreeInsert";
    case LogRecordType::kBTreeMarkGhost: return "BTreeMarkGhost";
    case LogRecordType::kBTreeUpdate: return "BTreeUpdate";
    case LogRecordType::kBTreeReclaimGhost: return "BTreeReclaimGhost";
    case LogRecordType::kBTreeSplit: return "BTreeSplit";
    case LogRecordType::kBTreeAdopt: return "BTreeAdopt";
    case LogRecordType::kBTreeGrowRoot: return "BTreeGrowRoot";
    case LogRecordType::kCompensation: return "Compensation";
    case LogRecordType::kPageWriteCompleted: return "PageWriteCompleted";
    case LogRecordType::kPriUpdate: return "PriUpdate";
    case LogRecordType::kFullPageImage: return "FullPageImage";
    case LogRecordType::kCheckpointBegin: return "CheckpointBegin";
    case LogRecordType::kCheckpointEnd: return "CheckpointEnd";
    case LogRecordType::kBadBlock: return "BadBlock";
  }
  return "Unknown";
}

std::string LogRecord::Serialize() const {
  std::string out;
  uint32_t total = kLogRecordHeaderSize + static_cast<uint32_t>(body.size());
  out.reserve(total);
  PutFixed32(&out, total);
  PutFixed32(&out, 0);  // crc placeholder
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  out.push_back('\0');
  out.push_back('\0');
  PutFixed64(&out, txn_id);
  PutFixed64(&out, prev_lsn);
  PutFixed64(&out, page_id);
  PutFixed64(&out, page_prev_lsn);
  PutFixed64(&out, undo_next_lsn);
  PutFixed32(&out, static_cast<uint32_t>(body.size()));
  out.append(body);
  // CRC over everything after the crc field.
  uint32_t crc = crc32c::Value(out.data() + 8, out.size() - 8);
  EncodeFixed32(out.data() + 4, crc32c::Mask(crc));
  return out;
}

StatusOr<LogRecord> ParseLogRecord(std::string_view data) {
  if (data.size() < kLogRecordHeaderSize) {
    return Status::Corruption("log record truncated (header)");
  }
  size_t off = 0;
  uint32_t total, masked_crc;
  GetFixed32(data, &off, &total);
  GetFixed32(data, &off, &masked_crc);
  if (total < kLogRecordHeaderSize || total > data.size()) {
    return Status::Corruption("log record length out of range");
  }
  uint32_t crc = crc32c::Value(data.data() + 8, total - 8);
  if (crc32c::Unmask(masked_crc) != crc) {
    return Status::Corruption("log record crc mismatch");
  }
  LogRecord rec;
  rec.length = total;
  rec.type = static_cast<LogRecordType>(data[off]);
  rec.flags = static_cast<uint8_t>(data[off + 1]);
  off += 4;  // type, flags, pad
  GetFixed64(data, &off, &rec.txn_id);
  GetFixed64(data, &off, &rec.prev_lsn);
  GetFixed64(data, &off, &rec.page_id);
  GetFixed64(data, &off, &rec.page_prev_lsn);
  GetFixed64(data, &off, &rec.undo_next_lsn);
  uint32_t body_len;
  GetFixed32(data, &off, &body_len);
  if (off + body_len > total) {
    return Status::Corruption("log record truncated (body)");
  }
  rec.body.assign(data.data() + off, body_len);
  return rec;
}

std::string LogRecord::DebugString() const {
  std::ostringstream os;
  os << "[" << lsn << "] " << LogRecordTypeName(type);
  if (is_system_txn()) os << "(sys)";
  if (txn_id != kInvalidTxnId) os << " txn=" << txn_id;
  if (prev_lsn != kInvalidLsn) os << " prev=" << prev_lsn;
  if (page_id != kInvalidPageId) os << " page=" << page_id;
  if (page_prev_lsn != kInvalidLsn) os << " pagePrev=" << page_prev_lsn;
  if (undo_next_lsn != kInvalidLsn) os << " undoNext=" << undo_next_lsn;
  os << " body=" << body.size() << "B";
  return os.str();
}

}  // namespace spf
