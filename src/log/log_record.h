// Log record model and on-log serialization.
//
// Every record carries BOTH chains the paper distinguishes:
//   * prev_lsn       — the per-transaction log chain (section 5.1.1), used
//                      for transaction rollback;
//   * page_prev_lsn  — the per-page log chain (section 5.1.4), anchored in
//                      the data page's PageLSN (Figure 6), used for
//                      single-page recovery, page versioning, and the
//                      defensive redo-sequence check.
//
// Record bodies are opaque byte strings whose encoding belongs to the layer
// that logs them (B-tree operations, PRI maintenance, checkpoints); the log
// module stores and retrieves them without interpretation.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"

namespace spf {

using TxnId = uint64_t;
constexpr TxnId kInvalidTxnId = 0;

/// Discriminator for every record written to the recovery log.
enum class LogRecordType : uint8_t {
  kInvalid = 0,

  // Transaction control.
  kBeginTxn = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
  kEndTxn = 4,

  // Page lifecycle (system transactions).
  kPageFormat = 10,  ///< body: initial page image descriptor; also serves as
                     ///< a backup source (section 5.2.1)
  kPageFree = 11,
  kPageMigrate = 12,  ///< body: old page id -> new page id

  // B-tree operations (bodies defined in btree/btree_log.h).
  kBTreeInsert = 20,
  kBTreeMarkGhost = 21,    ///< logical delete: record becomes a ghost
  kBTreeUpdate = 22,
  kBTreeReclaimGhost = 23, ///< system txn: physically remove ghost records
  kBTreeSplit = 24,        ///< donate upper records to a new foster child
  kBTreeAdopt = 25,        ///< parent adopts a foster child
  kBTreeGrowRoot = 26,     ///< install a new root above the old one

  // Compensation (redo-only; undo_next_lsn continues the rollback).
  kCompensation = 50,

  // Write tracking and page recovery index maintenance.
  kPageWriteCompleted = 60,  ///< section 5.1.2 optimization (baseline mode)
  kPriUpdate = 61,           ///< section 5.2.4: PRI entry update after a
                             ///< completed data page write (subsumes 60)
  kFullPageImage = 62,       ///< in-log page backup (section 5.2.1)

  // Checkpoints (section 5.2.6).
  kCheckpointBegin = 70,
  kCheckpointEnd = 71,

  kBadBlock = 80,  ///< failed location registered, must not be reused
};

std::string_view LogRecordTypeName(LogRecordType type);

/// Flag bits in LogRecord::flags.
constexpr uint8_t kLogFlagSystemTxn = 0x1;

/// One recovery-log record. `lsn` and `length` are assigned by the log
/// manager on append and recovered on read.
struct LogRecord {
  LogRecordType type = LogRecordType::kInvalid;
  uint8_t flags = 0;
  TxnId txn_id = kInvalidTxnId;
  Lsn prev_lsn = kInvalidLsn;       ///< per-transaction chain
  PageId page_id = kInvalidPageId;  ///< page this record modifies, if any
  Lsn page_prev_lsn = kInvalidLsn;  ///< per-page chain
  Lsn undo_next_lsn = kInvalidLsn;  ///< next record to undo (CLRs only)
  std::string body;

  // Assigned by the log manager.
  Lsn lsn = kInvalidLsn;
  uint32_t length = 0;

  bool is_system_txn() const { return flags & kLogFlagSystemTxn; }

  /// Serializes to the on-log format (length, crc, header, body).
  std::string Serialize() const;

  /// Human-readable one-liner for debugging and log dumps.
  std::string DebugString() const;
};

/// True for the record types that modify a data page through the per-page
/// chain (logged via LogManager::AppendPageRecord): exactly the redo set a
/// media replay re-applies and the entry set the log archiver partitions
/// into sorted runs. kPriUpdate (PRI-page chains, consumed only by
/// RecoverPriWindow), kFullPageImage, and kBadBlock carry a page_id but
/// are deliberately NOT on the per-page chain — including them in a chain
/// fetch would break the redo-sequence check. One shared predicate so the
/// media replay plan and the archive can never diverge.
inline bool IsPageReplayRecord(LogRecordType type) {
  switch (type) {
    case LogRecordType::kPageFormat:
    case LogRecordType::kBTreeInsert:
    case LogRecordType::kBTreeMarkGhost:
    case LogRecordType::kBTreeUpdate:
    case LogRecordType::kBTreeReclaimGhost:
    case LogRecordType::kBTreeSplit:
    case LogRecordType::kBTreeAdopt:
    case LogRecordType::kBTreeGrowRoot:
    case LogRecordType::kPageMigrate:
    case LogRecordType::kCompensation:
      return true;
    default:
      return false;
  }
}

/// Size of the fixed serialized header that precedes the body.
constexpr uint32_t kLogRecordHeaderSize =
    4 /*length*/ + 4 /*crc*/ + 1 /*type*/ + 1 /*flags*/ + 2 /*pad*/ +
    8 /*txn_id*/ + 8 /*prev*/ + 8 /*page_id*/ + 8 /*page_prev*/ +
    8 /*undo_next*/ + 4 /*body_len*/;

/// Parses a record from `data` (which must start at the record's first
/// byte and contain the whole record). Validates the CRC.
StatusOr<LogRecord> ParseLogRecord(std::string_view data);

}  // namespace spf
