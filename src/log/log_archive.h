// Log archiver: background partitioning of the recovery log into sorted
// runs ("Instant restore after a media failure", Sauer, Graefe & Härder,
// arXiv:1702.08042; the single-page-failure paper's section 6 cost model
// likewise assumes indexed/sorted access to the per-page log history).
//
// The archiver continuously drains the DURABLE log into runs stored on a
// SimDevice-backed archive volume. Each run holds the page-modifying
// records (IsPageReplayRecord) of one contiguous log interval, re-sorted
// by (page-id, LSN), with a header page carrying LSN bounds, page-range
// bounds, and a fence index for positioned sequential reads. A bounded
// merge ladder (merge_fanin runs of a level k-way merge into one run of
// the next) keeps the run count O(log N), so fetching one page's full
// archived history costs O(runs) positioned sequential reads instead of
// one random log read per record.
//
// Volume layout (pages of the archive device):
//   page 0, 1   double-buffered directory: magic, epoch, archived_upto,
//               run extent list, CRC. Published alternately; recovery
//               picks the valid directory with the higher epoch.
//   page 2...   run extents: 1 header page + data pages, allocated
//               first-fit in the gaps left by merged-away runs.
//
// Run data is a flat byte stream chunked into pages; each entry is
//   [u64 lsn][u32 len][len bytes: LogRecord::Serialize() output]
// (the LSN is explicit because the on-log serialization derives it from
// the record's byte offset, which a re-sorted run no longer preserves).
//
// Crash safety: data pages are written first, the header next, the
// directory last. A crash anywhere mid-run leaves the previous directory
// intact, so the archive is always a prefix-valid set of runs; the next
// tick re-archives from the directory's archived_upto (idempotent) and
// later runs simply overwrite the orphaned extent.
//
// Invariants the offline fsck (tools/check_archive.py) verifies:
//   * entries within a run strictly ascend by (page_id, lsn);
//   * every entry's page id / LSN lies within the header's bounds;
//   * run log ranges tile [first_lsn, archived_upto) with no gaps or
//     overlaps (merges always consume the oldest log-contiguous prefix
//     of a level, so the tiling survives the ladder);
//   * fences point at real entry boundaries in ascending order.
//
// Coordination: like the scrubber, background ticks skip while a full
// restore owns the device (SetRestorePause). After each publish the
// archiver advances the log's truncation watermark to
// min(archived_upto, master record): archived AND checkpointed ⇒
// recyclable (bookkeeping only; see LogManager).
//
// Thread safety: consumers (FetchPageChain / FetchRange) may run
// concurrently with each other and with the background tick; run writes
// and directory publishes take the writer side of one RW lock so a
// reader never observes a half-written extent.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "storage/sim_device.h"

namespace spf {

/// Cumulative archiver counters (StatsSnapshot v2).
struct ArchiveStats {
  uint64_t ticks = 0;           ///< drain attempts (incl. empty/skipped)
  uint64_t runs_written = 0;    ///< level-0 runs cut from the tail
  uint64_t runs_merged = 0;     ///< input runs consumed by the ladder
  uint64_t merges = 0;          ///< ladder merge operations
  uint64_t archived_bytes = 0;  ///< entry bytes written into level-0 runs
  uint64_t records_archived = 0;  ///< page-replay records archived
  /// Archive data pages read in service of consumers and merges (the
  /// sequential-read currency repair/restore pays instead of random log
  /// reads).
  uint64_t merge_reads = 0;
  /// Log bytes the drain scanned (every byte is scanned exactly once on
  /// its way into the archive).
  uint64_t tail_scan_bytes = 0;
  /// Background ticks skipped while a restore owned the device.
  uint64_t restore_skips = 0;
  /// Recyclable log prefix published to the LogManager (archived AND
  /// checkpointed), in bytes.
  uint64_t truncated_log_bytes = 0;
  Lsn archived_upto = 0;    ///< exclusive watermark snapshot
  uint64_t active_runs = 0; ///< runs currently in the directory
};

/// One run's metadata as recovered from its header page (introspection,
/// tests, and the fsck tool's cross-check).
struct ArchiveRunInfo {
  uint64_t start_page = 0;  ///< header page; data follows at +1
  uint32_t data_pages = 0;  ///< data extent length in pages
  uint32_t level = 0;       ///< ladder level (0 = cut from the tail)
  uint64_t seq = 0;          ///< unique, monotonically assigned
  uint64_t data_bytes = 0;   ///< payload bytes across the data pages
  uint64_t record_count = 0;  ///< entries in the run
  PageId min_page_id = kInvalidPageId;  ///< lowest page id in the run
  PageId max_page_id = kInvalidPageId;  ///< highest page id in the run
  Lsn min_lsn = kInvalidLsn;  ///< lowest entry LSN
  Lsn max_lsn = kInvalidLsn;  ///< highest entry LSN
  Lsn log_start = 0;  ///< archived log interval [log_start, log_end)
  Lsn log_end = 0;    ///< exclusive end of the archived log interval
};

/// Tuning knobs (DatabaseOptions archive_* knobs map onto these).
struct ArchiverOptions {
  /// Target entry bytes per level-0 run: a drain cuts a run once this
  /// much sorted payload has accumulated (or the durable tail ends).
  uint64_t run_bytes = 256 * 1024;
  /// Wall-clock cadence of the background loop; 0 drains continuously.
  uint64_t interval_wall_ms = 0;
  /// Runs per level that trigger a k-way merge into the next level.
  size_t merge_fanin = 8;
};

/// Background log archiver + sorted-run store. See the file comment.
class LogArchiver {
 public:
  /// Binds the archiver to its volume and the log it drains. Call
  /// Recover() before first use.
  LogArchiver(SimDevice* archive_device, LogManager* log,
              ArchiverOptions options);
  /// Stops the background thread if it is still running.
  ~LogArchiver();

  SPF_DISALLOW_COPY(LogArchiver);

  /// Loads the directory from the archive volume (picks the valid epoch)
  /// and re-reads every referenced run header. A fresh (all-zero) volume
  /// recovers to an empty archive. Call before Start / first use.
  Status Recover();

  /// Pause predicate consulted before each background tick (install the
  /// restore gate's active() here, as the scrubber does). May be empty.
  void SetRestorePause(std::function<bool()> paused) {
    paused_ = std::move(paused);
  }

  /// One drain increment: scans the durable log from archived_upto, cuts
  /// at most one sorted run (~run_bytes of payload), publishes it, and
  /// runs the merge ladder to quiescence. Returns true when the archive
  /// advanced, false when there was nothing to drain (or a restore pause
  /// deferred the tick). Safe to call concurrently with consumers; ticks
  /// themselves serialize.
  StatusOr<bool> ArchiveTick();

  /// Drains until the archive covers the entire durable log (test/bench
  /// convenience; loops ArchiveTick).
  Status ArchiveAll();

  /// Starts the background drain loop. Idempotent.
  void Start();
  /// Stops and joins the background thread.
  void Stop();
  /// Whether the background drain loop is running.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Exclusive archive watermark: every page-modifying record with
  /// lsn < archived_upto() is in some run. Never regresses (survives
  /// crashes via the directory).
  Lsn archived_upto() const;

  /// Fetches page `id`'s archived history in (min_lsn_exclusive,
  /// max_lsn_inclusive], ascending by LSN, as one positioned sequential
  /// read per overlapping run. Appends to `*out`; returns the number of
  /// archive data pages read.
  StatusOr<uint64_t> FetchPageChain(PageId id, Lsn min_lsn_exclusive,
                                    Lsn max_lsn_inclusive,
                                    std::vector<LogRecord>* out);

  /// Streams every archived record of pages in [lo, hi] with
  /// lsn > min_lsn_exclusive through `emit`. Emission is run-major in
  /// log order, so each individual page's records arrive ascending by
  /// LSN. Returns the number of archive data pages read. The k-way
  /// building block for batched repair and segment restore.
  StatusOr<uint64_t> FetchRange(
      PageId lo, PageId hi, Lsn min_lsn_exclusive,
      const std::function<void(LogRecord&&)>& emit);

  /// Cumulative counters plus a consistent watermark/run-count snapshot.
  ArchiveStats stats() const;
  /// Snapshot of the directory's runs (tests, fsck cross-checks).
  std::vector<ArchiveRunInfo> runs() const;

  /// Test hook: the next run write completes its data and header pages
  /// but fails before the directory publish — a crash mid-run-write.
  /// The directory (and archived_upto) stay at their previous state.
  void FailNextPublishForTest() { fail_next_publish_.store(true); }

  /// Volume pages reserved for the double-buffered directory.
  static constexpr uint64_t kDirectoryPages = 2;

 private:
  struct Fence {
    PageId page_id;
    Lsn lsn;
    uint64_t offset;  ///< entry boundary within the run's data stream
  };
  struct Run {
    ArchiveRunInfo info;
    std::vector<Fence> fences;
  };
  struct Entry {
    PageId page_id;
    Lsn lsn;
    std::string payload;  ///< LogRecord::Serialize() bytes
  };

  std::string EncodeDirectoryLocked() const;
  Status PublishDirectoryLocked();
  Status LoadRunHeader(uint64_t start_page, Run* run) const;

  /// First-fit extent allocation among the gaps of the current run list.
  StatusOr<uint64_t> AllocateExtentLocked(uint64_t pages) const;

  /// Writes one run (data pages, fences, header) WITHOUT publishing it.
  /// io_mu_ (writer) must be held.
  Status WriteRun(std::vector<Entry>* entries, uint32_t level, Lsn log_start,
                  Lsn log_end, Run* out);

  /// Walks a run's raw entries from `start_offset` (an entry boundary),
  /// loading data pages on demand; `fn` returning false stops the walk.
  /// The page id is decoded from the payload's fixed header without a
  /// full (CRC-checked) parse. io_mu_ must be held.
  Status ForEachRawEntry(
      const Run& run, uint64_t start_offset,
      const std::function<bool(PageId, Lsn, std::string_view)>& fn,
      uint64_t* pages_read) const;

  /// Reads a run's entries for pages in [lo, hi] with
  /// lsn > min_lsn_exclusive, starting from the best fence. Returns data
  /// pages read. io_mu_ (reader or writer) must be held.
  StatusOr<uint64_t> StreamRun(const Run& run, PageId lo, PageId hi,
                               Lsn min_lsn_exclusive,
                               const std::function<void(LogRecord&&)>& emit)
      const;

  /// Runs the merge ladder until no level holds merge_fanin runs.
  Status MergeLadderLocked() SPF_REQUIRES(tick_mu_);

  void AdvanceLogWatermark();
  void BackgroundLoop();

  uint64_t max_fences() const;

  SimDevice* const device_;
  LogManager* const log_;
  const ArchiverOptions options_;
  std::function<bool()> paused_;

  /// Serializes drains/merges (the directory's single writer).
  OrderedMutex tick_mu_{LockRank::kDaemonCadence};
  /// Readers stream run extents; the writer holds it across run writes
  /// and directory publishes so readers never see a half-written extent.
  mutable OrderedSharedMutex io_mu_{LockRank::kArchiveIo};

  mutable OrderedMutex mu_{LockRank::kArchiveDir};  ///< directory + stats
  std::vector<Run> runs_ SPF_GUARDED_BY(mu_);
  Lsn archived_upto_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t epoch_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ SPF_GUARDED_BY(mu_) = 1;
  ArchiveStats stats_ SPF_GUARDED_BY(mu_);

  std::atomic<bool> fail_next_publish_{false};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace spf
