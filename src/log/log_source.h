// LogSource: where a per-page log chain comes from.
//
// Single-page repair needs one thing from the log subsystem: the chain of
// records that modified page P in (backup_lsn, target], newest first.
// There are two ways to materialize it:
//
//   * TailLogSource    — the classic walk: follow page_prev_lsn pointers
//                        backward with one random log read per record
//                        (paper Figure 10 steps 3; the serial baseline).
//   * ArchiveLogSource — walk the unarchived tail the same way, but stop
//                        at the archiver's watermark and fetch everything
//                        below it from the sorted runs as one positioned
//                        sequential read per run (instant-restore style).
//
// Both return an identical chain for an identical request — the archive
// stores byte-exact copies of the log records — so consumers can be wired
// to either without behavioral drift; only the I/O pattern changes. The
// defensive redo-sequence check in SinglePageRecovery::ApplyChain still
// validates the chain's internal continuity record by record either way.

#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "log/log_archive.h"
#include "log/log_manager.h"
#include "log/log_record.h"

namespace spf {

/// I/O accounting for one chain fetch, accumulated into the caller's
/// repair stats.
struct LogSourceStats {
  uint64_t log_reads = 0;      ///< random per-record log reads (tail walk)
  uint64_t archive_reads = 0;  ///< sequential archive data pages read
};

/// Produces page `id`'s per-page chain in (backup_lsn, target], NEWEST
/// first (the LIFO order ApplyChain pops). Appends to `*newest_first`.
/// Returns Corruption when the chain is inconsistent with the backup
/// (foreign record, or the walk bypasses backup_lsn without touching it).
class LogSource {
 public:
  virtual ~LogSource() = default;
  virtual Status FetchChain(PageId id, Lsn backup_lsn, Lsn target,
                            std::vector<LogRecord>* newest_first,
                            LogSourceStats* stats) = 0;
};

/// Chain walk over the log device only: one random read per record.
class TailLogSource : public LogSource {
 public:
  explicit TailLogSource(const LogManager* log) : log_(log) {}
  SPF_DISALLOW_COPY(TailLogSource);

  Status FetchChain(PageId id, Lsn backup_lsn, Lsn target,
                    std::vector<LogRecord>* newest_first,
                    LogSourceStats* stats) override;

 private:
  const LogManager* const log_;
};

/// Tail walk down to the archiver's watermark, then one sorted-run probe
/// for the archived remainder. Degrades to a pure tail walk while the
/// archive is empty, so wiring this in changes nothing until the archiver
/// runs.
class ArchiveLogSource : public LogSource {
 public:
  ArchiveLogSource(LogArchiver* archive, const LogManager* log)
      : archive_(archive), log_(log) {}
  SPF_DISALLOW_COPY(ArchiveLogSource);

  Status FetchChain(PageId id, Lsn backup_lsn, Lsn target,
                    std::vector<LogRecord>* newest_first,
                    LogSourceStats* stats) override;

 private:
  LogArchiver* const archive_;
  const LogManager* const log_;
};

}  // namespace spf
