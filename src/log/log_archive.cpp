#include "log/log_archive.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace spf {

namespace {

constexpr char kDirectoryMagic[8] = {'S', 'P', 'F', 'A', 'R', 'C', 'H', 'V'};
constexpr char kRunMagic[8] = {'S', 'P', 'F', 'A', 'R', 'U', 'N', '1'};

// Directory page: magic, epoch, archived_upto, next_seq, run_count,
// run_count * {start_page u64, data_pages u32}, crc32c of everything before.
constexpr size_t kDirectoryFixedBytes = 8 + 8 + 8 + 8 + 4;
constexpr size_t kDirectoryRunBytes = 8 + 4;

// Run header page: magic, seq, level, data_pages, data_bytes, record_count,
// min/max page id, min/max lsn, log_start, log_end, data_crc, fence_count,
// fence_count * {page_id u64, lsn u64, offset u64}, crc32c of everything
// before.
constexpr size_t kRunHeaderFixedBytes =
    8 + 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4 + 4;
constexpr size_t kFenceBytes = 8 + 8 + 8;

// Per-entry framing within a run's data stream: [u64 lsn][u32 payload len].
constexpr uint64_t kEntryFrameBytes = 12;

// Byte offset of page_id within LogRecord::Serialize() output (length, crc,
// type, flags, pad, txn_id, prev_lsn precede it); lets the raw-entry walk
// partition by page without paying a full parse + CRC per skipped entry.
constexpr size_t kPayloadPageIdOffset = 4 + 4 + 1 + 1 + 2 + 8 + 8;
static_assert(kPayloadPageIdOffset + 8 <= kLogRecordHeaderSize,
              "page_id must sit inside the fixed record header");

bool EntryBefore(PageId a_page, Lsn a_lsn, PageId b_page, Lsn b_lsn) {
  return a_page != b_page ? a_page < b_page : a_lsn < b_lsn;
}

}  // namespace

LogArchiver::LogArchiver(SimDevice* archive_device, LogManager* log,
                         ArchiverOptions options)
    : device_(archive_device), log_(log), options_(options) {
  SPF_CHECK_GE(options_.merge_fanin, 2u) << "merge fan-in below 2";
  SPF_CHECK_GT(device_->num_pages(), kDirectoryPages + 2)
      << "archive volume too small for a directory and one run";
}

LogArchiver::~LogArchiver() { Stop(); }

uint64_t LogArchiver::max_fences() const {
  return (device_->page_size() - kRunHeaderFixedBytes - 4) / kFenceBytes;
}

// --- Directory ------------------------------------------------------------

std::string LogArchiver::EncodeDirectoryLocked() const {
  std::string buf;
  buf.append(kDirectoryMagic, 8);
  PutFixed64(&buf, epoch_);
  PutFixed64(&buf, archived_upto_);
  PutFixed64(&buf, next_seq_);
  PutFixed32(&buf, static_cast<uint32_t>(runs_.size()));
  for (const Run& r : runs_) {
    PutFixed64(&buf, r.info.start_page);
    PutFixed32(&buf, r.info.data_pages);
  }
  PutFixed32(&buf, crc32c::Value(buf.data(), buf.size()));
  return buf;
}

Status LogArchiver::PublishDirectoryLocked() {
  epoch_++;
  std::string buf = EncodeDirectoryLocked();
  if (buf.size() > device_->page_size()) {
    epoch_--;
    return Status::IOError("archive directory full (too many runs)");
  }
  buf.resize(device_->page_size(), '\0');
  return device_->WritePage(epoch_ % kDirectoryPages, buf.data());
}

Status LogArchiver::LoadRunHeader(uint64_t start_page, Run* run) const {
  const uint32_t ps = device_->page_size();
  std::string buf(ps, '\0');
  SPF_RETURN_IF_ERROR(
      device_->ReadPage(static_cast<PageId>(start_page), buf.data()));
  if (std::memcmp(buf.data(), kRunMagic, 8) != 0) {
    return Status::Corruption("archive run header magic mismatch");
  }
  std::string_view sv(buf);
  size_t off = 8;
  ArchiveRunInfo& info = run->info;
  info.start_page = start_page;
  uint32_t fence_count = 0;
  if (!GetFixed64(sv, &off, &info.seq) || !GetFixed32(sv, &off, &info.level) ||
      !GetFixed32(sv, &off, &info.data_pages) ||
      !GetFixed64(sv, &off, &info.data_bytes) ||
      !GetFixed64(sv, &off, &info.record_count) ||
      !GetFixed64(sv, &off, &info.min_page_id) ||
      !GetFixed64(sv, &off, &info.max_page_id) ||
      !GetFixed64(sv, &off, &info.min_lsn) ||
      !GetFixed64(sv, &off, &info.max_lsn) ||
      !GetFixed64(sv, &off, &info.log_start) ||
      !GetFixed64(sv, &off, &info.log_end)) {
    return Status::Corruption("archive run header truncated");
  }
  uint32_t data_crc = 0;
  if (!GetFixed32(sv, &off, &data_crc) || !GetFixed32(sv, &off, &fence_count)) {
    return Status::Corruption("archive run header truncated");
  }
  (void)data_crc;  // verified lazily by the offline fsck, not on load
  run->fences.clear();
  run->fences.reserve(fence_count);
  for (uint32_t i = 0; i < fence_count; ++i) {
    Fence f;
    if (!GetFixed64(sv, &off, &f.page_id) || !GetFixed64(sv, &off, &f.lsn) ||
        !GetFixed64(sv, &off, &f.offset)) {
      return Status::Corruption("archive run fence list truncated");
    }
    run->fences.push_back(f);
  }
  uint32_t stored_crc = 0;
  size_t crc_off = off;
  if (!GetFixed32(sv, &off, &stored_crc) ||
      stored_crc != crc32c::Value(buf.data(), crc_off)) {
    return Status::Corruption("archive run header checksum mismatch");
  }
  if (start_page + 1 + info.data_pages > device_->num_pages()) {
    return Status::Corruption("archive run extent past end of volume");
  }
  return Status::OK();
}

Status LogArchiver::Recover() {
  MutexLock tick(tick_mu_);
  WriterLock io(io_mu_);
  const uint32_t ps = device_->page_size();
  std::string best;
  uint64_t best_epoch = 0;
  bool any_magic = false;
  for (uint64_t p = 0; p < kDirectoryPages; ++p) {
    std::string buf(ps, '\0');
    SPF_RETURN_IF_ERROR(device_->ReadPage(static_cast<PageId>(p), buf.data()));
    if (std::memcmp(buf.data(), kDirectoryMagic, 8) != 0) continue;
    any_magic = true;
    size_t off = 8;
    uint64_t epoch = 0, upto = 0, next_seq = 0;
    uint32_t count = 0;
    std::string_view sv(buf);
    if (!GetFixed64(sv, &off, &epoch) || !GetFixed64(sv, &off, &upto) ||
        !GetFixed64(sv, &off, &next_seq) || !GetFixed32(sv, &off, &count)) {
      continue;
    }
    size_t end = kDirectoryFixedBytes + count * kDirectoryRunBytes;
    if (end + 4 > ps) continue;
    uint32_t stored = DecodeFixed32(buf.data() + end);
    if (stored != crc32c::Value(buf.data(), end)) continue;
    if (epoch >= best_epoch) {
      best_epoch = epoch;
      best = buf;
    }
  }
  if (best.empty()) {
    if (any_magic) {
      return Status::Corruption("archive directory unreadable in both epochs");
    }
    // Fresh volume: empty archive.
    MutexLock g(mu_);
    runs_.clear();
    archived_upto_ = 0;
    epoch_ = 0;
    next_seq_ = 1;
    return Status::OK();
  }
  std::string_view sv(best);
  size_t off = 8;
  uint64_t epoch = 0, upto = 0, next_seq = 0;
  uint32_t count = 0;
  GetFixed64(sv, &off, &epoch);
  GetFixed64(sv, &off, &upto);
  GetFixed64(sv, &off, &next_seq);
  GetFixed32(sv, &off, &count);
  std::vector<Run> runs(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t start_page = 0;
    uint32_t data_pages = 0;
    GetFixed64(sv, &off, &start_page);
    GetFixed32(sv, &off, &data_pages);
    SPF_RETURN_IF_ERROR(LoadRunHeader(start_page, &runs[i]));
    if (runs[i].info.data_pages != data_pages) {
      return Status::Corruption("archive directory/run extent size mismatch");
    }
  }
  MutexLock g(mu_);
  runs_ = std::move(runs);
  archived_upto_ = upto;
  epoch_ = epoch;
  next_seq_ = next_seq;
  return Status::OK();
}

// --- Run writing ----------------------------------------------------------

StatusOr<uint64_t> LogArchiver::AllocateExtentLocked(uint64_t pages) const {
  std::vector<std::pair<uint64_t, uint64_t>> used;  // {start, length}
  used.reserve(runs_.size());
  for (const Run& r : runs_) {
    used.emplace_back(r.info.start_page, 1 + r.info.data_pages);
  }
  std::sort(used.begin(), used.end());
  uint64_t cursor = kDirectoryPages;
  for (const auto& [start, len] : used) {
    if (start >= cursor + pages) break;  // gap fits
    cursor = std::max(cursor, start + len);
  }
  if (cursor + pages > device_->num_pages()) {
    return Status::IOError("archive volume full");
  }
  return cursor;
}

Status LogArchiver::WriteRun(std::vector<Entry>* entries, uint32_t level,
                             Lsn log_start, Lsn log_end, Run* out) {
  const uint32_t ps = device_->page_size();
  ArchiveRunInfo& info = out->info;
  info.level = level;
  info.log_start = log_start;
  info.log_end = log_end;
  info.record_count = entries->size();

  // Flatten the sorted entries into the data stream, fencing every
  // `stride` entries so a positioned read lands at most stride entries
  // before its page of interest.
  std::string stream;
  out->fences.clear();
  const uint64_t total = entries->size();
  const uint64_t stride =
      total == 0 ? 1 : (total + max_fences() - 1) / max_fences();
  for (uint64_t i = 0; i < total; ++i) {
    Entry& e = (*entries)[i];
    if (i > 0) {
      const Entry& prev = (*entries)[i - 1];
      SPF_CHECK(EntryBefore(prev.page_id, prev.lsn, e.page_id, e.lsn))
          << "archive run entries out of order";
    }
    if (i % stride == 0) {
      out->fences.push_back(Fence{e.page_id, e.lsn, stream.size()});
    }
    PutFixed64(&stream, e.lsn);
    PutFixed32(&stream, static_cast<uint32_t>(e.payload.size()));
    stream.append(e.payload);
  }
  info.data_bytes = stream.size();
  info.data_pages = static_cast<uint32_t>((stream.size() + ps - 1) / ps);
  if (total > 0) {
    info.min_page_id = entries->front().page_id;
    info.max_page_id = entries->back().page_id;
    auto [lo, hi] = std::minmax_element(
        entries->begin(), entries->end(),
        [](const Entry& a, const Entry& b) { return a.lsn < b.lsn; });
    info.min_lsn = lo->lsn;
    info.max_lsn = hi->lsn;
  } else {
    info.min_page_id = info.max_page_id = kInvalidPageId;
    info.min_lsn = info.max_lsn = kInvalidLsn;
  }

  uint64_t start_page;
  {
    MutexLock g(mu_);
    SPF_ASSIGN_OR_RETURN(start_page,
                         AllocateExtentLocked(1 + info.data_pages));
    info.seq = next_seq_++;
  }
  info.start_page = start_page;

  // Data pages first, header last (the directory publish that makes the
  // run reachable happens after WriteRun returns).
  std::string page(ps, '\0');
  for (uint32_t p = 0; p < info.data_pages; ++p) {
    const uint64_t off = static_cast<uint64_t>(p) * ps;
    const uint64_t n = std::min<uint64_t>(ps, stream.size() - off);
    std::memcpy(page.data(), stream.data() + off, n);
    std::memset(page.data() + n, 0, ps - n);
    SPF_RETURN_IF_ERROR(device_->WritePage(
        static_cast<PageId>(start_page + 1 + p), page.data()));
  }

  std::string hdr;
  hdr.append(kRunMagic, 8);
  PutFixed64(&hdr, info.seq);
  PutFixed32(&hdr, info.level);
  PutFixed32(&hdr, info.data_pages);
  PutFixed64(&hdr, info.data_bytes);
  PutFixed64(&hdr, info.record_count);
  PutFixed64(&hdr, info.min_page_id);
  PutFixed64(&hdr, info.max_page_id);
  PutFixed64(&hdr, info.min_lsn);
  PutFixed64(&hdr, info.max_lsn);
  PutFixed64(&hdr, info.log_start);
  PutFixed64(&hdr, info.log_end);
  PutFixed32(&hdr, crc32c::Value(stream.data(), stream.size()));
  PutFixed32(&hdr, static_cast<uint32_t>(out->fences.size()));
  for (const Fence& f : out->fences) {
    PutFixed64(&hdr, f.page_id);
    PutFixed64(&hdr, f.lsn);
    PutFixed64(&hdr, f.offset);
  }
  PutFixed32(&hdr, crc32c::Value(hdr.data(), hdr.size()));
  SPF_CHECK_LE(hdr.size(), ps) << "archive run header overflows its page";
  hdr.resize(ps, '\0');
  return device_->WritePage(static_cast<PageId>(start_page), hdr.data());
}

// --- Run reading ----------------------------------------------------------

Status LogArchiver::ForEachRawEntry(
    const Run& run, uint64_t start_offset,
    const std::function<bool(PageId, Lsn, std::string_view)>& fn,
    uint64_t* pages_read) const {
  if (run.info.data_bytes == 0) return Status::OK();
  const uint32_t ps = device_->page_size();
  const uint64_t first_page = start_offset / ps;
  const uint64_t base = first_page * static_cast<uint64_t>(ps);
  std::string buf;
  uint64_t loaded = first_page;  // page index one past the last loaded page
  std::string page(ps, '\0');
  auto ensure = [&](uint64_t stream_end) -> Status {
    while (loaded * static_cast<uint64_t>(ps) < stream_end) {
      if (loaded >= run.info.data_pages) {
        return Status::Corruption("archive run data truncated");
      }
      SPF_RETURN_IF_ERROR(device_->ReadPage(
          static_cast<PageId>(run.info.start_page + 1 + loaded), page.data()));
      buf.append(page);
      ++loaded;
      ++*pages_read;
    }
    return Status::OK();
  };
  uint64_t off = start_offset;
  while (off < run.info.data_bytes) {
    SPF_RETURN_IF_ERROR(ensure(off + kEntryFrameBytes));
    const Lsn lsn = DecodeFixed64(buf.data() + (off - base));
    const uint32_t len = DecodeFixed32(buf.data() + (off - base) + 8);
    if (len < kLogRecordHeaderSize ||
        off + kEntryFrameBytes + len > run.info.data_bytes) {
      return Status::Corruption("archive entry overruns its run");
    }
    SPF_RETURN_IF_ERROR(ensure(off + kEntryFrameBytes + len));
    std::string_view payload(buf.data() + (off - base) + kEntryFrameBytes,
                             len);
    const PageId pid = DecodeFixed64(payload.data() + kPayloadPageIdOffset);
    if (!fn(pid, lsn, payload)) return Status::OK();
    off += kEntryFrameBytes + len;
  }
  return Status::OK();
}

StatusOr<uint64_t> LogArchiver::StreamRun(
    const Run& run, PageId lo, PageId hi, Lsn min_lsn_exclusive,
    const std::function<void(LogRecord&&)>& emit) const {
  if (run.info.record_count == 0) return 0;
  if (run.info.max_page_id < lo || run.info.min_page_id > hi) return 0;
  // Seek to the last fence at or before (lo, min_lsn_exclusive); the scan
  // then reads forward sequentially.
  uint64_t start = 0;
  for (const Fence& f : run.fences) {
    if (f.page_id < lo || (f.page_id == lo && f.lsn <= min_lsn_exclusive)) {
      start = f.offset;
    } else {
      break;
    }
  }
  uint64_t pages = 0;
  Status parse_error = Status::OK();
  SPF_RETURN_IF_ERROR(ForEachRawEntry(
      run, start,
      [&](PageId pid, Lsn lsn, std::string_view payload) {
        if (pid > hi) return false;  // sorted by page id: nothing further
        if (pid < lo || lsn <= min_lsn_exclusive) return true;
        auto rec_or = ParseLogRecord(payload);
        if (!rec_or.ok()) {
          parse_error = rec_or.status();
          return false;
        }
        LogRecord rec = std::move(rec_or).value();
        rec.lsn = lsn;
        emit(std::move(rec));
        return true;
      },
      &pages));
  SPF_RETURN_IF_ERROR(parse_error);
  return pages;
}

StatusOr<uint64_t> LogArchiver::FetchPageChain(PageId id,
                                               Lsn min_lsn_exclusive,
                                               Lsn max_lsn_inclusive,
                                               std::vector<LogRecord>* out) {
  ReaderLock io(io_mu_);
  // runs_ only mutates under the io_mu_ writer, so the shared lock pins it.
  std::vector<const Run*> hits;
  for (const Run& r : runs_) {
    if (r.info.record_count == 0) continue;
    if (r.info.min_page_id > id || r.info.max_page_id < id) continue;
    if (r.info.max_lsn <= min_lsn_exclusive) continue;
    if (r.info.min_lsn > max_lsn_inclusive) continue;
    hits.push_back(&r);
  }
  // Disjoint log intervals: log order == LSN order across runs, so
  // concatenating per-run (already LSN-ascending) results stays ascending.
  std::sort(hits.begin(), hits.end(), [](const Run* a, const Run* b) {
    return a->info.log_start < b->info.log_start;
  });
  uint64_t pages = 0;
  for (const Run* r : hits) {
    SPF_ASSIGN_OR_RETURN(
        uint64_t n, StreamRun(*r, id, id, min_lsn_exclusive,
                              [&](LogRecord&& rec) {
                                if (rec.lsn <= max_lsn_inclusive) {
                                  out->push_back(std::move(rec));
                                }
                              }));
    pages += n;
  }
  MutexLock g(mu_);
  stats_.merge_reads += pages;
  return pages;
}

StatusOr<uint64_t> LogArchiver::FetchRange(
    PageId lo, PageId hi, Lsn min_lsn_exclusive,
    const std::function<void(LogRecord&&)>& emit) {
  ReaderLock io(io_mu_);
  std::vector<const Run*> hits;
  for (const Run& r : runs_) {
    if (r.info.record_count == 0) continue;
    if (r.info.min_page_id > hi || r.info.max_page_id < lo) continue;
    if (r.info.max_lsn <= min_lsn_exclusive) continue;
    hits.push_back(&r);
  }
  std::sort(hits.begin(), hits.end(), [](const Run* a, const Run* b) {
    return a->info.log_start < b->info.log_start;
  });
  uint64_t pages = 0;
  for (const Run* r : hits) {
    SPF_ASSIGN_OR_RETURN(uint64_t n,
                         StreamRun(*r, lo, hi, min_lsn_exclusive, emit));
    pages += n;
  }
  MutexLock g(mu_);
  stats_.merge_reads += pages;
  return pages;
}

// --- Draining and merging -------------------------------------------------

StatusOr<bool> LogArchiver::ArchiveTick() {
  MutexLock tick(tick_mu_);
  {
    MutexLock g(mu_);
    stats_.ticks++;
  }
  if (paused_ && paused_()) {
    MutexLock g(mu_);
    stats_.restore_skips++;
    return false;
  }
  Lsn from;
  {
    MutexLock g(mu_);
    from = archived_upto_;
  }
  from = std::max(from, log_->first_lsn());
  const Lsn durable = log_->durable_lsn();
  if (from >= durable) return false;

  // Scan the durable tail once, keeping only per-page-chain records.
  std::vector<Entry> entries;
  uint64_t payload_bytes = 0;
  Lsn end = from;
  for (auto it = log_->Scan(from, durable); it.Valid(); it.Next()) {
    const LogRecord& rec = it.record();
    end = rec.lsn + rec.length;
    if (IsPageReplayRecord(rec.type) && rec.page_id != kInvalidPageId) {
      Entry e;
      e.page_id = rec.page_id;
      e.lsn = rec.lsn;
      e.payload = rec.Serialize();
      payload_bytes += kEntryFrameBytes + e.payload.size();
      entries.push_back(std::move(e));
    }
    if (payload_bytes >= options_.run_bytes) break;
  }
  if (end == from) {
    // A corrupt/torn record below durable would end the scan immediately;
    // the log device guarantees durable bytes, so treat it as corruption
    // rather than spinning forever at the same watermark.
    return Status::Corruption("archiver cannot read the durable log tail");
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return EntryBefore(a.page_id, a.lsn, b.page_id, b.lsn);
                   });

  const uint64_t record_count = entries.size();
  {
    WriterLock io(io_mu_);
    Run run;
    SPF_RETURN_IF_ERROR(WriteRun(&entries, /*level=*/0, from, end, &run));
    if (fail_next_publish_.exchange(false)) {
      // Simulated crash: the run's extent is written but the directory
      // still points at the previous state, so it is unreachable garbage
      // the next successful run write simply reallocates.
      return Status::IOError("archive: injected crash before publish");
    }
    const uint64_t data_bytes = run.info.data_bytes;
    MutexLock g(mu_);
    runs_.push_back(std::move(run));
    archived_upto_ = end;
    SPF_RETURN_IF_ERROR(PublishDirectoryLocked());
    stats_.runs_written++;
    stats_.archived_bytes += data_bytes;
    stats_.records_archived += record_count;
    stats_.tail_scan_bytes += end - from;
  }
  SPF_RETURN_IF_ERROR(MergeLadderLocked());
  AdvanceLogWatermark();
  return true;
}

Status LogArchiver::MergeLadderLocked() {
  for (;;) {
    // Pick the lowest level holding at least merge_fanin runs and its
    // oldest merge_fanin runs by log range. Oldest-prefix merging keeps
    // every level's runs (and the merged output) log-contiguous, which is
    // what preserves the global tiling invariant.
    std::vector<Run> inputs;
    uint32_t level = 0;
    {
      MutexLock g(mu_);
      uint32_t max_level = 0;
      for (const Run& r : runs_) max_level = std::max(max_level, r.info.level);
      bool found = false;
      for (uint32_t l = 0; l <= max_level && !found; ++l) {
        std::vector<const Run*> at;
        for (const Run& r : runs_) {
          if (r.info.level == l) at.push_back(&r);
        }
        if (at.size() >= options_.merge_fanin) {
          std::sort(at.begin(), at.end(), [](const Run* a, const Run* b) {
            return a->info.log_start < b->info.log_start;
          });
          at.resize(options_.merge_fanin);
          for (const Run* r : at) inputs.push_back(*r);
          level = l;
          found = true;
        }
      }
      if (!found) return Status::OK();
    }

    // Load each input's (sorted) entries, then k-way merge by (page, LSN).
    std::vector<std::vector<Entry>> per_input(inputs.size());
    uint64_t pages = 0;
    uint64_t total = 0;
    {
      ReaderLock io(io_mu_);
      for (size_t i = 0; i < inputs.size(); ++i) {
        per_input[i].reserve(inputs[i].info.record_count);
        SPF_RETURN_IF_ERROR(ForEachRawEntry(
            inputs[i], 0,
            [&](PageId pid, Lsn lsn, std::string_view payload) {
              per_input[i].push_back(Entry{pid, lsn, std::string(payload)});
              return true;
            },
            &pages));
        total += per_input[i].size();
      }
    }
    std::vector<Entry> merged;
    merged.reserve(total);
    using Cursor = std::pair<size_t, size_t>;  // {input index, position}
    auto later = [&](const Cursor& a, const Cursor& b) {
      const Entry& ea = per_input[a.first][a.second];
      const Entry& eb = per_input[b.first][b.second];
      return EntryBefore(eb.page_id, eb.lsn, ea.page_id, ea.lsn);
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
        later);
    for (size_t i = 0; i < per_input.size(); ++i) {
      if (!per_input[i].empty()) heap.push({i, 0});
    }
    while (!heap.empty()) {
      auto [i, pos] = heap.top();
      heap.pop();
      merged.push_back(std::move(per_input[i][pos]));
      if (pos + 1 < per_input[i].size()) heap.push({i, pos + 1});
    }

    Lsn log_start = inputs.front().info.log_start;
    Lsn log_end = inputs.front().info.log_end;
    for (const Run& r : inputs) {
      log_start = std::min(log_start, r.info.log_start);
      log_end = std::max(log_end, r.info.log_end);
    }

    {
      WriterLock io(io_mu_);
      Run out;
      Status s = WriteRun(&merged, level + 1, log_start, log_end, &out);
      if (s.IsIOError()) return Status::OK();  // volume full: skip merging
      SPF_RETURN_IF_ERROR(s);
      MutexLock g(mu_);
      for (const Run& in : inputs) {
        runs_.erase(std::remove_if(runs_.begin(), runs_.end(),
                                   [&](const Run& r) {
                                     return r.info.seq == in.info.seq;
                                   }),
                    runs_.end());
      }
      runs_.push_back(std::move(out));
      SPF_RETURN_IF_ERROR(PublishDirectoryLocked());
      stats_.merges++;
      stats_.runs_merged += inputs.size();
      stats_.merge_reads += pages;
    }
  }
}

Status LogArchiver::ArchiveAll() {
  for (;;) {
    if (paused_ && paused_()) return Status::OK();
    SPF_ASSIGN_OR_RETURN(bool advanced, ArchiveTick());
    if (!advanced) return Status::OK();
  }
}

// --- Watermarks, stats, background loop -----------------------------------

void LogArchiver::AdvanceLogWatermark() {
  const Lsn master = log_->GetMasterRecord();
  const Lsn upto = archived_upto();
  const Lsn watermark = std::min(upto, master);
  if (watermark > 0) log_->AdvanceTruncationWatermark(watermark);
}

Lsn LogArchiver::archived_upto() const {
  MutexLock g(mu_);
  return archived_upto_;
}

ArchiveStats LogArchiver::stats() const {
  const Lsn wm = log_->truncation_watermark();
  const Lsn base = log_->first_lsn();
  MutexLock g(mu_);
  ArchiveStats s = stats_;
  s.archived_upto = archived_upto_;
  s.active_runs = runs_.size();
  s.truncated_log_bytes = wm > base ? wm - base : 0;
  return s;
}

std::vector<ArchiveRunInfo> LogArchiver::runs() const {
  MutexLock g(mu_);
  std::vector<ArchiveRunInfo> out;
  out.reserve(runs_.size());
  for (const Run& r : runs_) out.push_back(r.info);
  std::sort(out.begin(), out.end(),
            [](const ArchiveRunInfo& a, const ArchiveRunInfo& b) {
              return a.log_start < b.log_start;
            });
  return out;
}

void LogArchiver::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread(&LogArchiver::BackgroundLoop, this);
}

void LogArchiver::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void LogArchiver::BackgroundLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto advanced = ArchiveTick();
    // Errors (volume full, injected crash) and empty ticks both back off;
    // the next pass retries from the durable watermark.
    const bool progressed = advanced.ok() && advanced.value();
    uint64_t wait_ms = options_.interval_wall_ms;
    if (!progressed && wait_ms == 0) wait_ms = 1;
    for (uint64_t waited = 0; waited < wait_ms; ++waited) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace spf
