#include "log/log_source.h"

#include <algorithm>
#include <utility>

namespace spf {

namespace {

// Shared tail-walk step: follow page_prev_lsn pointers from `*cur` down
// while records are above both `backup_lsn` and `floor`, pushing newest
// first. Leaves `*cur` at the first chain pointer not walked.
Status WalkTail(const LogManager* log, PageId id, Lsn backup_lsn, Lsn floor,
                Lsn* cur, std::vector<LogRecord>* newest_first,
                LogSourceStats* stats) {
  while (*cur != kInvalidLsn && *cur > backup_lsn && *cur >= floor) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log->Read(*cur));
    stats->log_reads++;
    if (rec.page_id != id) {
      return Status::Corruption("per-page chain contains foreign record");
    }
    *cur = rec.page_prev_lsn;
    newest_first->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace

Status TailLogSource::FetchChain(PageId id, Lsn backup_lsn, Lsn target,
                                 std::vector<LogRecord>* newest_first,
                                 LogSourceStats* stats) {
  if (target == kInvalidLsn || target <= backup_lsn) return Status::OK();
  Lsn cur = target;
  SPF_RETURN_IF_ERROR(WalkTail(log_, id, backup_lsn, /*floor=*/0, &cur,
                               newest_first, stats));
  if (cur != backup_lsn && cur != kInvalidLsn) {
    // The chain bypassed the backup LSN — inconsistent chain/backup pair.
    return Status::Corruption("per-page chain does not reach the backup");
  }
  return Status::OK();
}

Status ArchiveLogSource::FetchChain(PageId id, Lsn backup_lsn, Lsn target,
                                    std::vector<LogRecord>* newest_first,
                                    LogSourceStats* stats) {
  if (target == kInvalidLsn || target <= backup_lsn) return Status::OK();
  // Snapshot the watermark once: it only advances, so every record below
  // it is guaranteed to be in some published run for the whole fetch.
  const Lsn archived_upto = archive_->archived_upto();
  Lsn cur = target;
  SPF_RETURN_IF_ERROR(WalkTail(log_, id, backup_lsn, archived_upto, &cur,
                               newest_first, stats));
  if (cur == backup_lsn || cur == kInvalidLsn) return Status::OK();
  if (cur < backup_lsn) {
    return Status::Corruption("per-page chain does not reach the backup");
  }
  // The remainder (backup_lsn, cur] is entirely archived: fetch it as one
  // positioned sequential read per run instead of a read per record.
  std::vector<LogRecord> archived;
  SPF_ASSIGN_OR_RETURN(
      uint64_t pages, archive_->FetchPageChain(id, backup_lsn, cur, &archived));
  stats->archive_reads += pages;
  // The probe returns every record of the page in the interval, which is
  // exactly the chain segment (all page records are chain-linked). Check
  // the splice point and the anchor; ApplyChain's redo-sequence check
  // validates each interior link.
  if (archived.empty() || archived.back().lsn != cur) {
    return Status::Corruption(
        "archived per-page chain is missing its newest record");
  }
  const Lsn anchor = archived.front().page_prev_lsn;
  if (anchor != backup_lsn && anchor != kInvalidLsn) {
    return Status::Corruption("per-page chain does not reach the backup");
  }
  newest_first->reserve(newest_first->size() + archived.size());
  for (auto it = archived.rbegin(); it != archived.rend(); ++it) {
    newest_first->push_back(std::move(*it));
  }
  return Status::OK();
}

}  // namespace spf
