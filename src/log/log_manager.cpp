#include "log/log_manager.h"

#include <algorithm>

#include "common/coding.h"

namespace spf {

LogManager::LogManager(SimLogDevice* device) : device_(device) {
  if (device_->size() == 0) {
    // File header so that the first record's LSN is non-zero.
    std::string header = "SPF_LOG\0";
    header.resize(kLogFileHeaderSize, '\0');
    device_->Append(header);
    device_->Sync();
  }
}

Lsn LogManager::Append(LogRecord* rec) {
  std::string payload = rec->Serialize();
  std::lock_guard<std::mutex> g(mu_);
  Lsn lsn = device_->Append(payload);
  rec->lsn = lsn;
  rec->length = static_cast<uint32_t>(payload.size());
  stats_.records_appended++;
  stats_.bytes_appended += payload.size();
  stats_.per_type[rec->type]++;
  return lsn;
}

Lsn LogManager::AppendPageRecord(LogRecord* rec, PageView page) {
  SPF_CHECK(rec->page_id == page.page_id())
      << "record/page id mismatch: " << rec->page_id << " vs "
      << page.page_id();
  rec->page_prev_lsn = page.page_lsn();
  Lsn lsn = Append(rec);
  page.set_page_lsn(lsn);
  page.bump_update_count();
  return lsn;
}

void LogManager::Force(Lsn lsn) {
  std::lock_guard<std::mutex> g(mu_);
  if (device_->synced_size() > lsn) return;  // already durable
  device_->Sync();
  stats_.forces++;
}

void LogManager::ForceAll() {
  std::lock_guard<std::mutex> g(mu_);
  device_->Sync();
  stats_.forces++;
}

StatusOr<LogRecord> LogManager::Read(Lsn lsn) const {
  if (lsn < first_lsn()) {
    return Status::InvalidArgument("lsn before start of log");
  }
  char len_buf[4];
  SPF_RETURN_IF_ERROR(device_->ReadAt(lsn, 4, len_buf));
  uint32_t total = DecodeFixed32(len_buf);
  if (total < kLogRecordHeaderSize || total > 64u * 1024 * 1024) {
    return Status::Corruption("implausible log record length");
  }
  std::string buf(total, '\0');
  EncodeFixed32(buf.data(), total);
  // Continue the read sequentially for the rest of the record.
  SPF_RETURN_IF_ERROR(device_->ReadAt(lsn + 4, total - 4, buf.data() + 4));
  SPF_ASSIGN_OR_RETURN(LogRecord rec, ParseLogRecord(buf));
  rec.lsn = lsn;
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.records_read++;
  }
  return rec;
}

Lsn LogManager::tail_lsn() const { return device_->size(); }

Lsn LogManager::durable_lsn() const { return device_->synced_size(); }

void LogManager::SetMasterRecord(Lsn checkpoint_begin_lsn) {
  std::lock_guard<std::mutex> g(mu_);
  master_record_ = checkpoint_begin_lsn;
}

Lsn LogManager::GetMasterRecord() const {
  std::lock_guard<std::mutex> g(mu_);
  return master_record_;
}

LogStats LogManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = LogStats();
}

// ---------------------------------------------------------------------------

LogManager::Iterator::Iterator(const LogManager* log, Lsn start, Lsn end)
    : log_(log), pos_(start), end_(end) {
  ReadCurrent();
}

void LogManager::Iterator::ReadCurrent() {
  valid_ = false;
  if (pos_ >= end_) return;
  auto rec_or = log_->Read(pos_);
  if (!rec_or.ok()) return;  // truncated/corrupt tail terminates the scan
  rec_ = std::move(rec_or).value();
  valid_ = true;
}

void LogManager::Iterator::Next() {
  SPF_CHECK(valid_);
  pos_ += rec_.length;
  ReadCurrent();
}

LogManager::Iterator LogManager::Scan(Lsn start, Lsn end) const {
  return Iterator(this, start, end == kInvalidLsn ? tail_lsn() : end);
}

Status LogManager::ReadRaw(uint64_t offset, uint64_t n, char* out) const {
  return device_->ReadAt(offset, n, out);
}

// ---------------------------------------------------------------------------

LogSegmentReader::LogSegmentReader(const LogManager* log,
                                   uint64_t segment_bytes)
    : log_(log), segment_bytes_(std::max<uint64_t>(segment_bytes, 4096)) {}

Status LogSegmentReader::Fetch(uint64_t begin, uint64_t end) {
  uint64_t tail = log_->tail_lsn();
  if (end > tail) {
    return Status::InvalidArgument("log segment read past tail");
  }
  // Place the window so `end` sits at its high edge: descending chain
  // walks then keep hitting the buffer until they leave the segment.
  uint64_t want = std::max(end - begin, segment_bytes_);
  uint64_t start = end >= want ? end - want : 0;
  start = std::min(start, begin);
  uint64_t len = std::min(tail, start + want) - start;
  buf_.resize(len);
  SPF_RETURN_IF_ERROR(log_->ReadRaw(start, len, buf_.data()));
  buf_start_ = start;
  segment_fetches_++;
  return Status::OK();
}

StatusOr<LogRecord> LogSegmentReader::Read(Lsn lsn) {
  if (lsn < log_->first_lsn()) {
    return Status::InvalidArgument("lsn before start of log");
  }
  if (lsn < buf_start_ || lsn + 4 > buf_start_ + buf_.size()) {
    // Extend the window a typical record's length past `lsn` so the whole
    // record usually lands in this one fetch (the refetch below is then
    // only for records longer than the peek).
    uint64_t peek = std::min<uint64_t>(kRecordPeekBytes, segment_bytes_);
    uint64_t end = std::min(log_->tail_lsn(), lsn + peek);
    if (end < lsn + 4) {
      return Status::InvalidArgument("log segment read past tail");
    }
    SPF_RETURN_IF_ERROR(Fetch(lsn, end));
  }
  uint32_t total = DecodeFixed32(buf_.data() + (lsn - buf_start_));
  if (total < kLogRecordHeaderSize || total > 64u * 1024 * 1024) {
    return Status::Corruption("implausible log record length");
  }
  if (lsn + total > buf_start_ + buf_.size()) {
    SPF_RETURN_IF_ERROR(Fetch(lsn, lsn + total));
  }
  SPF_ASSIGN_OR_RETURN(
      LogRecord rec,
      ParseLogRecord(std::string_view(buf_.data() + (lsn - buf_start_), total)));
  rec.lsn = lsn;
  records_served_++;
  return rec;
}

}  // namespace spf
