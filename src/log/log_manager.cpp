#include "log/log_manager.h"

#include <algorithm>

#include "common/coding.h"

namespace spf {

LogManager::LogManager(SimLogDevice* device, GroupCommitOptions gc)
    : device_(device), gc_(gc) {
  if (device_->size() == 0) {
    // File header so that the first record's LSN is non-zero.
    std::string header = "SPF_LOG\0";
    header.resize(kLogFileHeaderSize, '\0');
    device_->Append(header);
    device_->Sync();
  }
  next_lsn_ = device_->size();
  synced_ = device_->synced_size();
  drainer_ = std::thread(&LogManager::DrainerLoop, this);
}

LogManager::~LogManager() {
  {
    MutexLock g(mu_);
    stop_ = true;
  }
  drain_cv_.notify_all();
  durable_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  // Leave every append on the device (unsynced tail), as the pre-group-
  // commit manager did. After Crash() the staged queue is already empty.
  Publish();
}

void LogManager::Crash() {
  {
    MutexLock g(mu_);
    stop_ = true;
  }
  drain_cv_.notify_all();
  durable_cv_.notify_all();
  if (drainer_.joinable()) drainer_.join();
  MutexLock g(mu_);
  // Staged records die with the crash; publishing them now would let the
  // post-crash log resurrect bytes the simulated failure already lost.
  staged_.clear();
  staged_bytes_ = 0;
}

Lsn LogManager::Append(LogRecord* rec) {
  std::string payload = rec->Serialize();
  const uint32_t length = static_cast<uint32_t>(payload.size());
  Lsn lsn;
  bool over_threshold;
  {
    MutexLock g(mu_);
    lsn = next_lsn_;
    next_lsn_ += length;
    staged_.push_back(std::move(payload));
    staged_bytes_ += length;
    over_threshold = staged_bytes_ >= gc_.max_batch_bytes;
    stats_.records_appended++;
    stats_.bytes_appended += length;
    stats_.per_type[rec->type]++;
  }
  if (over_threshold) drain_cv_.notify_one();
  rec->lsn = lsn;
  rec->length = length;
  return lsn;
}

Lsn LogManager::AppendPageRecord(LogRecord* rec, PageView page) {
  SPF_CHECK(rec->page_id == page.page_id())
      << "record/page id mismatch: " << rec->page_id << " vs "
      << page.page_id();
  rec->page_prev_lsn = page.page_lsn();
  Lsn lsn = Append(rec);
  if (write_admission_ != nullptr &&
      !write_admission_->IsRestored(rec->page_id)) {
    // Post-reservation park (see header): the slot above landed past a
    // sealing restore's replay-plan scan, so hold the caller here until
    // the page's segment is final and the update cannot be lost to the
    // sweep. An admission ERROR is deliberately ignored, exactly as in
    // MarkDirty's re-check: a failed restore admitted no one, and the
    // record staged above is covered by the next restore's fresh plan
    // scan.
    (void)write_admission_->AwaitRestored(rec->page_id);
  }
  page.set_page_lsn(lsn);
  page.bump_update_count();
  return lsn;
}

void LogManager::Force(Lsn lsn) {
  UniqueLock g(mu_);
  if (synced_ > lsn) return;  // already durable
  if (force_waiters_++ == 0) {
    oldest_force_ = std::chrono::steady_clock::now();
  }
  force_target_ = std::max(force_target_, lsn);
  drain_cv_.notify_one();
  while (!(synced_ > lsn || stop_)) durable_cv_.wait(g);
  force_waiters_--;
}

void LogManager::ForceAll() {
  Lsn target;
  {
    MutexLock g(mu_);
    target = next_lsn_;
  }
  if (target == 0) return;
  Force(target - 1);
}

void LogManager::Publish() const {
  MutexLock fl(flush_mu_);
  std::deque<std::string> batch;
  uint64_t bytes = 0;
  {
    MutexLock g(mu_);
    batch.swap(staged_);
    bytes = staged_bytes_;
    staged_bytes_ = 0;
  }
  if (batch.empty()) return;
  std::string buf;
  buf.reserve(bytes);
  for (const std::string& s : batch) buf.append(s);
  device_->Append(buf);
  MutexLock g(mu_);
  stats_.publishes++;
}

void LogManager::EnsureReadable(uint64_t end) const {
  // The device's size only grows, so a covered range stays covered. On a
  // miss, Publish() waits out any in-flight publisher (flush_mu_) and then
  // pushes the entire staged queue, which includes every reserved record.
  if (end <= device_->size()) return;
  Publish();
}

void LogManager::DrainerLoop() {
  UniqueLock g(mu_);
  while (!stop_) {
    while (!(stop_ || PendingForceLocked() ||
             staged_bytes_ >= gc_.max_batch_bytes)) {
      drain_cv_.wait(g);
    }
    if (stop_) break;
    if (PendingForceLocked() && gc_.max_wait.count() > 0) {
      // Batching window: linger so concurrent committers coalesce into
      // one sync. A size-threshold crossing ends the window early.
      auto deadline = oldest_force_ + gc_.max_wait;
      while (!(stop_ || staged_bytes_ >= gc_.max_batch_bytes) &&
             drain_cv_.wait_until(g, deadline) != std::cv_status::timeout) {
      }
      if (stop_) break;
    }
    const uint64_t group = force_waiters_;
    const bool need_sync = PendingForceLocked();
    g.Unlock();
    Publish();
    if (need_sync) device_->Sync();
    g.Lock();
    if (need_sync) {
      synced_ = device_->synced_size();
      stats_.forces++;
      stats_.group_commit_batches++;
      stats_.group_commit_commits += group;
      durable_cv_.notify_all();
    }
  }
}

StatusOr<LogRecord> LogManager::Read(Lsn lsn) const {
  if (lsn < first_lsn()) {
    return Status::InvalidArgument("lsn before start of log");
  }
  EnsureReadable(lsn + 4);
  char len_buf[4];
  SPF_RETURN_IF_ERROR(device_->ReadAt(lsn, 4, len_buf));
  uint32_t total = DecodeFixed32(len_buf);
  if (total < kLogRecordHeaderSize || total > 64u * 1024 * 1024) {
    return Status::Corruption("implausible log record length");
  }
  std::string buf(total, '\0');
  EncodeFixed32(buf.data(), total);
  // Continue the read sequentially for the rest of the record. Records are
  // staged whole, so a readable header implies a readable body.
  SPF_RETURN_IF_ERROR(device_->ReadAt(lsn + 4, total - 4, buf.data() + 4));
  SPF_ASSIGN_OR_RETURN(LogRecord rec, ParseLogRecord(buf));
  rec.lsn = lsn;
  {
    MutexLock g(mu_);
    stats_.records_read++;
  }
  return rec;
}

Lsn LogManager::tail_lsn() const {
  MutexLock g(mu_);
  return next_lsn_;
}

Lsn LogManager::durable_lsn() const { return device_->synced_size(); }

void LogManager::SetMasterRecord(Lsn checkpoint_begin_lsn) {
  MutexLock g(mu_);
  master_record_ = checkpoint_begin_lsn;
}

Lsn LogManager::GetMasterRecord() const {
  MutexLock g(mu_);
  return master_record_;
}

void LogManager::AdvanceTruncationWatermark(Lsn lsn) {
  MutexLock g(mu_);
  if (lsn <= truncation_watermark_) return;
  truncation_watermark_ = lsn;
  stats_.truncated_log_bytes =
      lsn > kLogFileHeaderSize ? lsn - kLogFileHeaderSize : 0;
}

Lsn LogManager::truncation_watermark() const {
  MutexLock g(mu_);
  return truncation_watermark_;
}

LogStats LogManager::stats() const {
  MutexLock g(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  MutexLock g(mu_);
  stats_ = LogStats();
}

// ---------------------------------------------------------------------------

LogManager::Iterator::Iterator(const LogManager* log, Lsn start, Lsn end)
    : log_(log), pos_(start), end_(end) {
  ReadCurrent();
}

void LogManager::Iterator::ReadCurrent() {
  valid_ = false;
  if (pos_ >= end_) return;
  auto rec_or = log_->Read(pos_);
  if (!rec_or.ok()) return;  // truncated/corrupt tail terminates the scan
  rec_ = std::move(rec_or).value();
  valid_ = true;
}

void LogManager::Iterator::Next() {
  SPF_CHECK(valid_);
  pos_ += rec_.length;
  ReadCurrent();
}

LogManager::Iterator LogManager::Scan(Lsn start, Lsn end) const {
  return Iterator(this, start, end == kInvalidLsn ? tail_lsn() : end);
}

Status LogManager::ReadRaw(uint64_t offset, uint64_t n, char* out) const {
  EnsureReadable(offset + n);
  return device_->ReadAt(offset, n, out);
}

// ---------------------------------------------------------------------------

LogSegmentReader::LogSegmentReader(const LogManager* log,
                                   uint64_t segment_bytes)
    : log_(log), segment_bytes_(std::max<uint64_t>(segment_bytes, 4096)) {}

Status LogSegmentReader::Fetch(uint64_t begin, uint64_t end) {
  uint64_t tail = log_->tail_lsn();
  if (end > tail) {
    return Status::InvalidArgument("log segment read past tail");
  }
  // Place the window so `end` sits at its high edge: descending chain
  // walks then keep hitting the buffer until they leave the segment.
  uint64_t want = std::max(end - begin, segment_bytes_);
  uint64_t start = end >= want ? end - want : 0;
  start = std::min(start, begin);
  uint64_t len = std::min(tail, start + want) - start;
  buf_.resize(len);
  SPF_RETURN_IF_ERROR(log_->ReadRaw(start, len, buf_.data()));
  buf_start_ = start;
  segment_fetches_++;
  return Status::OK();
}

StatusOr<LogRecord> LogSegmentReader::Read(Lsn lsn) {
  if (lsn < log_->first_lsn()) {
    return Status::InvalidArgument("lsn before start of log");
  }
  if (lsn < buf_start_ || lsn + 4 > buf_start_ + buf_.size()) {
    // Extend the window a typical record's length past `lsn` so the whole
    // record usually lands in this one fetch (the refetch below is then
    // only for records longer than the peek).
    uint64_t peek = std::min<uint64_t>(kRecordPeekBytes, segment_bytes_);
    uint64_t end = std::min(log_->tail_lsn(), lsn + peek);
    if (end < lsn + 4) {
      return Status::InvalidArgument("log segment read past tail");
    }
    SPF_RETURN_IF_ERROR(Fetch(lsn, end));
  }
  uint32_t total = DecodeFixed32(buf_.data() + (lsn - buf_start_));
  if (total < kLogRecordHeaderSize || total > 64u * 1024 * 1024) {
    return Status::Corruption("implausible log record length");
  }
  if (lsn + total > buf_start_ + buf_.size()) {
    SPF_RETURN_IF_ERROR(Fetch(lsn, lsn + total));
  }
  SPF_ASSIGN_OR_RETURN(
      LogRecord rec,
      ParseLogRecord(std::string_view(buf_.data() + (lsn - buf_start_), total)));
  rec.lsn = lsn;
  records_served_++;
  return rec;
}

}  // namespace spf
