// Log manager: append, force, and read paths of the recovery log.
//
// The log lives on a SimLogDevice and is assumed stable once forced
// (section 5: "once a log page has been written, it is not subsequently
// lost"). Unforced tail bytes are lost at a simulated crash, which is how
// the unforced-commit semantics of system transactions (section 5.1.5) and
// the lost-PRI-update cases of section 5.2.5 are exercised.
//
// LSNs are byte offsets into the log; the log starts with a small file
// header so that no valid record has LSN 0 (= kInvalidLsn).
//
// Group commit: Append only RESERVES the record's LSN — a brief critical
// section advances the reserved tail and stages the pre-serialized payload
// in an in-memory queue. A background drainer publishes staged batches to
// the device and syncs them when committers are waiting, so N concurrent
// Force(commit_lsn) calls are amortized into one device sync instead of N.
// Readers (Read/Scan/ReadRaw) first publish any staged bytes they need, so
// the log's contents are always observable at the reserved tail; only
// durability lags, exactly as with an OS page cache. DropUnsynced at a
// simulated crash still loses everything past the last sync — staged bytes
// are strictly MORE volatile than published-unsynced bytes, and Crash()
// discards them without publishing so a crash cannot resurrect them.

#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <thread>

#include "common/macros.h"
#include "common/sync.h"
#include "common/status.h"
#include "common/statusor.h"
#include "log/log_record.h"
#include "storage/page.h"
#include "storage/restore_admission.h"
#include "storage/sim_device.h"

namespace spf {

/// Counters for log-volume experiments (E4 in DESIGN.md).
struct LogStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  /// Device syncs (each is one log-device round trip in simulated time).
  uint64_t forces = 0;
  uint64_t records_read = 0;
  /// Staged-batch publications to the device (>= forces; size-threshold
  /// publishes need no sync).
  uint64_t publishes = 0;
  /// Syncs that released at least one Force waiter — the group-commit
  /// batches of E14.
  uint64_t group_commit_batches = 0;
  /// Force waiters released by those syncs; the mean group size is
  /// group_commit_commits / group_commit_batches.
  uint64_t group_commit_commits = 0;
  /// Bytes below the archive-truncation watermark (archived AND covered
  /// by the most recent checkpoint ⇒ recyclable). Bookkeeping only: the
  /// simulated device never actually shrinks, so late readers (PRI window
  /// recovery, in-log page images) keep working.
  uint64_t truncated_log_bytes = 0;
  /// Per-type record counts, keyed by LogRecordType.
  std::map<LogRecordType, uint64_t> per_type;
};

/// Batching knobs for the drainer. The defaults publish-and-sync as soon
/// as a committer waits (no added latency — right for the single-threaded
/// paths); multi-writer workloads set max_wait to a small window so
/// concurrent commits coalesce into one sync.
struct GroupCommitOptions {
  /// Publish the staged queue once it holds this many bytes, even with no
  /// committer waiting.
  uint64_t max_batch_bytes = 64 * 1024;
  /// With committers waiting, linger up to this long for more of them
  /// before syncing. Zero = sync immediately.
  std::chrono::microseconds max_wait{0};
};

/// Append/force/read interface over the recovery log. Thread-safe.
class LogManager {
 public:
  explicit LogManager(SimLogDevice* device,
                      GroupCommitOptions gc = GroupCommitOptions());
  /// Joins the drainer and publishes (without syncing) any staged bytes,
  /// preserving the pre-group-commit invariant that a destroyed manager's
  /// appends are all on the device. Call Crash() first to model a failure.
  ~LogManager();

  SPF_DISALLOW_COPY(LogManager);

  /// Optional write-side restore admission; may be null. Install during
  /// startup (not thread-safe vs. concurrent appends). See
  /// AppendPageRecord for the seal interaction.
  void SetWriteAdmission(RestoreAdmission* a) { write_admission_ = a; }

  /// Appends `rec`, assigning rec.lsn and rec.length. The record is staged
  /// in the log buffer after this call; it is durable only after
  /// Force(rec.lsn).
  Lsn Append(LogRecord* rec);

  /// Helper for records that modify a page: fills the per-page chain from
  /// the page's current PageLSN, appends, then advances the page's PageLSN
  /// to the new record's LSN and bumps its update counter. This is the one
  /// place invariant L1 (PageLSN anchors the per-page chain, Figure 6) is
  /// maintained.
  ///
  /// Seal interaction (closes the write-side TOCTOU the MarkDirty re-check
  /// only narrowed): after reserving the record's slot, this call parks on
  /// the write admission until the page's segment is restored. The
  /// reservation fixes which side of a restore's replay-plan scan the
  /// record falls on — a record reserved before the scan reads the tail is
  /// staged by then and the scan's publish-on-read covers it; a record
  /// reserved after the tail read happens-after the seal (both orders run
  /// under this manager's reservation mutex) and therefore observes
  /// sealed admission HERE, parking until the segment is final. Either
  /// way no logged update can slip between the plan and the sweep.
  /// Parking holds no log-manager lock; the caller's exclusive page latch
  /// keeps the updated frame pinned and un-evictable, and the sweep needs
  /// neither that latch nor any pool or log mutex to make progress.
  Lsn AppendPageRecord(LogRecord* rec, PageView page);

  /// Forces the log to stable storage up to and including `lsn`: wakes the
  /// drainer and waits until the batch containing `lsn` is synced. With
  /// concurrent callers this is the group-commit wait.
  void Force(Lsn lsn);

  /// Forces everything appended so far.
  void ForceAll();

  /// Simulated crash: stops the drainer and DISCARDS all staged-but-
  /// unpublished records. Staged bytes are more volatile than the device's
  /// unsynced tail, so they must never reach the device once the crash is
  /// declared — the caller drops the device's unsynced tail afterwards.
  void Crash();

  /// Reads and parses the record at `lsn`. Charges log-device I/O
  /// (one random access per record — the dominant cost of single-page
  /// recovery, section 6). Publishes staged bytes first if `lsn` has not
  /// reached the device yet.
  StatusOr<LogRecord> Read(Lsn lsn) const;

  /// LSN one past the last reserved byte (the next record's LSN).
  Lsn tail_lsn() const;

  /// Highest LSN known durable.
  Lsn durable_lsn() const;

  /// First valid LSN in this log.
  Lsn first_lsn() const { return kLogFileHeaderSize; }

  /// Master record: stable pointer to the most recent complete checkpoint
  /// (conventionally stored at a fixed location outside the log stream).
  void SetMasterRecord(Lsn checkpoint_begin_lsn);
  Lsn GetMasterRecord() const;

  /// Archive-truncation watermark: every byte below it is both archived
  /// (the log archiver's sorted runs cover it) and checkpointed (the
  /// master record points past it), so the prefix is recyclable. Advances
  /// monotonically; regress attempts are ignored. Bookkeeping only — the
  /// simulated log device keeps its bytes, so consumers that legitimately
  /// reach below the watermark (PRI window recovery of kPriUpdate chains,
  /// in-log kFullPageImage backups, format-record backup sources) still
  /// read fine; a production system would pin the watermark below such
  /// references (and below the checkpoint's oldest dirty-page rec_lsn)
  /// before reclaiming segments.
  void AdvanceTruncationWatermark(Lsn lsn);
  Lsn truncation_watermark() const;

  LogStats stats() const;
  void ResetStats();

  /// Forward scan over [start_lsn, tail). Skips nothing; stops cleanly at
  /// the durable end or on a truncated/corrupt tail record (which marks the
  /// end of the log after a crash).
  class Iterator {
   public:
    Iterator(const LogManager* log, Lsn start, Lsn end);

    /// False when the scan is exhausted.
    bool Valid() const { return valid_; }
    const LogRecord& record() const { return rec_; }
    void Next();

   private:
    void ReadCurrent();

    const LogManager* log_;
    Lsn pos_;
    Lsn end_;
    bool valid_ = false;
    LogRecord rec_;
  };

  /// Scans from `start` to the current tail (or `end` if given).
  Iterator Scan(Lsn start, Lsn end = kInvalidLsn) const;

  static constexpr uint64_t kLogFileHeaderSize = 8;

  /// Raw byte read from the underlying log device (charged like any other
  /// log read). Building block for LogSegmentReader. Publishes staged
  /// bytes first when the range extends past the device's current end.
  Status ReadRaw(uint64_t offset, uint64_t n, char* out) const;

 private:
  /// Publishes every staged record to the device, in reservation order.
  /// flush_mu_ serializes publishers (the drainer and publish-on-read
  /// callers) so batches land at their reserved offsets; mu_ is taken only
  /// to detach the queue, never across device I/O.
  void Publish() const;

  /// Makes [0, end) of the log readable from the device, publishing the
  /// staged queue if the reserved-but-unpublished region overlaps it.
  void EnsureReadable(uint64_t end) const;

  void DrainerLoop();

  /// A Force waiter is PENDING only while the durable watermark has not
  /// reached its requested LSN; force_waiters_ alone is not enough (see
  /// the force_target_ comment below).
  bool PendingForceLocked() const SPF_REQUIRES(mu_) {
    return force_waiters_ > 0 && synced_ <= force_target_;
  }

  SimLogDevice* const device_;
  const GroupCommitOptions gc_;
  RestoreAdmission* write_admission_ = nullptr;

  // Reservation + staging + waiter state.
  mutable OrderedMutex mu_{LockRank::kLogState};
  Lsn next_lsn_ SPF_GUARDED_BY(mu_) = 0;  // reserved tail (device end + staged)
  mutable std::deque<std::string> staged_ SPF_GUARDED_BY(mu_);  // LSN order
  mutable uint64_t staged_bytes_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t synced_ SPF_GUARDED_BY(mu_) = 0;  // durable watermark
  uint64_t force_waiters_ SPF_GUARDED_BY(mu_) = 0;
  /// Highest LSN any Force waiter has asked for. The drainer treats
  /// waiters as pending only while `synced_ <= force_target_`: a
  /// satisfied waiter decrements force_waiters_ only after re-acquiring
  /// mu_, and without the target check the drainer could read the stale
  /// count and run a spurious publish+sync — which, racing a crash,
  /// would resurrect staged records the crash is about to discard.
  Lsn force_target_ SPF_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point oldest_force_ SPF_GUARDED_BY(mu_){};
  bool stop_ SPF_GUARDED_BY(mu_) = false;
  mutable CondVar drain_cv_;    // wakes the drainer
  mutable CondVar durable_cv_;  // wakes Force waiters
  Lsn master_record_ SPF_GUARDED_BY(mu_) = kInvalidLsn;  // stable storage
  Lsn truncation_watermark_ SPF_GUARDED_BY(mu_) = 0;  // archived prefix end
  mutable LogStats stats_ SPF_GUARDED_BY(mu_);

  /// Publisher order lock: held across detach-and-append so staged batches
  /// cannot land on the device out of reservation order. Always acquired
  /// BEFORE mu_ (rank kLogFlush < kLogState); never held while parking.
  mutable OrderedMutex flush_mu_{LockRank::kLogFlush};

  std::thread drainer_;
};

/// Buffered record reader for coordinated multi-page chain walks.
///
/// Walking one per-page chain with LogManager::Read pays one random log
/// access per record. When many failed pages are repaired together their
/// chains interleave within the same region of the log, so the batched
/// recovery scheduler reads the log in fixed-size SEGMENTS instead: each
/// segment is fetched with one device access and every record inside it is
/// then served from memory. Because the scheduler pops chain LSNs in
/// descending order, segments are fetched once each — the "replay shared
/// log segments once per batch" idea of instant restore (Sauer et al.).
///
/// Not thread-safe; one reader per walking thread.
class LogSegmentReader {
 public:
  explicit LogSegmentReader(const LogManager* log,
                            uint64_t segment_bytes = 256 * 1024);

  /// Reads the record at `lsn`, fetching its containing segment if it is
  /// not already buffered. The segment is placed so that `lsn` sits near
  /// its end (descending walks then hit the buffer).
  StatusOr<LogRecord> Read(Lsn lsn);

  /// Device fetches performed so far (the batched analog of per-record
  /// log_reads).
  uint64_t segment_fetches() const { return segment_fetches_; }
  /// Records parsed out of buffered segments.
  uint64_t records_served() const { return records_served_; }

 private:
  /// Window overshoot past the requested LSN on a miss, sized to cover a
  /// typical record so one fetch suffices.
  static constexpr uint64_t kRecordPeekBytes = 4096;

  /// Ensures [begin, end) is buffered, fetching one segment if not.
  Status Fetch(uint64_t begin, uint64_t end);

  const LogManager* const log_;
  const uint64_t segment_bytes_;
  std::string buf_;
  uint64_t buf_start_ = 0;
  uint64_t segment_fetches_ = 0;
  uint64_t records_served_ = 0;
};

}  // namespace spf
