// Log manager: append, force, and read paths of the recovery log.
//
// The log lives on a SimLogDevice and is assumed stable once forced
// (section 5: "once a log page has been written, it is not subsequently
// lost"). Unforced tail bytes are lost at a simulated crash, which is how
// the unforced-commit semantics of system transactions (section 5.1.5) and
// the lost-PRI-update cases of section 5.2.5 are exercised.
//
// LSNs are byte offsets into the log; the log starts with a small file
// header so that no valid record has LSN 0 (= kInvalidLsn).

#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "log/log_record.h"
#include "storage/page.h"
#include "storage/sim_device.h"

namespace spf {

/// Counters for log-volume experiments (E4 in DESIGN.md).
struct LogStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t forces = 0;
  uint64_t records_read = 0;
  /// Per-type record counts, keyed by LogRecordType.
  std::map<LogRecordType, uint64_t> per_type;
};

/// Append/force/read interface over the recovery log. Thread-safe.
class LogManager {
 public:
  explicit LogManager(SimLogDevice* device);

  SPF_DISALLOW_COPY(LogManager);

  /// Appends `rec`, assigning rec.lsn and rec.length. The record is in the
  /// log buffer after this call; it is durable only after Force(rec.lsn).
  Lsn Append(LogRecord* rec);

  /// Helper for records that modify a page: fills the per-page chain from
  /// the page's current PageLSN, appends, then advances the page's PageLSN
  /// to the new record's LSN and bumps its update counter. This is the one
  /// place invariant L1 (PageLSN anchors the per-page chain, Figure 6) is
  /// maintained.
  Lsn AppendPageRecord(LogRecord* rec, PageView page);

  /// Forces the log to stable storage up to and including `lsn`.
  void Force(Lsn lsn);

  /// Forces everything appended so far.
  void ForceAll();

  /// Reads and parses the record at `lsn`. Charges log-device I/O
  /// (one random access per record — the dominant cost of single-page
  /// recovery, section 6).
  StatusOr<LogRecord> Read(Lsn lsn) const;

  /// LSN one past the last appended byte (the next record's LSN).
  Lsn tail_lsn() const;

  /// Highest LSN known durable.
  Lsn durable_lsn() const;

  /// First valid LSN in this log.
  Lsn first_lsn() const { return kLogFileHeaderSize; }

  /// Master record: stable pointer to the most recent complete checkpoint
  /// (conventionally stored at a fixed location outside the log stream).
  void SetMasterRecord(Lsn checkpoint_begin_lsn);
  Lsn GetMasterRecord() const;

  LogStats stats() const;
  void ResetStats();

  /// Forward scan over [start_lsn, tail). Skips nothing; stops cleanly at
  /// the durable end or on a truncated/corrupt tail record (which marks the
  /// end of the log after a crash).
  class Iterator {
   public:
    Iterator(const LogManager* log, Lsn start, Lsn end);

    /// False when the scan is exhausted.
    bool Valid() const { return valid_; }
    const LogRecord& record() const { return rec_; }
    void Next();

   private:
    void ReadCurrent();

    const LogManager* log_;
    Lsn pos_;
    Lsn end_;
    bool valid_ = false;
    LogRecord rec_;
  };

  /// Scans from `start` to the current tail (or `end` if given).
  Iterator Scan(Lsn start, Lsn end = kInvalidLsn) const;

  static constexpr uint64_t kLogFileHeaderSize = 8;

  /// Raw byte read from the underlying log device (charged like any other
  /// log read). Building block for LogSegmentReader.
  Status ReadRaw(uint64_t offset, uint64_t n, char* out) const;

 private:
  SimLogDevice* const device_;
  mutable std::mutex mu_;
  Lsn master_record_ = kInvalidLsn;  // modeled as separate stable storage
  mutable LogStats stats_;
};

/// Buffered record reader for coordinated multi-page chain walks.
///
/// Walking one per-page chain with LogManager::Read pays one random log
/// access per record. When many failed pages are repaired together their
/// chains interleave within the same region of the log, so the batched
/// recovery scheduler reads the log in fixed-size SEGMENTS instead: each
/// segment is fetched with one device access and every record inside it is
/// then served from memory. Because the scheduler pops chain LSNs in
/// descending order, segments are fetched once each — the "replay shared
/// log segments once per batch" idea of instant restore (Sauer et al.).
///
/// Not thread-safe; one reader per walking thread.
class LogSegmentReader {
 public:
  explicit LogSegmentReader(const LogManager* log,
                            uint64_t segment_bytes = 256 * 1024);

  /// Reads the record at `lsn`, fetching its containing segment if it is
  /// not already buffered. The segment is placed so that `lsn` sits near
  /// its end (descending walks then hit the buffer).
  StatusOr<LogRecord> Read(Lsn lsn);

  /// Device fetches performed so far (the batched analog of per-record
  /// log_reads).
  uint64_t segment_fetches() const { return segment_fetches_; }
  /// Records parsed out of buffered segments.
  uint64_t records_served() const { return records_served_; }

 private:
  /// Window overshoot past the requested LSN on a miss, sized to cover a
  /// typical record so one fetch suffices.
  static constexpr uint64_t kRecordPeekBytes = 4096;

  /// Ensures [begin, end) is buffered, fetching one segment if not.
  Status Fetch(uint64_t begin, uint64_t end);

  const LogManager* const log_;
  const uint64_t segment_bytes_;
  std::string buf_;
  uint64_t buf_start_ = 0;
  uint64_t segment_fetches_ = 0;
  uint64_t records_served_ = 0;
};

}  // namespace spf
