// Virtual clock advanced by simulated device I/O.
//
// All storage devices in this repository charge simulated nanoseconds to a
// SimClock instead of sleeping. Recovery experiments therefore report the
// I/O time a real deployment would observe (e.g. restoring 100 GB at
// 100 MB/s = 1,000 simulated seconds, paper section 6) while running in
// milliseconds of wall time.

#pragma once

#include <atomic>
#include <cstdint>

namespace spf {

/// Monotonic virtual time source, thread-safe.
class SimClock {
 public:
  /// Current virtual time in nanoseconds since Reset().
  uint64_t NowNanos() const { return now_ns_.load(std::memory_order_relaxed); }

  /// Current virtual time in seconds.
  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }

  /// Charges `ns` nanoseconds of simulated time.
  void AdvanceNanos(uint64_t ns) {
    now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  void AdvanceMicros(uint64_t us) { AdvanceNanos(us * 1000); }
  void AdvanceMillis(uint64_t ms) { AdvanceNanos(ms * 1000 * 1000); }

  void Reset() { now_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_ns_{0};
};

/// RAII measurement of elapsed simulated time across a scope.
class SimTimer {
 public:
  explicit SimTimer(const SimClock* clock)
      : clock_(clock), start_ns_(clock->NowNanos()) {}

  uint64_t ElapsedNanos() const { return clock_->NowNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  const SimClock* clock_;
  uint64_t start_ns_;
};

}  // namespace spf
