// Size and time literals.

#pragma once

#include <cstdint>

namespace spf {

constexpr uint64_t kKiB = 1024ull;
constexpr uint64_t kMiB = 1024ull * kKiB;
constexpr uint64_t kGiB = 1024ull * kMiB;
constexpr uint64_t kTiB = 1024ull * kGiB;

// Decimal units, used by device transfer rates quoted in MB/s as in the
// paper's section 6 arithmetic (100 GB at 100 MB/s = 1,000 s).
constexpr uint64_t kKB = 1000ull;
constexpr uint64_t kMB = 1000ull * kKB;
constexpr uint64_t kGB = 1000ull * kMB;
constexpr uint64_t kTB = 1000ull * kGB;

constexpr uint64_t kMicrosecond = 1000ull;           // in nanoseconds
constexpr uint64_t kMillisecond = 1000ull * 1000ull;  // in nanoseconds
constexpr uint64_t kSecond = 1000ull * kMillisecond;  // in nanoseconds

}  // namespace spf
