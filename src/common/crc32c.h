// CRC32C (Castagnoli) checksum, used as the in-page parity check that
// detects most single-page failures on read (paper section 4.2).

#pragma once

#include <cstddef>
#include <cstdint>

namespace spf {
namespace crc32c {

/// Computes the CRC32C of `data[0, n)` extending `init_crc`.
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

/// Computes the CRC32C of `data[0, n)`.
inline uint32_t Value(const void* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC so that a CRC stored alongside the data it covers does not
/// produce a degenerate all-zero fixed point (RocksDB/LevelDB idiom).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace spf
