#include "common/status.h"

namespace spf {

std::string_view Status::CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kCorruption:
      return "Corruption";
    case Code::kIOError:
      return "IOError";
    case Code::kReadFailure:
      return "ReadFailure";
    case Code::kBusy:
      return "Busy";
    case Code::kDeadlock:
      return "Deadlock";
    case Code::kAborted:
      return "Aborted";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotSupported:
      return "NotSupported";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kMediaFailure:
      return "MediaFailure";
    case Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (msg_ && !msg_->empty()) {
    out += ": ";
    out += *msg_;
  }
  return out;
}

}  // namespace spf
