// StatusOr<T>: value-or-error return type, companion to Status.

#pragma once

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace spf {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr is a bug and
/// aborts via SPF_CHECK.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a non-OK status. Constructing from an OK
  /// status without a value is a bug.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SPF_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// Implicit conversion from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    SPF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    SPF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SPF_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `alternative` if this holds an error.
  T value_or(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spf
