// Deterministic pseudo-random generators for workloads, fault injection,
// and property tests. Everything is seedable so failures reproduce.

#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace spf {

/// xorshift128+ generator; fast, seedable, good enough for workloads.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5f3759df9e3779b9ull) {
    // SplitMix64 to spread the seed into both state words.
    uint64_t z = seed;
    auto next = [&z]() {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    SPF_CHECK_GT(n, 0u);
    return Next() % n;
  }

  /// Uniform in [lo, hi).
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    SPF_CHECK_LT(lo, hi);
    return lo + Uniform(hi - lo);
  }

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) {
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random byte string of exactly `len` printable characters.
  std::string NextString(size_t len) {
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string s(len, 'a');
    for (size_t i = 0; i < len; ++i) s[i] = kAlphabet[Uniform(62)];
    return s;
  }

 private:
  uint64_t s0_, s1_;
};

/// Zipf-distributed generator over [0, n) with parameter theta (0 = uniform,
/// ~0.99 = typical skewed OLTP). Uses the Gray et al. computation with
/// precomputed constants; O(1) per draw.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    SPF_CHECK_GT(n, 0u);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace spf
