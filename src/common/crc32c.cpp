#include "common/crc32c.h"

#include <array>

namespace spf {
namespace crc32c {
namespace {

// Table-driven CRC32C with the Castagnoli polynomial (reflected form).
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace spf
