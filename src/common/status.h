// Status: exception-free error propagation for all operational paths.
//
// Follows the RocksDB/Arrow idiom: cheap to copy when OK (no allocation),
// carries a code plus an optional message otherwise. Database code must
// return Status (or StatusOr<T>) rather than throwing; CHECK-style macros
// (see macros.h) are reserved for invariant violations that indicate bugs.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace spf {

/// Result code for every fallible operation in the library.
class Status {
 public:
  /// Error taxonomy; see DESIGN.md section 6.
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    /// Page contents failed a consistency test (checksum, header sanity,
    /// fence-key mismatch, PageLSN-vs-PRI mismatch). A candidate
    /// single-page failure (paper section 3.2).
    kCorruption = 2,
    /// Generic I/O error (allocation, out of space, ...).
    kIOError = 3,
    /// The device could not deliver the page at all despite retries —
    /// a "latent sector error". A candidate single-page failure.
    kReadFailure = 4,
    kBusy = 5,
    kDeadlock = 6,
    /// The transaction was rolled back (transaction failure class).
    kAborted = 7,
    kInvalidArgument = 8,
    kNotSupported = 9,
    kFailedPrecondition = 10,
    /// Unrecoverable failure of an entire device (media failure class).
    kMediaFailure = 11,
    kInternal = 12,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg = {}) {
    return Status(Code::kIOError, msg);
  }
  static Status ReadFailure(std::string_view msg = {}) {
    return Status(Code::kReadFailure, msg);
  }
  static Status Busy(std::string_view msg = {}) { return Status(Code::kBusy, msg); }
  static Status Deadlock(std::string_view msg = {}) {
    return Status(Code::kDeadlock, msg);
  }
  static Status Aborted(std::string_view msg = {}) {
    return Status(Code::kAborted, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotSupported(std::string_view msg = {}) {
    return Status(Code::kNotSupported, msg);
  }
  static Status FailedPrecondition(std::string_view msg = {}) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status MediaFailure(std::string_view msg = {}) {
    return Status(Code::kMediaFailure, msg);
  }
  static Status Internal(std::string_view msg = {}) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsReadFailure() const { return code_ == Code::kReadFailure; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsFailedPrecondition() const { return code_ == Code::kFailedPrecondition; }
  bool IsMediaFailure() const { return code_ == Code::kMediaFailure; }

  /// True if this status marks a candidate single-page failure: the page
  /// could not be read correctly and with plausible contents (paper
  /// section 3.2). These are the codes the buffer pool's read path routes
  /// into single-page recovery (Figure 8).
  bool IsSinglePageFailureCandidate() const {
    return code_ == Code::kCorruption || code_ == Code::kReadFailure;
  }

  Code code() const { return code_; }

  /// Human-readable message; empty for OK.
  std::string_view message() const {
    return msg_ ? std::string_view(*msg_) : std::string_view();
  }

  /// "<code name>: <message>" rendering for logs and test failures.
  std::string ToString() const;

  static std::string_view CodeName(Code code);

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code) {
    if (!msg.empty()) msg_ = std::make_shared<std::string>(msg);
  }

  Code code_ = Code::kOk;
  std::shared_ptr<std::string> msg_;  // shared so Status stays cheap to copy
};

}  // namespace spf
