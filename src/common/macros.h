// Invariant-checking and error-propagation macros.
//
// SPF_CHECK* are for conditions that can only be false if the program has a
// bug (corrupted in-memory invariants); they abort with a message. Runtime
// failures — I/O errors, corrupt pages, aborts — use Status instead.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace spf {
namespace internal {

/// Accumulates a failure message and aborts when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed CheckFailure expression into void so the ternary in
/// SPF_CHECK type-checks. `&` binds looser than `<<`, so the message is
/// streamed first.
class Voidify {
 public:
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace spf

#define SPF_CHECK(cond)                                       \
  (cond) ? (void)0                                            \
         : ::spf::internal::Voidify() &                       \
               ::spf::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define SPF_CHECK_EQ(a, b) SPF_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPF_CHECK_NE(a, b) SPF_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPF_CHECK_LT(a, b) SPF_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPF_CHECK_LE(a, b) SPF_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPF_CHECK_GT(a, b) SPF_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SPF_CHECK_GE(a, b) SPF_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define SPF_CHECK_OK(expr)                                  \
  do {                                                      \
    const ::spf::Status _spf_st = (expr);                   \
    SPF_CHECK(_spf_st.ok()) << "status: " << _spf_st.ToString(); \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define SPF_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::spf::Status _spf_st = (expr);            \
    if (!_spf_st.ok()) return _spf_st;         \
  } while (0)

#define SPF_CONCAT_IMPL(a, b) a##b
#define SPF_CONCAT(a, b) SPF_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a StatusOr<T>), propagates the error, or moves the
/// value into `lhs` (which may be a declaration, e.g. `auto v`).
#define SPF_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto SPF_CONCAT(_spf_sor_, __LINE__) = (rexpr);                  \
  if (!SPF_CONCAT(_spf_sor_, __LINE__).ok())                       \
    return SPF_CONCAT(_spf_sor_, __LINE__).status();               \
  lhs = std::move(SPF_CONCAT(_spf_sor_, __LINE__)).value()

#define SPF_DISALLOW_COPY(cls) \
  cls(const cls&) = delete;    \
  cls& operator=(const cls&) = delete
