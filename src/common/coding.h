// Little-endian fixed-width encoding helpers for on-page and on-log layouts.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace spf {

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 2);
}
inline void PutFixed32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), 8);
}

/// Appends a 32-bit length prefix followed by the bytes.
inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// Reads a 32-bit-length-prefixed string starting at `*offset` within `src`;
/// advances `*offset` past it. Returns false on truncation.
inline bool GetLengthPrefixed(std::string_view src, size_t* offset,
                              std::string_view* out) {
  if (*offset + 4 > src.size()) return false;
  uint32_t len = DecodeFixed32(src.data() + *offset);
  *offset += 4;
  if (*offset + len > src.size()) return false;
  *out = src.substr(*offset, len);
  *offset += len;
  return true;
}

/// Reads a fixed 64-bit value at `*offset`; advances. False on truncation.
inline bool GetFixed64(std::string_view src, size_t* offset, uint64_t* out) {
  if (*offset + 8 > src.size()) return false;
  *out = DecodeFixed64(src.data() + *offset);
  *offset += 8;
  return true;
}

inline bool GetFixed32(std::string_view src, size_t* offset, uint32_t* out) {
  if (*offset + 4 > src.size()) return false;
  *out = DecodeFixed32(src.data() + *offset);
  *offset += 4;
  return true;
}

inline bool GetFixed16(std::string_view src, size_t* offset, uint16_t* out) {
  if (*offset + 2 > src.size()) return false;
  *out = DecodeFixed16(src.data() + *offset);
  *offset += 2;
  return true;
}

}  // namespace spf
