// Sync discipline layer: the ONE place the engine declares mutexes.
//
// Three mechanisms turn the concurrency contract from prose into checked
// invariants:
//
//  1. Capability annotations (SPF_CAPABILITY / SPF_GUARDED_BY /
//     SPF_REQUIRES / ...) map onto clang's -Wthread-safety attributes, so
//     "this member is guarded by that mutex" is a compile-time claim: a
//     guarded access without the lock is a warning, and an error under
//     SPF_WERROR. GCC compiles the macros away (it has no analysis).
//
//  2. OrderedMutex / OrderedSharedMutex carry a static LockRank from the
//     engine-wide lattice below. With SPF_RANK_CHECK defined (the default
//     build; see CMakeLists), every blocking acquisition is checked
//     against a per-thread stack of held ranks and the process aborts on
//     an out-of-order acquisition — the dynamic complement to the static
//     analysis, and the proof obligation behind running TSan with
//     detect_deadlocks=1.
//
//  3. TSan's deadlock detector (detect_deadlocks=1) runs clean over the
//     frame latches through two measures. ResetIdentityForRecycle()
//     destroys and re-initializes a recycled frame latch so each
//     (frame, page) incarnation is a fresh sync object with a clean
//     vector clock. And because libtsan never purges lock-order edges —
//     measured: even destroy+reinit keeps them, so coupling edges would
//     accrete into spurious static cycles — TSan builds acquire
//     coupling-rank latches by spinning on try_lock, which records no
//     edge INTO the latch; every other rank stays fully deadlock-checked.
//
// Raw std::mutex / std::shared_mutex / std::condition_variable and naked
// .lock() spellings are forbidden outside this header; the
// tools/check_sync.py CI lint enforces it. Engine code uses the
// capitalized Lock()/Unlock() verbs and the guard types below.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <thread>

/// 1 when compiling under ThreadSanitizer (GCC or clang spelling).
#if defined(__SANITIZE_THREAD__)
#define SPF_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPF_TSAN_ACTIVE 1
#endif
#endif
#ifndef SPF_TSAN_ACTIVE
#define SPF_TSAN_ACTIVE 0
#endif

// --- clang -Wthread-safety attribute macros ---------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define SPF_TSA(x) __attribute__((x))
#else
#define SPF_TSA(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Marks a type as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define SPF_CAPABILITY(x) SPF_TSA(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define SPF_SCOPED_CAPABILITY SPF_TSA(scoped_lockable)
/// Member may only be read/written while holding `x`.
#define SPF_GUARDED_BY(x) SPF_TSA(guarded_by(x))
/// Pointee may only be dereferenced while holding `x`.
#define SPF_PT_GUARDED_BY(x) SPF_TSA(pt_guarded_by(x))
/// Function requires `...` held (exclusive) on entry; does not release.
#define SPF_REQUIRES(...) SPF_TSA(requires_capability(__VA_ARGS__))
/// Function requires `...` held (at least shared) on entry.
#define SPF_REQUIRES_SHARED(...) SPF_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires `...` (exclusive) and holds it on return.
#define SPF_ACQUIRE(...) SPF_TSA(acquire_capability(__VA_ARGS__))
/// Function acquires `...` (shared) and holds it on return.
#define SPF_ACQUIRE_SHARED(...) SPF_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases `...` (held exclusive on entry).
#define SPF_RELEASE(...) SPF_TSA(release_capability(__VA_ARGS__))
/// Function releases `...` (held shared on entry).
#define SPF_RELEASE_SHARED(...) SPF_TSA(release_shared_capability(__VA_ARGS__))
/// Function releases `...` held in either mode.
#define SPF_RELEASE_GENERIC(...) SPF_TSA(release_generic_capability(__VA_ARGS__))
/// Function tries to acquire; holds it iff the return value equals arg 1.
#define SPF_TRY_ACQUIRE(...) SPF_TSA(try_acquire_capability(__VA_ARGS__))
#define SPF_TRY_ACQUIRE_SHARED(...) \
  SPF_TSA(try_acquire_shared_capability(__VA_ARGS__))
/// Function must NOT be called with `...` held (anti-deadlock contract).
#define SPF_EXCLUDES(...) SPF_TSA(locks_excluded(__VA_ARGS__))
/// Runtime assertion that `x` is held (teaches the analysis, aborts never).
#define SPF_ASSERT_CAPABILITY(x) SPF_TSA(assert_capability(x))
#define SPF_ASSERT_SHARED_CAPABILITY(x) SPF_TSA(assert_shared_capability(x))
/// Function returns a reference to the capability `x`.
#define SPF_RETURN_CAPABILITY(x) SPF_TSA(lock_returned(x))
/// Escape hatch: function body is not analyzed. Use with a comment.
#define SPF_NO_THREAD_SAFETY_ANALYSIS SPF_TSA(no_thread_safety_analysis)

/// 1 when the runtime rank checker is compiled in (SPF_RANK_CHECK cmake
/// option), 0 otherwise — for tests that assert on held-stack depths.
#ifdef SPF_RANK_CHECK
#define SPF_RANK_CHECK_ENABLED 1
#else
#define SPF_RANK_CHECK_ENABLED 0
#endif

namespace spf {

// --- the rank lattice -------------------------------------------------------

/// Engine-wide lock ordering. A thread may BLOCKING-acquire a mutex only
/// if its rank is strictly greater than every rank it already holds —
/// ranks grow from the outermost orchestration locks down to leaf
/// counters, so deadlock cycles are impossible by construction. Two
/// sanctioned exceptions:
///
///  * equal-rank acquisition is allowed for kFrameLatch only: the Foster
///    B-tree's top-down latch coupling (parent held while the child is
///    latched) is deadlock-free by descent order, not by rank;
///  * TryLock* never blocks and therefore skips the order check entirely
///    (the buffer pool's victim-reservation try_lock and the scrubber's
///    never-block frame peeks rely on this).
///
/// The full table with the code paths that pin each edge lives in
/// docs/ARCHITECTURE.md ("Lock order").
enum class LockRank : uint16_t {
  kHarness = 10,        ///< chaos-driver schedule/violation state
  kLifecycle = 15,      ///< Start/Stop thread spawn-join serialization
  kLadder = 20,         ///< one recovery-ladder climb at a time
  kRecoverMedia = 25,   ///< rung-5 climbs (Database::recover_media_mu_)
  kDaemonCadence = 30,  ///< scrubber sweep_mu_, archiver tick_mu_
  kFrameLatch = 40,     ///< buffer-pool frame latches (coupling allowed)
  kCommitGate = 45,     ///< TxnManager::commit_gate_
  kTxnTable = 50,       ///< TxnManager::mu_ (active-txn table)
  kLockShard = 55,      ///< LockManager shard mutexes
  kRepairBatch = 60,    ///< RecoveryScheduler::batch_mu_
  kRepairWorkers = 65,  ///< batched-repair WorkerPool queue
  kBufferVictim = 70,   ///< BufferPool::victim_mu_ (clock hand / sweeps)
  kBufferShard = 75,    ///< BufferPool id->frame shard mutexes
  kPri = 80,            ///< PriManager chain state (log appends nest under)
  kPriIndex = 82,       ///< PageRecoveryIndex map (pure data, calls nothing)
  kFunnel = 85,         ///< RecoveryCoordinator entry/queue state
  kArchiveIo = 90,      ///< LogArchiver::io_mu_ (run extents)
  kArchiveDir = 95,     ///< LogArchiver::mu_ (directory + stats)
  kLogFlush = 100,      ///< LogManager::flush_mu_ (publisher order)
  kLogState = 105,      ///< LogManager::mu_ (reservation + staging)
  kRestoreGate = 110,   ///< RestoreGate::mu_ (admission / segments)
  kBackup = 115,        ///< BackupManager::mu_ (slots + catalog)
  kMirror = 118,        ///< MirrorBaseline state (held across mirror I/O)
  kServerQueue = 120,   ///< NetworkServer work/rearm queues
  kDevice = 125,        ///< SimDevice / SimLogDevice state
  kStats = 130,         ///< leaf counters; terminal — hold nothing beyond
};

/// Diagnostic name for a rank (abort messages, tests).
inline const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kHarness: return "harness";
    case LockRank::kLifecycle: return "lifecycle";
    case LockRank::kLadder: return "ladder";
    case LockRank::kRecoverMedia: return "recover-media";
    case LockRank::kDaemonCadence: return "daemon-cadence";
    case LockRank::kFrameLatch: return "frame-latch";
    case LockRank::kCommitGate: return "commit-gate";
    case LockRank::kTxnTable: return "txn-table";
    case LockRank::kLockShard: return "lock-shard";
    case LockRank::kRepairBatch: return "repair-batch";
    case LockRank::kRepairWorkers: return "repair-workers";
    case LockRank::kBufferVictim: return "buffer-victim";
    case LockRank::kBufferShard: return "buffer-shard";
    case LockRank::kPri: return "pri";
    case LockRank::kPriIndex: return "pri-index";
    case LockRank::kFunnel: return "funnel";
    case LockRank::kArchiveIo: return "archive-io";
    case LockRank::kArchiveDir: return "archive-dir";
    case LockRank::kLogFlush: return "log-flush";
    case LockRank::kLogState: return "log-state";
    case LockRank::kRestoreGate: return "restore-gate";
    case LockRank::kBackup: return "backup";
    case LockRank::kMirror: return "mirror";
    case LockRank::kServerQueue: return "server-queue";
    case LockRank::kDevice: return "device";
    case LockRank::kStats: return "stats";
  }
  return "?";
}

/// True when nested same-rank blocking acquisition is sanctioned: only the
/// frame latches, whose top-down coupling order (root toward leaf, foster
/// parent before foster child) is the B-tree's own deadlock-freedom proof.
inline constexpr bool RankAllowsCoupling(LockRank r) {
  return r == LockRank::kFrameLatch;
}

// --- per-thread held-rank stack (SPF_RANK_CHECK builds) ---------------------

namespace sync_internal {

#ifdef SPF_RANK_CHECK

inline constexpr int kMaxHeld = 64;

struct HeldStack {
  const void* mu[kMaxHeld];
  uint16_t rank[kMaxHeld];
  bool shared[kMaxHeld];
  int n = 0;
};

inline HeldStack& Held() {
  thread_local HeldStack stack;
  return stack;
}

[[noreturn]] inline void RankAbort(const char* what, LockRank rank) {
  HeldStack& h = Held();
  std::fprintf(stderr,
               "LOCK RANK VIOLATION: %s of rank %u (%s) while holding:\n",
               what, static_cast<unsigned>(rank),
               LockRankName(rank));
  for (int i = 0; i < h.n; ++i) {
    std::fprintf(stderr, "  held[%d]: rank %u (%s)\n", i, h.rank[i],
                 LockRankName(static_cast<LockRank>(h.rank[i])));
  }
  std::fprintf(stderr,
               "see docs/ARCHITECTURE.md \"Lock order\" for the lattice\n");
  std::abort();
}

/// Order check + push for a BLOCKING acquisition. Re-acquiring a lock the
/// thread already holds is a self-deadlock — except SHARED-on-SHARED at a
/// coupling rank: the buffer pool supports fixing the same page twice in
/// one thread with shared latches (recursive read locks are safe on the
/// reader-preferring rwlock this engine pins; a shared->exclusive upgrade
/// is never safe and always aborts).
inline void CheckedPush(const void* mu, LockRank rank, bool is_shared) {
  HeldStack& h = Held();
  uint16_t max_rank = 0;
  for (int i = 0; i < h.n; ++i) {
    if (h.mu[i] == mu &&
        !(is_shared && h.shared[i] && RankAllowsCoupling(rank))) {
      RankAbort("recursive acquisition", rank);
    }
    if (h.rank[i] > max_rank) max_rank = h.rank[i];
  }
  const uint16_t r = static_cast<uint16_t>(rank);
  if (r < max_rank ||
      (r == max_rank && !RankAllowsCoupling(rank))) {
    RankAbort("out-of-order blocking acquisition", rank);
  }
  if (h.n >= kMaxHeld) RankAbort("held-lock stack overflow", rank);
  h.mu[h.n] = mu;
  h.rank[h.n] = r;
  h.shared[h.n] = is_shared;
  h.n++;
}

/// Push without an order check (successful TryLock: it never blocked, so
/// it cannot close a wait cycle; it still counts as held for later checks).
inline void UncheckedPush(const void* mu, LockRank rank, bool is_shared) {
  HeldStack& h = Held();
  if (h.n >= kMaxHeld) RankAbort("held-lock stack overflow", rank);
  h.mu[h.n] = mu;
  h.rank[h.n] = static_cast<uint16_t>(rank);
  h.shared[h.n] = is_shared;
  h.n++;
}

/// Removes the most recent entry for `mu` (releases need not be LIFO).
inline void Pop(const void* mu) {
  HeldStack& h = Held();
  for (int i = h.n - 1; i >= 0; --i) {
    if (h.mu[i] != mu) continue;
    for (int j = i; j + 1 < h.n; ++j) {
      h.mu[j] = h.mu[j + 1];
      h.rank[j] = h.rank[j + 1];
      h.shared[j] = h.shared[j + 1];
    }
    h.n--;
    return;
  }
  std::fprintf(stderr, "LOCK RANK VIOLATION: release of a lock not held\n");
  std::abort();
}

/// Number of locks the calling thread holds (tests).
inline int HeldCount() { return Held().n; }

#else  // !SPF_RANK_CHECK

inline void CheckedPush(const void*, LockRank, bool) {}
inline void UncheckedPush(const void*, LockRank, bool) {}
inline void Pop(const void*) {}
inline int HeldCount() { return 0; }

#endif  // SPF_RANK_CHECK

}  // namespace sync_internal

// --- ranked mutexes ---------------------------------------------------------

/// std::mutex with a LockRank. Blocking Lock() enforces the lattice in
/// SPF_RANK_CHECK builds; TryLock() is the sanctioned escape hatch (never
/// blocks, never checked, still recorded as held).
class SPF_CAPABILITY("mutex") OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void Lock() SPF_ACQUIRE() {
    sync_internal::CheckedPush(this, rank_, /*is_shared=*/false);
    mu_.lock();
  }
  void Unlock() SPF_RELEASE() {
    mu_.unlock();
    sync_internal::Pop(this);
  }
  bool TryLock() SPF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::UncheckedPush(this, rank_, /*is_shared=*/false);
    return true;
  }

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

/// std::shared_mutex with a LockRank. Shared and exclusive acquisitions
/// obey the same lattice; ResetIdentityForRecycle() gives a recycled frame
/// latch a fresh TSan sync-object identity (see the file comment).
class SPF_CAPABILITY("shared_mutex") OrderedSharedMutex {
 public:
  explicit OrderedSharedMutex(LockRank rank) : rank_(rank) {}
  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void Lock() SPF_ACQUIRE() {
    sync_internal::CheckedPush(this, rank_, /*is_shared=*/false);
#if SPF_TSAN_ACTIVE
    if (RankAllowsCoupling(rank_)) {
      while (!mu_.try_lock()) std::this_thread::yield();
      return;
    }
#endif
    mu_.lock();
  }
  void Unlock() SPF_RELEASE() {
    mu_.unlock();
    sync_internal::Pop(this);
  }
  bool TryLock() SPF_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::UncheckedPush(this, rank_, /*is_shared=*/false);
    return true;
  }
  void LockShared() SPF_ACQUIRE_SHARED() {
    sync_internal::CheckedPush(this, rank_, /*is_shared=*/true);
#if SPF_TSAN_ACTIVE
    // TSan's deadlock detector records a lock-order edge for every
    // BLOCKING acquisition and none for a successful try_lock (a try can
    // never close a wait cycle). Coupling-rank latches are ordered by
    // tree topology, not rank — over time frames are acquired in both
    // relative orders, and since libtsan keeps edges forever, blocking
    // acquisitions would accrete spurious deadlock cycles. Spinning on
    // try_lock keeps edges INTO these latches out of the graph; their
    // actual deadlock freedom is the B-tree's top-down descent protocol.
    if (RankAllowsCoupling(rank_)) {
      while (!mu_.try_lock_shared()) std::this_thread::yield();
      return;
    }
#endif
    mu_.lock_shared();
  }
  void UnlockShared() SPF_RELEASE_SHARED() {
    mu_.unlock_shared();
    sync_internal::Pop(this);
  }
  bool TryLockShared() SPF_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    sync_internal::UncheckedPush(this, rank_, /*is_shared=*/true);
    return true;
  }

  LockRank rank() const { return rank_; }

  /// Destroys and re-initializes the underlying lock. The caller must
  /// guarantee the latch is free AND unreachable (the buffer pool calls
  /// this from the victim chooser after the frame is unmapped with
  /// pin_count 0, where both hold by the pin/latch invariant). Under
  /// TSan this retires the old sync object's vector clock, so the next
  /// page's accesses through this frame don't inherit happens-before
  /// state from the previous page's incarnation. (It does NOT purge
  /// deadlock-detector lock-order edges — libtsan keeps those past
  /// destruction; the coupling-rank try_lock spin above handles that.)
  void ResetIdentityForRecycle() {
    mu_.~shared_mutex();
    new (&mu_) std::shared_mutex();
  }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

// --- guards -----------------------------------------------------------------

/// Scope-exclusive lock on an OrderedMutex (lock_guard equivalent).
class SPF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(OrderedMutex& mu) SPF_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() SPF_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  OrderedMutex& mu_;
};

/// Re-lockable exclusive lock on an OrderedMutex (unique_lock equivalent):
/// supports CondVar waits and manual Unlock()/Lock() windows. The
/// lowercase lock()/unlock() spellings exist ONLY to satisfy the standard
/// Lockable requirements of std::condition_variable_any; engine code
/// spells the capitalized verbs (tools/check_sync.py enforces it).
class SPF_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(OrderedMutex& mu) SPF_ACQUIRE(mu)
      : mu_(&mu), owned_(true) {
    mu_->Lock();
  }
  ~UniqueLock() SPF_RELEASE() {
    if (owned_) mu_->Unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() SPF_ACQUIRE() { lock(); }
  void Unlock() SPF_RELEASE() { unlock(); }
  bool owns_lock() const { return owned_; }

  // Standard Lockable surface for std::condition_variable_any.
  void lock() SPF_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }
  void unlock() SPF_RELEASE() {
    owned_ = false;
    mu_->Unlock();
  }

 private:
  OrderedMutex* mu_;
  bool owned_;
};

/// Scope-shared lock on an OrderedSharedMutex.
class SPF_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(OrderedSharedMutex& mu) SPF_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() SPF_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  OrderedSharedMutex& mu_;
};

/// Scope-exclusive lock on an OrderedSharedMutex. Movable so a factory
/// (TxnManager::LockCommitsForCheckpoint) can hand the held section to its
/// caller.
class SPF_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(OrderedSharedMutex& mu) SPF_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  WriterLock(WriterLock&& other) noexcept
      SPF_NO_THREAD_SAFETY_ANALYSIS : mu_(other.mu_) {
    other.mu_ = nullptr;
  }
  ~WriterLock() SPF_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  WriterLock& operator=(WriterLock&&) = delete;

 private:
  OrderedSharedMutex* mu_;
};

/// The engine's condition variable: works with UniqueLock (and any
/// Lockable), so waits keep the rank bookkeeping exact — the wait's
/// internal unlock/relock goes through OrderedMutex and pops/pushes the
/// held stack like any other release/acquire.
using CondVar = std::condition_variable_any;

}  // namespace spf
