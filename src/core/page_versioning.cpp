#include "core/page_versioning.h"

#include "btree/btree_log.h"
#include "btree/node_layout.h"

namespace spf {

Status PageVersioning::UndoOnPage(const LogRecord& rec, PageView page) {
  BTreeNode node(page);
  switch (rec.type) {
    case LogRecordType::kBTreeInsert: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeInsert(rec.body));
      auto fr = node.Find(body.key);
      if (!fr.found) return Status::Corruption("undo insert: key missing");
      if (body.had_ghost) {
        SPF_RETURN_IF_ERROR(node.ReplaceValue(fr.slot, body.old_value));
        node.SetGhost(fr.slot, true);
      } else {
        node.RemoveSlot(fr.slot);
      }
      return Status::OK();
    }
    case LogRecordType::kBTreeMarkGhost: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeMarkGhost(rec.body));
      auto fr = node.Find(body.key);
      if (!fr.found) return Status::Corruption("undo ghost: key missing");
      node.SetGhost(fr.slot, false);
      return Status::OK();
    }
    case LogRecordType::kBTreeUpdate: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeUpdate(rec.body));
      auto fr = node.Find(body.key);
      if (!fr.found) return Status::Corruption("undo update: key missing");
      return node.ReplaceValue(fr.slot, body.old_value);
    }
    default:
      return Status::NotSupported(
          "page rollback across structural record type " +
          std::string(LogRecordTypeName(rec.type)));
  }
}

Status PageVersioning::RollBackTo(PageView page, Lsn as_of_lsn) {
  uint64_t rolled = 0;
  while (page.page_lsn() != kInvalidLsn && page.page_lsn() > as_of_lsn) {
    auto rec_or = log_->Read(page.page_lsn());
    {
      MutexLock g(mu_);
      stats_.log_reads++;
    }
    if (!rec_or.ok()) return rec_or.status();
    const LogRecord& rec = *rec_or;
    if (rec.page_id != page.page_id()) {
      return Status::Corruption("per-page chain contains foreign record");
    }
    SPF_RETURN_IF_ERROR(UndoOnPage(rec, page));
    page.set_page_lsn(rec.page_prev_lsn);
    rolled++;
  }
  MutexLock g(mu_);
  stats_.versions_built++;
  stats_.records_rolled_back += rolled;
  return Status::OK();
}

}  // namespace spf
