// Page recovery index (PRI) — the paper's new data structure (section
// 5.2.2, Figures 7 and 9).
//
// For every data page the PRI tracks two facts:
//   * the most recent BACKUP of the page — one of: an individual backup
//     page, a full database backup, an in-log page image, or the page's
//     formatting log record (Figure 7 "one of those three alternatives",
//     plus the full-backup range case);
//   * the LSN of the most recent log record pertaining to the page —
//     valid only while the page is NOT resident in the buffer pool and has
//     been updated since the last backup. This anchors single-page
//     recovery's walk of the per-page log chain.
//
// Representation: an ordered, range-compressed index. The device's page-id
// space is divided into fixed WINDOWS of kPriEntriesPerWindow ids; each
// window maps to exactly one PRI page on disk and holds range entries
// [start, end) -> {backup ref, last LSN}. A whole-database backup collapses
// each window to a single entry (the paper's "a single entry should cover
// a large range of pages"); the worst case (every page distinct) fits a
// window's PRI page exactly by construction (~16-33 bytes per page, the
// paper's 1 permille bound).
//
// Two-partition placement: partition A's PRI pages sit at LOW device
// addresses and cover the UPPER half of the page-id space; partition B's
// pages sit at HIGH addresses and cover the LOWER half. Hence no PRI page
// is covered by itself or its own partition (DESIGN.md invariant P2).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/sync.h"
#include "storage/page.h"

namespace spf {

/// What kind of backup the PRI references for a page (Figure 7).
enum class BackupKind : uint8_t {
  kNone = 0,         ///< no backup known — recovery must escalate
  kBackupPage = 1,   ///< individual copy; value = backup-device location
  kFullBackup = 2,   ///< whole-database backup; value = backup id
  kLogImage = 3,     ///< in-log page image; value = LSN of kFullPageImage
  kFormatRecord = 4, ///< value = LSN of the page's kPageFormat record
};

/// Reference to one page's most recent backup: its kind plus a
/// kind-dependent locator (Figure 7's "backup" field).
struct BackupRef {
  BackupKind kind = BackupKind::kNone;  ///< which backup form
  uint64_t value = 0;  ///< locator: device location, backup id, or LSN

  /// Field-wise equality.
  bool operator==(const BackupRef& o) const {
    return kind == o.kind && value == o.value;
  }
};

/// One page's recovery information (Figure 7's two fields).
struct PriEntry {
  BackupRef backup;  ///< most recent backup of the page
  /// LSN of the page's most recent completed update; kInvalidLsn means
  /// "not updated since the backup was taken".
  Lsn last_lsn = kInvalidLsn;

  /// Field-wise equality.
  bool operator==(const PriEntry& o) const {
    return backup == o.backup && last_lsn == o.last_lsn;
  }
};

/// Number of data-page ids covered by one PRI window/page. Chosen so a
/// window's worst case (one entry per covered page, 33 bytes each) fits an
/// 8 KiB PRI page.
constexpr uint64_t kPriEntriesPerWindow = 240;

/// Serialized size of one on-page PRI entry: start, end, lsn, value (8 B
/// each) + kind (1 B).
constexpr size_t kPriEntryWireSize = 33;

/// Cumulative index-maintenance counters (PageRecoveryIndex::stats()).
struct PriStats {
  uint64_t lookups = 0;        ///< Lookup/LookupAnchor calls
  uint64_t lookup_misses = 0;  ///< lookups that found nothing
  uint64_t updates = 0;        ///< RecordWrite/RecordBackup applications
  uint64_t range_splits = 0;   ///< range entries split by point updates
  uint64_t range_merges = 0;   ///< adjacent identical ranges re-merged
};

/// The in-memory PRI: authoritative at runtime, mirrored to PRI pages at
/// checkpoints (Figure 11: "after this log record has been saved in the
/// log, there is no urgency to write the data page of the page recovery
/// index"). Thread-safe.
class PageRecoveryIndex {
 public:
  /// Builds an empty index covering page ids [0, num_pages).
  explicit PageRecoveryIndex(uint64_t num_pages);

  SPF_DISALLOW_COPY(PageRecoveryIndex);

  /// Recovery information for `id`; NotFound if the PRI knows nothing
  /// (BackupKind::kNone territory — forces escalation to media recovery).
  StatusOr<PriEntry> Lookup(PageId id) const;

  /// Like Lookup, but tolerates a LOST backup reference: returns the
  /// entry as long as the index still holds the per-page chain anchor
  /// (last_lsn), even when backup.kind is kNone. Partial media restore
  /// uses this — it sources images from the full backup, so only the
  /// chain anchor matters. NotFound when the index has nothing at all.
  StatusOr<PriEntry> LookupAnchor(PageId id) const;

  /// Records a completed write of `id` at `page_lsn` (the PriUpdate's
  /// effect on the index).
  void RecordWrite(PageId id, Lsn page_lsn);

  /// Records a new backup for `id`; resets last_lsn (the page is clean
  /// relative to the new backup). Returns the previous backup ref so the
  /// caller can free an old backup page.
  BackupRef RecordBackup(PageId id, BackupRef backup);

  /// Collapses the whole index to "covered by full backup `backup_id`"
  /// (one range entry per window).
  void RecordFullBackup(uint64_t backup_id);

  /// Raw entry assignment (restart recovery / deserialization).
  void Apply(PageId id, const PriEntry& entry);

  // --- window/persistence interface -----------------------------------------

  /// Number of fixed-size windows the page-id space is divided into.
  uint64_t num_windows() const { return num_windows_; }
  /// The window covering page `id`.
  static uint64_t WindowOf(PageId id) { return id / kPriEntriesPerWindow; }

  /// Serializes one window's entries (the PRI page payload).
  std::string SerializeWindow(uint64_t window) const;

  /// Replaces one window's entries from SerializeWindow output.
  Status DeserializeWindow(uint64_t window, std::string_view data);

  /// Windows touched since the last ClearDirtyWindows (checkpoint uses
  /// the snapshot-then-clear pattern of section 5.2.6).
  std::vector<uint64_t> DirtyWindows() const;
  /// Marks one window clean again (after its PRI page was written).
  void ClearDirtyWindow(uint64_t window);

  // --- introspection (experiment E5) -----------------------------------------

  /// Total range entries across all windows.
  uint64_t entry_count() const;
  /// Approximate in-memory footprint: entries * wire size.
  uint64_t approx_bytes() const;
  /// Cumulative maintenance counters.
  PriStats stats() const;

 private:
  struct RangeEntry {
    PageId end;  // exclusive
    PriEntry entry;
  };
  /// One window: range entries keyed by range start, non-overlapping,
  /// confined to [window*K, (window+1)*K).
  struct Window {
    std::map<PageId, RangeEntry> ranges;
    bool dirty = false;
  };

  /// Sets entry for exactly [id, id+1), splitting ranges as needed.
  void SetPointLocked(PageId id, const PriEntry& entry) SPF_REQUIRES(mu_);
  /// Merges adjacent ranges with identical entries around `id`.
  void CoalesceLocked(Window& w, PageId id) SPF_REQUIRES(mu_);
  const RangeEntry* FindLocked(const Window& w, PageId id) const
      SPF_REQUIRES(mu_);

  const uint64_t num_pages_;
  const uint64_t num_windows_;
  mutable OrderedMutex mu_{LockRank::kPriIndex};
  std::vector<Window> windows_ SPF_GUARDED_BY(mu_);
  mutable PriStats stats_ SPF_GUARDED_BY(mu_);
};

// --- PriUpdate record body (section 5.2.4) -------------------------------------

/// Body of a kPriUpdate log record: the data page whose write completed,
/// the certified PageLSN, and optionally a new backup reference. The
/// record's page_id names the COVERING PRI PAGE (whose per-page chain it
/// extends), which is how PRI pages themselves stay recoverable.
struct PriUpdateBody {
  PageId data_page_id = kInvalidPageId;  ///< data page whose write completed
  Lsn page_lsn = kInvalidLsn;            ///< certified PageLSN of that write
  bool has_backup = false;               ///< whether `backup` is meaningful
  BackupRef backup;                      ///< new backup reference, if any
};

/// Serializes a PriUpdateBody into a log-record payload.
std::string EncodePriUpdate(const PriUpdateBody& body);
/// Parses an EncodePriUpdate payload; Corruption on malformed input.
StatusOr<PriUpdateBody> DecodePriUpdate(std::string_view data);

}  // namespace spf
