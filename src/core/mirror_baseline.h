// SQL-Server-style database-mirroring page repair — the prior-art baseline
// of the paper's section 2.
//
// The mirror keeps an ENTIRE second copy of the database current by
// applying the full recovery-log stream (log shipping). When a page in the
// principal is found inconsistent, it is replaced by the corresponding
// page from the mirror. The paper's criticisms, both reproduced here and
// measured by bench_e10_mirror_baseline:
//   * "the recovery log is applied to the entire mirror database, not just
//     the individual page that requires repair" — CatchUp() replays every
//     page record, not one per-page chain;
//   * "the recovery process completely fails to exploit the per-page log
//     chain already present in the recovery log";
//   * it requires "keeping an entire mirror database current at all times"
//     — double the storage and continuous apply bandwidth.

#pragma once

#include "btree/btree_log.h"
#include "common/sim_clock.h"
#include "common/sync.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"

namespace spf {

struct MirrorStats {
  uint64_t records_applied = 0;
  uint64_t records_scanned = 0;
  uint64_t pages_served = 0;
  uint64_t mirror_writes = 0;
  uint64_t apply_sim_ns = 0;
};

/// A full mirror of the data device, kept current by whole-stream log
/// application.
class MirrorBaseline {
 public:
  /// `mirror_device` must match the data device's geometry and start as an
  /// identical copy (use SeedFromPrincipal).
  MirrorBaseline(LogManager* log, SimDevice* mirror_device, SimClock* clock)
      : log_(log), mirror_(mirror_device), clock_(clock) {}

  /// Initializes the mirror as a byte copy of the principal (the initial
  /// full synchronization of mirroring setups).
  Status SeedFromPrincipal(SimDevice* principal);

  /// Applies the entire log stream from the last applied position to the
  /// current durable end — the continuous "redo on the mirror".
  Status CatchUp();

  /// Serves the mirror's copy of `id` after catching up (the repair path:
  /// the principal's bad page is replaced by the mirror's).
  Status RepairFrom(PageId id, char* out);

  MirrorStats stats() const {
    MutexLock g(mu_);
    return stats_;
  }

 private:
  LogManager* const log_;
  SimDevice* const mirror_;
  SimClock* const clock_;

  // Held across mirror-device reads/writes during catch-up, so it must
  // order BELOW kDevice — the rank checker caught the original kStats
  // (leaf) ranking as an inversion the first time CatchUp() ran.
  mutable OrderedMutex mu_{LockRank::kMirror};
  Lsn applied_upto_ SPF_GUARDED_BY(mu_) = kInvalidLsn;
  MirrorStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
