// RecoveryScheduler: coordinated repair of MANY failed pages at once.
//
// The paper notes (section 5.2) that "it is perfectly possible that
// multiple pages fail and that they be recovered at the same time", and
// that coordinated recovery of a large failed set converges to the access
// patterns of media recovery. Serial single-page recovery repairs a burst
// of N latent faults with N independent walks of per-page log chains —
// N × chain-length random log reads. "Instant restore after a media
// failure" (Sauer, Graefe & Härder, 2017) shows the coordinated fix, which
// this scheduler implements for batches:
//
//   1. group the failed pages by BACKUP SOURCE (all pages restored from
//      the same full backup are read in page-id order — sequential backup
//      I/O, like a partial restore);
//   2. cluster the per-page chains by OVERLAPPING LOG RANGES
//      (backup-LSN .. target-LSN) and walk each cluster's chains together:
//      a max-heap over every page's next chain pointer pops records in
//      globally descending LSN order, so the log is read in SEGMENTS, each
//      fetched once per batch (LogSegmentReader) instead of once per
//      record;
//   3. apply each page's collected chain and heal the device copy, fanned
//      out over a small worker pool (stats are sharded in
//      SinglePageRecovery, so concurrent repairs do not serialize).
//
// The scheduler is also the PageRepairer installed in the buffer pool, so
// foreground read-time detections (Figure 8), Database::Scrub(), the
// background Scrubber, and escalation paths all funnel repair work through
// one component.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/single_page_recovery.h"

namespace spf {

struct RecoverySchedulerOptions {
  /// Worker threads for the fan-out phases. 0 runs every phase inline.
  uint32_t num_workers = 4;
  /// Coordinated batch repair. When false, RepairBatch degrades to the
  /// serial per-page baseline (one independent chain walk per page) —
  /// the comparison axis of bench E8.
  bool batch_repair = true;
  /// Segment size for shared log reads in the batched path.
  uint64_t log_segment_bytes = 256 * 1024;
};

struct RecoverySchedulerStats {
  uint64_t batches = 0;
  uint64_t pages_requested = 0;
  uint64_t pages_repaired = 0;
  uint64_t pages_failed = 0;
  uint64_t backup_groups = 0;       ///< backup-source groups formed
  uint64_t chain_clusters = 0;      ///< overlapping-log-range clusters walked
  uint64_t segment_fetches = 0;     ///< shared log segment reads
  uint64_t single_repairs = 0;      ///< foreground (read-path) repairs
};

struct PageRepairOutcome {
  PageId page_id = kInvalidPageId;
  Status status;
};

struct BatchRepairResult {
  uint64_t repaired = 0;
  uint64_t failed = 0;
  /// One entry per page that could not be repaired (escalations).
  std::vector<PageRepairOutcome> failures;
};

class RecoveryScheduler : public PageRepairer {
 public:
  RecoveryScheduler(SinglePageRecovery* spr, RecoverySchedulerOptions options);
  ~RecoveryScheduler() override;

  SPF_DISALLOW_COPY(RecoveryScheduler);

  /// PageRepairer hook (buffer pool read path): a foreground fault is a
  /// batch of one — repaired immediately on the calling thread.
  Status RepairPage(PageId id, char* frame) override;

  /// Repairs every page in `pages` (deduplicated). Individual failures do
  /// not abort the rest of the batch; they are reported in the result.
  /// Thread-safe; concurrent batches are serialized.
  StatusOr<BatchRepairResult> RepairBatch(std::vector<PageId> pages);

  /// Runtime toggle for the batched-vs-serial comparison (bench E8/E9).
  void set_batch_repair(bool on);
  bool batch_repair() const;

  RecoverySchedulerStats stats() const;
  void ResetStats();

 private:
  struct PageTask;
  class WorkerPool;

  BatchRepairResult RepairSerial(std::vector<PageTask>* tasks);
  BatchRepairResult RepairBatched(std::vector<PageTask>* tasks);

  /// Phase 2 core: walks one cluster of overlapping chains via a max-heap
  /// of per-page next pointers, reading shared log segments once each.
  void WalkCluster(std::vector<PageTask>* tasks,
                   const std::vector<size_t>& members);

  SinglePageRecovery* const spr_;
  RecoverySchedulerOptions options_;
  /// Created on first batched repair (guarded by batch_mu_).
  std::unique_ptr<WorkerPool> workers_;

  std::mutex batch_mu_;  ///< one batch in flight at a time

  mutable std::mutex stats_mu_;  ///< guards stats_ and options_.batch_repair
  RecoverySchedulerStats stats_;
};

}  // namespace spf
