// RecoveryScheduler: coordinated repair of MANY failed pages at once.
//
// The paper notes (section 5.2) that "it is perfectly possible that
// multiple pages fail and that they be recovered at the same time", and
// that coordinated recovery of a large failed set converges to the access
// patterns of media recovery. Serial single-page recovery repairs a burst
// of N latent faults with N independent walks of per-page log chains —
// N × chain-length random log reads. "Instant restore after a media
// failure" (Sauer, Graefe & Härder, 2017) shows the coordinated fix, which
// this scheduler implements for batches:
//
//   1. group the failed pages by BACKUP SOURCE (all pages restored from
//      the same full backup are read in page-id order — sequential backup
//      I/O, like a partial restore);
//   2. cluster the per-page chains by OVERLAPPING LOG RANGES
//      (backup-LSN .. target-LSN) and walk each cluster's chains together:
//      a max-heap over every page's next chain pointer pops records in
//      globally descending LSN order, so the log is read in SEGMENTS, each
//      fetched once per batch (LogSegmentReader) instead of once per
//      record;
//   3. apply each page's collected chain and heal the device copy, fanned
//      out over a small worker pool (stats are sharded in
//      SinglePageRecovery, so concurrent repairs do not serialize).
//
// The scheduler is also the PageRepairer installed in the buffer pool, so
// foreground read-time detections (Figure 8), Database::Scrub(), the
// background Scrubber, and escalation paths all funnel repair work through
// one component.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "core/single_page_recovery.h"

namespace spf {

/// Tuning knobs for the RecoveryScheduler.
struct RecoverySchedulerOptions {
  /// Worker threads for the fan-out phases. 0 runs every phase inline.
  uint32_t num_workers = 4;
  /// Coordinated batch repair. When false, RepairBatch degrades to the
  /// serial per-page baseline (one independent chain walk per page) —
  /// the comparison axis of bench E8.
  bool batch_repair = true;
  /// Segment size for shared log reads in the batched path.
  uint64_t log_segment_bytes = 256 * 1024;
};

/// Cumulative counters across all batches (RecoveryScheduler::stats()).
struct RecoverySchedulerStats {
  uint64_t batches = 0;             ///< RepairBatch invocations
  uint64_t pages_requested = 0;     ///< distinct pages across all batches
  uint64_t pages_repaired = 0;      ///< pages healed
  uint64_t pages_failed = 0;        ///< pages that escalated
  uint64_t backup_groups = 0;       ///< backup-source groups formed
  uint64_t chain_clusters = 0;      ///< overlapping-log-range clusters walked
  uint64_t segment_fetches = 0;     ///< shared log segment reads
  uint64_t archive_fetches = 0;     ///< batched sorted-run range fetches
  uint64_t single_repairs = 0;      ///< foreground (read-path) repairs
  uint64_t partial_restores = 0;    ///< RepairBatchFromBackup invocations
};

/// Phase breakdown of one RepairBatchFromBackup call (feeds the partial
/// rows of MediaRecoveryStats).
struct PartialRestoreBreakdown {
  uint64_t backup_pages_loaded = 0;  ///< images read from the full backup
  uint64_t backup_runs = 0;          ///< sequential backup read streams
  /// Images loaded from a per-page source newer than the full backup
  /// (individual copy, in-log image, or format record — the latter being
  /// the only source for a page born after the backup).
  uint64_t per_page_loads = 0;
  uint64_t records_applied = 0;      ///< chain records replayed
  uint64_t segment_fetches = 0;      ///< shared log segment reads
  double restore_sim_seconds = 0;    ///< backup-read / rebuild phase
  double replay_sim_seconds = 0;     ///< chain walk + apply + heal phase
};

/// One page's terminal repair status within a batch.
struct PageRepairOutcome {
  PageId page_id = kInvalidPageId;  ///< the page
  Status status;                    ///< why it could not be repaired
};

/// Result of one RepairBatch / RepairBatchFromBackup call.
struct BatchRepairResult {
  uint64_t repaired = 0;  ///< pages healed
  uint64_t failed = 0;    ///< pages that could not be healed
  /// One entry per page that could not be repaired (escalations).
  std::vector<PageRepairOutcome> failures;
};

/// Batched multi-page repair coordinator (see the file comment for the
/// three-phase algorithm). Also the PageRepairer installed on the buffer
/// pool when the failure funnel is disabled.
class RecoveryScheduler : public PageRepairer {
 public:
  /// `spr` provides the per-page building blocks; `options` is copied.
  RecoveryScheduler(SinglePageRecovery* spr, RecoverySchedulerOptions options);
  /// Joins the worker pool (if one was ever spawned).
  ~RecoveryScheduler() override;

  SPF_DISALLOW_COPY(RecoveryScheduler);

  /// PageRepairer hook (buffer pool read path): a foreground fault is a
  /// batch of one — repaired immediately on the calling thread.
  Status RepairPage(PageId id, char* frame) override;

  /// Repairs every page in `pages` (deduplicated). Individual failures do
  /// not abort the rest of the batch; they are reported in the result —
  /// and, when an escalation sink is installed, also handed to it so
  /// unrepairable pages flow into the failure funnel automatically.
  /// Thread-safe; concurrent batches are serialized.
  StatusOr<BatchRepairResult> RepairBatch(std::vector<PageId> pages);

  /// RepairBatch without notifying the escalation sink. The recovery
  /// ladder (Database::RecoverPages) uses this: it escalates leftovers to
  /// partial restore itself, and feeding them back into the funnel that
  /// invoked the ladder would loop.
  StatusOr<BatchRepairResult> RepairBatchNoEscalation(
      std::vector<PageId> pages);

  /// Installs the escalation sink (the failure funnel's Report). Called
  /// with the page ids a RepairBatch could not heal, after the batch
  /// completes. Install during startup; not thread-safe vs. in-flight
  /// batches.
  void SetEscalationSink(std::function<void(std::vector<PageId>)> sink);

  /// Partial media restore (the "instant restore" bridge between the
  /// single-page path and full media recovery): repairs `pages` by reading
  /// every page whose latest image source is full backup `backup` — or
  /// whose PRI backup reference was LOST (BackupKind::kNone, where
  /// RepairBatch must escalate) — with sequential scans of just the
  /// damaged id ranges; pages with a newer per-page source (individual
  /// copy, in-log image, or the format record of a page born after the
  /// backup, which the backup does not contain) load from that source
  /// instead. All per-page chains are then replayed through one
  /// shared-segment cluster walk. Always runs batched regardless of the
  /// batch_repair toggle.
  StatusOr<BatchRepairResult> RepairBatchFromBackup(
      std::vector<PageId> pages, BackupId backup,
      PartialRestoreBreakdown* breakdown = nullptr);

  /// Wires the sorted log archive in: cluster walks then stop their tail
  /// reads at the archiver's watermark and fetch the archived remainder
  /// of every chain in the cluster as one k-way range fetch over the
  /// runs. nullptr (the default) keeps the pure tail walk. Install during
  /// startup; not thread-safe vs. in-flight batches.
  void SetArchive(LogArchiver* archive) { archive_ = archive; }

  /// Runtime toggle for the batched-vs-serial comparison (bench E8/E9).
  void set_batch_repair(bool on);
  /// Current value of the batched-repair toggle.
  bool batch_repair() const;

  /// Cumulative counters snapshot.
  RecoverySchedulerStats stats() const;
  /// Zeroes the cumulative counters.
  void ResetStats();

 private:
  struct PageTask;
  class WorkerPool;

  /// Builds the deduplicated task list and bumps the request counters.
  /// Caller must hold batch_mu_.
  std::vector<PageTask> PrepareBatch(std::vector<PageId>* pages, bool* batched);

  StatusOr<BatchRepairResult> RepairBatchImpl(std::vector<PageId> pages,
                                              bool notify_sink);

  BatchRepairResult RepairSerial(std::vector<PageTask>* tasks);
  BatchRepairResult RepairBatched(std::vector<PageTask>* tasks);
  BatchRepairResult RestoreBatched(std::vector<PageTask>* tasks,
                                   BackupId backup,
                                   PartialRestoreBreakdown* breakdown);

  /// Phase 0 (shared): PRI lookups + frame allocation. `anchor_only`
  /// (partial restore) tolerates entries whose backup reference was lost.
  void LookupPhase(std::vector<PageTask>* tasks, bool anchor_only);
  /// Phase 2 (shared): clusters overlapping chain ranges and walks each.
  /// Adds this batch's segment fetch count to `*fetches` when non-null;
  /// returns the number of clusters walked.
  size_t WalkClusters(std::vector<PageTask>* tasks, uint64_t* fetches);
  /// Phase 3 (shared): applies collected chains, verifies, heals.
  void ApplyPhase(std::vector<PageTask>* tasks);
  /// Outcome collection (shared): merges per-task stats, publishes the
  /// amortized per-page cost, fills the result.
  BatchRepairResult CollectOutcomes(std::vector<PageTask>* tasks,
                                    const SimTimer& timer);

  /// Phase 2 core: walks one cluster of overlapping chains via a max-heap
  /// of per-page next pointers, reading shared log segments once each.
  /// With an archive wired in, the walk stops at the watermark and the
  /// archived remainders arrive via FetchArchivedChains. Returns the
  /// cluster's segment fetch count.
  uint64_t WalkCluster(std::vector<PageTask>* tasks,
                       const std::vector<size_t>& members);

  /// One k-way sorted-run range fetch completing every cluster member
  /// whose chain crossed the archive watermark (archived_hi[m] set).
  /// Adds the archive data pages read to `*archive_pages`.
  void FetchArchivedChains(std::vector<PageTask>* tasks,
                           const std::vector<size_t>& members,
                           const std::vector<Lsn>& archived_hi,
                           uint64_t* archive_pages);

  SinglePageRecovery* const spr_;
  LogArchiver* archive_ = nullptr;  ///< optional sorted-run chain source
  RecoverySchedulerOptions options_;
  /// Receives the unrepairable page ids of a completed RepairBatch.
  std::function<void(std::vector<PageId>)> escalation_sink_;
  /// Created on first batched repair (guarded by batch_mu_).
  std::unique_ptr<WorkerPool> workers_;

  OrderedMutex batch_mu_{LockRank::kRepairBatch};  ///< one batch in flight

  mutable OrderedMutex stats_mu_{LockRank::kStats};  ///< stats_ + options_
  RecoverySchedulerStats stats_ SPF_GUARDED_BY(stats_mu_);
};

}  // namespace spf
