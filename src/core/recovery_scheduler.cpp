#include "common/sync.h"
#include "core/recovery_scheduler.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <thread>
#include <unordered_map>

#include "btree/btree_log.h"

namespace spf {

// --- worker pool ------------------------------------------------------------

/// Minimal persistent parallel-for pool. One job at a time (the scheduler
/// serializes batches); the coordinating thread participates in the work,
/// so num_workers == 0 degenerates to an inline loop.
///
/// Each job is its own heap object: a worker that wakes late snapshots
/// whatever job_ points to under the mutex, and can only claim indices
/// from THAT job's exhausted counter — never from a newer job — so a
/// laggard neither dereferences a cleared function pointer nor steals
/// work from the next ParallelFor.
class RecoveryScheduler::WorkerPool {
 public:
  explicit WorkerPool(size_t n) {
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~WorkerPool() {
    {
      MutexLock g(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
    if (threads_.empty() || count <= 1) {
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->count = count;

    UniqueLock lk(mu_);
    job_ = job;
    generation_++;
    cv_.notify_all();
    lk.Unlock();

    Run(*job);

    lk.Lock();
    while (active_ != 0) done_cv_.wait(lk);
    // `fn` dies with this frame; laggards holding the old job see its
    // counter exhausted and never touch fn again.
  }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
  };

  static void Run(Job& job) {
    size_t i;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.count) {
      (*job.fn)(i);
    }
  }

  void Loop() {
    uint64_t seen = 0;
    UniqueLock lk(mu_);
    while (true) {
      while (!shutdown_ && generation_ == seen) cv_.wait(lk);
      if (shutdown_) return;
      seen = generation_;
      std::shared_ptr<Job> job = job_;
      active_++;
      lk.Unlock();
      Run(*job);
      lk.Lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  OrderedMutex mu_{LockRank::kRepairWorkers};
  CondVar cv_;
  CondVar done_cv_;
  /// Current (or most recent) job.
  std::shared_ptr<Job> job_ SPF_GUARDED_BY(mu_);
  uint64_t generation_ SPF_GUARDED_BY(mu_) = 0;
  size_t active_ SPF_GUARDED_BY(mu_) = 0;
  bool shutdown_ SPF_GUARDED_BY(mu_) = false;
};

// --- per-page task ----------------------------------------------------------

struct RecoveryScheduler::PageTask {
  PageId id = kInvalidPageId;
  PriEntry entry;
  std::unique_ptr<char[]> frame;
  Lsn backup_lsn = kInvalidLsn;       ///< PageLSN of the loaded backup image
  std::vector<LogRecord> chain;       ///< collected descending (LIFO stack)
  Lsn next_lsn = kInvalidLsn;         ///< walk cursor (descending)
  SinglePageRecoveryStats acc;        ///< batch-local counters
  Status status;                      ///< first error, if any
  bool done = false;                  ///< no further phases needed

  void Fail(Status s) {
    if (status.ok()) status = std::move(s);
    done = true;
  }

  /// Sets the chain-walk cursor once `frame` holds the backup image whose
  /// PageLSN is `backup`. A page not updated since that image skips the
  /// walk entirely.
  void SetChainTarget(Lsn backup) {
    backup_lsn = backup;
    if (entry.last_lsn == kInvalidLsn || entry.last_lsn <= backup) {
      next_lsn = kInvalidLsn;
    } else {
      next_lsn = entry.last_lsn;
    }
  }
};

// --- scheduler --------------------------------------------------------------

RecoveryScheduler::RecoveryScheduler(SinglePageRecovery* spr,
                                     RecoverySchedulerOptions options)
    : spr_(spr), options_(options) {}

RecoveryScheduler::~RecoveryScheduler() = default;

Status RecoveryScheduler::RepairPage(PageId id, char* frame) {
  {
    MutexLock g(stats_mu_);
    stats_.single_repairs++;
  }
  return spr_->RepairPage(id, frame);
}

void RecoveryScheduler::set_batch_repair(bool on) {
  MutexLock g(stats_mu_);
  options_.batch_repair = on;
}

bool RecoveryScheduler::batch_repair() const {
  MutexLock g(stats_mu_);
  return options_.batch_repair;
}

RecoverySchedulerStats RecoveryScheduler::stats() const {
  MutexLock g(stats_mu_);
  return stats_;
}

void RecoveryScheduler::ResetStats() {
  MutexLock g(stats_mu_);
  stats_ = RecoverySchedulerStats();
}

std::vector<RecoveryScheduler::PageTask> RecoveryScheduler::PrepareBatch(
    std::vector<PageId>* pages, bool* batched) {
  std::sort(pages->begin(), pages->end());
  pages->erase(std::unique(pages->begin(), pages->end()), pages->end());

  std::vector<PageTask> tasks(pages->size());
  for (size_t i = 0; i < pages->size(); ++i) {
    tasks[i].id = (*pages)[i];
    tasks[i].acc.repairs_attempted++;
  }

  MutexLock g(stats_mu_);
  stats_.batches++;
  stats_.pages_requested += pages->size();
  if (batched != nullptr) *batched = options_.batch_repair;
  return tasks;
}

StatusOr<BatchRepairResult> RecoveryScheduler::RepairBatch(
    std::vector<PageId> pages) {
  return RepairBatchImpl(std::move(pages), /*notify_sink=*/true);
}

StatusOr<BatchRepairResult> RecoveryScheduler::RepairBatchNoEscalation(
    std::vector<PageId> pages) {
  return RepairBatchImpl(std::move(pages), /*notify_sink=*/false);
}

void RecoveryScheduler::SetEscalationSink(
    std::function<void(std::vector<PageId>)> sink) {
  escalation_sink_ = std::move(sink);
}

StatusOr<BatchRepairResult> RecoveryScheduler::RepairBatchImpl(
    std::vector<PageId> pages, bool notify_sink) {
  BatchRepairResult result;
  {
    MutexLock batch_guard(batch_mu_);

    bool batched;
    std::vector<PageTask> tasks = PrepareBatch(&pages, &batched);
    result = batched ? RepairBatched(&tasks) : RepairSerial(&tasks);

    MutexLock g(stats_mu_);
    stats_.pages_repaired += result.repaired;
    stats_.pages_failed += result.failed;
  }
  // Sink outside batch_mu_: the funnel's drain may start another batch.
  if (notify_sink && escalation_sink_ != nullptr && !result.failures.empty()) {
    std::vector<PageId> unhealed;
    unhealed.reserve(result.failures.size());
    for (const PageRepairOutcome& f : result.failures) {
      unhealed.push_back(f.page_id);
    }
    escalation_sink_(std::move(unhealed));
  }
  return result;
}

StatusOr<BatchRepairResult> RecoveryScheduler::RepairBatchFromBackup(
    std::vector<PageId> pages, BackupId backup,
    PartialRestoreBreakdown* breakdown) {
  MutexLock batch_guard(batch_mu_);

  std::vector<PageTask> tasks = PrepareBatch(&pages, nullptr);
  BatchRepairResult result = RestoreBatched(&tasks, backup, breakdown);

  {
    MutexLock g(stats_mu_);
    stats_.partial_restores++;
    stats_.pages_repaired += result.repaired;
    stats_.pages_failed += result.failed;
  }
  return result;
}

BatchRepairResult RecoveryScheduler::RepairSerial(
    std::vector<PageTask>* tasks) {
  // The per-page baseline: each page pays its own backup read plus one
  // random log read per chain record, exactly like a foreground repair.
  BatchRepairResult result;
  const uint32_t page_size = spr_->page_size();
  for (PageTask& task : *tasks) {
    task.frame = std::make_unique<char[]>(page_size);
    Status s = spr_->RepairPage(task.id, task.frame.get());
    if (s.ok()) {
      result.repaired++;
    } else {
      result.failed++;
      result.failures.push_back({task.id, std::move(s)});
    }
  }
  return result;
}

void RecoveryScheduler::LookupPhase(std::vector<PageTask>* tasks,
                                    bool anchor_only) {
  // Spawn the worker threads on first batched use only: most Database
  // instances (tests, crash/restart cycles) never repair a batch.
  if (workers_ == nullptr) {
    workers_ = std::make_unique<WorkerPool>(options_.num_workers);
  }
  const uint32_t page_size = spr_->page_size();
  for (PageTask& task : *tasks) {
    auto entry_or = anchor_only ? spr_->LookupChainAnchor(task.id)
                                : spr_->LookupEntry(task.id);
    if (!entry_or.ok()) {
      task.Fail(entry_or.status());
      continue;
    }
    task.entry = *entry_or;
    task.frame = std::make_unique<char[]>(page_size);
  }
}

BatchRepairResult RecoveryScheduler::RepairBatched(
    std::vector<PageTask>* tasks) {
  SimTimer timer(spr_->clock());
  const uint32_t page_size = spr_->page_size();

  // --- phase 0: PRI lookups (in-memory) -------------------------------------
  LookupPhase(tasks, /*anchor_only=*/false);

  // --- phase 1: backup loads, grouped by backup source ----------------------
  // Pages restored from the same source are read in ascending location
  // order (for a full backup that is page-id order — sequential backup
  // I/O, a partial restore). Groups fan out across the worker pool; each
  // group runs in order on one worker to keep its access pattern.
  std::vector<size_t> order;
  for (size_t i = 0; i < tasks->size(); ++i) {
    if (!(*tasks)[i].done) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const PriEntry& ea = (*tasks)[a].entry;
    const PriEntry& eb = (*tasks)[b].entry;
    if (ea.backup.kind != eb.backup.kind) return ea.backup.kind < eb.backup.kind;
    if (ea.backup.value != eb.backup.value) return ea.backup.value < eb.backup.value;
    return (*tasks)[a].id < (*tasks)[b].id;
  });
  std::vector<std::vector<size_t>> groups;
  for (size_t idx : order) {
    const BackupRef& ref = (*tasks)[idx].entry.backup;
    // Pages restored from the SAME full backup stay in one group (in-order
    // reads are sequential, a partial restore); every other backup kind is
    // an independent point read, so each page fans out as its own group.
    bool join = !groups.empty() && ref.kind == BackupKind::kFullBackup;
    if (join) {
      const BackupRef& prev = (*tasks)[groups.back().back()].entry.backup;
      join = prev.kind == ref.kind && prev.value == ref.value;
    }
    if (!join) groups.emplace_back();
    groups.back().push_back(idx);
  }
  workers_->ParallelFor(groups.size(), [&](size_t g) {
    for (size_t idx : groups[g]) {
      PageTask& task = (*tasks)[idx];
      Status s = spr_->LoadBackupImage(task.id, task.entry, task.frame.get(),
                                       &task.acc);
      if (!s.ok()) {
        task.Fail(std::move(s));
        continue;
      }
      task.SetChainTarget(PageView(task.frame.get(), page_size).page_lsn());
    }
  });
  {
    MutexLock g(stats_mu_);
    stats_.backup_groups += groups.size();
  }

  // --- phase 2: coordinated chain walk over shared log segments -------------
  WalkClusters(tasks, nullptr);

  // --- phase 3: apply chains + verify + heal, fanned out --------------------
  ApplyPhase(tasks);

  return CollectOutcomes(tasks, timer);
}

BatchRepairResult RecoveryScheduler::RestoreBatched(
    std::vector<PageTask>* tasks, BackupId backup,
    PartialRestoreBreakdown* breakdown) {
  SimTimer timer(spr_->clock());
  const uint32_t page_size = spr_->page_size();
  PartialRestoreBreakdown local;
  PartialRestoreBreakdown* bd = breakdown != nullptr ? breakdown : &local;

  LookupPhase(tasks, /*anchor_only=*/true);

  // --- restore phase: sequential range reads of the damaged set -------------
  // Any per-page reference (individual copy, in-log image, format record)
  // is NEWER than the full backup — the index collapses to kFullBackup at
  // every OnFullBackup — and for a page born after the backup it is the
  // ONLY valid source: the page's full-backup slot holds pre-birth bytes.
  // Those load per-page. Pages still covered by the backup (kFullBackup)
  // and pages whose reference was LOST (kNone — where RepairBatch has to
  // escalate) take the sequential range read of the full backup.
  SimTimer restore_timer(spr_->clock());
  std::vector<size_t> from_backup;
  std::vector<size_t> from_per_page;
  for (size_t i = 0; i < tasks->size(); ++i) {
    if ((*tasks)[i].done) continue;
    BackupKind kind = (*tasks)[i].entry.backup.kind;
    if (kind == BackupKind::kFullBackup || kind == BackupKind::kNone) {
      from_backup.push_back(i);
    } else {
      from_per_page.push_back(i);
    }
  }
  if (!from_backup.empty()) {
    // Tasks are in ascending id order (PrepareBatch sorted the pages), so
    // the backup is read in one ascending pass of sequential runs. Runs
    // one thread: fanning ranges out would break the access pattern.
    std::vector<PageId> ids;
    std::vector<char*> frames;
    for (size_t idx : from_backup) {
      ids.push_back((*tasks)[idx].id);
      frames.push_back((*tasks)[idx].frame.get());
    }
    auto runs_or =
        spr_->backups()->ReadPagesFromFullBackup(backup, ids, frames.data());
    if (!runs_or.ok()) {
      for (size_t idx : from_backup) (*tasks)[idx].Fail(runs_or.status());
    } else {
      bd->backup_runs += *runs_or;
      for (size_t idx : from_backup) {
        PageTask& task = (*tasks)[idx];
        task.acc.backup_reads++;
        task.acc.last_backup_kind = BackupKind::kFullBackup;
        PageView page(task.frame.get(), page_size);
        Status s = page.Verify(task.id);
        if (!s.ok()) {
          task.Fail(std::move(s));
          continue;
        }
        bd->backup_pages_loaded++;
        task.SetChainTarget(page.page_lsn());
      }
    }
  }
  if (!from_per_page.empty()) {
    workers_->ParallelFor(from_per_page.size(), [&](size_t i) {
      PageTask& task = (*tasks)[from_per_page[i]];
      Status s = spr_->LoadBackupImage(task.id, task.entry, task.frame.get(),
                                       &task.acc);
      if (!s.ok()) {
        task.Fail(std::move(s));
        return;
      }
      task.SetChainTarget(PageView(task.frame.get(), page_size).page_lsn());
    });
    for (size_t idx : from_per_page) {
      if ((*tasks)[idx].status.ok()) bd->per_page_loads++;
    }
  }
  bd->restore_sim_seconds = restore_timer.ElapsedSeconds();

  // --- replay phase: shared-segment cluster walk + apply + heal -------------
  SimTimer replay_timer(spr_->clock());
  WalkClusters(tasks, &bd->segment_fetches);
  ApplyPhase(tasks);
  bd->replay_sim_seconds = replay_timer.ElapsedSeconds();

  BatchRepairResult result = CollectOutcomes(tasks, timer);
  for (const PageTask& task : *tasks) {
    bd->records_applied += task.acc.log_records_applied;
  }
  return result;
}

size_t RecoveryScheduler::WalkClusters(std::vector<PageTask>* tasks,
                                       uint64_t* fetches) {
  // Cluster pages whose chain ranges (backup_lsn, target] overlap; each
  // cluster is walked once, popping records in descending LSN order so
  // every shared log segment is fetched exactly once.
  struct Range {
    Lsn lo, hi;
    size_t idx;
  };
  std::vector<Range> ranges;
  for (size_t i = 0; i < tasks->size(); ++i) {
    PageTask& task = (*tasks)[i];
    if (task.done || task.next_lsn == kInvalidLsn) continue;
    Lsn lo = task.backup_lsn == kInvalidLsn ? 0 : task.backup_lsn;
    ranges.push_back({lo, task.entry.last_lsn, i});
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.lo < b.lo; });
  size_t cluster_count = 0;
  uint64_t total_fetches = 0;
  size_t pos = 0;
  while (pos < ranges.size()) {
    std::vector<size_t> members{ranges[pos].idx};
    Lsn hi = ranges[pos].hi;
    size_t end = pos + 1;
    while (end < ranges.size() && ranges[end].lo <= hi) {
      hi = std::max(hi, ranges[end].hi);
      members.push_back(ranges[end].idx);
      end++;
    }
    total_fetches += WalkCluster(tasks, members);
    cluster_count++;
    pos = end;
  }
  if (fetches != nullptr) *fetches += total_fetches;
  {
    MutexLock g(stats_mu_);
    stats_.chain_clusters += cluster_count;
    stats_.segment_fetches += total_fetches;
  }
  return cluster_count;
}

void RecoveryScheduler::ApplyPhase(std::vector<PageTask>* tasks) {
  workers_->ParallelFor(tasks->size(), [&](size_t i) {
    PageTask& task = (*tasks)[i];
    if (task.done) return;
    Status s = spr_->ApplyChain(&task.chain, task.frame.get(), &task.acc);
    if (s.ok()) {
      s = spr_->FinishRepair(task.id, task.entry, task.frame.get(),
                             &task.acc);
    }
    if (!s.ok()) task.Fail(std::move(s));
  });
}

BatchRepairResult RecoveryScheduler::CollectOutcomes(
    std::vector<PageTask>* tasks, const SimTimer& timer) {
  // The batch shares one clock, so per-page timing is not separable;
  // publish the amortized per-page cost as the last-repair snapshot.
  BatchRepairResult result;
  uint64_t succeeded = 0;
  for (const PageTask& task : *tasks) {
    if (task.status.ok()) succeeded++;
  }
  uint64_t per_page_ns = succeeded > 0 ? timer.ElapsedNanos() / succeeded : 0;
  for (PageTask& task : *tasks) {
    if (task.status.ok()) {
      result.repaired++;
      spr_->NoteLastRepair(task.acc.last_chain_length, per_page_ns,
                           task.acc.last_backup_kind);
    } else {
      result.failed++;
      task.acc.escalations++;
      result.failures.push_back(
          {task.id, SinglePageRecovery::Escalate(task.id, task.status)});
    }
    spr_->MergeStats(task.acc, task.id);
  }
  return result;
}

uint64_t RecoveryScheduler::WalkCluster(std::vector<PageTask>* tasks,
                                        const std::vector<size_t>& members) {
  // Snapshot the archive watermark once per cluster: it only advances, so
  // every chain pointer below it is guaranteed to be in a published run.
  const Lsn archived_upto =
      archive_ != nullptr ? archive_->archived_upto() : 0;
  // Per-member newest archived chain LSN, kInvalidLsn while the walk is
  // still in the tail. Set when a chain pointer drops below the watermark;
  // the archived remainder is fetched in one batch after the heap drains.
  std::vector<Lsn> archived_hi(members.size(), kInvalidLsn);

  // Max-heap over every member's next chain pointer: records pop in
  // globally descending LSN order, so the segment reader's window slides
  // monotonically backward through the log and fetches each segment once.
  using HeapItem = std::pair<Lsn, size_t>;  // (next lsn, member position)
  std::priority_queue<HeapItem> heap;
  for (size_t m = 0; m < members.size(); ++m) {
    PageTask& task = (*tasks)[members[m]];
    if (task.done || task.next_lsn == kInvalidLsn) continue;
    if (task.next_lsn < archived_upto) {
      archived_hi[m] = task.next_lsn;
    } else {
      heap.push({task.next_lsn, m});
    }
  }

  LogSegmentReader reader(spr_->log(), options_.log_segment_bytes);
  while (!heap.empty()) {
    auto [lsn, m] = heap.top();
    heap.pop();
    PageTask& task = (*tasks)[members[m]];
    if (task.done) continue;
    auto rec_or = reader.Read(lsn);
    if (!rec_or.ok()) {
      task.Fail(rec_or.status());
      continue;
    }
    LogRecord rec = std::move(rec_or).value();
    if (rec.page_id != task.id) {
      task.Fail(Status::Corruption("per-page chain contains foreign record"));
      continue;
    }
    Lsn prev = rec.page_prev_lsn;
    task.chain.push_back(std::move(rec));
    if (prev != kInvalidLsn && prev > task.backup_lsn) {
      if (prev < archived_upto) {
        archived_hi[m] = prev;  // leave the tail; finish from sorted runs
      } else {
        heap.push({prev, m});
      }
    } else if (prev != task.backup_lsn && prev != kInvalidLsn) {
      task.Fail(
          Status::Corruption("per-page chain does not reach the backup"));
    }
  }

  uint64_t archive_pages = 0;
  FetchArchivedChains(tasks, members, archived_hi, &archive_pages);

  // Attribute the shared segment fetches (and the cluster's archive range
  // fetch) to the cluster's first member's accumulator (the aggregate is
  // what the counters are for).
  if (!members.empty()) {
    (*tasks)[members.front()].acc.log_reads += reader.segment_fetches();
    (*tasks)[members.front()].acc.archive_reads += archive_pages;
  }
  return reader.segment_fetches();
}

void RecoveryScheduler::FetchArchivedChains(
    std::vector<PageTask>* tasks, const std::vector<size_t>& members,
    const std::vector<Lsn>& archived_hi, uint64_t* archive_pages) {
  // Completes every cluster member whose chain walk crossed the archive
  // watermark: ONE k-way range fetch over the sorted runs covers the whole
  // cluster's archived remainders — the run store's analogue of the shared
  // segment reads above.
  std::unordered_map<PageId, size_t> want;  // page id -> member position
  PageId lo = kInvalidPageId, hi = 0;
  Lsn min_ex = kInvalidLsn;
  for (size_t m = 0; m < members.size(); ++m) {
    if (archived_hi[m] == kInvalidLsn) continue;
    PageTask& task = (*tasks)[members[m]];
    if (task.done) continue;
    want.emplace(task.id, m);
    lo = std::min(lo, task.id);
    hi = std::max(hi, task.id);
    min_ex = min_ex == kInvalidLsn ? task.backup_lsn
                                   : std::min(min_ex, task.backup_lsn);
  }
  if (want.empty()) return;
  SPF_CHECK(archive_ != nullptr) << "archived chain without an archive";

  // Run-major emission in log order means each page's records arrive
  // ascending by LSN.
  std::vector<std::vector<LogRecord>> got(members.size());
  auto pages_or = archive_->FetchRange(
      lo, hi, min_ex, [&](LogRecord&& rec) {
        auto it = want.find(rec.page_id);
        if (it == want.end()) return;  // foreign page caught in the range
        const size_t m = it->second;
        const PageTask& task = (*tasks)[members[m]];
        if (rec.lsn > task.backup_lsn && rec.lsn <= archived_hi[m]) {
          got[m].push_back(std::move(rec));
        }
      });
  if (!pages_or.ok()) {
    for (const auto& [id, m] : want) {
      (void)id;
      (*tasks)[members[m]].Fail(pages_or.status());
    }
    return;
  }
  *archive_pages += pages_or.value();

  for (const auto& [id, m] : want) {
    (void)id;
    PageTask& task = (*tasks)[members[m]];
    std::vector<LogRecord>& recs = got[m];
    if (recs.empty() || recs.back().lsn != archived_hi[m]) {
      task.Fail(Status::Corruption(
          "archived per-page chain is missing its newest record"));
      continue;
    }
    const Lsn anchor = recs.front().page_prev_lsn;
    if (anchor != task.backup_lsn && anchor != kInvalidLsn) {
      task.Fail(
          Status::Corruption("per-page chain does not reach the backup"));
      continue;
    }
    // task.chain is newest-first; the archived records are older than
    // everything already collected, so append them reversed.
    for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
      task.chain.push_back(std::move(*it));
    }
  }

  MutexLock g(stats_mu_);
  stats_.archive_fetches++;
}

}  // namespace spf
