#include "core/single_page_recovery.h"

#include <cstring>
#include <vector>

#include "btree/btree_log.h"

namespace spf {

SinglePageRecovery::SinglePageRecovery(PriManager* pri_manager,
                                       LogManager* log, BackupManager* backups,
                                       SimDevice* data_device, SimClock* clock)
    : pri_manager_(pri_manager),
      log_(log),
      backups_(backups),
      data_device_(data_device),
      clock_(clock),
      page_size_(data_device->page_size()) {}

Status SinglePageRecovery::LoadBackupImage(PageId id, const PriEntry& entry,
                                           char* frame) {
  switch (entry.backup.kind) {
    case BackupKind::kBackupPage: {
      SPF_RETURN_IF_ERROR(backups_->ReadPageBackup(entry.backup.value, frame));
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(page.Verify(id));
      break;
    }
    case BackupKind::kFullBackup: {
      SPF_RETURN_IF_ERROR(
          backups_->ReadFromFullBackup(entry.backup.value, id, frame));
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(page.Verify(id));
      break;
    }
    case BackupKind::kLogImage: {
      SPF_RETURN_IF_ERROR(backups_->ReadLogImage(entry.backup.value, id, frame));
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(page.Verify(id));
      break;
    }
    case BackupKind::kFormatRecord: {
      // The formatting log record describes the initial page image
      // (section 5.2.1: it "may substitute for an explicit backup copy").
      SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(entry.backup.value));
      {
        std::lock_guard<std::mutex> g(mu_);
        stats_.log_reads++;
      }
      if (rec.type != LogRecordType::kPageFormat || rec.page_id != id) {
        return Status::Corruption("format-record backup reference is wrong");
      }
      std::memset(frame, 0, page_size_);
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
      // Formatting anchored the per-page chain at this record.
      page.set_page_lsn(rec.lsn);
      break;
    }
    case BackupKind::kNone:
      return Status::MediaFailure("no backup available for page " +
                                  std::to_string(id));
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.backup_reads++;
  }
  return Status::OK();
}

Status SinglePageRecovery::ReplayChain(PageId id, const PriEntry& entry,
                                       char* frame) {
  PageView page(frame, page_size_);
  Lsn backup_lsn = page.page_lsn();
  Lsn target = entry.last_lsn;
  if (target == kInvalidLsn || target <= backup_lsn) {
    // Not updated since the backup — the image is current.
    return Status::OK();
  }

  // Figure 10 steps 3-4: walk the per-page chain backward collecting
  // records on a LIFO stack, then pop and apply their redo actions.
  std::vector<LogRecord> stack;
  Lsn cur = target;
  while (cur != kInvalidLsn && cur > backup_lsn) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(cur));
    {
      std::lock_guard<std::mutex> g(mu_);
      stats_.log_reads++;
    }
    if (rec.page_id != id) {
      return Status::Corruption("per-page chain contains foreign record");
    }
    cur = rec.page_prev_lsn;
    stack.push_back(std::move(rec));
  }
  if (cur != backup_lsn && cur != kInvalidLsn) {
    // The chain bypassed the backup LSN — inconsistent chain/backup pair.
    return Status::Corruption("per-page chain does not reach the backup");
  }

  while (!stack.empty()) {
    LogRecord rec = std::move(stack.back());
    stack.pop_back();
    // Defensive redo-sequence check (section 5.1.4): the chain pointer in
    // the record must equal the PageLSN the page has right now.
    if (rec.page_prev_lsn != page.page_lsn()) {
      return Status::Corruption("redo sequence check failed (PageLSN " +
                                std::to_string(page.page_lsn()) +
                                ", expected " +
                                std::to_string(rec.page_prev_lsn) + ")");
    }
    SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
    page.set_page_lsn(rec.lsn);
    {
      std::lock_guard<std::mutex> g(mu_);
      stats_.log_records_applied++;
      stats_.last_chain_length++;
    }
  }
  return Status::OK();
}

Status SinglePageRecovery::RepairPage(PageId id, char* frame) {
  SimTimer timer(clock_);
  {
    std::lock_guard<std::mutex> g(mu_);
    stats_.repairs_attempted++;
    stats_.last_chain_length = 0;
  }

  auto run = [&]() -> Status {
    auto entry_or = pri_manager_->pri()->Lookup(id);
    if (!entry_or.ok()) {
      return Status::MediaFailure(
          "page recovery index has no entry for page " + std::to_string(id) +
          ": " + entry_or.status().ToString());
    }
    const PriEntry entry = *entry_or;
    SPF_RETURN_IF_ERROR(LoadBackupImage(id, entry, frame));
    SPF_RETURN_IF_ERROR(ReplayChain(id, entry, frame));

    // Final verification of the recovered image.
    PageView page(frame, page_size_);
    page.UpdateChecksum();
    SPF_RETURN_IF_ERROR(page.Verify(id));
    if (entry.last_lsn != kInvalidLsn && page.page_lsn() != entry.last_lsn) {
      return Status::Corruption("recovered page does not reach target LSN");
    }

    // Heal the stored copy: rewrite the recovered image in place. (A
    // permanently failed location would additionally be migrated and
    // registered in the bad-block list by the repair manager.)
    SPF_RETURN_IF_ERROR(data_device_->WritePage(id, frame));
    {
      std::lock_guard<std::mutex> g(mu_);
      stats_.repairs_succeeded++;
      stats_.last_backup_kind = entry.backup.kind;
      stats_.last_sim_ns = timer.ElapsedNanos();
    }
    return Status::OK();
  };

  Status s = run();
  if (!s.ok()) {
    std::lock_guard<std::mutex> g(mu_);
    stats_.escalations++;
    if (!s.IsMediaFailure()) {
      // Escalate per Figure 10: "if anything fails ... the system can
      // resort to a media failure and appropriate recovery".
      return Status::MediaFailure("single-page recovery of page " +
                                  std::to_string(id) +
                                  " failed: " + s.ToString());
    }
  }
  return s;
}

SinglePageRecoveryStats SinglePageRecovery::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void SinglePageRecovery::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = SinglePageRecoveryStats();
}

// --- PageLSN cross-check ----------------------------------------------------------

Status PageLsnCrossCheck::VerifyOnRead(PageView page) {
  checks_.fetch_add(1, std::memory_order_relaxed);
  auto entry_or = pri_manager_->pri()->Lookup(page.page_id());
  if (!entry_or.ok()) return Status::OK();  // no information, no opinion
  const PriEntry& entry = *entry_or;
  if (entry.last_lsn == kInvalidLsn) {
    // Clean since its last backup; any PageLSN up to the backup state is
    // plausible and we cannot cheaply bound it. Accept.
    return Status::OK();
  }
  if (page.page_lsn() != entry.last_lsn) {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "PageLSN cross-check failed: page " + std::to_string(page.page_id()) +
        " has PageLSN " + std::to_string(page.page_lsn()) +
        " but the page recovery index certifies " +
        std::to_string(entry.last_lsn) + " (stale or forged page)");
  }
  return Status::OK();
}

}  // namespace spf
