#include "core/single_page_recovery.h"

#include <cstring>
#include <vector>

#include "btree/btree_log.h"

namespace spf {

SinglePageRecovery::SinglePageRecovery(PriManager* pri_manager,
                                       LogManager* log, BackupManager* backups,
                                       SimDevice* data_device, SimClock* clock)
    : pri_manager_(pri_manager),
      log_(log),
      backups_(backups),
      data_device_(data_device),
      clock_(clock),
      page_size_(data_device->page_size()),
      default_source_(std::make_unique<TailLogSource>(log)),
      source_(default_source_.get()) {}

StatusOr<PriEntry> SinglePageRecovery::LookupEntry(PageId id) const {
  auto entry_or = pri_manager_->pri()->Lookup(id);
  if (!entry_or.ok()) {
    return Status::MediaFailure(
        "page recovery index has no entry for page " + std::to_string(id) +
        ": " + entry_or.status().ToString());
  }
  return *entry_or;
}

StatusOr<PriEntry> SinglePageRecovery::LookupChainAnchor(PageId id) const {
  auto entry_or = pri_manager_->pri()->LookupAnchor(id);
  if (!entry_or.ok()) {
    return Status::MediaFailure(
        "page recovery index has no chain anchor for page " +
        std::to_string(id) + ": " + entry_or.status().ToString());
  }
  return *entry_or;
}

Status SinglePageRecovery::LoadBackupImage(PageId id, const PriEntry& entry,
                                           char* frame,
                                           SinglePageRecoveryStats* acc) {
  switch (entry.backup.kind) {
    case BackupKind::kBackupPage: {
      Status s = backups_->ReadPageBackup(entry.backup.value, frame);
      if (s.ok()) s = PageView(frame, page_size_).Verify(id);
      if (!s.ok()) {
        // The PRI's slot ref is only as durable as the log tail: a crash
        // can lose the PriUpdate that superseded it, leaving the ref
        // pointing at a recycled slot that now holds another page's
        // copy. The backup catalog models stable storage and is
        // authoritative — retry through it. (The catalog's copy is never
        // newer than the restart-reconstructed chain target: write-back
        // forces the log before the copy is taken.)
        PageId slot = backups_->CurrentPageBackupSlot(id);
        if (slot == kInvalidPageId || slot == entry.backup.value) return s;
        SPF_RETURN_IF_ERROR(backups_->ReadPageBackup(slot, frame));
        PageView page(frame, page_size_);
        SPF_RETURN_IF_ERROR(page.Verify(id));
      }
      break;
    }
    case BackupKind::kFullBackup: {
      SPF_RETURN_IF_ERROR(
          backups_->ReadFromFullBackup(entry.backup.value, id, frame));
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(page.Verify(id));
      break;
    }
    case BackupKind::kLogImage: {
      SPF_RETURN_IF_ERROR(backups_->ReadLogImage(entry.backup.value, id, frame));
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(page.Verify(id));
      break;
    }
    case BackupKind::kFormatRecord: {
      // The formatting log record describes the initial page image
      // (section 5.2.1: it "may substitute for an explicit backup copy").
      SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(entry.backup.value));
      acc->log_reads++;
      if (rec.type != LogRecordType::kPageFormat || rec.page_id != id) {
        return Status::Corruption("format-record backup reference is wrong");
      }
      std::memset(frame, 0, page_size_);
      PageView page(frame, page_size_);
      SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
      // Formatting anchored the per-page chain at this record.
      page.set_page_lsn(rec.lsn);
      // The live format bumped once when the record was logged; match it
      // so the rebuilt image is byte-identical.
      page.bump_update_count();
      break;
    }
    case BackupKind::kNone:
      return Status::MediaFailure("no backup available for page " +
                                  std::to_string(id));
  }
  acc->backup_reads++;
  return Status::OK();
}

Status SinglePageRecovery::ReplayChain(PageId id, const PriEntry& entry,
                                       char* frame,
                                       SinglePageRecoveryStats* acc) {
  PageView page(frame, page_size_);
  Lsn backup_lsn = page.page_lsn();
  Lsn target = entry.last_lsn;
  if (target == kInvalidLsn || target <= backup_lsn) {
    // Not updated since the backup — the image is current.
    return Status::OK();
  }

  // Figure 10 steps 3-4: collect the chain on a LIFO stack (from the
  // wired LogSource — tail walk, or tail walk + sorted-run probe), then
  // pop and apply the redo actions.
  std::vector<LogRecord> stack;
  LogSourceStats fetch;
  SPF_RETURN_IF_ERROR(source_->FetchChain(id, backup_lsn, target, &stack,
                                          &fetch));
  acc->log_reads += fetch.log_reads;
  acc->archive_reads += fetch.archive_reads;

  return ApplyChain(&stack, frame, acc);
}

Status SinglePageRecovery::ApplyChain(std::vector<LogRecord>* chain,
                                      char* frame,
                                      SinglePageRecoveryStats* acc) {
  PageView page(frame, page_size_);
  while (!chain->empty()) {
    LogRecord rec = std::move(chain->back());
    chain->pop_back();
    // Defensive redo-sequence check (section 5.1.4): the chain pointer in
    // the record must equal the PageLSN the page has right now.
    if (rec.page_prev_lsn != page.page_lsn()) {
      return Status::Corruption("redo sequence check failed (PageLSN " +
                                std::to_string(page.page_lsn()) +
                                ", expected " +
                                std::to_string(rec.page_prev_lsn) + ")");
    }
    SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
    page.set_page_lsn(rec.lsn);
    // The live path bumps once per logged page record (AppendPageRecord);
    // redo must do the same for the replayed image to be byte-identical.
    page.bump_update_count();
    acc->log_records_applied++;
    acc->last_chain_length++;
  }
  return Status::OK();
}

Status SinglePageRecovery::Escalate(PageId id, const Status& s) {
  if (s.ok() || s.IsMediaFailure()) return s;
  // Escalate per Figure 10: "if anything fails ... the system can resort
  // to a media failure and appropriate recovery".
  return Status::MediaFailure("single-page recovery of page " +
                              std::to_string(id) + " failed: " + s.ToString());
}

Status SinglePageRecovery::FinishRepair(PageId id, const PriEntry& entry,
                                        char* frame,
                                        SinglePageRecoveryStats* acc) {
  // Final verification of the recovered image.
  PageView page(frame, page_size_);
  page.UpdateChecksum();
  SPF_RETURN_IF_ERROR(page.Verify(id));
  if (entry.last_lsn != kInvalidLsn && page.page_lsn() != entry.last_lsn) {
    if (page.page_lsn() < entry.last_lsn) {
      return Status::Corruption("recovered page does not reach target LSN");
    }
    // The (stable-storage) backup catalog handed us a copy NEWER than the
    // PRI certifies: the crash lost the PriUpdate of a completed write.
    // Figure 12, third case — the repair just produced the evidence, so
    // regenerate the missing record now; the certification catches up and
    // subsequent cross-checks accept the page.
    pri_manager_->RecordLostWrite(id, page.page_lsn());
  }

  // Heal the stored copy: rewrite the recovered image in place. (A
  // permanently failed location would additionally be migrated and
  // registered in the bad-block list by the repair manager.)
  SPF_RETURN_IF_ERROR(data_device_->WritePage(id, frame));
  acc->repairs_succeeded++;
  acc->last_backup_kind = entry.backup.kind;
  return Status::OK();
}

Status SinglePageRecovery::RepairPage(PageId id, char* frame) {
  SimTimer timer(clock_);
  SinglePageRecoveryStats acc;
  acc.repairs_attempted++;

  auto run = [&]() -> Status {
    SPF_ASSIGN_OR_RETURN(PriEntry entry, LookupEntry(id));
    SPF_RETURN_IF_ERROR(LoadBackupImage(id, entry, frame, &acc));
    SPF_RETURN_IF_ERROR(ReplayChain(id, entry, frame, &acc));
    SPF_RETURN_IF_ERROR(FinishRepair(id, entry, frame, &acc));
    return Status::OK();
  };

  Status s = run();
  if (s.ok()) {
    acc.last_sim_ns = timer.ElapsedNanos();
    NoteLastRepair(acc.last_chain_length, acc.last_sim_ns,
                   acc.last_backup_kind);
  } else {
    acc.escalations++;
  }
  MergeStats(acc, id);
  return Escalate(id, s);
}

void SinglePageRecovery::MergeStats(const SinglePageRecoveryStats& acc,
                                    PageId shard_key) {
  StatShard& shard = shards_[shard_key % kStatShards];
  MutexLock g(shard.mu);
  shard.s.repairs_attempted += acc.repairs_attempted;
  shard.s.repairs_succeeded += acc.repairs_succeeded;
  shard.s.escalations += acc.escalations;
  shard.s.log_records_applied += acc.log_records_applied;
  shard.s.log_reads += acc.log_reads;
  shard.s.archive_reads += acc.archive_reads;
  shard.s.backup_reads += acc.backup_reads;
}

void SinglePageRecovery::NoteLastRepair(uint64_t chain_length, uint64_t sim_ns,
                                        BackupKind kind) {
  MutexLock g(last_mu_);
  last_chain_length_ = chain_length;
  last_sim_ns_ = sim_ns;
  last_backup_kind_ = kind;
}

SinglePageRecoveryStats SinglePageRecovery::stats() const {
  SinglePageRecoveryStats out;
  for (const StatShard& shard : shards_) {
    MutexLock g(shard.mu);
    out.repairs_attempted += shard.s.repairs_attempted;
    out.repairs_succeeded += shard.s.repairs_succeeded;
    out.escalations += shard.s.escalations;
    out.log_records_applied += shard.s.log_records_applied;
    out.log_reads += shard.s.log_reads;
    out.archive_reads += shard.s.archive_reads;
    out.backup_reads += shard.s.backup_reads;
  }
  MutexLock g(last_mu_);
  out.last_chain_length = last_chain_length_;
  out.last_sim_ns = last_sim_ns_;
  out.last_backup_kind = last_backup_kind_;
  return out;
}

void SinglePageRecovery::ResetStats() {
  for (StatShard& shard : shards_) {
    MutexLock g(shard.mu);
    shard.s = SinglePageRecoveryStats();
  }
  MutexLock g(last_mu_);
  last_chain_length_ = 0;
  last_sim_ns_ = 0;
  last_backup_kind_ = BackupKind::kNone;
}

// --- PageLSN cross-check ----------------------------------------------------------

Status PageLsnCrossCheck::VerifyOnRead(PageView page) {
  checks_.fetch_add(1, std::memory_order_relaxed);
  auto entry_or = pri_manager_->pri()->Lookup(page.page_id());
  if (!entry_or.ok()) return Status::OK();  // no information, no opinion
  const PriEntry& entry = *entry_or;
  if (entry.last_lsn == kInvalidLsn) {
    // Clean since its last backup; any PageLSN up to the backup state is
    // plausible and we cannot cheaply bound it. Accept.
    return Status::OK();
  }
  if (page.page_lsn() != entry.last_lsn) {
    mismatches_.fetch_add(1, std::memory_order_relaxed);
    return Status::Corruption(
        "PageLSN cross-check failed: page " + std::to_string(page.page_id()) +
        " has PageLSN " + std::to_string(page.page_lsn()) +
        " but the page recovery index certifies " +
        std::to_string(entry.last_lsn) + " (stale or forged page)");
  }
  return Status::OK();
}

}  // namespace spf
