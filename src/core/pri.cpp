#include "core/pri.h"

#include "common/coding.h"

namespace spf {

PageRecoveryIndex::PageRecoveryIndex(uint64_t num_pages)
    : num_pages_(num_pages),
      num_windows_((num_pages + kPriEntriesPerWindow - 1) /
                   kPriEntriesPerWindow),
      windows_(num_windows_) {}

const PageRecoveryIndex::RangeEntry* PageRecoveryIndex::FindLocked(
    const Window& w, PageId id) const {
  auto it = w.ranges.upper_bound(id);
  if (it == w.ranges.begin()) return nullptr;
  --it;
  if (id >= it->first && id < it->second.end) return &it->second;
  return nullptr;
}

StatusOr<PriEntry> PageRecoveryIndex::Lookup(PageId id) const {
  MutexLock g(mu_);
  stats_.lookups++;
  if (id >= num_pages_) return Status::InvalidArgument("page out of range");
  const Window& w = windows_[WindowOf(id)];
  const RangeEntry* r = FindLocked(w, id);
  if (r == nullptr || r->entry.backup.kind == BackupKind::kNone) {
    stats_.lookup_misses++;
    return Status::NotFound("no recovery information for page " +
                            std::to_string(id));
  }
  return r->entry;
}

StatusOr<PriEntry> PageRecoveryIndex::LookupAnchor(PageId id) const {
  MutexLock g(mu_);
  stats_.lookups++;
  if (id >= num_pages_) return Status::InvalidArgument("page out of range");
  const Window& w = windows_[WindowOf(id)];
  const RangeEntry* r = FindLocked(w, id);
  if (r == nullptr || (r->entry.backup.kind == BackupKind::kNone &&
                       r->entry.last_lsn == kInvalidLsn)) {
    stats_.lookup_misses++;
    return Status::NotFound("no recovery information for page " +
                            std::to_string(id));
  }
  return r->entry;
}

void PageRecoveryIndex::SetPointLocked(PageId id, const PriEntry& entry) {
  Window& w = windows_[WindowOf(id)];
  w.dirty = true;
  stats_.updates++;

  auto it = w.ranges.upper_bound(id);
  if (it != w.ranges.begin()) {
    auto prev = std::prev(it);
    if (id >= prev->first && id < prev->second.end) {
      // `id` lies inside [prev.first, prev.end): split as needed.
      PageId start = prev->first;
      PageId end = prev->second.end;
      PriEntry old = prev->second.entry;
      if (old == entry) return;  // no change
      w.ranges.erase(prev);
      if (start < id) {
        w.ranges[start] = {id, old};
        stats_.range_splits++;
      }
      if (id + 1 < end) {
        w.ranges[id + 1] = {end, old};
        stats_.range_splits++;
      }
    }
  }
  w.ranges[id] = {id + 1, entry};
  CoalesceLocked(w, id);
}

void PageRecoveryIndex::CoalesceLocked(Window& w, PageId id) {
  auto it = w.ranges.find(id);
  if (it == w.ranges.end()) return;
  // Merge with predecessor.
  if (it != w.ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end == it->first && prev->second.entry == it->second.entry) {
      prev->second.end = it->second.end;
      w.ranges.erase(it);
      it = prev;
      stats_.range_merges++;
    }
  }
  // Merge with successor.
  auto next = std::next(it);
  if (next != w.ranges.end() && it->second.end == next->first &&
      it->second.entry == next->second.entry) {
    it->second.end = next->second.end;
    w.ranges.erase(next);
    stats_.range_merges++;
  }
}

void PageRecoveryIndex::RecordWrite(PageId id, Lsn page_lsn) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  const Window& w = windows_[WindowOf(id)];
  const RangeEntry* r = FindLocked(w, id);
  PriEntry e;
  if (r != nullptr) e = r->entry;
  e.last_lsn = page_lsn;
  SetPointLocked(id, e);
}

BackupRef PageRecoveryIndex::RecordBackup(PageId id, BackupRef backup) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  const Window& w = windows_[WindowOf(id)];
  const RangeEntry* r = FindLocked(w, id);
  BackupRef old;
  if (r != nullptr) old = r->entry.backup;
  PriEntry e;
  e.backup = backup;
  e.last_lsn = kInvalidLsn;  // clean relative to the new backup
  SetPointLocked(id, e);
  return old;
}

void PageRecoveryIndex::RecordFullBackup(uint64_t backup_id) {
  MutexLock g(mu_);
  PriEntry e;
  e.backup = {BackupKind::kFullBackup, backup_id};
  e.last_lsn = kInvalidLsn;
  for (uint64_t win = 0; win < num_windows_; ++win) {
    Window& w = windows_[win];
    PageId start = win * kPriEntriesPerWindow;
    PageId end = std::min(start + kPriEntriesPerWindow, num_pages_);
    w.ranges.clear();
    w.ranges[start] = {end, e};
    w.dirty = true;
  }
  stats_.updates += num_windows_;
}

void PageRecoveryIndex::Apply(PageId id, const PriEntry& entry) {
  MutexLock g(mu_);
  SPF_CHECK_LT(id, num_pages_);
  SetPointLocked(id, entry);
}

std::string PageRecoveryIndex::SerializeWindow(uint64_t window) const {
  MutexLock g(mu_);
  SPF_CHECK_LT(window, num_windows_);
  const Window& w = windows_[window];
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(w.ranges.size()));
  for (const auto& [start, r] : w.ranges) {
    PutFixed64(&out, start);
    PutFixed64(&out, r.end);
    PutFixed64(&out, r.entry.last_lsn);
    PutFixed64(&out, r.entry.backup.value);
    out.push_back(static_cast<char>(r.entry.backup.kind));
  }
  return out;
}

Status PageRecoveryIndex::DeserializeWindow(uint64_t window,
                                            std::string_view data) {
  MutexLock g(mu_);
  SPF_CHECK_LT(window, num_windows_);
  size_t off = 0;
  uint32_t n;
  if (!GetFixed32(data, &off, &n)) return Status::Corruption("bad PRI window");
  std::map<PageId, RangeEntry> ranges;
  PageId window_start = window * kPriEntriesPerWindow;
  PageId window_end =
      std::min(window_start + kPriEntriesPerWindow, num_pages_);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t start, end, lsn, value;
    if (!GetFixed64(data, &off, &start) || !GetFixed64(data, &off, &end) ||
        !GetFixed64(data, &off, &lsn) || !GetFixed64(data, &off, &value) ||
        off >= data.size() + 1) {
      return Status::Corruption("truncated PRI window");
    }
    if (off >= data.size()) return Status::Corruption("truncated PRI window");
    auto kind = static_cast<BackupKind>(data[off]);
    off++;
    if (start < window_start || end > window_end || start >= end) {
      return Status::Corruption("PRI range outside its window");
    }
    RangeEntry r;
    r.end = end;
    r.entry.last_lsn = lsn;
    r.entry.backup = {kind, value};
    ranges[start] = r;
  }
  windows_[window].ranges = std::move(ranges);
  return Status::OK();
}

std::vector<uint64_t> PageRecoveryIndex::DirtyWindows() const {
  MutexLock g(mu_);
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < num_windows_; ++i) {
    if (windows_[i].dirty) out.push_back(i);
  }
  return out;
}

void PageRecoveryIndex::ClearDirtyWindow(uint64_t window) {
  MutexLock g(mu_);
  SPF_CHECK_LT(window, num_windows_);
  windows_[window].dirty = false;
}

uint64_t PageRecoveryIndex::entry_count() const {
  MutexLock g(mu_);
  uint64_t n = 0;
  for (const auto& w : windows_) n += w.ranges.size();
  return n;
}

uint64_t PageRecoveryIndex::approx_bytes() const {
  return entry_count() * kPriEntryWireSize;
}

PriStats PageRecoveryIndex::stats() const {
  MutexLock g(mu_);
  return stats_;
}

// --- PriUpdate body -------------------------------------------------------------

std::string EncodePriUpdate(const PriUpdateBody& body) {
  std::string out;
  PutFixed64(&out, body.data_page_id);
  PutFixed64(&out, body.page_lsn);
  out.push_back(body.has_backup ? 1 : 0);
  PutFixed64(&out, body.backup.value);
  out.push_back(static_cast<char>(body.backup.kind));
  return out;
}

StatusOr<PriUpdateBody> DecodePriUpdate(std::string_view data) {
  PriUpdateBody body;
  size_t off = 0;
  if (!GetFixed64(data, &off, &body.data_page_id) ||
      !GetFixed64(data, &off, &body.page_lsn) || off + 10 > data.size()) {
    return Status::Corruption("bad PriUpdate body");
  }
  body.has_backup = data[off] != 0;
  off++;
  uint64_t value;
  if (!GetFixed64(data, &off, &value)) {
    return Status::Corruption("bad PriUpdate body");
  }
  body.backup = {static_cast<BackupKind>(data[off]), value};
  return body;
}

}  // namespace spf
