// Single-page recovery (paper section 5.2.3, Figure 10) and the
// read-time detection hooks (section 4.2 / 5.2.2, Figure 8).
//
// Recovery procedure for one failed page:
//   1. look up the page in the page recovery index;
//   2. fetch the most recent backup (individual copy, full backup, in-log
//      image, or the page's formatting log record) into the buffer frame;
//   3. follow the per-page log chain from the PRI's PageLSN back to the
//      backup, pushing record pointers onto a last-in-first-out stack;
//   4. pop and apply the "redo" actions in order, with the defensive
//      check that each record's page_prev_lsn equals the current PageLSN
//      (section 5.1.4);
//   5. verify the result; the page is up to date in the buffer pool and
//      the affected transaction merely waited — no abort.
// If anything fails, the error escalates (the caller treats it as a media
// failure, exactly the paper's fallback).
//
// Concurrency: the repair procedure itself only touches thread-safe
// components (PRI, log, backups, device), so many repairs may run at
// once. The cumulative counters are sharded by page id so concurrent
// repairs do not serialize on one stats mutex; the RecoveryScheduler
// drives the sharded pieces (LoadBackupImage / ReplayChain / FinishRepair)
// directly when it repairs a whole batch of pages coordinately.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "common/sync.h"
#include "core/pri_manager.h"
#include "log/log_manager.h"
#include "log/log_source.h"
#include "storage/sim_device.h"

namespace spf {

/// Cumulative counters plus the most recent repair's breakdown (benches
/// read the latter right after inducing one failure).
struct SinglePageRecoveryStats {
  uint64_t repairs_attempted = 0;
  uint64_t repairs_succeeded = 0;
  uint64_t escalations = 0;
  uint64_t log_records_applied = 0;
  uint64_t log_reads = 0;
  uint64_t archive_reads = 0;  ///< sequential archive data pages read
  uint64_t backup_reads = 0;

  // Most recent successful repair:
  uint64_t last_chain_length = 0;
  uint64_t last_sim_ns = 0;
  BackupKind last_backup_kind = BackupKind::kNone;
};

/// PageRepairer implementation plugged into the buffer pool (Figure 8).
class SinglePageRecovery : public PageRepairer {
 public:
  SinglePageRecovery(PriManager* pri_manager, LogManager* log,
                     BackupManager* backups, SimDevice* data_device,
                     SimClock* clock);

  SPF_DISALLOW_COPY(SinglePageRecovery);

  /// Rebuilds page `id` into `frame` from its backup plus the per-page
  /// log chain, then writes the healed image back to the device (healing
  /// transient faults in place). Returns MediaFailure when escalation is
  /// the only option. Thread-safe; concurrent repairs of distinct pages
  /// proceed in parallel.
  Status RepairPage(PageId id, char* frame) override;

  // --- building blocks for the batched RecoveryScheduler ---------------------
  //
  // Each accumulates its I/O counters into `*acc` (a caller-local stats
  // struct) instead of the shared shards; the caller merges once with
  // MergeStats. This keeps a batch's worth of repairs off any shared lock.

  /// PRI lookup; MediaFailure if the index knows nothing about the page.
  StatusOr<PriEntry> LookupEntry(PageId id) const;

  /// Chain-anchor lookup for partial restore: tolerates a lost backup
  /// reference (the image comes from the full backup instead).
  StatusOr<PriEntry> LookupChainAnchor(PageId id) const;

  /// Step 2: fetches the most recent backup image of `id` into `frame`.
  Status LoadBackupImage(PageId id, const PriEntry& entry, char* frame,
                         SinglePageRecoveryStats* acc);

  /// Steps 3-4: fetches the per-page chain from the wired LogSource and
  /// replays it. With the default TailLogSource this is the serial
  /// per-record random-read baseline; with an ArchiveLogSource the
  /// archived prefix arrives as sequential run reads.
  Status ReplayChain(PageId id, const PriEntry& entry, char* frame,
                     SinglePageRecoveryStats* acc);

  /// Rewires where chains come from (nullptr restores the built-in tail
  /// walk). Call during database assembly, before repairs can run.
  void SetLogSource(LogSource* source) {
    source_ = source != nullptr ? source : default_source_.get();
  }

  /// Step 4 alone: pops a collected chain (newest-first LIFO) and applies
  /// the redo actions with the defensive redo-sequence check. Consumes
  /// `*chain`. Shared by ReplayChain and the scheduler's batched walk so
  /// serial and batched repair can never diverge here.
  Status ApplyChain(std::vector<LogRecord>* chain, char* frame,
                    SinglePageRecoveryStats* acc);

  /// Figure 10's escalation wrap: any non-media failure becomes a
  /// MediaFailure naming the page.
  static Status Escalate(PageId id, const Status& s);

  /// Step 5: verifies the recovered image against the PRI target LSN and
  /// heals the stored copy (device write-back).
  Status FinishRepair(PageId id, const PriEntry& entry, char* frame,
                      SinglePageRecoveryStats* acc);

  /// Adds a batch-local accumulator into the shard owning `shard_key`.
  void MergeStats(const SinglePageRecoveryStats& acc, PageId shard_key);

  /// Publishes the "most recent successful repair" snapshot.
  void NoteLastRepair(uint64_t chain_length, uint64_t sim_ns, BackupKind kind);

  SinglePageRecoveryStats stats() const;  ///< aggregated over all shards
  void ResetStats();

  PriManager* pri_manager() const { return pri_manager_; }
  LogManager* log() const { return log_; }
  BackupManager* backups() const { return backups_; }
  SimDevice* data_device() const { return data_device_; }
  SimClock* clock() const { return clock_; }
  uint32_t page_size() const { return page_size_; }

 private:
  static constexpr size_t kStatShards = 8;
  struct alignas(64) StatShard {
    mutable OrderedMutex mu{LockRank::kStats};
    SinglePageRecoveryStats s SPF_GUARDED_BY(mu);
  };

  PriManager* const pri_manager_;
  LogManager* const log_;
  BackupManager* const backups_;
  SimDevice* const data_device_;
  SimClock* const clock_;
  const uint32_t page_size_;

  std::unique_ptr<TailLogSource> default_source_;
  LogSource* source_;  // never null; defaults to default_source_

  StatShard shards_[kStatShards];
  mutable OrderedMutex last_mu_{LockRank::kStats};  // last_* snapshot
  uint64_t last_chain_length_ SPF_GUARDED_BY(last_mu_) = 0;
  uint64_t last_sim_ns_ SPF_GUARDED_BY(last_mu_) = 0;
  BackupKind last_backup_kind_ SPF_GUARDED_BY(last_mu_) = BackupKind::kNone;
};

/// ReadVerifier implementation: the PageLSN-vs-PRI cross-check credited to
/// Gary Smith in the paper's acknowledgements (section 5.2.2: "comparing
/// the PageLSN in the data page with the information in the page recovery
/// index is an additional consistency check that could prevent the
/// nightmare recounted in the introduction"). Catches stale pages whose
/// in-page checksum is valid.
class PageLsnCrossCheck : public ReadVerifier {
 public:
  explicit PageLsnCrossCheck(PriManager* pri_manager)
      : pri_manager_(pri_manager) {}

  Status VerifyOnRead(PageView page) override;

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t mismatches() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

 private:
  PriManager* const pri_manager_;
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> mismatches_{0};
};

}  // namespace spf
