// Single-page recovery (paper section 5.2.3, Figure 10) and the
// read-time detection hooks (section 4.2 / 5.2.2, Figure 8).
//
// Recovery procedure for one failed page:
//   1. look up the page in the page recovery index;
//   2. fetch the most recent backup (individual copy, full backup, in-log
//      image, or the page's formatting log record) into the buffer frame;
//   3. follow the per-page log chain from the PRI's PageLSN back to the
//      backup, pushing record pointers onto a last-in-first-out stack;
//   4. pop and apply the "redo" actions in order, with the defensive
//      check that each record's page_prev_lsn equals the current PageLSN
//      (section 5.1.4);
//   5. verify the result; the page is up to date in the buffer pool and
//      the affected transaction merely waited — no abort.
// If anything fails, the error escalates (the caller treats it as a media
// failure, exactly the paper's fallback).

#pragma once

#include <cstdint>
#include <mutex>

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"

namespace spf {

/// Cumulative counters plus the most recent repair's breakdown (benches
/// read the latter right after inducing one failure).
struct SinglePageRecoveryStats {
  uint64_t repairs_attempted = 0;
  uint64_t repairs_succeeded = 0;
  uint64_t escalations = 0;
  uint64_t log_records_applied = 0;
  uint64_t log_reads = 0;
  uint64_t backup_reads = 0;

  // Most recent successful repair:
  uint64_t last_chain_length = 0;
  uint64_t last_sim_ns = 0;
  BackupKind last_backup_kind = BackupKind::kNone;
};

/// PageRepairer implementation plugged into the buffer pool (Figure 8).
class SinglePageRecovery : public PageRepairer {
 public:
  SinglePageRecovery(PriManager* pri_manager, LogManager* log,
                     BackupManager* backups, SimDevice* data_device,
                     SimClock* clock);

  SPF_DISALLOW_COPY(SinglePageRecovery);

  /// Rebuilds page `id` into `frame` from its backup plus the per-page
  /// log chain, then writes the healed image back to the device (healing
  /// transient faults in place). Returns MediaFailure when escalation is
  /// the only option.
  Status RepairPage(PageId id, char* frame) override;

  SinglePageRecoveryStats stats() const;
  void ResetStats();

 private:
  Status LoadBackupImage(PageId id, const PriEntry& entry, char* frame);
  Status ReplayChain(PageId id, const PriEntry& entry, char* frame);

  PriManager* const pri_manager_;
  LogManager* const log_;
  BackupManager* const backups_;
  SimDevice* const data_device_;
  SimClock* const clock_;
  const uint32_t page_size_;

  mutable std::mutex mu_;
  SinglePageRecoveryStats stats_;
};

/// ReadVerifier implementation: the PageLSN-vs-PRI cross-check credited to
/// Gary Smith in the paper's acknowledgements (section 5.2.2: "comparing
/// the PageLSN in the data page with the information in the page recovery
/// index is an additional consistency check that could prevent the
/// nightmare recounted in the introduction"). Catches stale pages whose
/// in-page checksum is valid.
class PageLsnCrossCheck : public ReadVerifier {
 public:
  explicit PageLsnCrossCheck(PriManager* pri_manager)
      : pri_manager_(pri_manager) {}

  Status VerifyOnRead(PageView page) override;

  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t mismatches() const {
    return mismatches_.load(std::memory_order_relaxed);
  }

 private:
  PriManager* const pri_manager_;
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> mismatches_{0};
};

}  // namespace spf
