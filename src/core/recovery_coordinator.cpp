#include "core/recovery_coordinator.h"

#include <algorithm>

#include "core/single_page_recovery.h"
#include "storage/page.h"

namespace spf {

RecoveryCoordinator::RecoveryCoordinator(RecoveryLadder ladder,
                                         SimDevice* device,
                                         RecoveryCoordinatorOptions options)
    : ladder_(std::move(ladder)), device_(device), options_(options) {
  SPF_CHECK(ladder_ != nullptr);
}

RecoveryCoordinator::~RecoveryCoordinator() { Stop(); }

void RecoveryCoordinator::Start() {
  MutexLock lifecycle(lifecycle_mu_);
  {
    MutexLock g(mu_);
    if (running_) return;
    stop_ = false;
    paused_ = false;  // a Pause from a previous run must not stall this one
    running_ = true;
  }
  size_t n = std::max<uint32_t>(options_.num_workers, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(&RecoveryCoordinator::WorkerLoop, this);
  }
}

void RecoveryCoordinator::Stop() {
  MutexLock lifecycle(lifecycle_mu_);
  {
    MutexLock g(mu_);
    if (!running_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  {
    // Fail whatever was still pending so no waiter hangs; in-flight
    // batches completed before the joins above.
    MutexLock g(mu_);
    for (PageId id : pending_) {
      auto it = entries_.find(id);
      if (it != entries_.end()) {
        it->second->status = Status::Aborted("recovery funnel stopped");
        it->second->done = true;
        entries_.erase(it);
      }
      totals_.failed++;
    }
    pending_.clear();
    running_ = false;
  }
  done_cv_.notify_all();
}

bool RecoveryCoordinator::running() const {
  MutexLock g(mu_);
  return running_;
}

ReportResult RecoveryCoordinator::ReportLocked(PageId id, FailureOrigin origin,
                                               std::shared_ptr<Entry>* entry) {
  auto bump_origin = [&] {
    switch (origin) {
      case FailureOrigin::kForegroundRead:
        totals_.from_foreground++;
        break;
      case FailureOrigin::kScrubber:
        totals_.from_scrubber++;
        break;
      case FailureOrigin::kEscalation:
        totals_.from_escalation++;
        break;
      case FailureOrigin::kExplicit:
        break;
    }
  };
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    // Already pending or in flight: one repair serves every reporter.
    *entry = it->second;
    totals_.coalesced++;
    bump_origin();
    return ReportResult::kCoalesced;
  }
  if (!running_ || stop_ || pending_.size() >= options_.queue_limit) {
    totals_.rejected++;
    return ReportResult::kRejected;
  }
  auto e = std::make_shared<Entry>();
  entries_[id] = e;
  pending_.push_back(id);
  totals_.enqueued++;
  bump_origin();
  *entry = std::move(e);
  return ReportResult::kAccepted;
}

ReportResult RecoveryCoordinator::Report(PageId id, FailureOrigin origin) {
  std::shared_ptr<Entry> entry;
  ReportResult r;
  {
    MutexLock g(mu_);
    r = ReportLocked(id, origin, &entry);
  }
  if (r == ReportResult::kAccepted) work_cv_.notify_one();
  return r;
}

Status RecoveryCoordinator::ReportAndWait(PageId id, FailureOrigin origin) {
  std::shared_ptr<Entry> entry;
  UniqueLock lk(mu_);
  ReportResult r = ReportLocked(id, origin, &entry);
  if (r == ReportResult::kRejected) {
    return Status::Busy("recovery funnel backpressure: queue at limit");
  }
  if (r == ReportResult::kAccepted) work_cv_.notify_one();
  while (!entry->done) done_cv_.wait(lk);
  return entry->status;
}

thread_local bool RecoveryCoordinator::draining_thread_ = false;

Status RecoveryCoordinator::RepairPage(PageId id, char* frame) {
  if (draining_thread_) {
    // The ladder itself faulted on a page from this worker thread (e.g.
    // the full-restore rung fixing pages during rollback/checkpoint):
    // ReportAndWait would wait on ourselves forever. Repair inline.
    if (fallback_ != nullptr) return fallback_->RepairPage(id, frame);
    return SinglePageRecovery::Escalate(
        id, Status::Busy("funnel worker re-entered the read-path repair"));
  }
  Status s = ReportAndWait(id, FailureOrigin::kForegroundRead);
  if (s.IsBusy() && fallback_ != nullptr) {
    // Backpressure (or stopped funnel): keep the read path alive with the
    // pre-funnel inline repair.
    return fallback_->RepairPage(id, frame);
  }
  if (s.ok()) {
    // The ladder healed the DEVICE copy in place; refill the caller's
    // frame from it. The caller holds the frame's exclusive latch and the
    // page's buffer-pool slot, so no concurrent writer can have moved the
    // page forward between the heal and this read.
    s = device_->ReadPage(id, frame);
    if (s.ok()) s = PageView(frame, device_->page_size()).Verify(id);
    if (s.ok()) return s;
  }
  // The heal did not stick on the device (e.g. a worn-out location that
  // scrambles every write, or a restore from a damaged backup): rebuild
  // straight into the caller's frame as a last resort — the buffered
  // copy, not the sick location, is what the application is served.
  if (fallback_ != nullptr) {
    Status inline_repair = fallback_->RepairPage(id, frame);
    if (inline_repair.ok()) return inline_repair;
    s = std::move(inline_repair);
  }
  // Figure 10's escalation wrap: the caller treats this as a media failure.
  return SinglePageRecovery::Escalate(id, s);
}

void RecoveryCoordinator::Pause() {
  MutexLock g(mu_);
  paused_ = true;
}

void RecoveryCoordinator::Resume() {
  {
    MutexLock g(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RecoveryCoordinator::WaitIdle() {
  UniqueLock lk(mu_);
  while (!((pending_.empty() || paused_ || !running_) && draining_ == 0)) {
    done_cv_.wait(lk);
  }
}

void RecoveryCoordinator::NoteGatedRestore(const RestorePhases& phases) {
  MutexLock g(mu_);
  totals_.gated_restores++;
  totals_.txns_drained += phases.drained;
  totals_.txns_doomed += phases.doomed;
  totals_.deferred_rollbacks += phases.deferred_rollbacks;
  totals_.admission_waits += phases.admission_waits;
  totals_.on_demand_segments += phases.on_demand_segments;
}

FunnelTotals RecoveryCoordinator::totals() const {
  MutexLock g(mu_);
  return totals_;
}

void RecoveryCoordinator::ResolveBatchLocked(
    const std::vector<PageId>& batch,
    const StatusOr<FunnelBatchOutcome>& outcome) {
  totals_.batches++;
  if (!outcome.ok()) {
    for (PageId id : batch) {
      auto it = entries_.find(id);
      if (it != entries_.end()) {
        it->second->status = outcome.status();
        it->second->done = true;
        entries_.erase(it);
      }
      totals_.failed++;
    }
    return;
  }
  const FunnelBatchOutcome& out = *outcome;
  totals_.repaired_spr += out.repaired_spr;
  totals_.repaired_partial += out.repaired_partial;
  totals_.repaired_full += out.repaired_full;
  totals_.skipped_dirty += out.skipped_dirty;
  totals_.escalated_full += out.full_restores;
  totals_.failed += out.failures.size();
  std::unordered_map<PageId, const Status*> failed;
  for (const PageRepairOutcome& f : out.failures) {
    failed[f.page_id] = &f.status;
  }
  for (PageId id : batch) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;
    auto fit = failed.find(id);
    it->second->status = fit != failed.end() ? *fit->second : Status::OK();
    it->second->done = true;
    entries_.erase(it);
  }
}

void RecoveryCoordinator::WorkerLoop() {
  UniqueLock lk(mu_);
  while (true) {
    while (!(stop_ || (!pending_.empty() && !paused_))) work_cv_.wait(lk);
    if (stop_) return;
    // Claim the WHOLE pending set: this is where a burst of independent
    // reports coalesces into one sorted batch of contiguous ranges for
    // the ladder's sequential rungs.
    std::vector<PageId> batch = std::move(pending_);
    pending_.clear();
    draining_++;
    lk.Unlock();

    std::sort(batch.begin(), batch.end());
    StatusOr<FunnelBatchOutcome> outcome = [&] {
      // One climb at a time: the ladder's bottom rungs (partial/full
      // media recovery) are not safe against concurrent selves.
      MutexLock ladder_guard(ladder_mu_);
      draining_thread_ = true;
      auto out = ladder_(batch);
      draining_thread_ = false;
      return out;
    }();

    lk.Lock();
    ResolveBatchLocked(batch, outcome);
    draining_--;
    done_cv_.notify_all();
  }
}

}  // namespace spf
