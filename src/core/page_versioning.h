// Page versioning via single-page rollback (paper section 5.1.4).
//
// "Snapshot isolation can be implemented by taking an up-to-date copy of a
// database page and rolling it back using 'undo' information in the
// recovery log" — the per-page log chain makes this efficient: starting
// from the current image, apply the UNDO side of each chained record,
// newest first, until the PageLSN drops to the requested point in time.
//
// Scope: rollback crosses content records (insert / ghost / update).
// Structural records (splits, formats, ghost reclamation, compensations)
// end the rollback window with NotSupported — reconstructing a pre-split
// image would need the donated records, which physiological logging does
// not retain on this page's chain. Real systems face the same boundary and
// cap version retention at structural changes.

#pragma once

#include "common/sync.h"
#include "log/log_manager.h"
#include "storage/page.h"

namespace spf {

struct PageVersionStats {
  uint64_t versions_built = 0;
  uint64_t records_rolled_back = 0;
  uint64_t log_reads = 0;
};

/// Rolls page images backward along their per-page chains.
class PageVersioning {
 public:
  explicit PageVersioning(LogManager* log) : log_(log) {}

  /// Rolls `page` (a writable COPY of the current image, never the buffer
  /// pool frame) back until its PageLSN is <= `as_of_lsn`. On success the
  /// image shows exactly the state after the newest chained record with
  /// LSN <= as_of_lsn was applied.
  Status RollBackTo(PageView page, Lsn as_of_lsn);

  PageVersionStats stats() const {
    MutexLock g(mu_);
    return stats_;
  }

 private:
  /// Applies the undo side of `rec` to `page`. NotSupported for record
  /// types without in-page undo information.
  Status UndoOnPage(const LogRecord& rec, PageView page);

  LogManager* const log_;
  mutable OrderedMutex mu_{LockRank::kStats};
  PageVersionStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
