#include "core/pri_manager.h"

#include <cstring>

#include "common/coding.h"

namespace spf {

// --- layout ---------------------------------------------------------------------

PriLayout PriLayout::Compute(uint64_t num_pages) {
  PriLayout l;
  l.num_pages = num_pages;
  l.num_windows = (num_pages + kPriEntriesPerWindow - 1) / kPriEntriesPerWindow;
  l.lower_windows = l.num_windows / 2;
  uint64_t upper_windows = l.num_windows - l.lower_windows;
  // Partition A at low addresses (after the meta page) covers the upper
  // windows; partition B at the device tail covers the lower windows.
  l.pri_a_start = 1;
  l.pri_a_pages = upper_windows;
  l.pri_b_pages = l.lower_windows;
  l.pri_b_start = num_pages - l.lower_windows;
  return l;
}

PageId PriLayout::PriPageOfWindow(uint64_t w) const {
  SPF_CHECK_LT(w, num_windows);
  if (w < lower_windows) return pri_b_start + w;
  return pri_a_start + (w - lower_windows);
}

uint64_t PriLayout::WindowOfPriPage(PageId pid) const {
  if (pid >= pri_b_start && pid < pri_b_start + pri_b_pages) {
    return pid - pri_b_start;
  }
  SPF_CHECK(pid >= pri_a_start && pid < pri_a_start + pri_a_pages)
      << "page " << pid << " is not a PRI page";
  return (pid - pri_a_start) + lower_windows;
}

bool PriLayout::IsPriPage(PageId pid) const {
  return (pid >= pri_a_start && pid < pri_a_start + pri_a_pages) ||
         (pid >= pri_b_start && pid < pri_b_start + pri_b_pages);
}

// --- PriManager -------------------------------------------------------------------

PriManager::PriManager(PriLayout layout, WriteTrackingMode mode,
                       BackupPolicy policy, PageRecoveryIndex* pri,
                       LogManager* log, TxnManager* txns,
                       BackupManager* backups, SimDevice* data_device)
    : layout_(layout),
      mode_(mode),
      policy_(policy),
      pri_(pri),
      log_(log),
      txns_(txns),
      backups_(backups),
      data_device_(data_device),
      page_size_(data_device->page_size()),
      pri_page_lsns_(layout.num_windows, kInvalidLsn) {}

void PriManager::LogAndApplyPriUpdate(PageId data_page_id, Lsn page_lsn,
                                      bool has_backup, BackupRef backup) {
  uint64_t window = PageRecoveryIndex::WindowOf(data_page_id);
  PageId pri_page = layout_.PriPageOfWindow(window);

  // One system-transaction record, not forced (section 5.2.4: "it could be
  // treated as a system transaction, which does not require forcing the
  // log upon commit"). We log the single PriUpdate record directly with
  // the system flag; begin/commit records would add no information.
  LogRecord rec;
  rec.type = LogRecordType::kPriUpdate;
  rec.flags = kLogFlagSystemTxn;
  rec.page_id = pri_page;
  PriUpdateBody body;
  body.data_page_id = data_page_id;
  body.page_lsn = page_lsn;
  body.has_backup = has_backup;
  body.backup = backup;
  rec.body = EncodePriUpdate(body);
  {
    MutexLock g(mu_);
    rec.page_prev_lsn = pri_page_lsns_[window];  // PRI page's own chain
    Lsn lsn = log_->Append(&rec);
    pri_page_lsns_[window] = lsn;
    stats_.pri_updates_logged++;
  }
  if (has_backup) {
    pri_->RecordBackup(data_page_id, backup);
    if (page_lsn != kInvalidLsn) {
      // The page has been updated up to page_lsn and the backup reflects
      // exactly that state: last_lsn stays invalid (clean vs. backup).
    }
  } else {
    pri_->RecordWrite(data_page_id, page_lsn);
  }
}

bool PriManager::OnPageWritten(PageId id, Lsn page_lsn, uint32_t update_count,
                               const char* page_data) {
  switch (mode_) {
    case WriteTrackingMode::kNone:
      return false;
    case WriteTrackingMode::kCompletedWrites: {
      // Baseline (section 5.1.2): log the completed write; no PRI, no
      // backups.
      LogRecord rec;
      rec.type = LogRecordType::kPageWriteCompleted;
      rec.flags = kLogFlagSystemTxn;
      rec.page_id = id;
      std::string body;
      PutFixed64(&body, page_lsn);
      rec.body = body;
      log_->Append(&rec);
      MutexLock g(mu_);
      stats_.completed_write_records++;
      return false;
    }
    case WriteTrackingMode::kPri:
      break;
  }

  // Backup policy: take a per-page copy when the update counter crossed
  // the threshold (section 6).
  bool take_backup =
      policy_.updates_threshold > 0 && update_count >= policy_.updates_threshold;
  if (take_backup) {
    BackupRef ref;
    if (policy_.use_in_log_images) {
      auto lsn_or = backups_->LogPageImage(id, page_data);
      if (lsn_or.ok()) {
        ref = {BackupKind::kLogImage, *lsn_or};
      } else {
        take_backup = false;
      }
    } else {
      auto slot_or = backups_->TakePageBackup(id, page_data);
      if (slot_or.ok()) {
        ref = {BackupKind::kBackupPage, *slot_or};
      } else {
        take_backup = false;
      }
    }
    if (take_backup) {
      LogAndApplyPriUpdate(id, page_lsn, /*has_backup=*/true, ref);
      MutexLock g(mu_);
      stats_.page_backups_triggered++;
      return true;
    }
  }
  LogAndApplyPriUpdate(id, page_lsn, /*has_backup=*/false, BackupRef());
  return false;
}

Status PriManager::ForcePageBackup(PageId id, const char* page_data,
                                   Lsn page_lsn) {
  SPF_ASSIGN_OR_RETURN(PageId slot, backups_->TakePageBackup(id, page_data));
  LogAndApplyPriUpdate(id, page_lsn, /*has_backup=*/true,
                       {BackupKind::kBackupPage, slot});
  MutexLock g(mu_);
  stats_.page_backups_triggered++;
  return Status::OK();
}

void PriManager::OnFullBackup(BackupId id) { pri_->RecordFullBackup(id); }

void PriManager::RecordLostWrite(PageId id, Lsn page_lsn) {
  LogAndApplyPriUpdate(id, page_lsn, /*has_backup=*/false, BackupRef());
}

void PriManager::BuildPriPageImage(uint64_t window, char* out) {
  PageId pid = layout_.PriPageOfWindow(window);
  PageView page(out, page_size_);
  page.Format(pid, PageType::kPri);
  {
    MutexLock g(mu_);
    page.set_page_lsn(pri_page_lsns_[window]);
  }
  std::string payload = pri_->SerializeWindow(window);
  SPF_CHECK_LE(payload.size() + kPageHeaderSize + 4, page_size_)
      << "PRI window overflows its page";
  EncodeFixed32(out + kPageHeaderSize, static_cast<uint32_t>(payload.size()));
  std::memcpy(out + kPageHeaderSize + 4, payload.data(), payload.size());
  page.UpdateChecksum();
}

Status PriManager::WriteDirtyWindows() {
  if (mode_ != WriteTrackingMode::kPri) return Status::OK();
  std::vector<uint64_t> dirty = pri_->DirtyWindows();  // snapshot (5.2.6)
  std::vector<char> buf(page_size_);
  for (uint64_t w : dirty) {
    PageId pid = layout_.PriPageOfWindow(w);
    BuildPriPageImage(w, buf.data());
    // WAL: the newest PriUpdate reflected in this image must be durable
    // before the page overwrites its previous version.
    Lsn head;
    {
      MutexLock g(mu_);
      head = pri_page_lsns_[w];
    }
    if (head != kInvalidLsn) log_->Force(head);
    SPF_RETURN_IF_ERROR(data_device_->WritePage(pid, buf.data()));
    pri_->ClearDirtyWindow(w);
    {
      MutexLock g(mu_);
      stats_.pri_pages_written++;
    }
    // Backup for the PRI page itself: an in-log image, referenced by the
    // covering entry in the OTHER partition.
    SPF_ASSIGN_OR_RETURN(Lsn image_lsn, backups_->LogPageImage(pid, buf.data()));
    LogAndApplyPriUpdate(pid, head, /*has_backup=*/true,
                         {BackupKind::kLogImage, image_lsn});
  }
  return Status::OK();
}

Status PriManager::LoadAllWindows() {
  std::vector<char> buf(page_size_);
  std::vector<uint64_t> failed;
  for (uint64_t w = 0; w < layout_.num_windows; ++w) {
    PageId pid = layout_.PriPageOfWindow(w);
    Status s = data_device_->ReadPage(pid, buf.data());
    if (s.ok()) {
      PageView page(buf.data(), page_size_);
      s = page.Verify(pid);
      if (s.ok() && page.type() != PageType::kPri) {
        // A fresh database has zeroed PRI pages; treat as empty windows.
        if (page.header()->magic == 0) {
          continue;
        }
        s = Status::Corruption("expected a PRI page");
      }
    }
    if (!s.ok()) {
      if (s.IsSinglePageFailureCandidate()) {
        failed.push_back(w);
        continue;
      }
      // Zeroed never-written page: empty window.
      PageView page(buf.data(), page_size_);
      if (s.IsCorruption() || page.header()->magic == 0) {
        failed.push_back(w);
        continue;
      }
      return s;
    }
    PageView page(buf.data(), page_size_);
    uint32_t len = DecodeFixed32(buf.data() + kPageHeaderSize);
    Status ds = pri_->DeserializeWindow(
        w, std::string_view(buf.data() + kPageHeaderSize + 4, len));
    if (!ds.ok()) {
      failed.push_back(w);
      continue;
    }
    MutexLock g(mu_);
    pri_page_lsns_[w] = page.page_lsn();
  }
  // Recover failed PRI pages from the other partition now that intact
  // windows are loaded.
  for (uint64_t w : failed) {
    Status s = RecoverPriWindow(w);
    if (!s.ok()) {
      // A never-written window on a fresh database is fine; a window
      // whose covering entry exists but cannot be recovered is not.
      if (s.IsNotFound()) continue;
      return s;
    }
  }
  return Status::OK();
}

Status PriManager::RecoverPriWindow(uint64_t window) {
  PageId pid = layout_.PriPageOfWindow(window);
  // The covering entry lives in the other partition (invariant P2).
  auto entry_or = pri_->Lookup(pid);
  if (!entry_or.ok()) return entry_or.status();
  const PriEntry& entry = *entry_or;
  if (entry.backup.kind != BackupKind::kLogImage) {
    return Status::MediaFailure("PRI page backup is not an in-log image");
  }
  std::vector<char> buf(page_size_);
  SPF_RETURN_IF_ERROR(backups_->ReadLogImage(entry.backup.value, pid, buf.data()));
  PageView page(buf.data(), page_size_);
  SPF_RETURN_IF_ERROR(page.Verify(pid));

  // Deserialize the image, then roll forward along the PRI page's own
  // per-page chain of PriUpdate records (newest-first via a LIFO stack,
  // exactly the Figure 10 procedure).
  uint32_t len = DecodeFixed32(buf.data() + kPageHeaderSize);
  SPF_RETURN_IF_ERROR(pri_->DeserializeWindow(
      window, std::string_view(buf.data() + kPageHeaderSize + 4, len)));

  Lsn image_lsn = page.page_lsn();
  Lsn target = entry.last_lsn != kInvalidLsn ? entry.last_lsn : image_lsn;
  std::vector<LogRecord> stack;
  Lsn cur = target;
  while (cur != kInvalidLsn && cur > image_lsn) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(cur));
    if (rec.type != LogRecordType::kPriUpdate || rec.page_id != pid) {
      return Status::Corruption("PRI page chain contains foreign record");
    }
    stack.push_back(rec);
    cur = rec.page_prev_lsn;
  }
  Lsn head = image_lsn;
  while (!stack.empty()) {
    LogRecord rec = std::move(stack.back());
    stack.pop_back();
    SPF_ASSIGN_OR_RETURN(PriUpdateBody body, DecodePriUpdate(rec.body));
    if (body.has_backup) {
      pri_->RecordBackup(body.data_page_id, body.backup);
    } else {
      pri_->RecordWrite(body.data_page_id, body.page_lsn);
    }
    head = rec.lsn;
  }
  {
    MutexLock g(mu_);
    pri_page_lsns_[window] = head;
    stats_.pri_pages_recovered++;
  }
  return Status::OK();
}

Status PriManager::ApplyPriUpdateRecord(const LogRecord& rec) {
  SPF_CHECK(rec.type == LogRecordType::kPriUpdate);
  SPF_ASSIGN_OR_RETURN(PriUpdateBody body, DecodePriUpdate(rec.body));
  if (body.has_backup) {
    pri_->RecordBackup(body.data_page_id, body.backup);
  } else {
    pri_->RecordWrite(body.data_page_id, body.page_lsn);
  }
  uint64_t window = layout_.WindowOfPriPage(rec.page_id);
  MutexLock g(mu_);
  if (rec.lsn > pri_page_lsns_[window]) pri_page_lsns_[window] = rec.lsn;
  return Status::OK();
}

PriManagerStats PriManager::stats() const {
  MutexLock g(mu_);
  return stats_;
}

Lsn PriManager::pri_page_lsn(uint64_t window) const {
  MutexLock g(mu_);
  return pri_page_lsns_[window];
}

}  // namespace spf
