#include "core/mirror_baseline.h"

namespace spf {

Status MirrorBaseline::SeedFromPrincipal(SimDevice* principal) {
  SPF_CHECK_EQ(principal->page_size(), mirror_->page_size());
  SPF_CHECK_EQ(principal->num_pages(), mirror_->num_pages());
  std::vector<char> buf(principal->page_size());
  for (PageId p = 0; p < principal->num_pages(); ++p) {
    SPF_RETURN_IF_ERROR(principal->ReadPage(p, buf.data()));
    SPF_RETURN_IF_ERROR(mirror_->WritePage(p, buf.data()));
  }
  MutexLock g(mu_);
  applied_upto_ = log_->durable_lsn();
  return Status::OK();
}

Status MirrorBaseline::CatchUp() {
  Lsn from;
  {
    MutexLock g(mu_);
    if (applied_upto_ == kInvalidLsn) {
      return Status::FailedPrecondition("mirror not seeded");
    }
    from = applied_upto_;
  }
  SimTimer timer(clock_);
  uint64_t scanned = 0, applied = 0, writes = 0;
  PageBuffer buf(mirror_->page_size());
  Lsn end = log_->durable_lsn();
  for (auto it = log_->Scan(from, end); it.Valid(); it.Next()) {
    const LogRecord& rec = it.record();
    scanned++;
    switch (rec.type) {
      case LogRecordType::kPageFormat:
      case LogRecordType::kBTreeInsert:
      case LogRecordType::kBTreeMarkGhost:
      case LogRecordType::kBTreeUpdate:
      case LogRecordType::kBTreeReclaimGhost:
      case LogRecordType::kBTreeSplit:
      case LogRecordType::kBTreeAdopt:
      case LogRecordType::kBTreeGrowRoot:
      case LogRecordType::kCompensation:
        break;
      default:
        continue;
    }
    if (rec.page_id == kInvalidPageId) continue;

    PageView page = buf.view();
    if (rec.type != LogRecordType::kPageFormat) {
      SPF_RETURN_IF_ERROR(mirror_->ReadPage(rec.page_id, buf.data()));
      if (page.page_lsn() >= rec.lsn) continue;  // already applied
    }
    SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
    page.set_page_lsn(rec.lsn);
    page.UpdateChecksum();
    SPF_RETURN_IF_ERROR(mirror_->WritePage(rec.page_id, buf.data()));
    applied++;
    writes++;
  }
  MutexLock g(mu_);
  applied_upto_ = end;
  stats_.records_scanned += scanned;
  stats_.records_applied += applied;
  stats_.mirror_writes += writes;
  stats_.apply_sim_ns += timer.ElapsedNanos();
  return Status::OK();
}

Status MirrorBaseline::RepairFrom(PageId id, char* out) {
  SPF_RETURN_IF_ERROR(CatchUp());
  SPF_RETURN_IF_ERROR(mirror_->ReadPage(id, out));
  MutexLock g(mu_);
  stats_.pages_served++;
  return Status::OK();
}

}  // namespace spf
