// RecoveryCoordinator — the failure funnel that makes the system
// self-healing end to end.
//
// Every detection site reports damaged page ids into one place instead of
// repairing (or escalating) on its own:
//
//   * BufferPool::FixPage read/verify failures (Figure 8's read path) —
//     the coordinator is the pool's installed PageRepairer, so a
//     foreground reader REPORTS its page and synchronously waits for the
//     in-flight repair instead of repairing inline; N concurrent readers
//     of one damaged page share ONE repair;
//   * background Scrubber tick failures — reported fire-and-forget, the
//     sweep moves on while the funnel heals;
//   * RecoveryScheduler batch escalations — pages a direct RepairBatch
//     could not heal are forwarded through the scheduler's escalation
//     sink instead of being left for the caller.
//
// A background worker drains the funnel: the entire pending set is popped
// as one deduplicated, sorted batch and pushed through the installed
// RecoveryLadder (Database::RecoverPages — retry → single-page repair →
// batched repair → partial media restore → full restore), so a burst of
// reports coalesces into contiguous page-id ranges exactly where the
// ladder's sequential-backup-read rungs want them. The queue is bounded:
// when `queue_limit` pages are already pending, new reports are REJECTED
// (backpressure) — a rejected scrubber report is simply re-detected on the
// next sweep, and a rejected foreground reader falls back to an inline
// repair — so a failing device can never grow the funnel without bound.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/recovery_scheduler.h"
#include "recovery/restore_gate.h"
#include "storage/sim_device.h"

namespace spf {

/// Which detection site reported a damaged page into the funnel.
enum class FailureOrigin : uint8_t {
  kForegroundRead = 0,  ///< buffer-pool read path (a waiting reader)
  kScrubber = 1,        ///< background scrubber tick
  kEscalation = 2,      ///< RecoveryScheduler batch-repair escalation
  kExplicit = 3,        ///< direct caller (tests, tools)
};

/// Outcome of one Report call.
enum class ReportResult : uint8_t {
  kAccepted = 0,   ///< newly enqueued
  kCoalesced = 1,  ///< merged into an already pending / in-flight repair
  kRejected = 2,   ///< backpressure: queue at limit (or funnel stopped)
};

struct RecoveryCoordinatorOptions {
  /// Worker threads draining the funnel. One worker maximizes coalescing
  /// (each drain takes the whole pending set); more only help when
  /// reports arrive faster than whole batches repair. Ladder invocations
  /// are serialized regardless — the ladder's bottom rungs (media
  /// recovery) must never run concurrently with themselves.
  uint32_t num_workers = 1;
  /// Maximum PENDING (not yet draining) page count; reports beyond it are
  /// rejected (backpressure).
  uint64_t queue_limit = 1024;
};

/// Lifetime counters (RecoveryCoordinator::totals()).
struct FunnelTotals {
  uint64_t enqueued = 0;          ///< reports accepted as new entries
  uint64_t coalesced = 0;         ///< reports merged into an existing entry
  uint64_t rejected = 0;          ///< reports refused by backpressure
  uint64_t batches = 0;           ///< ladder invocations (drains)
  uint64_t repaired_spr = 0;      ///< pages healed by the single-page rung
  uint64_t repaired_partial = 0;  ///< pages healed by partial media restore
  uint64_t repaired_full = 0;     ///< pages healed by the full-restore rung
  uint64_t skipped_dirty = 0;     ///< pages superseded by a dirty pool copy
  uint64_t escalated_full = 0;    ///< full-restore events (bottom rung)
  uint64_t failed = 0;            ///< pages that stayed unhealed
  uint64_t from_foreground = 0;   ///< non-rejected reports: read path
  uint64_t from_scrubber = 0;     ///< non-rejected reports: scrubber
  uint64_t from_escalation = 0;   ///< non-rejected reports: scheduler sink

  // Per-phase totals of the rung-5 restore-gate protocol (gate → drain →
  // segmented restore → early readmission), accumulated from every gated
  // full restore via NoteGatedRestore — funnel-driven and manual alike.
  uint64_t gated_restores = 0;      ///< full restores run under the gate
  uint64_t txns_drained = 0;        ///< in-flight txns that ran to commit
  uint64_t txns_doomed = 0;         ///< stragglers force-aborted at deadline
  uint64_t deferred_rollbacks = 0;  ///< straggler undos deferred to owners
  uint64_t admission_waits = 0;     ///< faults parked on per-page admission
  uint64_t on_demand_segments = 0;  ///< segments served ahead of the sweep
};

/// What one drained batch's trip through the recovery ladder achieved.
/// Produced by the installed RecoveryLadder (Database adapts its
/// RecoverPagesResult); pages listed in `failures` stayed unhealed, every
/// other page of the batch is considered repaired.
struct FunnelBatchOutcome {
  uint64_t repaired_spr = 0;      ///< healed by coordinated single-page repair
  uint64_t repaired_partial = 0;  ///< healed by partial media restore
  uint64_t repaired_full = 0;     ///< healed by a whole-device restore
  uint64_t skipped_dirty = 0;     ///< dirty buffered copy — nothing was lost
  uint64_t full_restores = 0;     ///< whole-device restore events
  std::vector<PageRepairOutcome> failures;  ///< pages that stayed unhealed
};

/// The escalation ladder a drained batch is pushed through. Receives the
/// deduplicated, sorted damaged set; returns the per-rung outcome, or an
/// error when the whole batch failed (every page is then marked failed).
using RecoveryLadder =
    std::function<StatusOr<FunnelBatchOutcome>(std::vector<PageId>)>;

/// The failure funnel. Thread-safe: any thread may Report; the worker
/// threads drain. Also a PageRepairer so it can be installed directly as
/// the buffer pool's read-path repair hook.
class RecoveryCoordinator : public PageRepairer {
 public:
  /// `ladder` runs on the worker threads; `device` is re-read to refill a
  /// waiting reader's frame after its page was healed in place.
  RecoveryCoordinator(RecoveryLadder ladder, SimDevice* device,
                      RecoveryCoordinatorOptions options);
  /// Stops the workers if still running (failing any pending waiters).
  ~RecoveryCoordinator() override;

  SPF_DISALLOW_COPY(RecoveryCoordinator);

  /// Spawns the worker threads. Idempotent.
  void Start();

  /// Joins the workers (the batch in flight completes first) and fails
  /// every still-pending entry with Aborted so no waiter hangs.
  void Stop();

  /// True between Start and Stop.
  bool running() const;

  /// Reports a damaged page. Never blocks: the repair happens
  /// asynchronously on a worker. kRejected means the queue is at
  /// `queue_limit` (or the funnel is not running) — the caller keeps
  /// ownership of the problem (retry later, repair inline, or escalate).
  ReportResult Report(PageId id, FailureOrigin origin);

  /// Reports `id` and blocks until its repair completes, returning the
  /// repair's status. Concurrent callers for the same page coalesce onto
  /// one in-flight repair. Returns Busy immediately when the report is
  /// rejected by backpressure.
  Status ReportAndWait(PageId id, FailureOrigin origin);

  /// PageRepairer hook (buffer-pool read path): ReportAndWait, then
  /// re-read the healed device copy into `frame` and verify it. Falls
  /// back to the inline repairer (if installed) under backpressure.
  Status RepairPage(PageId id, char* frame) override;

  /// Inline repairer used when a foreground report is rejected by
  /// backpressure (typically the RecoveryScheduler). Install at startup;
  /// not thread-safe against concurrent RepairPage calls.
  void SetInlineFallback(PageRepairer* fallback) { fallback_ = fallback; }

  /// Holds all draining (pending reports accumulate and coalesce) until
  /// Resume. Lets tests and benches build one deterministic batch.
  void Pause();

  /// Releases Pause; the workers drain everything pending as one batch.
  void Resume();

  /// Blocks until nothing is pending and no batch is in flight. The
  /// funnel must be running (or the queue already empty), otherwise this
  /// would wait forever — tests call it after Resume.
  void WaitIdle();

  /// Accumulates one gated full restore's per-phase outcome (drained /
  /// doomed transactions, admission waits, on-demand segments) into the
  /// totals. Called by the database facade after every rung-5 climb, so
  /// the funnel's counters cover manual RecoverMedia calls too.
  void NoteGatedRestore(const RestorePhases& phases);

  /// Lifetime counters snapshot.
  FunnelTotals totals() const;

 private:
  /// One reported page's lifecycle; waiters hold a shared_ptr so the map
  /// entry may be erased while they still read the outcome.
  struct Entry {
    Status status;      ///< valid once done
    bool done = false;  ///< repair finished (either way)
  };

  /// Report under mu_; fills *entry on kAccepted / kCoalesced.
  ReportResult ReportLocked(PageId id, FailureOrigin origin,
                            std::shared_ptr<Entry>* entry);

  /// True on a worker thread while it runs the ladder: a page fault the
  /// ladder itself hits (e.g. full restore fixing pages through the
  /// buffer pool) must repair inline — waiting on this worker's own
  /// queue would self-deadlock.
  static thread_local bool draining_thread_;
  void WorkerLoop();
  /// Applies one ladder outcome to the batch's entries. Caller holds mu_.
  void ResolveBatchLocked(const std::vector<PageId>& batch,
                          const StatusOr<FunnelBatchOutcome>& outcome);

  const RecoveryLadder ladder_;
  SimDevice* const device_;
  const RecoveryCoordinatorOptions options_;
  PageRepairer* fallback_ = nullptr;

  OrderedMutex lifecycle_mu_{LockRank::kLifecycle};  ///< Start/Stop
  OrderedMutex ladder_mu_{LockRank::kLadder};  ///< one climb at a time
  mutable OrderedMutex mu_{LockRank::kFunnel};
  CondVar work_cv_;   ///< wakes workers (reports, stop, resume)
  CondVar done_cv_;   ///< wakes waiters (entry done, idle)
  /// Pending + in-flight failure reports.
  std::unordered_map<PageId, std::shared_ptr<Entry>> entries_
      SPF_GUARDED_BY(mu_);
  std::vector<PageId> pending_ SPF_GUARDED_BY(mu_);  ///< unclaimed reports
  size_t draining_ SPF_GUARDED_BY(mu_) = 0;  ///< batches in the ladder
  bool paused_ SPF_GUARDED_BY(mu_) = false;
  bool stop_ SPF_GUARDED_BY(mu_) = false;
  bool running_ SPF_GUARDED_BY(mu_) = false;
  FunnelTotals totals_ SPF_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace spf
