// PriManager: maintenance and persistence of the page recovery index.
//
// Implements the paper's update protocol (section 5.2.4, Figure 11):
// after the buffer pool completes a data-page write — and before the frame
// may be evicted — PriManager logs ONE PriUpdate record (a system
// transaction's worth of work that is never forced; it reaches stable
// storage with the next forced log write). That single record per
// completed write is exactly the cost of the classic "log completed
// writes" optimization (section 5.1.2), which the PRI subsumes.
//
// PRI pages themselves: each in-memory window maps to one PRI page placed
// by the two-partition scheme (see pri.h). PRI pages are NOT routed
// through the buffer pool; dirty windows are serialized and written
// directly at checkpoints, each write accompanied by an in-log page image
// (its backup) and a PriUpdate for the COVERING entry in the other
// partition — making PRI pages recoverable by the same single-page
// mechanism they implement.

#pragma once

#include <cstdint>
#include <vector>

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "common/sync.h"
#include "core/pri.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"
#include "txn/txn_manager.h"

namespace spf {

/// How completed writes are tracked — the ablation axis of experiments
/// E4/E6.
enum class WriteTrackingMode {
  kNone,             ///< plain ARIES: nothing logged after a write
  kCompletedWrites,  ///< section 5.1.2: kPageWriteCompleted records only
  kPri,              ///< section 5.2.4: full PRI maintenance (default)
};

/// Geometry of the two PRI partitions on the data device.
struct PriLayout {
  uint64_t num_pages = 0;
  uint64_t num_windows = 0;
  uint64_t lower_windows = 0;   ///< windows covering the lower half
  PageId pri_a_start = 0;       ///< partition A extent (covers upper windows)
  uint64_t pri_a_pages = 0;
  PageId pri_b_start = 0;       ///< partition B extent (covers lower windows)
  uint64_t pri_b_pages = 0;

  static PriLayout Compute(uint64_t num_pages);

  /// PRI page that stores window `w`.
  PageId PriPageOfWindow(uint64_t w) const;
  /// Window stored on PRI page `pid`; kInvalidPageId-safe (CHECKs range).
  uint64_t WindowOfPriPage(PageId pid) const;
  bool IsPriPage(PageId pid) const;
  /// First data page id usable by the allocator.
  uint64_t reserved_prefix() const { return pri_a_start + pri_a_pages; }
};

struct PriManagerStats {
  uint64_t pri_updates_logged = 0;
  uint64_t completed_write_records = 0;
  uint64_t page_backups_triggered = 0;
  uint64_t pri_pages_written = 0;
  uint64_t pri_pages_recovered = 0;
};

/// Ties the in-memory PRI to the log, the backup manager, and the buffer
/// pool's write-completion hook.
class PriManager : public WriteCompletionListener {
 public:
  PriManager(PriLayout layout, WriteTrackingMode mode, BackupPolicy policy,
             PageRecoveryIndex* pri, LogManager* log, TxnManager* txns,
             BackupManager* backups, SimDevice* data_device);

  SPF_DISALLOW_COPY(PriManager);

  // --- WriteCompletionListener (Figure 11) -----------------------------------

  bool OnPageWritten(PageId id, Lsn page_lsn, uint32_t update_count,
                     const char* page_data) override;

  /// Announces the backup policy's decision ahead of the device write so
  /// the pool can restart the per-page cadence BEFORE the image (and the
  /// copy OnPageWritten takes from it) is materialized — a repaired page
  /// then carries the same update count as the live frame it replaces.
  bool BackupImminent(uint32_t update_count) const override {
    return mode_ == WriteTrackingMode::kPri &&
           policy_.updates_threshold > 0 &&
           update_count >= policy_.updates_threshold;
  }

  // --- lookups ----------------------------------------------------------------

  PageRecoveryIndex* pri() { return pri_; }
  const PriLayout& layout() const { return layout_; }
  WriteTrackingMode mode() const { return mode_; }

  // --- checkpoint & restart support -------------------------------------------

  /// Writes every dirty window's PRI page directly to the data device,
  /// logging an in-log image (the page's backup) and a covering PriUpdate
  /// in the other partition. Section 5.2.6: only windows dirty at entry
  /// are written (snapshot-then-write; cascading updates wait for the next
  /// checkpoint).
  Status WriteDirtyWindows();

  /// Loads all PRI pages from the device at restart; PRI pages that fail
  /// verification are recovered via the other partition (single-page
  /// recovery of the PRI itself). MediaFailure if both partitions lost
  /// overlapping information.
  Status LoadAllWindows();

  /// Applies one kPriUpdate log record to the in-memory PRI (restart
  /// analysis; also redo of lost PRI updates, Figure 12).
  Status ApplyPriUpdateRecord(const LogRecord& rec);

  /// Records a full backup: collapses the PRI to range entries.
  void OnFullBackup(BackupId id);

  /// Explicitly takes a page backup now (used by tests and the scrubber).
  Status ForcePageBackup(PageId id, const char* page_data, Lsn page_lsn);

  /// Figure 12, third case: restart redo found a page already reflecting a
  /// logged update although no PriUpdate record was seen — the write
  /// completed but its PRI update was lost in the crash. Generates the
  /// missing record now.
  void RecordLostWrite(PageId id, Lsn page_lsn);

  PriManagerStats stats() const;

  /// Per-PRI-page chain head (newest PriUpdate record touching that PRI
  /// page). Exposed for tests.
  Lsn pri_page_lsn(uint64_t window) const;

 private:
  /// Logs a PriUpdate for `data_page_id` on the covering PRI page's chain
  /// and applies it to the in-memory index.
  void LogAndApplyPriUpdate(PageId data_page_id, Lsn page_lsn, bool has_backup,
                            BackupRef backup);

  /// Rebuilds one lost PRI page/window from the other partition's entry.
  Status RecoverPriWindow(uint64_t window);

  /// Builds the on-disk image of a window's PRI page.
  void BuildPriPageImage(uint64_t window, char* out);

  const PriLayout layout_;
  const WriteTrackingMode mode_;
  const BackupPolicy policy_;
  PageRecoveryIndex* const pri_;
  LogManager* const log_;
  TxnManager* const txns_;
  BackupManager* const backups_;
  SimDevice* const data_device_;
  const uint32_t page_size_;

  mutable OrderedMutex mu_{LockRank::kPri};
  /// Per-window chain heads. mu_ is held ACROSS the log append that
  /// extends a chain (rank kPri < kLogState makes that legal): the chain
  /// head must advance atomically with the append or two concurrent
  /// PriUpdate writers would fork the window's chain.
  std::vector<Lsn> pri_page_lsns_ SPF_GUARDED_BY(mu_);
  PriManagerStats stats_ SPF_GUARDED_BY(mu_);
};

}  // namespace spf
