#include "core/scrubber.h"

#include <chrono>

#include "core/recovery_coordinator.h"

namespace spf {

Scrubber::Scrubber(RecoveryScheduler* scheduler, PageAllocator* alloc,
                   BufferPool* pool, SimDevice* device, ReadVerifier* verifier,
                   const BadBlockList* bad_blocks, PriLayout layout,
                   SimClock* clock, ScrubberOptions options)
    : scheduler_(scheduler),
      alloc_(alloc),
      pool_(pool),
      device_(device),
      verifier_(verifier),
      bad_blocks_(bad_blocks),
      layout_(layout),
      clock_(clock),
      options_(options) {}

Scrubber::~Scrubber() { Stop(); }

Status Scrubber::ScanLocked(uint64_t budget, ScrubStats* stats,
                            std::vector<PageId>* failed, bool* wrapped) {
  const uint64_t num_pages = device_->num_pages();
  const uint32_t page_size = device_->page_size();
  PageBuffer buf(page_size);
  *wrapped = false;

  for (uint64_t step = 0;
       step < num_pages && stats->pages_scanned < budget && !*wrapped;
       ++step) {
    PageId p = cursor_;
    cursor_++;
    if (cursor_ >= num_pages) {
      cursor_ = 0;
      // One full pass per call at most: the bottom-of-loop check fires
      // even when this wrap-around page is itself skipped below, so a
      // tick can never run on into a second pass (and sweeps_completed
      // counts exactly one pass per wrap).
      *wrapped = true;
    }
    const bool skip =
        !alloc_->IsAllocated(p) ||
        layout_.IsPriPage(p) ||        // PRI pages have their own recovery
        bad_blocks_->Contains(p) ||    // retired locations are not data
        pool_->IsDirty(p);  // a dirty buffered copy supersedes the device
    if (skip) continue;

    stats->pages_scanned++;
    Status rs = device_->ReadPage(p, buf.data());
    if (rs.IsMediaFailure()) return rs;  // whole device gone: escalate now
    Status vs = rs;
    bool in_page_ok = false;
    if (rs.ok() && options_.verify) {
      PageView page = buf.view();
      vs = page.Verify(p);
      in_page_ok = vs.ok();
      if (vs.ok() && verifier_ != nullptr) {
        vs = verifier_->VerifyOnRead(page);
      }
    }
    if (!vs.ok() && in_page_ok) {
      // The image is internally consistent but failed the cross-check:
      // either a genuinely stale page, or a write-back that completed
      // between the dirty-check above and the device read (the ROADMAP
      // TOCTOU). Re-check against the pool before declaring a failure: a
      // newer (or exclusively latched, i.e. mid-write) buffered copy
      // means the device image is a legitimate earlier state that the
      // in-flight write overwrites — repairing it "backward" here would
      // be wasted work.
      std::optional<Lsn> cached = pool_->CachedPageLsn(p);
      bool in_flux = pool_->IsDirty(p) ||
                     (cached.has_value() &&
                      (*cached == kInvalidLsn ||
                       *cached >= buf.view().page_lsn()));
      if (in_flux) {
        stats->transient_skips++;
        continue;
      }
    }
    if (!vs.ok()) failed->push_back(p);
  }
  return Status::OK();
}

StatusOr<ScrubStats> Scrubber::RunSpanLocked(uint64_t budget, bool is_tick) {
  ScrubStats stats;
  std::vector<PageId> failed;
  bool wrapped = false;
  Status escalation = ScanLocked(budget, &stats, &failed, &wrapped);
  stats.failures_detected = failed.size();

  if (escalation.ok() && !failed.empty() && !options_.repair) {
    escalation = Status::MediaFailure(
        "scrub detected a failed page (" + std::to_string(failed.front()) +
        ") and single-page repair is disabled (escalated)");
    MutexLock g(totals_mu_);
    totals_.escalations += failed.size();
  } else if (escalation.ok() && !failed.empty() && is_tick &&
             funnel_ != nullptr) {
    // Self-healing path: an incremental tick hands its haul to the
    // failure funnel and keeps sweeping; the funnel's worker drains the
    // pages through the full recovery ladder. A rejected report
    // (backpressure) is not an error — the page stays damaged and the
    // next pass re-detects it.
    for (PageId p : failed) {
      if (funnel_->Report(p, FailureOrigin::kScrubber) !=
          ReportResult::kRejected) {
        stats.failures_reported++;
      }
    }
  } else if (escalation.ok() && !failed.empty()) {
    // Synchronous repair. With a funnel installed, report the batch's
    // failures ourselves (NoEscalation avoids a duplicate report through
    // the scheduler's sink) so each report's outcome is accounted
    // exactly: accepted/coalesced pages are self-healing in the
    // background, rejected ones (backpressure) stay damaged and count as
    // escalations until a later sweep re-detects them.
    auto repaired_or = funnel_ != nullptr
                           ? scheduler_->RepairBatchNoEscalation(std::move(failed))
                           : scheduler_->RepairBatch(std::move(failed));
    if (repaired_or.ok()) {
      stats.pages_repaired = repaired_or->repaired;
      uint64_t unreported = repaired_or->failed;
      if (funnel_ != nullptr) {
        for (const PageRepairOutcome& f : repaired_or->failures) {
          if (funnel_->Report(f.page_id, FailureOrigin::kScrubber) !=
              ReportResult::kRejected) {
            stats.failures_reported++;
            unreported--;
          }
        }
      } else if (!repaired_or->failures.empty()) {
        escalation = repaired_or->failures.front().status;
      }
      MutexLock g(totals_mu_);
      totals_.escalations += unreported;
    } else {
      escalation = repaired_or.status();
    }
  }

  // Record progress BEFORE surfacing any escalation: a whole-device
  // failure mid-span must not silently drop the partially scanned pages
  // or the tick from totals().
  {
    MutexLock g(totals_mu_);
    if (is_tick) totals_.ticks++;
    if (wrapped) totals_.sweeps_completed++;
    totals_.pages_scanned += stats.pages_scanned;
    totals_.failures_detected += stats.failures_detected;
    totals_.pages_repaired += stats.pages_repaired;
    totals_.failures_reported += stats.failures_reported;
    totals_.transient_skips += stats.transient_skips;
  }
  if (!escalation.ok()) return escalation;
  return stats;
}

StatusOr<ScrubStats> Scrubber::Tick() {
  if (restore_gate_ != nullptr && restore_gate_->active()) {
    // An incremental full restore owns the device: half-restored pages
    // would all "fail" verification and flood the funnel with reports the
    // restore is about to make moot. Skip the span; the cadence retries
    // after the sweep finishes.
    MutexLock t(totals_mu_);
    totals_.restore_skips++;
    return ScrubStats{};
  }
  MutexLock g(sweep_mu_);
  return RunSpanLocked(options_.pages_per_tick, /*is_tick=*/true);
}

StatusOr<ScrubStats> Scrubber::SweepAll() {
  if (restore_gate_ != nullptr && restore_gate_->active()) {
    // An incremental full restore owns the device. Unlike a background
    // tick (which skips — the cadence retries), a synchronous sweep is
    // a caller waiting for a verification result, so wait the protocol
    // out and then sweep the fully restored device.
    {
      MutexLock t(totals_mu_);
      totals_.restore_waits++;
    }
    restore_gate_->AwaitIdle();
  }
  MutexLock g(sweep_mu_);
  // A full pass from page 0; ScanLocked always wraps with this budget,
  // which is what bumps sweeps_completed.
  cursor_ = 0;
  return RunSpanLocked(device_->num_pages(), /*is_tick=*/false);
}

void Scrubber::Start() {
  if (running_.load()) return;
  stop_.store(false);
  running_.store(true);
  last_tick_ns_ = 0;
  thread_ = std::thread(&Scrubber::BackgroundLoop, this);
}

void Scrubber::Stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

bool Scrubber::running() const { return running_.load(); }

void Scrubber::BackgroundLoop() {
  const uint64_t interval_ns = options_.interval_sim_ms * 1000ull * 1000ull;
  // Wall-clock cadence (when set) overrides the simulated one: under
  // Instant device profiles simulated time never advances, so the
  // simulated cadence would degrade to continuous ticking (old ROADMAP
  // note); the daemon example paces on the host clock instead.
  const bool wall = options_.interval_wall_ms > 0;
  const auto wall_interval = std::chrono::milliseconds(options_.interval_wall_ms);
  auto last_wall = std::chrono::steady_clock::now();
  bool first = true;
  while (!stop_.load()) {
    bool due;
    if (wall) {
      due = first || std::chrono::steady_clock::now() - last_wall >= wall_interval;
    } else {
      due = first || interval_ns == 0 ||
            clock_->NowNanos() - last_tick_ns_ >= interval_ns;
    }
    if (due) {
      first = false;
      // Background errors don't kill the daemon: escalations are counted
      // in totals() and the failed pages stay due for the next pass.
      (void)Tick();
      last_tick_ns_ = clock_->NowNanos();
      last_wall = std::chrono::steady_clock::now();
      if (!wall && interval_ns == 0) {
        // Continuous mode: yield so foreground work can interleave.
        std::this_thread::yield();
      }
    } else {
      // The next tick is not due yet; poll gently.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

ScrubberTotals Scrubber::totals() const {
  MutexLock g(totals_mu_);
  return totals_;
}

}  // namespace spf
