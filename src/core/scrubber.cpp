#include "core/scrubber.h"

#include <chrono>

namespace spf {

Scrubber::Scrubber(RecoveryScheduler* scheduler, PageAllocator* alloc,
                   BufferPool* pool, SimDevice* device, ReadVerifier* verifier,
                   const BadBlockList* bad_blocks, PriLayout layout,
                   SimClock* clock, ScrubberOptions options)
    : scheduler_(scheduler),
      alloc_(alloc),
      pool_(pool),
      device_(device),
      verifier_(verifier),
      bad_blocks_(bad_blocks),
      layout_(layout),
      clock_(clock),
      options_(options) {}

Scrubber::~Scrubber() { Stop(); }

StatusOr<uint64_t> Scrubber::ScanLocked(uint64_t budget,
                                        std::vector<PageId>* failed,
                                        bool* wrapped) {
  const uint64_t num_pages = device_->num_pages();
  const uint32_t page_size = device_->page_size();
  PageBuffer buf(page_size);
  uint64_t scanned = 0;
  *wrapped = false;

  for (uint64_t step = 0; step < num_pages && scanned < budget; ++step) {
    PageId p = cursor_;
    cursor_++;
    if (cursor_ >= num_pages) {
      cursor_ = 0;
      *wrapped = true;
    }
    if (!alloc_->IsAllocated(p)) continue;
    if (layout_.IsPriPage(p)) continue;  // PRI pages have their own recovery
    if (bad_blocks_->Contains(p)) continue;  // retired locations are not data
    // A dirty buffered copy makes the device image legitimately stale.
    if (pool_->IsDirty(p)) continue;

    scanned++;
    Status s = device_->ReadPage(p, buf.data());
    if (s.IsMediaFailure()) return s;  // whole device gone: escalate now
    if (s.ok() && options_.verify) {
      PageView page = buf.view();
      s = page.Verify(p);
      if (s.ok() && verifier_ != nullptr) {
        s = verifier_->VerifyOnRead(page);
      }
    }
    if (!s.ok()) failed->push_back(p);

    if (*wrapped) break;  // one full pass per call at most
  }
  return scanned;
}

StatusOr<ScrubStats> Scrubber::RunSpanLocked(uint64_t budget, bool is_tick) {
  ScrubStats stats;
  std::vector<PageId> failed;
  bool wrapped = false;
  SPF_ASSIGN_OR_RETURN(stats.pages_scanned,
                       ScanLocked(budget, &failed, &wrapped));
  stats.failures_detected = failed.size();

  Status escalation = Status::OK();
  if (!failed.empty() && !options_.repair) {
    escalation = Status::MediaFailure(
        "scrub detected a failed page (" + std::to_string(failed.front()) +
        ") and single-page repair is disabled (escalated)");
    std::lock_guard<std::mutex> g(totals_mu_);
    totals_.escalations += failed.size();
  } else if (!failed.empty()) {
    SPF_ASSIGN_OR_RETURN(BatchRepairResult repaired,
                         scheduler_->RepairBatch(std::move(failed)));
    stats.pages_repaired = repaired.repaired;
    if (!repaired.failures.empty()) {
      escalation = repaired.failures.front().status;
    }
    std::lock_guard<std::mutex> g(totals_mu_);
    totals_.escalations += repaired.failed;
  }

  {
    std::lock_guard<std::mutex> g(totals_mu_);
    if (is_tick) totals_.ticks++;
    if (wrapped) totals_.sweeps_completed++;
    totals_.pages_scanned += stats.pages_scanned;
    totals_.failures_detected += stats.failures_detected;
    totals_.pages_repaired += stats.pages_repaired;
  }
  if (!escalation.ok()) return escalation;
  return stats;
}

StatusOr<ScrubStats> Scrubber::Tick() {
  std::lock_guard<std::mutex> g(sweep_mu_);
  return RunSpanLocked(options_.pages_per_tick, /*is_tick=*/true);
}

StatusOr<ScrubStats> Scrubber::SweepAll() {
  std::lock_guard<std::mutex> g(sweep_mu_);
  // A full pass from page 0; ScanLocked always wraps with this budget,
  // which is what bumps sweeps_completed.
  cursor_ = 0;
  return RunSpanLocked(device_->num_pages(), /*is_tick=*/false);
}

void Scrubber::Start() {
  if (running_.load()) return;
  stop_.store(false);
  running_.store(true);
  last_tick_ns_ = 0;
  thread_ = std::thread(&Scrubber::BackgroundLoop, this);
}

void Scrubber::Stop() {
  if (!running_.load()) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

bool Scrubber::running() const { return running_.load(); }

void Scrubber::BackgroundLoop() {
  const uint64_t interval_ns = options_.interval_sim_ms * 1000ull * 1000ull;
  bool first = true;
  while (!stop_.load()) {
    uint64_t now = clock_->NowNanos();
    if (first || interval_ns == 0 || now - last_tick_ns_ >= interval_ns) {
      first = false;
      // Background errors don't kill the daemon: escalations are counted
      // in totals() and the failed pages stay due for the next pass.
      (void)Tick();
      last_tick_ns_ = clock_->NowNanos();
      if (interval_ns == 0) {
        // Continuous mode: yield so foreground work can interleave.
        std::this_thread::yield();
      }
    } else {
      // Simulated time has not advanced far enough yet; poll gently.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

ScrubberTotals Scrubber::totals() const {
  std::lock_guard<std::mutex> g(totals_mu_);
  return totals_;
}

}  // namespace spf
