// Background scrubber: proactive detection of latent single-page faults.
//
// Bairavasundaram et al. (the paper's [2]) found latent sector errors in
// thousands of drives, a majority surfacing only during reads and "disk
// scrubbing". Cold pages may sit corrupted for months before a foreground
// read would notice — and by then the per-page log chain may be long and
// the backup old. The scrubber sweeps allocated pages INCREMENTALLY in
// the background: each tick verifies a budgeted number of pages directly
// against the device (in-page checks plus the PageLSN-vs-PRI cross-check)
// and hands every detected failure to the RecoveryScheduler as one batch.
//
// Cadence is measured against the simulated clock by default: a
// background thread re-sweeps whenever `interval_sim_ms` of simulated
// time has passed since the last tick (the tick's own device reads
// advance the clock). Under Instant device profiles simulated time never
// advances, so `interval_wall_ms` provides a WALL-clock cadence instead
// (the daemon example paces this way). Foreground use (Database::Scrub())
// is a synchronous full sweep over the same machinery.
//
// Repair routing: a synchronous sweep repairs its haul directly through
// the RecoveryScheduler; failures the batch cannot heal are reported
// into the funnel (when installed) so they self-heal in the background —
// rejected reports (backpressure) count as escalations. BACKGROUND ticks
// with a RecoveryCoordinator installed do not repair at all — they report
// each detected page id into the funnel and keep sweeping; the funnel's
// worker drains them through the full recovery ladder.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/sync.h"
#include "core/pri_manager.h"
#include "core/recovery_scheduler.h"
#include "recovery/restore_gate.h"
#include "storage/allocation.h"
#include "storage/sim_device.h"

namespace spf {

class RecoveryCoordinator;

/// One sweep's worth of counters (returned by Database::Scrub() and
/// Scrubber::Tick()).
struct ScrubStats {
  uint64_t pages_scanned = 0;      ///< pages read and verified this span
  uint64_t failures_detected = 0;  ///< single-page failures found
  uint64_t pages_repaired = 0;     ///< healed synchronously (direct repair)
  /// Detected failures handed to the failure funnel (background ticks with
  /// a RecoveryCoordinator installed); repair happens asynchronously.
  uint64_t failures_reported = 0;
  /// Device images that failed only the cross-check while the pool held a
  /// newer (or in-flux) copy: a write-back racing the scan, not damage.
  uint64_t transient_skips = 0;
};

/// Tuning knobs for the Scrubber.
struct ScrubberOptions {
  /// Page budget per tick (the incremental sweep quantum).
  uint64_t pages_per_tick = 256;
  /// Simulated-time cadence of the background loop; 0 ticks continuously.
  uint64_t interval_sim_ms = 0;
  /// WALL-clock cadence of the background loop; overrides the simulated
  /// cadence when nonzero. Use under Instant device profiles, where
  /// simulated time never advances and the simulated cadence would fall
  /// back to continuous ticking.
  uint64_t interval_wall_ms = 0;
  /// Run in-page verification + cross-check (matches verify_on_read).
  /// Hard read errors are detected either way.
  bool verify = true;
  /// When false (single-page repair disabled), a detected failure
  /// escalates as a media failure instead of being repaired — the
  /// "traditional system" baseline.
  bool repair = true;
};

/// Lifetime totals across all ticks and sweeps.
struct ScrubberTotals {
  uint64_t ticks = 0;             ///< incremental spans run
  uint64_t sweeps_completed = 0;  ///< full passes over the page space
  uint64_t pages_scanned = 0;     ///< pages read and verified
  uint64_t failures_detected = 0; ///< single-page failures found
  uint64_t pages_repaired = 0;    ///< healed synchronously (direct repair)
  uint64_t failures_reported = 0; ///< handed to the failure funnel
  uint64_t transient_skips = 0;   ///< write-back races, not failures
  /// Escalation EVENTS: a page that stays unrepairable is re-detected and
  /// re-counted on every subsequent sweep until it is healed or retired.
  uint64_t escalations = 0;
  /// Ticks skipped because an incremental full restore owned the device
  /// (half-restored pages would flood the funnel with moot reports).
  uint64_t restore_skips = 0;
  /// Synchronous SweepAll() calls that had to wait out an active
  /// restore protocol before sweeping (they wait; ticks skip).
  uint64_t restore_waits = 0;
};

/// The background scrubber (see the file comment for detection/cadence
/// semantics). Thread-safe: the background loop, foreground sweeps, and
/// totals() readers may overlap.
class Scrubber {
 public:
  /// `verifier` may be null (no cross-check); `layout` is copied.
  Scrubber(RecoveryScheduler* scheduler, PageAllocator* alloc,
           BufferPool* pool, SimDevice* device, ReadVerifier* verifier,
           const BadBlockList* bad_blocks, PriLayout layout, SimClock* clock,
           ScrubberOptions options);
  /// Stops the background thread if it is still running.
  ~Scrubber();

  SPF_DISALLOW_COPY(Scrubber);

  /// One budgeted increment from the sweep cursor; detected failures are
  /// repaired as one batch through the scheduler. Returns the tick's
  /// stats; an unrepairable page surfaces as a MediaFailure status AFTER
  /// the rest of the batch was still repaired.
  StatusOr<ScrubStats> Tick();

  /// Synchronous full pass over the whole page space (Database::Scrub()).
  StatusOr<ScrubStats> SweepAll();

  /// Starts the background thread. Idempotent.
  void Start();
  /// Stops the background thread (joins it).
  void Stop();
  /// True between Start and Stop.
  bool running() const;

  /// Installs the failure funnel: incremental ticks report detected page
  /// ids into it instead of repairing synchronously; full sweeps repair
  /// directly and report only the pages the batch could not heal.
  /// Install before Start; may be null (direct repair everywhere).
  void SetFunnel(RecoveryCoordinator* funnel) { funnel_ = funnel; }

  /// Installs the restore gate: background ticks are skipped while an
  /// incremental full restore is active (counted as `restore_skips`),
  /// and a synchronous SweepAll() waits the protocol out before
  /// sweeping (counted as `restore_waits`) — verifying a half-restored
  /// device would flood the funnel with reports the restore makes moot.
  /// Install before Start; may be null.
  void SetRestoreGate(const RestoreGate* gate) { restore_gate_ = gate; }

  /// Lifetime counters snapshot.
  ScrubberTotals totals() const;

 private:
  /// Scans up to `budget` pages from the cursor, stopping at the wrap so
  /// one call never exceeds one full pass; appends failed ids and fills
  /// stats->pages_scanned / stats->transient_skips (kept valid even when
  /// the scan aborts on a whole-device MediaFailure, so partial progress
  /// is never lost). Sets *wrapped when the cursor completed a pass.
  /// Caller holds sweep_mu_.
  Status ScanLocked(uint64_t budget, ScrubStats* stats,
                    std::vector<PageId>* failed, bool* wrapped)
      SPF_REQUIRES(sweep_mu_);
  /// Scan + batch-repair + totals for one span (a tick or a full sweep).
  StatusOr<ScrubStats> RunSpanLocked(uint64_t budget, bool is_tick)
      SPF_REQUIRES(sweep_mu_);
  void BackgroundLoop();

  RecoveryScheduler* const scheduler_;
  RecoveryCoordinator* funnel_ = nullptr;  ///< tick failures report here
  const RestoreGate* restore_gate_ = nullptr;  ///< ticks pause while active
  PageAllocator* const alloc_;
  BufferPool* const pool_;
  SimDevice* const device_;
  ReadVerifier* const verifier_;
  const BadBlockList* const bad_blocks_;
  const PriLayout layout_;
  SimClock* const clock_;
  const ScrubberOptions options_;

  OrderedMutex sweep_mu_{LockRank::kDaemonCadence};  ///< tick/sweep owner
  PageId cursor_ SPF_GUARDED_BY(sweep_mu_) = 0;

  mutable OrderedMutex totals_mu_{LockRank::kStats};
  ScrubberTotals totals_ SPF_GUARDED_BY(totals_mu_);

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  uint64_t last_tick_ns_ = 0;  ///< background thread only
};

}  // namespace spf
