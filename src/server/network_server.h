// NetworkServer: the TCP serving layer over one Database.
//
// Architecture (one IO thread + a fixed worker pool):
//
//   accept loop ──► epoll IO thread ──► frame queue ──► worker pool
//        │                │                                  │
//        │                │  (outer framing only: length     │ decode frame
//        │                │   prefix + size ceiling; bytes   │ begin txn
//        │                │   buffered per connection)       │ apply op list
//        │                │                                  │ commit
//        │                ◄───────── re-arm queue ───────────┘ send reply
//
// The IO thread owns every socket: it accepts connections, reads bytes
// into per-connection buffers, extracts length-prefixed frames, and
// dispatches at most ONE frame per connection at a time to the worker
// queue (responses therefore come back in request order without any
// per-connection locking). A worker decodes the payload, runs the frame
// as one transaction against the Database (see wire.h for the protocol),
// writes the response on the connection's socket, and hands the
// connection back to the IO thread through the re-arm queue — all socket
// registration, deregistration, and closing happens on the IO thread.
//
// Malformed input never kills the server: a payload the decoder rejects
// is answered with a kErrorReply and the connection stays usable (the
// outer framing is still aligned); only an unframeable stream — a length
// prefix beyond kMaxFrameBytes — is answered and then closed, because
// there is no safe way to resynchronize. tests/wire_fuzz_test.cpp and
// tests/server_test.cpp hold the server to this under the sanitizers.
//
// During a rung-5 restore the server needs no special handling: BeginTxn
// parks at the restore gate (counted in ServerStats::gate_parked_commits)
// and with early admission resumes as soon as the sweep starts — clients
// observe a latency bump, not an outage (bench_e16_server measures it).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "db/stats_snapshot.h"
#include "server/wire.h"

namespace spf {

class Database;

/// Tuning knobs of a NetworkServer instance.
struct ServerOptions {
  /// Loopback/interface address to bind (tests and benches use loopback).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Already-bound-and-listening socket to adopt instead of binding
  /// host:port (ownership transfers to the server). Lets tests reserve an
  /// ephemeral port race-free — see testenv::LoopbackListener.
  int listen_fd = -1;
  /// Fixed worker pool size: frames executing concurrently. 0 means 1.
  uint32_t workers = 4;
};

/// TCP server executing wire-protocol transaction frames against one
/// Database. Start/Stop are not thread-safe against each other; the
/// serving fabric itself is fully concurrent. The Database must outlive
/// the server.
class NetworkServer {
 public:
  /// Binds nothing yet; call Start(). `db` must outlive the server.
  NetworkServer(Database* db, ServerOptions options);
  /// Stops the server if it is still running.
  ~NetworkServer();

  NetworkServer(const NetworkServer&) = delete;             ///< not copyable
  NetworkServer& operator=(const NetworkServer&) = delete;  ///< not copyable

  /// Binds (or adopts) the listen socket and spawns the IO thread plus
  /// the worker pool. Fails with IOError when the socket cannot be
  /// bound; the server is then inert and Start may be retried.
  Status Start();

  /// Drains in-flight frames, closes every connection, and joins all
  /// threads. Idempotent. Frames queued before Stop are still executed
  /// and answered; bytes arriving after it are dropped with the socket.
  void Stop();

  /// True between a successful Start and Stop.
  bool running() const { return running_; }

  /// The bound TCP port (the kernel's choice when options.port was 0).
  /// Valid after a successful Start.
  uint16_t port() const { return port_; }

  /// This server's own counters (connections, frames, ops, commits).
  ServerStats server_stats() const;

  /// The engine-wide snapshot with the server block filled in — exactly
  /// what the INFO command serializes.
  StatsSnapshot Stats() const;

 private:
  /// Per-connection state. The IO thread owns everything except `dead`
  /// (set by a worker whose response write failed) and the socket write
  /// side (used by the worker holding the connection's one in-flight
  /// frame; the IO thread never writes to a busy connection and never
  /// closes one until the worker hands it back).
  struct Connection {
    int fd = -1;                    ///< the socket
    std::string inbuf;              ///< bytes read, not yet framed
    bool busy = false;              ///< a worker owns a dispatched frame
    bool registered = false;        ///< currently in the epoll set
    bool peer_gone = false;         ///< EOF/error seen; close once drained
    std::atomic<bool> dead{false};  ///< worker write failed: close on re-arm
  };

  /// One dispatched frame: the owning connection plus its payload bytes.
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::string payload;
  };

  void IoLoop();
  void WorkerLoop();

  // IO-thread helpers.
  void AcceptNewConnections();
  void ReadFromConnection(const std::shared_ptr<Connection>& conn);
  /// Extracts complete frames from `conn->inbuf` and dispatches the next
  /// one if the connection is idle; closes the connection on an
  /// unframeable stream.
  void PumpConnection(const std::shared_ptr<Connection>& conn);
  void RearmReturnedConnections();
  void Register(const std::shared_ptr<Connection>& conn);
  void Deregister(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);

  // Worker helpers.
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   std::string payload);
  wire::TxnReply ExecuteTxn(const wire::TxnRequest& req);
  wire::InfoReply BuildInfo() const;
  /// Writes the complete frame; false when the peer is gone.
  bool SendAll(Connection* conn, std::string_view frame);
  /// Hands the connection back to the IO thread (last use of `conn` on
  /// the worker).
  void ReturnToIo(int fd);

  Database* const db_;
  const ServerOptions options_;

  /// The not-yet-adopted ServerOptions::listen_fd; consumed by the first
  /// Start (a later Start binds a fresh socket — the adopted one was
  /// closed by Stop).
  int adopted_fd_ = -1;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> io_stop_{false};

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Frame queue (IO thread -> workers). Never nested with rearm_mu_
  // (equal rank would abort): each handoff holds exactly one queue lock,
  // and neither is ever held across an engine call.
  OrderedMutex work_mu_{LockRank::kServerQueue};
  CondVar work_cv_;
  std::deque<WorkItem> work_queue_ SPF_GUARDED_BY(work_mu_);
  bool stopping_ SPF_GUARDED_BY(work_mu_) = false;

  // Re-arm queue (workers -> IO thread), drained on event_fd_ wakeups.
  OrderedMutex rearm_mu_{LockRank::kServerQueue};
  std::vector<int> rearm_queue_ SPF_GUARDED_BY(rearm_mu_);

  // IO-thread-only connection registry.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Counters (ServerStats).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_decoded_{0};
  std::atomic<uint64_t> frames_rejected_{0};
  std::atomic<uint64_t> ops_served_{0};
  std::atomic<uint64_t> txns_committed_{0};
  std::atomic<uint64_t> txns_failed_{0};
  std::atomic<uint64_t> info_requests_{0};
  std::atomic<uint64_t> gate_parked_commits_{0};
};

}  // namespace spf
