#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"

namespace spf {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port,
                       int recv_timeout_ms) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IOError("connect failed");
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Client::Execute(const wire::TxnRequest& req, wire::TxnReply* out) {
  Status s = SendFrame(wire::EncodeTxnRequest(req));
  if (!s.ok()) return s;
  wire::Reply reply;
  s = ReadReply(&reply);
  if (!s.ok()) return s;
  if (reply.type == wire::FrameType::kErrorReply) {
    return Status::InvalidArgument(std::string("protocol error: ") +
                                   std::string(wire::WireErrorName(reply.error)) +
                                   " " + reply.error_detail);
  }
  if (reply.type != wire::FrameType::kTxnReply) {
    return Status::Internal("unexpected reply type");
  }
  *out = std::move(reply.txn);
  return Status::OK();
}

Status Client::ExecuteWithRetry(const wire::TxnRequest& req,
                                wire::TxnReply* out, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Status s = Execute(req, out);
    if (!s.ok()) return s;
    if (!out->retryable()) return Status::OK();
    // Linear-capped backoff: contention clears in microseconds, a gated
    // restore in milliseconds; sleeping long helps neither.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(attempt + 1, 10)));
  }
  return Status::OK();  // out holds the last (still retryable) reply
}

Status Client::Info(wire::InfoReply* out) {
  Status s = SendFrame(wire::EncodeInfoRequest());
  if (!s.ok()) return s;
  wire::Reply reply;
  s = ReadReply(&reply);
  if (!s.ok()) return s;
  if (reply.type != wire::FrameType::kInfoReply) {
    return Status::Internal("unexpected reply type");
  }
  *out = std::move(reply.info);
  return Status::OK();
}

Status Client::Put(std::string_view key, std::string_view value) {
  wire::TxnRequest req;
  req.Put(key, value);
  wire::TxnReply reply;
  Status s = ExecuteWithRetry(req, &reply);
  if (!s.ok()) return s;
  if (!reply.ok()) return Status::Internal("put failed: " + reply.message);
  return Status::OK();
}

StatusOr<std::string> Client::Get(std::string_view key) {
  wire::TxnRequest req;
  req.Get(key);
  wire::TxnReply reply;
  Status s = ExecuteWithRetry(req, &reply);
  if (!s.ok()) return s;
  if (!reply.ok()) {
    if (reply.code == Status::Code::kNotFound) {
      return Status::NotFound("key not found");
    }
    return Status::Internal("get failed: " + reply.message);
  }
  return std::move(reply.results[0].value);
}

Status Client::SendRaw(std::string_view bytes) { return SendFrame(bytes); }

Status Client::ReadReply(wire::Reply* out) {
  std::string prefix;
  Status s = ReadExact(wire::kFramingBytes, &prefix);
  if (!s.ok()) return s;
  uint32_t len = DecodeFixed32(prefix.data());
  if (len > wire::kMaxFrameBytes) {
    return Status::Corruption("oversized reply frame");
  }
  std::string payload;
  payload.reserve(len);
  s = ReadExact(len, &payload);
  if (!s.ok()) return s;
  std::string detail;
  wire::WireError err = wire::DecodeReply(payload, out, &detail);
  if (err != wire::WireError::kNone) {
    return Status::Corruption("undecodable reply: " + detail);
  }
  return Status::OK();
}

Status Client::SendFrame(std::string_view frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(fd_, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send failed (connection lost)");
  }
  return Status::OK();
}

Status Client::ReadExact(size_t n, std::string* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  char buf[4096];
  while (n > 0) {
    ssize_t got = recv(fd_, buf, std::min(n, sizeof(buf)), 0);
    if (got > 0) {
      out->append(buf, static_cast<size_t>(got));
      n -= static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) return Status::IOError("connection closed by server");
    return Status::IOError("recv failed or timed out");
  }
  return Status::OK();
}

}  // namespace spf
