#include "server/wire.h"

#include <algorithm>

#include "common/coding.h"

namespace spf {
namespace wire {

namespace {

// Payload header shared by every frame.
constexpr size_t kHeaderBytes = 4 + 1 + 1 + 2;  // magic, version, type, reserved

void PutHeader(std::string* dst, FrameType type) {
  PutFixed32(dst, kMagic);
  dst->push_back(static_cast<char>(kWireVersion));
  dst->push_back(static_cast<char>(type));
  PutFixed16(dst, 0);
}

/// Prepends the outer length framing once the payload is complete.
std::string Frame(std::string payload) {
  std::string out;
  out.reserve(kFramingBytes + payload.size());
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

bool Fail(WireError* code, WireError value, std::string* detail,
          std::string_view why) {
  *code = value;
  if (detail != nullptr) *detail = std::string(why);
  return false;
}

/// Parses and validates the shared header; leaves `*offset` just past it.
bool GetHeader(std::string_view payload, size_t* offset, uint8_t* type,
               WireError* code, std::string* detail) {
  if (payload.size() < kHeaderBytes) {
    return Fail(code, WireError::kMalformed, detail, "payload shorter than header");
  }
  if (DecodeFixed32(payload.data()) != kMagic) {
    return Fail(code, WireError::kBadMagic, detail, "bad magic");
  }
  if (static_cast<uint8_t>(payload[4]) != kWireVersion) {
    return Fail(code, WireError::kBadVersion, detail, "unsupported wire version");
  }
  *type = static_cast<uint8_t>(payload[5]);
  if (DecodeFixed16(payload.data() + 6) != 0) {
    return Fail(code, WireError::kMalformed, detail, "nonzero reserved field");
  }
  *offset = kHeaderBytes;
  return true;
}

bool ValidOpKind(uint8_t k) {
  return k >= static_cast<uint8_t>(WireOp::kPut) &&
         k <= static_cast<uint8_t>(WireOp::kScan);
}

bool IsWriteOp(WireOp op) {
  return op == WireOp::kPut || op == WireOp::kInsert || op == WireOp::kUpdate;
}

}  // namespace

std::string_view WireErrorName(WireError e) {
  switch (e) {
    case WireError::kNone:       return "OK";
    case WireError::kMalformed:  return "MALFORMED";
    case WireError::kBadMagic:   return "BAD_MAGIC";
    case WireError::kBadVersion: return "BAD_VERSION";
    case WireError::kBadType:    return "BAD_TYPE";
    case WireError::kOversized:  return "OVERSIZED";
    case WireError::kShutdown:   return "SHUTDOWN";
  }
  return "?";
}

std::string EncodeTxnRequest(const TxnRequest& req) {
  std::string p;
  PutHeader(&p, FrameType::kTxnRequest);
  PutFixed16(&p, static_cast<uint16_t>(req.keys.size()));
  PutFixed16(&p, static_cast<uint16_t>(req.ops.size()));
  for (const std::string& key : req.keys) PutLengthPrefixed(&p, key);
  for (const TxnOp& op : req.ops) {
    p.push_back(static_cast<char>(op.kind));
    switch (op.kind) {
      case WireOp::kPut:
      case WireOp::kInsert:
      case WireOp::kUpdate:
        PutFixed16(&p, op.key);
        PutLengthPrefixed(&p, op.value);
        break;
      case WireOp::kDelete:
      case WireOp::kGet:
        PutFixed16(&p, op.key);
        break;
      case WireOp::kScan:
        PutFixed16(&p, op.key);
        PutFixed16(&p, op.end_key);
        PutFixed32(&p, op.limit);
        break;
    }
  }
  return Frame(std::move(p));
}

std::string EncodeInfoRequest() {
  std::string p;
  PutHeader(&p, FrameType::kInfoRequest);
  return Frame(std::move(p));
}

std::string EncodeTxnReply(const TxnReply& reply) {
  std::string p;
  PutHeader(&p, FrameType::kTxnReply);
  p.push_back(static_cast<char>(reply.kind));
  p.push_back(static_cast<char>(reply.code));
  PutFixed16(&p, reply.failed_op);
  PutLengthPrefixed(&p, reply.message);
  PutFixed16(&p, static_cast<uint16_t>(reply.results.size()));
  for (const OpResult& r : reply.results) {
    p.push_back(static_cast<char>(r.kind));
    if (r.kind == WireOp::kGet) {
      PutLengthPrefixed(&p, r.value);
    } else if (r.kind == WireOp::kScan) {
      PutFixed32(&p, static_cast<uint32_t>(r.pairs.size()));
      for (const auto& [k, v] : r.pairs) {
        PutLengthPrefixed(&p, k);
        PutLengthPrefixed(&p, v);
      }
    }
  }
  return Frame(std::move(p));
}

std::string EncodeInfoReply(const InfoReply& reply) {
  std::string p;
  PutHeader(&p, FrameType::kInfoReply);
  PutFixed32(&p, reply.stats_version);
  PutFixed32(&p, static_cast<uint32_t>(reply.counters.size()));
  for (const auto& [name, value] : reply.counters) {
    PutLengthPrefixed(&p, name);
    PutFixed64(&p, value);
  }
  return Frame(std::move(p));
}

std::string EncodeErrorReply(WireError error, std::string_view detail) {
  std::string p;
  PutHeader(&p, FrameType::kErrorReply);
  p.push_back(static_cast<char>(error));
  PutLengthPrefixed(&p, detail);
  return Frame(std::move(p));
}

WireError DecodeRequest(std::string_view payload, Request* out,
                        std::string* detail) {
  WireError code = WireError::kNone;
  size_t off = 0;
  uint8_t type = 0;
  if (!GetHeader(payload, &off, &type, &code, detail)) return code;

  if (type == static_cast<uint8_t>(FrameType::kInfoRequest)) {
    if (off != payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "trailing bytes after INFO");
      return code;
    }
    out->type = FrameType::kInfoRequest;
    out->txn = TxnRequest();
    return WireError::kNone;
  }
  if (type != static_cast<uint8_t>(FrameType::kTxnRequest)) {
    Fail(&code, WireError::kBadType, detail, "not a request frame type");
    return code;
  }

  TxnRequest req;
  uint16_t key_count = 0, op_count = 0;
  if (!GetFixed16(payload, &off, &key_count) ||
      !GetFixed16(payload, &off, &op_count)) {
    Fail(&code, WireError::kMalformed, detail, "truncated counts");
    return code;
  }
  req.keys.reserve(key_count);
  for (uint16_t i = 0; i < key_count; ++i) {
    std::string_view key;
    if (!GetLengthPrefixed(payload, &off, &key)) {
      Fail(&code, WireError::kMalformed, detail, "truncated key table");
      return code;
    }
    req.keys.emplace_back(key);
  }
  req.ops.reserve(op_count);
  for (uint16_t i = 0; i < op_count; ++i) {
    if (off >= payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "truncated op list");
      return code;
    }
    uint8_t kind = static_cast<uint8_t>(payload[off++]);
    if (!ValidOpKind(kind)) {
      Fail(&code, WireError::kMalformed, detail, "unknown op kind");
      return code;
    }
    TxnOp op;
    op.kind = static_cast<WireOp>(kind);
    if (!GetFixed16(payload, &off, &op.key)) {
      Fail(&code, WireError::kMalformed, detail, "truncated op key");
      return code;
    }
    if (op.key >= key_count) {
      Fail(&code, WireError::kMalformed, detail, "op key index out of range");
      return code;
    }
    if (IsWriteOp(op.kind)) {
      std::string_view value;
      if (!GetLengthPrefixed(payload, &off, &value)) {
        Fail(&code, WireError::kMalformed, detail, "truncated op value");
        return code;
      }
      op.value.assign(value);
    } else if (op.kind == WireOp::kScan) {
      if (!GetFixed16(payload, &off, &op.end_key) ||
          !GetFixed32(payload, &off, &op.limit)) {
        Fail(&code, WireError::kMalformed, detail, "truncated scan bounds");
        return code;
      }
      if (op.end_key != kNoKey && op.end_key >= key_count) {
        Fail(&code, WireError::kMalformed, detail, "scan end index out of range");
        return code;
      }
    }
    req.ops.push_back(std::move(op));
  }
  if (off != payload.size()) {
    Fail(&code, WireError::kMalformed, detail, "trailing bytes after op list");
    return code;
  }
  out->type = FrameType::kTxnRequest;
  out->txn = std::move(req);
  return WireError::kNone;
}

WireError DecodeReply(std::string_view payload, Reply* out,
                      std::string* detail) {
  WireError code = WireError::kNone;
  size_t off = 0;
  uint8_t type = 0;
  if (!GetHeader(payload, &off, &type, &code, detail)) return code;

  if (type == static_cast<uint8_t>(FrameType::kErrorReply)) {
    if (off >= payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "truncated error reply");
      return code;
    }
    uint8_t err = static_cast<uint8_t>(payload[off++]);
    if (err == 0 || err > static_cast<uint8_t>(WireError::kShutdown)) {
      Fail(&code, WireError::kMalformed, detail, "unknown protocol error code");
      return code;
    }
    std::string_view msg;
    if (!GetLengthPrefixed(payload, &off, &msg) || off != payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "truncated error detail");
      return code;
    }
    out->type = FrameType::kErrorReply;
    out->error = static_cast<WireError>(err);
    out->error_detail.assign(msg);
    return WireError::kNone;
  }

  if (type == static_cast<uint8_t>(FrameType::kInfoReply)) {
    InfoReply info;
    uint32_t count = 0;
    if (!GetFixed32(payload, &off, &info.stats_version) ||
        !GetFixed32(payload, &off, &count)) {
      Fail(&code, WireError::kMalformed, detail, "truncated INFO header");
      return code;
    }
    info.counters.reserve(std::min<uint32_t>(count, 1024));
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view name;
      uint64_t value = 0;
      if (!GetLengthPrefixed(payload, &off, &name) ||
          !GetFixed64(payload, &off, &value)) {
        Fail(&code, WireError::kMalformed, detail, "truncated INFO counter");
        return code;
      }
      info.counters.emplace_back(std::string(name), value);
    }
    if (off != payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "trailing bytes after INFO");
      return code;
    }
    out->type = FrameType::kInfoReply;
    out->info = std::move(info);
    return WireError::kNone;
  }

  if (type != static_cast<uint8_t>(FrameType::kTxnReply)) {
    Fail(&code, WireError::kBadType, detail, "not a reply frame type");
    return code;
  }

  TxnReply reply;
  if (off + 2 > payload.size()) {
    Fail(&code, WireError::kMalformed, detail, "truncated reply status");
    return code;
  }
  uint8_t kind = static_cast<uint8_t>(payload[off++]);
  uint8_t status_code = static_cast<uint8_t>(payload[off++]);
  if (kind > static_cast<uint8_t>(TxnError::Kind::kFatal) ||
      status_code > static_cast<uint8_t>(Status::Code::kInternal)) {
    Fail(&code, WireError::kMalformed, detail, "unknown status byte");
    return code;
  }
  reply.kind = static_cast<TxnError::Kind>(kind);
  reply.code = static_cast<Status::Code>(status_code);
  std::string_view msg;
  uint16_t result_count = 0;
  if (!GetFixed16(payload, &off, &reply.failed_op) ||
      !GetLengthPrefixed(payload, &off, &msg) ||
      !GetFixed16(payload, &off, &result_count)) {
    Fail(&code, WireError::kMalformed, detail, "truncated reply header");
    return code;
  }
  reply.message.assign(msg);
  reply.results.reserve(result_count);
  for (uint16_t i = 0; i < result_count; ++i) {
    if (off >= payload.size()) {
      Fail(&code, WireError::kMalformed, detail, "truncated result list");
      return code;
    }
    uint8_t rkind = static_cast<uint8_t>(payload[off++]);
    if (!ValidOpKind(rkind)) {
      Fail(&code, WireError::kMalformed, detail, "unknown result kind");
      return code;
    }
    OpResult r;
    r.kind = static_cast<WireOp>(rkind);
    if (r.kind == WireOp::kGet) {
      std::string_view value;
      if (!GetLengthPrefixed(payload, &off, &value)) {
        Fail(&code, WireError::kMalformed, detail, "truncated get result");
        return code;
      }
      r.value.assign(value);
    } else if (r.kind == WireOp::kScan) {
      uint32_t pairs = 0;
      if (!GetFixed32(payload, &off, &pairs)) {
        Fail(&code, WireError::kMalformed, detail, "truncated scan result");
        return code;
      }
      r.pairs.reserve(std::min<uint32_t>(pairs, kMaxScanResults));
      for (uint32_t j = 0; j < pairs; ++j) {
        std::string_view k, v;
        if (!GetLengthPrefixed(payload, &off, &k) ||
            !GetLengthPrefixed(payload, &off, &v)) {
          Fail(&code, WireError::kMalformed, detail, "truncated scan pair");
          return code;
        }
        r.pairs.emplace_back(std::string(k), std::string(v));
      }
    }
    reply.results.push_back(std::move(r));
  }
  if (off != payload.size()) {
    Fail(&code, WireError::kMalformed, detail, "trailing bytes after results");
    return code;
  }
  out->type = FrameType::kTxnReply;
  out->txn = std::move(reply);
  return WireError::kNone;
}

std::vector<std::pair<std::string, uint64_t>> FlattenStats(
    const StatsSnapshot& s) {
  std::vector<std::pair<std::string, uint64_t>> c;
  c.reserve(48);
  auto add = [&c](const char* name, uint64_t value) {
    c.emplace_back(name, value);
  };
  add("pool.fixes", s.pool.fixes);
  add("pool.hits", s.pool.hits);
  add("pool.misses", s.pool.misses);
  add("pool.verify_failures", s.pool.verify_failures);
  add("pool.repairs_succeeded", s.pool.repairs_succeeded);
  add("spr.repairs_attempted", s.spr.repairs_attempted);
  add("spr.repairs_succeeded", s.spr.repairs_succeeded);
  add("scheduler.batches", s.scheduler.batches);
  add("scheduler.pages_repaired", s.scheduler.pages_repaired);
  add("scrubber.pages_scanned", s.scrubber.pages_scanned);
  add("scrubber.failures_detected", s.scrubber.failures_detected);
  add("funnel.enqueued", s.funnel.enqueued);
  add("funnel.coalesced", s.funnel.coalesced);
  add("funnel.batches", s.funnel.batches);
  add("funnel.repaired_spr", s.funnel.repaired_spr);
  add("funnel.repaired_partial", s.funnel.repaired_partial);
  add("funnel.repaired_full", s.funnel.repaired_full);
  add("funnel.skipped_dirty", s.funnel.skipped_dirty);
  add("funnel.failed", s.funnel.failed);
  add("funnel.gated_restores", s.funnel.gated_restores);
  add("funnel.txns_drained", s.funnel.txns_drained);
  add("funnel.txns_doomed", s.funnel.txns_doomed);
  add("funnel.admission_waits", s.funnel.admission_waits);
  add("funnel.on_demand_segments", s.funnel.on_demand_segments);
  add("locks.acquisitions", s.locks.acquisitions);
  add("locks.waits", s.locks.waits);
  add("locks.timeouts", s.locks.timeouts);
  add("locks.keys_tracked", s.locks.keys_tracked);
  add("log.records_appended", s.log.records_appended);
  add("log.forces", s.log.forces);
  add("log.group_commit_batches", s.log.group_commit_batches);
  add("log.group_commit_commits", s.log.group_commit_commits);
  add("archive.runs_written", s.archive.runs_written);
  add("archive.records_archived", s.archive.records_archived);
  add("archive.archived_upto", s.archive.archived_upto);
  add("archive.active_runs", s.archive.active_runs);
  add("restore_admission_waits", s.restore_admission_waits);
  add("cross_checks", s.cross_checks);
  add("cross_check_mismatches", s.cross_check_mismatches);
  add("server.connections_accepted", s.server.connections_accepted);
  add("server.connections_closed", s.server.connections_closed);
  add("server.frames_decoded", s.server.frames_decoded);
  add("server.frames_rejected", s.server.frames_rejected);
  add("server.ops_served", s.server.ops_served);
  add("server.txns_committed", s.server.txns_committed);
  add("server.txns_failed", s.server.txns_failed);
  add("server.info_requests", s.server.info_requests);
  add("server.gate_parked_commits", s.server.gate_parked_commits);
  return c;
}

}  // namespace wire
}  // namespace spf
