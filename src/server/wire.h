// Wire protocol of the network serving layer: compact binary frames
// carrying single-shot transactions.
//
// Every request frame is one transaction: the server begins a fresh
// transaction, applies the op list in order, and commits — the response
// carries per-op results or the TxnError-taxonomy classification of the
// failure, so clients retry retryable() outcomes by resending the frame
// (a resent frame is a FRESH transaction, so frame-level retries also
// absorb kDoomed: the restore that doomed the old transaction admits the
// new one as soon as the gate reopens).
//
// Frame layout (all integers little-endian, fixed width):
//
//   [u32 payload_len][payload]                    outer framing
//
//   payload header (every frame, both directions):
//     u32 magic      'S''P''F''W'
//     u8  version    kWireVersion
//     u8  type       FrameType
//     u16 reserved   must be zero
//
//   kTxnRequest:  u16 key_count, u16 op_count,
//                 key_count x [u32 len][key bytes]          (the key table)
//                 op_count  x op                            (see WireOp)
//   kInfoRequest: (header only)
//   kTxnReply:    u8 TxnError::Kind, u8 Status::Code, u16 failed_op,
//                 [u32 len][status message],
//                 u16 result_count, result_count x per-op result
//   kInfoReply:   u32 stats_version, u32 count,
//                 count x ([u32 len][counter name][u64 value])
//   kErrorReply:  u8 WireError, [u32 len][detail]
//
// Ops reference keys by index into the frame's key table (a key used by
// several ops is shipped once). Decode is bounds-checked end to end: any
// truncated, oversized, or inconsistent frame yields a WireError, never a
// crash or an out-of-bounds read — tests/wire_fuzz_test.cpp holds the
// codec to that under ASan/UBSan. Encode∘decode is identity on valid
// frames (round-trip stability, same test).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "db/stats_snapshot.h"
#include "db/txn_error.h"

namespace spf {
namespace wire {

/// Frame magic: rejects non-protocol bytes before any other parsing.
constexpr uint32_t kMagic = 0x57465053u;  // "SPFW" little-endian
/// Protocol version carried in every frame header.
constexpr uint8_t kWireVersion = 1;
/// Hard ceiling on a frame payload; a larger length prefix is rejected
/// without buffering (protects the server from memory-exhaustion frames).
constexpr uint32_t kMaxFrameBytes = 4u << 20;
/// Bytes of outer framing in front of every payload (the u32 length).
constexpr uint32_t kFramingBytes = 4;
/// Key-table index meaning "the empty key" (open scan bound).
constexpr uint16_t kNoKey = 0xFFFF;
/// `TxnReply::failed_op` value when no specific op failed (success, or
/// the commit itself failed after every op succeeded).
constexpr uint16_t kNoFailedOp = 0xFFFF;
/// Per-scan result ceiling; a request limit of 0 (or anything larger) is
/// clamped here so one frame cannot marshal an unbounded reply.
constexpr uint32_t kMaxScanResults = 4096;

/// Frame discriminator (header `type` byte).
enum class FrameType : uint8_t {
  kTxnRequest = 1,   ///< one single-shot transaction (client -> server)
  kInfoRequest = 2,  ///< stats snapshot request (client -> server)
  kTxnReply = 3,     ///< transaction outcome + per-op results
  kInfoReply = 4,    ///< serialized StatsSnapshot counters
  kErrorReply = 5,   ///< protocol-level rejection (frame never executed)
};

/// Op verbs of a transaction frame. Write verbs carry a value; kScan
/// carries a second key index and a result limit.
enum class WireOp : uint8_t {
  kPut = 1,     ///< insert-or-update        (key, value)
  kInsert = 2,  ///< insert-only             (key, value)
  kUpdate = 3,  ///< update-only             (key, value)
  kDelete = 4,  ///< delete                  (key)
  kGet = 5,     ///< locked point read       (key)
  kScan = 6,    ///< locked range scan       (start key, end key, limit)
};

/// Protocol-level rejection codes (kErrorReply). A frame answered with
/// one of these was never executed as a transaction.
enum class WireError : uint8_t {
  kNone = 0,        ///< not an error (decode succeeded)
  kMalformed = 1,   ///< truncated, trailing bytes, bad index, bad count
  kBadMagic = 2,    ///< first four payload bytes are not kMagic
  kBadVersion = 3,  ///< header version != kWireVersion
  kBadType = 4,     ///< header type is not a known request/reply type
  kOversized = 5,   ///< length prefix exceeds kMaxFrameBytes
  kShutdown = 6,    ///< server is stopping; retry against a live server
};

/// Stable name of a WireError ("MALFORMED", ...) for logs and tests.
std::string_view WireErrorName(WireError e);

/// One op of a transaction frame. `key` indexes the frame's key table;
/// `end_key` and `limit` are meaningful for kScan only (kNoKey = open
/// bound); `value` rides along for the write verbs.
struct TxnOp {
  WireOp kind = WireOp::kPut;  ///< the verb
  uint16_t key = 0;            ///< key-table index (scan: start bound)
  uint16_t end_key = kNoKey;   ///< scan end bound (kNoKey = to the last key)
  uint32_t limit = 0;          ///< scan result cap (0 = kMaxScanResults)
  std::string value;           ///< payload of the write verbs
};

/// One single-shot transaction: a deduplicated key table plus the op
/// list executed in order under one transaction.
struct TxnRequest {
  std::vector<std::string> keys;  ///< the key table ops index into
  std::vector<TxnOp> ops;         ///< executed in order, then committed

  /// Stages a key and returns its table index (no deduplication — callers
  /// wanting key sharing pass the same index twice).
  uint16_t AddKey(std::string_view key) {
    keys.emplace_back(key);
    return static_cast<uint16_t>(keys.size() - 1);
  }
  /// Stages an insert-or-update of `key` to `value`.
  void Put(std::string_view key, std::string_view value) {
    ops.push_back({WireOp::kPut, AddKey(key), kNoKey, 0, std::string(value)});
  }
  /// Stages an insert-only of `key` (fails the frame if it exists).
  void Insert(std::string_view key, std::string_view value) {
    ops.push_back({WireOp::kInsert, AddKey(key), kNoKey, 0, std::string(value)});
  }
  /// Stages an update-only of `key` (fails the frame if it is missing).
  void Update(std::string_view key, std::string_view value) {
    ops.push_back({WireOp::kUpdate, AddKey(key), kNoKey, 0, std::string(value)});
  }
  /// Stages a delete of `key`.
  void Delete(std::string_view key) {
    ops.push_back({WireOp::kDelete, AddKey(key), kNoKey, 0, std::string()});
  }
  /// Stages a locked point read of `key`.
  void Get(std::string_view key) {
    ops.push_back({WireOp::kGet, AddKey(key), kNoKey, 0, std::string()});
  }
  /// Scan [start, end) delivering at most `limit` pairs (0 = the protocol
  /// ceiling); empty `end` scans to the last key.
  void Scan(std::string_view start, std::string_view end, uint32_t limit) {
    uint16_t e = end.empty() ? kNoKey : AddKey(end);
    ops.push_back({WireOp::kScan, AddKey(start), e, limit, std::string()});
  }
};

/// One op's result inside a kTxnReply. Write verbs carry nothing beyond
/// their presence (the op succeeded); kGet carries the value; kScan the
/// delivered pairs.
struct OpResult {
  WireOp kind = WireOp::kPut;  ///< echo of the op's verb
  std::string value;           ///< kGet: the value read
  /// kScan: delivered (key, value) pairs in key order.
  std::vector<std::pair<std::string, std::string>> pairs;
};

/// Outcome of one transaction frame. `error.ok()` means the transaction
/// committed and `results` has one entry per op; otherwise `failed_op`
/// names the op that failed (kNoFailedOp = the commit itself) and
/// `results` covers the ops that succeeded before it.
struct TxnReply {
  TxnError::Kind kind = TxnError::Kind::kNone;  ///< classified outcome
  Status::Code code = Status::Code::kOk;        ///< underlying status code
  uint16_t failed_op = kNoFailedOp;             ///< index of the failing op
  std::string message;                          ///< status message (may be empty)
  std::vector<OpResult> results;                ///< per-op results, in op order

  /// True when the frame's transaction committed.
  bool ok() const { return kind == TxnError::Kind::kNone; }
  /// True when resending the same frame may succeed: transient contention
  /// or a doomed transaction (the resent frame is a FRESH transaction,
  /// admitted once the restore gate reopens).
  bool retryable() const {
    return kind == TxnError::Kind::kTransient || kind == TxnError::Kind::kDoomed;
  }
};

/// Serialized StatsSnapshot: the version stamp plus named counters.
struct InfoReply {
  uint32_t stats_version = 0;  ///< StatsSnapshot::kVersion of the server
  /// (counter name, value) pairs — see FlattenStats for the name set.
  std::vector<std::pair<std::string, uint64_t>> counters;

  /// Value of `name`, or `fallback` when the counter is absent.
  uint64_t Counter(std::string_view name, uint64_t fallback = 0) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return fallback;
  }
};

/// A decoded request frame: exactly one of the request types.
struct Request {
  FrameType type = FrameType::kTxnRequest;  ///< which request arrived
  TxnRequest txn;                           ///< filled for kTxnRequest
};

/// A decoded reply frame: exactly one of the reply types (`error` is set
/// for kErrorReply, with the detail in `error_detail`).
struct Reply {
  FrameType type = FrameType::kTxnReply;  ///< which reply arrived
  TxnReply txn;                           ///< filled for kTxnReply
  InfoReply info;                         ///< filled for kInfoReply
  WireError error = WireError::kNone;     ///< filled for kErrorReply
  std::string error_detail;               ///< human-readable rejection detail
};

// --- encode (returns the complete frame: length prefix + payload) -----------

/// Encodes a transaction request frame.
std::string EncodeTxnRequest(const TxnRequest& req);
/// Encodes an INFO request frame.
std::string EncodeInfoRequest();
/// Encodes a transaction reply frame.
std::string EncodeTxnReply(const TxnReply& reply);
/// Encodes an INFO reply frame.
std::string EncodeInfoReply(const InfoReply& reply);
/// Encodes a protocol-error reply frame.
std::string EncodeErrorReply(WireError error, std::string_view detail);

// --- decode (payload only, after outer length framing) ----------------------

/// Decodes a request payload. Returns kNone and fills `out` on success;
/// any malformation returns the rejection code (with a human-readable
/// explanation in `detail` when non-null) and leaves `out` unspecified.
WireError DecodeRequest(std::string_view payload, Request* out,
                        std::string* detail = nullptr);

/// Decodes a reply payload (client side). Same contract as DecodeRequest;
/// a well-formed kErrorReply decodes successfully (the protocol error it
/// carries lands in out->error, not in the return value).
WireError DecodeReply(std::string_view payload, Reply* out,
                      std::string* detail = nullptr);

// --- stats ------------------------------------------------------------------

/// Flattens a StatsSnapshot into the named counters the INFO command
/// ships: the complete server block plus the load-bearing counters of
/// every engine component (pool, repair, scrubber, funnel, locks, log,
/// archive, cross-check).
std::vector<std::pair<std::string, uint64_t>> FlattenStats(
    const StatsSnapshot& s);

}  // namespace wire
}  // namespace spf
