// Client: a minimal blocking TCP client for the wire protocol.
//
// One Client is one connection issuing one frame at a time (request,
// then response — the server guarantees in-order replies, and a
// single-shot frame never interleaves). Not thread-safe: give each
// client thread its own Client. ExecuteWithRetry implements the
// protocol's retry contract: resend the frame while the reply is
// retryable() (transient contention, or a transaction doomed by a
// restore — the resent frame is a fresh transaction admitted once the
// gate reopens).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/wire.h"

namespace spf {

/// Blocking wire-protocol client over one TCP connection.
class Client {
 public:
  /// An unconnected client; call Connect().
  Client() = default;
  /// Closes the connection if still open.
  ~Client();

  Client(const Client&) = delete;             ///< not copyable
  Client& operator=(const Client&) = delete;  ///< not copyable

  /// Connects to host:port. `recv_timeout_ms` bounds every response wait
  /// (0 = wait forever); generous by default so tests never hang.
  Status Connect(const std::string& host, uint16_t port,
                 int recv_timeout_ms = 30000);

  /// Closes the connection. Idempotent.
  void Close();

  /// True between a successful Connect and Close.
  bool connected() const { return fd_ >= 0; }

  /// The connection's socket (tests use it to kill a client mid-frame).
  int fd() const { return fd_; }

  /// Executes one transaction frame. Returns non-OK only on transport or
  /// protocol failure (connection lost, malformed reply, kErrorReply);
  /// a transaction that executed and FAILED is an OK return with the
  /// failure classified in `out` (check out->ok() / out->retryable()).
  Status Execute(const wire::TxnRequest& req, wire::TxnReply* out);

  /// Execute with the protocol's frame-level retry loop: resends the
  /// frame while the reply is retryable(), backing off a few ms between
  /// attempts. Returns OK once a non-retryable reply lands (committed or
  /// hard failure — inspect `out`); IOError/protocol errors propagate.
  Status ExecuteWithRetry(const wire::TxnRequest& req, wire::TxnReply* out,
                          int max_attempts = 256);

  /// Fetches the server's stats snapshot via the INFO command.
  Status Info(wire::InfoReply* out);

  /// Convenience single-op frame: Put(key, value) with retry.
  Status Put(std::string_view key, std::string_view value);

  /// Convenience single-op frame: Get(key) with retry. NotFound when the
  /// key does not exist (the server classifies that as kUser).
  StatusOr<std::string> Get(std::string_view key);

  /// Ships raw bytes verbatim (fuzz tests use this to send garbage that
  /// the encode API cannot produce).
  Status SendRaw(std::string_view bytes);

  /// Reads one complete reply frame and decodes it. IOError when the
  /// server closed the connection or the response wait timed out.
  Status ReadReply(wire::Reply* out);

 private:
  Status SendFrame(std::string_view frame);
  /// Reads exactly `n` bytes into `out` (appending).
  Status ReadExact(size_t n, std::string* out);

  int fd_ = -1;
};

}  // namespace spf
