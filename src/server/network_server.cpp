#include "server/network_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "db/database.h"

namespace spf {

namespace {

constexpr int kEpollTimeoutMs = 100;   // stop-flag poll cadence
constexpr int kSendTimeoutMs = 5000;   // bound on a stalled response write
constexpr int kListenBacklog = 128;

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

NetworkServer::NetworkServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)), adopted_fd_(options_.listen_fd) {}

NetworkServer::~NetworkServer() { Stop(); }

Status NetworkServer::Start() {
  if (running_) return Status::FailedPrecondition("server already running");

  if (adopted_fd_ >= 0) {
    listen_fd_ = adopted_fd_;
    adopted_fd_ = -1;  // Stop closes it; a later Start binds fresh
    SetNonBlocking(listen_fd_);
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Status::IOError("socket() failed");
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad host address");
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listen_fd_, kListenBacklog) != 0) {
      close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("bind/listen failed");
    }
  }

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (event_fd_ >= 0) close(event_fd_);
    close(listen_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = event_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  {
    MutexLock g(work_mu_);
    stopping_ = false;
    work_queue_.clear();
  }
  {
    MutexLock g(rearm_mu_);
    rearm_queue_.clear();
  }
  io_stop_ = false;

  uint32_t workers = std::max<uint32_t>(1, options_.workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  running_ = true;
  return Status::OK();
}

void NetworkServer::Stop() {
  if (!running_) return;
  // Drain order: workers finish every queued frame first (so accepted
  // frames are still answered), then the IO thread closes the sockets.
  {
    MutexLock g(work_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  io_stop_ = true;
  uint64_t one = 1;
  ssize_t ignored = write(event_fd_, &one, sizeof(one));
  (void)ignored;
  io_thread_.join();
  close(listen_fd_);
  close(epoll_fd_);
  close(event_fd_);
  listen_fd_ = epoll_fd_ = event_fd_ = -1;
  running_ = false;
}

ServerStats NetworkServer::server_stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_closed = connections_closed_.load();
  s.frames_decoded = frames_decoded_.load();
  s.frames_rejected = frames_rejected_.load();
  s.ops_served = ops_served_.load();
  s.txns_committed = txns_committed_.load();
  s.txns_failed = txns_failed_.load();
  s.info_requests = info_requests_.load();
  s.gate_parked_commits = gate_parked_commits_.load();
  return s;
}

StatsSnapshot NetworkServer::Stats() const {
  StatsSnapshot s = db_->Stats();
  s.server = server_stats();
  return s;
}

// --- IO thread ---------------------------------------------------------------

void NetworkServer::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!io_stop_) {
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, kEpollTimeoutMs);
    for (int i = 0; i < n && !io_stop_; ++i) {
      int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNewConnections();
      } else if (fd == event_fd_) {
        uint64_t drained;
        while (read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        RearmReturnedConnections();
      } else {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        std::shared_ptr<Connection> conn = it->second;
        ReadFromConnection(conn);
        if (conns_.count(fd) != 0 && !conn->peer_gone) PumpConnection(conn);
      }
    }
  }
  // Teardown: every remaining connection closes with the server. Workers
  // are already joined, so no connection is busy anymore.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (auto& conn : remaining) CloseConnection(conn);
}

void NetworkServer::AcceptNewConnections() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a transient accept error: retry later
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_[fd] = conn;
    connections_accepted_++;
    Register(conn);
  }
}

void NetworkServer::ReadFromConnection(const std::shared_ptr<Connection>& conn) {
  char buf[4096];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EOF or hard error. Honor the half-close: complete frames already
    // buffered still execute and get their replies (a client may shut
    // down its write side and read the acks). Deregister so
    // level-triggered EPOLLIN stops firing; the re-arm path closes the
    // connection once the buffered frames drain.
    Deregister(conn);
    conn->peer_gone = true;
    if (!conn->busy) {
      PumpConnection(conn);
      if (conns_.count(conn->fd) != 0 && !conn->busy) CloseConnection(conn);
    }
    return;
  }
}

void NetworkServer::PumpConnection(const std::shared_ptr<Connection>& conn) {
  while (!conn->busy) {
    if (conn->inbuf.size() < wire::kFramingBytes) return;
    uint32_t len = DecodeFixed32(conn->inbuf.data());
    if (len > wire::kMaxFrameBytes) {
      // Unframeable stream: no way to resynchronize past a lying length
      // prefix. Answer (best effort — the connection is idle, so the IO
      // thread owns the write side) and close.
      frames_rejected_++;
      std::string reply = wire::EncodeErrorReply(wire::WireError::kOversized,
                                                 "frame exceeds size ceiling");
      SendAll(conn.get(), reply);
      CloseConnection(conn);
      return;
    }
    if (conn->inbuf.size() < wire::kFramingBytes + len) return;
    std::string payload = conn->inbuf.substr(wire::kFramingBytes, len);
    conn->inbuf.erase(0, wire::kFramingBytes + len);
    conn->busy = true;  // one frame in flight per connection
    {
      MutexLock g(work_mu_);
      if (stopping_) return;  // frame dropped with the socket at teardown
      work_queue_.push_back(WorkItem{conn, std::move(payload)});
    }
    work_cv_.notify_one();
  }
}

void NetworkServer::RearmReturnedConnections() {
  std::vector<int> returned;
  {
    MutexLock g(rearm_mu_);
    returned.swap(rearm_queue_);
  }
  for (int fd : returned) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    std::shared_ptr<Connection> conn = it->second;
    conn->busy = false;
    if (conn->dead.load()) {
      CloseConnection(conn);
      continue;
    }
    // Pipelined frames already buffered dispatch immediately (including
    // the half-close drain of a departed peer); otherwise re-arm in the
    // epoll set — or finish closing if the peer is gone and drained.
    PumpConnection(conn);
    if (conns_.count(fd) == 0 || conn->busy) continue;
    if (conn->peer_gone) {
      CloseConnection(conn);
    } else {
      Register(conn);
    }
  }
}

void NetworkServer::Register(const std::shared_ptr<Connection>& conn) {
  if (conn->registered) return;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
    conn->registered = true;
  }
}

void NetworkServer::Deregister(const std::shared_ptr<Connection>& conn) {
  if (!conn->registered) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->registered = false;
}

void NetworkServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  Deregister(conn);
  close(conn->fd);
  conns_.erase(conn->fd);
  connections_closed_++;
}

// --- workers ----------------------------------------------------------------

void NetworkServer::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      UniqueLock g(work_mu_);
      while (!stopping_ && work_queue_.empty()) work_cv_.wait(g);
      if (work_queue_.empty()) return;  // stopping_ && drained
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    HandleFrame(item.conn, std::move(item.payload));
  }
}

void NetworkServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                                std::string payload) {
  wire::Request req;
  std::string detail;
  wire::WireError err = wire::DecodeRequest(payload, &req, &detail);
  std::string reply;
  if (err != wire::WireError::kNone) {
    frames_rejected_++;
    reply = wire::EncodeErrorReply(err, detail);
  } else {
    frames_decoded_++;
    if (req.type == wire::FrameType::kInfoRequest) {
      info_requests_++;
      reply = wire::EncodeInfoReply(BuildInfo());
    } else {
      reply = wire::EncodeTxnReply(ExecuteTxn(req.txn));
    }
  }
  if (!SendAll(conn.get(), reply)) conn->dead.store(true);
  ReturnToIo(conn->fd);  // last use of the connection on this thread
}

wire::TxnReply NetworkServer::ExecuteTxn(const wire::TxnRequest& req) {
  wire::TxnReply reply;
  // Approximate but load-bearing observability: a Begin issued while the
  // rung-5 protocol is active parks at the admission gate (with early
  // admission, only until the restore sweep starts).
  if (db_->restore_gate()->active()) gate_parked_commits_++;

  Txn txn = db_->BeginTxn();
  auto fail = [&](uint16_t op_idx, const TxnError& e) {
    reply.kind = e.kind();
    reply.code = e.status().code();
    reply.failed_op = op_idx;
    reply.message = std::string(e.status().message());
    txns_failed_++;
  };

  for (size_t i = 0; i < req.ops.size(); ++i) {
    const wire::TxnOp& op = req.ops[i];
    ops_served_++;
    const std::string& key = req.keys[op.key];
    TxnError e;
    wire::OpResult result;
    result.kind = op.kind;
    switch (op.kind) {
      case wire::WireOp::kPut:
        e = txn.Put(key, op.value);
        break;
      case wire::WireOp::kInsert:
        e = txn.Insert(key, op.value);
        break;
      case wire::WireOp::kUpdate:
        e = txn.Update(key, op.value);
        break;
      case wire::WireOp::kDelete:
        e = txn.Delete(key);
        break;
      case wire::WireOp::kGet: {
        StatusOr<std::string> v = txn.Get(key);
        if (v.ok()) {
          result.value = std::move(*v);
        } else {
          e = txn.last_error();
          if (e.ok()) e = TxnError::Classify(v.status(), txn.doomed(), false);
        }
        break;
      }
      case wire::WireOp::kScan: {
        uint32_t limit = op.limit == 0
                             ? wire::kMaxScanResults
                             : std::min(op.limit, wire::kMaxScanResults);
        std::string_view end = op.end_key == wire::kNoKey
                                   ? std::string_view()
                                   : std::string_view(req.keys[op.end_key]);
        Status s = txn.Scan(key, end,
                            [&result, limit](std::string_view k,
                                             std::string_view v) {
                              result.pairs.emplace_back(std::string(k),
                                                        std::string(v));
                              return result.pairs.size() < limit;
                            });
        if (!s.ok()) {
          e = txn.last_error();
          if (e.ok()) e = TxnError::Classify(s, txn.doomed(), false);
        }
        break;
      }
    }
    if (!e.ok()) {
      fail(static_cast<uint16_t>(i), e);
      return reply;  // dropping `txn` auto-aborts and releases its locks
    }
    reply.results.push_back(std::move(result));
  }

  TxnError commit = txn.Commit();
  if (!commit.ok()) {
    fail(wire::kNoFailedOp, commit);
    return reply;
  }
  txns_committed_++;
  return reply;
}

wire::InfoReply NetworkServer::BuildInfo() const {
  wire::InfoReply info;
  info.stats_version = StatsSnapshot::kVersion;
  info.counters = wire::FlattenStats(Stats());
  return info;
}

bool NetworkServer::SendAll(Connection* conn, std::string_view frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = send(conn->fd, frame.data() + sent, frame.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{conn->fd, POLLOUT, 0};
      if (poll(&p, 1, kSendTimeoutMs) <= 0) return false;
      continue;
    }
    return false;  // peer gone (EPIPE, ECONNRESET, ...)
  }
  return true;
}

void NetworkServer::ReturnToIo(int fd) {
  {
    MutexLock g(rearm_mu_);
    rearm_queue_.push_back(fd);
  }
  uint64_t one = 1;
  ssize_t ignored = write(event_fd_, &one, sizeof(one));
  (void)ignored;
}

}  // namespace spf
