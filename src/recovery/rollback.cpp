#include "recovery/rollback.h"

namespace spf {

StatusOr<RollbackStats> RollbackExecutor::Rollback(Transaction* txn) {
  RollbackStats stats;
  SPF_RETURN_IF_ERROR(txns_->BeginAbort(txn));

  Lsn cur = txn->undo_next_lsn();
  // The abort record itself just extended the chain; skip non-content
  // records while walking backward.
  while (cur != kInvalidLsn) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(cur));
    stats.records_visited++;
    switch (rec.type) {
      case LogRecordType::kCompensation:
        // Already-compensated suffix (partial rollback before a crash):
        // jump over everything between the CLR and its original record.
        cur = rec.undo_next_lsn;
        stats.clr_skips++;
        break;
      case LogRecordType::kBTreeInsert:
      case LogRecordType::kBTreeMarkGhost:
      case LogRecordType::kBTreeUpdate:
        SPF_RETURN_IF_ERROR(tree_->UndoRecord(txn, rec));
        stats.records_undone++;
        cur = rec.prev_lsn;
        break;
      default:
        // Abort records, begin markers, etc. — nothing to compensate.
        cur = rec.prev_lsn;
        break;
    }
  }
  txns_->FinishAbort(txn);
  return stats;
}

}  // namespace spf
