#include "recovery/rollback.h"

namespace spf {

StatusOr<RollbackStats> RollbackExecutor::Rollback(Transaction* txn) {
  RollbackStats stats;
  SPF_RETURN_IF_ERROR(txns_->BeginAbort(txn));

  Lsn cur = txn->undo_next_lsn();
  // The abort record itself just extended the chain; skip non-content
  // records while walking backward.
  while (cur != kInvalidLsn) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(cur));
    stats.records_visited++;
    switch (rec.type) {
      case LogRecordType::kCompensation:
        // Already-compensated suffix (partial rollback before a crash):
        // jump over everything between the CLR and its original record.
        cur = rec.undo_next_lsn;
        stats.clr_skips++;
        break;
      case LogRecordType::kBTreeInsert:
      case LogRecordType::kBTreeMarkGhost:
      case LogRecordType::kBTreeUpdate:
        SPF_RETURN_IF_ERROR(tree_->UndoRecord(txn, rec));
        stats.records_undone++;
        cur = rec.prev_lsn;
        break;
      default:
        // Abort records, begin markers, etc. — nothing to compensate.
        cur = rec.prev_lsn;
        break;
    }
  }
  txns_->FinishAbort(txn);
  return stats;
}

StatusOr<RollbackStats> RollbackExecutor::RollbackTo(Transaction* txn,
                                                     Lsn savepoint) {
  RollbackStats stats;
  // LSNs grow monotonically, so "after the savepoint" is a simple
  // comparison; kInvalidLsn (0) makes the condition "the whole chain".
  Lsn cur = txn->undo_next_lsn();
  while (cur != kInvalidLsn && cur > savepoint) {
    SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(cur));
    stats.records_visited++;
    switch (rec.type) {
      case LogRecordType::kCompensation:
        cur = rec.undo_next_lsn;
        stats.clr_skips++;
        break;
      case LogRecordType::kBTreeInsert:
      case LogRecordType::kBTreeMarkGhost:
      case LogRecordType::kBTreeUpdate:
        SPF_RETURN_IF_ERROR(tree_->UndoRecord(txn, rec));
        stats.records_undone++;
        cur = rec.prev_lsn;
        break;
      default:
        cur = rec.prev_lsn;
        break;
    }
  }
  // Re-anchor the undo cursor at the savepoint: a later full rollback
  // starts below the compensated suffix directly (the CLR chain would
  // skip it anyway — this just avoids the walk).
  txn->set_undo_next_lsn(cur);
  return stats;
}

}  // namespace spf
