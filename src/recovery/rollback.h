// Transaction rollback via the per-transaction log chain (paper section
// 5.1.1), shared by runtime aborts and restart undo.

#pragma once

#include "btree/btree.h"
#include "log/log_manager.h"
#include "txn/txn_manager.h"

namespace spf {

struct RollbackStats {
  uint64_t records_visited = 0;
  uint64_t records_undone = 0;
  uint64_t clr_skips = 0;
};

/// Walks a transaction's chain backward, logging a compensation record for
/// each content update (logical undo through the B-tree), honoring
/// undo_next_lsn so a rollback interrupted by a crash resumes where it
/// stopped rather than compensating twice.
class RollbackExecutor {
 public:
  RollbackExecutor(LogManager* log, BTree* tree, TxnManager* txns)
      : log_(log), tree_(tree), txns_(txns) {}

  /// Full rollback: logs the abort record, undoes every remaining update,
  /// logs the end record, releases locks, retires the transaction.
  StatusOr<RollbackStats> Rollback(Transaction* txn);

  /// Partial rollback to a savepoint (WriteBatch atomicity): undoes the
  /// chain suffix strictly AFTER `savepoint` (a previous last_lsn of
  /// `txn`; kInvalidLsn = everything), logging compensation records, and
  /// leaves the transaction ACTIVE with its locks — no abort record, no
  /// retirement. The CLRs' undo_next chain jumps over the compensated
  /// suffix, so a later full rollback or restart undo never compensates
  /// it twice.
  StatusOr<RollbackStats> RollbackTo(Transaction* txn, Lsn savepoint);

 private:
  LogManager* const log_;
  BTree* const tree_;
  TxnManager* const txns_;
};

}  // namespace spf
