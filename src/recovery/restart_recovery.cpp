#include "recovery/restart_recovery.h"

#include <unordered_set>

#include "btree/btree_log.h"
#include "common/coding.h"

namespace spf {

bool RestartRecovery::IsPageRedoType(LogRecordType type) {
  switch (type) {
    case LogRecordType::kPageFormat:
    case LogRecordType::kBTreeInsert:
    case LogRecordType::kBTreeMarkGhost:
    case LogRecordType::kBTreeUpdate:
    case LogRecordType::kBTreeReclaimGhost:
    case LogRecordType::kBTreeSplit:
    case LogRecordType::kBTreeAdopt:
    case LogRecordType::kBTreeGrowRoot:
    case LogRecordType::kPageMigrate:
    case LogRecordType::kCompensation:
      return true;
    default:
      return false;
  }
}

StatusOr<RestartStats> RestartRecovery::Run() {
  RestartStats stats;
  dpt_.clear();
  losers_.clear();
  redo_scan_floor_ = kInvalidLsn;

  // The PRI must be available before redo so that single-page failures
  // encountered while reading pages for redo can be repaired online
  // (section 5.2.5).
  if (pri_manager_ != nullptr) {
    SPF_RETURN_IF_ERROR(pri_manager_->LoadAllWindows());
  }

  {
    SimTimer t(clock_);
    SPF_RETURN_IF_ERROR(Analysis(&stats));
    stats.analysis_sim_seconds = t.ElapsedSeconds();
  }
  {
    SimTimer t(clock_);
    SPF_RETURN_IF_ERROR(Redo(&stats));
    stats.redo_sim_seconds = t.ElapsedSeconds();
  }
  {
    SimTimer t(clock_);
    SPF_RETURN_IF_ERROR(Undo(&stats));
    stats.undo_sim_seconds = t.ElapsedSeconds();
  }
  return stats;
}

Status RestartRecovery::Analysis(RestartStats* stats) {
  Lsn start = log_->GetMasterRecord();
  if (start == kInvalidLsn) start = log_->first_lsn();
  stats->analysis_start = start;

  // Transactions whose finish record (commit, or an abort's end) the scan
  // has already passed. A checkpoint's txn table is snapshotted before its
  // end record is appended, so a transaction that finished in that window
  // can appear in the table even though its finish record precedes the
  // checkpoint record — without this set, the table would resurrect it as
  // a loser and undo a committed transaction.
  std::unordered_set<TxnId> finished;

  for (auto it = log_->Scan(start); it.Valid(); it.Next()) {
    const LogRecord& rec = it.record();
    stats->analysis_records++;

    // Loser tracking (user transactions only; system transactions are
    // redo-only and never undone — see DESIGN.md).
    if (rec.txn_id != kInvalidTxnId && !rec.is_system_txn()) {
      switch (rec.type) {
        case LogRecordType::kCommitTxn:
        case LogRecordType::kEndTxn:
          losers_.erase(rec.txn_id);
          finished.insert(rec.txn_id);
          break;
        default: {
          LoserInfo& info = losers_[rec.txn_id];
          info.last_lsn = rec.lsn;
          info.undo_next = rec.type == LogRecordType::kCompensation
                               ? rec.undo_next_lsn
                               : rec.lsn;
          break;
        }
      }
      if (rec.txn_id != kInvalidTxnId) {
        txns_->SetNextTxnId(rec.txn_id + 1);
      }
    }

    switch (rec.type) {
      case LogRecordType::kCheckpointEnd: {
        SPF_ASSIGN_OR_RETURN(CheckpointEndBody body,
                             CheckpointEndBody::Decode(rec.body));
        for (const auto& e : body.dpt) {
          auto cur = dpt_.find(e.page_id);
          if (cur == dpt_.end() || e.rec_lsn < cur->second) {
            dpt_[e.page_id] = e.rec_lsn;
          }
          if (redo_scan_floor_ == kInvalidLsn || e.rec_lsn < redo_scan_floor_) {
            redo_scan_floor_ = e.rec_lsn;
          }
        }
        for (const auto& t : body.txn_table) {
          if (t.is_system) continue;
          if (finished.count(t.txn_id)) continue;
          if (losers_.find(t.txn_id) == losers_.end()) {
            LoserInfo info;
            info.last_lsn = t.last_lsn;
            info.undo_next = t.last_lsn;
            losers_[t.txn_id] = info;
          }
        }
        SPF_RETURN_IF_ERROR(alloc_->Deserialize(body.allocator_image));
        SPF_RETURN_IF_ERROR(bbl_->Deserialize(body.bad_blocks_image));
        txns_->SetNextTxnId(body.next_txn_id);
        break;
      }
      case LogRecordType::kPriUpdate: {
        stats->write_certifications_seen++;
        Lsn certified = kInvalidLsn;
        PageId data_page = kInvalidPageId;
        if (pri_manager_ != nullptr) {
          SPF_RETURN_IF_ERROR(pri_manager_->ApplyPriUpdateRecord(rec));
        }
        auto body_or = DecodePriUpdate(rec.body);
        if (body_or.ok()) {
          certified = body_or->page_lsn;
          data_page = body_or->data_page_id;
        }
        // Figure 12: the certified write cancels recovery requirements up
        // to the certified PageLSN. Implemented as raising the recLSN past
        // it (records after the write still replay).
        if (data_page != kInvalidPageId) {
          auto cur = dpt_.find(data_page);
          if (cur != dpt_.end() && cur->second <= certified) {
            cur->second = certified + 1;
          }
        }
        break;
      }
      case LogRecordType::kPageWriteCompleted: {
        stats->write_certifications_seen++;
        size_t off = 0;
        uint64_t certified;
        if (GetFixed64(rec.body, &off, &certified)) {
          auto cur = dpt_.find(rec.page_id);
          if (cur != dpt_.end() && cur->second <= certified) {
            cur->second = certified + 1;
          }
        }
        break;
      }
      case LogRecordType::kPageFormat:
        alloc_->MarkAllocated(rec.page_id);
        if (dpt_.find(rec.page_id) == dpt_.end()) {
          dpt_[rec.page_id] = rec.lsn;
          if (redo_scan_floor_ == kInvalidLsn ||
              rec.lsn < redo_scan_floor_) {
            redo_scan_floor_ = rec.lsn;
          }
        }
        // The formatting record is the page's first backup source
        // (section 5.2.1); re-register it in the PRI.
        if (pri_manager_ != nullptr) {
          pri_manager_->pri()->RecordBackup(
              rec.page_id, {BackupKind::kFormatRecord, rec.lsn});
        }
        break;
      case LogRecordType::kPageFree:
        alloc_->MarkFree(rec.page_id);
        dpt_.erase(rec.page_id);
        break;
      case LogRecordType::kBadBlock:
        bbl_->Add(rec.page_id);
        break;
      default:
        if (IsPageRedoType(rec.type) && rec.page_id != kInvalidPageId) {
          if (dpt_.find(rec.page_id) == dpt_.end()) {
            dpt_[rec.page_id] = rec.lsn;
            if (redo_scan_floor_ == kInvalidLsn ||
                rec.lsn < redo_scan_floor_) {
              redo_scan_floor_ = rec.lsn;
            }
          }
        }
        break;
    }
  }
  stats->dpt_entries_after_analysis = dpt_.size();
  stats->losers = losers_.size();
  return Status::OK();
}

Status RestartRecovery::Redo(RestartStats* stats) {
  if (dpt_.empty()) return Status::OK();
  // The scan must start at a record boundary that is <= every record any
  // DPT entry still demands. Raised (certified) recLSNs are mid-record
  // markers used only for per-record filtering below; the floor tracks
  // the boundary minimum.
  Lsn redo_start = redo_scan_floor_;
  if (redo_start == kInvalidLsn || redo_start >= log_->tail_lsn()) {
    return Status::OK();
  }
  if (redo_start < log_->first_lsn()) redo_start = log_->first_lsn();

  BufferPoolStats pool_before = pool_->stats();
  std::set<PageId> lost_updates_regenerated;

  for (auto it = log_->Scan(redo_start); it.Valid(); it.Next()) {
    const LogRecord& rec = it.record();
    if (!IsPageRedoType(rec.type) || rec.page_id == kInvalidPageId) continue;
    stats->redo_records_considered++;

    auto dpt_it = dpt_.find(rec.page_id);
    if (dpt_it == dpt_.end() || rec.lsn < dpt_it->second) {
      // The write-certification optimization (Figure 4): no page read at
      // all for this record.
      stats->redo_skipped_by_dpt++;
      continue;
    }

    // Fix the page. Formats rebuild the frame without a device read; any
    // other record reads (and, if necessary, repairs) the current image.
    PageGuard guard;
    if (rec.type == LogRecordType::kPageFormat && !pool_->IsCached(rec.page_id)) {
      SPF_ASSIGN_OR_RETURN(guard, pool_->FixNewPage(rec.page_id));
    } else {
      SPF_ASSIGN_OR_RETURN(guard,
                           pool_->FixPage(rec.page_id, LatchMode::kExclusive));
    }

    PageView page = guard.view();
    if (rec.type != LogRecordType::kPageFormat &&
        page.page_lsn() >= rec.lsn) {
      stats->redo_skipped_by_page_lsn++;
      // Figure 12, third row: the page reflects the update although
      // analysis saw no certification that raised the recLSN past it —
      // the write completed but its PRI update was lost. Generate it.
      if (pri_manager_ != nullptr &&
          lost_updates_regenerated.insert(rec.page_id).second) {
        pri_manager_->RecordLostWrite(rec.page_id, page.page_lsn());
        stats->lost_pri_updates_regenerated++;
      }
      continue;
    }
    if (rec.type != LogRecordType::kPageFormat) {
      // Defensive redo-sequence check (section 5.1.4): the per-page chain
      // pointer must match the PageLSN about to be overwritten.
      if (rec.page_prev_lsn != page.page_lsn()) {
        return Status::Corruption(
            "redo sequence check failed on page " +
            std::to_string(rec.page_id) + ": PageLSN " +
            std::to_string(page.page_lsn()) + ", record expects " +
            std::to_string(rec.page_prev_lsn));
      }
    }
    guard.MarkDirtyForRedo(rec.lsn);
    SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
    page.set_page_lsn(rec.lsn);
    // Match the live path's per-record bump so the redone image is
    // byte-identical to the pre-crash one.
    page.bump_update_count();
    stats->redo_applied++;
  }

  BufferPoolStats pool_after = pool_->stats();
  stats->redo_page_reads = pool_after.misses - pool_before.misses;
  stats->pages_repaired_during_redo =
      pool_after.repairs_succeeded - pool_before.repairs_succeeded;
  return Status::OK();
}

Status RestartRecovery::Undo(RestartStats* stats) {
  RollbackExecutor rollback(log_, tree_, txns_);
  for (const auto& [txn_id, info] : losers_) {
    Transaction* txn = txns_->AdoptLoser(txn_id, info.last_lsn, info.undo_next);
    SPF_ASSIGN_OR_RETURN(RollbackStats rb, rollback.Rollback(txn));
    stats->undo_records += rb.records_undone;
  }
  return Status::OK();
}

}  // namespace spf
