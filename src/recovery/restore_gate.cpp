#include "recovery/restore_gate.h"

namespace spf {

void RestoreGate::BeginProtocol() {
  MutexLock g(mu_);
  protocol_ = true;
  active_.store(true, std::memory_order_release);
}

void RestoreGate::EndProtocol() {
  {
    MutexLock g(mu_);
    protocol_ = false;
    active_.store(running_ || sealed_, std::memory_order_release);
  }
  // Wake AwaitIdle waiters (the synchronous scrubber sweep).
  restored_cv_.notify_all();
}

void RestoreGate::AwaitIdle() const {
  UniqueLock g(mu_);
  while (protocol_ || sealed_ || running_) restored_cv_.wait(g);
}

void RestoreGate::SealAdmission() {
  MutexLock g(mu_);
  sealed_ = true;
  active_.store(true, std::memory_order_release);
}

void RestoreGate::BeginRestore(uint64_t num_pages, uint64_t segment_pages) {
  {
    MutexLock g(mu_);
    SPF_CHECK(!running_) << "nested BeginRestore";
    epoch_++;
    num_pages_ = num_pages;
    segment_pages_ = std::max<uint64_t>(segment_pages, 1);
    num_segments_ = (num_pages_ + segment_pages_ - 1) / segment_pages_;
    seg_state_.assign(num_segments_, kPending);
    demanded_.assign(num_segments_, 0);
    demand_.clear();
    next_seq_ = 0;
    segments_done_ = 0;
    final_status_ = Status::OK();
    stat_on_demand_ = 0;
    stat_waits_ = 0;
    first_admission_sim_s_ = -1;
    restore_start_sim_s_ = clock_->NowSeconds();
    running_ = true;
    active_.store(true, std::memory_order_release);
  }
  // Faults parked on the seal move on to their segment waits (and
  // register their segments for on-demand service).
  restored_cv_.notify_all();
}

bool RestoreGate::ClaimNextSegment(uint64_t* segment, bool* on_demand) {
  MutexLock g(mu_);
  while (!demand_.empty()) {
    uint64_t s = demand_.front();
    demand_.pop_front();
    if (seg_state_[s] == kPending) {
      seg_state_[s] = kClaimed;
      stat_on_demand_++;
      *segment = s;
      *on_demand = true;
      return true;
    }
  }
  while (next_seq_ < num_segments_ && seg_state_[next_seq_] != kPending) {
    next_seq_++;
  }
  if (next_seq_ >= num_segments_) return false;
  seg_state_[next_seq_] = kClaimed;
  *segment = next_seq_;
  *on_demand = false;
  return true;
}

void RestoreGate::MarkSegmentRestored(uint64_t segment) {
  uint64_t done, total;
  {
    MutexLock g(mu_);
    SPF_CHECK_LT(segment, num_segments_);
    seg_state_[segment] = kRestored;
    segments_done_++;
    if (demanded_[segment] && first_admission_sim_s_ < 0) {
      // The sweep-side timestamp, not the waiter's wake-up time: the
      // admission decision is deterministic even when the woken thread is
      // scheduled late.
      first_admission_sim_s_ = clock_->NowSeconds() - restore_start_sim_s_;
    }
    done = segments_done_;
    total = num_segments_;
  }
  restored_cv_.notify_all();
  if (observer_) observer_(done, total);
}

void RestoreGate::EndRestore(Status final_status) {
  {
    MutexLock g(mu_);
    running_ = false;
    sealed_ = false;
    final_status_ = std::move(final_status);
    active_.store(protocol_, std::memory_order_release);
  }
  restored_cv_.notify_all();
}

Status RestoreGate::AwaitRestored(PageId id) {
  if (!active_.load(std::memory_order_acquire)) return Status::OK();
  UniqueLock lk(mu_);
  for (;;) {
    const uint64_t epoch = epoch_;
    if (running_) {
      if (id >= num_pages_) return Status::OK();
      const uint64_t seg = id / segment_pages_;
      if (seg_state_[seg] == kRestored) return Status::OK();
      stat_waits_++;
      if (!demanded_[seg]) {
        demanded_[seg] = 1;
        demand_.push_back(seg);
      }
      // The epoch guards the predicate: a waiter that loses its wake-up
      // race to the NEXT restore's BeginRestore must not index the
      // reassigned seg_state_ (the new restore may have fewer segments).
      while (!(epoch_ != epoch || !running_ ||
               seg_state_[seg] == kRestored)) {
        restored_cv_.wait(lk);
      }
      if (epoch_ != epoch) continue;  // a new restore took over; re-evaluate
      if (seg_state_[seg] == kRestored) return Status::OK();
      // The restore ended without reaching this segment: propagate its
      // error (a successful EndRestore implies every segment was restored
      // first).
      if (final_status_.ok()) {
        return Status::MediaFailure("restore ended before page " +
                                    std::to_string(id) + " was recovered");
      }
      return final_status_;
    }
    if (sealed_) {
      // Admission is sealed between the replay-plan scan and the sweep
      // start. A record logged here would be missing from the plan while
      // its page's segment still gets overwritten by the sweep; a read
      // here would load a checksum-valid but STALE image from the
      // revived device (updates that lived only in discarded dirty
      // frames exist solely in the log until the sweep replays them) and
      // poison the cache past the restore. Park until the sweep begins
      // (then wait for the segment above) or the restore gives up.
      restored_cv_.wait(
          lk, [&] { return epoch_ != epoch || running_ || !sealed_; });
      continue;
    }
    return Status::OK();
  }
}

PageId RestoreGate::watermark() const {
  MutexLock g(mu_);
  if (num_segments_ == 0) return kInvalidPageId;
  for (uint64_t s = 0; s < num_segments_; ++s) {
    if (seg_state_[s] != kRestored) return s * segment_pages_;
  }
  return num_pages_;
}

bool RestoreGate::IsRestored(PageId id) const {
  if (!active_.load(std::memory_order_acquire)) return true;
  MutexLock g(mu_);
  // Sealed but not yet sweeping: no page is trustworthy (the revived
  // device serves pre-failure images the plan scan has yet to replay).
  if (sealed_ && !running_) return false;
  if (!running_ || id >= num_pages_) return true;
  return seg_state_[id / segment_pages_] == kRestored;
}

uint64_t RestoreGate::on_demand_segments() const {
  MutexLock g(mu_);
  return stat_on_demand_;
}

uint64_t RestoreGate::admission_waits() const {
  MutexLock g(mu_);
  return stat_waits_;
}

double RestoreGate::first_admission_sim_seconds() const {
  MutexLock g(mu_);
  return first_admission_sim_s_;
}

}  // namespace spf
