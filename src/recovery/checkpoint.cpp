#include "recovery/checkpoint.h"

#include "common/coding.h"

namespace spf {

std::string CheckpointEndBody::Encode() const {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(dpt.size()));
  for (const auto& e : dpt) {
    PutFixed64(&out, e.page_id);
    PutFixed64(&out, e.rec_lsn);
  }
  PutFixed32(&out, static_cast<uint32_t>(txn_table.size()));
  for (const auto& t : txn_table) {
    PutFixed64(&out, t.txn_id);
    PutFixed64(&out, t.last_lsn);
    out.push_back(t.is_system ? 1 : 0);
  }
  PutLengthPrefixed(&out, allocator_image);
  PutLengthPrefixed(&out, bad_blocks_image);
  PutFixed64(&out, next_txn_id);
  return out;
}

StatusOr<CheckpointEndBody> CheckpointEndBody::Decode(std::string_view data) {
  CheckpointEndBody body;
  size_t off = 0;
  uint32_t n;
  if (!GetFixed32(data, &off, &n)) return Status::Corruption("bad ckpt body");
  for (uint32_t i = 0; i < n; ++i) {
    DirtyPageEntry e;
    if (!GetFixed64(data, &off, &e.page_id) ||
        !GetFixed64(data, &off, &e.rec_lsn)) {
      return Status::Corruption("bad ckpt dpt");
    }
    body.dpt.push_back(e);
  }
  if (!GetFixed32(data, &off, &n)) return Status::Corruption("bad ckpt body");
  for (uint32_t i = 0; i < n; ++i) {
    ActiveTxnEntry t;
    if (!GetFixed64(data, &off, &t.txn_id) ||
        !GetFixed64(data, &off, &t.last_lsn) || off >= data.size()) {
      return Status::Corruption("bad ckpt txn table");
    }
    t.is_system = data[off] != 0;
    off++;
    body.txn_table.push_back(t);
  }
  std::string_view alloc_img, bbl_img;
  if (!GetLengthPrefixed(data, &off, &alloc_img) ||
      !GetLengthPrefixed(data, &off, &bbl_img) ||
      !GetFixed64(data, &off, &body.next_txn_id)) {
    return Status::Corruption("bad ckpt tail");
  }
  body.allocator_image = std::string(alloc_img);
  body.bad_blocks_image = std::string(bbl_img);
  return body;
}

StatusOr<CheckpointStats> Checkpointer::Take() {
  CheckpointStats stats;

  LogRecord begin;
  begin.type = LogRecordType::kCheckpointBegin;
  stats.begin_lsn = log_->Append(&begin);

  // Snapshot, then flush, exactly the pages dirty at checkpoint start
  // (section 5.2.6). The flushes produce PriUpdate records; PRI windows
  // dirtied by them are written below; PRI pages' own covering updates
  // cascade into the NEXT checkpoint.
  std::vector<DirtyPageEntry> dirty_at_start = pool_->DirtyPages();
  for (const auto& e : dirty_at_start) {
    SPF_RETURN_IF_ERROR(pool_->FlushPage(e.page_id));
    stats.pages_flushed++;
  }
  if (pri_manager_ != nullptr) {
    SPF_RETURN_IF_ERROR(pri_manager_->WriteDirtyWindows());
  }

  CheckpointEndBody body;
  body.dpt = pool_->DirtyPages();  // pages (re)dirtied during the checkpoint
  body.allocator_image = alloc_->Serialize();
  body.bad_blocks_image = bbl_->Serialize();
  stats.dirty_at_end = body.dpt.size();

  LogRecord end;
  end.type = LogRecordType::kCheckpointEnd;
  {
    // Exclusive commit-gate section: the txn-table snapshot and the
    // end-record append must be atomic against concurrent finish-record
    // appends, or a commit record can land BEFORE the checkpoint-end
    // record while its transaction still shows as active in the table —
    // restart analysis would then resurrect the committed transaction as
    // a loser and undo acknowledged writes (see
    // TxnManager::LockCommitsForCheckpoint).
    auto gate = txns_->LockCommitsForCheckpoint();
    body.txn_table = txns_->ActiveTxns();
    body.next_txn_id = txns_->next_txn_id();
    end.body = body.Encode();
    stats.end_lsn = log_->Append(&end);
  }

  log_->ForceAll();
  log_->SetMasterRecord(stats.begin_lsn);
  return stats;
}

}  // namespace spf
