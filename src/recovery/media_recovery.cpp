#include "recovery/media_recovery.h"

#include <map>

#include "btree/btree_log.h"

namespace spf {

StatusOr<MediaRecoveryStats> MediaRecovery::Run() {
  MediaRecoveryStats stats;
  SimTimer total(clock_);

  auto backup = backups_->latest_full_backup();
  if (!backup) {
    return Status::MediaFailure("media recovery impossible: no full backup");
  }

  // Every buffered page belonged to the failed device; drop them all.
  // Pinned frames are kept: those are readers parked in the failure
  // funnel whose damaged page escalated to this full restore — they
  // re-read the restored device copy once their repair resolves.
  pool_->DiscardAllUnpinned();
  data_->ReviveDevice();

  {
    SimTimer t(clock_);
    SPF_ASSIGN_OR_RETURN(stats.pages_restored,
                         backups_->RestoreFullBackup(backup->id, data_));
    stats.restore_sim_seconds = t.ElapsedSeconds();
  }

  // Replay the log from the backup LSN, page-at-a-time with PageLSN
  // decisions (random reads dominate — section 5.1.3).
  {
    SimTimer t(clock_);
    PageBuffer buf(data_->page_size());
    std::map<PageId, Lsn> final_lsn;
    std::map<PageId, Lsn> formats_seen;  // pages born after the backup
    for (auto it = log_->Scan(backup->backup_lsn); it.Valid(); it.Next()) {
      const LogRecord& rec = it.record();
      stats.records_scanned++;
      switch (rec.type) {
        case LogRecordType::kPageFormat:
        case LogRecordType::kBTreeInsert:
        case LogRecordType::kBTreeMarkGhost:
        case LogRecordType::kBTreeUpdate:
        case LogRecordType::kBTreeReclaimGhost:
        case LogRecordType::kBTreeSplit:
        case LogRecordType::kBTreeAdopt:
        case LogRecordType::kBTreeGrowRoot:
        case LogRecordType::kPageMigrate:
        case LogRecordType::kCompensation:
          break;
        default:
          continue;
      }
      if (rec.page_id == kInvalidPageId) continue;

      PageView page = buf.view();
      if (rec.type == LogRecordType::kPageFormat) {
        formats_seen[rec.page_id] = rec.lsn;
        page.Format(rec.page_id, PageType::kRaw);  // rebuilt by redo below
      } else {
        SPF_RETURN_IF_ERROR(data_->ReadPage(rec.page_id, buf.data()));
        if (page.page_lsn() >= rec.lsn) {
          stats.redo_skipped++;
          continue;
        }
      }
      SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
      page.set_page_lsn(rec.lsn);
      // Match the live path's per-record bump so the replayed image is
      // byte-identical to the lost one.
      page.bump_update_count();
      page.UpdateChecksum();
      SPF_RETURN_IF_ERROR(data_->WritePage(rec.page_id, buf.data()));
      final_lsn[rec.page_id] = rec.lsn;
      stats.redo_applied++;
    }
    stats.replay_sim_seconds = t.ElapsedSeconds();

    if (pri_manager_ != nullptr) {
      pri_manager_->OnFullBackup(backup->id);
      // Pages formatted after the backup are not in it; their format
      // records are their backups (section 5.2.1).
      for (const auto& [pid, lsn] : formats_seen) {
        pri_manager_->pri()->RecordBackup(pid,
                                          {BackupKind::kFormatRecord, lsn});
      }
      for (const auto& [pid, lsn] : final_lsn) {
        pri_manager_->pri()->RecordWrite(pid, lsn);
      }
    }
  }
  stats.total_sim_seconds = total.ElapsedSeconds();
  return stats;
}

StatusOr<MediaRecoveryStats> MediaRecovery::RunPartial(
    std::vector<PageId> pages, RecoveryScheduler* scheduler) {
  MediaRecoveryStats stats;
  SimTimer total(clock_);

  if (scheduler == nullptr) {
    return Status::InvalidArgument("partial restore needs a scheduler");
  }
  if (pri_manager_ == nullptr) {
    return Status::MediaFailure(
        "partial restore needs the page recovery index for per-page chain "
        "anchors; escalate to full media recovery");
  }
  auto backup = backups_->latest_full_backup();
  if (!backup) {
    return Status::MediaFailure("partial restore impossible: no full backup");
  }
  if (data_->device_failed()) {
    return Status::MediaFailure(
        "whole device failed: damage is unbounded, full restore required");
  }
  for (PageId p : pages) {
    if (p >= data_->num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
  }
  if (pages.empty()) {
    stats.total_sim_seconds = total.ElapsedSeconds();
    return stats;
  }

  PartialRestoreBreakdown breakdown;
  SPF_ASSIGN_OR_RETURN(
      BatchRepairResult result,
      scheduler->RepairBatchFromBackup(std::move(pages), backup->id,
                                       &breakdown));
  stats.pages_restored =
      breakdown.backup_pages_loaded + breakdown.per_page_loads;
  // Chain replay reads exactly the records it applies (the point of the
  // partial path: no scan over unrelated log records).
  stats.records_scanned = breakdown.records_applied;
  stats.redo_applied = breakdown.records_applied;
  stats.restore_sim_seconds = breakdown.restore_sim_seconds;
  stats.replay_sim_seconds = breakdown.replay_sim_seconds;
  stats.total_sim_seconds = total.ElapsedSeconds();

  if (result.failed > 0) {
    // All-or-escalate: pages already healed stay healed, but the ladder
    // must fall through to a full restore for the remainder.
    return Status::MediaFailure(
        "partial restore could not heal " + std::to_string(result.failed) +
        " of " + std::to_string(result.failed + result.repaired) +
        " pages (first: " + result.failures.front().status.ToString() + ")");
  }
  return stats;
}

}  // namespace spf
