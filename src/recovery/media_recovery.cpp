#include "recovery/media_recovery.h"

#include <algorithm>
#include <numeric>

#include "btree/btree_log.h"

namespace spf {

Status MediaRecovery::RestoreSegment(
    BackupId backup, uint64_t first, uint64_t count, Lsn backup_lsn,
    Lsn tail_plan_start,
    const std::unordered_map<PageId, std::vector<Lsn>>& plan, char* seg_buf,
    MediaRecoveryStats* stats) {
  const uint32_t page_size = data_->page_size();
  std::vector<PageId> ids(count);
  std::iota(ids.begin(), ids.end(), first);
  std::vector<char*> frames(count);
  for (uint64_t i = 0; i < count; ++i) frames[i] = seg_buf + i * page_size;

  {
    SimTimer t(clock_);
    SPF_RETURN_IF_ERROR(
        backups_->ReadPagesFromFullBackup(backup, ids, frames.data()).status());
    stats->restore_sim_seconds += t.ElapsedSeconds();
  }

  SimTimer t(clock_);

  // Archived history for this segment's page range arrives as one k-way
  // range fetch over the sorted runs — sequential archive reads carrying
  // full payloads, so nothing below tail_plan_start is re-read from the
  // log. Run-major emission in log order keeps each page's records
  // ascending by LSN. The cap at tail_plan_start keeps this disjoint from
  // the tail plan even if the archiver advanced mid-restore.
  std::unordered_map<PageId, std::vector<LogRecord>> archived;
  if (archive_ != nullptr && tail_plan_start > backup_lsn) {
    const Lsn min_ex = backup_lsn > 0 ? backup_lsn - 1 : 0;  // include ==
    SPF_RETURN_IF_ERROR(archive_
                            ->FetchRange(first, first + count - 1, min_ex,
                                         [&](LogRecord&& rec) {
                                           if (rec.lsn < tail_plan_start) {
                                             archived[rec.page_id].push_back(
                                                 std::move(rec));
                                           }
                                         })
                            .status());
  }

  for (uint64_t i = 0; i < count; ++i) {
    PageId pid = first + i;
    PageView page(frames[i], page_size);
    Lsn format_lsn = kInvalidLsn;
    Lsn final_lsn = kInvalidLsn;
    bool modified = false;

    auto apply_one = [&](const LogRecord& rec) -> Status {
      if (page.page_lsn() >= rec.lsn) {
        // Image already reflects this record (also makes a re-served
        // segment idempotent).
        stats->redo_skipped++;
        return Status::OK();
      }
      if (rec.type == LogRecordType::kPageFormat) {
        // Pages born after the backup: the format record is the backup
        // (section 5.2.1) — rebuild from scratch by redo.
        page.Format(pid, PageType::kRaw);
        format_lsn = rec.lsn;
      }
      SPF_RETURN_IF_ERROR(btree_log::RedoBTreeRecord(rec, page));
      page.set_page_lsn(rec.lsn);
      // Match the live path's per-record bump so the replayed image is
      // byte-identical to the lost one.
      page.bump_update_count();
      modified = true;
      final_lsn = rec.lsn;
      stats->redo_applied++;
      return Status::OK();
    };

    // Archived records first (all strictly below tail_plan_start), then
    // the unarchived tail plan — one globally ascending redo pass.
    auto ait = archived.find(pid);
    if (ait != archived.end()) {
      for (const LogRecord& rec : ait->second) {
        SPF_RETURN_IF_ERROR(apply_one(rec));
      }
    }
    auto pit = plan.find(pid);
    if (pit != plan.end()) {
      for (Lsn lsn : pit->second) {
        // Re-read each tail plan record (random log read): the unarchived
        // remainder stays random-log-read bound like the paper's
        // baseline, and the plan itself holds only LSNs, not payloads.
        SPF_ASSIGN_OR_RETURN(LogRecord rec, log_->Read(lsn));
        SPF_RETURN_IF_ERROR(apply_one(rec));
      }
    }
    if (modified) page.UpdateChecksum();
    SPF_RETURN_IF_ERROR(data_->WritePage(pid, frames[i]));
    stats->pages_restored++;
    if (pri_manager_ != nullptr) {
      if (format_lsn != kInvalidLsn) {
        pri_manager_->pri()->RecordBackup(
            pid, {BackupKind::kFormatRecord, format_lsn});
      }
      if (final_lsn != kInvalidLsn) {
        pri_manager_->pri()->RecordWrite(pid, final_lsn);
      }
    }
  }
  stats->replay_sim_seconds += t.ElapsedSeconds();
  return Status::OK();
}

StatusOr<MediaRecoveryStats> MediaRecovery::Run(
    const FullRestoreOptions& options) {
  MediaRecoveryStats stats;
  SimTimer total(clock_);

  auto backup = backups_->latest_full_backup();
  if (!backup) {
    return Status::MediaFailure("media recovery impossible: no full backup");
  }

  RestoreGate* gate = options.gate;
  // Seal admission BEFORE dropping the pool and scanning the log. Writes
  // (exclusive fixes, cache hits included): frames that stay cached
  // across DiscardAllUnpinned (pinned by parked readers, or re-fixed by
  // a doomed straggler's in-flight operation) must not take new logged
  // updates after the plan scan while their segment is unswept — the
  // sweep would overwrite an eventual write-back with the pre-update
  // image, or the post-sweep rollback would compensate a record the
  // restored page never received. Reads (buffer faults): the revived
  // device serves checksum-valid pre-failure images whose latest updates
  // may exist only in the log (dirty frames were just discarded, not
  // written back) — loading one would poison the cache with a stale copy
  // that outlives the restore. Every exit below goes through EndRestore,
  // which lifts the seal.
  if (gate != nullptr) gate->SealAdmission();

  // Every buffered page belonged to the failed device; drop them all.
  // Pinned frames are kept: those are readers parked in the failure
  // funnel whose damaged page escalated to this full restore — they
  // re-read the restored device copy once their repair resolves.
  pool_->DiscardAllUnpinned();
  data_->ReviveDevice();

  const uint64_t num_pages = data_->num_pages();
  const uint64_t seg_pages =
      options.segment_pages == 0 ? num_pages
                                 : std::min(options.segment_pages, num_pages);
  const uint64_t num_segments = (num_pages + seg_pages - 1) / seg_pages;

  // One sequential log pass builds the per-page replay plan (the LSNs
  // each page needs, in log order). With an archiver wired in, the scan
  // covers only the UNARCHIVED tail: everything below the watermark is
  // served per segment from the sorted runs (the instant-restore design
  // proper), so the scan — and the random re-reads at apply time — shrink
  // as the archive catches up. New transactions are still parked at the
  // admission gate here and page admission is sealed (buffer misses AND
  // exclusive cache hits), so the plan is complete: records appended by
  // early-admitted transactions later only ever touch pages that were
  // already restored.
  const Lsn tail_plan_start =
      archive_ != nullptr
          ? std::max(backup->backup_lsn, archive_->archived_upto())
          : backup->backup_lsn;
  std::unordered_map<PageId, std::vector<Lsn>> plan;
  {
    SimTimer t(clock_);
    for (auto it = log_->Scan(tail_plan_start); it.Valid(); it.Next()) {
      const LogRecord& rec = it.record();
      stats.records_scanned++;
      if (!IsPageReplayRecord(rec.type)) continue;
      if (rec.page_id == kInvalidPageId) continue;
      plan[rec.page_id].push_back(rec.lsn);
    }
    stats.replay_sim_seconds += t.ElapsedSeconds();
  }

  // Rebuild the PRI's baseline to the restored full backup up front;
  // per-page entries (format-record backups, final replayed LSNs) are
  // published per segment BEFORE the segment is admitted.
  if (pri_manager_ != nullptr) {
    pri_manager_->OnFullBackup(backup->id);
  }

  if (gate != nullptr) gate->BeginRestore(num_pages, seg_pages);
  if (options.on_sweep_begin) options.on_sweep_begin();

  // One loop for both modes: with a gate, the claim order honors the
  // on-demand queue; without one, it degrades to the sequential cursor.
  std::vector<char> seg_buf(seg_pages * data_->page_size());
  uint64_t seq = 0;
  for (;;) {
    uint64_t seg = 0;
    bool on_demand = false;
    if (gate != nullptr) {
      if (!gate->ClaimNextSegment(&seg, &on_demand)) break;
    } else {
      if (seq >= num_segments) break;
      seg = seq++;
    }
    uint64_t first = seg * seg_pages;
    uint64_t count = std::min(seg_pages, num_pages - first);
    Status s = RestoreSegment(backup->id, first, count, backup->backup_lsn,
                              tail_plan_start, plan, seg_buf.data(), &stats);
    if (!s.ok()) {
      // Fail every still-parked fault with the sweep's error instead of
      // hanging it; the caller escalates.
      if (gate != nullptr) gate->EndRestore(s);
      return s;
    }
    if (gate != nullptr) gate->MarkSegmentRestored(seg);
    stats.segments++;
    if (on_demand) stats.on_demand_segments++;
  }
  if (gate != nullptr) gate->EndRestore(Status::OK());

  stats.total_sim_seconds = total.ElapsedSeconds();
  return stats;
}

StatusOr<MediaRecoveryStats> MediaRecovery::RunPartial(
    std::vector<PageId> pages, RecoveryScheduler* scheduler) {
  MediaRecoveryStats stats;
  SimTimer total(clock_);

  if (scheduler == nullptr) {
    return Status::InvalidArgument("partial restore needs a scheduler");
  }
  if (pri_manager_ == nullptr) {
    return Status::MediaFailure(
        "partial restore needs the page recovery index for per-page chain "
        "anchors; escalate to full media recovery");
  }
  auto backup = backups_->latest_full_backup();
  if (!backup) {
    return Status::MediaFailure("partial restore impossible: no full backup");
  }
  if (data_->device_failed()) {
    return Status::MediaFailure(
        "whole device failed: damage is unbounded, full restore required");
  }
  for (PageId p : pages) {
    if (p >= data_->num_pages()) {
      return Status::InvalidArgument("page id out of range");
    }
  }
  if (pages.empty()) {
    stats.total_sim_seconds = total.ElapsedSeconds();
    return stats;
  }

  PartialRestoreBreakdown breakdown;
  SPF_ASSIGN_OR_RETURN(
      BatchRepairResult result,
      scheduler->RepairBatchFromBackup(std::move(pages), backup->id,
                                       &breakdown));
  stats.pages_restored =
      breakdown.backup_pages_loaded + breakdown.per_page_loads;
  // Chain replay reads exactly the records it applies (the point of the
  // partial path: no scan over unrelated log records).
  stats.records_scanned = breakdown.records_applied;
  stats.redo_applied = breakdown.records_applied;
  stats.restore_sim_seconds = breakdown.restore_sim_seconds;
  stats.replay_sim_seconds = breakdown.replay_sim_seconds;
  stats.total_sim_seconds = total.ElapsedSeconds();

  if (result.failed > 0) {
    // All-or-escalate: pages already healed stay healed, but the ladder
    // must fall through to a full restore for the remainder.
    return Status::MediaFailure(
        "partial restore could not heal " + std::to_string(result.failed) +
        " of " + std::to_string(result.failed + result.repaired) +
        " pages (first: " + result.failures.front().status.ToString() + ")");
  }
  return stats;
}

}  // namespace spf
