// RestoreGate — restore-progress publication and per-page admission for
// the incremental ("instant", Sauer, Graefe & Härder, arXiv:1702.08042)
// full-restore protocol.
//
// A full media restore used to be all-or-nothing: the device came back
// only when every page had been restored and replayed, and every active
// transaction was aborted up front. The RestoreGate turns rung 5 of the
// recovery ladder into a staged protocol under live traffic:
//
//   gate    — the TxnManager closes its admission gate; new user
//             transactions park instead of starting against a dead device;
//   drain   — in-flight transactions run to commit on their cached working
//             sets, up to a bounded deadline (stragglers are force-aborted
//             — the old abort-everything path, now a fallback branch);
//   restore — MediaRecovery::Run sweeps the device in page-id segments,
//             publishing a restored watermark plus an out-of-order
//             restored-segment set through this class;
//   readmit — with early admission, the transaction gate reopens as soon
//             as the sweep starts: a reader resumes as soon as ITS page is
//             back (AwaitRestored), not when the whole device is, and hot
//             pages are restored on demand ahead of the sequential sweep.
//
// The gate is installed on the BufferPool as its RestoreAdmission hook at
// wiring time and stays inactive (one relaxed atomic load per buffer
// fault) outside restores.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "storage/page.h"

namespace spf {

/// Per-phase outcome of one gated full restore (rung 5 under live
/// traffic). Filled by Database::RecoverMedia and accumulated into the
/// failure funnel's totals (RecoveryCoordinator::NoteGatedRestore).
struct RestorePhases {
  /// User transactions in flight when the admission gate closed.
  uint64_t active_at_gate = 0;
  /// In-flight transactions that ran to commit/abort within the drain
  /// deadline (no forced abort).
  uint64_t drained = 0;
  /// Stragglers force-aborted when the drain deadline fired (the old
  /// abort-everything path, now scoped to these).
  uint64_t doomed = 0;
  /// Doomed stragglers whose in-flight operation was still executing
  /// past the restore's bounded rollback wait: their compensating
  /// rollback was deferred to the owner's thread
  /// (Database::ReapDoomedTxn) instead of racing the operation.
  uint64_t deferred_rollbacks = 0;
  /// Wall-clock milliseconds spent in the drain phase.
  double drain_wall_ms = 0;
  /// Page-id segments the restore sweep served.
  uint64_t segments = 0;
  /// Segments served on demand (a waiting reader's page) ahead of the
  /// sequential sweep order.
  uint64_t on_demand_segments = 0;
  /// Buffer faults that parked on the per-page admission check.
  uint64_t admission_waits = 0;
  /// Simulated seconds from restore start until the first parked fault
  /// was admitted (negative when nothing waited). The headline number:
  /// with early admission this is one segment, not the whole device.
  double first_admission_sim_s = -1;
  /// Whether the transaction gate reopened at sweep start (early
  /// admission) instead of at restore completion.
  bool early_admission = false;
};

/// Restore-progress tracker and RestoreAdmission implementation. One
/// instance lives for the database's lifetime; BeginRestore/EndRestore
/// bracket each full restore. Thread-safe: the sweep thread claims and
/// marks segments while reader threads wait in AwaitRestored.
class RestoreGate : public RestoreAdmission {
 public:
  /// `clock` stamps admission latencies in simulated time; not owned.
  explicit RestoreGate(SimClock* clock) : clock_(clock) {}

  SPF_DISALLOW_COPY(RestoreGate);

  // --- protocol scope (Database::RecoverMedia) -------------------------------

  /// Marks the whole rung-5 protocol (gate → drain → sweep → rollback)
  /// as in progress, before the sweep itself starts. active() holds from
  /// here so the background scrubber pauses during the gate/drain window
  /// too — the device is already dead there, and every scanned page
  /// would flood the funnel with reports the restore makes moot.
  void BeginProtocol();

  /// Ends the protocol scope opened by BeginProtocol.
  void EndProtocol();

  // --- sweep side (MediaRecovery::Run) ---------------------------------------

  /// Seals admission, called immediately before the restore's
  /// replay-plan log scan: from here until a page's segment is published
  /// as restored, AwaitRestored parks. Two hazards close at once. Writes
  /// (exclusive fixes — cache hits included — and MarkDirty's re-check):
  /// a frame kept across the restore's pool discard could otherwise take
  /// a logged update AFTER the plan scan while its segment is unswept —
  /// the sweep would then overwrite an eventual write-back with the
  /// pre-update image, or the post-sweep rollback would compensate a
  /// record the restored page never received. Reads (buffer faults): the
  /// revived device serves pre-failure images that are checksum-valid
  /// but may miss updates that lived only in discarded dirty frames and
  /// the log — loading one would poison the cache with a stale copy that
  /// survives past the restore. Cleared by EndRestore.
  void SealAdmission();

  /// Activates the sweep over `num_pages` pages in segments of
  /// `segment_pages` (clamped to at least 1). Resets the per-restore
  /// admission statistics.
  void BeginRestore(uint64_t num_pages, uint64_t segment_pages);

  /// Claims the next segment to restore: a demanded segment (one a parked
  /// fault is waiting on) if any, else the next unserved segment in
  /// sequential order. Returns false when every segment has been claimed.
  /// `*on_demand` reports which path chose the segment.
  bool ClaimNextSegment(uint64_t* segment, bool* on_demand);

  /// Publishes segment `segment` as restored: waiting faults on its pages
  /// are admitted. Invokes the observer (if any) outside the lock.
  void MarkSegmentRestored(uint64_t segment);

  /// Deactivates the gate. On an error status, every still-parked fault
  /// is released with that status instead of hanging.
  void EndRestore(Status final_status);

  // --- reader side (BufferPool::FixPage / FixNewPage) ------------------------

  /// Blocks a buffer fault — or an exclusive cache hit, or MarkDirty's
  /// re-check — until page `id`'s segment has been restored (no-op
  /// outside an active restore; parks unconditionally while admission is
  /// sealed, between SealAdmission and the sweep start). Registers the
  /// segment for on-demand service so hot pages jump the sweep queue. A
  /// waiter that loses its wake-up race to the NEXT restore's
  /// BeginRestore re-evaluates against the new restore's segment
  /// geometry (epoch check) instead of indexing the reassigned segment
  /// state.
  Status AwaitRestored(PageId id) override;

  // --- introspection ----------------------------------------------------------

  /// True while a rung-5 protocol or its restore sweep is in progress
  /// (between BeginProtocol/BeginRestore and EndRestore/EndProtocol).
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Blocks until no rung-5 protocol, seal, or restore sweep is in
  /// progress (returns immediately when idle). Used by the synchronous
  /// scrubber sweep: a full verification pass over a half-restored
  /// device would flood the funnel with reports the restore is about to
  /// make moot, so the sweep waits the protocol out instead.
  void AwaitIdle() const;

  /// First page id not yet covered by the restored prefix (all pages
  /// below it are back). kInvalidPageId when no restore ran yet.
  PageId watermark() const;

  /// True when `id`'s segment has been restored (always true outside an
  /// active restore; false for EVERY page while admission is sealed but
  /// the sweep has not started — the buffer pool's post-read staleness
  /// re-check relies on this).
  bool IsRestored(PageId id) const override;

  /// Segments served on demand during the current/last restore.
  uint64_t on_demand_segments() const;

  /// Buffer faults that parked during the current/last restore.
  uint64_t admission_waits() const;

  /// Simulated seconds from restore start to the first admitted parked
  /// fault; negative when nothing waited.
  double first_admission_sim_seconds() const;

  /// Test/bench instrumentation: invoked after every MarkSegmentRestored
  /// with (segments_done, segments_total), on the sweep thread, outside
  /// the gate lock. Install while no restore is active.
  void SetObserver(std::function<void(uint64_t, uint64_t)> observer) {
    observer_ = std::move(observer);
  }

 private:
  enum SegState : uint8_t { kPending = 0, kClaimed = 1, kRestored = 2 };

  SimClock* const clock_;

  mutable OrderedMutex mu_{LockRank::kRestoreGate};
  mutable CondVar restored_cv_;  ///< wakes parked faults + AwaitIdle
  /// protocol_ || sealed_ || running_ (fast path).
  std::atomic<bool> active_{false};
  bool protocol_ SPF_GUARDED_BY(mu_) = false;  ///< BeginProtocol/EndProtocol
  bool sealed_ SPF_GUARDED_BY(mu_) = false;   ///< SealAdmission/EndRestore
  bool running_ SPF_GUARDED_BY(mu_) = false;  ///< BeginRestore/EndRestore
  /// Bumped by BeginRestore so a waiter from a previous restore never
  /// indexes the reassigned seg_state_/demanded_ vectors.
  uint64_t epoch_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t num_pages_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t segment_pages_ SPF_GUARDED_BY(mu_) = 1;
  uint64_t num_segments_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t segments_done_ SPF_GUARDED_BY(mu_) = 0;
  std::vector<uint8_t> seg_state_ SPF_GUARDED_BY(mu_);
  /// Segment already queued for demand.
  std::vector<uint8_t> demanded_ SPF_GUARDED_BY(mu_);
  /// On-demand queue (hot segments).
  std::deque<uint64_t> demand_ SPF_GUARDED_BY(mu_);
  uint64_t next_seq_ SPF_GUARDED_BY(mu_) = 0;  ///< sequential sweep cursor
  Status final_status_ SPF_GUARDED_BY(mu_);    ///< set by EndRestore
  double restore_start_sim_s_ SPF_GUARDED_BY(mu_) = 0;

  // Per-restore admission stats (reset by BeginRestore).
  uint64_t stat_on_demand_ SPF_GUARDED_BY(mu_) = 0;
  uint64_t stat_waits_ SPF_GUARDED_BY(mu_) = 0;
  double first_admission_sim_s_ SPF_GUARDED_BY(mu_) = -1;

  std::function<void(uint64_t, uint64_t)> observer_;
};

}  // namespace spf
