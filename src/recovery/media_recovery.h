// Media recovery (paper section 5.1.3) — the traditional baseline that
// single-page recovery is measured against.
//
// Run() restores the full backup sequentially onto the data device, then
// scans the recovery log forward from the backup LSN and re-applies every
// logged update whose page does not yet reflect it. The restore is
// sequential (device transfer rate bound: 100 GB at 100 MB/s = 1,000 s,
// section 6); the replay is random-read bound. Active transactions
// touching the failed media are aborted by the caller before invoking
// this.
//
// RunPartial() is the "instant restore" variant (Sauer, Graefe & Härder,
// arXiv:1702.08042) for a BOUNDED damaged set: only the damaged page-id
// ranges are read from the full backup (sequential runs), and only those
// pages' per-page log chains are replayed — through the batched
// RecoveryScheduler's shared-segment cluster walk, one buffered log pass
// instead of a full-log scan or one random read per record. The device
// stays online and the rest of the buffer pool stays warm.

#pragma once

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "core/recovery_scheduler.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"

namespace spf {

struct MediaRecoveryStats {
  uint64_t pages_restored = 0;
  uint64_t records_scanned = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;
  double restore_sim_seconds = 0;
  double replay_sim_seconds = 0;
  double total_sim_seconds = 0;
};

class MediaRecovery {
 public:
  /// `pri_manager` may be null; when present, the PRI is rebuilt to
  /// reference the restored full backup.
  MediaRecovery(LogManager* log, BackupManager* backups, SimDevice* data,
                BufferPool* pool, PriManager* pri_manager, SimClock* clock)
      : log_(log),
        backups_(backups),
        data_(data),
        pool_(pool),
        pri_manager_(pri_manager),
        clock_(clock) {}

  /// Full restore + replay. The device is revived first (simulating the
  /// replacement of the failed unit).
  StatusOr<MediaRecoveryStats> Run();

  /// Partial restore-and-replay of a bounded damaged set through
  /// `scheduler`. Either heals every listed page to its PRI-certified
  /// state or returns an error for the caller to escalate to Run():
  /// requires a full backup, a live PRI (`pri_manager` non-null), and a
  /// device that is not failed as a whole. Pages with a dirty buffered
  /// copy must NOT be passed (nothing was lost — write-back overwrites
  /// the device image); Database::RecoverPages filters them.
  StatusOr<MediaRecoveryStats> RunPartial(std::vector<PageId> pages,
                                          RecoveryScheduler* scheduler);

 private:
  LogManager* const log_;
  BackupManager* const backups_;
  SimDevice* const data_;
  BufferPool* const pool_;
  PriManager* const pri_manager_;
  SimClock* const clock_;
};

}  // namespace spf
