// Media recovery (paper section 5.1.3) — the traditional baseline that
// single-page recovery is measured against.
//
// Restores the full backup sequentially onto the data device, then scans
// the recovery log forward from the backup LSN and re-applies every logged
// update whose page does not yet reflect it. The restore is sequential
// (device transfer rate bound: 100 GB at 100 MB/s = 1,000 s, section 6);
// the replay is random-read bound. Active transactions touching the failed
// media are aborted by the caller before invoking this.

#pragma once

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "log/log_manager.h"
#include "storage/sim_device.h"

namespace spf {

struct MediaRecoveryStats {
  uint64_t pages_restored = 0;
  uint64_t records_scanned = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;
  double restore_sim_seconds = 0;
  double replay_sim_seconds = 0;
  double total_sim_seconds = 0;
};

class MediaRecovery {
 public:
  /// `pri_manager` may be null; when present, the PRI is rebuilt to
  /// reference the restored full backup.
  MediaRecovery(LogManager* log, BackupManager* backups, SimDevice* data,
                BufferPool* pool, PriManager* pri_manager, SimClock* clock)
      : log_(log),
        backups_(backups),
        data_(data),
        pool_(pool),
        pri_manager_(pri_manager),
        clock_(clock) {}

  /// Full restore + replay. The device is revived first (simulating the
  /// replacement of the failed unit).
  StatusOr<MediaRecoveryStats> Run();

 private:
  LogManager* const log_;
  BackupManager* const backups_;
  SimDevice* const data_;
  BufferPool* const pool_;
  PriManager* const pri_manager_;
  SimClock* const clock_;
};

}  // namespace spf
