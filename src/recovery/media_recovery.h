// Media recovery (paper section 5.1.3) — the traditional baseline that
// single-page recovery is measured against, upgraded to an INCREMENTAL
// ("instant", Sauer, Graefe & Härder, arXiv:1702.08042) protocol.
//
// Run() restores the device from the latest full backup in page-id
// SEGMENTS: one sequential log pass builds a per-page replay plan (the
// LSNs each page needs — re-read per segment at apply time, modeling the
// partitioned log runs of instant restore), then every segment is served
// as one sequential backup range read, an in-memory per-page chain apply,
// and one sequential device write-back. Progress is published through an
// optional RestoreGate: parked buffer faults are admitted as soon as
// THEIR segment is back, and a waiting fault's segment is restored on
// demand ahead of the sequential sweep. Without a gate the sweep is a
// plain sequential restore with the same cost model as the paper's
// baseline (device transfer rate bound: 100 GB at 100 MB/s = 1,000 s,
// section 6; the replay is random-log-read bound).
//
// RunPartial() is the bounded-damage variant: only the damaged page-id
// ranges are read from the full backup (sequential runs), and only those
// pages' per-page log chains are replayed — through the batched
// RecoveryScheduler's shared-segment cluster walk, one buffered log pass
// instead of a full-log scan or one random read per record. The device
// stays online and the rest of the buffer pool stays warm.

#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "backup/backup_manager.h"
#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "core/recovery_scheduler.h"
#include "log/log_manager.h"
#include "recovery/restore_gate.h"
#include "storage/sim_device.h"

namespace spf {

struct MediaRecoveryStats {
  uint64_t pages_restored = 0;
  uint64_t records_scanned = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;
  uint64_t segments = 0;            ///< page-id segments the sweep served
  uint64_t on_demand_segments = 0;  ///< served ahead of the sweep order
  double restore_sim_seconds = 0;
  double replay_sim_seconds = 0;
  double total_sim_seconds = 0;
  /// Per-phase outcome of the gated protocol (Database::RecoverMedia
  /// fills the drain-side fields; zeroed for partial restores).
  RestorePhases phases;
};

/// How a full restore runs (MediaRecovery::Run overload).
struct FullRestoreOptions {
  /// Progress publication + per-page admission; null = no publication
  /// (plain offline restore).
  RestoreGate* gate = nullptr;
  /// Pages per restore segment; 0 = the whole device in one segment.
  uint64_t segment_pages = 0;
  /// Invoked once the replay plan is built and the sweep is about to
  /// start — the early-readmission hook (Database reopens the transaction
  /// admission gate here, while the restore is still running).
  std::function<void()> on_sweep_begin;
};

class MediaRecovery {
 public:
  /// `pri_manager` may be null; when present, the PRI is rebuilt to
  /// reference the restored full backup — per segment, BEFORE the segment
  /// is published as restored, so early-admitted readers never see a PRI
  /// entry that lags the restored image. `archive` may be null; when
  /// present, Run()'s replay-plan scan covers only the unarchived log
  /// tail and each segment's older history is served as a merge of
  /// sequential sorted-run reads.
  MediaRecovery(LogManager* log, BackupManager* backups, SimDevice* data,
                BufferPool* pool, PriManager* pri_manager, SimClock* clock,
                LogArchiver* archive = nullptr)
      : log_(log),
        backups_(backups),
        data_(data),
        pool_(pool),
        pri_manager_(pri_manager),
        clock_(clock),
        archive_(archive) {}

  /// Full restore + replay with default options (one segment, no gate).
  /// The device is revived first (simulating the replacement of the
  /// failed unit).
  StatusOr<MediaRecoveryStats> Run() { return Run(FullRestoreOptions()); }

  /// Incremental full restore + replay; see the file comment for the
  /// segment protocol.
  StatusOr<MediaRecoveryStats> Run(const FullRestoreOptions& options);

  /// Partial restore-and-replay of a bounded damaged set through
  /// `scheduler`. Either heals every listed page to its PRI-certified
  /// state or returns an error for the caller to escalate to Run():
  /// requires a full backup, a live PRI (`pri_manager` non-null), and a
  /// device that is not failed as a whole. Pages with a dirty buffered
  /// copy must NOT be passed (nothing was lost — write-back overwrites
  /// the device image); Database::RecoverPages filters them.
  StatusOr<MediaRecoveryStats> RunPartial(std::vector<PageId> pages,
                                          RecoveryScheduler* scheduler);

 private:
  /// Restores pages [first, first+count): sequential backup range read,
  /// archived history via one sorted-run range fetch (records at or above
  /// `backup_lsn` and below `tail_plan_start`), per-page tail apply from
  /// `plan`, sequential device write-back, then per-page PRI publication.
  /// Buffers through `seg_buf` (count * page_size bytes).
  Status RestoreSegment(BackupId backup, uint64_t first, uint64_t count,
                        Lsn backup_lsn, Lsn tail_plan_start,
                        const std::unordered_map<PageId, std::vector<Lsn>>& plan,
                        char* seg_buf, MediaRecoveryStats* stats);

  LogManager* const log_;
  BackupManager* const backups_;
  SimDevice* const data_;
  BufferPool* const pool_;
  PriManager* const pri_manager_;
  SimClock* const clock_;
  LogArchiver* const archive_;
};

}  // namespace spf
