// Checkpoints (paper section 5.2.6).
//
// A checkpoint (1) logs a begin record, (2) flushes the pages that were
// dirty when the checkpoint started — each flush triggers the PRI
// maintenance hook, whose cascading dirtiness is deliberately left for the
// NEXT checkpoint (the paper's "never-ending tail" resolution), (3) writes
// the PRI's dirty windows, (4) logs an end record carrying the dirty page
// table, the active-transaction table, the allocator image, the bad-block
// list, and the transaction id high-water mark, and (5) forces the log and
// updates the master record.

#pragma once

#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "log/log_manager.h"
#include "storage/allocation.h"
#include "txn/txn_manager.h"

namespace spf {

/// Payload of a kCheckpointEnd record.
struct CheckpointEndBody {
  std::vector<DirtyPageEntry> dpt;
  std::vector<ActiveTxnEntry> txn_table;
  std::string allocator_image;
  std::string bad_blocks_image;
  TxnId next_txn_id = 1;

  std::string Encode() const;
  static StatusOr<CheckpointEndBody> Decode(std::string_view data);
};

struct CheckpointStats {
  Lsn begin_lsn = kInvalidLsn;
  Lsn end_lsn = kInvalidLsn;
  uint64_t pages_flushed = 0;
  uint64_t dirty_at_end = 0;
};

/// Takes checkpoints over the assembled stack. `pri_manager` may be null
/// (baseline modes).
class Checkpointer {
 public:
  Checkpointer(LogManager* log, BufferPool* pool, TxnManager* txns,
               PageAllocator* alloc, BadBlockList* bbl, PriManager* pri_manager)
      : log_(log),
        pool_(pool),
        txns_(txns),
        alloc_(alloc),
        bbl_(bbl),
        pri_manager_(pri_manager) {}

  StatusOr<CheckpointStats> Take();

 private:
  LogManager* const log_;
  BufferPool* const pool_;
  TxnManager* const txns_;
  PageAllocator* const alloc_;
  BadBlockList* const bbl_;
  PriManager* const pri_manager_;
};

}  // namespace spf
