// ARIES-style restart recovery after a system failure (paper section
// 5.1.2), extended with the page-recovery-index interplay of section 5.2.5
// / Figure 12:
//
//   Analysis  — from the last checkpoint: rebuilds the dirty page table
//               (DPT), the loser transaction table, the allocator, and the
//               bad-block list. A PriUpdate (or PageWriteCompleted) record
//               certifies a completed write and CANCELS the recovery
//               requirement for records at or below the certified PageLSN —
//               the optimization that spares redo its random reads
//               (Figure 4). PriUpdate records are simultaneously applied to
//               the in-memory PRI.
//   Redo      — physical, page-oriented; reads only pages whose DPT entry
//               demands it, decides by PageLSN, and verifies the per-page
//               chain pointer before every application (defensive check of
//               section 5.1.4). If a page already reflects an update whose
//               PriUpdate record is missing, the write completed but its
//               PRI update was lost: restart generates the missing record
//               (Figure 12, third row). A page that fails verification
//               during redo is repaired online by single-page recovery —
//               the PRI was loaded before redo began (section 5.2.5).
//   Undo      — logical compensation of loser transactions via the shared
//               rollback executor.

#pragma once

#include <map>
#include <set>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "core/pri_manager.h"
#include "log/log_manager.h"
#include "recovery/checkpoint.h"
#include "recovery/rollback.h"
#include "storage/allocation.h"
#include "txn/txn_manager.h"

namespace spf {

struct RestartStats {
  Lsn analysis_start = kInvalidLsn;
  uint64_t analysis_records = 0;
  uint64_t dpt_entries_after_analysis = 0;
  uint64_t write_certifications_seen = 0;  ///< PriUpdate/WriteCompleted
  uint64_t losers = 0;

  uint64_t redo_records_considered = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped_by_dpt = 0;        ///< never read the page (Fig. 4 win)
  uint64_t redo_skipped_by_page_lsn = 0;   ///< read, found already applied
  uint64_t redo_page_reads = 0;            ///< buffer faults during redo
  uint64_t lost_pri_updates_regenerated = 0;  ///< Figure 12 third row
  uint64_t pages_repaired_during_redo = 0;

  uint64_t undo_records = 0;

  double analysis_sim_seconds = 0;
  double redo_sim_seconds = 0;
  double undo_sim_seconds = 0;
};

class RestartRecovery {
 public:
  /// `pri_manager` may be null (WriteTrackingMode::kNone or
  /// kCompletedWrites baselines).
  RestartRecovery(LogManager* log, BufferPool* pool, TxnManager* txns,
                  BTree* tree, PageAllocator* alloc, BadBlockList* bbl,
                  PriManager* pri_manager, SimClock* clock)
      : log_(log),
        pool_(pool),
        txns_(txns),
        tree_(tree),
        alloc_(alloc),
        bbl_(bbl),
        pri_manager_(pri_manager),
        clock_(clock) {}

  /// Runs the three passes. On success the database is consistent:
  /// committed effects present, loser effects compensated.
  StatusOr<RestartStats> Run();

 private:
  struct LoserInfo {
    Lsn last_lsn = kInvalidLsn;
    Lsn undo_next = kInvalidLsn;
  };

  Status Analysis(RestartStats* stats);
  Status Redo(RestartStats* stats);
  Status Undo(RestartStats* stats);

  static bool IsPageRedoType(LogRecordType type);

  LogManager* const log_;
  BufferPool* const pool_;
  TxnManager* const txns_;
  BTree* const tree_;
  PageAllocator* const alloc_;
  BadBlockList* const bbl_;
  PriManager* const pri_manager_;
  SimClock* const clock_;

  std::map<PageId, Lsn> dpt_;  // page -> recLSN
  std::map<TxnId, LoserInfo> losers_;
  /// Lowest RECORD-BOUNDARY LSN ever inserted into the DPT. Write
  /// certifications raise individual recLSNs to certified+1, which is not
  /// a record boundary and therefore must never be used as a scan start;
  /// the floor stays a valid boundary (conservative: the scan may visit
  /// records that every entry then filters out).
  Lsn redo_scan_floor_ = kInvalidLsn;
};

}  // namespace spf
