// Foster B-tree node layout (paper section 4.2, Figures 2 and 3).
//
// Every node carries TWO fence keys — copies of the separator keys posted
// to the parent when the node was split — so that every pointer traversal
// can verify the child against the parent (invariant B2), and a branch node
// with N child pointers carries N+1 key values (invariant B4). Nodes may
// temporarily have a FOSTER child: after a split, the old node acts as the
// temporary parent of the new node until the permanent parent adopts it.
// A foster parent additionally carries the high fence of the entire foster
// chain (invariant B3).
//
// Physical layout within a page:
//
//   [PageHeader 40B][BTreeNodeHeader][fence area: low|high|foster]
//   [record heap, grows up] ... free ... [slot array, grows down from end]
//
// Slot keys are stored with the node's key prefix stripped (prefix
// truncation, Bayer & Unterauer); the prefix is the longest common prefix
// of the two fence keys. Records carry a ghost bit (logical deletion,
// section 5.1.5). Deviation from the paper noted in DESIGN.md: fences live
// in a dedicated area rather than as ghost-record slots; this is a record-
// format detail with no behavioral consequence.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/statusor.h"
#include "storage/page.h"

namespace spf {

/// A key bound that may be -infinity (low end) or +infinity (high end).
struct KeyBound {
  std::string key;
  bool infinite = false;

  static KeyBound NegInf() { return {"", true}; }
  static KeyBound PosInf() { return {"", true}; }
  static KeyBound Finite(std::string_view k) {
    return {std::string(k), false};
  }

  bool operator==(const KeyBound& o) const {
    return infinite == o.infinite && (infinite || key == o.key);
  }
  std::string ToString() const { return infinite ? "<inf>" : key; }
};

/// Node subheader following the generic PageHeader.
struct BTreeNodeHeader {
  uint16_t level;            ///< 0 = leaf
  uint16_t slot_count;
  uint16_t heap_end;         ///< offset one past the last heap byte
  uint16_t ghost_count;
  PageId foster_child;       ///< kInvalidPageId if none
  uint16_t low_fence_len;
  uint16_t high_fence_len;
  uint16_t foster_fence_len; ///< chain-high key (valid iff foster child)
  uint16_t prefix_len;       ///< stripped from every slot key
  uint16_t flags;            ///< kNodeFlag* bits
  uint16_t pad;
};
static_assert(sizeof(BTreeNodeHeader) == 32);

constexpr uint16_t kNodeFlagLowInf = 0x1;     ///< low fence is -infinity
constexpr uint16_t kNodeFlagHighInf = 0x2;    ///< high fence is +infinity
constexpr uint16_t kNodeFlagFosterInf = 0x4;  ///< chain high is +infinity

constexpr uint32_t kNodeHeaderOffset = kPageHeaderSize;
constexpr uint32_t kFenceAreaOffset = kNodeHeaderOffset + sizeof(BTreeNodeHeader);

/// Per-record slot, stored in the slot array at the end of the page.
/// The ghost bit is the top bit of `length`.
struct Slot {
  uint16_t offset;
  uint16_t length;  // bit 15 = ghost
};
constexpr uint16_t kGhostBit = 0x8000;
constexpr uint32_t kSlotSize = sizeof(Slot);

/// Hard caps that guarantee split progress on the default page size.
constexpr size_t kMaxKeyLen = 512;
constexpr size_t kMaxValueLen = 1024;

/// Typed accessor over one B-tree node page. Non-owning; the caller holds
/// the page fixed in the buffer pool. All mutators are in-page only —
/// logging is the responsibility of the B-tree layer.
class BTreeNode {
 public:
  explicit BTreeNode(PageView page) : page_(page) {}

  // --- formatting ----------------------------------------------------------

  /// Formats `page` as a node. The page must already carry a valid
  /// PageHeader (PageView::Format). Fences fix the node's key range;
  /// `foster_child`/`foster_fence` set up a foster edge (or
  /// kInvalidPageId / don't-care).
  void Init(uint16_t level, const KeyBound& low, const KeyBound& high,
            PageId foster_child, const KeyBound& foster_fence);

  // --- header accessors ----------------------------------------------------

  uint16_t level() const { return header()->level; }
  bool is_leaf() const { return header()->level == 0; }
  uint16_t slot_count() const { return header()->slot_count; }
  uint16_t ghost_count() const { return header()->ghost_count; }
  uint16_t prefix_len() const { return header()->prefix_len; }
  PageId page_id() const { return page_.page_id(); }

  PageId foster_child() const { return header()->foster_child; }
  bool has_foster_child() const {
    return header()->foster_child != kInvalidPageId;
  }

  KeyBound low_fence() const;
  KeyBound high_fence() const;
  KeyBound foster_fence() const;

  /// Upper bound of the entire foster chain rooted at this node: the
  /// foster fence if a foster child exists, else the high fence (B3).
  KeyBound chain_high() const {
    return has_foster_child() ? foster_fence() : high_fence();
  }

  /// True iff `key` lies in [low_fence, high_fence) — invariant B1.
  bool CoversKey(std::string_view key) const;
  /// True iff `key` lies in [low_fence, chain_high) — the chain's range.
  bool ChainCoversKey(std::string_view key) const;

  // --- record access -------------------------------------------------------

  struct FindResult {
    uint16_t slot;  ///< position of the key, or insertion position
    bool found;
  };

  /// Binary search for `key` (full key, prefix included).
  FindResult Find(std::string_view key) const;

  /// Full key of slot `s` (prefix re-attached).
  std::string FullKeyAt(uint16_t s) const;
  /// Stored (prefix-stripped) key bytes of slot `s`.
  std::string_view KeySuffixAt(uint16_t s) const;

  /// Value bytes of a leaf record.
  std::string_view ValueAt(uint16_t s) const;
  /// Child pointer of a branch record.
  PageId ChildAt(uint16_t s) const;

  bool IsGhost(uint16_t s) const;
  void SetGhost(uint16_t s, bool ghost);

  /// Inserts a (key, value) leaf record or (key, child) branch record at
  /// the sorted position. Fails with IOError("node full") if space is
  /// insufficient even after compaction. `key` must fall inside the fence
  /// interval; inserting an existing key is a CHECK failure (callers
  /// resolve duplicates first).
  Status InsertLeafRecord(std::string_view key, std::string_view value,
                          bool ghost = false);
  Status InsertBranchRecord(std::string_view key, PageId child);

  /// Replaces the value of leaf slot `s`; handles growth via heap
  /// reallocation. Fails with IOError if the node is full.
  Status ReplaceValue(uint16_t s, std::string_view value);

  /// Replaces the child pointer of branch slot `s`.
  void ReplaceChild(uint16_t s, PageId child);

  /// Physically removes slot `s`.
  void RemoveSlot(uint16_t s);

  /// Physically removes all ghost records whose full key is in `keys`
  /// (ghost reclamation). Returns the number removed.
  size_t ReclaimGhosts(const std::vector<std::string>& keys);

  /// Removes every slot with full key >= `sep` (split truncation).
  void TruncateFrom(std::string_view sep);

  /// Split bookkeeping on the foster parent: high fence becomes `sep`, the
  /// foster edge points at `new_child`, and the chain high is preserved.
  void ApplySplit(std::string_view sep, PageId new_child);

  /// Clears the foster edge after the permanent parent adopted the foster
  /// child; the high fence is unchanged (it already equals the separator).
  void ClearFoster();

  /// Redirects the foster pointer to a relocated foster child (page
  /// migration; the fences are unchanged because the content moved
  /// verbatim).
  void ReplaceFosterChild(PageId new_child);

  // --- branch navigation ---------------------------------------------------

  /// Branch only: the slot whose child covers `key` (largest i with
  /// slot-key_i <= key). Branch slot 0 always carries the low fence key.
  uint16_t FindChildSlot(std::string_view key) const;

  // --- space management ----------------------------------------------------

  size_t FreeSpace() const;
  bool HasSpaceFor(size_t key_len, size_t payload_len) const;
  /// Rewrites the heap to squeeze out holes. Unlogged (redo is by key, so
  /// physical layout is free to differ; see DESIGN.md).
  void Compact();

  // --- split support -------------------------------------------------------

  /// Chooses the separator for splitting this node roughly in half, with
  /// suffix truncation for leaves (shortest key that separates the halves,
  /// Bayer & Unterauer). Requires slot_count >= 2.
  std::string ChooseSeparator() const;

  // --- serialization (format records & backups) -----------------------------

  /// Serializes the full logical content (header fields, fences, records)
  /// for a PageFormat log record body.
  std::string SerializeContent() const;

  /// Rebuilds a node from SerializeContent() output. The PageHeader of
  /// `page` must already be formatted; PageLSN is not touched.
  static Status InitFromContent(PageView page, std::string_view content);

  // --- verification (section 4.2) -------------------------------------------

  /// In-node structural invariants: header sanity, sorted slots, every key
  /// inside the fences, prefix consistency, space accounting (B1, B4).
  Status VerifyInvariants() const;

  /// B2: this node's fences must match the separator keys adjacent to the
  /// pointer in the parent: low == parent's slot key, chain_high ==
  /// parent's next slot key (or the parent's high fence for the last slot).
  Status VerifyAsChildOf(const BTreeNode& parent, uint16_t parent_slot) const;

  /// B3: this node is `foster_parent`'s foster child: low fence equals the
  /// foster parent's high fence and the chain high keys agree.
  Status VerifyAsFosterChildOf(const BTreeNode& foster_parent) const;

  PageView page() { return page_; }

 private:
  BTreeNodeHeader* header() {
    return reinterpret_cast<BTreeNodeHeader*>(page_.data() + kNodeHeaderOffset);
  }
  const BTreeNodeHeader* header() const {
    return reinterpret_cast<const BTreeNodeHeader*>(page_.data() +
                                                    kNodeHeaderOffset);
  }

  /// Logical slot `s` lives at a count-independent address: the slot array
  /// grows downward from the page end, with slot 0 at the very end.
  Slot* SlotPtr(uint16_t s) {
    return reinterpret_cast<Slot*>(page_.data() + page_.size()) - (s + 1);
  }
  const Slot* SlotPtr(uint16_t s) const {
    return reinterpret_cast<const Slot*>(page_.data() + page_.size()) - (s + 1);
  }

  std::string_view fence_bytes(uint32_t offset, uint16_t len) const;
  uint32_t heap_start() const;
  uint32_t slot_array_start() const;

  /// Raw record bytes of slot s: [u16 key_suffix_len][suffix][payload].
  std::string_view RecordAt(uint16_t s) const;
  std::string_view PayloadAt(uint16_t s) const;

  /// Compares `key` (full) against slot `s`'s key. <0, 0, >0.
  int CompareKeyAt(uint16_t s, std::string_view key) const;

  /// Allocates `n` heap bytes, compacting if needed. Returns offset or 0
  /// if the node is full.
  uint32_t AllocHeap(size_t n);

  Status InsertRecordInternal(std::string_view key, std::string_view payload,
                              bool ghost);

  PageView page_;
};

}  // namespace spf
