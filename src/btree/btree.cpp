#include "btree/btree.h"

#include <algorithm>

namespace spf {

namespace {
constexpr uint32_t kMaxTreeDepth = 64;
}

BTree::BTree(BTreeOptions options, BufferPool* pool, LogManager* log,
             TxnManager* txns, PageAllocator* alloc, PageId meta_pid)
    : options_(options),
      pool_(pool),
      log_(log),
      txns_(txns),
      alloc_(alloc),
      meta_pid_(meta_pid) {}

void BTree::BumpVerification(uint64_t n) {
  MutexLock g(stats_mu_);
  stats_.traversal_verifications += n;
}

Status BTree::ValidateKV(std::string_view key, std::string_view value) const {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (key.size() > kMaxKeyLen) return Status::InvalidArgument("key too long");
  if (value.size() > kMaxValueLen) {
    return Status::InvalidArgument("value too long");
  }
  return Status::OK();
}

Status BTree::LockKey(Transaction* txn, std::string_view key, LockMode mode) {
  if (txn == nullptr || txn->is_system()) return Status::OK();
  std::string k(key);
  SPF_RETURN_IF_ERROR(txns_->lock_manager()->Lock(txn->id(), k, mode));
  txn->locked_keys().insert(std::move(k));
  return Status::OK();
}

StatusOr<PageId> BTree::root_pid() {
  auto guard = pool_->FixPage(meta_pid_, LatchMode::kShared);
  if (!guard.ok()) return guard.status();
  MetaView meta(guard->view());
  if (!meta.valid()) {
    return Status::Corruption("meta page lost its magic");
  }
  return meta.meta().root_pid;
}

Status BTree::Create() {
  // Allocate and format the root leaf inside a system transaction; the
  // format record doubles as the page's first backup source.
  SPF_ASSIGN_OR_RETURN(PageId root, alloc_->Allocate());
  Transaction* sys = txns_->BeginSystem();

  SPF_ASSIGN_OR_RETURN(PageGuard root_guard, pool_->FixNewPage(root));
  PageView page = root_guard.view();
  page.Format(root, PageType::kBTreeLeaf);
  BTreeNode node(page);
  node.Init(/*level=*/0, KeyBound::NegInf(), KeyBound::PosInf(),
            kInvalidPageId, KeyBound::PosInf());
  root_guard.MarkDirty();
  btree_log::FormatBody format;
  format.page_type = static_cast<uint16_t>(PageType::kBTreeLeaf);
  format.node_content = node.SerializeContent();
  LogRecord rec;
  rec.type = LogRecordType::kPageFormat;
  rec.page_id = root;
  rec.body = btree_log::Encode(format);
  Lsn format_lsn = sys->LogPage(log_, &rec, page);
  if (options_.format_listener) options_.format_listener(root, format_lsn);

  // Point the meta page at the new root.
  SPF_ASSIGN_OR_RETURN(PageGuard meta_guard,
                       pool_->FixPage(meta_pid_, LatchMode::kExclusive));
  MetaView meta(meta_guard.view());
  SPF_CHECK(meta.valid());
  meta_guard.MarkDirty();
  btree_log::GrowRootBody grow;
  grow.old_root = kInvalidPageId;
  grow.new_root = root;
  LogRecord grow_rec;
  grow_rec.type = LogRecordType::kBTreeGrowRoot;
  grow_rec.page_id = meta_pid_;
  grow_rec.body = btree_log::Encode(grow);
  sys->LogPage(log_, &grow_rec, meta_guard.view());
  meta.mutable_meta()->root_pid = root;

  return txns_->Commit(sys);
}

// --- descent -----------------------------------------------------------------

StatusOr<BTree::DescentResult> BTree::DescendToLeaf(std::string_view key,
                                                    LatchMode mode) {
  DescentResult result;
  // The meta->root hop is latch-coupled like every other hop: the meta
  // page stays shared-latched until the root itself is latched. An
  // uncoupled root_pid() read raced GrowRoot here — the grow cuts the old
  // root's foster edge under its exclusive latch, so a descent that read
  // the stale root id landed on a node that no longer covers its key and
  // reported phantom corruption. (Found by the TSan-widened timing of the
  // lock-discipline work; BTreeTest.RootGrowthKeepsDescentsCovered is the
  // regression.)
  PageGuard meta_coupling;  // released once the root is latched
  PageId cur;
  {
    SPF_ASSIGN_OR_RETURN(PageGuard mg,
                         pool_->FixPage(meta_pid_, LatchMode::kShared));
    MetaView meta(mg.view());
    if (!meta.valid()) {
      return Status::Corruption("meta page lost its magic");
    }
    cur = meta.meta().root_pid;
    meta_coupling = std::move(mg);
  }
  PageGuard parent_guard;           // latched parent (for verification)
  uint16_t parent_slot = 0;
  bool via_foster = false;          // current hop follows a foster edge
  PageId permanent_parent = kInvalidPageId;  // for adoption opportunities
  bool is_root = true;

  for (uint32_t depth = 0; depth < kMaxTreeDepth; ++depth) {
    // Decide the latch mode before fixing: exclusive only on the leaf.
    LatchMode fix_mode = LatchMode::kShared;
    {
      // Level of the node we are about to fix is known from the parent
      // (child level = parent level - 1; foster child level = same). For
      // the root we optimistically fix shared and refix if it is a leaf.
      // Simplification: fix shared, then refix exclusive if it turns out
      // to be the target leaf — see below.
    }
    auto guard_or = pool_->FixPage(cur, fix_mode);
    if (!guard_or.ok()) return guard_or.status();
    PageGuard guard = std::move(guard_or).value();
    meta_coupling.Release();  // the meta->root hop is complete
    BTreeNode node(guard.view());

    // Continuous verification (section 4.2): check this node's fences
    // against the parent's adjacent key values while both are latched.
    if (options_.verify_traversals && parent_guard.valid()) {
      BTreeNode parent_node(parent_guard.view());
      Status v = via_foster ? node.VerifyAsFosterChildOf(parent_node)
                            : node.VerifyAsChildOf(parent_node, parent_slot);
      BumpVerification();
      if (!v.ok()) {
        MutexLock g(stats_mu_);
        stats_.verification_failures++;
        return Status::Corruption("traversal verification failed on page " +
                                  std::to_string(cur) + ": " +
                                  std::string(v.message()));
      }
    } else if (options_.verify_traversals && is_root) {
      // The root has no parent separators to compare against; the cheap
      // root-level checks are key coverage (below) and fence sanity. The
      // comprehensive per-node invariant check belongs to VerifyAll /
      // scrubbing, not to every descent.
      BumpVerification();
      KeyBound low = node.low_fence();
      KeyBound high = node.chain_high();
      if ((!low.infinite && !high.infinite && low.key >= high.key)) {
        MutexLock g(stats_mu_);
        stats_.verification_failures++;
        return Status::Corruption("root fence ordering violated");
      }
    }

    // Route across the foster chain if the key lies beyond this node's own
    // range but inside the chain (Figure 3).
    if (node.has_foster_child() && !node.CoversKey(key)) {
      if (!node.ChainCoversKey(key)) {
        return Status::Corruption("descent reached node not covering key");
      }
      if (is_root) {
        result.root_needs_growth = true;
      } else if (permanent_parent != kInvalidPageId && !via_foster) {
        result.adoption_ops.emplace_back(permanent_parent, cur);
      }
      {
        MutexLock g(stats_mu_);
        stats_.foster_traversals++;
      }
      PageId foster = node.foster_child();
      parent_guard = std::move(guard);  // foster parent for verification
      via_foster = true;
      is_root = false;
      cur = foster;
      continue;
    }

    if (!node.CoversKey(key)) {
      return Status::Corruption("descent reached node not covering key");
    }

    if (node.is_leaf()) {
      if (mode == LatchMode::kExclusive) {
        // Refix exclusive: drop the shared latch first. The page cannot be
        // evicted in between (it stays in the pool unpinned at worst) but
        // its content may change; re-validate coverage after refixing.
        guard.Release();
        parent_guard.Release();
        auto ex_or = pool_->FixPage(cur, LatchMode::kExclusive);
        if (!ex_or.ok()) return ex_or.status();
        PageGuard ex = std::move(ex_or).value();
        BTreeNode ex_node(ex.view());
        if (!ex_node.is_leaf() || !ex_node.CoversKey(key)) {
          // Concurrent split moved the key; restart the descent.
          ex.Release();
          if (depth + 1 >= kMaxTreeDepth) {
            return Status::Busy("descent restarted too many times");
          }
          // Re-couple the meta->root hop for the restart too.
          {
            SPF_ASSIGN_OR_RETURN(PageGuard mg,
                                 pool_->FixPage(meta_pid_, LatchMode::kShared));
            MetaView meta(mg.view());
            if (!meta.valid()) {
              return Status::Corruption("meta page lost its magic");
            }
            cur = meta.meta().root_pid;
            meta_coupling = std::move(mg);
          }
          parent_guard = PageGuard();
          via_foster = false;
          permanent_parent = kInvalidPageId;
          is_root = true;
          continue;
        }
        result.leaf = std::move(ex);
        return result;
      }
      result.leaf = std::move(guard);
      return result;
    }

    // Branch node: follow the child pointer; remember ourselves as the
    // permanent parent for adoption opportunities one level down.
    uint16_t slot = node.FindChildSlot(key);
    PageId child = node.ChildAt(slot);
    permanent_parent = cur;
    parent_slot = slot;
    via_foster = false;
    is_root = false;
    parent_guard = std::move(guard);
    cur = child;
  }
  return Status::Corruption("tree deeper than kMaxTreeDepth (cycle?)");
}

// --- structural system transactions -------------------------------------------

Status BTree::SplitNode(PageGuard* guard) {
  BTreeNode node(guard->view());
  if (node.slot_count() < 2) {
    return Status::IOError("cannot split node with fewer than 2 records");
  }
  std::string sep = node.ChooseSeparator();
  SPF_ASSIGN_OR_RETURN(PageId new_pid, alloc_->Allocate());

  Transaction* sys = txns_->BeginSystem();

  // Build the foster child: upper records, inheriting the split node's
  // high fence and (if present) its old foster edge.
  auto new_guard_or = pool_->FixNewPage(new_pid);
  if (!new_guard_or.ok()) {
    alloc_->Free(new_pid);
    txns_->Commit(sys);  // empty system txn
    return new_guard_or.status();
  }
  PageGuard new_guard = std::move(new_guard_or).value();
  PageView new_page = new_guard.view();
  new_page.Format(new_pid, node.is_leaf() ? PageType::kBTreeLeaf
                                          : PageType::kBTreeBranch);
  BTreeNode new_node(new_page);
  KeyBound old_high = node.high_fence();
  PageId old_foster = node.has_foster_child() ? node.foster_child()
                                              : kInvalidPageId;
  KeyBound old_foster_fence = node.has_foster_child() ? node.foster_fence()
                                                      : KeyBound::PosInf();
  new_node.Init(node.level(), KeyBound::Finite(sep), old_high, old_foster,
                old_foster_fence);
  auto start = node.Find(sep);
  for (uint16_t s = start.slot; s < node.slot_count(); ++s) {
    std::string key = node.FullKeyAt(s);
    Status is;
    if (node.is_leaf()) {
      is = new_node.InsertLeafRecord(key, node.ValueAt(s), node.IsGhost(s));
    } else {
      is = new_node.InsertBranchRecord(key, node.ChildAt(s));
    }
    SPF_CHECK_OK(is);  // fresh page: space cannot run out
  }

  // Log order matters for crash prefixes: the format record first (so the
  // foster pointer never dangles), then the split record.
  new_guard.MarkDirty();
  btree_log::FormatBody format;
  format.page_type = static_cast<uint16_t>(
      node.is_leaf() ? PageType::kBTreeLeaf : PageType::kBTreeBranch);
  format.node_content = new_node.SerializeContent();
  LogRecord format_rec;
  format_rec.type = LogRecordType::kPageFormat;
  format_rec.page_id = new_pid;
  format_rec.body = btree_log::Encode(format);
  Lsn format_lsn = sys->LogPage(log_, &format_rec, new_page);
  if (options_.format_listener) options_.format_listener(new_pid, format_lsn);

  guard->MarkDirty();
  btree_log::SplitBody split;
  split.separator = sep;
  split.new_child = new_pid;
  LogRecord split_rec;
  split_rec.type = LogRecordType::kBTreeSplit;
  split_rec.page_id = node.page_id();
  split_rec.body = btree_log::Encode(split);
  sys->LogPage(log_, &split_rec, guard->view());
  node.ApplySplit(sep, new_pid);

  SPF_RETURN_IF_ERROR(txns_->Commit(sys));
  {
    MutexLock g(stats_mu_);
    stats_.splits++;
  }
  return Status::OK();
}

Status BTree::GrowRoot() {
  // Take the meta page exclusively first to serialize root growth.
  SPF_ASSIGN_OR_RETURN(PageGuard meta_guard,
                       pool_->FixPage(meta_pid_, LatchMode::kExclusive));
  MetaView meta(meta_guard.view());
  PageId old_root = meta.meta().root_pid;
  SPF_ASSIGN_OR_RETURN(PageGuard root_guard,
                       pool_->FixPage(old_root, LatchMode::kExclusive));
  BTreeNode root(root_guard.view());
  if (!root.has_foster_child()) return Status::OK();  // already grown

  KeyBound sep = root.high_fence();
  SPF_CHECK(!sep.infinite);
  PageId foster = root.foster_child();

  SPF_ASSIGN_OR_RETURN(PageId new_pid, alloc_->Allocate());
  Transaction* sys = txns_->BeginSystem();

  auto new_guard_or = pool_->FixNewPage(new_pid);
  if (!new_guard_or.ok()) {
    alloc_->Free(new_pid);
    txns_->Commit(sys);
    return new_guard_or.status();
  }
  PageGuard new_guard = std::move(new_guard_or).value();
  PageView new_page = new_guard.view();
  new_page.Format(new_pid, PageType::kBTreeBranch);
  BTreeNode new_root(new_page);
  new_root.Init(static_cast<uint16_t>(root.level() + 1), KeyBound::NegInf(),
                KeyBound::PosInf(), kInvalidPageId, KeyBound::PosInf());
  SPF_CHECK_OK(new_root.InsertBranchRecord("", old_root));
  SPF_CHECK_OK(new_root.InsertBranchRecord(sep.key, foster));

  new_guard.MarkDirty();
  btree_log::FormatBody format;
  format.page_type = static_cast<uint16_t>(PageType::kBTreeBranch);
  format.node_content = new_root.SerializeContent();
  LogRecord format_rec;
  format_rec.type = LogRecordType::kPageFormat;
  format_rec.page_id = new_pid;
  format_rec.body = btree_log::Encode(format);
  Lsn format_lsn = sys->LogPage(log_, &format_rec, new_page);
  if (options_.format_listener) options_.format_listener(new_pid, format_lsn);

  // Old root drops its foster edge (the new root now points at both).
  root_guard.MarkDirty();
  btree_log::AdoptChildBody clear;
  clear.adopted_child = foster;
  LogRecord clear_rec;
  clear_rec.type = LogRecordType::kBTreeAdopt;
  clear_rec.page_id = old_root;
  clear_rec.body = btree_log::Encode(clear);
  sys->LogPage(log_, &clear_rec, root_guard.view());
  root.ClearFoster();

  // Meta page switches the root pointer.
  meta_guard.MarkDirty();
  btree_log::GrowRootBody grow;
  grow.old_root = old_root;
  grow.new_root = new_pid;
  LogRecord grow_rec;
  grow_rec.type = LogRecordType::kBTreeGrowRoot;
  grow_rec.page_id = meta_pid_;
  grow_rec.body = btree_log::Encode(grow);
  sys->LogPage(log_, &grow_rec, meta_guard.view());
  meta.mutable_meta()->root_pid = new_pid;

  SPF_RETURN_IF_ERROR(txns_->Commit(sys));
  {
    MutexLock g(stats_mu_);
    stats_.root_growths++;
  }
  return Status::OK();
}

Status BTree::TryAdopt(PageId parent_pid, PageId foster_parent_pid) {
  SPF_ASSIGN_OR_RETURN(PageGuard parent_guard,
                       pool_->FixPage(parent_pid, LatchMode::kExclusive));
  BTreeNode parent(parent_guard.view());
  if (parent.is_leaf()) return Status::OK();  // stale opportunity

  SPF_ASSIGN_OR_RETURN(PageGuard fp_guard,
                       pool_->FixPage(foster_parent_pid, LatchMode::kExclusive));
  BTreeNode fp(fp_guard.view());
  if (!fp.has_foster_child()) return Status::OK();  // already adopted

  // Locate the foster parent's slot in the parent.
  KeyBound fp_low = fp.low_fence();
  uint16_t slot = fp.low_fence().infinite
                      ? 0
                      : parent.FindChildSlot(fp_low.key);
  if (parent.ChildAt(slot) != foster_parent_pid) {
    return Status::OK();  // structure changed; stale opportunity
  }

  KeyBound sep = fp.high_fence();
  SPF_CHECK(!sep.infinite);
  PageId foster_child = fp.foster_child();

  if (!parent.HasSpaceFor(sep.key.size(), 8)) {
    // Make room for a future retry; the adoption itself is abandoned.
    fp_guard.Release();
    return SplitNode(&parent_guard);
  }

  Transaction* sys = txns_->BeginSystem();

  // Parent insert first: a crash between the two records leaves a
  // vestigial (never-followed) foster edge, which verification tolerates
  // and a later traversal cleans up.
  parent_guard.MarkDirty();
  btree_log::AdoptParentBody pa;
  pa.separator = sep.key;
  pa.child = foster_child;
  LogRecord pa_rec;
  pa_rec.type = LogRecordType::kBTreeAdopt;
  pa_rec.page_id = parent_pid;
  pa_rec.body = btree_log::Encode(pa);
  sys->LogPage(log_, &pa_rec, parent_guard.view());
  SPF_RETURN_IF_ERROR(parent.InsertBranchRecord(sep.key, foster_child));

  fp_guard.MarkDirty();
  btree_log::AdoptChildBody pc;
  pc.adopted_child = foster_child;
  LogRecord pc_rec;
  pc_rec.type = LogRecordType::kBTreeAdopt;
  pc_rec.page_id = foster_parent_pid;
  pc_rec.body = btree_log::Encode(pc);
  sys->LogPage(log_, &pc_rec, fp_guard.view());
  fp.ClearFoster();

  SPF_RETURN_IF_ERROR(txns_->Commit(sys));
  {
    MutexLock g(stats_mu_);
    stats_.adoptions++;
  }
  return Status::OK();
}

void BTree::RunMaintenance(const DescentResult& d) {
  if (!options_.opportunistic_adoption) return;
  if (d.root_needs_growth) {
    GrowRoot();  // best effort
  }
  for (const auto& [parent, foster_parent] : d.adoption_ops) {
    TryAdopt(parent, foster_parent);  // best effort
  }
}

size_t BTree::ReclaimGhostsInLeaf(PageGuard* guard) {
  BTreeNode node(guard->view());
  std::vector<std::string> reclaimable;
  for (uint16_t s = 0; s < node.slot_count(); ++s) {
    if (!node.IsGhost(s)) continue;
    std::string key = node.FullKeyAt(s);
    // A ghost whose key is still locked may be needed by its deleter's
    // rollback; skip it (section 5.1.5: ghost removal is contents-neutral
    // only for retired ghosts).
    if (txns_->lock_manager()->IsLocked(key)) continue;
    reclaimable.push_back(std::move(key));
  }
  if (reclaimable.empty()) return 0;

  Transaction* sys = txns_->BeginSystem();
  guard->MarkDirty();
  btree_log::ReclaimBody body;
  body.keys = reclaimable;
  LogRecord rec;
  rec.type = LogRecordType::kBTreeReclaimGhost;
  rec.page_id = node.page_id();
  rec.body = btree_log::Encode(body);
  sys->LogPage(log_, &rec, guard->view());
  size_t n = node.ReclaimGhosts(reclaimable);
  txns_->Commit(sys);
  {
    MutexLock g(stats_mu_);
    stats_.ghost_reclaims += n;
  }
  return n;
}

// --- data operations -----------------------------------------------------------

Status BTree::Insert(Transaction* txn, std::string_view key,
                     std::string_view value) {
  SPF_RETURN_IF_ERROR(ValidateKV(key, value));
  SPF_RETURN_IF_ERROR(LockKey(txn, key, LockMode::kExclusive));
  {
    MutexLock g(stats_mu_);
    stats_.inserts++;
  }
  for (int attempt = 0; attempt < 40; ++attempt) {
    SPF_ASSIGN_OR_RETURN(DescentResult d, DescendToLeaf(key, LatchMode::kExclusive));
    BTreeNode node(d.leaf.view());
    auto fr = node.Find(key);
    if (fr.found && !node.IsGhost(fr.slot)) {
      return Status::FailedPrecondition("key already exists");
    }
    if (fr.found) {
      // Revive the ghost with the new value.
      std::string old_value(node.ValueAt(fr.slot));
      btree_log::InsertBody body;
      body.key = std::string(key);
      body.value = std::string(value);
      body.had_ghost = true;
      body.old_value = old_value;
      // Space check before logging (the value may grow).
      if (value.size() > old_value.size() &&
          !node.HasSpaceFor(key.size(), value.size())) {
        ReclaimGhostsInLeaf(&d.leaf);
        if (!node.HasSpaceFor(key.size(), value.size())) {
          SPF_RETURN_IF_ERROR(SplitNode(&d.leaf));
          d.leaf.Release();
          continue;
        }
      }
      d.leaf.MarkDirty();
      LogRecord rec;
      rec.type = LogRecordType::kBTreeInsert;
      rec.page_id = node.page_id();
      rec.body = btree_log::Encode(body);
      txn->LogPage(log_, &rec, d.leaf.view());
      SPF_CHECK_OK(node.ReplaceValue(fr.slot, value));
      node.SetGhost(fr.slot, false);
      d.leaf.Release();
      RunMaintenance(d);
      return Status::OK();
    }
    if (!node.HasSpaceFor(key.size(), value.size())) {
      if (ReclaimGhostsInLeaf(&d.leaf) == 0 ||
          !node.HasSpaceFor(key.size(), value.size())) {
        SPF_RETURN_IF_ERROR(SplitNode(&d.leaf));
        d.leaf.Release();
        continue;  // re-descend: the key may now belong in the foster child
      }
    }
    d.leaf.MarkDirty();
    btree_log::InsertBody body;
    body.key = std::string(key);
    body.value = std::string(value);
    LogRecord rec;
    rec.type = LogRecordType::kBTreeInsert;
    rec.page_id = node.page_id();
    rec.body = btree_log::Encode(body);
    txn->LogPage(log_, &rec, d.leaf.view());
    SPF_CHECK_OK(node.InsertLeafRecord(key, value, false));
    d.leaf.Release();
    RunMaintenance(d);
    return Status::OK();
  }
  return Status::Busy("insert could not find space after repeated splits");
}

Status BTree::Update(Transaction* txn, std::string_view key,
                     std::string_view value) {
  SPF_RETURN_IF_ERROR(ValidateKV(key, value));
  SPF_RETURN_IF_ERROR(LockKey(txn, key, LockMode::kExclusive));
  {
    MutexLock g(stats_mu_);
    stats_.updates++;
  }
  for (int attempt = 0; attempt < 40; ++attempt) {
    SPF_ASSIGN_OR_RETURN(DescentResult d, DescendToLeaf(key, LatchMode::kExclusive));
    BTreeNode node(d.leaf.view());
    auto fr = node.Find(key);
    if (!fr.found || node.IsGhost(fr.slot)) {
      return Status::NotFound("key not found");
    }
    std::string old_value(node.ValueAt(fr.slot));
    if (value.size() > old_value.size() &&
        !node.HasSpaceFor(key.size(), value.size())) {
      ReclaimGhostsInLeaf(&d.leaf);
      if (!node.HasSpaceFor(key.size(), value.size())) {
        SPF_RETURN_IF_ERROR(SplitNode(&d.leaf));
        d.leaf.Release();
        continue;
      }
    }
    d.leaf.MarkDirty();
    btree_log::UpdateBody body;
    body.key = std::string(key);
    body.old_value = old_value;
    body.new_value = std::string(value);
    LogRecord rec;
    rec.type = LogRecordType::kBTreeUpdate;
    rec.page_id = node.page_id();
    rec.body = btree_log::Encode(body);
    txn->LogPage(log_, &rec, d.leaf.view());
    SPF_CHECK_OK(node.ReplaceValue(fr.slot, value));
    d.leaf.Release();
    RunMaintenance(d);
    return Status::OK();
  }
  return Status::Busy("update could not find space after repeated splits");
}

Status BTree::Delete(Transaction* txn, std::string_view key) {
  SPF_RETURN_IF_ERROR(ValidateKV(key, ""));
  SPF_RETURN_IF_ERROR(LockKey(txn, key, LockMode::kExclusive));
  {
    MutexLock g(stats_mu_);
    stats_.deletes++;
  }
  SPF_ASSIGN_OR_RETURN(DescentResult d, DescendToLeaf(key, LatchMode::kExclusive));
  BTreeNode node(d.leaf.view());
  auto fr = node.Find(key);
  if (!fr.found || node.IsGhost(fr.slot)) {
    return Status::NotFound("key not found");
  }
  d.leaf.MarkDirty();
  btree_log::MarkGhostBody body;
  body.key = std::string(key);
  LogRecord rec;
  rec.type = LogRecordType::kBTreeMarkGhost;
  rec.page_id = node.page_id();
  rec.body = btree_log::Encode(body);
  txn->LogPage(log_, &rec, d.leaf.view());
  node.SetGhost(fr.slot, true);
  d.leaf.Release();
  RunMaintenance(d);
  return Status::OK();
}

StatusOr<std::string> BTree::Get(Transaction* txn, std::string_view key) {
  SPF_RETURN_IF_ERROR(ValidateKV(key, ""));
  SPF_RETURN_IF_ERROR(LockKey(txn, key, LockMode::kShared));
  {
    MutexLock g(stats_mu_);
    stats_.lookups++;
  }
  SPF_ASSIGN_OR_RETURN(DescentResult d, DescendToLeaf(key, LatchMode::kShared));
  BTreeNode node(d.leaf.view());
  auto fr = node.Find(key);
  if (!fr.found || node.IsGhost(fr.slot)) {
    return Status::NotFound("key not found");
  }
  std::string value(node.ValueAt(fr.slot));
  d.leaf.Release();
  RunMaintenance(d);
  return value;
}

Status BTree::Scan(
    Transaction* txn, std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  std::string cursor(start);
  bool first = true;
  while (true) {
    SPF_ASSIGN_OR_RETURN(DescentResult d,
                         DescendToLeaf(cursor, LatchMode::kShared));
    BTreeNode node(d.leaf.view());
    auto fr = node.Find(cursor);
    uint16_t s = fr.slot;
    if (fr.found && !first) s++;  // cursor key already delivered
    for (; s < node.slot_count(); ++s) {
      if (node.IsGhost(s)) continue;
      std::string key = node.FullKeyAt(s);
      if (!end.empty() && key >= end) return Status::OK();
      // Lock-before-deliver, with the leaf latch held: a conflicting
      // writer backs off through its lock timeout, and if WE time out
      // instead, the Deadlock status aborts the scan cleanly (the
      // latch releases with `d`).
      SPF_RETURN_IF_ERROR(LockKey(txn, key, LockMode::kShared));
      if (!fn(key, node.ValueAt(s))) return Status::OK();
      cursor = key;
      first = false;
    }
    // Continue past this node's own range: the next key is the high
    // fence; re-descending handles foster edges transparently.
    KeyBound high = node.high_fence();
    if (high.infinite) return Status::OK();
    if (!end.empty() && high.key >= end) return Status::OK();
    cursor = high.key;
    first = true;  // the high fence itself has not been delivered
  }
}

StatusOr<uint64_t> BTree::Count() {
  uint64_t n = 0;
  SPF_RETURN_IF_ERROR(Scan("", "", [&n](std::string_view, std::string_view) {
    n++;
    return true;
  }));
  return n;
}

// --- undo ---------------------------------------------------------------------

Status BTree::UndoRecord(Transaction* txn, const LogRecord& rec) {
  // Logical undo (section 5.1.2 "compensation"): re-descend by key — the
  // record may live on a different page than at do-time after splits.
  using btree_log::ClrAction;
  using btree_log::ClrBody;

  ClrBody clr;
  std::string key;
  switch (rec.type) {
    case LogRecordType::kBTreeInsert: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeInsert(rec.body));
      key = body.key;
      if (body.had_ghost) {
        clr.action = ClrAction::kGhostWithValue;
        clr.value = body.old_value;
      } else {
        clr.action = ClrAction::kMarkGhost;
      }
      clr.key = key;
      break;
    }
    case LogRecordType::kBTreeMarkGhost: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeMarkGhost(rec.body));
      key = body.key;
      clr.action = ClrAction::kRevive;
      clr.key = key;
      break;
    }
    case LogRecordType::kBTreeUpdate: {
      SPF_ASSIGN_OR_RETURN(auto body, btree_log::DecodeUpdate(rec.body));
      key = body.key;
      clr.action = ClrAction::kRestoreValue;
      clr.value = body.old_value;
      clr.key = key;
      break;
    }
    default:
      return Status::InvalidArgument("record type is not undoable");
  }

  for (int attempt = 0; attempt < 40; ++attempt) {
    SPF_ASSIGN_OR_RETURN(DescentResult d, DescendToLeaf(key, LatchMode::kExclusive));
    BTreeNode node(d.leaf.view());
    auto fr = node.Find(key);
    if (!fr.found) {
      return Status::Corruption("undo target key vanished: " + key);
    }
    // Space handling for value-restoring compensations.
    if (clr.action == ClrAction::kRestoreValue ||
        clr.action == ClrAction::kGhostWithValue) {
      std::string_view cur = node.ValueAt(fr.slot);
      if (clr.value.size() > cur.size() &&
          !node.HasSpaceFor(key.size(), clr.value.size())) {
        ReclaimGhostsInLeaf(&d.leaf);
        if (!node.HasSpaceFor(key.size(), clr.value.size())) {
          SPF_RETURN_IF_ERROR(SplitNode(&d.leaf));
          d.leaf.Release();
          continue;
        }
      }
    }
    d.leaf.MarkDirty();
    LogRecord clr_rec;
    clr_rec.type = LogRecordType::kCompensation;
    clr_rec.page_id = node.page_id();
    clr_rec.undo_next_lsn = rec.prev_lsn;
    clr_rec.body = btree_log::Encode(clr);
    txn->LogPage(log_, &clr_rec, d.leaf.view());
    switch (clr.action) {
      case ClrAction::kMarkGhost:
        node.SetGhost(fr.slot, true);
        break;
      case ClrAction::kRevive:
        node.SetGhost(fr.slot, false);
        break;
      case ClrAction::kRestoreValue:
        SPF_CHECK_OK(node.ReplaceValue(fr.slot, clr.value));
        break;
      case ClrAction::kGhostWithValue:
        SPF_CHECK_OK(node.ReplaceValue(fr.slot, clr.value));
        node.SetGhost(fr.slot, true);
        break;
    }
    return Status::OK();
  }
  return Status::Busy("undo could not find space");
}

// --- verification ---------------------------------------------------------------

Status BTree::VerifyAll(uint64_t* pages_checked) {
  uint64_t checked = 0;
  // Iterative DFS over (page id, role) edges so foster chains of any
  // length are covered.
  struct Edge {
    PageId id;
    PageId from;       // parent or foster parent (kInvalidPageId for root)
    uint16_t slot;     // slot in parent (if via_parent)
    bool via_foster;
  };
  std::vector<Edge> stack;
  SPF_ASSIGN_OR_RETURN(PageId root, root_pid());
  stack.push_back({root, kInvalidPageId, 0, false});

  while (!stack.empty()) {
    Edge e = stack.back();
    stack.pop_back();
    SPF_ASSIGN_OR_RETURN(PageGuard guard, pool_->FixPage(e.id, LatchMode::kShared));
    BTreeNode node(guard.view());
    checked++;
    SPF_RETURN_IF_ERROR(node.VerifyInvariants());
    if (e.from != kInvalidPageId) {
      SPF_ASSIGN_OR_RETURN(PageGuard from_guard,
                           pool_->FixPage(e.from, LatchMode::kShared));
      BTreeNode from(from_guard.view());
      if (e.via_foster) {
        SPF_RETURN_IF_ERROR(node.VerifyAsFosterChildOf(from));
      } else {
        SPF_RETURN_IF_ERROR(node.VerifyAsChildOf(from, e.slot));
      }
    }
    if (node.has_foster_child()) {
      stack.push_back({node.foster_child(), e.id, 0, true});
    }
    if (!node.is_leaf()) {
      for (uint16_t s = 0; s < node.slot_count(); ++s) {
        stack.push_back({node.ChildAt(s), e.id, s, false});
      }
    }
  }
  if (pages_checked != nullptr) *pages_checked = checked;
  return Status::OK();
}

StatusOr<uint32_t> BTree::Height() {
  SPF_ASSIGN_OR_RETURN(PageId root, root_pid());
  SPF_ASSIGN_OR_RETURN(PageGuard guard,
                       pool_->FixPage(root, LatchMode::kShared));
  BTreeNode node(guard.view());
  return static_cast<uint32_t>(node.level() + 1);
}

BTreeStats BTree::stats() const {
  MutexLock g(stats_mu_);
  return stats_;
}

}  // namespace spf
