#include "btree/node_layout.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace spf {

namespace {

/// Longest common prefix length of two strings.
uint16_t CommonPrefixLen(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<uint16_t>(i);
}

}  // namespace

void BTreeNode::Init(uint16_t level, const KeyBound& low, const KeyBound& high,
                     PageId foster_child, const KeyBound& foster_fence) {
  BTreeNodeHeader* h = header();
  std::memset(h, 0, sizeof(*h));
  h->level = level;
  h->foster_child = foster_child;
  h->flags = 0;
  if (low.infinite) h->flags |= kNodeFlagLowInf;
  if (high.infinite) h->flags |= kNodeFlagHighInf;

  h->low_fence_len = low.infinite ? 0 : static_cast<uint16_t>(low.key.size());
  h->high_fence_len =
      high.infinite ? 0 : static_cast<uint16_t>(high.key.size());
  if (foster_child != kInvalidPageId) {
    if (foster_fence.infinite) h->flags |= kNodeFlagFosterInf;
    h->foster_fence_len =
        foster_fence.infinite ? 0 : static_cast<uint16_t>(foster_fence.key.size());
  } else {
    h->foster_fence_len = 0;
  }

  // Prefix truncation: the common prefix of the two finite fences.
  if (!low.infinite && !high.infinite) {
    h->prefix_len = CommonPrefixLen(low.key, high.key);
  } else {
    h->prefix_len = 0;
  }

  char* fences = page_.data() + kFenceAreaOffset;
  size_t off = 0;
  if (!low.infinite) {
    std::memcpy(fences + off, low.key.data(), low.key.size());
    off += low.key.size();
  }
  if (!high.infinite) {
    std::memcpy(fences + off, high.key.data(), high.key.size());
    off += high.key.size();
  }
  if (foster_child != kInvalidPageId && !foster_fence.infinite) {
    std::memcpy(fences + off, foster_fence.key.data(), foster_fence.key.size());
    off += foster_fence.key.size();
  }
  h->heap_end = static_cast<uint16_t>(kFenceAreaOffset + off);
  h->slot_count = 0;
  h->ghost_count = 0;
}

std::string_view BTreeNode::fence_bytes(uint32_t offset, uint16_t len) const {
  return std::string_view(page_.data() + kFenceAreaOffset + offset, len);
}

KeyBound BTreeNode::low_fence() const {
  const BTreeNodeHeader* h = header();
  if (h->flags & kNodeFlagLowInf) return KeyBound::NegInf();
  return KeyBound::Finite(fence_bytes(0, h->low_fence_len));
}

KeyBound BTreeNode::high_fence() const {
  const BTreeNodeHeader* h = header();
  if (h->flags & kNodeFlagHighInf) return KeyBound::PosInf();
  return KeyBound::Finite(fence_bytes(h->low_fence_len, h->high_fence_len));
}

KeyBound BTreeNode::foster_fence() const {
  const BTreeNodeHeader* h = header();
  SPF_CHECK(has_foster_child());
  if (h->flags & kNodeFlagFosterInf) return KeyBound::PosInf();
  return KeyBound::Finite(fence_bytes(
      h->low_fence_len + h->high_fence_len, h->foster_fence_len));
}

bool BTreeNode::CoversKey(std::string_view key) const {
  KeyBound low = low_fence();
  if (!low.infinite && key < low.key) return false;
  KeyBound high = high_fence();
  if (!high.infinite && key >= high.key) return false;
  return true;
}

bool BTreeNode::ChainCoversKey(std::string_view key) const {
  KeyBound low = low_fence();
  if (!low.infinite && key < low.key) return false;
  KeyBound high = chain_high();
  if (!high.infinite && key >= high.key) return false;
  return true;
}

// --- slot/heap plumbing ------------------------------------------------------

uint32_t BTreeNode::slot_array_start() const {
  return page_.size() - header()->slot_count * kSlotSize;
}

std::string_view BTreeNode::RecordAt(uint16_t s) const {
  SPF_CHECK_LT(s, slot_count());
  const Slot& slot = *SlotPtr(s);
  return std::string_view(page_.data() + slot.offset,
                          slot.length & ~kGhostBit);
}

bool BTreeNode::IsGhost(uint16_t s) const {
  SPF_CHECK_LT(s, slot_count());
  return (SlotPtr(s)->length & kGhostBit) != 0;
}

void BTreeNode::SetGhost(uint16_t s, bool ghost) {
  SPF_CHECK_LT(s, slot_count());
  Slot& slot = *SlotPtr(s);
  bool was = (slot.length & kGhostBit) != 0;
  if (was == ghost) return;
  if (ghost) {
    slot.length |= kGhostBit;
    header()->ghost_count++;
  } else {
    slot.length &= ~kGhostBit;
    header()->ghost_count--;
  }
}

std::string_view BTreeNode::KeySuffixAt(uint16_t s) const {
  std::string_view rec = RecordAt(s);
  uint16_t klen = DecodeFixed16(rec.data());
  return rec.substr(2, klen);
}

std::string BTreeNode::FullKeyAt(uint16_t s) const {
  const BTreeNodeHeader* h = header();
  std::string key;
  if (h->prefix_len > 0) {
    // The prefix is by construction a prefix of the low fence.
    key.assign(page_.data() + kFenceAreaOffset, h->prefix_len);
  }
  std::string_view suffix = KeySuffixAt(s);
  key.append(suffix.data(), suffix.size());
  return key;
}

std::string_view BTreeNode::PayloadAt(uint16_t s) const {
  std::string_view rec = RecordAt(s);
  uint16_t klen = DecodeFixed16(rec.data());
  return rec.substr(2 + klen);
}

std::string_view BTreeNode::ValueAt(uint16_t s) const {
  SPF_CHECK(is_leaf());
  return PayloadAt(s);
}

PageId BTreeNode::ChildAt(uint16_t s) const {
  SPF_CHECK(!is_leaf());
  std::string_view payload = PayloadAt(s);
  SPF_CHECK_EQ(payload.size(), 8u);
  return DecodeFixed64(payload.data());
}

int BTreeNode::CompareKeyAt(uint16_t s, std::string_view key) const {
  const BTreeNodeHeader* h = header();
  // `key` is a full key; compare its post-prefix suffix against the stored
  // suffix. Keys inside the node share the prefix by invariant B1.
  std::string_view key_suffix = key.size() >= h->prefix_len
                                    ? key.substr(h->prefix_len)
                                    : std::string_view();
  std::string_view stored = KeySuffixAt(s);
  int c = stored.compare(key_suffix);
  return -c;  // <0 if key < stored ... invert to: result of key vs stored
}

BTreeNode::FindResult BTreeNode::Find(std::string_view key) const {
  uint16_t lo = 0, hi = slot_count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    int c = CompareKeyAt(mid, key);
    if (c == 0) return {mid, true};
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return {lo, false};
}

uint32_t BTreeNode::heap_start() const {
  const BTreeNodeHeader* h = header();
  return kFenceAreaOffset + h->low_fence_len + h->high_fence_len +
         h->foster_fence_len;
}

size_t BTreeNode::FreeSpace() const {
  return slot_array_start() - header()->heap_end;
}

bool BTreeNode::HasSpaceFor(size_t key_len, size_t payload_len) const {
  // Worst case: full key stored (prefix not applicable), plus slot entry.
  return FreeSpace() >= 2 + key_len + payload_len + kSlotSize;
}

void BTreeNode::Compact() {
  BTreeNodeHeader* h = header();
  std::string buffer;
  buffer.reserve(page_.size());
  std::vector<uint32_t> new_offsets(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    std::string_view rec = RecordAt(s);
    new_offsets[s] = static_cast<uint32_t>(heap_start() + buffer.size());
    buffer.append(rec.data(), rec.size());
  }
  SPF_CHECK_LE(heap_start() + buffer.size(), slot_array_start());
  std::memcpy(page_.data() + heap_start(), buffer.data(), buffer.size());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    SlotPtr(s)->offset = static_cast<uint16_t>(new_offsets[s]);
  }
  h->heap_end = static_cast<uint16_t>(heap_start() + buffer.size());
}

uint32_t BTreeNode::AllocHeap(size_t n) {
  if (FreeSpace() < n + kSlotSize) {
    Compact();
    if (FreeSpace() < n + kSlotSize) return 0;
  }
  uint32_t off = header()->heap_end;
  header()->heap_end = static_cast<uint16_t>(off + n);
  return off;
}

Status BTreeNode::InsertRecordInternal(std::string_view key,
                                       std::string_view payload, bool ghost) {
  BTreeNodeHeader* h = header();
  SPF_CHECK(CoversKey(key)) << "key outside fences: " << key;
  FindResult fr = Find(key);
  SPF_CHECK(!fr.found) << "duplicate insert of key " << key;

  std::string_view suffix = key.substr(h->prefix_len);
  size_t rec_len = 2 + suffix.size() + payload.size();
  uint32_t off = AllocHeap(rec_len);
  if (off == 0) return Status::IOError("node full");

  char* dst = page_.data() + off;
  EncodeFixed16(dst, static_cast<uint16_t>(suffix.size()));
  std::memcpy(dst + 2, suffix.data(), suffix.size());
  std::memcpy(dst + 2 + suffix.size(), payload.data(), payload.size());

  // Shift logical slots [fr.slot, count) one position toward the page
  // start to open a gap at fr.slot.
  uint16_t count = h->slot_count;
  for (uint16_t j = count; j > fr.slot; --j) {
    *SlotPtr(j) = *SlotPtr(j - 1);
  }
  Slot* slot = SlotPtr(fr.slot);
  slot->offset = static_cast<uint16_t>(off);
  slot->length = static_cast<uint16_t>(rec_len) | (ghost ? kGhostBit : 0);
  h->slot_count++;
  if (ghost) h->ghost_count++;
  return Status::OK();
}

Status BTreeNode::InsertLeafRecord(std::string_view key, std::string_view value,
                                   bool ghost) {
  SPF_CHECK(is_leaf());
  return InsertRecordInternal(key, value, ghost);
}

Status BTreeNode::InsertBranchRecord(std::string_view key, PageId child) {
  SPF_CHECK(!is_leaf());
  char buf[8];
  EncodeFixed64(buf, child);
  return InsertRecordInternal(key, std::string_view(buf, 8), false);
}

Status BTreeNode::ReplaceValue(uint16_t s, std::string_view value) {
  SPF_CHECK(is_leaf());
  std::string_view rec = RecordAt(s);
  uint16_t klen = DecodeFixed16(rec.data());
  size_t old_len = rec.size();
  size_t new_len = 2 + klen + value.size();
  Slot* slot = SlotPtr(s);
  bool ghost = (slot->length & kGhostBit) != 0;

  if (new_len <= old_len) {
    // Overwrite in place; the heap hole (if shrinking) is reclaimed by a
    // later Compact().
    char* dst = page_.data() + slot->offset;
    std::memcpy(dst + 2 + klen, value.data(), value.size());
    slot->length =
        static_cast<uint16_t>(new_len) | (ghost ? kGhostBit : 0);
    return Status::OK();
  }

  // Need a bigger record: reallocate in the heap.
  std::string key_suffix(rec.substr(2, klen));
  uint32_t off = AllocHeap(new_len);
  if (off == 0) return Status::IOError("node full");
  slot = SlotPtr(s);  // (stable, but re-fetch for clarity after Compact)
  char* dst = page_.data() + off;
  EncodeFixed16(dst, klen);
  std::memcpy(dst + 2, key_suffix.data(), klen);
  std::memcpy(dst + 2 + klen, value.data(), value.size());
  slot->offset = static_cast<uint16_t>(off);
  slot->length = static_cast<uint16_t>(new_len) | (ghost ? kGhostBit : 0);
  return Status::OK();
}

void BTreeNode::ReplaceChild(uint16_t s, PageId child) {
  SPF_CHECK(!is_leaf());
  std::string_view payload = PayloadAt(s);
  SPF_CHECK_EQ(payload.size(), 8u);
  EncodeFixed64(const_cast<char*>(payload.data()), child);
}

void BTreeNode::RemoveSlot(uint16_t s) {
  BTreeNodeHeader* h = header();
  SPF_CHECK_LT(s, h->slot_count);
  if (IsGhost(s)) h->ghost_count--;
  uint16_t count = h->slot_count;
  // Shift logical slots (s, count) one position toward the page end.
  for (uint16_t j = s; j + 1 < count; ++j) {
    *SlotPtr(j) = *SlotPtr(j + 1);
  }
  h->slot_count--;
  // Heap bytes stay as a hole until the next Compact().
}

size_t BTreeNode::ReclaimGhosts(const std::vector<std::string>& keys) {
  size_t removed = 0;
  for (const std::string& key : keys) {
    FindResult fr = Find(key);
    if (fr.found && IsGhost(fr.slot)) {
      RemoveSlot(fr.slot);
      removed++;
    }
  }
  return removed;
}

void BTreeNode::TruncateFrom(std::string_view sep) {
  FindResult fr = Find(sep);
  while (slot_count() > fr.slot) {
    RemoveSlot(slot_count() - 1);
  }
}

void BTreeNode::ApplySplit(std::string_view sep, PageId new_child) {
  // Capture state before rewriting the fence area.
  KeyBound low = low_fence();
  KeyBound old_chain_high = chain_high();
  uint16_t lvl = level();

  TruncateFrom(sep);

  // Re-init the fence area in place. Records stay put; their stored
  // suffixes were computed with the OLD prefix, which is a prefix of the
  // new one (the fence interval only narrowed). To keep suffix decoding
  // consistent we must preserve the old prefix length — Init would
  // recompute a possibly longer prefix. So rebuild fences manually.
  BTreeNodeHeader* h = header();
  uint16_t old_prefix = h->prefix_len;

  // Preserve record bytes by compacting into a side buffer first: the
  // fence area may grow and overlap the heap.
  struct Rec {
    std::string suffix;
    std::string payload;
    bool ghost;
  };
  std::vector<Rec> recs;
  recs.reserve(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    recs.push_back({std::string(KeySuffixAt(s)), std::string(PayloadAt(s)),
                    IsGhost(s)});
  }

  Init(lvl, low, KeyBound::Finite(sep), new_child, old_chain_high);
  h = header();
  h->prefix_len = old_prefix;  // keep old (shorter or equal) prefix

  for (const Rec& r : recs) {
    size_t rec_len = 2 + r.suffix.size() + r.payload.size();
    uint32_t off = AllocHeap(rec_len);
    SPF_CHECK_GT(off, 0u);
    char* dst = page_.data() + off;
    EncodeFixed16(dst, static_cast<uint16_t>(r.suffix.size()));
    std::memcpy(dst + 2, r.suffix.data(), r.suffix.size());
    std::memcpy(dst + 2 + r.suffix.size(), r.payload.data(), r.payload.size());
    Slot* slot = SlotPtr(h->slot_count);  // append (records already sorted)
    slot->offset = static_cast<uint16_t>(off);
    slot->length = static_cast<uint16_t>(rec_len) | (r.ghost ? kGhostBit : 0);
    h->slot_count++;
    if (r.ghost) h->ghost_count++;
  }
}

void BTreeNode::ClearFoster() {
  BTreeNodeHeader* h = header();
  SPF_CHECK(has_foster_child());
  h->foster_child = kInvalidPageId;
  h->flags &= static_cast<uint16_t>(~kNodeFlagFosterInf);
  // The foster fence bytes stay allocated in the fence area (heap_start()
  // must not move under existing record offsets); the space is reclaimed
  // when the node is next re-initialized by a split.
}

void BTreeNode::ReplaceFosterChild(PageId new_child) {
  BTreeNodeHeader* h = header();
  SPF_CHECK(has_foster_child());
  h->foster_child = new_child;
}

uint16_t BTreeNode::FindChildSlot(std::string_view key) const {
  SPF_CHECK(!is_leaf());
  SPF_CHECK_GT(slot_count(), 0u);
  // Largest slot whose key <= key. Slot 0 carries the low fence key, so
  // the answer is well-defined for any key the node covers.
  uint16_t lo = 0, hi = slot_count();
  while (lo + 1 < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (CompareKeyAt(mid, key) >= 0) {
      lo = mid;  // slot key <= key
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::string BTreeNode::ChooseSeparator() const {
  SPF_CHECK_GE(slot_count(), 2u);
  uint16_t mid = slot_count() / 2;
  std::string right = FullKeyAt(mid);
  if (!is_leaf()) {
    // Branch separators must equal an existing slot key so the truncated
    // right half starts with its own low-fence copy.
    return right;
  }
  std::string left = FullKeyAt(mid - 1);
  // Suffix truncation: shortest string s with left < s <= right.
  size_t i = 0;
  while (i < left.size() && i < right.size() && left[i] == right[i]) ++i;
  // right[0..i] differs from left at position i (or right is longer).
  return right.substr(0, std::min(i + 1, right.size()));
}

// --- serialization -----------------------------------------------------------

std::string BTreeNode::SerializeContent() const {
  const BTreeNodeHeader* h = header();
  std::string out;
  PutFixed16(&out, h->level);
  PutFixed16(&out, h->flags);
  PutFixed64(&out, h->foster_child);
  KeyBound low = low_fence(), high = high_fence();
  PutLengthPrefixed(&out, low.infinite ? "" : low.key);
  PutLengthPrefixed(&out, high.infinite ? "" : high.key);
  if (has_foster_child()) {
    KeyBound ff = foster_fence();
    PutLengthPrefixed(&out, ff.infinite ? "" : ff.key);
  } else {
    PutLengthPrefixed(&out, "");
  }
  PutFixed16(&out, h->prefix_len);
  PutFixed32(&out, slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    out.push_back(IsGhost(s) ? 1 : 0);
    PutLengthPrefixed(&out, KeySuffixAt(s));
    PutLengthPrefixed(&out, PayloadAt(s));
  }
  return out;
}

Status BTreeNode::InitFromContent(PageView page, std::string_view content) {
  size_t off = 0;
  uint16_t level, flags, prefix_len;
  uint64_t foster_child;
  std::string_view low, high, foster;
  uint32_t count;
  if (!GetFixed16(content, &off, &level) ||
      !GetFixed16(content, &off, &flags) ||
      !GetFixed64(content, &off, &foster_child) ||
      !GetLengthPrefixed(content, &off, &low) ||
      !GetLengthPrefixed(content, &off, &high) ||
      !GetLengthPrefixed(content, &off, &foster) ||
      !GetFixed16(content, &off, &prefix_len) ||
      !GetFixed32(content, &off, &count)) {
    return Status::Corruption("bad node content image");
  }
  BTreeNode node(page);
  KeyBound low_b = (flags & kNodeFlagLowInf) ? KeyBound::NegInf()
                                             : KeyBound::Finite(low);
  KeyBound high_b = (flags & kNodeFlagHighInf) ? KeyBound::PosInf()
                                               : KeyBound::Finite(high);
  KeyBound foster_b = (flags & kNodeFlagFosterInf) ? KeyBound::PosInf()
                                                   : KeyBound::Finite(foster);
  node.Init(level, low_b, high_b, foster_child, foster_b);
  node.header()->prefix_len = prefix_len;

  BTreeNodeHeader* h = node.header();
  for (uint32_t s = 0; s < count; ++s) {
    if (off >= content.size()) return Status::Corruption("truncated records");
    bool ghost = content[off] != 0;
    off++;
    std::string_view suffix, payload;
    if (!GetLengthPrefixed(content, &off, &suffix) ||
        !GetLengthPrefixed(content, &off, &payload)) {
      return Status::Corruption("truncated record");
    }
    size_t rec_len = 2 + suffix.size() + payload.size();
    uint32_t heap_off = node.AllocHeap(rec_len);
    if (heap_off == 0) return Status::Corruption("content overflows page");
    char* dst = page.data() + heap_off;
    EncodeFixed16(dst, static_cast<uint16_t>(suffix.size()));
    std::memcpy(dst + 2, suffix.data(), suffix.size());
    std::memcpy(dst + 2 + suffix.size(), payload.data(), payload.size());
    Slot* slot = node.SlotPtr(h->slot_count);  // append
    slot->offset = static_cast<uint16_t>(heap_off);
    slot->length = static_cast<uint16_t>(rec_len) | (ghost ? kGhostBit : 0);
    h->slot_count++;
    if (ghost) h->ghost_count++;
  }
  return Status::OK();
}

// --- verification ------------------------------------------------------------

Status BTreeNode::VerifyInvariants() const {
  const BTreeNodeHeader* h = header();
  if (page_.type() != (is_leaf() ? PageType::kBTreeLeaf : PageType::kBTreeBranch)) {
    return Status::Corruption("node level does not match page type");
  }
  // Fence ordering.
  KeyBound low = low_fence(), high = high_fence();
  if (!low.infinite && !high.infinite && low.key >= high.key) {
    return Status::Corruption("low fence >= high fence");
  }
  if (has_foster_child()) {
    KeyBound ff = foster_fence();
    if (!high.infinite && !ff.infinite && high.key > ff.key) {
      return Status::Corruption("high fence > foster (chain-high) fence");
    }
  }
  // Prefix must be a common prefix of both finite fences.
  if (h->prefix_len > 0) {
    if (low.infinite || high.infinite) {
      return Status::Corruption("prefix with infinite fence");
    }
    if (low.key.size() < h->prefix_len || high.key.size() < h->prefix_len ||
        low.key.compare(0, h->prefix_len, high.key, 0, h->prefix_len) != 0) {
      return Status::Corruption("prefix not shared by fences");
    }
  }
  // Slots: sorted, inside fences, ghost accounting, offsets in range.
  uint16_t ghosts = 0;
  std::string prev_key;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    const Slot& slot = *SlotPtr(s);
    uint16_t len = slot.length & ~kGhostBit;
    if (slot.offset < heap_start() || slot.offset + len > h->heap_end) {
      return Status::Corruption("slot offset out of heap bounds");
    }
    if (len < 2) return Status::Corruption("record too short");
    std::string key = FullKeyAt(s);
    if (s > 0 && key <= prev_key) {
      return Status::Corruption("slot keys not strictly sorted");
    }
    prev_key = key;
    if (!CoversKey(key)) {
      return Status::Corruption("slot key outside fence interval (B1)");
    }
    if (IsGhost(s)) ghosts++;
    if (!is_leaf()) {
      if (PayloadAt(s).size() != 8) {
        return Status::Corruption("branch payload is not a page id");
      }
      if (IsGhost(s)) {
        return Status::Corruption("ghost record in branch node");
      }
    }
  }
  if (ghosts != h->ghost_count) {
    return Status::Corruption("ghost count mismatch");
  }
  // B4: a branch node with N children carries N+1 key values: slot 0 must
  // replicate the low fence so (low, sep..., high) are all present.
  if (!is_leaf()) {
    if (slot_count() == 0) return Status::Corruption("empty branch node");
    std::string first = FullKeyAt(0);
    if (low.infinite) {
      if (!first.empty()) {
        return Status::Corruption("branch slot 0 must carry -inf low fence");
      }
    } else if (first != low.key) {
      return Status::Corruption("branch slot 0 does not equal low fence (B4)");
    }
  }
  if (h->heap_end > slot_array_start()) {
    return Status::Corruption("heap overlaps slot array");
  }
  return Status::OK();
}

Status BTreeNode::VerifyAsChildOf(const BTreeNode& parent,
                                  uint16_t parent_slot) const {
  // B2: low fence == parent's slot key; chain high == the next slot key,
  // or the parent's high fence for the rightmost pointer.
  KeyBound low = low_fence();
  std::string parent_key = parent.FullKeyAt(parent_slot);
  KeyBound parent_low = parent.low_fence();
  bool slot_is_low = parent_slot == 0;
  if (slot_is_low && parent_low.infinite) {
    if (!low.infinite) {
      return Status::Corruption("child low fence should be -inf (B2)");
    }
  } else {
    if (low.infinite || low.key != parent_key) {
      return Status::Corruption("child low fence != parent separator (B2)");
    }
  }
  KeyBound upper = parent_slot + 1 < parent.slot_count()
                       ? KeyBound::Finite(parent.FullKeyAt(parent_slot + 1))
                       : parent.high_fence();
  KeyBound ch = chain_high();
  if (!(ch == upper)) {
    // Tolerate a vestigial foster edge: a crash between the two adoption
    // records leaves the foster child both adopted by the parent and still
    // referenced by the (never-followed) foster pointer; then the node's
    // own high fence is the bound the parent knows.
    if (!has_foster_child() || !(high_fence() == upper)) {
      return Status::Corruption("child chain-high != parent separator (B2)");
    }
  }
  if (level() + 1 != parent.level()) {
    return Status::Corruption("child level != parent level - 1");
  }
  return Status::OK();
}

Status BTreeNode::VerifyAsFosterChildOf(const BTreeNode& foster_parent) const {
  // B3: low fence == foster parent's high fence; chain highs agree.
  KeyBound low = low_fence();
  KeyBound fp_high = foster_parent.high_fence();
  if (!(low == fp_high)) {
    return Status::Corruption("foster child low != foster parent high (B3)");
  }
  KeyBound ch = chain_high();
  KeyBound fp_chain = foster_parent.foster_fence();
  if (!(ch == fp_chain)) {
    return Status::Corruption("foster chain-high mismatch (B3)");
  }
  if (level() != foster_parent.level()) {
    return Status::Corruption("foster child level mismatch");
  }
  return Status::OK();
}

}  // namespace spf
