// Body encodings for B-tree log records and the physical redo dispatcher.
//
// Logging is physiological (section 5.1.2): redo is physical to a page —
// the record names the page and redo re-performs the in-page action by key
// — while undo is logical, implemented as a compensating B-tree operation
// that may land on a different page after splits (btree.cpp).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "log/log_record.h"
#include "storage/page.h"

namespace spf {
namespace btree_log {

// --- record bodies -----------------------------------------------------------

/// kBTreeInsert: a record was inserted into a leaf. If the key previously
/// existed as a ghost, the insert revived it; `had_ghost`/`old_value`
/// preserve what undo must restore.
struct InsertBody {
  std::string key;
  std::string value;
  bool had_ghost = false;
  std::string old_value;  // valid iff had_ghost
};

/// kBTreeMarkGhost: logical deletion — the record's ghost bit was set.
struct MarkGhostBody {
  std::string key;
};

/// kBTreeUpdate: a leaf record's value was replaced.
struct UpdateBody {
  std::string key;
  std::string old_value;
  std::string new_value;
};

/// kBTreeReclaimGhost (system txn): ghosts physically removed from a page.
struct ReclaimBody {
  std::vector<std::string> keys;
};

/// kBTreeSplit (system txn), applied to the foster parent: records >= sep
/// were donated to the new foster child.
struct SplitBody {
  std::string separator;
  PageId new_child = kInvalidPageId;
};

/// kBTreeAdopt (system txn): two sub-actions discriminated by a tag —
/// the parent inserts (separator, child) and the foster parent clears its
/// foster edge.
struct AdoptParentBody {
  std::string separator;
  PageId child = kInvalidPageId;
};
struct AdoptChildBody {
  PageId adopted_child = kInvalidPageId;  // for the record only
};

/// kPageMigrate, applied to the POINTER OWNER (permanent parent or foster
/// parent): the child at `old_child` moved verbatim to `new_child`
/// (sections 5.1.3 / 5.2.3; the Foster B-tree's single incoming pointer
/// makes this a one-record pointer swap).
struct MigrateBody {
  PageId old_child = kInvalidPageId;
  PageId new_child = kInvalidPageId;
};

/// kBTreeGrowRoot, applied to the database meta page: the root moved.
struct GrowRootBody {
  PageId old_root = kInvalidPageId;
  PageId new_root = kInvalidPageId;
};

/// kPageFormat (system txn): full initial content of a page; doubles as a
/// backup source for the page recovery index (section 5.2.1).
struct FormatBody {
  uint16_t page_type = 0;      // PageType
  std::string node_content;    // BTreeNode::SerializeContent() output
};

/// kCompensation: the redo side of an undo action (CLR). `action` selects
/// the compensating in-page operation.
enum class ClrAction : uint8_t {
  kMarkGhost = 1,        // compensates an insert
  kRevive = 2,           // compensates a mark-ghost (value still in ghost)
  kRestoreValue = 3,     // compensates an update
  kGhostWithValue = 4,   // compensates an insert that revived a ghost
};
struct ClrBody {
  ClrAction action;
  std::string key;
  std::string value;  // used by kRestoreValue / kGhostWithValue
};

// --- encode / decode ---------------------------------------------------------

std::string Encode(const InsertBody& b);
std::string Encode(const MarkGhostBody& b);
std::string Encode(const UpdateBody& b);
std::string Encode(const ReclaimBody& b);
std::string Encode(const SplitBody& b);
std::string Encode(const AdoptParentBody& b);
std::string Encode(const AdoptChildBody& b);
std::string Encode(const MigrateBody& b);
std::string Encode(const GrowRootBody& b);
std::string Encode(const FormatBody& b);
std::string Encode(const ClrBody& b);

StatusOr<InsertBody> DecodeInsert(std::string_view body);
StatusOr<MarkGhostBody> DecodeMarkGhost(std::string_view body);
StatusOr<UpdateBody> DecodeUpdate(std::string_view body);
StatusOr<ReclaimBody> DecodeReclaim(std::string_view body);
StatusOr<SplitBody> DecodeSplit(std::string_view body);
StatusOr<AdoptParentBody> DecodeAdoptParent(std::string_view body);
StatusOr<AdoptChildBody> DecodeAdoptChild(std::string_view body);
StatusOr<MigrateBody> DecodeMigrate(std::string_view body);
StatusOr<GrowRootBody> DecodeGrowRoot(std::string_view body);
StatusOr<FormatBody> DecodeFormat(std::string_view body);
StatusOr<ClrBody> DecodeClr(std::string_view body);

/// The adopt record's body starts with a tag byte distinguishing the
/// parent-insert from the child-clear sub-action.
constexpr char kAdoptTagParent = 0;
constexpr char kAdoptTagChild = 1;
bool IsAdoptParent(std::string_view body);

// --- physical redo -----------------------------------------------------------

/// Re-applies `rec` to `page` (which must be the page named by the
/// record). The caller has already decided redo is needed (PageLSN <
/// rec.lsn) and is responsible for advancing the PageLSN afterwards.
/// Handles every B-tree record type plus kPageFormat; other types are a
/// CHECK failure.
Status RedoBTreeRecord(const LogRecord& rec, PageView page);

}  // namespace btree_log
}  // namespace spf
