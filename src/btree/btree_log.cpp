#include "btree/btree_log.h"

#include "btree/node_layout.h"
#include "common/coding.h"
#include "common/macros.h"
#include "storage/db_meta.h"

namespace spf {
namespace btree_log {

// --- encoders ----------------------------------------------------------------

std::string Encode(const InsertBody& b) {
  std::string out;
  PutLengthPrefixed(&out, b.key);
  PutLengthPrefixed(&out, b.value);
  out.push_back(b.had_ghost ? 1 : 0);
  PutLengthPrefixed(&out, b.old_value);
  return out;
}

std::string Encode(const MarkGhostBody& b) {
  std::string out;
  PutLengthPrefixed(&out, b.key);
  return out;
}

std::string Encode(const UpdateBody& b) {
  std::string out;
  PutLengthPrefixed(&out, b.key);
  PutLengthPrefixed(&out, b.old_value);
  PutLengthPrefixed(&out, b.new_value);
  return out;
}

std::string Encode(const ReclaimBody& b) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(b.keys.size()));
  for (const auto& k : b.keys) PutLengthPrefixed(&out, k);
  return out;
}

std::string Encode(const SplitBody& b) {
  std::string out;
  PutLengthPrefixed(&out, b.separator);
  PutFixed64(&out, b.new_child);
  return out;
}

std::string Encode(const AdoptParentBody& b) {
  std::string out;
  out.push_back(kAdoptTagParent);
  PutLengthPrefixed(&out, b.separator);
  PutFixed64(&out, b.child);
  return out;
}

std::string Encode(const AdoptChildBody& b) {
  std::string out;
  out.push_back(kAdoptTagChild);
  PutFixed64(&out, b.adopted_child);
  return out;
}

std::string Encode(const MigrateBody& b) {
  std::string out;
  PutFixed64(&out, b.old_child);
  PutFixed64(&out, b.new_child);
  return out;
}

std::string Encode(const GrowRootBody& b) {
  std::string out;
  PutFixed64(&out, b.old_root);
  PutFixed64(&out, b.new_root);
  return out;
}

std::string Encode(const FormatBody& b) {
  std::string out;
  PutFixed16(&out, b.page_type);
  PutLengthPrefixed(&out, b.node_content);
  return out;
}

std::string Encode(const ClrBody& b) {
  std::string out;
  out.push_back(static_cast<char>(b.action));
  PutLengthPrefixed(&out, b.key);
  PutLengthPrefixed(&out, b.value);
  return out;
}

// --- decoders ----------------------------------------------------------------

namespace {
Status Truncated() { return Status::Corruption("truncated log record body"); }
}  // namespace

StatusOr<InsertBody> DecodeInsert(std::string_view body) {
  InsertBody b;
  size_t off = 0;
  std::string_view key, value, old_value;
  if (!GetLengthPrefixed(body, &off, &key) ||
      !GetLengthPrefixed(body, &off, &value) || off >= body.size()) {
    return Truncated();
  }
  b.had_ghost = body[off] != 0;
  off++;
  if (!GetLengthPrefixed(body, &off, &old_value)) return Truncated();
  b.key = std::string(key);
  b.value = std::string(value);
  b.old_value = std::string(old_value);
  return b;
}

StatusOr<MarkGhostBody> DecodeMarkGhost(std::string_view body) {
  MarkGhostBody b;
  size_t off = 0;
  std::string_view key;
  if (!GetLengthPrefixed(body, &off, &key)) return Truncated();
  b.key = std::string(key);
  return b;
}

StatusOr<UpdateBody> DecodeUpdate(std::string_view body) {
  UpdateBody b;
  size_t off = 0;
  std::string_view key, ov, nv;
  if (!GetLengthPrefixed(body, &off, &key) ||
      !GetLengthPrefixed(body, &off, &ov) ||
      !GetLengthPrefixed(body, &off, &nv)) {
    return Truncated();
  }
  b.key = std::string(key);
  b.old_value = std::string(ov);
  b.new_value = std::string(nv);
  return b;
}

StatusOr<ReclaimBody> DecodeReclaim(std::string_view body) {
  ReclaimBody b;
  size_t off = 0;
  uint32_t n;
  if (!GetFixed32(body, &off, &n)) return Truncated();
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view k;
    if (!GetLengthPrefixed(body, &off, &k)) return Truncated();
    b.keys.emplace_back(k);
  }
  return b;
}

StatusOr<SplitBody> DecodeSplit(std::string_view body) {
  SplitBody b;
  size_t off = 0;
  std::string_view sep;
  if (!GetLengthPrefixed(body, &off, &sep) ||
      !GetFixed64(body, &off, &b.new_child)) {
    return Truncated();
  }
  b.separator = std::string(sep);
  return b;
}

bool IsAdoptParent(std::string_view body) {
  return !body.empty() && body[0] == kAdoptTagParent;
}

StatusOr<AdoptParentBody> DecodeAdoptParent(std::string_view body) {
  if (body.empty() || body[0] != kAdoptTagParent) {
    return Status::Corruption("not an adopt-parent body");
  }
  AdoptParentBody b;
  size_t off = 1;
  std::string_view sep;
  if (!GetLengthPrefixed(body, &off, &sep) ||
      !GetFixed64(body, &off, &b.child)) {
    return Truncated();
  }
  b.separator = std::string(sep);
  return b;
}

StatusOr<AdoptChildBody> DecodeAdoptChild(std::string_view body) {
  if (body.empty() || body[0] != kAdoptTagChild) {
    return Status::Corruption("not an adopt-child body");
  }
  AdoptChildBody b;
  size_t off = 1;
  if (!GetFixed64(body, &off, &b.adopted_child)) return Truncated();
  return b;
}

StatusOr<MigrateBody> DecodeMigrate(std::string_view body) {
  MigrateBody b;
  size_t off = 0;
  if (!GetFixed64(body, &off, &b.old_child) ||
      !GetFixed64(body, &off, &b.new_child)) {
    return Truncated();
  }
  return b;
}

StatusOr<GrowRootBody> DecodeGrowRoot(std::string_view body) {
  GrowRootBody b;
  size_t off = 0;
  if (!GetFixed64(body, &off, &b.old_root) ||
      !GetFixed64(body, &off, &b.new_root)) {
    return Truncated();
  }
  return b;
}

StatusOr<FormatBody> DecodeFormat(std::string_view body) {
  FormatBody b;
  size_t off = 0;
  std::string_view content;
  if (!GetFixed16(body, &off, &b.page_type) ||
      !GetLengthPrefixed(body, &off, &content)) {
    return Truncated();
  }
  b.node_content = std::string(content);
  return b;
}

StatusOr<ClrBody> DecodeClr(std::string_view body) {
  if (body.empty()) return Truncated();
  ClrBody b;
  b.action = static_cast<ClrAction>(body[0]);
  size_t off = 1;
  std::string_view key, value;
  if (!GetLengthPrefixed(body, &off, &key) ||
      !GetLengthPrefixed(body, &off, &value)) {
    return Truncated();
  }
  b.key = std::string(key);
  b.value = std::string(value);
  return b;
}

// --- physical redo -----------------------------------------------------------

namespace {

/// Inserts (or revives) `key`->`value` in `node` during redo. Mirrors the
/// forward insert path's in-page effect.
Status RedoInsert(BTreeNode* node, std::string_view key, std::string_view value,
                  bool make_ghost = false) {
  auto fr = node->Find(key);
  if (fr.found) {
    // Revive path (or redo over a pre-existing ghost).
    SPF_RETURN_IF_ERROR(node->ReplaceValue(fr.slot, value));
    node->SetGhost(fr.slot, make_ghost);
    return Status::OK();
  }
  Status s = node->InsertLeafRecord(key, value, make_ghost);
  if (s.IsIOError()) {
    // Redo replays may carry ghosts that history reclaimed; reclaim and
    // retry (safe during redo — see DESIGN.md ghost discussion).
    std::vector<std::string> ghosts;
    for (uint16_t i = 0; i < node->slot_count(); ++i) {
      if (node->IsGhost(i)) ghosts.push_back(node->FullKeyAt(i));
    }
    node->ReclaimGhosts(ghosts);
    s = node->InsertLeafRecord(key, value, make_ghost);
  }
  return s;
}

}  // namespace

Status RedoBTreeRecord(const LogRecord& rec, PageView page) {
  switch (rec.type) {
    case LogRecordType::kPageFormat: {
      SPF_ASSIGN_OR_RETURN(FormatBody b, DecodeFormat(rec.body));
      // Formatting resets the page entirely (same effect as a successful
      // write of the initial image, section 5.1.2). The id comes from the
      // record: the frame may be freshly zeroed (redo into a new frame).
      page.Format(rec.page_id, static_cast<PageType>(b.page_type));
      if (!b.node_content.empty()) {
        SPF_RETURN_IF_ERROR(BTreeNode::InitFromContent(page, b.node_content));
      }
      return Status::OK();
    }
    case LogRecordType::kBTreeInsert: {
      SPF_ASSIGN_OR_RETURN(InsertBody b, DecodeInsert(rec.body));
      BTreeNode node(page);
      return RedoInsert(&node, b.key, b.value);
    }
    case LogRecordType::kBTreeMarkGhost: {
      SPF_ASSIGN_OR_RETURN(MarkGhostBody b, DecodeMarkGhost(rec.body));
      BTreeNode node(page);
      auto fr = node.Find(b.key);
      if (!fr.found) {
        return Status::Corruption("redo mark-ghost: key missing");
      }
      node.SetGhost(fr.slot, true);
      return Status::OK();
    }
    case LogRecordType::kBTreeUpdate: {
      SPF_ASSIGN_OR_RETURN(UpdateBody b, DecodeUpdate(rec.body));
      BTreeNode node(page);
      auto fr = node.Find(b.key);
      if (!fr.found) {
        return Status::Corruption("redo update: key missing");
      }
      return node.ReplaceValue(fr.slot, b.new_value);
    }
    case LogRecordType::kBTreeReclaimGhost: {
      SPF_ASSIGN_OR_RETURN(ReclaimBody b, DecodeReclaim(rec.body));
      BTreeNode node(page);
      node.ReclaimGhosts(b.keys);
      return Status::OK();
    }
    case LogRecordType::kBTreeSplit: {
      SPF_ASSIGN_OR_RETURN(SplitBody b, DecodeSplit(rec.body));
      BTreeNode node(page);
      node.ApplySplit(b.separator, b.new_child);
      return Status::OK();
    }
    case LogRecordType::kBTreeAdopt: {
      BTreeNode node(page);
      if (IsAdoptParent(rec.body)) {
        SPF_ASSIGN_OR_RETURN(AdoptParentBody b, DecodeAdoptParent(rec.body));
        return node.InsertBranchRecord(b.separator, b.child);
      }
      SPF_ASSIGN_OR_RETURN(AdoptChildBody b, DecodeAdoptChild(rec.body));
      (void)b;
      if (node.has_foster_child()) node.ClearFoster();
      return Status::OK();
    }
    case LogRecordType::kPageMigrate: {
      SPF_ASSIGN_OR_RETURN(MigrateBody b, DecodeMigrate(rec.body));
      BTreeNode node(page);
      if (node.has_foster_child() && node.foster_child() == b.old_child) {
        node.ReplaceFosterChild(b.new_child);
        return Status::OK();
      }
      if (!node.is_leaf()) {
        for (uint16_t s = 0; s < node.slot_count(); ++s) {
          if (node.ChildAt(s) == b.old_child) {
            node.ReplaceChild(s, b.new_child);
            return Status::OK();
          }
        }
      }
      // Idempotent redo: the pointer may already be swapped.
      return Status::OK();
    }
    case LogRecordType::kBTreeGrowRoot: {
      SPF_ASSIGN_OR_RETURN(GrowRootBody b, DecodeGrowRoot(rec.body));
      MetaView meta(page);
      if (!meta.valid()) {
        return Status::Corruption("grow-root redo on non-meta page");
      }
      meta.mutable_meta()->root_pid = b.new_root;
      return Status::OK();
    }
    case LogRecordType::kCompensation: {
      SPF_ASSIGN_OR_RETURN(ClrBody b, DecodeClr(rec.body));
      BTreeNode node(page);
      auto fr = node.Find(b.key);
      switch (b.action) {
        case ClrAction::kMarkGhost:
          if (fr.found) node.SetGhost(fr.slot, true);
          return Status::OK();
        case ClrAction::kRevive:
          if (!fr.found) {
            return Status::Corruption("redo CLR revive: key missing");
          }
          node.SetGhost(fr.slot, false);
          return Status::OK();
        case ClrAction::kRestoreValue:
          if (!fr.found) {
            return Status::Corruption("redo CLR restore: key missing");
          }
          return node.ReplaceValue(fr.slot, b.value);
        case ClrAction::kGhostWithValue: {
          if (!fr.found) {
            return Status::Corruption("redo CLR ghost+value: key missing");
          }
          SPF_RETURN_IF_ERROR(node.ReplaceValue(fr.slot, b.value));
          node.SetGhost(fr.slot, true);
          return Status::OK();
        }
      }
      return Status::Corruption("unknown CLR action");
    }
    default:
      SPF_CHECK(false) << "RedoBTreeRecord on non-btree record type "
                       << static_cast<int>(rec.type);
      return Status::Internal("unreachable");
  }
}

}  // namespace btree_log
}  // namespace spf
